//! Shared harness types for the benchmark applications.

use gflink_core::{FabricConfig, GpuFabric};
use gflink_flink::{ClusterConfig, JobGate, JobReport, SharedCluster};

/// Which engine an app ran on.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ExecMode {
    /// Baseline: the original (CPU-only) Flink engine.
    Cpu,
    /// GFlink: map/reduce phases offloaded to the GPU fabric.
    Gpu,
}

impl ExecMode {
    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            ExecMode::Cpu => "Flink",
            ExecMode::Gpu => "GFlink",
        }
    }
}

/// The outcome of one application run.
#[derive(Clone, Debug)]
pub struct AppRun {
    /// Engine used.
    pub mode: ExecMode,
    /// Job report (total time, Eq. 1 decomposition, phase graph).
    pub report: JobReport,
    /// App-specific result digest for CPU/GPU cross-checking.
    pub digest: f64,
    /// Per-iteration job times (iterative apps; one entry for batch apps).
    pub per_iteration: Vec<gflink_sim::SimTime>,
}

impl AppRun {
    /// Total simulated job time in seconds.
    pub fn total_secs(&self) -> f64 {
        self.report.total.as_secs_f64()
    }
}

/// A freshly provisioned cluster + GPU fabric for one experiment.
///
/// Clones share the same cluster and fabric (both are handles), so a clone
/// can be moved into another tenant's driver thread.
#[derive(Clone)]
pub struct Setup {
    /// The shared cluster (CPU slots, network, HDFS).
    pub cluster: SharedCluster,
    /// The shared GPU fabric (one GpuManager per worker).
    pub fabric: GpuFabric,
}

impl Setup {
    /// The paper's standard testbed shape: `workers` nodes, 4 slots and two
    /// C2050s each.
    pub fn standard(workers: usize) -> Setup {
        Setup::with_configs(ClusterConfig::standard(workers), FabricConfig::default())
    }

    /// Fully custom setup.
    pub fn with_configs(cluster_cfg: ClusterConfig, fabric_cfg: FabricConfig) -> Setup {
        let workers = cluster_cfg.num_workers;
        let cluster = SharedCluster::new(cluster_cfg);
        let fabric = GpuFabric::new(workers, fabric_cfg);
        Setup { cluster, fabric }
    }

    /// Number of workers.
    pub fn workers(&self) -> usize {
        self.cluster.config().num_workers
    }

    /// Default parallelism: total task slots.
    pub fn default_parallelism(&self) -> usize {
        self.cluster.config().total_slots()
    }
}

/// One tenant of a concurrent run: a display name plus the closure that
/// drives the whole job (typically an app's `run_gpu_at` over a shared
/// [`Setup`]).
pub type ConcurrentJob<'a> = (&'static str, Box<dyn FnOnce() -> AppRun + Send + 'a>);

/// Run several jobs genuinely concurrently — one OS thread per tenant —
/// against whatever shared cluster/fabric the closures capture.
///
/// A [`JobGate`] keeps the interleaving deterministic: the driver threads
/// pass a baton in simulated-time order (ties broken by submission order),
/// so two invocations produce identical timelines no matter how the OS
/// schedules the threads. Returns the runs in submission order.
pub fn run_concurrent(jobs: Vec<ConcurrentJob<'_>>) -> Vec<(&'static str, AppRun)> {
    let gate = JobGate::new();
    let entries: Vec<_> = jobs
        .into_iter()
        .map(|(name, f)| (gate.register(), name, f))
        .collect();
    std::thread::scope(|s| {
        let handles: Vec<_> = entries
            .into_iter()
            .map(|(token, name, f)| {
                let gate = gate.clone();
                (name, s.spawn(move || gate.run(token, f)))
            })
            .collect();
        handles
            .into_iter()
            .map(|(name, h)| (name, h.join().expect("concurrent tenant panicked")))
            .collect()
    })
}

/// Relative-tolerance comparison for CPU/GPU digest cross-checks
/// (accumulation order differs between block-level and partition-level
/// partials, so exact equality is not expected for floats).
pub fn digests_match(a: f64, b: f64, rel_tol: f64) -> bool {
    if a == b {
        return true;
    }
    let denom = a.abs().max(b.abs()).max(1e-12);
    ((a - b) / denom).abs() <= rel_tol
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_setup_shape() {
        let s = Setup::standard(3);
        assert_eq!(s.workers(), 3);
        assert_eq!(s.default_parallelism(), 12);
        s.fabric.with_managers(|ms| {
            assert_eq!(ms.len(), 3);
            assert_eq!(ms[0].gpu_count(), 2);
        });
    }

    #[test]
    fn digest_tolerance() {
        assert!(digests_match(1.0, 1.0, 0.0));
        assert!(digests_match(1.0, 1.0000001, 1e-5));
        assert!(!digests_match(1.0, 1.1, 1e-3));
        assert!(digests_match(0.0, 0.0, 1e-9));
    }

    #[test]
    fn labels() {
        assert_eq!(ExecMode::Cpu.label(), "Flink");
        assert_eq!(ExecMode::Gpu.label(), "GFlink");
    }
}

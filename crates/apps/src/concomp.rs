//! Connected components by label propagation (Fig. 6c, the paper's
//! "ComponentConnect").
//!
//! Same synthetic graph as PageRank (5–25 M pages, degree 8, undirected
//! reading). Every page starts with its own id as label; each iteration a
//! page broadcasts its label to its neighbours (plus itself) and adopts the
//! minimum label it hears. The GPU path offloads the message scatter
//! exactly like PageRank's contribution scatter; the per-page work is a
//! little heavier (comparisons + self message), which is why the paper
//! reports a higher speedup for CC (4.8×) than for PageRank (3.5×).

use crate::common::{AppRun, ExecMode, Setup};
use crate::generators::page_links;
use gflink_core::{GDataSet, GRecord, GflinkEnv, GpuFabric, GpuMapSpec, GpuReduceCosts, OutMode};
use gflink_flink::{DataSet, FlinkEnv, KeyedOps, OpCost};
use gflink_gpu::{KernelArgs, KernelProfile};
use gflink_memory::{
    AlignClass, DataLayout, FieldDef, GStructDef, PrimType, RecordReader, RecordView,
};
use gflink_sim::SimTime;

/// Degree of the synthetic graph.
pub const DEG: usize = 8;
/// Default generator seed (shared with PageRank: same graph shape).
pub const CONCOMP_SEED: u64 = 0x50_5241_4E4B;

/// Wire bytes of one (page, label) pair at paper scale.
pub const LABEL_PAIR_BYTES: f64 = 12.0;
/// Wire bytes of one adjacency pair at paper scale.
pub const ADJ_PAIR_BYTES: f64 = (4 + DEG * 4 + 4) as f64;

/// A joined (label, out-links) record, packed for the GPU.
#[derive(Clone, Debug, PartialEq)]
pub struct LabelledPage {
    /// The page's own id.
    pub page: u32,
    /// Current component label.
    pub label: u32,
    /// Neighbours.
    pub links: [u32; DEG],
}

impl GRecord for LabelledPage {
    fn def() -> GStructDef {
        GStructDef::new(
            "LabelledPage",
            AlignClass::Align8,
            vec![
                FieldDef::scalar("page", PrimType::U32),
                FieldDef::scalar("label", PrimType::U32),
                FieldDef::array("links", PrimType::U32, DEG),
            ],
        )
    }
    fn store(&self, view: &mut RecordView<'_>, idx: usize) {
        view.set_u64(idx, 0, 0, self.page as u64);
        view.set_u64(idx, 1, 0, self.label as u64);
        for (i, l) in self.links.iter().enumerate() {
            view.set_u64(idx, 2, i, *l as u64);
        }
    }
    fn load(reader: &RecordReader<'_>, idx: usize) -> Self {
        LabelledPage {
            page: reader.get_u64(idx, 0, 0) as u32,
            label: reader.get_u64(idx, 1, 0) as u32,
            links: std::array::from_fn(|i| reader.get_u64(idx, 2, i) as u32),
        }
    }
}

/// Kernel output: one **block-combined** minimum-label message per distinct
/// destination.
#[derive(Clone, Debug, PartialEq)]
pub struct AggMsg {
    /// Destination page.
    pub dst: u32,
    /// Minimum label heard within the block.
    pub label: u32,
}

impl GRecord for AggMsg {
    fn def() -> GStructDef {
        GStructDef::new(
            "AggMsg",
            AlignClass::Align8,
            vec![
                FieldDef::scalar("dst", PrimType::U32),
                FieldDef::scalar("label", PrimType::U32),
            ],
        )
    }
    fn store(&self, view: &mut RecordView<'_>, idx: usize) {
        view.set_u64(idx, 0, 0, self.dst as u64);
        view.set_u64(idx, 1, 0, self.label as u64);
    }
    fn load(reader: &RecordReader<'_>, idx: usize) -> Self {
        AggMsg {
            dst: reader.get_u64(idx, 0, 0) as u32,
            label: reader.get_u64(idx, 1, 0) as u32,
        }
    }
}

/// Workload parameters.
#[derive(Clone, Debug)]
pub struct Params {
    /// Pages at paper scale.
    pub n_logical: u64,
    /// Pages actually materialized.
    pub n_actual: usize,
    /// Label-propagation iterations.
    pub iterations: usize,
    /// Data parallelism.
    pub parallelism: usize,
    /// Generator seed.
    pub seed: u64,
}

impl Params {
    /// A Table 1 size: `millions` of pages (5–25 in the paper).
    pub fn paper(millions: u64, setup: &Setup) -> Params {
        Params {
            n_logical: millions * 1_000_000,
            n_actual: ((millions * 400) as usize).max(1000),
            iterations: 10,
            parallelism: setup.default_parallelism(),
            seed: CONCOMP_SEED,
        }
    }
}

/// Register the message scatter+combine kernel.
pub fn register_kernels(fabric: &GpuFabric) {
    fabric.register_kernel("cudaMinByKey", min_by_key_kernel);
    fabric.register_kernel("cudaCcScatter", |args: &mut KernelArgs<'_, '_>| {
        use std::collections::BTreeMap;
        let def = LabelledPage::def();
        let out_def = AggMsg::def();
        let n = args.n_actual;
        let reader = RecordReader::new(args.inputs[0], &def, DataLayout::Aos, n);
        // Scatter labels to self + neighbours, min-combining within the
        // block (segmented sort/reduce on a real device).
        let mut agg: BTreeMap<u32, u32> = BTreeMap::new();
        let mut note = |dst: u32, label: u32| match agg.get_mut(&dst) {
            Some(cur) => *cur = (*cur).min(label),
            None => {
                agg.insert(dst, label);
            }
        };
        for i in 0..n {
            let label = reader.get_u64(i, 1, 0) as u32;
            note(reader.get_u64(i, 0, 0) as u32, label);
            for k in 0..DEG {
                note(reader.get_u64(i, 2, k) as u32, label);
            }
        }
        let capacity = n * (DEG + 1);
        let mut view = RecordView::new(args.outputs[0], &out_def, DataLayout::Aos, capacity);
        let emitted = agg.len();
        for (i, (dst, label)) in agg.into_iter().enumerate() {
            AggMsg { dst, label }.store(&mut view, i);
        }
        KernelProfile::new(
            args.n_logical as f64 * (8 * (DEG + 1)) as f64,
            args.n_logical as f64
                * (LabelledPage::def().size() + 2 * (DEG + 1) * AggMsg::def().size()) as f64,
        )
        .with_coalescing(0.7)
        .with_emitted(emitted)
    });
}

/// The GPU reducer kernel (the paper's gpuReduce): min-by-key over shuffled
/// label messages within each block.
fn min_by_key_kernel(args: &mut KernelArgs<'_, '_>) -> KernelProfile {
    use std::collections::BTreeMap;
    let def = AggMsg::def();
    let n = args.n_actual;
    let reader = RecordReader::new(args.inputs[0], &def, DataLayout::Aos, n);
    let mut agg: BTreeMap<u32, u32> = BTreeMap::new();
    for i in 0..n {
        let dst = reader.get_u64(i, 0, 0) as u32;
        let label = reader.get_u64(i, 1, 0) as u32;
        match agg.get_mut(&dst) {
            Some(cur) => *cur = (*cur).min(label),
            None => {
                agg.insert(dst, label);
            }
        }
    }
    let mut view = RecordView::new(args.outputs[0], &def, DataLayout::Aos, n);
    let emitted = agg.len();
    for (i, (dst, label)) in agg.into_iter().enumerate() {
        AggMsg { dst, label }.store(&mut view, i);
    }
    KernelProfile::new(
        args.n_logical as f64 * 10.0,
        args.n_logical as f64 * (2 * AggMsg::def().size()) as f64,
    )
    .with_coalescing(0.8)
    .with_emitted(emitted)
}

/// CPU cost of Flink's sort-based grouped reduce per shuffled record: the
/// min-fold compares and branches per label on top of the deserialize/sort
/// path, making CC's baseline reduce the heaviest of the graph workloads.
pub fn cpu_reduce_cost() -> OpCost {
    OpCost::new(6.0, 24.0).with_overhead_factor(2.6)
}

/// Per-page CPU cost of the message flatMap (one boxed Tuple2 per message,
/// including the self message, plus comparisons).
pub fn cpu_scatter_cost() -> OpCost {
    OpCost::new((3 * (DEG + 1)) as f64, ((DEG + 1) * 12) as f64)
        .with_overhead_factor((DEG + 1) as f64 * 1.3)
}

/// Per-record cost of the raw-buffer unpack on the GPU path.
pub fn gpu_unpack_cost() -> OpCost {
    OpCost::new(2.0, 12.0).with_overhead_factor(0.3)
}

fn read_adjacency(env: &FlinkEnv, params: &Params) -> DataSet<(u32, [u32; DEG])> {
    let seed = params.seed;
    let n_act = params.n_actual;
    let scale = params.n_logical as f64 / n_act as f64;
    env.read_hdfs(
        "pages",
        "/input/concomp",
        params.n_logical,
        params.n_actual,
        ADJ_PAIR_BYTES,
        params.parallelism,
        move |i| {
            let page = (i as f64 / scale).round() as usize % n_act;
            (page as u32, page_links::<DEG>(seed, i, n_act as u64))
        },
    )
}

fn digest(labels: &[(u32, u32)]) -> f64 {
    labels.iter().map(|(_, l)| *l as f64).sum()
}

fn drive(
    env: &FlinkEnv,
    params: &Params,
    mut aggregate: impl FnMut(&DataSet<(u32, (u32, [u32; DEG]))>) -> DataSet<(u32, u32)>,
) -> (Vec<(u32, u32)>, Vec<SimTime>) {
    let scale = params.n_logical as f64 / params.n_actual as f64;
    let adj = read_adjacency(env, params).partition_by_key(
        "partition-adj",
        ADJ_PAIR_BYTES,
        scale,
        OpCost::trivial(),
    );
    let mut labels = adj.map("init-labels", OpCost::trivial(), |(p, _)| (*p, *p));
    let mut per_iteration = Vec::with_capacity(params.iterations);
    let mut last = env.frontier();
    for _ in 0..params.iterations {
        let joined = labels.join_local("label-join-adj", &adj, scale);
        labels = aggregate(&joined);
        per_iteration.push(env.frontier() - last);
        last = env.frontier();
    }
    let got = labels.collect("labels", LABEL_PAIR_BYTES);
    labels.write_hdfs("save-labels", "/output/concomp", LABEL_PAIR_BYTES);
    (got, per_iteration)
}

/// Run on the baseline engine.
pub fn run_cpu(setup: &Setup, params: &Params) -> AppRun {
    run_cpu_at(setup, params, SimTime::ZERO)
}

/// Run on the baseline engine, submitting at `at`.
pub fn run_cpu_at(setup: &Setup, params: &Params, at: SimTime) -> AppRun {
    let env = FlinkEnv::submit(&setup.cluster, "concomp-cpu", at);
    let (labels, per_iteration) = drive(&env, params, |joined| {
        let scale = joined.scale();
        joined
            .flat_map(
                "cc-scatter",
                cpu_scatter_cost(),
                scale,
                |(page, (label, links)), out| {
                    out.push((*page, *label));
                    for &l in links {
                        out.push((l, *label));
                    }
                },
            )
            .reduce_by_key(
                "min-label",
                cpu_reduce_cost(),
                LABEL_PAIR_BYTES,
                scale,
                |a, b| *a.min(b),
            )
    });
    AppRun {
        mode: ExecMode::Cpu,
        report: env.finish(),
        digest: digest(&labels),
        per_iteration,
    }
}

/// Run on GFlink.
pub fn run_gpu(setup: &Setup, params: &Params) -> AppRun {
    run_gpu_at(setup, params, SimTime::ZERO)
}

/// Run on GFlink, submitting at `at`.
pub fn run_gpu_at(setup: &Setup, params: &Params, at: SimTime) -> AppRun {
    register_kernels(&setup.fabric);
    let genv = GflinkEnv::submit(&setup.cluster, &setup.fabric, "concomp-gpu", at);
    let genv2 = genv.clone();
    let (labels, per_iteration) = drive(&genv.flink, params, move |joined| {
        let scale = joined.scale();
        let packed = joined.map(
            "pack",
            OpCost::new(2.0, 44.0).with_overhead_factor(0.2),
            |(page, (label, links))| LabelledPage {
                page: *page,
                label: *label,
                links: *links,
            },
        );
        let gdst: GDataSet<LabelledPage> = genv2.to_gdst(packed, DataLayout::Aos);
        let spec = GpuMapSpec::new("cudaCcScatter")
            .uncached()
            .with_out_mode(OutMode::Bounded {
                per_record: DEG + 1,
            })
            .with_out_scale(scale)
            .build(&setup.fabric)
            .expect("concomp spec");
        let msgs: GDataSet<AggMsg> = gdst.gpu_map_partition("cc-scatter", &spec);
        let pairs = msgs
            .inner()
            .map("unpack", gpu_unpack_cost(), |rec| (rec.dst, rec.label));
        // The paper's gpuReduce: shuffle, min-by-key per block on the GPU,
        // boundary merge.
        genv2.gpu_reduce_by_key(
            "min-label",
            &pairs,
            "cudaMinByKey",
            GpuReduceCosts::default(),
            |(d, l)| AggMsg { dst: *d, label: *l },
            |r| (r.dst, r.label),
            |a, b| *a.min(b),
        )
    });
    AppRun {
        mode: ExecMode::Gpu,
        report: genv.finish(),
        digest: digest(&labels),
        per_iteration,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::digests_match;

    fn small(setup: &Setup) -> Params {
        Params {
            n_logical: 2_000_000,
            n_actual: 1_000,
            iterations: 3,
            parallelism: setup.default_parallelism(),
            seed: 9,
        }
    }

    #[test]
    fn cpu_and_gpu_agree() {
        let s1 = Setup::standard(2);
        let cpu = run_cpu(&s1, &small(&s1));
        let s2 = Setup::standard(2);
        let gpu = run_gpu(&s2, &small(&s2));
        assert!(
            digests_match(cpu.digest, gpu.digest, 1e-9),
            "{} vs {}",
            cpu.digest,
            gpu.digest
        );
    }

    #[test]
    fn labels_decrease_monotonically_to_components() {
        // With hub-skewed links, nearly everything connects to the hubs, so
        // after enough iterations labels collapse toward tiny ids.
        let s = Setup::standard(1);
        let p = Params {
            n_logical: 500_000,
            n_actual: 500,
            iterations: 8,
            parallelism: 4,
            seed: 9,
        };
        let run = run_cpu(&s, &p);
        // Average label far below average id (249.5).
        let avg_label = run.digest / p.n_actual as f64;
        assert!(avg_label < 50.0, "labels did not propagate: {avg_label}");
    }

    #[test]
    fn per_iteration_recorded() {
        let s = Setup::standard(1);
        let run = run_cpu(&s, &small(&s));
        assert_eq!(run.per_iteration.len(), 3);
        assert!(run.per_iteration.iter().all(|t| !t.is_zero()));
    }
}

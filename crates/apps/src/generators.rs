//! Deterministic workload generators (Table 1).
//!
//! Every generator is a pure function of a seed and a logical index, so the
//! scale-reduced materialization (see DESIGN.md §2) samples the same
//! distribution the paper-scale dataset would have — any logical index can
//! be generated without generating its predecessors.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn rng_for(seed: u64, index: u64) -> SmallRng {
    // Index-addressable determinism: hash (seed, index) into a seed.
    let mut z = seed ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    SmallRng::seed_from_u64(z ^ (z >> 31))
}

/// A point near one of `k` well-separated cluster centers (KMeans input).
pub fn clustered_point<const D: usize>(seed: u64, index: u64, k: usize) -> [f32; D] {
    let mut rng = rng_for(seed, index);
    let cluster = (index % k as u64) as usize;
    let mut p = [0.0f32; D];
    for (d, v) in p.iter_mut().enumerate() {
        // Center c sits at 10·c along every axis, noise is unit-scale.
        let center = (cluster as f32) * 10.0 + (d as f32) * 0.1;
        *v = center + rng.gen_range(-1.0..1.0);
    }
    p
}

/// A labelled regression sample: features uniform in [-1, 1], label from a
/// fixed ground-truth hyperplane plus noise (LinearRegression input).
pub fn regression_sample<const D: usize>(seed: u64, index: u64) -> ([f32; D], f32) {
    let mut rng = rng_for(seed, index);
    let mut x = [0.0f32; D];
    let mut y = 0.5; // intercept
    for (d, v) in x.iter_mut().enumerate() {
        *v = rng.gen_range(-1.0..1.0);
        // Ground-truth weight for dimension d: alternating ±(d+1)/D.
        let w = (d as f32 + 1.0) / D as f32 * if d % 2 == 0 { 1.0 } else { -1.0 };
        y += w * *v;
    }
    y += rng.gen_range(-0.01..0.01);
    (x, y)
}

/// One ELLPACK sparse-matrix row: `NNZ` column indices (uniform over
/// `num_cols`) and values (SpMV input).
pub fn ell_row<const NNZ: usize>(seed: u64, row: u64, num_cols: u64) -> ([u32; NNZ], [f32; NNZ]) {
    let mut rng = rng_for(seed, row);
    let mut cols = [0u32; NNZ];
    let mut vals = [0.0f32; NNZ];
    for i in 0..NNZ {
        cols[i] = rng.gen_range(0..num_cols.max(1)) as u32;
        vals[i] = rng.gen_range(-1.0..1.0);
    }
    (cols, vals)
}

/// Out-links of page `page` in a synthetic fixed-degree web graph
/// (PageRank / ConnectedComponents input). Preferential-attachment-ish:
/// half the links go to low-numbered "hub" pages.
pub fn page_links<const DEG: usize>(seed: u64, page: u64, num_pages: u64) -> [u32; DEG] {
    let mut rng = rng_for(seed, page);
    let n = num_pages.max(1);
    let hubs = (n / 100).max(1);
    let mut links = [0u32; DEG];
    for (i, l) in links.iter_mut().enumerate() {
        let target = if i % 2 == 0 {
            rng.gen_range(0..hubs)
        } else {
            rng.gen_range(0..n)
        };
        *l = target as u32;
    }
    links
}

/// A word id drawn from a Zipf-like distribution over `vocab` words
/// (WordCount input). Uses the standard inverse-CDF approximation for
/// Zipf(s=1).
pub fn zipf_word(seed: u64, index: u64, vocab: u32) -> u32 {
    let mut rng = rng_for(seed, index);
    let v = vocab.max(1) as f64;
    let u: f64 = rng.gen_range(0.0..1.0);
    // Inverse CDF of p(r) ∝ 1/r on [1, v]: r = v^u (harmonic approx).
    let rank = v.powf(u).floor() as u32;
    rank.min(vocab.saturating_sub(1))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generators_are_deterministic() {
        assert_eq!(
            clustered_point::<4>(1, 42, 8),
            clustered_point::<4>(1, 42, 8)
        );
        assert_eq!(regression_sample::<4>(1, 42), regression_sample::<4>(1, 42));
        assert_eq!(ell_row::<8>(1, 42, 100), ell_row::<8>(1, 42, 100));
        assert_eq!(page_links::<8>(1, 42, 100), page_links::<8>(1, 42, 100));
        assert_eq!(zipf_word(1, 42, 1000), zipf_word(1, 42, 1000));
    }

    #[test]
    fn different_indices_differ() {
        assert_ne!(clustered_point::<4>(1, 1, 8), clustered_point::<4>(1, 2, 8));
        assert_ne!(ell_row::<8>(1, 1, 1000), ell_row::<8>(1, 2, 1000));
    }

    #[test]
    fn clustered_points_stay_near_their_center() {
        for i in 0..100u64 {
            let p = clustered_point::<4>(7, i, 4);
            let cluster = (i % 4) as f32;
            for (d, v) in p.iter().enumerate() {
                let center = cluster * 10.0 + d as f32 * 0.1;
                assert!((v - center).abs() <= 1.0, "point strayed from center");
            }
        }
    }

    #[test]
    fn regression_labels_follow_hyperplane() {
        for i in 0..100u64 {
            let (x, y) = regression_sample::<4>(7, i);
            let mut expect = 0.5;
            for (d, v) in x.iter().enumerate() {
                let w = (d as f32 + 1.0) / 4.0 * if d % 2 == 0 { 1.0 } else { -1.0 };
                expect += w * v;
            }
            assert!((y - expect).abs() < 0.02);
        }
    }

    #[test]
    fn ell_rows_in_bounds() {
        for r in 0..100u64 {
            let (cols, _) = ell_row::<8>(3, r, 500);
            assert!(cols.iter().all(|&c| c < 500));
        }
    }

    #[test]
    fn page_links_in_bounds_and_hub_skewed() {
        let n = 10_000u64;
        let mut hub_hits = 0;
        for p in 0..500u64 {
            let links = page_links::<8>(3, p, n);
            for &l in &links {
                assert!((l as u64) < n);
                if (l as u64) < n / 100 {
                    hub_hits += 1;
                }
            }
        }
        // At least ~half the links target the hub range.
        assert!(hub_hits > 500 * 8 / 3, "hub skew missing: {hub_hits}");
    }

    #[test]
    fn zipf_skews_to_low_ranks() {
        let mut low = 0;
        let n = 10_000;
        for i in 0..n {
            if zipf_word(11, i, 10_000) < 10 {
                low += 1;
            }
        }
        // Rank < 10 out of 10k vocab should still collect a sizable share.
        assert!(low > n / 20, "zipf not skewed: {low}");
    }
}

//! KMeans clustering (HiBench workload; Figs. 5a, 7a, 7c, 8b).
//!
//! `k = 10` centers in `d = 20` dimensions (HiBench's defaults of the
//! paper's era), 150–270 M points, 10 iterations. Each iteration assigns
//! every point to its nearest center (`3·k·d` flops/point — the
//! compute-bound part the GPU accelerates) and rebuilds the centers from
//! per-partition (CPU) or per-block (GPU) partial sums. The points are
//! cached in GPU memory after the first iteration, so later GFlink
//! iterations pay no H2D for them (§6.6.1).

use crate::common::{AppRun, ExecMode, Setup};
use crate::generators::clustered_point;
use gflink_core::{GDataSet, GRecord, GflinkEnv, GpuFabric, GpuMapSpec, OutMode};
use gflink_flink::{DataSet, FlinkEnv, OpCost};
use gflink_gpu::{KernelArgs, KernelProfile};
use gflink_memory::{
    AlignClass, DataLayout, FieldDef, GStructDef, HBuffer, PrimType, RecordReader, RecordView,
};
use gflink_sim::SimTime;
use std::sync::Arc;

/// Feature dimensionality.
pub const D: usize = 16;
/// Number of clusters.
pub const K: usize = 8;

/// Bytes of one point at paper scale.
pub const POINT_BYTES: f64 = (D * 4) as f64;

/// A KMeans input point.
#[derive(Clone, Debug, PartialEq)]
pub struct Point {
    /// Feature vector.
    pub coords: [f32; D],
}

impl GRecord for Point {
    fn def() -> GStructDef {
        GStructDef::new(
            "KmPoint",
            AlignClass::Align8,
            vec![FieldDef::array("coords", PrimType::F32, D)],
        )
    }
    fn store(&self, view: &mut RecordView<'_>, idx: usize) {
        for (d, v) in self.coords.iter().enumerate() {
            view.set_f64(idx, 0, d, *v as f64);
        }
    }
    fn load(reader: &RecordReader<'_>, idx: usize) -> Self {
        let mut coords = [0.0f32; D];
        for (d, v) in coords.iter_mut().enumerate() {
            *v = reader.get_f64(idx, 0, d) as f32;
        }
        Point { coords }
    }
}

/// A partial centroid update: per-center coordinate sums and point count.
#[derive(Clone, Debug, PartialEq)]
pub struct Partial {
    /// Center index this partial belongs to.
    pub center: u32,
    /// Points assigned.
    pub count: u32,
    /// Coordinate sums.
    pub sums: [f32; D],
}

impl GRecord for Partial {
    fn def() -> GStructDef {
        GStructDef::new(
            "KmPartial",
            AlignClass::Align8,
            vec![
                FieldDef::scalar("center", PrimType::U32),
                FieldDef::scalar("count", PrimType::U32),
                FieldDef::array("sums", PrimType::F32, D),
            ],
        )
    }
    fn store(&self, view: &mut RecordView<'_>, idx: usize) {
        view.set_u64(idx, 0, 0, self.center as u64);
        view.set_u64(idx, 1, 0, self.count as u64);
        for (d, v) in self.sums.iter().enumerate() {
            view.set_f64(idx, 2, d, *v as f64);
        }
    }
    fn load(reader: &RecordReader<'_>, idx: usize) -> Self {
        let mut sums = [0.0f32; D];
        for (d, v) in sums.iter_mut().enumerate() {
            *v = reader.get_f64(idx, 2, d) as f32;
        }
        Partial {
            center: reader.get_u64(idx, 0, 0) as u32,
            count: reader.get_u64(idx, 1, 0) as u32,
            sums,
        }
    }
}

/// Workload parameters.
#[derive(Clone, Debug)]
pub struct Params {
    /// Points at paper scale.
    pub n_logical: u64,
    /// Points actually materialized.
    pub n_actual: usize,
    /// Iterations to run.
    pub iterations: usize,
    /// Data parallelism (task slots used).
    pub parallelism: usize,
    /// Generator seed.
    pub seed: u64,
}

impl Params {
    /// A Table 1 size: `millions` of points (150–270 in the paper) on the
    /// given setup, with the standard 1:2000 materialization scale.
    pub fn paper(millions: u64, setup: &Setup) -> Params {
        Params {
            n_logical: millions * 1_000_000,
            n_actual: ((millions * 500) as usize).max(1000),
            iterations: 10,
            parallelism: setup.default_parallelism(),
            seed: KMEANS_SEED,
        }
    }
}

/// Default generator seed ("KMEANS" in hex).
pub const KMEANS_SEED: u64 = 0x4B4D_4541_4E53;

/// Register the KMeans kernel (`cudaKmeansAssign`) with the fabric.
pub fn register_kernels(fabric: &GpuFabric) {
    fabric.register_kernel("cudaKmeansAssign", kmeans_assign_kernel);
}

/// The GPU kernel: nearest-center assignment with per-block partial sums.
/// Inputs: `[points block (cached), centers (k·d f32)]`; output: `K`
/// [`Partial`] records.
fn kmeans_assign_kernel(args: &mut KernelArgs<'_, '_>) -> KernelProfile {
    let def = Point::def();
    let n = args.n_actual;
    let reader = RecordReader::new(args.inputs[0], &def, DataLayout::Aos, n);
    let centers = args.inputs[1];
    let mut sums = vec![[0.0f64; D]; K];
    let mut counts = [0u32; K];
    for i in 0..n {
        let mut best = 0usize;
        let mut best_d2 = f64::INFINITY;
        for c in 0..K {
            let mut d2 = 0.0f64;
            for d in 0..D {
                let pc = reader.get_f64(i, 0, d);
                let cc = centers.read_f32((c * D + d) * 4) as f64;
                let diff = pc - cc;
                d2 += diff * diff;
            }
            if d2 < best_d2 {
                best_d2 = d2;
                best = c;
            }
        }
        counts[best] += 1;
        for d in 0..D {
            sums[best][d] += reader.get_f64(i, 0, d);
        }
    }
    let out_def = Partial::def();
    let mut view = RecordView::new(args.outputs[0], &out_def, DataLayout::Aos, K);
    for c in 0..K {
        let partial = Partial {
            center: c as u32,
            count: counts[c],
            sums: std::array::from_fn(|d| sums[c][d] as f32),
        };
        partial.store(&mut view, c);
    }
    KernelProfile::new(
        args.n_logical as f64 * (3 * K * D) as f64,
        args.n_logical as f64 * POINT_BYTES,
    )
}

/// CPU-side assignment over one partition (the baseline's mapPartition).
fn cpu_assign(points: &[Point], centers: &[[f32; D]; K]) -> Vec<Partial> {
    let mut sums = vec![[0.0f64; D]; K];
    let mut counts = [0u32; K];
    for p in points {
        let mut best = 0usize;
        let mut best_d2 = f64::INFINITY;
        for (c, center) in centers.iter().enumerate() {
            let mut d2 = 0.0f64;
            for d in 0..D {
                let diff = p.coords[d] as f64 - center[d] as f64;
                d2 += diff * diff;
            }
            if d2 < best_d2 {
                best_d2 = d2;
                best = c;
            }
        }
        counts[best] += 1;
        for d in 0..D {
            sums[best][d] += p.coords[d] as f64;
        }
    }
    (0..K)
        .map(|c| Partial {
            center: c as u32,
            count: counts[c],
            sums: std::array::from_fn(|d| sums[c][d] as f32),
        })
        .collect()
}

/// Fold partials (from any granularity) into fresh centers.
fn update_centers(partials: &[Partial], centers: &mut [[f32; D]; K]) {
    let mut sums = vec![[0.0f64; D]; K];
    let mut counts = [0u64; K];
    for p in partials {
        let c = p.center as usize;
        counts[c] += p.count as u64;
        for d in 0..D {
            sums[c][d] += p.sums[d] as f64;
        }
    }
    for c in 0..K {
        if counts[c] > 0 {
            for d in 0..D {
                centers[c][d] = (sums[c][d] / counts[c] as f64) as f32;
            }
        }
    }
}

fn initial_centers(seed: u64) -> [[f32; D]; K] {
    std::array::from_fn(|c| clustered_point::<D>(seed, c as u64, K))
}

fn read_points(env: &FlinkEnv, params: &Params) -> DataSet<Point> {
    let seed = params.seed;
    env.read_hdfs(
        "kmeans-points",
        "/input/kmeans",
        params.n_logical,
        params.n_actual,
        POINT_BYTES,
        params.parallelism,
        move |i| Point {
            coords: clustered_point::<D>(seed, i, K),
        },
    )
}

fn digest(centers: &[[f32; D]; K]) -> f64 {
    centers
        .iter()
        .flat_map(|c| c.iter())
        .map(|v| *v as f64)
        .sum()
}

/// The CPU cost of assigning one point: `3·k·d` flops over `d` floats.
///
/// The record-level overhead factor is below 1: HiBench's KMeans keeps its
/// points in primitive `double[]`s, so the per-record dispatch cost is
/// amortized over the k·d-deep inner loop instead of being paid per field.
pub fn cpu_assign_cost() -> OpCost {
    OpCost::new((3 * K * D) as f64, POINT_BYTES).with_overhead_factor(0.5)
}

/// Run KMeans on the baseline engine.
pub fn run_cpu(setup: &Setup, params: &Params) -> AppRun {
    run_cpu_at(setup, params, SimTime::ZERO)
}

/// Run KMeans on the baseline engine, submitting at `at`.
pub fn run_cpu_at(setup: &Setup, params: &Params, at: SimTime) -> AppRun {
    let env = FlinkEnv::submit(&setup.cluster, "kmeans-cpu", at);
    let mut points = read_points(&env, params);
    let mut centers = initial_centers(params.seed);
    let mut per_iteration = Vec::with_capacity(params.iterations);
    let mut last = env.frontier();
    for _ in 0..params.iterations {
        let cs = centers;
        let partials = points.map_partition("kmeans-assign", cpu_assign_cost(), 1.0, move |pts| {
            cpu_assign(pts, &cs)
        });
        let got = partials.collect("partials", Partial::def().size() as f64);
        update_centers(&got, &mut centers);
        env.broadcast_bytes((K * D * 4) as u64);
        points.set_min_ready(env.frontier());
        per_iteration.push(env.frontier() - last);
        last = env.frontier();
    }
    // Persist the centers.
    let out = env.parallelize("centers", vec![0u8], 1, 1.0);
    out.write_hdfs("save-centers", "/output/kmeans", (K * D * 4) as f64);
    AppRun {
        mode: ExecMode::Cpu,
        report: env.finish(),
        digest: digest(&centers),
        per_iteration,
    }
}

/// Run KMeans on GFlink.
pub fn run_gpu(setup: &Setup, params: &Params) -> AppRun {
    run_gpu_at(setup, params, SimTime::ZERO)
}

/// Run KMeans on GFlink, submitting at `at`.
pub fn run_gpu_at(setup: &Setup, params: &Params, at: SimTime) -> AppRun {
    register_kernels(&setup.fabric);
    let genv = GflinkEnv::submit(&setup.cluster, &setup.fabric, "kmeans-gpu", at);
    let points = read_points(&genv.flink, params);
    let mut gpoints: GDataSet<Point> = genv.to_gdst(points, DataLayout::Aos);
    let mut centers = initial_centers(params.seed);
    let mut per_iteration = Vec::with_capacity(params.iterations);
    let mut last = genv.flink.frontier();
    for _ in 0..params.iterations {
        let mut cbuf = HBuffer::zeroed(K * D * 4);
        for c in 0..K {
            for d in 0..D {
                cbuf.write_f32((c * D + d) * 4, centers[c][d]);
            }
        }
        let spec = GpuMapSpec::new("cudaKmeansAssign")
            .with_params(vec![K as f64, D as f64])
            .with_out_mode(OutMode::PerBlock(K))
            .with_out_scale(1.0)
            .with_extra_input(Arc::new(cbuf), (K * D * 4) as u64)
            .build(&setup.fabric)
            .expect("kmeans spec");
        let partials: GDataSet<Partial> = gpoints.gpu_map_partition("kmeans-assign", &spec);
        let got = partials
            .inner()
            .collect("partials", Partial::def().size() as f64);
        update_centers(&got, &mut centers);
        genv.flink.broadcast_bytes((K * D * 4) as u64);
        gpoints.set_min_ready(genv.flink.frontier());
        per_iteration.push(genv.flink.frontier() - last);
        last = genv.flink.frontier();
    }
    let out = genv.flink.parallelize("centers", vec![0u8], 1, 1.0);
    out.write_hdfs("save-centers", "/output/kmeans", (K * D * 4) as f64);
    AppRun {
        mode: ExecMode::Gpu,
        report: genv.finish(),
        digest: digest(&centers),
        per_iteration,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::digests_match;

    fn small_params(setup: &Setup) -> Params {
        Params {
            n_logical: 10_000_000,
            n_actual: 2_000,
            iterations: 3,
            parallelism: setup.default_parallelism(),
            seed: 42,
        }
    }

    #[test]
    fn cpu_and_gpu_agree_on_centers() {
        let setup = Setup::standard(2);
        let p = small_params(&setup);
        let cpu = run_cpu(&setup, &p);
        let setup2 = Setup::standard(2);
        let gpu = run_gpu(&setup2, &p);
        assert!(
            digests_match(cpu.digest, gpu.digest, 1e-3),
            "digests differ: {} vs {}",
            cpu.digest,
            gpu.digest
        );
    }

    #[test]
    fn gpu_beats_cpu_on_compute_bound_kmeans() {
        let setup = Setup::standard(2);
        let p = Params {
            n_logical: 100_000_000,
            n_actual: 4_000,
            iterations: 5,
            parallelism: setup.default_parallelism(),
            seed: 1,
        };
        let cpu = run_cpu(&setup, &p);
        let setup2 = Setup::standard(2);
        let gpu = run_gpu(&setup2, &p);
        assert!(
            gpu.report.total < cpu.report.total,
            "GFlink {} should beat Flink {}",
            gpu.report.total,
            cpu.report.total
        );
    }

    #[test]
    fn later_gpu_iterations_hit_the_cache() {
        let setup = Setup::standard(1);
        let p = small_params(&setup);
        let gpu = run_gpu(&setup, &p);
        assert!(gpu.per_iteration.len() == 3);
        // Iterations after the first are cheaper (points cached on GPU).
        assert!(
            gpu.per_iteration[1] < gpu.per_iteration[0],
            "{:?}",
            gpu.per_iteration
        );
    }

    #[test]
    fn centers_converge_toward_generator_clusters() {
        // With K == generator cluster count, centers should approach the
        // lattice 10·c + 0.1·d.
        let setup = Setup::standard(1);
        let p = Params {
            n_logical: 1_000_000,
            n_actual: 5_000,
            iterations: 5,
            parallelism: 4,
            seed: 7,
        };
        let cpu = run_cpu(&setup, &p);
        // Digest of perfect centers: sum over c,d of (10c + 0.1d).
        let ideal: f64 = (0..K)
            .flat_map(|c| (0..D).map(move |d| 10.0 * c as f64 + 0.1 * d as f64))
            .sum();
        assert!(
            (cpu.digest - ideal).abs() / ideal < 0.05,
            "digest {} vs ideal {ideal}",
            cpu.digest
        );
    }

    #[test]
    fn record_roundtrip() {
        let def = Point::def();
        let p = Point {
            coords: std::array::from_fn(|i| i as f32),
        };
        let mut buf = HBuffer::zeroed(RecordView::required_bytes(&def, DataLayout::Aos, 1));
        {
            let mut view = RecordView::new(&mut buf, &def, DataLayout::Aos, 1);
            p.store(&mut view, 0);
        }
        let reader = RecordReader::new(&buf, &def, DataLayout::Aos, 1);
        assert_eq!(Point::load(&reader, 0), p);
    }
}

#![warn(missing_docs)]
#![allow(clippy::needless_range_loop)] // dimension-indexed numeric kernels

//! # gflink-apps
//!
//! The paper's benchmark applications (Table 1), each implemented twice:
//! once on the baseline CPU engine (`run_cpu`) and once on GFlink's GPU
//! path (`run_gpu`), over identical deterministic workloads.
//!
//! | app | Table 1 sizes | kind |
//! |-----|---------------|------|
//! | [`kmeans`] | 150–270 M points | iterative, compute-bound |
//! | [`pagerank`] | 5–25 M pages | iterative, shuffle-heavy |
//! | [`wordcount`] | 24–56 GB text | one-pass batch, IO-bound |
//! | [`concomp`] | 5–25 M pages | iterative label propagation |
//! | [`linreg`] | 150–270 M points | iterative, compute-bound |
//! | [`spmv`] | 2–32 GB matrix | iterative, memory-bound |
//!
//! Plus [`pointadd`], the PointAdd microkernel used by Fig. 8b/8c, and
//! [`nexmark`] — the Nexmark auction queries (q3/q6/q13) ported onto the
//! DataStream builder as first-class streaming workloads.
//!
//! Every app returns an [`common::AppRun`] with the job report and a result
//! digest; CPU and GPU runs of the same workload must agree on the digest
//! (cross-checked in each module's tests and in the integration suite).

pub mod common;
pub mod concomp;
pub mod generators;
pub mod kmeans;
pub mod linreg;
pub mod nexmark;
pub mod pagerank;
pub mod pointadd;
pub mod spmv;
pub mod wordcount;

pub use common::{run_concurrent, AppRun, ConcurrentJob, ExecMode, Setup};

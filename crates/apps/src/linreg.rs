//! Linear regression by batch gradient descent (Fig. 6b).
//!
//! 150–270 M labelled samples in `d = 12` dimensions, 10 iterations. Each
//! iteration computes the full-batch gradient of the squared loss — the
//! "bounded by calculations on each data point" workload for which the
//! paper reports its best speedup (≈9.2×) — then the driver takes a
//! gradient step and broadcasts the new weights.

use crate::common::{AppRun, ExecMode, Setup};
use crate::generators::regression_sample;
use gflink_core::{GDataSet, GRecord, GflinkEnv, GpuFabric, GpuMapSpec, OutMode};
use gflink_flink::{DataSet, FlinkEnv, OpCost};
use gflink_gpu::{KernelArgs, KernelProfile};
use gflink_memory::{
    AlignClass, DataLayout, FieldDef, GStructDef, HBuffer, PrimType, RecordReader, RecordView,
};
use gflink_sim::SimTime;
use std::sync::Arc;

/// Feature dimensionality.
pub const D: usize = 12;
/// Learning rate.
pub const LEARNING_RATE: f64 = 0.5;
/// Default generator seed.
pub const LINREG_SEED: u64 = 0x4C49_4E52_4547; // "LINREG"

/// Bytes of one sample at paper scale (features + label).
pub const SAMPLE_BYTES: f64 = ((D + 1) * 4) as f64;

/// One labelled sample.
#[derive(Clone, Debug, PartialEq)]
pub struct Sample {
    /// Features.
    pub x: [f32; D],
    /// Label.
    pub y: f32,
}

impl GRecord for Sample {
    fn def() -> GStructDef {
        GStructDef::new(
            "LrSample",
            AlignClass::Align8,
            vec![
                FieldDef::array("x", PrimType::F32, D),
                FieldDef::scalar("y", PrimType::F32),
            ],
        )
    }
    fn store(&self, view: &mut RecordView<'_>, idx: usize) {
        for (d, v) in self.x.iter().enumerate() {
            view.set_f64(idx, 0, d, *v as f64);
        }
        view.set_f64(idx, 1, 0, self.y as f64);
    }
    fn load(reader: &RecordReader<'_>, idx: usize) -> Self {
        Sample {
            x: std::array::from_fn(|d| reader.get_f64(idx, 0, d) as f32),
            y: reader.get_f64(idx, 1, 0) as f32,
        }
    }
}

/// A gradient partial: Σ residual·x per dimension, Σ residual (bias), count.
#[derive(Clone, Debug, PartialEq)]
pub struct GradPartial {
    /// Per-dimension gradient sums.
    pub grad: [f32; D],
    /// Bias gradient sum.
    pub bias: f32,
    /// Samples folded in.
    pub count: u32,
}

impl GRecord for GradPartial {
    fn def() -> GStructDef {
        GStructDef::new(
            "LrGrad",
            AlignClass::Align8,
            vec![
                FieldDef::array("grad", PrimType::F32, D),
                FieldDef::scalar("bias", PrimType::F32),
                FieldDef::scalar("count", PrimType::U32),
            ],
        )
    }
    fn store(&self, view: &mut RecordView<'_>, idx: usize) {
        for (d, v) in self.grad.iter().enumerate() {
            view.set_f64(idx, 0, d, *v as f64);
        }
        view.set_f64(idx, 1, 0, self.bias as f64);
        view.set_u64(idx, 2, 0, self.count as u64);
    }
    fn load(reader: &RecordReader<'_>, idx: usize) -> Self {
        GradPartial {
            grad: std::array::from_fn(|d| reader.get_f64(idx, 0, d) as f32),
            bias: reader.get_f64(idx, 1, 0) as f32,
            count: reader.get_u64(idx, 2, 0) as u32,
        }
    }
}

/// Workload parameters.
#[derive(Clone, Debug)]
pub struct Params {
    /// Samples at paper scale.
    pub n_logical: u64,
    /// Samples actually materialized.
    pub n_actual: usize,
    /// Gradient-descent iterations.
    pub iterations: usize,
    /// Data parallelism.
    pub parallelism: usize,
    /// Generator seed.
    pub seed: u64,
}

impl Params {
    /// A Table 1 size: `millions` of samples (150–270 in the paper).
    pub fn paper(millions: u64, setup: &Setup) -> Params {
        Params {
            n_logical: millions * 1_000_000,
            n_actual: ((millions * 500) as usize).max(1000),
            iterations: 10,
            parallelism: setup.default_parallelism(),
            seed: LINREG_SEED,
        }
    }
}

/// Register the gradient kernel.
pub fn register_kernels(fabric: &GpuFabric) {
    fabric.register_kernel("cudaLinregGrad", linreg_grad_kernel);
}

/// Per-sample work: predict (2·(d+1) flops) + gradient accumulate (2·(d+1)).
fn flops_per_sample() -> f64 {
    (4 * (D + 1)) as f64
}

fn linreg_grad_kernel(args: &mut KernelArgs<'_, '_>) -> KernelProfile {
    let def = Sample::def();
    let n = args.n_actual;
    let reader = RecordReader::new(args.inputs[0], &def, DataLayout::Aos, n);
    let weights = args.inputs[1]; // D weights + bias, f32
    let mut grad = [0.0f64; D];
    let mut bias = 0.0f64;
    for i in 0..n {
        let mut pred = weights.read_f32(D * 4) as f64; // bias term
        for d in 0..D {
            pred += weights.read_f32(d * 4) as f64 * reader.get_f64(i, 0, d);
        }
        let resid = pred - reader.get_f64(i, 1, 0);
        for d in 0..D {
            grad[d] += resid * reader.get_f64(i, 0, d);
        }
        bias += resid;
    }
    let out_def = GradPartial::def();
    let mut view = RecordView::new(args.outputs[0], &out_def, DataLayout::Aos, 1);
    GradPartial {
        grad: std::array::from_fn(|d| grad[d] as f32),
        bias: bias as f32,
        count: n as u32,
    }
    .store(&mut view, 0);
    KernelProfile::new(
        args.n_logical as f64 * flops_per_sample(),
        args.n_logical as f64 * SAMPLE_BYTES,
    )
}

fn cpu_gradient(samples: &[Sample], w: &[f64; D], b: f64) -> GradPartial {
    let mut grad = [0.0f64; D];
    let mut bias = 0.0f64;
    for s in samples {
        let mut pred = b;
        for d in 0..D {
            pred += w[d] * s.x[d] as f64;
        }
        let resid = pred - s.y as f64;
        for d in 0..D {
            grad[d] += resid * s.x[d] as f64;
        }
        bias += resid;
    }
    GradPartial {
        grad: std::array::from_fn(|d| grad[d] as f32),
        bias: bias as f32,
        count: samples.len() as u32,
    }
}

fn apply_step(partials: &[GradPartial], w: &mut [f64; D], b: &mut f64) {
    let mut grad = [0.0f64; D];
    let mut bias = 0.0f64;
    let mut count = 0u64;
    for p in partials {
        for d in 0..D {
            grad[d] += p.grad[d] as f64;
        }
        bias += p.bias as f64;
        count += p.count as u64;
    }
    if count == 0 {
        return;
    }
    for d in 0..D {
        w[d] -= LEARNING_RATE * grad[d] / count as f64;
    }
    *b -= LEARNING_RATE * bias / count as f64;
}

fn read_samples(env: &FlinkEnv, params: &Params) -> DataSet<Sample> {
    let seed = params.seed;
    env.read_hdfs(
        "linreg-samples",
        "/input/linreg",
        params.n_logical,
        params.n_actual,
        SAMPLE_BYTES,
        params.parallelism,
        move |i| {
            let (x, y) = regression_sample::<D>(seed, i);
            Sample { x, y }
        },
    )
}

fn digest(w: &[f64; D], b: f64) -> f64 {
    // Weighted so sign-alternating truth weights do not cancel.
    w.iter()
        .enumerate()
        .map(|(d, v)| v * (d as f64 + 1.0))
        .sum::<f64>()
        + b
}

/// Per-sample CPU cost of the gradient map.
///
/// The 2016-era Flink ML examples wrap every sample in a
/// `LabeledVector(DenseVector)` and allocate fresh vectors inside the
/// gradient closure — several object allocations and virtual dispatches per
/// sample on top of the arithmetic, hence the large overhead factor. This
/// churn is what makes LinearRegression the paper's best GPU case (9.2x).
pub fn cpu_grad_cost() -> OpCost {
    OpCost::new(flops_per_sample(), SAMPLE_BYTES).with_overhead_factor(3.0)
}

/// Run on the baseline engine.
pub fn run_cpu(setup: &Setup, params: &Params) -> AppRun {
    run_cpu_at(setup, params, SimTime::ZERO)
}

/// Run on the baseline engine, submitting at `at`.
pub fn run_cpu_at(setup: &Setup, params: &Params, at: SimTime) -> AppRun {
    let env = FlinkEnv::submit(&setup.cluster, "linreg-cpu", at);
    let mut samples = read_samples(&env, params);
    let mut w = [0.0f64; D];
    let mut b = 0.0f64;
    let mut per_iteration = Vec::with_capacity(params.iterations);
    let mut last = env.frontier();
    for _ in 0..params.iterations {
        let (wc, bc) = (w, b);
        let partials = samples.map_partition("linreg-grad", cpu_grad_cost(), 1.0, move |ss| {
            vec![cpu_gradient(ss, &wc, bc)]
        });
        let got = partials.collect("grads", GradPartial::def().size() as f64);
        apply_step(&got, &mut w, &mut b);
        env.broadcast_bytes(((D + 1) * 4) as u64);
        samples.set_min_ready(env.frontier());
        per_iteration.push(env.frontier() - last);
        last = env.frontier();
    }
    let out = env.parallelize("weights", vec![0u8], 1, 1.0);
    out.write_hdfs("save-weights", "/output/linreg", ((D + 1) * 4) as f64);
    AppRun {
        mode: ExecMode::Cpu,
        report: env.finish(),
        digest: digest(&w, b),
        per_iteration,
    }
}

/// Run on GFlink.
pub fn run_gpu(setup: &Setup, params: &Params) -> AppRun {
    run_gpu_at(setup, params, SimTime::ZERO)
}

/// Run on GFlink, submitting at `at`.
pub fn run_gpu_at(setup: &Setup, params: &Params, at: SimTime) -> AppRun {
    register_kernels(&setup.fabric);
    let genv = GflinkEnv::submit(&setup.cluster, &setup.fabric, "linreg-gpu", at);
    let samples = read_samples(&genv.flink, params);
    let mut gsamples: GDataSet<Sample> = genv.to_gdst(samples, DataLayout::Aos);
    let mut w = [0.0f64; D];
    let mut b = 0.0f64;
    let mut per_iteration = Vec::with_capacity(params.iterations);
    let mut last = genv.flink.frontier();
    for _ in 0..params.iterations {
        let mut wbuf = HBuffer::zeroed((D + 1) * 4);
        for d in 0..D {
            wbuf.write_f32(d * 4, w[d] as f32);
        }
        wbuf.write_f32(D * 4, b as f32);
        let spec = GpuMapSpec::new("cudaLinregGrad")
            .with_out_mode(OutMode::PerBlock(1))
            .with_out_scale(1.0)
            .with_extra_input(Arc::new(wbuf), ((D + 1) * 4) as u64)
            .build(&setup.fabric)
            .expect("linreg spec");
        let partials: GDataSet<GradPartial> = gsamples.gpu_map_partition("linreg-grad", &spec);
        let got = partials
            .inner()
            .collect("grads", GradPartial::def().size() as f64);
        apply_step(&got, &mut w, &mut b);
        genv.flink.broadcast_bytes(((D + 1) * 4) as u64);
        gsamples.set_min_ready(genv.flink.frontier());
        per_iteration.push(genv.flink.frontier() - last);
        last = genv.flink.frontier();
    }
    let out = genv.flink.parallelize("weights", vec![0u8], 1, 1.0);
    out.write_hdfs("save-weights", "/output/linreg", ((D + 1) * 4) as f64);
    AppRun {
        mode: ExecMode::Gpu,
        report: genv.finish(),
        digest: digest(&w, b),
        per_iteration,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::digests_match;

    fn small(setup: &Setup) -> Params {
        Params {
            n_logical: 10_000_000,
            n_actual: 2_000,
            iterations: 4,
            parallelism: setup.default_parallelism(),
            seed: 5,
        }
    }

    #[test]
    fn cpu_and_gpu_agree() {
        let s1 = Setup::standard(2);
        let cpu = run_cpu(&s1, &small(&s1));
        let s2 = Setup::standard(2);
        let gpu = run_gpu(&s2, &small(&s2));
        assert!(
            digests_match(cpu.digest, gpu.digest, 1e-3),
            "{} vs {}",
            cpu.digest,
            gpu.digest
        );
    }

    #[test]
    fn gradient_descent_moves_toward_ground_truth() {
        let s = Setup::standard(1);
        let p = Params {
            n_logical: 1_000_000,
            n_actual: 4_000,
            iterations: 8,
            parallelism: 4,
            seed: 5,
        };
        let run = run_cpu(&s, &p);
        // Digest of the generator's ground truth under the weighted digest.
        let truth_digest: f64 = (0..D)
            .map(|d| {
                let w = (d as f64 + 1.0) / D as f64 * if d % 2 == 0 { 1.0 } else { -1.0 };
                w * (d as f64 + 1.0)
            })
            .sum::<f64>()
            + 0.5;
        let start_dist = truth_digest.abs(); // digest of the all-zero start
        assert!(
            (run.digest - truth_digest).abs() < start_dist * 0.8,
            "digest {} did not move toward truth {truth_digest}",
            run.digest
        );
    }

    #[test]
    fn gpu_faster_at_scale() {
        let s1 = Setup::standard(2);
        let p = Params {
            n_logical: 200_000_000,
            n_actual: 4_000,
            iterations: 5,
            parallelism: s1.default_parallelism(),
            seed: 2,
        };
        let cpu = run_cpu(&s1, &p);
        let s2 = Setup::standard(2);
        let gpu = run_gpu(&s2, &p);
        assert!(gpu.report.total < cpu.report.total);
    }
}

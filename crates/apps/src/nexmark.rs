//! Nexmark streaming workloads on the DataStream builder.
//!
//! Nexmark models an online auction: a single event stream interleaves
//! **persons** (who sell and bid), **auctions** (items for sale) and
//! **bids**, in the canonical 1 : 3 : 46 proportion per 50 events. Every
//! entity here is a pure function of `(seed, index)` — the same
//! index-addressable determinism as [`crate::generators`] — so any run is
//! a pure function of its [`NexmarkConfig`] and whatever `FaultPlan` the
//! fabric carries, and digests can be compared bit-for-bit across engines,
//! placement policies, tenancy mixes and crash/restore boundaries.
//!
//! Three queries are ported, one per pipeline shape the builder supports:
//!
//! * [`q3`] — join-filter (Nexmark Q3): filter auctions by category on the
//!   engine, join survivors against the person table in the driver, keep
//!   sellers from the three target states.
//! * [`q6`] — windowed average price per seller (Q6-shaped): the full
//!   event-time path — timestamps, bounded-out-of-orderness watermarks,
//!   keyed tumbling windows, avg aggregation — on either engine.
//! * [`q13`] — bounded side-input enrichment (Q13): every bid is joined
//!   against a static side table (GPU-cached extra input on the fabric).

use std::cell::Cell;
use std::sync::Arc;

use gflink_core::{
    AggSpec, GRecord, GpuFabric, GpuMapSpec, OutMode, StreamEnv, StreamError, StreamReport,
    StreamSource, Tumbling, WatermarkStrategy, WindowedRun,
};
use gflink_gpu::{KernelArgs, KernelProfile};
use gflink_memory::{
    AlignClass, DataLayout, FieldDef, GStructDef, HBuffer, PrimType, RecordReader, RecordView,
};
use gflink_sim::SimTime;

/// Persons per 50-event group.
pub const PERSON_PROPORTION: u64 = 1;
/// Auctions per 50-event group.
pub const AUCTION_PROPORTION: u64 = 3;
/// Bids per 50-event group.
pub const BID_PROPORTION: u64 = 46;
/// Events per group.
pub const PROPORTION: u64 = PERSON_PROPORTION + AUCTION_PROPORTION + BID_PROPORTION;

/// US states a person can live in (q3 joins on three of them).
pub const NUM_STATES: u64 = 25;
/// The three states q3 keeps (Nexmark's OR, ID, CA).
pub const TARGET_STATES: [u64; 3] = [3, 11, 19];

/// Everything that parameterizes a Nexmark run. A run is a pure function
/// of this config (plus the fabric's fault/membership plans).
#[derive(Clone, Debug)]
pub struct NexmarkConfig {
    /// Generator seed.
    pub seed: u64,
    /// Offered event rate (persons + auctions + bids), events/second.
    pub events_per_sec: f64,
    /// How long the stream runs.
    pub duration: SimTime,
    /// Maximum event-time disorder injected by the generator.
    pub out_of_order: SimTime,
    /// Watermark bound (should be ≥ `out_of_order` for zero late drops).
    pub watermark_bound: SimTime,
    /// q6 tumbling window size.
    pub window: SimTime,
    /// Logical records per micro-batch (drives timing).
    pub batch_logical: u64,
    /// Materialized records per micro-batch (drive computation).
    pub batch_actual: usize,
    /// Number of auction categories.
    pub categories: u64,
    /// The category q3 filters for.
    pub target_category: u64,
    /// Rows in the q13 side table.
    pub side_rows: usize,
}

impl NexmarkConfig {
    /// A mid-size deterministic workload: 10 M events/s for 3 s, 25 ms of
    /// disorder under a 40 ms watermark bound, 250 ms windows.
    pub fn standard(seed: u64) -> NexmarkConfig {
        NexmarkConfig {
            seed,
            events_per_sec: 10e6,
            duration: SimTime::from_secs(3),
            out_of_order: SimTime::from_millis(25),
            watermark_bound: SimTime::from_millis(40),
            window: SimTime::from_millis(250),
            batch_logical: 500_000,
            batch_actual: 64,
            categories: 5,
            target_category: 2,
            side_rows: 500,
        }
    }

    fn bid_rate(&self) -> f64 {
        self.events_per_sec * BID_PROPORTION as f64 / PROPORTION as f64
    }

    fn auction_rate(&self) -> f64 {
        self.events_per_sec * AUCTION_PROPORTION as f64 / PROPORTION as f64
    }

    fn source_at(&self, rate: f64) -> StreamSource {
        StreamSource::at_rate(rate)
            .for_duration(self.duration)
            .with_batch(self.batch_logical, self.batch_actual)
    }

    /// The bid stream (q6, q13 input).
    pub fn bid_source(&self) -> StreamSource {
        self.source_at(self.bid_rate())
    }

    /// The auction stream (q3 input).
    pub fn auction_source(&self) -> StreamSource {
        self.source_at(self.auction_rate())
    }

    /// Event-time spacing between consecutive *materialized* records of a
    /// stream offered at `rate` logical records/second: the batch interval
    /// divided evenly across the batch's actual records.
    fn actual_period_ns(&self, rate: f64) -> u64 {
        let batch_secs = self.batch_logical as f64 / rate.max(1.0);
        (batch_secs * 1e9 / self.batch_actual.max(1) as f64) as u64
    }
}

/// SplitMix64 over (seed, stream tag, index) — index-addressable entropy.
fn mix(seed: u64, tag: u64, i: u64) -> u64 {
    let mut z =
        seed ^ tag.wrapping_mul(0xA24B_AED4_963E_E407) ^ i.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The state person `id` lives in.
pub fn person_state(seed: u64, person: u64) -> u64 {
    mix(seed, 0x5354, person) % NUM_STATES
}

/// The seller of auction `id` — drawn among the persons already emitted
/// when the auction appeared (1 person per 3 auctions).
pub fn auction_seller(seed: u64, auction: u64) -> u64 {
    let persons_so_far = auction / AUCTION_PROPORTION + 1;
    mix(seed, 0x534C, auction) % persons_so_far
}

/// The category of auction `id`.
pub fn auction_category(seed: u64, auction: u64, categories: u64) -> u64 {
    mix(seed, 0x4354, auction) % categories.max(1)
}

/// One auction record (q3 input). Numeric-only so it round-trips through
/// a GStruct row exactly (all fields ≤ 2^53).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Auction {
    /// Auction id.
    pub id: u64,
    /// Seller (person id).
    pub seller: u64,
    /// Item category.
    pub category: u64,
    /// Opening price.
    pub initial_bid: f64,
}

/// The `i`-th auction of the stream.
pub fn auction(cfg: &NexmarkConfig, i: u64) -> Auction {
    Auction {
        id: i,
        seller: auction_seller(cfg.seed, i),
        category: auction_category(cfg.seed, i, cfg.categories),
        initial_bid: (100 + mix(cfg.seed, 0x4942, i) % 9_900) as f64 * 0.01,
    }
}

/// One bid (q6/q13 input).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Bid {
    /// The auction being bid on — drawn among auctions already emitted.
    pub auction: u64,
    /// Bidding person.
    pub bidder: u64,
    /// Bid price.
    pub price: f64,
    /// Event timestamp (base arrival minus bounded disorder).
    pub ts: SimTime,
}

/// The `i`-th bid of the stream.
pub fn bid(cfg: &NexmarkConfig, i: u64) -> Bid {
    let group = i / BID_PROPORTION;
    let auctions_so_far = (group + 1) * AUCTION_PROPORTION;
    let persons_so_far = group + 1;
    let base = i * cfg.actual_period_ns(cfg.bid_rate());
    let jitter = mix(cfg.seed, 0x4A54, i) % cfg.out_of_order.as_nanos().max(1);
    Bid {
        auction: mix(cfg.seed, 0x4155, i) % auctions_so_far,
        bidder: mix(cfg.seed, 0x4244, i) % persons_so_far,
        price: (100 + mix(cfg.seed, 0x5052, i) % 99_900) as f64 * 0.01,
        ts: SimTime::from_nanos(base.saturating_sub(jitter)),
    }
}

impl GRecord for Auction {
    fn def() -> GStructDef {
        GStructDef::new(
            "NexAuction",
            AlignClass::Align8,
            vec![
                FieldDef::scalar("id", PrimType::F64),
                FieldDef::scalar("seller", PrimType::F64),
                FieldDef::scalar("category", PrimType::F64),
                FieldDef::scalar("initial", PrimType::F64),
            ],
        )
    }
    fn store(&self, view: &mut RecordView<'_>, idx: usize) {
        view.set_f64(idx, 0, 0, self.id as f64);
        view.set_f64(idx, 1, 0, self.seller as f64);
        view.set_f64(idx, 2, 0, self.category as f64);
        view.set_f64(idx, 3, 0, self.initial_bid);
    }
    fn load(reader: &RecordReader<'_>, idx: usize) -> Self {
        Auction {
            id: reader.get_f64(idx, 0, 0) as u64,
            seller: reader.get_f64(idx, 1, 0) as u64,
            category: reader.get_f64(idx, 2, 0) as u64,
            initial_bid: reader.get_f64(idx, 3, 0),
        }
    }
}

impl GRecord for Bid {
    fn def() -> GStructDef {
        GStructDef::new(
            "NexBid",
            AlignClass::Align8,
            vec![
                FieldDef::scalar("auction", PrimType::F64),
                FieldDef::scalar("bidder", PrimType::F64),
                FieldDef::scalar("price", PrimType::F64),
                FieldDef::scalar("ts", PrimType::F64),
            ],
        )
    }
    fn store(&self, view: &mut RecordView<'_>, idx: usize) {
        view.set_f64(idx, 0, 0, self.auction as f64);
        view.set_f64(idx, 1, 0, self.bidder as f64);
        view.set_f64(idx, 2, 0, self.price);
        view.set_f64(idx, 3, 0, self.ts.as_nanos() as f64);
    }
    fn load(reader: &RecordReader<'_>, idx: usize) -> Self {
        Bid {
            auction: reader.get_f64(idx, 0, 0) as u64,
            bidder: reader.get_f64(idx, 1, 0) as u64,
            price: reader.get_f64(idx, 2, 0),
            ts: SimTime::from_nanos(reader.get_f64(idx, 3, 0) as u64),
        }
    }
}

/// A filtered q3 auction row coming back from the engine.
#[derive(Clone, Copy, Debug, PartialEq)]
struct Q3Row {
    id: u64,
    seller: u64,
    initial_bid: f64,
}

impl GRecord for Q3Row {
    fn def() -> GStructDef {
        GStructDef::new(
            "NexQ3Row",
            AlignClass::Align8,
            vec![
                FieldDef::scalar("id", PrimType::F64),
                FieldDef::scalar("seller", PrimType::F64),
                FieldDef::scalar("initial", PrimType::F64),
            ],
        )
    }
    fn store(&self, view: &mut RecordView<'_>, idx: usize) {
        view.set_f64(idx, 0, 0, self.id as f64);
        view.set_f64(idx, 1, 0, self.seller as f64);
        view.set_f64(idx, 2, 0, self.initial_bid);
    }
    fn load(reader: &RecordReader<'_>, idx: usize) -> Self {
        Q3Row {
            id: reader.get_f64(idx, 0, 0) as u64,
            seller: reader.get_f64(idx, 1, 0) as u64,
            initial_bid: reader.get_f64(idx, 2, 0),
        }
    }
}

/// An enriched q13 bid coming back from the engine.
#[derive(Clone, Copy, Debug, PartialEq)]
struct Q13Row {
    auction: u64,
    boosted: f64,
}

impl GRecord for Q13Row {
    fn def() -> GStructDef {
        GStructDef::new(
            "NexQ13Row",
            AlignClass::Align8,
            vec![
                FieldDef::scalar("auction", PrimType::F64),
                FieldDef::scalar("boosted", PrimType::F64),
            ],
        )
    }
    fn store(&self, view: &mut RecordView<'_>, idx: usize) {
        view.set_f64(idx, 0, 0, self.auction as f64);
        view.set_f64(idx, 1, 0, self.boosted);
    }
    fn load(reader: &RecordReader<'_>, idx: usize) -> Self {
        Q13Row {
            auction: reader.get_f64(idx, 0, 0) as u64,
            boosted: reader.get_f64(idx, 1, 0),
        }
    }
}

const Q3_KERNEL: &str = "nexQ3Filter";
const Q13_KERNEL: &str = "nexQ13Enrich";

/// Register the Nexmark kernels (call before `StreamEnv::gpu` runs q3/q13).
pub fn register_kernels(fabric: &GpuFabric) {
    fabric.register_kernel(Q3_KERNEL, |args: &mut KernelArgs<'_, '_>| {
        let target = args.params.first().copied().unwrap_or(0.0);
        let def = Auction::def();
        let out_def = Q3Row::def();
        let n = args.n_actual;
        let input = RecordReader::new(args.inputs[0], &def, DataLayout::Aos, n);
        let out_buf = &mut args.outputs[0];
        let mut out = RecordView::new(out_buf, &out_def, DataLayout::Aos, n);
        let mut emitted = 0usize;
        for i in 0..n {
            if input.get_f64(i, 2, 0) == target {
                out.set_f64(emitted, 0, 0, input.get_f64(i, 0, 0));
                out.set_f64(emitted, 1, 0, input.get_f64(i, 1, 0));
                out.set_f64(emitted, 2, 0, input.get_f64(i, 3, 0));
                emitted += 1;
            }
        }
        KernelProfile::new(args.n_logical as f64 * 4.0, args.n_logical as f64 * 32.0)
            .with_emitted(emitted)
    });
    fabric.register_kernel(Q13_KERNEL, |args: &mut KernelArgs<'_, '_>| {
        let def = Bid::def();
        let out_def = Q13Row::def();
        let n = args.n_actual;
        let input = RecordReader::new(args.inputs[0], &def, DataLayout::Aos, n);
        let side = args.inputs[1];
        let side_rows = (side.len() / 8).max(1);
        let out_buf = &mut args.outputs[0];
        let mut out = RecordView::new(out_buf, &out_def, DataLayout::Aos, n);
        for i in 0..n {
            let auction = input.get_f64(i, 0, 0);
            let factor = side.read_f64((auction as usize % side_rows) * 8);
            out.set_f64(i, 0, 0, auction);
            out.set_f64(i, 1, 0, input.get_f64(i, 2, 0) * factor);
        }
        // One side-table gather per bid: irregular access, like SpMV's x.
        KernelProfile::new(args.n_logical as f64 * 2.0, args.n_logical as f64 * 48.0)
            .with_coalescing(0.6)
    });
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x100_0000_01b3;

fn fold(h: u64, v: u64) -> u64 {
    let mut h = h ^ v;
    h = h.wrapping_mul(FNV_PRIME);
    h
}

/// Outcome of a map-shaped query (q3, q13): the stream report plus a
/// value digest over the surviving rows, in merged batch order.
#[derive(Clone, Debug)]
pub struct QueryRun {
    /// Batch latency/loss report.
    pub report: StreamReport,
    /// FNV-1a over the output rows' value bits.
    pub digest: u64,
    /// Output rows counted into the digest.
    pub rows: u64,
}

/// The q13 side table: a deterministic boost factor per table row.
fn side_factor(cfg: &NexmarkConfig, row: usize) -> f64 {
    1.0 + (mix(cfg.seed, 0x5344, row as u64) % 100) as f64 * 0.01
}

/// Nexmark Q3 (join-filter): auctions of `target_category`, joined against
/// the person table, keeping sellers from the three [`TARGET_STATES`].
/// The category filter runs on the engine (GPU kernel or CPU operator);
/// the person join runs in the driver over the filtered survivors. The
/// digest is engine-invariant.
pub fn q3(env: &StreamEnv, cfg: &NexmarkConfig) -> Result<QueryRun, StreamError> {
    let gen_cfg = cfg.clone();
    let stream = env.source(cfg.auction_source(), move |i| auction(&gen_cfg, i));
    let digest = Cell::new(FNV_OFFSET);
    let rows = Cell::new(0u64);
    let join = |id: u64, seller: u64, initial_bid: f64| {
        if TARGET_STATES.contains(&person_state(cfg.seed, seller)) {
            let mut h = digest.get();
            h = fold(h, id);
            h = fold(h, seller);
            h = fold(h, person_state(cfg.seed, seller));
            h = fold(h, initial_bid.to_bits());
            digest.set(h);
            rows.set(rows.get() + 1);
        }
    };
    let report = if env.is_gpu() {
        let spec = GpuMapSpec::new(Q3_KERNEL)
            .uncached()
            .with_params(vec![cfg.target_category as f64])
            .with_out_mode(OutMode::Bounded { per_record: 1 });
        stream.map_kernel::<Q3Row>(spec).run_each(|_, recs| {
            for r in recs {
                join(r.id, r.seller, r.initial_bid);
            }
        })?
    } else {
        let target = cfg.target_category;
        stream
            .map_fn(gflink_flink::OpCost::new(4.0, 32.0), move |a| {
                if a.category == target {
                    join(a.id, a.seller, a.initial_bid);
                }
                *a
            })
            .run()?
    };
    Ok(QueryRun {
        report,
        digest: digest.get(),
        rows: rows.get(),
    })
}

/// Q6-shaped query: average bid price per seller over tumbling event-time
/// windows — the full DataStream path (timestamps → watermarks → key_by →
/// window → aggregate) on whichever engine `env` carries. `crash` (if
/// given) kills the driver mid-stream; with checkpointing attached via
/// [`StreamEnv::with_cluster`], a relaunch under the same name restores.
pub fn q6(env: &StreamEnv, cfg: &NexmarkConfig) -> Result<WindowedRun, StreamError> {
    q6_with(env, cfg, None)
}

/// [`q6`] with an optional driver crash at `crash`.
pub fn q6_with(
    env: &StreamEnv,
    cfg: &NexmarkConfig,
    crash: Option<SimTime>,
) -> Result<WindowedRun, StreamError> {
    let gen_cfg = cfg.clone();
    let seed = cfg.seed;
    let pipeline = env
        .source(cfg.bid_source(), move |i| bid(&gen_cfg, i))
        .timestamps(
            |b: &Bid| b.ts,
            WatermarkStrategy::bounded(cfg.watermark_bound),
        )
        .key_by(move |b| auction_seller(seed, b.auction))
        .window(Tumbling::of(cfg.window))
        .aggregate(AggSpec::avg(), |b| b.price);
    match crash {
        Some(at) => pipeline.crash_at(at).run(),
        None => pipeline.run(),
    }
}

/// Nexmark Q13 (bounded side-input join): every bid is enriched with a
/// boost factor looked up in a static side table keyed by
/// `auction % side_rows`. On the GPU the table rides along as an extra
/// input — pass a `cache` token (from [`GpuFabric::new_cache_token`]) to
/// pin it on the devices after the first transfer, [`None`] to
/// re-transfer per batch. The digest is engine-invariant.
pub fn q13(
    env: &StreamEnv,
    cfg: &NexmarkConfig,
    cache: Option<u64>,
) -> Result<QueryRun, StreamError> {
    let gen_cfg = cfg.clone();
    let stream = env.source(cfg.bid_source(), move |i| bid(&gen_cfg, i));
    let digest = Cell::new(FNV_OFFSET);
    let rows = Cell::new(0u64);
    let absorb = |auction: u64, boosted: f64| {
        let mut h = digest.get();
        h = fold(h, auction);
        h = fold(h, boosted.to_bits());
        digest.set(h);
        rows.set(rows.get() + 1);
    };
    let report = if env.is_gpu() {
        let mut side = HBuffer::zeroed(cfg.side_rows.max(1) * 8);
        for r in 0..cfg.side_rows.max(1) {
            side.write_f64(r * 8, side_factor(cfg, r));
        }
        let side = Arc::new(side);
        let logical_bytes = cfg.side_rows.max(1) as u64 * 8;
        let spec = match cache {
            Some(token) => GpuMapSpec::new(Q13_KERNEL)
                .uncached()
                .with_cached_extra_input(side, logical_bytes, token),
            None => GpuMapSpec::new(Q13_KERNEL)
                .uncached()
                .with_extra_input(side, logical_bytes),
        };
        stream.map_kernel::<Q13Row>(spec).run_each(|_, recs| {
            for r in recs {
                absorb(r.auction, r.boosted);
            }
        })?
    } else {
        let side: Vec<f64> = (0..cfg.side_rows.max(1))
            .map(|r| side_factor(cfg, r))
            .collect();
        stream
            .map_fn(gflink_flink::OpCost::new(2.0, 48.0), move |b| {
                let factor = side[b.auction as usize % side.len()];
                absorb(b.auction, b.price * factor);
                Q13Row {
                    auction: b.auction,
                    boosted: b.price * factor,
                }
            })
            .run()?
    };
    Ok(QueryRun {
        report,
        digest: digest.get(),
        rows: rows.get(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use gflink_core::FabricConfig;
    use gflink_flink::ClusterConfig;

    fn small() -> NexmarkConfig {
        let mut cfg = NexmarkConfig::standard(7);
        cfg.duration = SimTime::from_secs(1);
        cfg
    }

    fn gpu_env(workers: usize) -> StreamEnv {
        let fabric = GpuFabric::new(workers, FabricConfig::default());
        register_kernels(&fabric);
        StreamEnv::gpu(&fabric)
    }

    #[test]
    fn generators_are_pure_and_causal() {
        let cfg = small();
        assert_eq!(bid(&cfg, 123), bid(&cfg, 123));
        assert_eq!(auction(&cfg, 55), auction(&cfg, 55));
        for i in 0..2_000u64 {
            let b = bid(&cfg, i);
            // A bid only references auctions and persons already emitted.
            assert!(b.auction < (i / BID_PROPORTION + 1) * AUCTION_PROPORTION);
            assert!(b.bidder < i / BID_PROPORTION + 1);
            let a = auction(&cfg, i);
            assert!(a.seller < i / AUCTION_PROPORTION + 1);
            assert!(a.category < cfg.categories);
        }
    }

    #[test]
    fn disorder_is_bounded_by_config() {
        let cfg = small();
        let period = cfg.actual_period_ns(cfg.bid_rate());
        for i in 0..2_000u64 {
            let b = bid(&cfg, i);
            let base = i * period;
            let ts = b.ts.as_nanos();
            assert!(ts <= base);
            assert!(base - ts < cfg.out_of_order.as_nanos());
        }
    }

    #[test]
    fn records_roundtrip_through_gstruct_rows() {
        let cfg = small();
        let def = Bid::def();
        let mut buf = HBuffer::zeroed(RecordView::required_bytes(&def, DataLayout::Aos, 4));
        {
            let mut view = RecordView::new(&mut buf, &def, DataLayout::Aos, 4);
            for i in 0..4 {
                bid(&cfg, i as u64).store(&mut view, i);
            }
        }
        let reader = RecordReader::new(&buf, &def, DataLayout::Aos, 4);
        for i in 0..4 {
            assert_eq!(Bid::load(&reader, i), bid(&cfg, i as u64));
        }
    }

    #[test]
    fn q3_digest_is_engine_invariant() {
        let cfg = small();
        let cpu = q3(&StreamEnv::cpu(&ClusterConfig::standard(2)), &cfg).expect("cpu q3");
        let gpu = q3(&gpu_env(2), &cfg).expect("gpu q3");
        assert!(cpu.rows > 0, "q3 filter+join kept nothing");
        assert_eq!(cpu.rows, gpu.rows);
        assert_eq!(cpu.digest, gpu.digest);
        assert!(gpu.report.lost.is_empty());
    }

    #[test]
    fn q6_runs_end_to_end_on_both_engines() {
        let cfg = small();
        let cpu = q6(&StreamEnv::cpu(&ClusterConfig::standard(2)), &cfg).expect("cpu q6");
        let gpu = q6(&gpu_env(2), &cfg).expect("gpu q6");
        assert!(!cpu.windows.is_empty());
        assert_eq!(cpu.digest(), gpu.digest());
        assert_eq!(cpu.watermark_digest(), gpu.watermark_digest());
    }

    #[test]
    fn q13_digest_is_engine_invariant_cached_or_not() {
        let cfg = small();
        let cpu = q13(&StreamEnv::cpu(&ClusterConfig::standard(2)), &cfg, None).expect("cpu q13");
        let fabric = GpuFabric::new(2, FabricConfig::default());
        register_kernels(&fabric);
        let token = fabric.new_cache_token();
        let cached = q13(&StreamEnv::gpu(&fabric), &cfg, Some(token)).expect("gpu q13 cached");
        let plain = q13(&gpu_env(2), &cfg, None).expect("gpu q13 plain");
        assert_eq!(cpu.rows, cached.rows);
        assert_eq!(cpu.digest, cached.digest);
        assert_eq!(cpu.digest, plain.digest);
        assert!(cached.rows > 0);
    }
}

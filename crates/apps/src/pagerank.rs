//! PageRank (Fig. 5b).
//!
//! 5–25 M pages with a fixed out-degree of 8 and hub-skewed targets, 10
//! iterations of the classic dataflow formulation: ranks join the (hash
//! partitioned once) adjacency, each page scatters `rank/degree` to its
//! out-links, contributions reduce by destination, and damping is applied.
//!
//! The GPU path offloads the contribution scatter: the joined
//! (rank, links) records are packed into GStruct blocks and the kernel
//! emits raw contribution records, which a tight buffer scan (no
//! per-contribution object churn — §3.1's serialization argument) converts
//! into shuffle pairs. The shuffle itself is identical in both paths, which
//! is why PageRank's overall speedup is the lowest of the iterative
//! workloads (Observation 1).

use crate::common::{AppRun, ExecMode, Setup};
use crate::generators::page_links;
use gflink_core::{GDataSet, GRecord, GflinkEnv, GpuFabric, GpuMapSpec, GpuReduceCosts, OutMode};
use gflink_flink::{DataSet, FlinkEnv, KeyedOps, OpCost};
use gflink_gpu::{KernelArgs, KernelProfile};
use gflink_memory::{
    AlignClass, DataLayout, FieldDef, GStructDef, PrimType, RecordReader, RecordView,
};
use gflink_sim::SimTime;

/// Out-degree of every page in the synthetic web graph.
pub const DEG: usize = 8;
/// Damping factor.
pub const DAMPING: f64 = 0.85;
/// Default generator seed.
pub const PAGERANK_SEED: u64 = 0x50_5241_4E4B; // "PRANK"

/// Wire bytes of one (page, rank) pair at paper scale.
pub const RANK_PAIR_BYTES: f64 = 12.0;
/// Wire bytes of one (page, links) adjacency pair at paper scale.
pub const ADJ_PAIR_BYTES: f64 = (4 + DEG * 4 + 4) as f64;

/// A joined (rank, out-links) record, packed for the GPU.
#[derive(Clone, Debug, PartialEq)]
pub struct RankedPage {
    /// Current rank.
    pub rank: f32,
    /// Out-links.
    pub links: [u32; DEG],
}

impl GRecord for RankedPage {
    fn def() -> GStructDef {
        GStructDef::new(
            "RankedPage",
            AlignClass::Align8,
            vec![
                FieldDef::scalar("rank", PrimType::F32),
                FieldDef::array("links", PrimType::U32, DEG),
            ],
        )
    }
    fn store(&self, view: &mut RecordView<'_>, idx: usize) {
        view.set_f64(idx, 0, 0, self.rank as f64);
        for (i, l) in self.links.iter().enumerate() {
            view.set_u64(idx, 1, i, *l as u64);
        }
    }
    fn load(reader: &RecordReader<'_>, idx: usize) -> Self {
        RankedPage {
            rank: reader.get_f64(idx, 0, 0) as f32,
            links: std::array::from_fn(|i| reader.get_u64(idx, 1, i) as u32),
        }
    }
}

/// The kernel's output: one **block-combined** contribution per distinct
/// destination (GFlink offloads the map-side combine together with the
/// scatter — Flink's combiner runs inside the map task, so the GPU mapper
/// takes both).
#[derive(Clone, Debug, PartialEq)]
pub struct AggContrib {
    /// Destination page.
    pub dst: u32,
    /// Combined contribution from this block.
    pub val: f32,
}

impl GRecord for AggContrib {
    fn def() -> GStructDef {
        GStructDef::new(
            "AggContrib",
            AlignClass::Align8,
            vec![
                FieldDef::scalar("dst", PrimType::U32),
                FieldDef::scalar("val", PrimType::F32),
            ],
        )
    }
    fn store(&self, view: &mut RecordView<'_>, idx: usize) {
        view.set_u64(idx, 0, 0, self.dst as u64);
        view.set_f64(idx, 1, 0, self.val as f64);
    }
    fn load(reader: &RecordReader<'_>, idx: usize) -> Self {
        AggContrib {
            dst: reader.get_u64(idx, 0, 0) as u32,
            val: reader.get_f64(idx, 1, 0) as f32,
        }
    }
}

/// Workload parameters.
#[derive(Clone, Debug)]
pub struct Params {
    /// Pages at paper scale.
    pub n_logical: u64,
    /// Pages actually materialized.
    pub n_actual: usize,
    /// PageRank iterations.
    pub iterations: usize,
    /// Data parallelism.
    pub parallelism: usize,
    /// Generator seed.
    pub seed: u64,
}

impl Params {
    /// A Table 1 size: `millions` of pages (5–25 in the paper).
    pub fn paper(millions: u64, setup: &Setup) -> Params {
        Params {
            n_logical: millions * 1_000_000,
            n_actual: ((millions * 400) as usize).max(1000),
            iterations: 10,
            parallelism: setup.default_parallelism(),
            seed: PAGERANK_SEED,
        }
    }
}

/// Register the contribution scatter+combine kernel.
pub fn register_kernels(fabric: &GpuFabric) {
    fabric.register_kernel("cudaSumByKey", sum_by_key_kernel);
    fabric.register_kernel("cudaPagerankScatter", |args: &mut KernelArgs<'_, '_>| {
        use std::collections::BTreeMap;
        let def = RankedPage::def();
        let out_def = AggContrib::def();
        let n = args.n_actual;
        let reader = RecordReader::new(args.inputs[0], &def, DataLayout::Aos, n);
        // Scatter + block-level combine (sort/segmented-reduce on a real
        // device; a BTreeMap here).
        let mut agg: BTreeMap<u32, f64> = BTreeMap::new();
        for i in 0..n {
            let share = reader.get_f64(i, 0, 0) / DEG as f64;
            for k in 0..DEG {
                *agg.entry(reader.get_u64(i, 1, k) as u32).or_insert(0.0) += share;
            }
        }
        let capacity = n * DEG;
        let mut view = RecordView::new(args.outputs[0], &out_def, DataLayout::Aos, capacity);
        let emitted = agg.len();
        for (i, (dst, val)) in agg.into_iter().enumerate() {
            AggContrib {
                dst,
                val: val as f32,
            }
            .store(&mut view, i);
        }
        // Scatter (DEG adds) + sort-combine (~DEG·log window) per page.
        KernelProfile::new(
            args.n_logical as f64 * (6 * DEG) as f64,
            args.n_logical as f64
                * (RankedPage::def().size() + 2 * DEG * AggContrib::def().size()) as f64,
        )
        .with_coalescing(0.7)
        .with_emitted(emitted)
    });
}

/// Register-time extra: the GPU reducer kernel (the paper's gpuReduce),
/// summing shuffled contribution pairs by key within each block.
fn sum_by_key_kernel(args: &mut KernelArgs<'_, '_>) -> KernelProfile {
    use std::collections::BTreeMap;
    let def = AggContrib::def();
    let n = args.n_actual;
    let reader = RecordReader::new(args.inputs[0], &def, DataLayout::Aos, n);
    let mut agg: BTreeMap<u32, f64> = BTreeMap::new();
    for i in 0..n {
        *agg.entry(reader.get_u64(i, 0, 0) as u32).or_insert(0.0) += reader.get_f64(i, 1, 0);
    }
    let mut view = RecordView::new(args.outputs[0], &def, DataLayout::Aos, n);
    let emitted = agg.len();
    for (i, (dst, val)) in agg.into_iter().enumerate() {
        AggContrib {
            dst,
            val: val as f32,
        }
        .store(&mut view, i);
    }
    KernelProfile::new(
        args.n_logical as f64 * 10.0,
        args.n_logical as f64 * (2 * AggContrib::def().size()) as f64,
    )
    .with_coalescing(0.8)
    .with_emitted(emitted)
}

/// Per-page CPU cost of the contribution flatMap: one `Tuple2` allocation,
/// boxing and managed-memory serialization per out-link (§3.1).
pub fn cpu_scatter_cost() -> OpCost {
    OpCost::new((2 * DEG) as f64, (DEG * 12) as f64).with_overhead_factor(DEG as f64)
}

/// Per-record cost of scanning the GPU's raw combined-contribution buffer
/// into shuffle pairs (tight loop over off-heap bytes; no object churn).
pub fn gpu_unpack_cost() -> OpCost {
    OpCost::new(2.0, 12.0).with_overhead_factor(0.3)
}

fn read_adjacency(env: &FlinkEnv, params: &Params) -> DataSet<(u32, [u32; DEG])> {
    let seed = params.seed;
    let n_act = params.n_actual;
    // Deterministic mapping from logical index to actual page id.
    let scale = params.n_logical as f64 / n_act as f64;
    env.read_hdfs(
        "pages",
        "/input/pagerank",
        params.n_logical,
        params.n_actual,
        ADJ_PAIR_BYTES,
        params.parallelism,
        move |i| {
            let page = (i as f64 / scale).round() as usize % n_act;
            (page as u32, page_links::<DEG>(seed, i, n_act as u64))
        },
    )
}

fn digest(ranks: &[(u32, f32)]) -> f64 {
    // Weighted sum so permutations with swapped ranks differ.
    ranks
        .iter()
        .map(|(p, r)| (*p as f64 + 1.0).ln() * *r as f64)
        .sum()
}

/// Shared driver skeleton; `scatter` produces the per-iteration
/// contribution pairs from the joined (page, (rank, links)) dataset.
/// CPU cost of Flink's sort-based grouped reduce per shuffled record
/// (deserialize, compare, fold, re-serialize).
pub fn cpu_reduce_cost() -> OpCost {
    OpCost::new(4.0, 24.0).with_overhead_factor(2.0)
}

fn drive(
    env: &FlinkEnv,
    params: &Params,
    mut aggregate: impl FnMut(&DataSet<(u32, (f32, [u32; DEG]))>) -> DataSet<(u32, f32)>,
) -> (Vec<(u32, f32)>, Vec<SimTime>) {
    let scale = params.n_logical as f64 / params.n_actual as f64;
    let adj = read_adjacency(env, params).partition_by_key(
        "partition-adj",
        ADJ_PAIR_BYTES,
        scale,
        OpCost::trivial(),
    );
    let n_logical = params.n_logical as f64;
    let init = 1.0 / n_logical;
    let mut ranks = adj.map("init-ranks", OpCost::trivial(), move |(p, _)| {
        (*p, init as f32)
    });
    let mut per_iteration = Vec::with_capacity(params.iterations);
    let mut last = env.frontier();
    for _ in 0..params.iterations {
        let joined = ranks.join_local("rank-join-adj", &adj, scale);
        let sums = aggregate(&joined);
        let base = ((1.0 - DAMPING) / n_logical) as f32;
        ranks = sums.map("damping", OpCost::new(3.0, 12.0), move |(p, s)| {
            (*p, base + (DAMPING as f32) * s)
        });
        per_iteration.push(env.frontier() - last);
        last = env.frontier();
    }
    let got = ranks.collect("ranks", RANK_PAIR_BYTES);
    ranks.write_hdfs("save-ranks", "/output/pagerank", RANK_PAIR_BYTES);
    (got, per_iteration)
}

/// Run on the baseline engine.
pub fn run_cpu(setup: &Setup, params: &Params) -> AppRun {
    run_cpu_at(setup, params, SimTime::ZERO)
}

/// Run on the baseline engine, submitting at `at`.
pub fn run_cpu_at(setup: &Setup, params: &Params, at: SimTime) -> AppRun {
    let env = FlinkEnv::submit(&setup.cluster, "pagerank-cpu", at);
    let scale = params.n_logical as f64 / params.n_actual as f64;
    let (ranks, per_iteration) = drive(&env, params, |joined| {
        let contribs = joined.flat_map(
            "scatter",
            cpu_scatter_cost(),
            scale,
            |(_, (rank, links)), out| {
                let share = *rank / DEG as f32;
                for &l in links {
                    out.push((l, share));
                }
            },
        );
        contribs.reduce_by_key(
            "sum-contribs",
            cpu_reduce_cost(),
            RANK_PAIR_BYTES,
            scale,
            |a, b| a + b,
        )
    });
    AppRun {
        mode: ExecMode::Cpu,
        report: env.finish(),
        digest: digest(&ranks),
        per_iteration,
    }
}

/// Run on GFlink.
pub fn run_gpu(setup: &Setup, params: &Params) -> AppRun {
    run_gpu_at(setup, params, SimTime::ZERO)
}

/// Run on GFlink, submitting at `at`.
pub fn run_gpu_at(setup: &Setup, params: &Params, at: SimTime) -> AppRun {
    register_kernels(&setup.fabric);
    let genv = GflinkEnv::submit(&setup.cluster, &setup.fabric, "pagerank-gpu", at);
    let genv2 = genv.clone();
    let scale = params.n_logical as f64 / params.n_actual as f64;
    let (ranks, per_iteration) = drive(&genv.flink, params, move |joined| {
        // Pack joined records into GStruct blocks (raw bytes, zero-copy to
        // the device) ...
        let packed = joined.map(
            "pack",
            OpCost::new(2.0, 36.0).with_overhead_factor(0.2),
            |(_, (rank, links))| RankedPage {
                rank: *rank,
                links: *links,
            },
        );
        let gdst: GDataSet<RankedPage> = genv2.to_gdst(packed, DataLayout::Aos);
        // ... scatter + combine on the GPU (input is iteration-fresh: no
        // caching; output cardinality is data dependent) ...
        let spec = GpuMapSpec::new("cudaPagerankScatter")
            .uncached()
            .with_out_mode(OutMode::Bounded { per_record: DEG })
            .with_out_scale(scale)
            .build(&setup.fabric)
            .expect("pagerank spec");
        let contribs: GDataSet<AggContrib> = gdst.gpu_map_partition("scatter", &spec);
        // ... scan the raw output buffer into shuffle pairs ...
        let pairs = contribs
            .inner()
            .map("unpack", gpu_unpack_cost(), |rec| (rec.dst, rec.val));
        // ... then the paper's gpuReduce: shuffle (same network volume as
        // the baseline), sum-by-key per block on the GPU, boundary merge.
        genv2.gpu_reduce_by_key(
            "sum-contribs",
            &pairs,
            "cudaSumByKey",
            GpuReduceCosts::default(),
            |(d, v)| AggContrib { dst: *d, val: *v },
            |r| (r.dst, r.val),
            |a, b| a + b,
        )
    });
    AppRun {
        mode: ExecMode::Gpu,
        report: genv.finish(),
        digest: digest(&ranks),
        per_iteration,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::digests_match;

    fn small(setup: &Setup) -> Params {
        Params {
            n_logical: 2_000_000,
            n_actual: 1_000,
            iterations: 3,
            parallelism: setup.default_parallelism(),
            seed: 9,
        }
    }

    #[test]
    fn cpu_and_gpu_agree() {
        let s1 = Setup::standard(2);
        let cpu = run_cpu(&s1, &small(&s1));
        let s2 = Setup::standard(2);
        let gpu = run_gpu(&s2, &small(&s2));
        assert!(
            digests_match(cpu.digest, gpu.digest, 1e-3),
            "{} vs {}",
            cpu.digest,
            gpu.digest
        );
    }

    #[test]
    fn hubs_accumulate_rank() {
        let s = Setup::standard(1);
        let p = Params {
            n_logical: 1_000_000,
            n_actual: 2_000,
            iterations: 5,
            parallelism: 4,
            seed: 9,
        };
        let env = FlinkEnv::submit(&s.cluster, "pr", SimTime::ZERO);
        let (ranks, _) = drive(&env, &p, |joined| {
            joined
                .flat_map(
                    "scatter",
                    cpu_scatter_cost(),
                    500.0,
                    |(_, (r, links)), out| {
                        let share = *r / DEG as f32;
                        for &l in links {
                            out.push((l, share));
                        }
                    },
                )
                .reduce_by_key("sum", cpu_reduce_cost(), RANK_PAIR_BYTES, 500.0, |a, b| {
                    a + b
                })
        });
        // Hub pages (ids < n/100) must hold far more rank than average.
        let hub_cut = (p.n_actual / 100).max(1) as u32;
        let hub_avg = avg(ranks.iter().filter(|(p, _)| *p < hub_cut));
        let tail_avg = avg(ranks.iter().filter(|(p, _)| *p >= hub_cut));
        assert!(hub_avg > tail_avg * 5.0, "hub {hub_avg} vs tail {tail_avg}");
    }

    fn avg<'a>(it: impl Iterator<Item = &'a (u32, f32)>) -> f64 {
        let v: Vec<f64> = it.map(|(_, r)| *r as f64).collect();
        if v.is_empty() {
            0.0
        } else {
            v.iter().sum::<f64>() / v.len() as f64
        }
    }

    #[test]
    fn iteration_count_respected() {
        let s = Setup::standard(1);
        let mut p = small(&s);
        p.iterations = 4;
        let run = run_cpu(&s, &p);
        assert_eq!(run.per_iteration.len(), 4);
    }
}

//! PointAdd: the paper's running microbenchmark (Algorithm 3.1, Figs. 8b/8c).
//!
//! The `addPoint` kernel translates every 2-D point by a constant — almost
//! no arithmetic, so its GPU time is transfer-dominated. The paper uses it
//! to show that GMapper speedup depends on arithmetic intensity (Fig. 8b:
//! PointAdd's mapper speedup is the lowest of the three kernels).

use crate::common::{AppRun, ExecMode, Setup};
use gflink_core::{GDataSet, GRecord, GflinkEnv, GpuFabric, GpuMapSpec};
use gflink_flink::{DataSet, FlinkEnv, OpCost};
use gflink_gpu::{KernelArgs, KernelProfile};
use gflink_memory::{
    AlignClass, DataLayout, FieldDef, GStructDef, PrimType, RecordReader, RecordView,
};
use gflink_sim::SimTime;

/// Default generator seed.
pub const POINTADD_SEED: u64 = 0x50_4F49_4E54;

/// Bytes of one point at paper scale.
pub const POINT_BYTES: f64 = 8.0;

/// The paper's `Point` (two floats here; the §3.5.1 listing mixes widths to
/// demonstrate padding, which `gflink-memory`'s tests cover).
#[derive(Clone, Debug, PartialEq)]
pub struct Point2 {
    /// X coordinate.
    pub x: f32,
    /// Y coordinate.
    pub y: f32,
}

impl GRecord for Point2 {
    fn def() -> GStructDef {
        GStructDef::new(
            "Point2",
            AlignClass::Align8,
            vec![
                FieldDef::scalar("x", PrimType::F32),
                FieldDef::scalar("y", PrimType::F32),
            ],
        )
    }
    fn store(&self, view: &mut RecordView<'_>, idx: usize) {
        view.set_f64(idx, 0, 0, self.x as f64);
        view.set_f64(idx, 1, 0, self.y as f64);
    }
    fn load(reader: &RecordReader<'_>, idx: usize) -> Self {
        Point2 {
            x: reader.get_f64(idx, 0, 0) as f32,
            y: reader.get_f64(idx, 1, 0) as f32,
        }
    }
}

/// Workload parameters.
#[derive(Clone, Debug)]
pub struct Params {
    /// Points at paper scale.
    pub n_logical: u64,
    /// Points actually materialized.
    pub n_actual: usize,
    /// Repeated passes (Algorithm 3.1's `iTimes`).
    pub iterations: usize,
    /// Data parallelism.
    pub parallelism: usize,
    /// Translation applied per pass.
    pub delta: (f32, f32),
}

impl Params {
    /// A default microbenchmark workload.
    pub fn standard(setup: &Setup) -> Params {
        Params {
            n_logical: 100_000_000,
            n_actual: 20_000,
            iterations: 5,
            parallelism: setup.default_parallelism(),
            delta: (1.0, -0.5),
        }
    }
}

/// Register the `cudaAddPoint` kernel.
pub fn register_kernels(fabric: &GpuFabric) {
    fabric.register_elementwise_kernel("cudaAddPoint", |args: &mut KernelArgs<'_, '_>| {
        let def = Point2::def();
        let n = args.n_actual;
        let (dx, dy) = (args.params[0], args.params[1]);
        let reader = RecordReader::new(args.inputs[0], &def, DataLayout::Aos, n);
        let mut view = RecordView::new(args.outputs[0], &def, DataLayout::Aos, n);
        for i in 0..n {
            view.set_f64(i, 0, 0, reader.get_f64(i, 0, 0) + dx);
            view.set_f64(i, 1, 0, reader.get_f64(i, 1, 0) + dy);
        }
        KernelProfile::new(
            args.n_logical as f64 * 2.0,
            args.n_logical as f64 * POINT_BYTES * 2.0,
        )
    });
}

fn read_points(env: &FlinkEnv, params: &Params) -> DataSet<Point2> {
    env.read_hdfs(
        "points",
        "/input/pointadd",
        params.n_logical,
        params.n_actual,
        POINT_BYTES,
        params.parallelism,
        |i| Point2 {
            x: (i % 1000) as f32,
            y: -((i % 777) as f32),
        },
    )
}

fn digest(points: &[Point2]) -> f64 {
    points.iter().map(|p| (p.x + p.y) as f64).sum()
}

/// Per-point CPU cost (two adds over 16 bytes of traffic).
pub fn cpu_add_cost() -> OpCost {
    OpCost::new(2.0, POINT_BYTES * 2.0)
}

/// Run on the baseline engine.
pub fn run_cpu(setup: &Setup, params: &Params) -> AppRun {
    run_cpu_at(setup, params, SimTime::ZERO)
}

/// Run on the baseline engine, submitting at `at`.
pub fn run_cpu_at(setup: &Setup, params: &Params, at: SimTime) -> AppRun {
    let env = FlinkEnv::submit(&setup.cluster, "pointadd-cpu", at);
    let mut ds = read_points(&env, params);
    let (dx, dy) = params.delta;
    let mut per_iteration = Vec::with_capacity(params.iterations);
    let mut last = env.frontier();
    for _ in 0..params.iterations {
        ds = ds.map("addPoint", cpu_add_cost(), move |p| Point2 {
            x: p.x + dx,
            y: p.y + dy,
        });
        per_iteration.push(env.frontier() - last);
        last = env.frontier();
    }
    let got = ds.collect("points", POINT_BYTES);
    AppRun {
        mode: ExecMode::Cpu,
        report: env.finish(),
        digest: digest(&got),
        per_iteration,
    }
}

/// Run on GFlink (Algorithm 3.1's driver).
pub fn run_gpu(setup: &Setup, params: &Params) -> AppRun {
    run_gpu_at(setup, params, SimTime::ZERO)
}

/// Run on GFlink, submitting at `at`.
pub fn run_gpu_at(setup: &Setup, params: &Params, at: SimTime) -> AppRun {
    register_kernels(&setup.fabric);
    let genv = GflinkEnv::submit(&setup.cluster, &setup.fabric, "pointadd-gpu", at);
    let ds = read_points(&genv.flink, params);
    let mut gds: GDataSet<Point2> = genv.to_gdst(ds, DataLayout::Aos);
    let (dx, dy) = params.delta;
    let mut per_iteration = Vec::with_capacity(params.iterations);
    let mut last = genv.flink.frontier();
    for _ in 0..params.iterations {
        let spec = GpuMapSpec::new("cudaAddPoint")
            .with_params(vec![dx as f64, dy as f64])
            .build(&setup.fabric)
            .expect("pointadd spec");
        gds = gds.gpu_map_partition("addPoint", &spec);
        per_iteration.push(genv.flink.frontier() - last);
        last = genv.flink.frontier();
    }
    let got = gds.inner().collect("points", POINT_BYTES);
    AppRun {
        mode: ExecMode::Gpu,
        report: genv.finish(),
        digest: digest(&got),
        per_iteration,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::digests_match;

    fn small(setup: &Setup) -> Params {
        Params {
            n_logical: 5_000_000,
            n_actual: 2_000,
            iterations: 3,
            parallelism: setup.default_parallelism(),
            delta: (1.0, 2.0),
        }
    }

    #[test]
    fn cpu_and_gpu_agree() {
        let s1 = Setup::standard(1);
        let cpu = run_cpu(&s1, &small(&s1));
        let s2 = Setup::standard(1);
        let gpu = run_gpu(&s2, &small(&s2));
        assert!(
            digests_match(cpu.digest, gpu.digest, 1e-4),
            "{} vs {}",
            cpu.digest,
            gpu.digest
        );
    }

    #[test]
    fn translation_applied_each_pass() {
        let s = Setup::standard(1);
        let p = Params {
            n_logical: 100,
            n_actual: 100,
            iterations: 2,
            parallelism: 2,
            delta: (1.0, 1.0),
        };
        let base = {
            let s0 = Setup::standard(1);
            let mut p0 = p.clone();
            p0.iterations = 0;
            run_cpu(&s0, &p0).digest
        };
        let run = run_cpu(&s, &p);
        // Each pass adds (1+1) per point; 2 passes over 100 points: +400.
        assert!((run.digest - base - 400.0).abs() < 1e-6);
    }

    #[test]
    fn pointadd_gpu_gains_are_modest() {
        // Fig. 8b: the transfer-bound PointAdd mapper gains far less than
        // KMeans. The end-to-end run should not show a large speedup.
        let s1 = Setup::standard(1);
        let p = Params {
            n_logical: 200_000_000,
            n_actual: 4_000,
            iterations: 3,
            parallelism: s1.default_parallelism(),
            delta: (1.0, 1.0),
        };
        let cpu = run_cpu(&s1, &p);
        let s2 = Setup::standard(1);
        let gpu = run_gpu(&s2, &p);
        let speedup = cpu.total_secs() / gpu.total_secs();
        assert!(
            speedup < super::super::kmeans::K as f64, // loose sanity bound
            "pointadd speedup suspiciously high: {speedup}"
        );
    }
}

//! Sparse matrix–vector multiplication (Figs. 6a, 7b, 7d, 8a, 8b).
//!
//! The matrix is stored in ELLPACK form (`NNZ = 8` nonzeros per row — the
//! GPU-friendly fixed-width sparse format), 2–32 GB at paper scale. The
//! matrix is rectangular: however many rows the size sweep dictates, times
//! a fixed ≈30.75 M columns, so the dense vector is always the 123 MB the
//! paper's single-machine experiment quotes (§6.6.1) and fits in every
//! GPU's cache region alongside its matrix slice. The
//! benchmark repeats `y = A·x` for a fixed dense vector, as the paper's
//! cache discussion implies ("the matrix and the vector need to be
//! transferred to GPUs in each iteration if the cache scheme is not
//! adopted", Fig. 8a): with the cache on, both operands stay resident after
//! the first iteration and later iterations are kernel-only. The GPU side
//! uses cuBLAS-grade throughput in the paper; here the kernel's roofline is
//! memory-bound, which is the same regime.

use crate::common::{AppRun, ExecMode, Setup};
use crate::generators::ell_row;
use gflink_core::{GDataSet, GRecord, GflinkEnv, GpuFabric, GpuMapSpec};
use gflink_flink::{DataSet, FlinkEnv, OpCost};
use gflink_gpu::{KernelArgs, KernelProfile};
use gflink_memory::{
    AlignClass, DataLayout, FieldDef, GStructDef, HBuffer, PrimType, RecordReader, RecordView,
};
use gflink_sim::SimTime;
use std::sync::Arc;

/// Nonzeros per row (ELLPACK width).
pub const NNZ: usize = 8;
/// Default generator seed.
pub const SPMV_SEED: u64 = 0x53_50_4D_56; // "SPMV"
/// Dense-vector length at paper scale (123 MB of f32, §6.6.1).
pub const COLS_LOGICAL: u64 = 30_750_000;

/// Bytes of one row at paper scale: NNZ column indices + NNZ values.
pub const ROW_BYTES: f64 = (NNZ * 8) as f64;

/// One ELLPACK row.
#[derive(Clone, Debug, PartialEq)]
pub struct EllRow {
    /// Column indices.
    pub cols: [u32; NNZ],
    /// Values.
    pub vals: [f32; NNZ],
}

impl GRecord for EllRow {
    fn def() -> GStructDef {
        GStructDef::new(
            "EllRow",
            AlignClass::Align8,
            vec![
                FieldDef::array("cols", PrimType::U32, NNZ),
                FieldDef::array("vals", PrimType::F32, NNZ),
            ],
        )
    }
    fn store(&self, view: &mut RecordView<'_>, idx: usize) {
        for (i, c) in self.cols.iter().enumerate() {
            view.set_u64(idx, 0, i, *c as u64);
        }
        for (i, v) in self.vals.iter().enumerate() {
            view.set_f64(idx, 1, i, *v as f64);
        }
    }
    fn load(reader: &RecordReader<'_>, idx: usize) -> Self {
        EllRow {
            cols: std::array::from_fn(|i| reader.get_u64(idx, 0, i) as u32),
            vals: std::array::from_fn(|i| reader.get_f64(idx, 1, i) as f32),
        }
    }
}

/// One output value of `y = A·x`.
#[derive(Clone, Debug, PartialEq)]
pub struct YVal {
    /// The row's dot product.
    pub y: f32,
}

impl GRecord for YVal {
    fn def() -> GStructDef {
        GStructDef::new(
            "YVal",
            AlignClass::Align4,
            vec![FieldDef::scalar("y", PrimType::F32)],
        )
    }
    fn store(&self, view: &mut RecordView<'_>, idx: usize) {
        view.set_f64(idx, 0, 0, self.y as f64);
    }
    fn load(reader: &RecordReader<'_>, idx: usize) -> Self {
        YVal {
            y: reader.get_f64(idx, 0, 0) as f32,
        }
    }
}

/// Workload parameters.
#[derive(Clone, Debug)]
pub struct Params {
    /// Matrix rows at paper scale.
    pub rows_logical: u64,
    /// Rows actually materialized.
    pub rows_actual: usize,
    /// Iterations of `y = A·x`.
    pub iterations: usize,
    /// Data parallelism.
    pub parallelism: usize,
    /// Generator seed.
    pub seed: u64,
}

impl Params {
    /// A Table 1 size: a matrix of `gb` gigabytes (2–32 in the paper).
    pub fn paper(gb: u64, setup: &Setup) -> Params {
        let rows_logical = gb * 1_000_000_000 / ROW_BYTES as u64;
        Params {
            rows_logical,
            rows_actual: ((rows_logical / 2000) as usize).clamp(1000, 100_000),
            iterations: 10,
            parallelism: setup.default_parallelism(),
            seed: SPMV_SEED,
        }
    }

    /// The Fig. 7b single-machine workload: a 1.0 GB matrix whose vector is
    /// 123 MB (≈30.75 M columns at paper scale).
    pub fn fig7b(setup: &Setup) -> Params {
        let mut p = Params::paper(1, setup);
        p.parallelism = setup.default_parallelism();
        p
    }

    /// The dense vector's logical byte size (one f32 per column).
    pub fn vector_logical_bytes(&self) -> u64 {
        COLS_LOGICAL * 4
    }

    /// Matrix logical bytes.
    pub fn matrix_logical_bytes(&self) -> u64 {
        (self.rows_logical as f64 * ROW_BYTES) as u64
    }
}

/// Register the SpMV kernel.
pub fn register_kernels(fabric: &GpuFabric) {
    fabric.register_kernel("cudaSpmvEll", spmv_kernel);
}

fn spmv_kernel(args: &mut KernelArgs<'_, '_>) -> KernelProfile {
    let def = EllRow::def();
    let n = args.n_actual;
    let reader = RecordReader::new(args.inputs[0], &def, DataLayout::Aos, n);
    let x = args.inputs[1];
    let x_len = x.len() / 4;
    let out_def = YVal::def();
    let mut view = RecordView::new(args.outputs[0], &out_def, DataLayout::Aos, n);
    for i in 0..n {
        let mut acc = 0.0f64;
        for k in 0..NNZ {
            let col = reader.get_u64(i, 0, k) as usize;
            let v = reader.get_f64(i, 1, k);
            acc += v * x.read_f32((col % x_len.max(1)) * 4) as f64;
        }
        view.set_f64(i, 0, 0, acc);
    }
    // 2 flops per nonzero; traffic: row bytes + gathered x values + y.
    KernelProfile::new(
        args.n_logical as f64 * (2 * NNZ) as f64,
        args.n_logical as f64 * (ROW_BYTES + (NNZ * 4) as f64 + 4.0),
    )
    // The gather of x is irregular (random column indices): charge heavily
    // reduced coalescing.
    .with_coalescing(0.45)
}

fn cpu_spmv(rows: &[EllRow], x: &[f32]) -> Vec<YVal> {
    let x_len = x.len().max(1);
    rows.iter()
        .map(|r| {
            let mut acc = 0.0f64;
            for k in 0..NNZ {
                acc += r.vals[k] as f64 * x[r.cols[k] as usize % x_len] as f64;
            }
            YVal { y: acc as f32 }
        })
        .collect()
}

fn make_vector(params: &Params) -> Vec<f32> {
    // Deterministic dense vector over the ACTUAL column space.
    (0..params.rows_actual)
        .map(|i| ((i as f32 * 0.37).sin() + 1.5) * 0.5)
        .collect()
}

fn read_matrix(env: &FlinkEnv, params: &Params) -> DataSet<EllRow> {
    let seed = params.seed;
    let ncols = params.rows_actual as u64;
    env.read_hdfs(
        "spmv-matrix",
        "/input/spmv",
        params.rows_logical,
        params.rows_actual,
        ROW_BYTES,
        params.parallelism,
        move |i| {
            let (cols, vals) = ell_row::<NNZ>(seed, i, ncols);
            EllRow { cols, vals }
        },
    )
}

fn digest(y: &[YVal]) -> f64 {
    y.iter().map(|v| v.y as f64).sum()
}

/// Per-row CPU cost of the SpMV map: 2 flops/nnz plus the gather traffic,
/// with extra dispatch overhead for the per-row sparse object and its boxed
/// column iterator.
pub fn cpu_spmv_cost() -> OpCost {
    OpCost::new((2 * NNZ) as f64, ROW_BYTES + (NNZ * 4) as f64 + 4.0).with_overhead_factor(2.5)
}

/// Run on the baseline engine.
pub fn run_cpu(setup: &Setup, params: &Params) -> AppRun {
    run_cpu_at(setup, params, SimTime::ZERO)
}

/// Run on the baseline engine, submitting at `at`.
pub fn run_cpu_at(setup: &Setup, params: &Params, at: SimTime) -> AppRun {
    let env = FlinkEnv::submit(&setup.cluster, "spmv-cpu", at);
    let mut matrix = read_matrix(&env, params);
    let x = Arc::new(make_vector(params));
    // Ship the dense vector to every worker once.
    env.broadcast_bytes(params.vector_logical_bytes());
    let mut per_iteration = Vec::with_capacity(params.iterations);
    let mut last = env.frontier();
    let mut result = 0.0;
    for it in 0..params.iterations {
        let xv = Arc::clone(&x);
        let y = matrix.map_partition(
            "spmv",
            cpu_spmv_cost(),
            params.rows_logical as f64 / params.rows_actual as f64,
            move |rows| cpu_spmv(rows, &xv),
        );
        matrix.set_min_ready(env.frontier());
        if it == params.iterations - 1 {
            let ys = y.collect("y", 4.0);
            result = digest(&ys);
            y.write_hdfs("save-y", "/output/spmv", 4.0);
        }
        per_iteration.push(env.frontier() - last);
        last = env.frontier();
    }
    AppRun {
        mode: ExecMode::Cpu,
        report: env.finish(),
        digest: result,
        per_iteration,
    }
}

/// Run on GFlink (matrix and vector cached on the devices, Fig. 8a).
pub fn run_gpu(setup: &Setup, params: &Params) -> AppRun {
    run_gpu_at(setup, params, SimTime::ZERO)
}

/// Run on GFlink, submitting at `at`.
pub fn run_gpu_at(setup: &Setup, params: &Params, at: SimTime) -> AppRun {
    register_kernels(&setup.fabric);
    let genv = GflinkEnv::submit(&setup.cluster, &setup.fabric, "spmv-gpu", at);
    let matrix = read_matrix(&genv.flink, params);
    let mut gmatrix: GDataSet<EllRow> = genv.to_gdst(matrix, DataLayout::Aos);
    let x = make_vector(params);
    let mut xbuf = HBuffer::zeroed(x.len() * 4);
    for (i, v) in x.iter().enumerate() {
        xbuf.write_f32(i * 4, *v);
    }
    let xbuf = Arc::new(xbuf);
    let x_token = setup.fabric.new_cache_token();
    genv.flink.broadcast_bytes(params.vector_logical_bytes());
    let mut per_iteration = Vec::with_capacity(params.iterations);
    let mut last = genv.flink.frontier();
    let mut result = 0.0;
    let out_scale = params.rows_logical as f64 / params.rows_actual as f64;
    for it in 0..params.iterations {
        let spec = GpuMapSpec::new("cudaSpmvEll")
            .with_out_scale(out_scale)
            .with_cached_extra_input(Arc::clone(&xbuf), params.vector_logical_bytes(), x_token)
            .build(&setup.fabric)
            .expect("spmv spec");
        let y: GDataSet<YVal> = gmatrix.gpu_map_partition("spmv", &spec);
        // The driver consumes y before relaunching (sequential supersteps).
        gmatrix.set_min_ready(genv.flink.frontier());
        if it == params.iterations - 1 {
            let ys = y.inner().collect("y", 4.0);
            result = digest(&ys);
            y.inner().write_hdfs("save-y", "/output/spmv", 4.0);
        }
        per_iteration.push(genv.flink.frontier() - last);
        last = genv.flink.frontier();
    }
    AppRun {
        mode: ExecMode::Gpu,
        report: genv.finish(),
        digest: result,
        per_iteration,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::digests_match;

    fn small(setup: &Setup) -> Params {
        Params {
            rows_logical: 10_000_000,
            rows_actual: 2_000,
            iterations: 4,
            parallelism: setup.default_parallelism(),
            seed: 3,
        }
    }

    #[test]
    fn cpu_and_gpu_agree() {
        let s1 = Setup::standard(2);
        let cpu = run_cpu(&s1, &small(&s1));
        let s2 = Setup::standard(2);
        let gpu = run_gpu(&s2, &small(&s2));
        assert!(
            digests_match(cpu.digest, gpu.digest, 1e-3),
            "{} vs {}",
            cpu.digest,
            gpu.digest
        );
    }

    #[test]
    fn later_iterations_much_cheaper_with_cache() {
        // Fig. 7b's shape: iteration 1 pays IO + H2D; iterations 2..n-1 are
        // kernel-only; the last pays the HDFS write.
        let s = Setup::standard(1);
        let p = Params {
            rows_logical: 60_000_000, // ~3.8 GB matrix... scaled to device
            rows_actual: 4_000,
            iterations: 5,
            parallelism: 4,
            seed: 3,
        };
        let gpu = run_gpu(&s, &p);
        assert!(
            gpu.per_iteration[1] < gpu.per_iteration[0],
            "{:?}",
            gpu.per_iteration
        );
        assert!(
            gpu.per_iteration[4] > gpu.per_iteration[2],
            "last iteration pays the sink write: {:?}",
            gpu.per_iteration
        );
    }

    #[test]
    fn spmv_values_match_dense_reference() {
        let p = Params {
            rows_logical: 100,
            rows_actual: 100,
            iterations: 1,
            parallelism: 2,
            seed: 3,
        };
        let x = make_vector(&p);
        let rows: Vec<EllRow> = (0..100)
            .map(|i| {
                let (cols, vals) = ell_row::<NNZ>(3, i, 100);
                EllRow { cols, vals }
            })
            .collect();
        let y = cpu_spmv(&rows, &x);
        // Spot-check one row by hand.
        let r = &rows[17];
        let expect: f64 = (0..NNZ)
            .map(|k| r.vals[k] as f64 * x[r.cols[k] as usize] as f64)
            .sum();
        assert!((y[17].y as f64 - expect).abs() < 1e-6);
    }

    #[test]
    fn gpu_beats_cpu_at_scale() {
        // 60 M rows = 3.84 GB matrix: each of the 4 GPUs caches ~1 GB,
        // within its 2 GB cache region.
        let s1 = Setup::standard(2);
        let p = Params {
            rows_logical: 60_000_000,
            rows_actual: 4_000,
            iterations: 6,
            parallelism: s1.default_parallelism(),
            seed: 1,
        };
        let cpu = run_cpu(&s1, &p);
        let s2 = Setup::standard(2);
        let gpu = run_gpu(&s2, &p);
        assert!(gpu.report.total < cpu.report.total);
    }
}

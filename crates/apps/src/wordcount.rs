//! WordCount (Fig. 5c).
//!
//! 24–56 GB of text with a Zipf-distributed vocabulary, one pass: tokenize,
//! count per word, write the counts. WordCount is the paper's negative
//! control — a batch workload whose time is dominated by HDFS I/O and
//! tokenization, so GPU acceleration of the counting map yields only ≈1.1×
//! overall (§6.5: "the I/O overhead of WordCount is the bottleneck").
//!
//! The GPU path offloads the local aggregation: word-id blocks are shipped
//! to the device, a histogram kernel produces per-block (word, count)
//! partials, and only those tiny partials enter the shuffle. Tokenization
//! (string work) stays on the CPU in both paths, as it must.

use crate::common::{AppRun, ExecMode, Setup};
use crate::generators::zipf_word;
use gflink_core::{GDataSet, GRecord, GflinkEnv, GpuFabric, GpuMapSpec, OutMode};
use gflink_flink::{DataSet, FlinkEnv, KeyedOps, OpCost};
use gflink_gpu::{KernelArgs, KernelProfile};
use gflink_memory::{
    AlignClass, DataLayout, FieldDef, GStructDef, PrimType, RecordReader, RecordView,
};
use gflink_sim::SimTime;

/// Vocabulary size (distinct words).
pub const VOCAB: u32 = 1_000;
/// Average bytes per word in the input text (word + separator).
pub const WORD_BYTES: f64 = 7.0;
/// Default generator seed.
pub const WORDCOUNT_SEED: u64 = 0x574F_5244; // "WORD"

/// A tokenized word id.
#[derive(Clone, Debug, PartialEq)]
pub struct WordId {
    /// Vocabulary index.
    pub id: u32,
}

impl GRecord for WordId {
    fn def() -> GStructDef {
        GStructDef::new(
            "WordId",
            AlignClass::Align4,
            vec![FieldDef::scalar("id", PrimType::U32)],
        )
    }
    fn store(&self, view: &mut RecordView<'_>, idx: usize) {
        view.set_u64(idx, 0, 0, self.id as u64);
    }
    fn load(reader: &RecordReader<'_>, idx: usize) -> Self {
        WordId {
            id: reader.get_u64(idx, 0, 0) as u32,
        }
    }
}

/// A per-block count partial.
#[derive(Clone, Debug, PartialEq)]
pub struct CountRec {
    /// Vocabulary index.
    pub id: u32,
    /// Occurrences in the block (logical scale).
    pub count: u32,
}

impl GRecord for CountRec {
    fn def() -> GStructDef {
        GStructDef::new(
            "CountRec",
            AlignClass::Align4,
            vec![
                FieldDef::scalar("id", PrimType::U32),
                FieldDef::scalar("count", PrimType::U32),
            ],
        )
    }
    fn store(&self, view: &mut RecordView<'_>, idx: usize) {
        view.set_u64(idx, 0, 0, self.id as u64);
        view.set_u64(idx, 1, 0, self.count as u64);
    }
    fn load(reader: &RecordReader<'_>, idx: usize) -> Self {
        CountRec {
            id: reader.get_u64(idx, 0, 0) as u32,
            count: reader.get_u64(idx, 1, 0) as u32,
        }
    }
}

/// Workload parameters.
#[derive(Clone, Debug)]
pub struct Params {
    /// Input text bytes at paper scale.
    pub bytes_logical: u64,
    /// Words actually materialized.
    pub words_actual: usize,
    /// Data parallelism.
    pub parallelism: usize,
    /// Generator seed.
    pub seed: u64,
}

impl Params {
    /// A Table 1 size: `gb` gigabytes of text (24–56 in the paper).
    pub fn paper(gb: u64, setup: &Setup) -> Params {
        Params {
            bytes_logical: gb * 1_000_000_000,
            words_actual: (gb as usize * 1_500).max(2_000),
            parallelism: setup.default_parallelism(),
            seed: WORDCOUNT_SEED,
        }
    }

    /// Words at paper scale.
    pub fn words_logical(&self) -> u64 {
        (self.bytes_logical as f64 / WORD_BYTES) as u64
    }
}

/// Register the histogram kernel.
pub fn register_kernels(fabric: &GpuFabric) {
    fabric.register_kernel("cudaWordHistogram", |args: &mut KernelArgs<'_, '_>| {
        let def = WordId::def();
        let n = args.n_actual;
        let reader = RecordReader::new(args.inputs[0], &def, DataLayout::Aos, n);
        let mut counts = vec![0u64; VOCAB as usize];
        for i in 0..n {
            let id = reader.get_u64(i, 0, 0) as usize;
            counts[id % VOCAB as usize] += 1;
        }
        let out_def = CountRec::def();
        let mut view = RecordView::new(args.outputs[0], &out_def, DataLayout::Aos, VOCAB as usize);
        for (id, c) in counts.iter().enumerate() {
            CountRec {
                id: id as u32,
                count: (*c).min(u32::MAX as u64) as u32,
            }
            .store(&mut view, id);
        }
        // One atomic add per word plus the histogram write-back.
        KernelProfile::new(
            args.n_logical as f64 * 2.0,
            args.n_logical as f64 * 8.0 + VOCAB as f64 * 8.0,
        )
        .with_coalescing(0.5) // histogram scatter is irregular
    });
}

/// CPU cost of tokenization (string scanning, char decoding, object churn).
pub fn cpu_tokenize_cost() -> OpCost {
    OpCost::new(24.0, WORD_BYTES * 2.0).with_overhead_factor(2.0)
}

/// CPU cost of the baseline's per-word combine insert: a hot hash-table hit
/// on a primitive key — far cheaper than a full operator hop.
pub fn cpu_count_cost() -> OpCost {
    OpCost::new(4.0, 12.0).with_overhead_factor(0.4)
}

fn read_words(env: &FlinkEnv, params: &Params) -> DataSet<WordId> {
    let seed = params.seed;
    env.read_hdfs(
        "text",
        "/input/wordcount",
        params.words_logical(),
        params.words_actual,
        WORD_BYTES,
        params.parallelism,
        move |i| WordId {
            id: zipf_word(seed, i, VOCAB),
        },
    )
}

fn digest(counts: &[(u32, u64)]) -> f64 {
    counts
        .iter()
        .map(|(id, c)| (*id as f64 + 1.0).ln() * *c as f64)
        .sum()
}

/// Run on the baseline engine.
pub fn run_cpu(setup: &Setup, params: &Params) -> AppRun {
    run_cpu_at(setup, params, SimTime::ZERO)
}

/// Run on the baseline engine, submitting at `at`.
pub fn run_cpu_at(setup: &Setup, params: &Params, at: SimTime) -> AppRun {
    let env = FlinkEnv::submit(&setup.cluster, "wordcount-cpu", at);
    let words = read_words(&env, params);
    let scale = words.scale();
    // Tokenize (string work) and emit (word, 1) pairs.
    let pairs = words.map("tokenize", cpu_tokenize_cost(), |w| (w.id, 1u64));
    // Vocabulary is size-independent: shuffle_scale 1 after combining.
    let counts = pairs.reduce_by_key("count", cpu_count_cost(), 12.0, 1.0, |a, b| a + b);
    let _ = scale;
    let got = counts.collect("counts", 12.0);
    counts.write_hdfs("save-counts", "/output/wordcount", 12.0);
    AppRun {
        mode: ExecMode::Cpu,
        report: env.finish(),
        digest: digest(&got),
        per_iteration: vec![env.frontier() - at],
    }
}

/// Run on GFlink.
pub fn run_gpu(setup: &Setup, params: &Params) -> AppRun {
    run_gpu_at(setup, params, SimTime::ZERO)
}

/// Run on GFlink, submitting at `at`.
pub fn run_gpu_at(setup: &Setup, params: &Params, at: SimTime) -> AppRun {
    register_kernels(&setup.fabric);
    let genv = GflinkEnv::submit(&setup.cluster, &setup.fabric, "wordcount-gpu", at);
    let words = read_words(&genv.flink, params);
    // Tokenization stays on the CPU (strings!), writing ids straight into
    // off-heap GStruct pages.
    let ids = words.map("tokenize", cpu_tokenize_cost(), |w| w.clone());
    let gids: GDataSet<WordId> = genv.to_gdst(ids, DataLayout::Aos);
    // One pass: no reuse, no caching.
    let spec = GpuMapSpec::new("cudaWordHistogram")
        .uncached()
        .with_out_mode(OutMode::PerBlock(VOCAB as usize))
        .with_out_scale(1.0)
        .build(&setup.fabric)
        .expect("wordcount spec");
    let partials: GDataSet<CountRec> = gids.gpu_map_partition("histogram", &spec);
    // Only tiny per-block partials enter the shuffle.
    let pairs = partials
        .inner()
        .map("unpack", OpCost::new(1.0, 8.0), |r| (r.id, r.count as u64));
    let counts = pairs.reduce_by_key("count", OpCost::new(1.0, 12.0), 12.0, 1.0, |a, b| a + b);
    let got = counts.collect("counts", 12.0);
    counts.write_hdfs("save-counts", "/output/wordcount", 12.0);
    AppRun {
        mode: ExecMode::Gpu,
        report: genv.finish(),
        digest: digest(&got),
        per_iteration: vec![genv.flink.frontier() - at],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::digests_match;
    use gflink_sim::Phase;

    fn small(setup: &Setup) -> Params {
        Params {
            bytes_logical: 100_000_000,
            words_actual: 4_000,
            parallelism: setup.default_parallelism(),
            seed: 11,
        }
    }

    #[test]
    fn cpu_and_gpu_agree() {
        let s1 = Setup::standard(2);
        let p = small(&s1);
        let cpu = run_cpu(&s1, &p);
        let s2 = Setup::standard(2);
        let gpu = run_gpu(&s2, &p);
        assert!(
            digests_match(cpu.digest, gpu.digest, 1e-9),
            "{} vs {}",
            cpu.digest,
            gpu.digest
        );
    }

    #[test]
    fn total_count_preserved() {
        let s = Setup::standard(1);
        let p = small(&s);
        let env = FlinkEnv::submit(&s.cluster, "wc", SimTime::ZERO);
        let words = read_words(&env, &p);
        let pairs = words.map("tok", cpu_tokenize_cost(), |w| (w.id, 1u64));
        let counts = pairs.reduce_by_key("count", cpu_count_cost(), 12.0, 1.0, |a, b| a + b);
        let got = counts.collect("c", 12.0);
        let total: u64 = got.iter().map(|(_, c)| c).sum();
        assert_eq!(total, p.words_actual as u64);
    }

    #[test]
    fn zipf_head_dominates() {
        let s = Setup::standard(1);
        let p = small(&s);
        let env = FlinkEnv::submit(&s.cluster, "wc", SimTime::ZERO);
        let words = read_words(&env, &p);
        let pairs = words.map("tok", cpu_tokenize_cost(), |w| (w.id, 1u64));
        let counts = pairs.reduce_by_key("count", cpu_count_cost(), 12.0, 1.0, |a, b| a + b);
        let got = counts.collect("c", 12.0);
        let head: u64 = got.iter().filter(|(id, _)| *id < 10).map(|(_, c)| c).sum();
        let total: u64 = got.iter().map(|(_, c)| c).sum();
        assert!(head as f64 > total as f64 * 0.1, "head {head} of {total}");
    }

    #[test]
    fn io_dominates_wordcount() {
        // §6.5's explanation for the ~1.1x speedup.
        let s = Setup::standard(2);
        let p = Params {
            bytes_logical: 24_000_000_000,
            words_actual: 8_000,
            parallelism: s.default_parallelism(),
            seed: 11,
        };
        let cpu = run_cpu(&s, &p);
        let io = cpu.report.acct.get(Phase::Io).as_secs_f64();
        let total = cpu.report.total.as_secs_f64();
        assert!(io > total * 0.1, "io {io} of {total}");
    }
}

//! Transfer-batching transparency (§4.1.2).
//!
//! Small-GWork transfer batching changes *when* bytes cross the PCIe bus
//! (fused H2D/D2H calls, one α per direction for the whole group) but must
//! never change *what* they decode to. Every app therefore has to produce a
//! bit-identical digest batched vs unbatched, with quiet fault ledgers on
//! both sides — including when all apps share one batching fabric
//! sequentially (the `isolation.rs` pattern, with batching switched on).
//!
//! The fabric is deliberately shaped into the backlog regime (one
//! single-stream C2050 per worker, 64 KiB blocks, fast producers): an idle
//! fabric never batches by design, so a default-shaped fabric would pass
//! this test vacuously.

use gflink_apps::{concomp, kmeans, linreg, pagerank, pointadd, spmv, wordcount, AppRun, Setup};
use gflink_core::{BatchConfig, FabricConfig};
use gflink_flink::ClusterConfig;
use gflink_gpu::GpuModel;
use gflink_sim::{FaultKind, FaultPlan, SimTime};
use proptest::prelude::*;

const WORKERS: usize = 4;

/// A fabric shaped so that 64 KiB GWorks outpace the single stream and
/// queue — the only regime in which the batcher engages.
fn setup(batch: BatchConfig) -> Setup {
    let mut fabric = FabricConfig {
        block_bytes: 64 << 10,
        producer_overhead: SimTime::from_micros(5),
        ..FabricConfig::default()
    };
    fabric.worker.models = vec![GpuModel::TeslaC2050];
    fabric.worker.streams_per_gpu = 1;
    fabric.worker.transfer.batch = batch;
    Setup::with_configs(ClusterConfig::standard(WORKERS), fabric)
}

type App = fn(&Setup) -> AppRun;

/// All seven apps at small scale (two iterations where iterative), enough
/// blocks per partition that fusing genuinely happens.
fn apps() -> Vec<(&'static str, App)> {
    vec![
        ("kmeans", |s: &Setup| {
            let mut p = kmeans::Params::paper(1, s);
            p.iterations = 2;
            kmeans::run_gpu(s, &p)
        }),
        ("pagerank", |s: &Setup| {
            let mut p = pagerank::Params::paper(1, s);
            p.iterations = 2;
            pagerank::run_gpu(s, &p)
        }),
        ("wordcount", |s: &Setup| {
            wordcount::run_gpu(
                s,
                &wordcount::Params {
                    bytes_logical: 64_000_000,
                    words_actual: 4_000,
                    parallelism: s.default_parallelism(),
                    seed: wordcount::WORDCOUNT_SEED,
                },
            )
        }),
        ("concomp", |s: &Setup| {
            let mut p = concomp::Params::paper(1, s);
            p.iterations = 2;
            concomp::run_gpu(s, &p)
        }),
        ("linreg", |s: &Setup| {
            let mut p = linreg::Params::paper(1, s);
            p.iterations = 2;
            linreg::run_gpu(s, &p)
        }),
        ("spmv", |s: &Setup| {
            spmv::run_gpu(
                s,
                &spmv::Params {
                    rows_logical: 1_000_000,
                    rows_actual: 2_000,
                    iterations: 2,
                    parallelism: s.default_parallelism(),
                    seed: spmv::SPMV_SEED,
                },
            )
        }),
        ("pointadd", |s: &Setup| {
            pointadd::run_gpu(
                s,
                &pointadd::Params {
                    n_logical: 8_000_000,
                    n_actual: 20_000,
                    iterations: 2,
                    parallelism: s.default_parallelism(),
                    delta: (1.0, -0.5),
                },
            )
        }),
    ]
}

fn assert_quiet(name: &str, run: &AppRun, setup: &Setup) {
    assert!(
        run.report.faults.is_quiet(),
        "{name}: healthy run must report a zero-delta ledger, got {:?}",
        run.report.faults
    );
    setup.fabric.with_managers(|ms| {
        for m in ms.iter() {
            assert!(
                m.fault_ledger().is_quiet(),
                "{name}: worker {} ledger not quiet: {:?}",
                m.worker_id(),
                m.fault_ledger()
            );
        }
    });
}

#[test]
fn every_app_is_digest_identical_batched_and_unbatched() {
    // Unbatched baselines, each on a fresh (saturating but non-batching)
    // fabric.
    let mut base = Vec::new();
    for (name, run) in apps() {
        let s = setup(BatchConfig::default());
        let r = run(&s);
        assert_quiet(name, &r, &s);
        base.push((name, r.digest));
    }

    // All apps sequentially on ONE shared batching fabric: every digest
    // must match its unbatched baseline bit for bit.
    let shared = setup(BatchConfig::enabled());
    let mut total_batches = 0u64;
    for (i, (name, run)) in apps().iter().enumerate() {
        let r = run(&shared);
        assert_quiet(name, &r, &shared);
        assert_eq!(
            r.digest.to_bits(),
            base[i].1.to_bits(),
            "{name}: batched digest drifted from unbatched baseline"
        );
        total_batches += r.report.gpu.as_ref().map_or(0, |g| g.batches);
    }
    assert!(
        total_batches > 0,
        "shared batching fabric fused no batches — the test exercised nothing"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The transparency property must hold at *any* point of the threshold
    /// space, not just the defaults: batch fill, size cutoff and window all
    /// move which works fuse, never what they compute.
    #[test]
    fn pointadd_digest_invariant_under_batch_thresholds(
        max_works in 2usize..12,
        small_shift in 14u32..20, // 16 KiB ..= 512 KiB cutoff
        window_us in 10u64..200,
    ) {
        let run = |s: &Setup| {
            pointadd::run_gpu(
                s,
                &pointadd::Params {
                    n_logical: 4_000_000,
                    n_actual: 10_000,
                    iterations: 2,
                    parallelism: s.default_parallelism(),
                    delta: (1.0, -0.5),
                },
            )
        };
        let baseline = run(&setup(BatchConfig::default()));
        let batch = BatchConfig {
            enabled: true,
            max_works,
            small_work_bytes: 1u64 << small_shift,
            window: SimTime::from_micros(window_us),
            ..BatchConfig::default()
        };
        let s = setup(batch);
        let batched = run(&s);
        assert_quiet("pointadd", &batched, &s);
        prop_assert_eq!(
            batched.digest.to_bits(),
            baseline.digest.to_bits(),
            "digest drifted under batch thresholds (max_works={}, cutoff=2^{}, window={}us)",
            max_works, small_shift, window_us
        );
    }

    /// Killing a worker's only GPU while fused flights are in the air must
    /// not corrupt anything: flight members are recovered one by one, the
    /// survivors (here, the CPU fallback path) recompute them, and the
    /// digest stays bit-identical with a balanced ledger — no work lost,
    /// none left parked.
    #[test]
    fn device_kill_mid_fused_flight_is_digest_identical(
        worker in 0usize..WORKERS,
        kill_us in 1_200_000u64..1_350_000,
    ) {
        let run = |s: &Setup| {
            pointadd::run_gpu(
                s,
                &pointadd::Params {
                    n_logical: 4_000_000,
                    n_actual: 10_000,
                    iterations: 2,
                    parallelism: s.default_parallelism(),
                    delta: (1.0, -0.5),
                },
            )
        };
        let baseline = run(&setup(BatchConfig::enabled()));
        let s = setup(BatchConfig::enabled());
        let plan = FaultPlan::new().with(
            SimTime::from_micros(kill_us),
            FaultKind::GpuLost { gpu: 0 },
        );
        s.fabric.with_managers(|ms| ms[worker].set_fault_plan(plan));
        let faulted = run(&s);
        prop_assert_eq!(
            faulted.digest.to_bits(),
            baseline.digest.to_bits(),
            "digest drifted after killing worker {}'s GPU at {}us",
            worker, kill_us
        );
        // Balanced, not quiet: the loss is ledgered, but nothing failed
        // permanently, leaked from the pen, or went missing.
        let f = &faulted.report.faults;
        prop_assert_eq!(f.works_failed, 0);
        prop_assert_eq!(f.parked_abandoned, 0);
        prop_assert!(
            f.gpus_lost <= 1,
            "only the scripted loss may fire, got {:?}", f
        );
        // The other three workers keep fusing: the regime under test —
        // batching — stayed engaged through the fault.
        let batches = faulted.report.gpu.as_ref().map_or(0, |g| g.batches);
        prop_assert!(batches > 0, "no batches fused; the kill test exercised nothing");
    }
}

//! Hybrid CPU+GPU placement transparency (§5 + the online cost model).
//!
//! The `HybridCostModel` policy changes *where* a GWork executes — GPU,
//! host CPU pool, or split across both — but must never change *what* it
//! computes. Every app therefore has to produce a bit-identical digest
//! under hybrid placement vs locality-aware GPU-only scheduling, with
//! quiet fault ledgers on both sides; the hybrid timeline itself must
//! replay deterministically; and killing a device mid-hybrid-run (split
//! children in flight) must recover without drifting the digest.

use gflink_apps::{concomp, kmeans, linreg, pagerank, pointadd, spmv, wordcount, AppRun, Setup};
use gflink_core::{FabricConfig, HybridConfig, SchedulingPolicy};
use gflink_flink::ClusterConfig;
use gflink_sim::{FaultKind, FaultPlan, SimTime};
use proptest::prelude::*;

const WORKERS: usize = 4;

fn setup(policy: SchedulingPolicy) -> Setup {
    let mut fabric = FabricConfig::default();
    fabric.worker.scheduling = policy;
    Setup::with_configs(ClusterConfig::standard(WORKERS), fabric)
}

/// A hybrid fabric shaped to force adaptive block *splits*: a tiny split
/// floor makes every pointadd block eligible, and a huge balance window
/// accepts splits far from parity.
fn split_setup() -> Setup {
    let mut fabric = FabricConfig::default();
    fabric.worker.scheduling = SchedulingPolicy::HybridCostModel;
    fabric.worker.hybrid = HybridConfig {
        min_split_elems: 128,
        split_balance: 1_000.0,
        ..HybridConfig::default()
    };
    Setup::with_configs(ClusterConfig::standard(WORKERS), fabric)
}

type App = fn(&Setup) -> AppRun;

/// All seven apps at small scale (two iterations where iterative) — the
/// same coverage grid as `batching.rs`.
fn apps() -> Vec<(&'static str, App)> {
    vec![
        ("kmeans", |s: &Setup| {
            let mut p = kmeans::Params::paper(1, s);
            p.iterations = 2;
            kmeans::run_gpu(s, &p)
        }),
        ("pagerank", |s: &Setup| {
            let mut p = pagerank::Params::paper(1, s);
            p.iterations = 2;
            pagerank::run_gpu(s, &p)
        }),
        ("wordcount", |s: &Setup| {
            wordcount::run_gpu(
                s,
                &wordcount::Params {
                    bytes_logical: 64_000_000,
                    words_actual: 4_000,
                    parallelism: s.default_parallelism(),
                    seed: wordcount::WORDCOUNT_SEED,
                },
            )
        }),
        ("concomp", |s: &Setup| {
            let mut p = concomp::Params::paper(1, s);
            p.iterations = 2;
            concomp::run_gpu(s, &p)
        }),
        ("linreg", |s: &Setup| {
            let mut p = linreg::Params::paper(1, s);
            p.iterations = 2;
            linreg::run_gpu(s, &p)
        }),
        ("spmv", |s: &Setup| {
            spmv::run_gpu(
                s,
                &spmv::Params {
                    rows_logical: 1_000_000,
                    rows_actual: 2_000,
                    iterations: 2,
                    parallelism: s.default_parallelism(),
                    seed: spmv::SPMV_SEED,
                },
            )
        }),
        ("pointadd", |s: &Setup| {
            pointadd::run_gpu(
                s,
                &pointadd::Params {
                    n_logical: 8_000_000,
                    n_actual: 20_000,
                    iterations: 2,
                    parallelism: s.default_parallelism(),
                    delta: (1.0, -0.5),
                },
            )
        }),
    ]
}

fn assert_quiet(name: &str, run: &AppRun, setup: &Setup) {
    assert!(
        run.report.faults.is_quiet(),
        "{name}: healthy run must report a zero-delta ledger, got {:?}",
        run.report.faults
    );
    setup.fabric.with_managers(|ms| {
        for m in ms.iter() {
            assert!(
                m.fault_ledger().is_quiet(),
                "{name}: worker {} ledger not quiet: {:?}",
                m.worker_id(),
                m.fault_ledger()
            );
        }
    });
}

fn pointadd_small(s: &Setup) -> AppRun {
    pointadd::run_gpu(
        s,
        &pointadd::Params {
            n_logical: 4_000_000,
            n_actual: 10_000,
            iterations: 2,
            parallelism: s.default_parallelism(),
            delta: (1.0, -0.5),
        },
    )
}

#[test]
fn every_app_is_digest_identical_hybrid_vs_locality_aware() {
    let mut routed_cpu = 0u64;
    for (name, run) in apps() {
        let base_setup = setup(SchedulingPolicy::LocalityAware);
        let base = run(&base_setup);
        assert_quiet(name, &base, &base_setup);

        let hyb_setup = setup(SchedulingPolicy::HybridCostModel);
        let hyb = run(&hyb_setup);
        assert_quiet(name, &hyb, &hyb_setup);

        assert_eq!(
            hyb.digest.to_bits(),
            base.digest.to_bits(),
            "{name}: hybrid placement drifted the digest"
        );
        let g = hyb.report.gpu.as_ref().expect("gpu rollup");
        routed_cpu += g.hybrid_cpu;
    }
    // The grid must actually exercise the hybrid path: the transfer-bound
    // apps route blocks to the host, or this test proved nothing.
    assert!(
        routed_cpu > 0,
        "no app routed a single block to the CPU — hybrid never engaged"
    );
}

#[test]
fn hybrid_timeline_replays_deterministically() {
    let a = pointadd_small(&setup(SchedulingPolicy::HybridCostModel));
    let b = pointadd_small(&setup(SchedulingPolicy::HybridCostModel));
    assert_eq!(a.digest.to_bits(), b.digest.to_bits(), "digest drifted");
    assert_eq!(
        a.report.total, b.report.total,
        "hybrid timeline is not replay-deterministic"
    );
}

#[test]
fn adaptive_splits_are_digest_identical_and_merge_cleanly() {
    let base_setup = setup(SchedulingPolicy::LocalityAware);
    let base = pointadd_small(&base_setup);

    let s = split_setup();
    let split = pointadd_small(&s);
    assert_quiet("pointadd", &split, &s);
    assert_eq!(
        split.digest.to_bits(),
        base.digest.to_bits(),
        "split-and-merge drifted the digest"
    );
    let g = split.report.gpu.as_ref().expect("gpu rollup");
    assert!(
        g.hybrid_splits > 0,
        "split-shaped fabric split nothing — the test exercised nothing"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Killing a GPU mid-hybrid-run — with split children potentially in
    /// flight on the dying device — must recover losslessly: digest
    /// bit-identical to the unfaulted hybrid baseline, nothing failed
    /// permanently, nothing abandoned in the pen.
    #[test]
    fn device_kill_mid_hybrid_run_is_digest_identical(
        worker in 0usize..WORKERS,
        kill_us in 500u64..500_000,
    ) {
        let baseline = pointadd_small(&split_setup());
        let s = split_setup();
        let plan = FaultPlan::new().with(
            SimTime::from_micros(kill_us),
            FaultKind::GpuLost { gpu: 0 },
        );
        s.fabric.with_managers(|ms| ms[worker].set_fault_plan(plan));
        let faulted = pointadd_small(&s);
        prop_assert_eq!(
            faulted.digest.to_bits(),
            baseline.digest.to_bits(),
            "digest drifted after killing worker {}'s gpu0 at {}us",
            worker, kill_us
        );
        // Balanced, not quiet: the loss is ledgered, but no work may fail
        // permanently, leak from the pen, or go missing.
        let f = &faulted.report.faults;
        prop_assert_eq!(f.works_failed, 0);
        prop_assert_eq!(f.parked_abandoned, 0);
        prop_assert!(
            f.gpus_lost <= 1,
            "only the scripted loss may fire, got {:?}", f
        );
    }
}

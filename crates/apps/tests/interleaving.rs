//! Concurrent-execution transparency (ISSUE 5).
//!
//! The contract that makes multi-tenancy safe: a job's results must not
//! depend on *who it shares the fabric with*. Every app therefore has to
//! produce a bit-identical digest whether it runs solo on a fresh
//! default-config fabric or genuinely concurrently — one driver thread per
//! tenant, all submitted at t=0 — with any other app on a shared
//! weighted-fair fabric, with quiet fault ledgers either way. Cross-job
//! cache privacy in the concurrent scheduler is pinned at the manager
//! level by `core/tests/jobsched.rs`
//! (`concurrent_jobs_never_hit_each_others_cache`); here the digest
//! assertions prove the end-to-end consequence: no tenant ever observes
//! another tenant's bytes, timing, or cache state in its own output.
//!
//! `isolation.rs` covers the *sequential* shared-fabric case; this suite is
//! its concurrent twin (solo == serial == interleaved, bit for bit).

use gflink_apps::{
    concomp, kmeans, linreg, pagerank, pointadd, run_concurrent, spmv, wordcount, AppRun, Setup,
};
use gflink_core::{FabricConfig, SchedulerConfig};
use gflink_flink::ClusterConfig;

const WORKERS: usize = 2;

type App = fn(&Setup) -> AppRun;

/// All seven apps at small scale (two iterations where iterative).
fn apps() -> Vec<(&'static str, App)> {
    vec![
        ("kmeans", |s: &Setup| {
            let mut p = kmeans::Params::paper(1, s);
            p.iterations = 2;
            kmeans::run_gpu(s, &p)
        }),
        ("pagerank", |s: &Setup| {
            let mut p = pagerank::Params::paper(1, s);
            p.iterations = 2;
            pagerank::run_gpu(s, &p)
        }),
        ("wordcount", |s: &Setup| {
            wordcount::run_gpu(
                s,
                &wordcount::Params {
                    bytes_logical: 64_000_000,
                    words_actual: 4_000,
                    parallelism: s.default_parallelism(),
                    seed: wordcount::WORDCOUNT_SEED,
                },
            )
        }),
        ("concomp", |s: &Setup| {
            let mut p = concomp::Params::paper(1, s);
            p.iterations = 2;
            concomp::run_gpu(s, &p)
        }),
        ("linreg", |s: &Setup| {
            let mut p = linreg::Params::paper(1, s);
            p.iterations = 2;
            linreg::run_gpu(s, &p)
        }),
        ("spmv", |s: &Setup| {
            spmv::run_gpu(
                s,
                &spmv::Params {
                    rows_logical: 1_000_000,
                    rows_actual: 2_000,
                    iterations: 2,
                    parallelism: s.default_parallelism(),
                    seed: spmv::SPMV_SEED,
                },
            )
        }),
        ("pointadd", |s: &Setup| {
            pointadd::run_gpu(
                s,
                &pointadd::Params {
                    n_logical: 8_000_000,
                    n_actual: 20_000,
                    iterations: 2,
                    parallelism: s.default_parallelism(),
                    delta: (1.0, -0.5),
                },
            )
        }),
    ]
}

/// A fresh shared fabric with weighted-fair arbitration for the tenants.
fn shared_setup() -> Setup {
    let mut fabric = FabricConfig::default();
    fabric.worker.scheduler = SchedulerConfig::weighted_fair();
    Setup::with_configs(ClusterConfig::standard(WORKERS), fabric)
}

fn assert_quiet(name: &str, run: &AppRun, setup: &Setup) {
    assert!(
        run.report.faults.is_quiet(),
        "{name}: healthy run must report a zero-delta ledger, got {:?}",
        run.report.faults
    );
    setup.fabric.with_managers(|ms| {
        for m in ms.iter() {
            assert!(
                m.fault_ledger().is_quiet(),
                "{name}: worker {} ledger not quiet: {:?}",
                m.worker_id(),
                m.fault_ledger()
            );
        }
    });
}

#[test]
fn every_app_pair_is_digest_identical_interleaved_and_solo() {
    // Solo baselines, each on a fresh DEFAULT-config fabric: the digest
    // contract spans configurations (FIFO solo vs WFQ interleaved).
    let mut solo = Vec::new();
    for (name, run) in apps() {
        let s = Setup::standard(WORKERS);
        let r = run(&s);
        assert_quiet(name, &r, &s);
        solo.push((name, r.digest));
    }

    // Every unordered pair of distinct apps, genuinely concurrent on one
    // fresh shared fabric. (Self-pairs are excluded deliberately: the HDFS
    // namespace is shared like a real cluster's, so two instances of the
    // same app correctly conflict on their output paths.)
    let all = apps();
    for i in 0..all.len() {
        for j in (i + 1)..all.len() {
            let shared = shared_setup();
            let (ni, fi) = all[i];
            let (nj, fj) = all[j];
            let runs = run_concurrent(vec![
                (ni, {
                    let s = shared.clone();
                    Box::new(move || fi(&s))
                }),
                (nj, {
                    let s = shared.clone();
                    Box::new(move || fj(&s))
                }),
            ]);
            for ((name, run), (_, solo_digest)) in runs.iter().zip([&solo[i], &solo[j]]) {
                assert_quiet(name, run, &shared);
                assert_eq!(
                    run.digest.to_bits(),
                    solo_digest.to_bits(),
                    "{name} (interleaved with {ni}+{nj}) drifted from its solo digest"
                );
            }
            // Both tenants finished: every session must be torn down and
            // its admission slot returned.
            assert_eq!(shared.fabric.live_jobs(), 0, "{ni}+{nj} leaked a job");
        }
    }
}

#[test]
fn interleaved_runs_are_deterministic() {
    // Same pair, two fresh fabrics: the JobGate baton must replay the
    // identical simulated timeline — total times, not just digests.
    let run_pair = || {
        let shared = shared_setup();
        let all = apps();
        let (nk, fk) = all[0]; // kmeans
        let (ns, fs) = all[5]; // spmv
        run_concurrent(vec![
            (nk, {
                let s = shared.clone();
                Box::new(move || fk(&s))
            }),
            (ns, {
                let s = shared.clone();
                Box::new(move || fs(&s))
            }),
        ])
        .into_iter()
        .map(|(name, r)| (name, r.digest.to_bits(), r.report.total))
        .collect::<Vec<_>>()
    };
    assert_eq!(run_pair(), run_pair());
}

//! Cross-job isolation regression (the multi-tenant drift bug).
//!
//! A job's results must not depend on what ran before it on the same
//! cluster + GPU fabric. Historically they did: a cluster-global HDFS
//! placement cursor leaked prior tenants' create history into block
//! content generation, drifting digests by ~1e5. With per-job sessions
//! (cache regions, ledgers) and per-job HDFS cursors, every app must
//! produce a *bit-identical* digest whether it runs solo on a fresh
//! fabric or after any other app on a shared one — and a healthy fabric
//! must report zero-delta (quiet) fault ledgers either way.

use gflink_apps::{kmeans, pointadd, spmv, AppRun, Setup};

const WORKERS: usize = 4;

type App = fn(&Setup) -> AppRun;

fn apps() -> Vec<(&'static str, App)> {
    vec![
        ("kmeans", |s: &Setup| {
            kmeans::run_gpu(s, &kmeans::Params::paper(4, s))
        }),
        ("spmv", |s: &Setup| {
            spmv::run_gpu(s, &spmv::Params::paper(1, s))
        }),
        ("pointadd", |s: &Setup| {
            pointadd::run_gpu(s, &pointadd::Params::standard(s))
        }),
    ]
}

fn assert_quiet(name: &str, run: &AppRun, setup: &Setup) {
    assert!(
        run.report.faults.is_quiet(),
        "{name}: healthy run must report a zero-delta ledger, got {:?}",
        run.report.faults
    );
    setup.fabric.with_managers(|ms| {
        for m in ms.iter() {
            assert!(
                m.fault_ledger().is_quiet(),
                "{name}: worker {} ledger not quiet: {:?}",
                m.worker_id(),
                m.fault_ledger()
            );
        }
    });
}

#[test]
fn every_app_is_digest_identical_solo_and_after_every_other_app() {
    // Solo baselines, each on a fresh cluster + fabric.
    let mut solo = Vec::new();
    for (name, run) in apps() {
        let s = Setup::standard(WORKERS);
        let r = run(&s);
        assert_quiet(name, &r, &s);
        solo.push((name, r.digest));
    }

    // Every ordered pair (first, second), sequential on one shared fabric:
    // the second tenant's digest must be bit-identical to its solo run.
    for (i, (first_name, first)) in apps().iter().enumerate() {
        for (j, (second_name, second)) in apps().iter().enumerate() {
            if i == j {
                continue;
            }
            let s = Setup::standard(WORKERS);
            let r1 = first(&s);
            let r2 = second(&s);
            assert_quiet(first_name, &r1, &s);
            assert_quiet(second_name, &r2, &s);
            assert_eq!(
                r1.digest.to_bits(),
                solo[i].1.to_bits(),
                "{first_name} (fresh fabric, first tenant) drifted from solo"
            );
            assert_eq!(
                r2.digest.to_bits(),
                solo[j].1.to_bits(),
                "{second_name} after {first_name} drifted from its solo digest"
            );
        }
    }
}

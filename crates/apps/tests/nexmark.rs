//! Nexmark chaos + determinism suite.
//!
//! A Nexmark run must be a pure function of `(NexmarkConfig, FaultPlan)`:
//! identical digests and watermark timelines across repeated runs, across
//! engines, across placement policies, across tenancy mixes, and across a
//! crash → checkpoint-resume boundary. Faults may change *when* windows
//! fire (latency) and *whether* a window survives (loss), but never the
//! value bits of the windows that do.

use gflink_apps::nexmark::{self, NexmarkConfig};
use gflink_core::{
    CheckpointConfig, FabricConfig, GpuFabric, SchedulingPolicy, StreamEnv, WindowedRun,
};
use gflink_flink::{ClusterConfig, JobGate, SharedCluster};
use gflink_sim::{FaultKind, FaultPlan, SimTime};

const WORKERS: usize = 2;

fn fabric_with(cfg: FabricConfig) -> GpuFabric {
    let fabric = GpuFabric::new(WORKERS, cfg);
    nexmark::register_kernels(&fabric);
    fabric
}

fn gpu_env(policy: SchedulingPolicy) -> StreamEnv {
    let mut cfg = FabricConfig::default();
    cfg.worker.scheduling = policy;
    StreamEnv::gpu(&fabric_with(cfg))
}

fn cpu_env() -> StreamEnv {
    StreamEnv::cpu(&ClusterConfig::standard(WORKERS))
}

fn config() -> NexmarkConfig {
    let mut cfg = NexmarkConfig::standard(42);
    cfg.duration = SimTime::from_secs(2);
    cfg
}

/// One GPU q6 run against a fabric whose worker 0 loses a device at `at`.
fn q6_under_fault(cfg: &NexmarkConfig, at: SimTime) -> WindowedRun {
    let fabric = fabric_with(FabricConfig::default());
    fabric.with_managers(|ms| {
        ms[0].set_fault_plan(FaultPlan::new().with(at, FaultKind::GpuLost { gpu: 0 }));
    });
    nexmark::q6(&StreamEnv::gpu(&fabric), cfg).expect("q6 survives a device loss")
}

#[test]
fn same_seed_and_fault_plan_replays_identically() {
    let cfg = config();
    let kill = SimTime::from_millis(600);
    let a = q6_under_fault(&cfg, kill);
    let b = q6_under_fault(&cfg, kill);
    assert_eq!(a.digest(), b.digest());
    assert_eq!(a.watermark_digest(), b.watermark_digest());
    assert_eq!(a.windows.len(), b.windows.len());
    assert_eq!(a.report.batches, b.report.batches);
    assert_eq!(a.report.lost.len(), b.report.lost.len());
    assert_eq!(a.report.latency_hist.p99(), b.report.latency_hist.p99());
}

#[test]
fn q6_digest_is_invariant_across_engines_and_policies() {
    let cfg = config();
    let cpu = nexmark::q6(&cpu_env(), &cfg).expect("cpu q6");
    let local = nexmark::q6(&gpu_env(SchedulingPolicy::LocalityAware), &cfg).expect("gpu q6");
    let hybrid = nexmark::q6(&gpu_env(SchedulingPolicy::HybridCostModel), &cfg).expect("hybrid q6");
    assert!(!cpu.windows.is_empty());
    assert_eq!(cpu.digest(), local.digest());
    assert_eq!(local.digest(), hybrid.digest());
    assert_eq!(cpu.watermark_digest(), local.watermark_digest());
    assert_eq!(local.watermark_digest(), hybrid.watermark_digest());
    assert_eq!(cpu.report.late_records, local.report.late_records);
}

#[test]
fn q3_digest_is_invariant_across_engines_and_policies() {
    let cfg = config();
    let cpu = nexmark::q3(&cpu_env(), &cfg).expect("cpu q3");
    let local = nexmark::q3(&gpu_env(SchedulingPolicy::LocalityAware), &cfg).expect("gpu q3");
    let hybrid = nexmark::q3(&gpu_env(SchedulingPolicy::HybridCostModel), &cfg).expect("hybrid q3");
    assert!(cpu.rows > 0, "the join-filter kept nothing");
    assert_eq!(cpu.digest, local.digest);
    assert_eq!(local.digest, hybrid.digest);
    assert_eq!(cpu.rows, hybrid.rows);
}

#[test]
fn device_kill_does_not_drift_the_q6_digest() {
    let cfg = config();
    let clean = nexmark::q6(&gpu_env(SchedulingPolicy::LocalityAware), &cfg).expect("clean q6");
    let faulted = q6_under_fault(&cfg, SimTime::from_millis(700));
    // Recovery (retry on the surviving device) keeps every window alive.
    assert!(
        faulted.report.lost.is_empty(),
        "loss despite a spare device"
    );
    assert_eq!(clean.digest(), faulted.digest());
    assert_eq!(clean.watermark_digest(), faulted.watermark_digest());
}

#[test]
fn solo_and_concurrent_tenant_digests_agree() {
    let mut cfg_a = config();
    cfg_a.seed = 11;
    let mut cfg_b = config();
    cfg_b.seed = 22;
    let solo_a = nexmark::q6(&gpu_env(SchedulingPolicy::LocalityAware), &cfg_a).expect("solo a");
    let solo_b = nexmark::q6(&gpu_env(SchedulingPolicy::LocalityAware), &cfg_b).expect("solo b");

    // Both tenants on ONE fabric, genuinely concurrent driver threads,
    // deterministically interleaved by the JobGate baton.
    let fabric = fabric_with(FabricConfig::default());
    let gate = JobGate::new();
    let (ta, tb) = (gate.register(), gate.register());
    let (dual_a, dual_b) = std::thread::scope(|s| {
        let ha = {
            let (gate, fabric, cfg) = (gate.clone(), fabric.clone(), cfg_a.clone());
            s.spawn(move || {
                gate.run(ta, || {
                    nexmark::q6(&StreamEnv::gpu(&fabric).named("tenant-a"), &cfg)
                        .expect("tenant a q6")
                })
            })
        };
        let hb = {
            let (gate, fabric, cfg) = (gate.clone(), fabric.clone(), cfg_b.clone());
            s.spawn(move || {
                gate.run(tb, || {
                    nexmark::q6(&StreamEnv::gpu(&fabric).named("tenant-b").weighted(2), &cfg)
                        .expect("tenant b q6")
                })
            })
        };
        (ha.join().expect("tenant a"), hb.join().expect("tenant b"))
    });
    assert_eq!(solo_a.digest(), dual_a.digest());
    assert_eq!(solo_b.digest(), dual_b.digest());
    assert_eq!(solo_a.watermark_digest(), dual_a.watermark_digest());
    assert_eq!(solo_b.watermark_digest(), dual_b.watermark_digest());
}

#[test]
fn crash_then_checkpoint_resume_matches_a_clean_run() {
    let cfg = config();
    let cluster = SharedCluster::new(ClusterConfig::standard(WORKERS));
    let fabric = fabric_with(FabricConfig {
        checkpoint: CheckpointConfig::every(SimTime::from_millis(250)),
        ..FabricConfig::default()
    });
    let env = StreamEnv::gpu(&fabric)
        .with_cluster(&cluster)
        .named("nexmark-q6");
    let crashed = nexmark::q6_with(&env, &cfg, Some(SimTime::from_millis(1_500)))
        .expect("crashed run completes its prefix");
    assert!(crashed.checkpoints > 0, "snapshots were written pre-crash");
    let resumed = nexmark::q6(&env, &cfg).expect("resumed run");
    assert!(resumed.windows_restored > 0, "snapshot windows were reused");

    let clean = nexmark::q6(&gpu_env(SchedulingPolicy::LocalityAware), &cfg).expect("clean run");
    assert_eq!(clean.digest(), resumed.digest());
    assert_eq!(clean.watermark_digest(), resumed.watermark_digest());
    assert_eq!(clean.windows.len(), resumed.windows.len());
}

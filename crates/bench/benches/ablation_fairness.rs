//! Ablation: weighted-fair queuing vs FIFO under multi-tenant contention
//! (ISSUE 5).
//!
//! One single-stream GPU, two tenants. The **heavy** tenant saturates the
//! queue with a deep backlog of large GWorks at t=0; the **light** tenant
//! trickles small GWorks in over the whole run. Under FIFO every light
//! work waits out the entire remaining heavy backlog; under weighted fair
//! queuing the light tenant's lane is serviced every deficit rotation, so
//! its completion latency collapses while the heavy tenant's makespan
//! barely moves (the GPU never idles — WFQ only reorders).
//!
//! A second experiment raises the light tenant's fair-share weight,
//! showing the knob shifts service toward it monotonically.

use gflink_bench::{header, jobj, row, write_results, Json};
use gflink_core::{
    ArbitrationPolicy, GWork, GpuManager, GpuWorkerConfig, JobId, SchedulerConfig,
    SchedulingPolicy, WorkBuf,
};
use gflink_gpu::{GpuModel, KernelArgs, KernelId, KernelProfile, KernelRegistry};
use gflink_memory::HBuffer;
use gflink_sim::SimTime;
use parking_lot::Mutex;
use std::sync::Arc;

const MIB: u64 = 1 << 20;
const HEAVY: JobId = JobId(1);
const LIGHT: JobId = JobId(2);
const HEAVY_WORKS: u32 = 64;
const LIGHT_WORKS: u32 = 32;

fn registry() -> Arc<Mutex<KernelRegistry>> {
    let mut reg = KernelRegistry::new();
    reg.register("burn", |args: &mut KernelArgs<'_, '_>| {
        KernelProfile::new(args.n_logical as f64 * 20.0, args.n_logical as f64 * 8.0)
    });
    Arc::new(Mutex::new(reg))
}

fn mk_work(job: u32, i: u32, logical: u64) -> GWork {
    GWork {
        name: format!("j{job}-w{i}").into(),
        execute_name: "burn".into(),
        kernel: KernelId::UNRESOLVED,
        ptx_path: "/burn.ptx".into(),
        block_size: 256,
        grid_size: 64,
        inputs: vec![WorkBuf::transient(Arc::new(HBuffer::zeroed(64)), logical)],
        out_actual_bytes: 64,
        out_logical_bytes: logical,
        out_records: 16,
        params: Arc::from([]),
        n_actual: 16,
        n_logical: logical / 4,
        coalescing: 1.0,
        tag: (job, i),
    }
}

struct Outcome {
    light_p50: SimTime,
    light_p95: SimTime,
    light_mean: SimTime,
    heavy_makespan: SimTime,
}

/// Run the contended scenario: heavy backlog at t=0, light works of
/// `light_logical` bytes arriving every 2 ms. Returns the light tenant's
/// completion-latency distribution and the heavy tenant's makespan.
fn contended(arbitration: ArbitrationPolicy, light_weight: u32, light_logical: u64) -> Outcome {
    let mut m = GpuManager::new(
        0,
        GpuWorkerConfig {
            models: vec![GpuModel::TeslaC2050],
            streams_per_gpu: 1,
            scheduling: SchedulingPolicy::LocalityAware,
            scheduler: SchedulerConfig {
                arbitration,
                ..SchedulerConfig::default()
            },
            ..GpuWorkerConfig::default()
        },
        registry(),
    );
    m.begin_job_weighted(HEAVY, 1);
    m.begin_job_weighted(LIGHT, light_weight);
    for i in 0..HEAVY_WORKS {
        m.submit_for(HEAVY, mk_work(1, i, 8 * MIB), SimTime::ZERO);
    }
    let mut arrivals = Vec::new();
    for i in 0..LIGHT_WORKS {
        let at = SimTime::from_millis(u64::from(i) * 2);
        arrivals.push(at);
        m.submit_for(LIGHT, mk_work(2, i, light_logical), at);
    }
    let heavy = m.drain_job(HEAVY);
    let light = m.drain_job(LIGHT);
    assert_eq!(heavy.len() as u32, HEAVY_WORKS);
    assert_eq!(light.len() as u32, LIGHT_WORKS);
    let mut latencies: Vec<SimTime> = light
        .iter()
        .map(|d| {
            let at = arrivals[d.tag.1 as usize];
            d.timing.completed.saturating_sub(at)
        })
        .collect();
    latencies.sort();
    let pct = |p: f64| latencies[((latencies.len() as f64 * p).ceil() as usize).saturating_sub(1)];
    let sum: u64 = latencies.iter().map(|t| t.as_nanos()).sum();
    Outcome {
        light_p50: pct(0.50),
        light_p95: pct(0.95),
        light_mean: SimTime::from_nanos(sum / latencies.len() as u64),
        heavy_makespan: heavy.iter().map(|d| d.timing.completed).max().unwrap(),
    }
}

fn main() {
    let mut results = Vec::new();
    header(
        "Ablation: WFQ vs FIFO under a saturating heavy tenant",
        "64x8MiB heavy backlog at t=0; 32x256KiB light works every 2ms; 1 GPU, 1 stream",
    );
    row(&[
        "arbitration".into(),
        "light p50 (ms)".into(),
        "light p95 (ms)".into(),
        "light mean (ms)".into(),
        "heavy makespan (ms)".into(),
    ]);
    let policies = [
        ("fifo", ArbitrationPolicy::Fifo),
        (
            "wfq",
            ArbitrationPolicy::WeightedFair {
                quantum_bytes: 256 << 10,
            },
        ),
    ];
    let mut p95 = std::collections::BTreeMap::new();
    for (label, arb) in policies {
        let out = contended(arb, 1, MIB / 4);
        p95.insert(label, out.light_p95);
        results.push(jobj! {
            "experiment": "wfq_vs_fifo", "arbitration": label, "light_weight": 1u32,
            "light_p50_ms": out.light_p50.as_millis_f64(),
            "light_p95_ms": out.light_p95.as_millis_f64(),
            "light_mean_ms": out.light_mean.as_millis_f64(),
            "heavy_makespan_ms": out.heavy_makespan.as_millis_f64(),
            "heavy_works": HEAVY_WORKS, "light_works": LIGHT_WORKS,
        });
        row(&[
            label.into(),
            format!("{:.2}", out.light_p50.as_millis_f64()),
            format!("{:.2}", out.light_p95.as_millis_f64()),
            format!("{:.2}", out.light_mean.as_millis_f64()),
            format!("{:.1}", out.heavy_makespan.as_millis_f64()),
        ]);
    }
    assert!(
        p95["wfq"] < p95["fifo"],
        "WFQ must strictly reduce the light tenant's p95 completion latency \
         (wfq {}, fifo {})",
        p95["wfq"],
        p95["fifo"]
    );
    println!(
        "(WFQ cuts the light tenant's p95 by {:.1}x; FIFO parks it behind the whole backlog)",
        p95["fifo"].as_nanos() as f64 / p95["wfq"].as_nanos().max(1) as f64
    );

    header(
        "Ablation: fair-share weight of the light tenant",
        "4MiB light works (16 quanta each) under WFQ; light tenant's weight swept 1..8",
    );
    row(&[
        "light weight".into(),
        "light p95 (ms)".into(),
        "heavy makespan (ms)".into(),
    ]);
    let mut last = SimTime::MAX;
    for weight in [1u32, 2, 4, 8] {
        let out = contended(
            ArbitrationPolicy::WeightedFair {
                quantum_bytes: 256 << 10,
            },
            weight,
            4 * MIB,
        );
        results.push(jobj! {
            "experiment": "weight_sweep", "arbitration": "wfq", "light_weight": weight,
            "light_p95_ms": out.light_p95.as_millis_f64(),
            "heavy_makespan_ms": out.heavy_makespan.as_millis_f64(),
        });
        row(&[
            format!("{weight}"),
            format!("{:.2}", out.light_p95.as_millis_f64()),
            format!("{:.1}", out.heavy_makespan.as_millis_f64()),
        ]);
        assert!(
            out.light_p95 <= last,
            "a heavier weight must not worsen the light tenant's p95"
        );
        last = out.light_p95;
    }
    write_results("ablation_fairness", &Json::Arr(results));
}

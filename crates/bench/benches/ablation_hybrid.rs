//! Ablation: hybrid CPU+GPU placement with the online cost model (ISSUE 9).
//!
//! Two operators bracket the arithmetic-intensity spectrum:
//!
//! * **pointadd** (low intensity: 2 flops per 16 logical bytes) is
//!   PCIe-bound on the GPU — every pass re-pays H2D+D2H for almost no
//!   compute. The cost model predicts the host finishes first and routes
//!   blocks there, skipping the bus entirely. Gate: hybrid must be at
//!   least **1.2x** faster than GPU-only locality-aware scheduling.
//! * **kmeans** (high intensity: heavy per-point compute over cached
//!   inputs) genuinely earns its transfers, so the model keeps the bulk
//!   on-device and only offloads spillover when every stream is backed
//!   up. Gate: hybrid may never be more than **2%** slower than GPU-only.
//!
//! Both gates sit on top of the transparency invariant: digests must stay
//! bit-identical across policies, placement only moves *when/where*, never
//! *what*.

use gflink_apps::{kmeans, pointadd, AppRun, Setup};
use gflink_bench::{header, jobj, row, write_results, Json};
use gflink_core::{FabricConfig, SchedulingPolicy};
use gflink_flink::ClusterConfig;

const WORKERS: usize = 2;

fn setup(policy: SchedulingPolicy) -> Setup {
    let mut fabric = FabricConfig::default();
    fabric.worker.scheduling = policy;
    Setup::with_configs(ClusterConfig::standard(WORKERS), fabric)
}

struct Contrast {
    base: AppRun,
    hybrid: AppRun,
    hybrid_gpu: u64,
    hybrid_cpu: u64,
    hybrid_splits: u64,
}

fn contrast(run: impl Fn(&Setup) -> AppRun) -> Contrast {
    let base = run(&setup(SchedulingPolicy::LocalityAware));
    let s = setup(SchedulingPolicy::HybridCostModel);
    let hybrid = run(&s);
    assert_eq!(
        hybrid.digest.to_bits(),
        base.digest.to_bits(),
        "hybrid placement drifted the digest"
    );
    let g = hybrid.report.gpu.as_ref().expect("gpu rollup");
    Contrast {
        hybrid_gpu: g.hybrid_gpu,
        hybrid_cpu: g.hybrid_cpu,
        hybrid_splits: g.hybrid_splits,
        base,
        hybrid,
    }
}

fn main() {
    header(
        "Ablation: hybrid CPU+GPU placement vs GPU-only",
        "2 workers x 2 C2050 + 8-slot host pool; locality-aware vs hybrid cost model",
    );
    row(&[
        "operator".into(),
        "gpu-only (s)".into(),
        "hybrid (s)".into(),
        "speedup".into(),
        "gpu/cpu/split".into(),
    ]);

    // Low intensity: transfer-bound pointadd, enough passes that the PCIe
    // tax (or its absence) dominates the fixed driver costs.
    let low = contrast(|s| {
        pointadd::run_gpu(
            s,
            &pointadd::Params {
                iterations: 15,
                ..pointadd::Params::standard(s)
            },
        )
    });
    let low_speedup = low.base.total_secs() / low.hybrid.total_secs();
    row(&[
        "pointadd (low)".into(),
        format!("{:.3}", low.base.total_secs()),
        format!("{:.3}", low.hybrid.total_secs()),
        format!("{low_speedup:.2}x"),
        format!(
            "{}/{}/{}",
            low.hybrid_gpu, low.hybrid_cpu, low.hybrid_splits
        ),
    ]);

    // High intensity: kmeans, where the GPU earns its transfers and the
    // model keeps the bulk on-device (host gets queue spillover at most).
    let high = contrast(|s| kmeans::run_gpu(s, &kmeans::Params::paper(150, s)));
    let high_speedup = high.base.total_secs() / high.hybrid.total_secs();
    row(&[
        "kmeans (high)".into(),
        format!("{:.3}", high.base.total_secs()),
        format!("{:.3}", high.hybrid.total_secs()),
        format!("{high_speedup:.2}x"),
        format!(
            "{}/{}/{}",
            high.hybrid_gpu, high.hybrid_cpu, high.hybrid_splits
        ),
    ]);

    // --- gates -----------------------------------------------------------
    assert!(
        low.hybrid_cpu > 0,
        "hybrid routed nothing to the host on the transfer-bound operator"
    );
    assert!(
        low_speedup >= 1.2,
        "hybrid placement must win >=1.2x on the low-intensity operator, got {low_speedup:.3}x"
    );
    assert!(
        high.hybrid.total_secs() <= high.base.total_secs() * 1.02,
        "hybrid placement lost more than 2% on the high-intensity operator: \
         {:.3}s vs {:.3}s",
        high.hybrid.total_secs(),
        high.base.total_secs()
    );
    println!(
        "(gates: low-intensity speedup {low_speedup:.2}x >= 1.2x; high-intensity \
         {high_speedup:.2}x within 2%)"
    );

    let results = Json::Arr(vec![
        jobj! {
            "experiment": "low_intensity",
            "operator": "pointadd",
            "gpu_only_secs": low.base.total_secs(),
            "hybrid_secs": low.hybrid.total_secs(),
            "speedup": low_speedup,
            "hybrid_gpu": low.hybrid_gpu,
            "hybrid_cpu": low.hybrid_cpu,
            "hybrid_splits": low.hybrid_splits,
        },
        jobj! {
            "experiment": "high_intensity",
            "operator": "kmeans",
            "gpu_only_secs": high.base.total_secs(),
            "hybrid_secs": high.hybrid.total_secs(),
            "speedup": high_speedup,
            "hybrid_gpu": high.hybrid_gpu,
            "hybrid_cpu": high.hybrid_cpu,
            "hybrid_splits": high.hybrid_splits,
        },
    ]);
    write_results("ablation_hybrid", &results);

    // BENCH trajectory anchor at the workspace root, for future re-anchors
    // to diff and gate hybrid-placement regressions against.
    let bench = jobj! {
        "bench": "hybrid",
        "scenario": "pointadd_low_vs_kmeans_high_2workers",
        "gates": jobj! { "low_min_speedup": 1.2, "high_max_loss": 0.02 },
        "rows": results,
    };
    let root = concat!(env!("CARGO_MANIFEST_DIR"), "/../..");
    let mut text = bench.render();
    text.push('\n');
    let _ = std::fs::write(format!("{root}/BENCH_hybrid.json"), text);
}

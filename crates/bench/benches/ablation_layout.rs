//! Ablation: data layouts (AoS vs SoA vs AoP, §2.1/§3.2).
//!
//! Two views:
//!
//! 1. the coalescing model itself, over schemas with different padding and
//!    field-access patterns;
//! 2. a real end-to-end GPU map under each layout: the same kernel over the
//!    same records, with the layout's coalescing factor flowing through the
//!    roofline model into kernel time.

use gflink_bench::{header, jobj, row, write_results, Json};
use gflink_core::{FabricConfig, GDataSet, GRecord, GflinkEnv, GpuFabric, GpuMapSpec};
use gflink_flink::{ClusterConfig, SharedCluster};
use gflink_gpu::{GpuModel, KernelArgs, KernelProfile, VirtualGpu};
use gflink_memory::{
    AlignClass, DataLayout, FieldDef, GStructDef, PrimType, RecordReader, RecordView,
};
use gflink_sim::SimTime;

/// A padded mixed-width record (the paper's §3.5.1 Point, extended).
fn mixed_def() -> GStructDef {
    GStructDef::new(
        "Mixed",
        AlignClass::Align8,
        vec![
            FieldDef::scalar("x", PrimType::U32),
            FieldDef::scalar("y", PrimType::F64),
            FieldDef::scalar("z", PrimType::F32),
        ],
    )
}

fn main() {
    let mut results = Vec::new();
    header(
        "Ablation: layout coalescing model",
        "useful fraction of fetched bytes per access pattern",
    );
    let def = mixed_def();
    row(&[
        "layout".into(),
        "read field y only".into(),
        "read all fields".into(),
    ]);
    for layout in DataLayout::ALL {
        results.push(jobj! {
            "experiment": "coalescing", "layout": layout.label(),
            "single_field": layout.coalescing_efficiency(&def, 1),
            "all_fields": layout.coalescing_all_fields(&def),
        });
        row(&[
            layout.label().into(),
            format!("{:.2}", layout.coalescing_efficiency(&def, 1)),
            format!("{:.2}", layout.coalescing_all_fields(&def)),
        ]);
    }

    header(
        "Ablation: modelled kernel time (memory-bound, 1GB logical)",
        "C2050 roofline under each layout's coalescing",
    );
    let gpu = VirtualGpu::new(0, GpuModel::TeslaC2050);
    row(&["layout".into(), "kernel time (ms)".into()]);
    for layout in DataLayout::ALL {
        let coal = layout.coalescing_efficiency(&def, 1);
        let p = KernelProfile::new(1e8, 1e9).with_coalescing(coal);
        results.push(jobj! {
            "experiment": "roofline", "layout": layout.label(),
            "kernel_secs": gpu.kernel_time(&p),
        });
        row(&[
            layout.label().into(),
            format!("{:.2}", gpu.kernel_time(&p).as_millis_f64()),
        ]);
    }

    header(
        "Ablation: end-to-end GPU map per layout",
        "same records + kernel, layout varied through the GDST",
    );
    #[derive(Clone)]
    struct Rec {
        x: u32,
        y: f64,
        z: f32,
    }
    impl GRecord for Rec {
        fn def() -> GStructDef {
            mixed_def()
        }
        fn store(&self, view: &mut RecordView<'_>, idx: usize) {
            view.set_u64(idx, 0, 0, self.x as u64);
            view.set_f64(idx, 1, 0, self.y);
            view.set_f64(idx, 2, 0, self.z as f64);
        }
        fn load(reader: &RecordReader<'_>, idx: usize) -> Self {
            Rec {
                x: reader.get_u64(idx, 0, 0) as u32,
                y: reader.get_f64(idx, 1, 0),
                z: reader.get_f64(idx, 2, 0) as f32,
            }
        }
    }
    row(&["layout".into(), "map wall (s)".into()]);
    for layout in DataLayout::ALL {
        let cluster = SharedCluster::new(ClusterConfig::single_node());
        let fabric = GpuFabric::new(1, FabricConfig::default());
        // The kernel reads only the f64 field: the AoS stride wastes
        // bandwidth, SoA/AoP coalesce.
        fabric.register_kernel("scale_y", move |args: &mut KernelArgs<'_, '_>| {
            let def = mixed_def();
            let n = args.n_actual;
            let reader = RecordReader::new(args.inputs[0], &def, layout, n);
            let out_def = mixed_def();
            let mut view = RecordView::new(args.outputs[0], &out_def, DataLayout::Aos, n);
            for i in 0..n {
                view.set_u64(i, 0, 0, reader.get_u64(i, 0, 0));
                view.set_f64(i, 1, 0, reader.get_f64(i, 1, 0) * 2.0);
                view.set_f64(i, 2, 0, 0.0);
            }
            KernelProfile::new(args.n_logical as f64, args.n_logical as f64 * 16.0)
                .with_coalescing(layout.coalescing_efficiency(&def, 1))
        });
        let env = GflinkEnv::submit(&cluster, &fabric, "layout", SimTime::ZERO);
        let recs: Vec<Rec> = (0..10_000)
            .map(|i| Rec {
                x: i,
                y: i as f64,
                z: -(i as f32),
            })
            .collect();
        let ds = env.flink.parallelize("recs", recs, 4, 40_000.0);
        let gdst: GDataSet<Rec> = env.to_gdst(ds, layout);
        let before = env.flink.frontier();
        let out = gdst.gpu_map_partition::<Rec>("scale_y", &GpuMapSpec::new("scale_y"));
        let wall = env.flink.frontier() - before;
        // Correctness under every layout (collect order is partition-major;
        // locate the record by its key field).
        let got = out.inner().collect("get", 16.0);
        let rec5 = got.iter().find(|r| r.x == 5).expect("record 5 missing");
        assert!(
            (rec5.y - 10.0).abs() < 1e-9,
            "layout {} broke data",
            layout.label()
        );
        results.push(jobj! {
            "experiment": "end_to_end", "layout": layout.label(),
            "map_wall_secs": wall,
        });
        row(&[layout.label().into(), format!("{:.4}", wall.as_secs_f64())]);
    }
    println!("(expect AoS slowest for the single-field kernel; SoA == AoP)");
    write_results("ablation_layout", &Json::Arr(results));
}

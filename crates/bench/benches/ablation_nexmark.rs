//! Ablation: Nexmark q6 windowed aggregation, CPU engine vs GPU fabric
//! (ISSUE 10).
//!
//! The q6-shaped load — keyed tumbling windows of average bid price per
//! seller over a bounded-out-of-orderness event stream — runs the same
//! DataStream pipeline on three engines: the baseline CPU slots, the GPU
//! fabric under locality-aware scheduling, and the GPU fabric under the
//! hybrid cost model. Placement transparency requires all three to agree
//! bit-for-bit on the window digest and the watermark timeline; the
//! performance gates require the GPU path to *earn* the port:
//!
//! * GPU mean window latency must beat the CPU engine by **>= 1.2x**;
//! * the GPU path must be sustained (late window latency within 1.5x of
//!   mean) at the offered rate, with p99 window latency **<= 100 ms**.

use gflink_apps::nexmark::{self, NexmarkConfig};
use gflink_bench::{header, jobj, row, write_results, Json};
use gflink_core::{FabricConfig, GpuFabric, SchedulingPolicy, StreamEnv, WindowedRun};
use gflink_flink::ClusterConfig;
use gflink_sim::SimTime;

const WORKERS: usize = 2;
const MIN_SPEEDUP: f64 = 1.2;
const SUSTAIN_FACTOR: f64 = 1.5;
const MAX_P99: SimTime = SimTime::from_millis(100);

fn config() -> NexmarkConfig {
    let mut cfg = NexmarkConfig::standard(42);
    cfg.events_per_sec = 50e6;
    cfg.duration = SimTime::from_secs(3);
    cfg
}

fn gpu_env(policy: SchedulingPolicy) -> StreamEnv {
    let mut fcfg = FabricConfig::default();
    fcfg.worker.scheduling = policy;
    let fabric = GpuFabric::new(WORKERS, fcfg);
    nexmark::register_kernels(&fabric);
    StreamEnv::gpu(&fabric)
}

fn stats(name: &str, run: &WindowedRun) -> Json {
    jobj! {
        "engine": name,
        "windows": run.windows.len() as u64,
        "digest": format!("{:016x}", run.digest()),
        "mean_latency_secs": run.report.latency.mean(),
        "p50_ms": run.report.latency_hist.p50().as_millis_f64(),
        "p95_ms": run.report.latency_hist.p95().as_millis_f64(),
        "p99_ms": run.report.latency_hist.p99().as_millis_f64(),
        "sustained": run.report.sustained(SUSTAIN_FACTOR),
        "late_records": run.report.late_records,
        "lost": run.report.lost.len() as u64,
    }
}

fn main() {
    let cfg = config();
    header(
        "Ablation: Nexmark q6 windowed aggregation, CPU engine vs GPU fabric",
        "50M events/s, 250ms tumbling windows, 25ms disorder under a 40ms watermark bound",
    );
    row(&[
        "engine".into(),
        "windows".into(),
        "mean lat".into(),
        "p99 lat".into(),
        "sustained".into(),
    ]);

    let cpu =
        nexmark::q6(&StreamEnv::cpu(&ClusterConfig::standard(WORKERS)), &cfg).expect("cpu q6 runs");
    let gpu = nexmark::q6(&gpu_env(SchedulingPolicy::LocalityAware), &cfg).expect("gpu q6 runs");
    let hybrid =
        nexmark::q6(&gpu_env(SchedulingPolicy::HybridCostModel), &cfg).expect("hybrid q6 runs");

    for (name, run) in [("cpu", &cpu), ("gpu", &gpu), ("gpu+hybrid", &hybrid)] {
        row(&[
            name.into(),
            format!("{}", run.windows.len()),
            format!("{:.1}ms", run.report.latency.mean() * 1e3),
            format!("{}", run.report.latency_hist.p99()),
            format!("{}", run.report.sustained(SUSTAIN_FACTOR)),
        ]);
    }

    // --- gates -----------------------------------------------------------
    assert_eq!(
        cpu.digest(),
        gpu.digest(),
        "engine change drifted the q6 digest"
    );
    assert_eq!(
        gpu.digest(),
        hybrid.digest(),
        "placement policy drifted the q6 digest"
    );
    assert_eq!(cpu.watermark_digest(), gpu.watermark_digest());
    let speedup = cpu.report.latency.mean() / gpu.report.latency.mean().max(1e-12);
    assert!(
        speedup >= MIN_SPEEDUP,
        "GPU windowed aggregation must win >={MIN_SPEEDUP}x on mean window latency, \
         got {speedup:.3}x"
    );
    assert!(
        gpu.report.sustained(SUSTAIN_FACTOR),
        "GPU path is not sustained at the offered rate"
    );
    assert!(
        gpu.report.latency_hist.p99() <= MAX_P99,
        "GPU p99 window latency {} exceeds {MAX_P99}",
        gpu.report.latency_hist.p99()
    );
    println!(
        "(gates: GPU {speedup:.2}x >= {MIN_SPEEDUP}x over CPU; sustained; p99 {} <= {MAX_P99})",
        gpu.report.latency_hist.p99()
    );

    let results = Json::Arr(vec![
        stats("cpu", &cpu),
        stats("gpu_locality", &gpu),
        stats("gpu_hybrid", &hybrid),
    ]);
    write_results("ablation_nexmark", &results);

    // BENCH trajectory anchor at the workspace root, for future re-anchors
    // to diff and gate streaming regressions against.
    let bench = jobj! {
        "bench": "nexmark",
        "scenario": "q6_50M_events_2workers",
        "gates": jobj! {
            "min_speedup": MIN_SPEEDUP,
            "sustain_factor": SUSTAIN_FACTOR,
            "max_p99_ms": MAX_P99.as_millis_f64(),
        },
        "rows": results,
    };
    let root = concat!(env!("CARGO_MANIFEST_DIR"), "/../..");
    let mut text = bench.render();
    text.push('\n');
    let _ = std::fs::write(format!("{root}/BENCH_nexmark.json"), text);
}

//! Ablation: the three-stage pipelining execution model (§5).
//!
//! Sweeps the number of CUDA streams per GPU and the device's copy-engine
//! count over a batch of transfer-heavy blocks:
//!
//! * 1 stream = fully synchronous H2D → K → D2H per block (no overlap);
//! * more streams overlap one block's kernel with the next block's H2D;
//! * two copy engines (K20) additionally overlap H2D with D2H (full-duplex
//!   PCIe, §4.1.2).
//!
//! Also sweeps the GFlink block size (§5.1): tiny blocks drown in per-call
//! overhead, huge blocks lose pipeline overlap.

use gflink_bench::{header, jobj, row, write_results, Json};
use gflink_core::{FabricConfig, GWork, GpuManager, GpuWorkerConfig, JobId, WorkBuf};
use gflink_flink::ClusterConfig;
use gflink_gpu::{GpuModel, KernelArgs, KernelId, KernelProfile, KernelRegistry};
use gflink_memory::HBuffer;
use gflink_sim::SimTime;
use parking_lot::Mutex;
use std::sync::Arc;

fn registry() -> Arc<Mutex<KernelRegistry>> {
    let mut reg = KernelRegistry::new();
    // Balanced kernel: compute time comparable to its transfer time, the
    // regime where pipelining matters most (a C2050 moves 8 MB over PCIe in
    // ~2.7 ms; 2000 flops/element makes the kernel take about as long).
    reg.register("stage", |args: &mut KernelArgs<'_, '_>| {
        KernelProfile::new(args.n_logical as f64 * 2000.0, args.n_logical as f64 * 16.0)
    });
    Arc::new(Mutex::new(reg))
}

fn block_work(i: u32, logical_bytes: u64) -> GWork {
    GWork {
        name: format!("blk-{i}").into(),
        execute_name: "stage".into(),
        kernel: KernelId::UNRESOLVED,
        ptx_path: "/stage.ptx".into(),
        block_size: 256,
        grid_size: 128,
        inputs: vec![WorkBuf {
            data: Arc::new(HBuffer::zeroed(64)),
            logical_bytes,
            cache_key: None,
        }],
        out_actual_bytes: 64,
        out_logical_bytes: logical_bytes,
        out_records: 16,
        params: Arc::from([]),
        n_actual: 16,
        n_logical: logical_bytes / 16,
        coalescing: 1.0,
        tag: (0, i),
    }
}

fn makespan(model: GpuModel, streams: usize, blocks: u32, block_bytes: u64) -> SimTime {
    let mut mgr = GpuManager::new(
        0,
        GpuWorkerConfig {
            models: vec![model],
            streams_per_gpu: streams,
            ..GpuWorkerConfig::default()
        },
        registry(),
    );
    let job = JobId(1);
    mgr.begin_job(job);
    for i in 0..blocks {
        mgr.submit_for(job, block_work(i, block_bytes), SimTime::ZERO);
    }
    mgr.drain_job(job)
        .iter()
        .map(|d| d.timing.completed)
        .max()
        .unwrap_or(SimTime::ZERO)
}

fn main() {
    let mut results = Vec::new();
    header(
        "Ablation: three-stage pipelining",
        "64 blocks x 8MB, makespan by stream count and copy engines",
    );
    row(&[
        "device".into(),
        "1 stream (s)".into(),
        "2 streams (s)".into(),
        "4 streams (s)".into(),
        "8 streams (s)".into(),
        "overlap gain".into(),
    ]);
    for model in [GpuModel::TeslaC2050, GpuModel::TeslaK20] {
        let times: Vec<SimTime> = [1usize, 2, 4, 8]
            .iter()
            .map(|&s| makespan(model, s, 64, 8 << 20))
            .collect();
        results.push(jobj! {
            "experiment": "streams", "device": model.name(),
            "streams_1_secs": times[0], "streams_2_secs": times[1],
            "streams_4_secs": times[2], "streams_8_secs": times[3],
        });
        row(&[
            model.name().into(),
            format!("{:.3}", times[0].as_secs_f64()),
            format!("{:.3}", times[1].as_secs_f64()),
            format!("{:.3}", times[2].as_secs_f64()),
            format!("{:.3}", times[3].as_secs_f64()),
            format!("{:.2}x", times[0].as_secs_f64() / times[3].as_secs_f64()),
        ]);
    }
    println!(
        "(expect: streams > 1 overlap H2D with kernels; K20's 2nd copy engine \
         also overlaps D2H, widening the gain)"
    );

    header(
        "Ablation: GFlink block size (§5.1)",
        "512MB of work on one C2050, 4 streams",
    );
    row(&["block size".into(), "blocks".into(), "makespan (s)".into()]);
    let total: u64 = 512 << 20;
    for shift in [15u32, 18, 20, 22, 24, 26, 28] {
        let block = 1u64 << shift;
        let blocks = (total / block) as u32;
        let t = makespan(GpuModel::TeslaC2050, 4, blocks, block);
        results.push(jobj! {
            "experiment": "block_size", "block_bytes": block,
            "blocks": blocks, "makespan_secs": t,
        });
        row(&[
            format!("{} KiB", block >> 10),
            format!("{blocks}"),
            format!("{:.3}", t.as_secs_f64()),
        ]);
    }
    println!(
        "(expect a sweet spot: 32 KiB pages pay per-call overhead {}x, giant \
         blocks serialize the pipeline)",
        (total >> 15)
    );
    // Reference: the defaults used by the fabric.
    let d = FabricConfig::default();
    println!(
        "fabric default block = {} KiB on a {}-worker standard cluster config",
        d.block_bytes >> 10,
        ClusterConfig::standard(10).num_workers
    );
    write_results("ablation_pipeline", &Json::Arr(results));
}

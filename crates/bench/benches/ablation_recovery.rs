//! Ablation: time-to-recover vs checkpoint interval (ISSUE 6).
//!
//! A pointadd-style operator is crashed mid-flight (every GPU lost, CPU
//! fallback off) and relaunched against the same durable HDFS under the
//! same job name. The resumed attempt restores the last snapshot and
//! replays only the delta, so its replay cost is a function of the work
//! completed *since the last snapshot* — i.e. of the checkpoint interval —
//! not of the job size. A finer cadence restores more and replays less, at
//! the price of more snapshot bytes written: the classic checkpointing
//! trade-off, swept here across intervals.
//!
//! Besides `results/ablation_recovery.json`, this harness emits the first
//! `BENCH_recovery.json` trajectory file at the workspace root so future
//! re-anchors can gate time-to-recover regressions (ROADMAP item 5).

use gflink_bench::{header, jobj, row, write_results, Json};
use gflink_core::{
    CheckpointConfig, CpuFallback, FabricConfig, GRecord, GflinkEnv, GpuFabric, GpuMapSpec,
};
use gflink_flink::{ClusterConfig, JobReport, SharedCluster};
use gflink_gpu::{KernelArgs, KernelProfile};
use gflink_memory::{
    AlignClass, DataLayout, FieldDef, GStructDef, PrimType, RecordReader, RecordView,
};
use gflink_sim::{FaultKind, FaultPlan, SimTime};

const N: usize = 4_000;
/// Late-phase crash instant (the GPU phase spans ~1.260s..1.271s; upstream
/// driver work costs ~1.2s of simulated time): late enough that fine and
/// coarse cadences bracket genuinely different completion frontiers.
const CRASH_AT_US: u64 = 1_270_000;

#[derive(Clone, Debug, PartialEq)]
struct Point {
    x: f32,
    y: f32,
}

impl GRecord for Point {
    fn def() -> GStructDef {
        GStructDef::new(
            "Point",
            AlignClass::Align8,
            vec![
                FieldDef::scalar("x", PrimType::F32),
                FieldDef::scalar("y", PrimType::F32),
            ],
        )
    }
    fn store(&self, view: &mut RecordView<'_>, idx: usize) {
        view.set_f64(idx, 0, 0, self.x as f64);
        view.set_f64(idx, 1, 0, self.y as f64);
    }
    fn load(reader: &RecordReader<'_>, idx: usize) -> Self {
        Point {
            x: reader.get_f64(idx, 0, 0) as f32,
            y: reader.get_f64(idx, 1, 0) as f32,
        }
    }
}

fn make_fabric(interval: SimTime) -> GpuFabric {
    let mut cfg = FabricConfig {
        block_bytes: 256 * 1024,
        checkpoint: CheckpointConfig::every(interval),
        ..FabricConfig::default()
    };
    cfg.worker.cpu_fallback = CpuFallback {
        enabled: false,
        ..CpuFallback::default()
    };
    let fabric = GpuFabric::new(1, cfg);
    fabric.register_kernel("cudaAddPoint", |args: &mut KernelArgs<'_, '_>| {
        let def = Point::def();
        let n = args.n_actual;
        let (dx, dy) = (args.params[0], args.params[1]);
        let input = RecordReader::new(args.inputs[0], &def, DataLayout::Aos, n);
        let mut out = RecordView::new(args.outputs[0], &def, DataLayout::Aos, n);
        for i in 0..n {
            out.set_f64(i, 0, 0, input.get_f64(i, 0, 0) + dx);
            out.set_f64(i, 1, 0, input.get_f64(i, 1, 0) + dy);
        }
        KernelProfile::new(
            args.n_logical as f64 * 2.0,
            args.n_logical as f64 * 2.0 * def.size() as f64,
        )
    });
    fabric
}

fn attempt(cluster: &SharedCluster, fabric: &GpuFabric, faults: FaultPlan) -> (f64, JobReport) {
    fabric.with_managers(|ms| ms[0].set_fault_plan(faults));
    let env = GflinkEnv::submit(cluster, fabric, "recovery", SimTime::ZERO);
    let pts: Vec<Point> = (0..N)
        .map(|i| Point {
            x: i as f32,
            y: -(i as f32),
        })
        .collect();
    let ds = env.flink.parallelize("pts", pts, 4, 1000.0);
    let gdst = env.to_gdst(ds, DataLayout::Aos);
    let spec = GpuMapSpec::new("cudaAddPoint")
        .with_params(vec![1.0, 2.0])
        .build(fabric)
        .expect("valid spec");
    let out = gdst.gpu_map_partition::<Point>("addPoint", &spec);
    let got = out.inner().collect("get", 8.0);
    let digest: f64 = got.iter().map(|p| p.x as f64 - p.y as f64).sum();
    (digest, env.finish())
}

struct Outcome {
    snapshots: u64,
    snapshot_bytes: u64,
    restored: u64,
    replayed: u64,
    replay_delta: SimTime,
    resumed_total: SimTime,
}

fn crash_then_resume(interval: SimTime) -> (f64, Outcome) {
    let cluster = SharedCluster::new(ClusterConfig::standard(1));
    let f1 = make_fabric(interval);
    let crash = FaultPlan::new()
        .with(
            SimTime::from_micros(CRASH_AT_US),
            FaultKind::GpuLost { gpu: 0 },
        )
        .with(
            SimTime::from_micros(CRASH_AT_US),
            FaultKind::GpuLost { gpu: 1 },
        );
    let (_, crash_report) = attempt(&cluster, &f1, crash);
    let snapshots = crash_report
        .gpu
        .as_ref()
        .map(|g| (g.checkpoints, g.checkpoint_bytes))
        .unwrap_or((0, 0));
    let f2 = make_fabric(interval);
    let (digest, report) = attempt(&cluster, &f2, FaultPlan::new());
    let g = report.gpu.as_ref().expect("resumed attempt has a rollup");
    (
        digest,
        Outcome {
            snapshots: snapshots.0,
            snapshot_bytes: snapshots.1,
            restored: g.works_restored,
            replayed: g.works,
            replay_delta: SimTime::from_secs_f64(g.recovery_delta.sum()),
            resumed_total: report.total,
        },
    )
}

fn main() {
    header(
        "Ablation: time-to-recover vs checkpoint interval",
        "1 worker x 2 GPUs, 124 blocks; all GPUs killed at 1.270s (no CPU \
         fallback), then the job relaunches against the same HDFS",
    );
    row(&[
        "interval (ms)".into(),
        "snapshots".into(),
        "snapshot KiB".into(),
        "restored".into(),
        "replayed".into(),
        "replay delta (ms)".into(),
        "resumed total (s)".into(),
    ]);

    let clean_cluster = SharedCluster::new(ClusterConfig::standard(1));
    let clean_fabric = make_fabric(SimTime::from_millis(1));
    let (clean_digest, clean_report) = attempt(&clean_cluster, &clean_fabric, FaultPlan::new());
    let total_works = clean_report.gpu.as_ref().map(|g| g.works).unwrap_or(0);

    let mut results = Vec::new();
    let mut finest_replayed = None;
    let mut last_restored = u64::MAX;
    let mut last_replayed = 0u64;
    for interval_us in [500u64, 1_000, 2_000, 4_000, 8_000] {
        let interval = SimTime::from_micros(interval_us);
        let (digest, out) = crash_then_resume(interval);
        assert_eq!(
            digest.to_bits(),
            clean_digest.to_bits(),
            "resume at interval {interval} must be bit-identical to the clean run"
        );
        assert_eq!(
            out.restored + out.replayed,
            total_works,
            "double entry: restored + replayed must cover the whole operator"
        );
        assert!(
            out.restored <= last_restored,
            "a coarser interval must never restore more work"
        );
        assert!(
            out.replayed >= last_replayed,
            "a coarser interval must never replay less work"
        );
        last_restored = out.restored;
        last_replayed = out.replayed;
        finest_replayed.get_or_insert(out.replayed);
        results.push(jobj! {
            "experiment": "interval_sweep",
            "interval_ms": interval.as_millis_f64(),
            "snapshots": out.snapshots,
            "snapshot_bytes": out.snapshot_bytes,
            "works_restored": out.restored,
            "works_replayed": out.replayed,
            "works_total": total_works,
            "replay_delta_ms": out.replay_delta.as_millis_f64(),
            "resumed_total_s": out.resumed_total.as_secs_f64(),
            "clean_total_s": clean_report.total.as_secs_f64(),
        });
        row(&[
            format!("{:.1}", interval.as_millis_f64()),
            format!("{}", out.snapshots),
            format!("{:.1}", out.snapshot_bytes as f64 / 1024.0),
            format!("{}", out.restored),
            format!("{}", out.replayed),
            format!("{:.3}", out.replay_delta.as_millis_f64()),
            format!("{:.3}", out.resumed_total.as_secs_f64()),
        ]);
    }
    println!(
        "(finest cadence replays {} works; coarsest replays {} of {} — replay \
         cost tracks the interval, not the job size)",
        finest_replayed.unwrap_or(0),
        last_replayed,
        total_works
    );

    let json = Json::Arr(results);
    write_results("ablation_recovery", &json);

    // First BENCH trajectory point (ROADMAP item 5): the same sweep, at the
    // workspace root, for future re-anchors to diff and gate against.
    let bench = jobj! {
        "bench": "recovery",
        "scenario": "kill_all_at_1270ms_resume_same_hdfs",
        "works_total": total_works,
        "rows": json,
    };
    let root = concat!(env!("CARGO_MANIFEST_DIR"), "/../..");
    let mut text = bench.render();
    text.push('\n');
    let _ = std::fs::write(format!("{root}/BENCH_recovery.json"), text);
}

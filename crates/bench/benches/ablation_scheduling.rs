//! Ablation: the adaptive locality-aware scheduling scheme (§5.3).
//!
//! Two experiments:
//!
//! 1. **Locality** — iterative cached work (SpMV) under each scheduling
//!    policy. Locality-aware scheduling routes repeat blocks to the GPU
//!    that caches them; round-robin/random scatter them, turning cache
//!    hits into misses and re-paying PCIe transfers.
//! 2. **Load balance** — a heterogeneous worker (C2050 + P100) fed a batch
//!    of uncached GWork. Work stealing (Alg. 5.2) lets the fast GPU drain
//!    the queue; disabling it strands work behind the slow one.

use gflink_apps::{spmv, Setup};
use gflink_bench::{header, jobj, row, write_results, Json};
use gflink_core::{
    CacheKey, FabricConfig, GWork, GpuManager, GpuWorkerConfig, JobId, SchedulingPolicy, WorkBuf,
};
use gflink_flink::ClusterConfig;
use gflink_gpu::{GpuModel, KernelArgs, KernelId, KernelProfile, KernelRegistry};
use gflink_memory::HBuffer;
use gflink_sim::SimTime;
use parking_lot::Mutex;
use std::sync::Arc;

fn policies() -> [SchedulingPolicy; 4] {
    [
        SchedulingPolicy::LocalityAware,
        SchedulingPolicy::LocalityNoSteal,
        SchedulingPolicy::RoundRobin,
        SchedulingPolicy::Random { seed: 7 },
    ]
}

fn main() {
    let mut results = Vec::new();
    header(
        "Ablation: scheduling x cache locality",
        "SpMV (1GB, single node, 10 iterations) per policy",
    );
    row(&[
        "policy".into(),
        "total (s)".into(),
        "cache hits".into(),
        "cache misses".into(),
    ]);
    for policy in policies() {
        let mut fabric = FabricConfig::default();
        fabric.worker.scheduling = policy;
        let setup = Setup::with_configs(ClusterConfig::single_node(), fabric);
        let p = spmv::Params::paper(1, &setup);
        let run = spmv::run_gpu(&setup, &p);
        let (hits, misses) = setup.fabric.with_managers(|ms| {
            let mut h = 0;
            let mut m = 0;
            for mgr in ms.iter() {
                for g in 0..mgr.gpu_count() {
                    let (hh, mm, _) = mgr.cache_stats(g);
                    h += hh;
                    m += mm;
                }
            }
            (h, m)
        });
        results.push(jobj! {
            "experiment": "locality", "policy": policy.label(),
            "total_secs": run.total_secs(), "cache_hits": hits, "cache_misses": misses,
        });
        row(&[
            policy.label().into(),
            format!("{:.2}", run.total_secs()),
            format!("{hits}"),
            format!("{misses}"),
        ]);
    }

    header(
        "Ablation: work stealing on heterogeneous GPUs",
        "64 uncached GWorks on [C2050 + P100] (§5.3 load balance)",
    );
    row(&[
        "policy".into(),
        "makespan (ms)".into(),
        "per-GPU executed".into(),
        "steals".into(),
    ]);
    let registry = {
        let mut reg = KernelRegistry::new();
        reg.register("burn", |args: &mut KernelArgs<'_, '_>| {
            KernelProfile::new(args.n_logical as f64 * 100.0, args.n_logical as f64 * 8.0)
        });
        Arc::new(Mutex::new(reg))
    };
    for policy in policies() {
        let mut mgr = GpuManager::new(
            0,
            GpuWorkerConfig {
                models: vec![GpuModel::TeslaC2050, GpuModel::TeslaP100],
                scheduling: policy,
                ..GpuWorkerConfig::default()
            },
            Arc::clone(&registry),
        );
        let job = JobId(1);
        mgr.begin_job(job);
        for i in 0..64u32 {
            mgr.submit_for(job, burn_work(i), SimTime::ZERO);
        }
        let done = mgr.drain_job(job);
        let makespan = done
            .iter()
            .map(|d| d.timing.completed)
            .max()
            .unwrap_or(SimTime::ZERO);
        results.push(jobj! {
            "experiment": "stealing", "policy": policy.label(),
            "makespan_secs": makespan, "steals": mgr.steals(),
        });
        row(&[
            policy.label().into(),
            format!("{:.1}", makespan.as_millis_f64()),
            format!("{:?}", mgr.executed_per_gpu()),
            format!("{}", mgr.steals()),
        ]);
    }
    affinity_experiment(&mut results);
    write_results("ablation_scheduling", &Json::Arr(results));
}

/// Third experiment: cache affinity under submission-order jitter. Round 1
/// warms 16 cached blocks; round 2 submits one uncached work first, which
/// shifts round-robin's parity so every cached block lands on the wrong
/// GPU — locality-aware scheduling is immune.
fn affinity_experiment(results: &mut Vec<Json>) {
    header(
        "Ablation: cache affinity under submission jitter",
        "16 cached blocks re-submitted after one interloper work",
    );
    row(&[
        "policy".into(),
        "round-2 makespan (ms)".into(),
        "hits".into(),
        "misses".into(),
    ]);
    for policy in policies() {
        let mut mgr = GpuManager::new(
            0,
            GpuWorkerConfig {
                models: vec![GpuModel::TeslaC2050, GpuModel::TeslaC2050],
                streams_per_gpu: 1,
                scheduling: policy,
                ..GpuWorkerConfig::default()
            },
            {
                let mut reg = KernelRegistry::new();
                reg.register("burn", |args: &mut KernelArgs<'_, '_>| {
                    KernelProfile::new(args.n_logical as f64 * 100.0, args.n_logical as f64 * 8.0)
                });
                Arc::new(Mutex::new(reg))
            },
        );
        let job = JobId(1);
        mgr.begin_job(job);
        // Round 1: warm the caches.
        for i in 0..16u32 {
            mgr.submit_for(job, cached_work(i), SimTime::ZERO);
        }
        let round1_end = mgr
            .drain_job(job)
            .iter()
            .map(|d| d.timing.completed)
            .max()
            .unwrap();
        // The interloper shifts round-robin's phase.
        mgr.submit_for(job, burn_work(999), round1_end);
        // Round 2: the same cached blocks again.
        for i in 0..16u32 {
            mgr.submit_for(job, cached_work(i), round1_end);
        }
        let done = mgr.drain_job(job);
        let end = done.iter().map(|d| d.timing.completed).max().unwrap();
        let hits: u32 = done.iter().map(|d| d.timing.cache_hits).sum();
        let misses: u32 = done.iter().map(|d| d.timing.cache_misses).sum();
        results.push(jobj! {
            "experiment": "affinity", "policy": policy.label(),
            "round2_secs": end - round1_end, "cache_hits": hits, "cache_misses": misses,
        });
        row(&[
            policy.label().into(),
            format!("{:.1}", (end - round1_end).as_millis_f64()),
            format!("{hits}"),
            format!("{misses}"),
        ]);
    }
    println!("(locality-aware keeps its hits; parity-shifted round-robin re-transfers)");
}

fn cached_work(i: u32) -> GWork {
    let mut w = burn_work(i);
    w.inputs[0].cache_key = Some(CacheKey {
        dataset: 42,
        partition: 0,
        block: i,
    });
    w.inputs[0].logical_bytes = 1 << 26; // 64 MB: transfers dominate
    w
}

fn burn_work(i: u32) -> GWork {
    GWork {
        name: format!("burn-{i}").into(),
        execute_name: "burn".into(),
        kernel: KernelId::UNRESOLVED,
        ptx_path: "/burn.ptx".into(),
        block_size: 256,
        grid_size: 64,
        inputs: vec![WorkBuf {
            data: Arc::new(HBuffer::zeroed(64)),
            logical_bytes: 1 << 24,
            cache_key: None,
        }],
        out_actual_bytes: 64,
        out_logical_bytes: 1 << 20,
        out_records: 16,
        params: Arc::from([]),
        n_actual: 16,
        n_logical: 1 << 22,
        coalescing: 1.0,
        tag: (0, i),
    }
}

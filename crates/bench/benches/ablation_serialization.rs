//! Ablation: the JVM→GPU communication strategy (§3.1/§4.1).
//!
//! Compares the five-step serialize/copy path of prior systems against
//! GFlink's two-step GStruct zero-copy path over a range of record counts.
//! Both pipelines really execute on scale-reduced data; times are modelled
//! at the logical scale.

use gflink_bench::{header, jobj, row, write_results, Json};
use gflink_core::commpath::{gstruct_path, naive_path};
use gflink_flink::CpuSpec;
use gflink_gpu::GpuModel;
use gflink_memory::{AlignClass, FieldDef, FieldValue, GStructDef, HBuffer, PrimType, Record};

fn point_def() -> GStructDef {
    GStructDef::new(
        "Point",
        AlignClass::Align8,
        vec![
            FieldDef::scalar("x", PrimType::F32),
            FieldDef::scalar("y", PrimType::F64),
            FieldDef::scalar("z", PrimType::F32),
        ],
    )
}

fn records(n: usize) -> Vec<Record> {
    (0..n)
        .map(|i| {
            vec![
                FieldValue::F32(i as f32),
                FieldValue::F64(-(i as f64)),
                FieldValue::F32(0.5),
            ]
        })
        .collect()
}

fn main() {
    let mut results = Vec::new();
    header(
        "Ablation: serialization path vs GStruct zero-copy path",
        "host->device->host round trip (Tesla C2050)",
    );
    row(&[
        "records (logical)".into(),
        "naive total (ms)".into(),
        "  encode".into(),
        "  heap copy".into(),
        "  transfers".into(),
        "  decode".into(),
        "gstruct total (ms)".into(),
        "speedup".into(),
    ]);
    let def = point_def();
    let cpu = CpuSpec::default();
    let gpu = GpuModel::TeslaC2050.spec();
    let actual = records(200);
    for logical in [100_000u64, 1_000_000, 10_000_000, 100_000_000] {
        let (out, naive) = naive_path(&actual, &def, logical, &cpu, &gpu);
        assert_eq!(out, actual, "naive path corrupted the data");
        let bytes = HBuffer::zeroed(64);
        let (_copy, zc) = gstruct_path(&bytes, logical * def.size() as u64, &gpu);
        results.push(jobj! {
            "records_logical": logical,
            "naive_total_secs": naive.total(),
            "naive_encode_secs": naive.encode,
            "naive_decode_secs": naive.decode,
            "gstruct_total_secs": zc.total(),
            "speedup": naive.total().as_secs_f64() / zc.total().as_secs_f64(),
        });
        row(&[
            format!("{logical}"),
            format!("{:.2}", naive.total().as_millis_f64()),
            format!("{:.2}", naive.encode.as_millis_f64()),
            format!("{:.2}", naive.heap_copy.as_millis_f64()),
            format!("{:.2}", (naive.h2d + naive.d2h).as_millis_f64()),
            format!("{:.2}", naive.decode.as_millis_f64()),
            format!("{:.2}", zc.total().as_millis_f64()),
            format!(
                "{:.2}x",
                naive.total().as_secs_f64() / zc.total().as_secs_f64()
            ),
        ]);
    }
    println!(
        "(the transfer legs are identical; everything GFlink wins, it wins by \
         deleting the encode/copy/decode steps — §4.1.2's off-heap argument)"
    );
    write_results("ablation_serialization", &Json::Arr(results));
}

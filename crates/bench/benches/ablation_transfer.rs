//! Ablation: the transfer-channel optimization layer (§4.1.2).
//!
//! Compares three configurations of the JVM↔GPU transfer channel on the
//! small-record apps, where per-call overhead (Table 2's α) is largest
//! relative to payload:
//!
//! * **pageable** — every H2D pays an extra synchronous host staging
//!   memcpy at `HOST_STAGING_BYTES_PER_SEC`, the path GFlink's off-heap
//!   direct buffers avoid;
//! * **pinned** — page-locked staging through the [`PinnedPool`]; the
//!   Table 2 fitted path (the default);
//! * **pinned+batched** — additionally coalesces small queued GWorks into
//!   fused H2D/D2H calls, paying one α per direction for the whole group
//!   (CrystalGPU-style task batching).
//!
//! The block size is deliberately small (64 KiB vs the 4 MiB fabric
//! default) so every GWork is transfer-call-bound — the regime the
//! optimization targets. Digests must be bit-identical across all three
//! variants: the channel only changes *when* bytes move, never *what*
//! they decode to.

use gflink_apps::{pointadd, wordcount, AppRun, Setup};
use gflink_bench::{header, jobj, median_map_wall, row, write_results, Json};
use gflink_core::{BatchConfig, FabricConfig};
use gflink_flink::{ClusterConfig, GpuRollup};
use gflink_gpu::{GpuModel, TransferMode};
use gflink_sim::SimTime;

const WORKERS: usize = 4;
const BLOCK_BYTES: u64 = 64 << 10;

#[derive(Clone, Copy, PartialEq, Eq)]
enum Variant {
    Pageable,
    Pinned,
    PinnedBatched,
}

impl Variant {
    fn label(self) -> &'static str {
        match self {
            Variant::Pageable => "pageable",
            Variant::Pinned => "pinned",
            Variant::PinnedBatched => "pinned+batched",
        }
    }
}

const VARIANTS: [Variant; 3] = [Variant::Pageable, Variant::Pinned, Variant::PinnedBatched];

fn setup(v: Variant) -> Setup {
    // One C2050 with a single-stream bulk per worker and fast producers:
    // the 64 KiB blocks then outpace the stream, creating the backlog
    // regime task batching targets (an idle fabric never batches by
    // design — a work that finds an idle stream runs immediately).
    let mut fabric = FabricConfig {
        block_bytes: BLOCK_BYTES,
        producer_overhead: SimTime::from_micros(5),
        ..FabricConfig::default()
    };
    fabric.worker.models = vec![GpuModel::TeslaC2050];
    fabric.worker.streams_per_gpu = 1;
    match v {
        Variant::Pageable => fabric.worker.transfer.mode = TransferMode::Pageable,
        Variant::Pinned => {}
        Variant::PinnedBatched => fabric.worker.transfer.batch = BatchConfig::enabled(),
    }
    Setup::with_configs(ClusterConfig::standard(WORKERS), fabric)
}

fn rollup(run: &AppRun) -> &GpuRollup {
    run.report.gpu.as_ref().expect("GPU app must have a rollup")
}

fn bench_app(name: &str, map_phase: &str, run: impl Fn(&Setup) -> AppRun, out: &mut Vec<Json>) {
    let runs: Vec<AppRun> = VARIANTS
        .iter()
        .map(|&v| {
            let s = setup(v);
            run(&s)
        })
        .collect();
    let [pageable, pinned, batched] = &runs[..] else {
        unreachable!()
    };

    // The channel must be invisible to results: bit-identical digests.
    for (v, r) in VARIANTS.iter().zip(&runs) {
        assert_eq!(
            r.digest.to_bits(),
            pageable.digest.to_bits(),
            "{name}: {} digest drifted from pageable",
            v.label()
        );
    }
    let br = rollup(batched);
    // The transfer effect concentrates in the GPU map phase; the job total
    // also carries HDFS IO and CPU glue, diluting the visible gain.
    let map_pageable = median_map_wall(pageable, map_phase);
    let map_batched = median_map_wall(batched, map_phase);
    row(&[
        name.into(),
        format!("{:.4}", pageable.total_secs()),
        format!("{:.4}", pinned.total_secs()),
        format!("{:.4}", batched.total_secs()),
        format!("{:.2} ms", map_pageable.as_secs_f64() * 1e3),
        format!("{:.2} ms", map_batched.as_secs_f64() * 1e3),
        format!(
            "{:.2}x",
            map_pageable.as_secs_f64() / map_batched.as_secs_f64().max(1e-12)
        ),
        format!("{}", br.batches),
        format!("{:.1}", br.batch_size.mean()),
        format!("{:.0}%", br.pinned_hit_rate() * 100.0),
        format!("{:.3} ms", br.alpha_saved.as_secs_f64() * 1e3),
    ]);

    // The acceptance bar: batched transfers strictly beat the pageable
    // baseline, and batches actually formed (backlog engaged the fuser).
    assert!(
        batched.total_secs() < pageable.total_secs(),
        "{name}: pinned+batched ({:.4}s) must be strictly faster than pageable ({:.4}s)",
        batched.total_secs(),
        pageable.total_secs()
    );
    assert!(
        br.batches > 0,
        "{name}: batching variant dispatched no fused batches"
    );

    out.push(jobj! {
        "app": name,
        "block_bytes": BLOCK_BYTES,
        "pageable_secs": pageable.total_secs(),
        "pinned_secs": pinned.total_secs(),
        "pinned_batched_secs": batched.total_secs(),
        "map_wall_pageable_secs": map_pageable,
        "map_wall_pinned_batched_secs": map_batched,
        "map_speedup_vs_pageable": map_pageable.as_secs_f64() / map_batched.as_secs_f64().max(1e-12),
        "batches": br.batches,
        "batched_works": br.batched_works,
        "mean_batch_size": br.batch_size.mean(),
        "pinned_hit_rate": br.pinned_hit_rate(),
        "alpha_saved_secs": br.alpha_saved,
    });
}

fn main() {
    header(
        "Ablation: transfer channel",
        "pageable vs pinned vs pinned+batched, 64 KiB blocks, 4 workers",
    );
    row(&[
        "app".into(),
        "pageable (s)".into(),
        "pinned (s)".into(),
        "pinned+batched (s)".into(),
        "map pageable".into(),
        "map batched".into(),
        "map gain".into(),
        "batches".into(),
        "works/batch".into(),
        "pool hit".into(),
        "α saved".into(),
    ]);

    let mut results = Vec::new();
    bench_app(
        "wordcount",
        "histogram",
        |s| {
            wordcount::run_gpu(
                s,
                &wordcount::Params {
                    bytes_logical: 64_000_000,
                    words_actual: 4_000,
                    parallelism: s.default_parallelism(),
                    seed: 11,
                },
            )
        },
        &mut results,
    );
    bench_app(
        "pointadd",
        "addPoint",
        |s| {
            pointadd::run_gpu(
                s,
                &pointadd::Params {
                    n_logical: 8_000_000,
                    n_actual: 20_000,
                    iterations: 3,
                    parallelism: s.default_parallelism(),
                    delta: (1.0, -0.5),
                },
            )
        },
        &mut results,
    );

    println!(
        "(expect: pageable pays an extra host memcpy per H2D; batching then \
         amortizes the per-call α across fused small works — digests are \
         bit-identical across all three paths)"
    );
    write_results("ablation_transfer", &Json::Arr(results));
}

//! §6.3/§6.4: the Eq. (1)–(4) time decomposition and Observations 1–3.
//!
//! Runs each workload once on both engines (mid-range size) and prints the
//! measured phase ledger, the Eq. (2)/(3) speedups, the Eq. (4) GPU map
//! breakdown, and checks the paper's three observations against the data.

use gflink_apps::{concomp, kmeans, linreg, pagerank, pointadd, spmv, wordcount, AppRun, Setup};
use gflink_bench::{header, jobj, row, write_results, Json};
use gflink_core::model;
use gflink_sim::Phase;

const WORKERS: usize = 10;

fn run_pair(app: &str) -> (AppRun, AppRun) {
    let s1 = Setup::standard(WORKERS);
    let s2 = Setup::standard(WORKERS);
    match app {
        "kmeans" => {
            let p = kmeans::Params::paper(210, &s1);
            (kmeans::run_cpu(&s1, &p), kmeans::run_gpu(&s2, &p))
        }
        "pagerank" => {
            let p = pagerank::Params::paper(15, &s1);
            (pagerank::run_cpu(&s1, &p), pagerank::run_gpu(&s2, &p))
        }
        "wordcount" => {
            let p = wordcount::Params::paper(40, &s1);
            (wordcount::run_cpu(&s1, &p), wordcount::run_gpu(&s2, &p))
        }
        "concomp" => {
            let p = concomp::Params::paper(15, &s1);
            (concomp::run_cpu(&s1, &p), concomp::run_gpu(&s2, &p))
        }
        "linreg" => {
            let p = linreg::Params::paper(210, &s1);
            (linreg::run_cpu(&s1, &p), linreg::run_gpu(&s2, &p))
        }
        "spmv" => {
            let p = spmv::Params::paper(8, &s1);
            (spmv::run_cpu(&s1, &p), spmv::run_gpu(&s2, &p))
        }
        "pointadd" => {
            let p = pointadd::Params::standard(&s1);
            (pointadd::run_cpu(&s1, &p), pointadd::run_gpu(&s2, &p))
        }
        _ => unreachable!(),
    }
}

fn main() {
    let apps = [
        "kmeans",
        "pagerank",
        "wordcount",
        "concomp",
        "linreg",
        "spmv",
        "pointadd",
    ];
    header(
        "Eq. (1)",
        "phase decomposition per app (top: Flink, bottom: GFlink; seconds)",
    );
    row(&[
        "app".into(),
        "engine".into(),
        "map".into(),
        "reduce".into(),
        "shuffle".into(),
        "submit".into(),
        "io".into(),
        "schedule".into(),
        "total".into(),
        "| kernel".into(),
        "h2d".into(),
        "d2h".into(),
    ]);
    let mut pairs = Vec::new();
    for app in apps {
        let (cpu, gpu) = run_pair(app);
        for (engine, run) in [("Flink", &cpu), ("GFlink", &gpu)] {
            let a = &run.report.acct;
            let s = |p: Phase| format!("{:.2}", a.get(p).as_secs_f64());
            row(&[
                app.to_string(),
                engine.to_string(),
                s(Phase::Map),
                s(Phase::Reduce),
                s(Phase::Shuffle),
                s(Phase::Submit),
                s(Phase::Io),
                s(Phase::Schedule),
                format!("{:.2}", run.report.total.as_secs_f64()),
                s(Phase::Kernel),
                s(Phase::TransferH2D),
                s(Phase::TransferD2H),
            ]);
        }
        pairs.push((app, cpu, gpu));
    }
    let mut results = Vec::new();
    for (app, cpu, gpu) in &pairs {
        for (engine, run) in [("Flink", cpu), ("GFlink", gpu)] {
            let a = &run.report.acct;
            results.push(jobj! {
                "app": *app,
                "engine": engine,
                "total_secs": run.report.total,
                "map_secs": a.get(Phase::Map),
                "reduce_secs": a.get(Phase::Reduce),
                "shuffle_secs": a.get(Phase::Shuffle),
                "io_secs": a.get(Phase::Io),
                "kernel_secs": a.get(Phase::Kernel),
                "h2d_secs": a.get(Phase::TransferH2D),
                "d2h_secs": a.get(Phase::TransferD2H),
                "speedup_total": model::speedup_total(&cpu.report.acct, &gpu.report.acct),
            });
        }
    }
    write_results("eq1_decomposition", &Json::Arr(results));

    header("Eq. (2)/(3)/(4)", "derived speedups and GPU map breakdown");
    row(&[
        "app".into(),
        "speedup_total (Eq.2)".into(),
        "speedup_map (Eq.3)".into(),
        "Amdahl bound".into(),
        "GPU map h2d/kernel/d2h (Eq.4)".into(),
    ]);
    for (app, cpu, gpu) in &pairs {
        let (h, k, d) = model::map_gpu_breakdown(&gpu.report.acct);
        row(&[
            app.to_string(),
            format!(
                "{:.2}x",
                model::speedup_total(&cpu.report.acct, &gpu.report.acct)
            ),
            format!(
                "{:.2}x",
                model::speedup_map(&cpu.report.acct, &gpu.report.acct)
            ),
            format!("{:.2}x", model::amdahl_bound(&cpu.report.acct)),
            format!("{:.0}%/{:.0}%/{:.0}%", h * 100.0, k * 100.0, d * 100.0),
        ]);
    }

    header("Observations 1-3", "checks against the measured data");
    // Observation 1: larger shuffle share => smaller speedup. Compare the
    // shuffle-light (kmeans) and shuffle-heavy (pagerank) apps.
    let find = |name: &str| pairs.iter().find(|(a, _, _)| *a == name).unwrap();
    let (_, km_c, km_g) = find("kmeans");
    let (_, pr_c, pr_g) = find("pagerank");
    let km_sp = model::speedup_total(&km_c.report.acct, &km_g.report.acct);
    let pr_sp = model::speedup_total(&pr_c.report.acct, &pr_g.report.acct);
    println!(
        "Obs 1: kmeans shuffle share {:.0}% -> {km_sp:.2}x; pagerank shuffle share {:.0}% -> {pr_sp:.2}x  [{}]",
        km_c.report.acct.fraction(Phase::Shuffle) * 100.0,
        pr_c.report.acct.fraction(Phase::Shuffle) * 100.0,
        if km_sp > pr_sp { "HOLDS" } else { "VIOLATED" }
    );
    // Observation 2: every total speedup respects its Amdahl bound.
    let mut ok = true;
    for (app, cpu, gpu) in &pairs {
        let sp = model::speedup_total(&cpu.report.acct, &gpu.report.acct);
        let bound = model::amdahl_bound(&cpu.report.acct);
        if sp > bound * 1.05 {
            ok = false;
            println!("Obs 2 violated by {app}: {sp:.2}x > bound {bound:.2}x");
        }
    }
    println!(
        "Obs 2: all speedups within their Amdahl bounds  [{}]",
        if ok { "HOLDS" } else { "VIOLATED" }
    );
    // Observation 3: small inputs are dominated by fixed costs, so the
    // speedup grows with input size.
    let s_small = {
        let s1 = Setup::standard(WORKERS);
        let p = kmeans::Params {
            n_logical: 5_000_000,
            n_actual: 5_000,
            iterations: 10,
            parallelism: s1.default_parallelism(),
            seed: kmeans::KMEANS_SEED,
        };
        let c = kmeans::run_cpu(&s1, &p);
        let s2 = Setup::standard(WORKERS);
        let g = kmeans::run_gpu(&s2, &p);
        (
            model::fixed_cost_share(&g.report.acct),
            model::speedup_total(&c.report.acct, &g.report.acct),
        )
    };
    let km_big_sp = km_sp;
    println!(
        "Obs 3: 5M points -> GFlink fixed-cost share {:.0}%, speedup {:.2}x; 210M points -> speedup {km_big_sp:.2}x  [{}]",
        s_small.0 * 100.0,
        s_small.1,
        if km_big_sp > s_small.1 { "HOLDS" } else { "VIOLATED" }
    );
}

//! Figure 5: average running time and speedup on the 10-worker cluster.
//!
//! * (a) KMeans, 150–270 M points
//! * (b) PageRank, 5–25 M pages
//! * (c) WordCount, 24–56 GB
//!
//! Every worker has 4 CPU slots and two Tesla C2050s; iterative workloads
//! run 10 iterations, exactly as §6.5 describes. Paper target bands (at the
//! largest size): KMeans ≈5x, PageRank ≈3.5x, WordCount ≈1.1x, growing with
//! input size (Observation 3).

use gflink_apps::{kmeans, pagerank, wordcount, Setup};
use gflink_bench::{header, jobj, row, secs, speedup, write_results, Json};

const WORKERS: usize = 10;

fn main() {
    let mut results = Vec::new();
    header(
        "Fig 5a",
        "KMeans on the cluster (10 workers x [4 CPU + 2 C2050])",
    );
    row(&[
        "points".into(),
        "Flink (s)".into(),
        "GFlink (s)".into(),
        "speedup".into(),
    ]);
    for millions in [150u64, 180, 210, 240, 270] {
        let s1 = Setup::standard(WORKERS);
        let p = kmeans::Params::paper(millions, &s1);
        let cpu = kmeans::run_cpu(&s1, &p);
        let s2 = Setup::standard(WORKERS);
        let gpu = kmeans::run_gpu(&s2, &p);
        results.push(jobj! {
            "fig": "5a", "app": "kmeans", "size": millions,
            "cpu_secs": cpu.report.total, "gpu_secs": gpu.report.total,
            "speedup": speedup(&cpu, &gpu),
        });
        row(&[
            format!("{millions}M"),
            secs(cpu.report.total),
            secs(gpu.report.total),
            format!("{:.2}x", speedup(&cpu, &gpu)),
        ]);
    }

    header("Fig 5b", "PageRank on the cluster");
    row(&[
        "pages".into(),
        "Flink (s)".into(),
        "GFlink (s)".into(),
        "speedup".into(),
    ]);
    for millions in [5u64, 10, 15, 20, 25] {
        let s1 = Setup::standard(WORKERS);
        let p = pagerank::Params::paper(millions, &s1);
        let cpu = pagerank::run_cpu(&s1, &p);
        let s2 = Setup::standard(WORKERS);
        let gpu = pagerank::run_gpu(&s2, &p);
        results.push(jobj! {
            "fig": "5b", "app": "pagerank", "size": millions,
            "cpu_secs": cpu.report.total, "gpu_secs": gpu.report.total,
            "speedup": speedup(&cpu, &gpu),
        });
        row(&[
            format!("{millions}M"),
            secs(cpu.report.total),
            secs(gpu.report.total),
            format!("{:.2}x", speedup(&cpu, &gpu)),
        ]);
    }

    header("Fig 5c", "WordCount on the cluster");
    row(&[
        "text".into(),
        "Flink (s)".into(),
        "GFlink (s)".into(),
        "speedup".into(),
    ]);
    for gb in [24u64, 32, 40, 48, 56] {
        let s1 = Setup::standard(WORKERS);
        let p = wordcount::Params::paper(gb, &s1);
        let cpu = wordcount::run_cpu(&s1, &p);
        let s2 = Setup::standard(WORKERS);
        let gpu = wordcount::run_gpu(&s2, &p);
        results.push(jobj! {
            "fig": "5c", "app": "wordcount", "size": gb,
            "cpu_secs": cpu.report.total, "gpu_secs": gpu.report.total,
            "speedup": speedup(&cpu, &gpu),
        });
        row(&[
            format!("{gb}GB"),
            secs(cpu.report.total),
            secs(gpu.report.total),
            format!("{:.2}x", speedup(&cpu, &gpu)),
        ]);
    }
    write_results("fig5_cluster_overview", &Json::Arr(results));
}

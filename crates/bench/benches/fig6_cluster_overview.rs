//! Figure 6: average running time and speedup on the 10-worker cluster.
//!
//! * (a) SpMV, 2–32 GB matrices
//! * (b) LinearRegression, 150–270 M samples
//! * (c) ComponentConnect, 5–25 M pages
//!
//! Paper target bands at the largest size: SpMV ≈6.3x, LinearRegression
//! ≈9.2x (the best case), ComponentConnect ≈4.8x.

use gflink_apps::{concomp, linreg, spmv, Setup};
use gflink_bench::{header, jobj, row, secs, speedup, write_results, Json};

const WORKERS: usize = 10;

fn main() {
    let mut results = Vec::new();
    header(
        "Fig 6a",
        "SpMV on the cluster (10 workers x [4 CPU + 2 C2050])",
    );
    row(&[
        "matrix".into(),
        "Flink (s)".into(),
        "GFlink (s)".into(),
        "speedup".into(),
    ]);
    for gb in [2u64, 4, 8, 16, 32] {
        let s1 = Setup::standard(WORKERS);
        let p = spmv::Params::paper(gb, &s1);
        let cpu = spmv::run_cpu(&s1, &p);
        let s2 = Setup::standard(WORKERS);
        let gpu = spmv::run_gpu(&s2, &p);
        results.push(jobj! {
            "fig": "6a", "app": "spmv", "size": gb,
            "cpu_secs": cpu.report.total, "gpu_secs": gpu.report.total,
            "speedup": speedup(&cpu, &gpu),
        });
        row(&[
            format!("{gb}GB"),
            secs(cpu.report.total),
            secs(gpu.report.total),
            format!("{:.2}x", speedup(&cpu, &gpu)),
        ]);
    }

    header("Fig 6b", "LinearRegression on the cluster");
    row(&[
        "samples".into(),
        "Flink (s)".into(),
        "GFlink (s)".into(),
        "speedup".into(),
    ]);
    for millions in [150u64, 180, 210, 240, 270] {
        let s1 = Setup::standard(WORKERS);
        let p = linreg::Params::paper(millions, &s1);
        let cpu = linreg::run_cpu(&s1, &p);
        let s2 = Setup::standard(WORKERS);
        let gpu = linreg::run_gpu(&s2, &p);
        results.push(jobj! {
            "fig": "6b", "app": "linreg", "size": millions,
            "cpu_secs": cpu.report.total, "gpu_secs": gpu.report.total,
            "speedup": speedup(&cpu, &gpu),
        });
        row(&[
            format!("{millions}M"),
            secs(cpu.report.total),
            secs(gpu.report.total),
            format!("{:.2}x", speedup(&cpu, &gpu)),
        ]);
    }

    header("Fig 6c", "ComponentConnect on the cluster");
    row(&[
        "pages".into(),
        "Flink (s)".into(),
        "GFlink (s)".into(),
        "speedup".into(),
    ]);
    for millions in [5u64, 10, 15, 20, 25] {
        let s1 = Setup::standard(WORKERS);
        let p = concomp::Params::paper(millions, &s1);
        let cpu = concomp::run_cpu(&s1, &p);
        let s2 = Setup::standard(WORKERS);
        let gpu = concomp::run_gpu(&s2, &p);
        results.push(jobj! {
            "fig": "6c", "app": "concomp", "size": millions,
            "cpu_secs": cpu.report.total, "gpu_secs": gpu.report.total,
            "speedup": speedup(&cpu, &gpu),
        });
        row(&[
            format!("{millions}M"),
            secs(cpu.report.total),
            secs(gpu.report.total),
            format!("{:.2}x", speedup(&cpu, &gpu)),
        ]);
    }
    write_results("fig6_cluster_overview", &Json::Arr(results));
}

//! Figure 7: per-iteration behaviour and node-count scaling (§6.6.1/§6.6.3).
//!
//! * (a) KMeans average running time per iteration (210 M points, 3
//!   workers): the first iteration pays HDFS read + H2D, later GFlink
//!   iterations hit the GPU cache.
//! * (b) SpMV per iteration on a single machine (1.0 GB matrix, 123 MB
//!   vector): one CPU core vs one GPU vs two GPUs; after iteration 1 the
//!   GPU runs are kernel-only (matrix and vector cached), and the last
//!   iteration pays the result write.
//! * (c) KMeans vs number of slave nodes (210 M points).
//! * (d) SpMV vs number of slave nodes (10 GB matrix; the cache policy is
//!   StopWhenFull because small clusters cannot hold the whole matrix
//!   per GPU — exactly the §4.2.2 scenario that policy exists for).

use gflink_apps::{kmeans, spmv, Setup};
use gflink_bench::{header, jobj, per_iteration_with_io, row, secs, write_results, Json};
use gflink_core::{CachePolicy, FabricConfig, GpuWorkerConfig};
use gflink_flink::ClusterConfig;
use gflink_gpu::GpuModel;

fn main() {
    let mut results = Vec::new();
    fig7a(&mut results);
    fig7b(&mut results);
    fig7c(&mut results);
    fig7d(&mut results);
    write_results("fig7_iterations_scaling", &Json::Arr(results));
}

fn fig7a(results: &mut Vec<Json>) {
    header(
        "Fig 7a",
        "KMeans per-iteration time, 210M points, 3 workers",
    );
    let s1 = Setup::standard(3);
    let mut p = kmeans::Params::paper(210, &s1);
    p.parallelism = s1.default_parallelism();
    let cpu = kmeans::run_cpu(&s1, &p);
    let s2 = Setup::standard(3);
    let gpu = kmeans::run_gpu(&s2, &p);
    row(&["iter".into(), "Flink (s)".into(), "GFlink (s)".into()]);
    let ci = per_iteration_with_io(&cpu);
    let gi = per_iteration_with_io(&gpu);
    for (i, (c, g)) in ci.iter().zip(gi.iter()).enumerate() {
        results.push(jobj! {
            "fig": "7a", "app": "kmeans", "iter": i + 1,
            "cpu_secs": *c, "gpu_secs": *g,
        });
        row(&[format!("{}", i + 1), secs(*c), secs(*g)]);
    }
}

/// A single-machine setup with `gpus` C2050s and `cpu_slots` task slots.
fn single_machine(cpu_slots: usize, gpus: usize) -> Setup {
    let mut cluster = ClusterConfig::single_node();
    cluster.slots_per_worker = cpu_slots;
    let fabric = FabricConfig {
        worker: GpuWorkerConfig {
            models: vec![GpuModel::TeslaC2050; gpus.max(1)],
            ..GpuWorkerConfig::default()
        },
        ..FabricConfig::default()
    };
    Setup::with_configs(cluster, fabric)
}

fn fig7b(results: &mut Vec<Json>) {
    header(
        "Fig 7b",
        "SpMV per-iteration time, single machine, 1.0GB matrix + 123MB vector",
    );
    // One CPU core (the paper's \"one CPU\" baseline).
    let s_cpu = single_machine(1, 1);
    let mut p = spmv::Params::paper(1, &s_cpu);
    p.parallelism = 1;
    let cpu = spmv::run_cpu(&s_cpu, &p);
    // One and two GPUs (producers use the 4 CPU slots).
    let s_g1 = single_machine(4, 1);
    let mut p1 = spmv::Params::paper(1, &s_g1);
    p1.parallelism = 4;
    let gpu1 = spmv::run_gpu(&s_g1, &p1);
    let s_g2 = single_machine(4, 2);
    let gpu2 = spmv::run_gpu(&s_g2, &p1);
    row(&[
        "iter".into(),
        "1 CPU (s)".into(),
        "1 GPU (s)".into(),
        "2 GPUs (s)".into(),
    ]);
    let ci = per_iteration_with_io(&cpu);
    let g1 = per_iteration_with_io(&gpu1);
    let g2 = per_iteration_with_io(&gpu2);
    for i in 0..ci.len() {
        results.push(jobj! {
            "fig": "7b", "app": "spmv", "iter": i + 1,
            "cpu_secs": ci[i], "gpu1_secs": g1[i], "gpu2_secs": g2[i],
        });
        row(&[format!("{}", i + 1), secs(ci[i]), secs(g1[i]), secs(g2[i])]);
    }
    println!(
        "steady-state speedup (iter 5): 1 GPU {:.1}x, 2 GPUs {:.1}x over 1 CPU",
        ci[4].as_secs_f64() / g1[4].as_secs_f64(),
        ci[4].as_secs_f64() / g2[4].as_secs_f64()
    );
}

fn fig7c(results: &mut Vec<Json>) {
    header("Fig 7c", "KMeans vs number of slave nodes, 210M points");
    row(&[
        "workers".into(),
        "Flink (s)".into(),
        "GFlink (s)".into(),
        "speedup".into(),
    ]);
    for workers in [2usize, 4, 6, 8, 10] {
        let s1 = Setup::standard(workers);
        let p = kmeans::Params::paper(210, &s1);
        let cpu = kmeans::run_cpu(&s1, &p);
        let s2 = Setup::standard(workers);
        let gpu = kmeans::run_gpu(&s2, &p);
        results.push(jobj! {
            "fig": "7c", "app": "kmeans", "workers": workers,
            "cpu_secs": cpu.report.total, "gpu_secs": gpu.report.total,
        });
        row(&[
            format!("{workers}"),
            secs(cpu.report.total),
            secs(gpu.report.total),
            format!(
                "{:.2}x",
                cpu.report.total.as_secs_f64() / gpu.report.total.as_secs_f64()
            ),
        ]);
    }
}

fn fig7d(results: &mut Vec<Json>) {
    header("Fig 7d", "SpMV vs number of slave nodes, 10GB matrix");
    row(&[
        "workers".into(),
        "Flink (s)".into(),
        "GFlink (s)".into(),
        "speedup".into(),
    ]);
    for workers in [2usize, 4, 6, 8, 10] {
        let s1 = Setup::standard(workers);
        let p = spmv::Params::paper(10, &s1);
        let cpu = spmv::run_cpu(&s1, &p);
        // StopWhenFull: on 2 workers each GPU can hold only part of its
        // 2.5 GB matrix slice.
        let mut fabric = FabricConfig::default();
        #[allow(clippy::field_reassign_with_default)]
        {
            fabric.worker.cache_policy = CachePolicy::StopWhenFull;
        }
        let s2 = Setup::with_configs(ClusterConfig::standard(workers), fabric);
        let gpu = spmv::run_gpu(&s2, &p);
        results.push(jobj! {
            "fig": "7d", "app": "spmv", "workers": workers,
            "cpu_secs": cpu.report.total, "gpu_secs": gpu.report.total,
        });
        row(&[
            format!("{workers}"),
            secs(cpu.report.total),
            secs(gpu.report.total),
            format!(
                "{:.2}x",
                cpu.report.total.as_secs_f64() / gpu.report.total.as_secs_f64()
            ),
        ]);
    }
}

//! Figure 8: cache effects, per-kernel GMapper/GReducer speedups and
//! concurrent multi-application execution (§6.6.2 / §6.6.4).
//!
//! * (a) SpMV per-iteration with and without the GPU cache scheme;
//! * (b) GMapper/GReducer speedups for KMeans, SpMV, PointAdd and the
//!   sum-by-key reducer, on C2050, GTX 750, K20 and P100 — expectation:
//!   P100 > K20 > (GTX 750 ≈ C2050); KMeans > SpMV > PointAdd; the
//!   reducer's speedup is the lowest;
//! * (c) three applications submitted together on one node: the shared
//!   fabric serves them with a combined time a little over 3× the
//!   exclusive per-app times;
//! * (d) the same on 10 workers: per-app speedups when run alone vs
//!   concurrently.

use gflink_apps::{kmeans, pointadd, spmv, Setup};
use gflink_bench::{header, jobj, per_iteration_with_io, row, secs, write_results, Json};
use gflink_core::{CachePolicy, FabricConfig, GpuWorkerConfig};
use gflink_flink::ClusterConfig;
use gflink_gpu::GpuModel;
use gflink_sim::SimTime;

fn main() {
    let mut results = Vec::new();
    fig8a(&mut results);
    fig8b(&mut results);
    fig8c(&mut results);
    fig8d(&mut results);
    write_results("fig8_detail", &Json::Arr(results));
}

fn fig8a(results: &mut Vec<Json>) {
    header(
        "Fig 8a",
        "Effect of the GPU cache scheme (SpMV, single node)",
    );
    let mk = |policy: CachePolicy| {
        let mut fabric = FabricConfig::default();
        fabric.worker.cache_policy = policy;
        Setup::with_configs(ClusterConfig::single_node(), fabric)
    };
    let s_on = mk(CachePolicy::Fifo);
    let p = spmv::Params::paper(1, &s_on);
    let with_cache = spmv::run_gpu(&s_on, &p);
    let s_off = mk(CachePolicy::Disabled);
    let without = spmv::run_gpu(&s_off, &p);
    row(&["iter".into(), "cache on (s)".into(), "cache off (s)".into()]);
    let on = per_iteration_with_io(&with_cache);
    let off = per_iteration_with_io(&without);
    for i in 0..on.len() {
        results.push(jobj! {
            "fig": "8a", "app": "spmv", "iter": i + 1,
            "cache_on_secs": on[i], "cache_off_secs": off[i],
        });
        row(&[format!("{}", i + 1), secs(on[i]), secs(off[i])]);
    }
    println!(
        "totals: cache on {} vs cache off {}",
        with_cache.report.total, without.report.total
    );
}

/// Steady-state mapper wall times (median map phase, §6.6.2: first
/// iterations pay I/O and H2D and are reported separately in Fig. 7) for
/// one app on one device model, and the matching CPU baseline.
fn mapper_times(app: &str, model: GpuModel) -> (f64, f64) {
    use gflink_bench::median_map_wall;
    let fabric = FabricConfig {
        worker: GpuWorkerConfig {
            models: vec![model],
            ..GpuWorkerConfig::default()
        },
        ..FabricConfig::default()
    };
    let setup = Setup::with_configs(ClusterConfig::single_node(), fabric);
    let setup_cpu = Setup::standard(1);
    match app {
        "kmeans" => {
            // Sized to fit a single GPU's cache region (§4.2.2): 20M points
            // of 64B = 1.28 GB.
            let mut p = kmeans::Params {
                n_logical: 20_000_000,
                n_actual: 20_000,
                iterations: 10,
                parallelism: 4,
                seed: kmeans::KMEANS_SEED,
            };
            p.parallelism = 4;
            let cpu = kmeans::run_cpu(&setup_cpu, &p);
            let gpu = kmeans::run_gpu(&setup, &p);
            (
                median_map_wall(&cpu, "kmeans-assign").as_secs_f64(),
                median_map_wall(&gpu, "kmeans-assign").as_secs_f64(),
            )
        }
        "spmv" => {
            let mut p = spmv::Params::paper(1, &setup);
            p.parallelism = 4;
            let cpu = spmv::run_cpu(&setup_cpu, &p);
            let gpu = spmv::run_gpu(&setup, &p);
            (
                median_map_wall(&cpu, "spmv").as_secs_f64(),
                median_map_wall(&gpu, "spmv").as_secs_f64(),
            )
        }
        "pointadd" => {
            let mut p = pointadd::Params::standard(&setup);
            p.parallelism = 4;
            let cpu = pointadd::run_cpu(&setup_cpu, &p);
            let gpu = pointadd::run_gpu(&setup, &p);
            (
                median_map_wall(&cpu, "addPoint").as_secs_f64(),
                median_map_wall(&gpu, "addPoint").as_secs_f64(),
            )
        }
        _ => unreachable!(),
    }
}

/// The GReducer microbenchmark: sum-by-key over pre-partitioned pairs, CPU
/// `reduce_by_key` vs the GFlink gpuReduce path (shuffle → pack → kernel →
/// merge). Both sides are measured end-to-end from the pairs being ready to
/// the reduced result being ready.
fn reducer_times(model: GpuModel) -> (f64, f64) {
    use gflink_apps::pagerank;
    use gflink_core::{GDataSet, GflinkEnv, GpuMapSpec, OutMode};
    use gflink_flink::{FlinkEnv, KeyedOps, OpCost, SharedCluster};
    use gflink_memory::DataLayout;

    let n_actual = 20_000usize;
    let n_logical = 100_000_000u64;
    let scale = n_logical as f64 / n_actual as f64;
    let pairs: Vec<(u32, f32)> = (0..n_actual).map(|i| ((i % 1000) as u32, 1.0f32)).collect();

    // Baseline reduce, end-to-end.
    let cluster = SharedCluster::new(ClusterConfig::single_node());
    let env = FlinkEnv::submit(&cluster, "cpu-reduce", SimTime::ZERO);
    let ds = env.parallelize("pairs", pairs.clone(), 4, scale);
    let start = env.frontier();
    let _ = ds.reduce_by_key("sum", pagerank::cpu_reduce_cost(), 12.0, scale, |a, b| {
        a + b
    });
    let cpu_wall = (env.frontier() - start).as_secs_f64();

    // gpuReduce path.
    let fabric_cfg = FabricConfig {
        worker: GpuWorkerConfig {
            models: vec![model],
            ..GpuWorkerConfig::default()
        },
        ..FabricConfig::default()
    };
    let setup = Setup::with_configs(ClusterConfig::single_node(), fabric_cfg);
    pagerank::register_kernels(&setup.fabric);
    let genv = GflinkEnv::submit(&setup.cluster, &setup.fabric, "gpu-reduce", SimTime::ZERO);
    let ds = genv.flink.parallelize("pairs", pairs, 4, scale);
    let start = genv.flink.frontier();
    let shuffled = ds.partition_by_key(
        "shuffle",
        12.0,
        scale,
        OpCost::new(2.0, 12.0).with_overhead_factor(0.1),
    );
    let packed = shuffled.map(
        "pack",
        OpCost::new(1.0, 8.0).with_overhead_factor(0.2),
        |(d, v)| pagerank::AggContrib { dst: *d, val: *v },
    );
    let gpairs: GDataSet<pagerank::AggContrib> = genv.to_gdst(packed, DataLayout::Aos);
    let spec = GpuMapSpec::new("cudaSumByKey")
        .uncached()
        .with_out_mode(OutMode::Bounded { per_record: 1 })
        .with_out_scale(scale);
    let _ = gpairs.gpu_map_partition::<pagerank::AggContrib>("gpu-reduce", &spec);
    let gpu_wall = (genv.flink.frontier() - start).as_secs_f64();
    (cpu_wall, gpu_wall)
}

fn fig8b(results: &mut Vec<Json>) {
    header(
        "Fig 8b",
        "GMapper/GReducer speedups per kernel and device (map-phase wall, CPU/GPU)",
    );
    row(&[
        "kernel".into(),
        "C2050".into(),
        "GTX 750".into(),
        "K20".into(),
        "P100".into(),
    ]);
    for app in ["kmeans", "spmv", "pointadd"] {
        let mut cols = vec![format!("GMapper {app}")];
        for model in GpuModel::ALL {
            let (c, g) = mapper_times(app, model);
            results.push(jobj! {
                "fig": "8b", "kernel": format!("GMapper {app}"),
                "device": model.name(), "speedup": c / g,
            });
            cols.push(format!("{:.1}x", c / g));
        }
        row(&cols);
    }
    let mut cols = vec!["GReducer sum".to_string()];
    for model in GpuModel::ALL {
        let (c, g) = reducer_times(model);
        results.push(jobj! {
            "fig": "8b", "kernel": "GReducer sum",
            "device": model.name(), "speedup": c / g,
        });
        cols.push(format!("{:.1}x", c / g));
    }
    row(&cols);
}

/// One exclusive + one concurrent execution of (KMeans, SpMV, PointAdd) on
/// `workers` workers. Returns ((excl_km, excl_sp, excl_pa),
/// (conc_km, conc_sp, conc_pa)) GPU-side times in seconds.
#[allow(clippy::type_complexity)]
fn multi_app(workers: usize, parallelism: usize) -> ((f64, f64, f64), (f64, f64, f64)) {
    let km_p = |s: &Setup| {
        let mut p = kmeans::Params::paper(150, s);
        // Keep the per-node working set inside the GPU caches.
        if workers == 1 {
            p.n_logical = 20_000_000;
            p.n_actual = 20_000;
        }
        p.parallelism = parallelism;
        p
    };
    let sp_p = |s: &Setup| {
        let mut p = spmv::Params::paper(2, s);
        p.parallelism = parallelism;
        p
    };
    let pa_p = |s: &Setup| {
        let mut p = pointadd::Params::standard(s);
        p.parallelism = parallelism;
        p
    };
    // Exclusive: fresh cluster per app.
    let e1 = Setup::standard(workers);
    let excl_km = kmeans::run_gpu(&e1, &km_p(&e1)).total_secs();
    let e2 = Setup::standard(workers);
    let excl_sp = spmv::run_gpu(&e2, &sp_p(&e2)).total_secs();
    let e3 = Setup::standard(workers);
    let excl_pa = pointadd::run_gpu(&e3, &pa_p(&e3)).total_secs();
    // Concurrent: one shared cluster + fabric, all submitted at t=0.
    let shared = Setup::standard(workers);
    let conc_km = kmeans::run_gpu_at(&shared, &km_p(&shared), SimTime::ZERO).total_secs();
    let conc_sp = spmv::run_gpu_at(&shared, &sp_p(&shared), SimTime::ZERO).total_secs();
    let conc_pa = pointadd::run_gpu_at(&shared, &pa_p(&shared), SimTime::ZERO).total_secs();
    ((excl_km, excl_sp, excl_pa), (conc_km, conc_sp, conc_pa))
}

fn fig8c(results: &mut Vec<Json>) {
    header(
        "Fig 8c",
        "Concurrent multi-application execution on a single node (GFlink times)",
    );
    let ((ek, es, ep), (ck, cs, cp)) = multi_app(1, 4);
    row(&[
        "app".into(),
        "exclusive (s)".into(),
        "concurrent (s)".into(),
    ]);
    for (app, e, c) in [("kmeans", ek, ck), ("spmv", es, cs), ("pointadd", ep, cp)] {
        results.push(jobj! {
            "fig": "8c", "app": app, "exclusive_secs": e, "concurrent_secs": c,
        });
        row(&[app.into(), format!("{e:.2}"), format!("{c:.2}")]);
    }
    let avg_excl = (ek + es + ep) / 3.0;
    let conc_makespan = ck.max(cs).max(cp);
    println!(
        "avg exclusive {avg_excl:.2}s; concurrent makespan {conc_makespan:.2}s = {:.2}x \
         the average exclusive time (paper: 'slightly more than three times')",
        conc_makespan / avg_excl
    );
}

fn fig8d(results: &mut Vec<Json>) {
    header(
        "Fig 8d",
        "Concurrent multi-application execution on the 10-worker cluster (parallelism 10 per app)",
    );
    // Speedups alone.
    let par = 10usize; // the paper sets each application's parallelism to 10
    let alone: Vec<(&str, f64)> = {
        let mut v = Vec::new();
        let s1 = Setup::standard(10);
        let mut p = kmeans::Params::paper(150, &s1);
        p.parallelism = par;
        let c = kmeans::run_cpu(&s1, &p);
        let s2 = Setup::standard(10);
        let g = kmeans::run_gpu(&s2, &p);
        v.push(("kmeans", c.total_secs() / g.total_secs()));
        let s1 = Setup::standard(10);
        let mut p = spmv::Params::paper(2, &s1);
        p.parallelism = par;
        let c = spmv::run_cpu(&s1, &p);
        let s2 = Setup::standard(10);
        let g = spmv::run_gpu(&s2, &p);
        v.push(("spmv", c.total_secs() / g.total_secs()));
        let s1 = Setup::standard(10);
        let mut p = pointadd::Params::standard(&s1);
        p.parallelism = par;
        let c = pointadd::run_cpu(&s1, &p);
        let s2 = Setup::standard(10);
        let g = pointadd::run_gpu(&s2, &p);
        v.push(("pointadd", c.total_secs() / g.total_secs()));
        v
    };
    // Speedups when all three run concurrently (CPU trio vs GPU trio on
    // shared clusters).
    let with_par = |mut p: kmeans::Params| {
        p.parallelism = par;
        p
    };
    let cpu_shared = Setup::standard(10);
    let km_c = kmeans::run_cpu_at(
        &cpu_shared,
        &with_par(kmeans::Params::paper(150, &cpu_shared)),
        SimTime::ZERO,
    )
    .total_secs();
    let sp_c = {
        let mut p = spmv::Params::paper(2, &cpu_shared);
        p.parallelism = par;
        spmv::run_cpu_at(&cpu_shared, &p, SimTime::ZERO).total_secs()
    };
    let pa_c = {
        let mut p = pointadd::Params::standard(&cpu_shared);
        p.parallelism = par;
        pointadd::run_cpu_at(&cpu_shared, &p, SimTime::ZERO).total_secs()
    };
    let gpu_shared = Setup::standard(10);
    let km_g = kmeans::run_gpu_at(
        &gpu_shared,
        &with_par(kmeans::Params::paper(150, &gpu_shared)),
        SimTime::ZERO,
    )
    .total_secs();
    let sp_g = {
        let mut p = spmv::Params::paper(2, &gpu_shared);
        p.parallelism = par;
        spmv::run_gpu_at(&gpu_shared, &p, SimTime::ZERO).total_secs()
    };
    let pa_g = {
        let mut p = pointadd::Params::standard(&gpu_shared);
        p.parallelism = par;
        pointadd::run_gpu_at(&gpu_shared, &p, SimTime::ZERO).total_secs()
    };
    row(&[
        "app".into(),
        "speedup alone".into(),
        "speedup concurrent".into(),
    ]);
    let concurrent = [km_c / km_g, sp_c / sp_g, pa_c / pa_g];
    for ((name, a), c) in alone.iter().zip(concurrent.iter()) {
        results.push(jobj! {
            "fig": "8d", "app": *name, "speedup_alone": *a, "speedup_concurrent": *c,
        });
        row(&[name.to_string(), format!("{a:.2}x"), format!("{c:.2}x")]);
    }
}

//! Harness throughput: scheduled GWorks/sec through one `GpuManager` on
//! one core (ISSUE 7 / ROADMAP item 5).
//!
//! The paper's pipelined architecture only shows its scaling behaviour if
//! the harness itself is not the bottleneck, so this bench measures the
//! *harness* — wall-clock cost of the per-GWork hot path (submit, event
//! queue, staging, dispatch, kernel launch, D2H split, completion), not
//! simulated time. Works are deliberately tiny (16 floats) so per-work
//! bookkeeping dominates and kernel arithmetic is noise: the number is
//! scheduled GWorks per wall-clock second on one core.
//!
//! Two paths are timed:
//! * `solo`  — batching off, one flight per GWork (the legacy pipeline);
//! * `fused` — transfer batching on, works coalesced into fused flights
//!   (the steady-state path the arena refactor targets).
//!
//! Wall-clock numbers are machine-dependent, so every throughput is also
//! reported *normalized* by a calibration loop (boxed binary-heap churn —
//! allocator + heap ops, the same primitive costs the hot path pays)
//! measured in the same process. The normalized ratio is stable across
//! machine speeds and is what the regression gate compares.
//!
//! Artifacts:
//! * `results/harness_throughput.json` — this run plus the committed
//!   pre-refactor baseline;
//! * `BENCH_throughput.json` (workspace root, one JSON object per line) —
//!   the trajectory file future re-anchors diff and gate against.
//!
//! Gates (skipped when `GFLINK_BENCH_BASELINE=1`, the re-measuring mode):
//! * allocation: steady-state allocations per scheduled GWork must stay
//!   under 2 (solo) / 4 (fused) — the pre-refactor path paid ~15; the
//!   refactored flight itself pays 0 (the residue is the bench's own
//!   per-work `GWork::inputs` Vec and per-batch bookkeeping). This is the
//!   deterministic "allocation-free steady state" criterion;
//! * speedup: normalized throughput must beat the committed pre-refactor
//!   baseline by at least 1.15x (measured speedup is ~1.5-1.8x; the gate
//!   sits below the machine-noise band so CI does not flake);
//! * regression: normalized throughput must not drop more than 20% below
//!   the last committed `BENCH_throughput.json` entry;
//! * metrics: both paths re-run with the live metrics plane attached must
//!   stay inside the same allocation budgets and cost at most 5% of the
//!   dark-path throughput. The dark runs themselves are the
//!   disabled-is-zero-cost check — they never touch the plane.

use gflink_bench::{header, jobj, row, write_results};
use gflink_core::{
    BatchConfig, CompletedWork, GWork, GpuManager, GpuWorkerConfig, JobId, TransferConfig, WorkBuf,
};
use gflink_gpu::{GpuModel, KernelArgs, KernelId, KernelProfile, KernelRegistry};
use gflink_memory::HBuffer;
use gflink_sim::{Metrics, SimTime};
use parking_lot::Mutex;
use std::sync::Arc;
use std::time::Instant;

/// Pre-refactor baseline, measured at the parent of the hot-path refactor
/// commit with `GFLINK_BENCH_BASELINE=1` on an otherwise idle core. The
/// absolute GWorks/sec are recorded for the curious; the *normalized*
/// values (GWorks/sec divided by calibration ops/sec on the same machine)
/// are what the speedup gate compares, so the gate holds on slower CI
/// runners.
mod baseline {
    /// Scheduled GWorks/sec, batching off (absolute, reference machine).
    pub const SOLO_GWORKS_PER_SEC: f64 = 497_000.0;
    /// Scheduled GWorks/sec, fused batching on (absolute, reference machine).
    pub const FUSED_GWORKS_PER_SEC: f64 = 498_000.0;
    /// Calibration ops/sec on the reference machine.
    pub const CALIB_OPS_PER_SEC: f64 = 19_900_000.0;
    /// Allocations per scheduled GWork the pre-refactor solo path paid
    /// (HashMap flight tables, per-flight Vecs, fresh result buffers).
    pub const SOLO_ALLOCS_PER_WORK: f64 = 15.04;
}

/// Enforced gate floors (see module docs). The throughput floor is set
/// below the observed machine-noise band on purpose: the deterministic
/// allocation gate is the primary steady-state criterion, the throughput
/// floor only catches gross regressions.
mod gates {
    pub const MIN_SPEEDUP: f64 = 1.15;
    pub const MAX_SOLO_ALLOCS_PER_WORK: f64 = 2.0;
    pub const MAX_FUSED_ALLOCS_PER_WORK: f64 = 4.0;
    /// The metrics plane may cost at most this fraction of throughput when
    /// enabled — its hot path is interned atomic handles, so the steady
    /// state should be within noise of the dark path.
    pub const MAX_METRICS_OVERHEAD: f64 = 0.05;
}

/// Counting allocator: heap allocations are the cost the hot-path refactor
/// removes, so the bench reports allocations per scheduled GWork alongside
/// throughput (the acceptance metric for "allocation-free steady state").
/// Relaxed counters; negligible overhead next to the allocation itself.
struct CountingAlloc;

static ALLOCS: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

// SAFETY: delegates verbatim to `System`; the counter is a relaxed atomic.
unsafe impl std::alloc::GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: std::alloc::Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        unsafe { std::alloc::System.alloc(layout) }
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: std::alloc::Layout) {
        unsafe { std::alloc::System.dealloc(ptr, layout) }
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: std::alloc::Layout, new: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        unsafe { std::alloc::System.realloc(ptr, layout, new) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

const JOB: JobId = JobId(1);
/// Works submitted per submit/drain round.
const WORKS_PER_ROUND: usize = 512;
/// Floats per work — tiny on purpose; bookkeeping must dominate.
const N_FLOATS: usize = 16;

fn registry() -> Arc<Mutex<KernelRegistry>> {
    let mut reg = KernelRegistry::new();
    reg.register("bumpScale", |args: &mut KernelArgs<'_, '_>| {
        let n = args.n_actual;
        let input = args.inputs[0];
        let out = &mut args.outputs[0];
        for i in 0..n {
            out.write_f32(i * 4, input.read_f32(i * 4) * 2.0);
        }
        KernelProfile::new(args.n_logical as f64, args.n_logical as f64 * 8.0)
    });
    Arc::new(Mutex::new(reg))
}

fn manager(batch: BatchConfig) -> (GpuManager, KernelId) {
    let reg = registry();
    let id = reg.lock().resolve("bumpScale").expect("registered above");
    let m = GpuManager::new(
        0,
        GpuWorkerConfig {
            models: vec![GpuModel::TeslaC2050, GpuModel::TeslaC2050],
            transfer: TransferConfig {
                batch,
                ..TransferConfig::default()
            },
            ..GpuWorkerConfig::default()
        },
        reg,
    );
    (m, id)
}

/// Operator-shared GWork fields, mirroring a built `GpuMapSpec`: names and
/// params are interned `Arc`s, the kernel id resolved once.
struct SharedSpec {
    name: Arc<str>,
    execute_name: Arc<str>,
    ptx_path: Arc<str>,
    params: Arc<[f64]>,
    kernel: KernelId,
}

/// One tiny GWork, built the way the `gpu_map_partition` producer builds
/// blocks: per-work name/kernel/params cloned off a shared spec (pointer
/// bumps, not string copies). The input buffer is shared (`Arc`), as for a
/// cached dataset.
fn mk_work(spec: &SharedSpec, input: &Arc<HBuffer>, tag: (u32, u32)) -> GWork {
    GWork {
        name: Arc::clone(&spec.name),
        execute_name: Arc::clone(&spec.execute_name),
        kernel: spec.kernel,
        ptx_path: Arc::clone(&spec.ptx_path),
        block_size: 256,
        grid_size: 1,
        inputs: vec![WorkBuf::transient(Arc::clone(input), (N_FLOATS * 4) as u64)],
        out_actual_bytes: N_FLOATS * 4,
        out_logical_bytes: (N_FLOATS * 4) as u64,
        out_records: N_FLOATS,
        params: Arc::clone(&spec.params),
        n_actual: N_FLOATS,
        n_logical: N_FLOATS as u64,
        coalescing: 1.0,
        tag,
    }
}

fn digest_of(done: &[CompletedWork]) -> f64 {
    done.iter()
        .map(|w| {
            let mut s = 0.0f64;
            for i in 0..N_FLOATS {
                s += w.output.read_f32(i * 4) as f64;
            }
            s
        })
        .sum()
}

struct PathResult {
    gworks_per_sec: f64,
    works: u64,
    rounds: u64,
    digest_per_work: f64,
    allocs_per_work: f64,
}

/// Submit/drain rounds of tiny works until at least `min_elapsed` of wall
/// clock has been timed (after one untimed warmup round), returning
/// scheduled GWorks per wall-clock second. With `metrics`, the manager
/// runs with the live metrics plane attached — the enabled-overhead path
/// the metrics gates measure; without, the plane stays dark (the default
/// zero-cost configuration the solo/fused allocation gates certify).
fn run_path(batch: BatchConfig, min_elapsed: f64, metrics: Option<&Metrics>) -> PathResult {
    let input = {
        let mut b = HBuffer::zeroed(N_FLOATS * 4);
        for i in 0..N_FLOATS {
            b.write_f32(i * 4, (i + 1) as f32);
        }
        Arc::new(b)
    };
    let (mut m, kernel) = manager(batch);
    if let Some(mx) = metrics {
        m.set_metrics(mx);
    }
    let spec = SharedSpec {
        name: "thr".into(),
        execute_name: "bumpScale".into(),
        ptx_path: "/bump.ptx".into(),
        params: Arc::from([]),
        kernel,
    };
    m.begin_job(JOB);

    // Warmup: pools, free lists and queue capacity reach steady state.
    for i in 0..WORKS_PER_ROUND {
        m.submit_for(JOB, mk_work(&spec, &input, (0, i as u32)), SimTime::ZERO);
    }
    let warm = m.drain_job(JOB);
    assert_eq!(warm.len(), WORKS_PER_ROUND);
    let digest_per_work = digest_of(&warm) / WORKS_PER_ROUND as f64;

    let mut works = 0u64;
    let mut rounds = 0u64;
    let allocs_at_start = ALLOCS.load(std::sync::atomic::Ordering::Relaxed);
    let start = Instant::now();
    loop {
        let round = rounds + 1;
        for i in 0..WORKS_PER_ROUND {
            m.submit_for(
                JOB,
                mk_work(&spec, &input, (round as u32, i as u32)),
                SimTime::ZERO,
            );
        }
        let done = m.drain_job(JOB);
        assert_eq!(done.len(), WORKS_PER_ROUND);
        let d = digest_of(&done);
        assert_eq!(
            d.to_bits(),
            (digest_per_work * WORKS_PER_ROUND as f64).to_bits(),
            "round digest drifted"
        );
        works += WORKS_PER_ROUND as u64;
        rounds += 1;
        if start.elapsed().as_secs_f64() >= min_elapsed && rounds >= 3 {
            break;
        }
    }
    let elapsed = start.elapsed().as_secs_f64();
    let allocs = ALLOCS.load(std::sync::atomic::Ordering::Relaxed) - allocs_at_start;
    PathResult {
        gworks_per_sec: works as f64 / elapsed,
        works,
        rounds,
        digest_per_work,
        allocs_per_work: allocs as f64 / works as f64,
    }
}

/// Machine-speed proxy: ops/sec of a boxed binary-heap churn loop —
/// allocation plus heap sift, the primitive costs the pre-refactor hot
/// path pays per work. Refactor-independent (it never touches gflink
/// code), so normalized throughput is comparable across machines.
fn calibrate() -> f64 {
    let mut heap = std::collections::BinaryHeap::new();
    let mut x = 0x9e37_79b9_7f4a_7c15u64;
    let mut ops = 0u64;
    let start = Instant::now();
    loop {
        for _ in 0..4096 {
            x = x
                .wrapping_mul(6_364_136_223_846_793_005)
                .wrapping_add(1_442_695_040_888_963_407);
            heap.push(Box::new(x));
            if heap.len() > 256 {
                std::hint::black_box(heap.pop());
            }
        }
        ops += 4096;
        if start.elapsed().as_secs_f64() >= 0.25 {
            break;
        }
    }
    ops as f64 / start.elapsed().as_secs_f64()
}

/// Last committed trajectory entry's normalized throughputs, parsed from
/// `BENCH_throughput.json` (one JSON object per line). Hand-rolled — the
/// image ships no serde; the file is machine-written so a flat key scan is
/// enough.
fn committed_normalized(text: &str) -> Option<(f64, f64)> {
    let line = text.lines().rev().find(|l| !l.trim().is_empty())?;
    let grab = |key: &str| -> Option<f64> {
        let at = line.find(&format!("\"{key}\":"))?;
        let rest = &line[at + key.len() + 3..];
        let end = rest.find([',', '}']).unwrap_or(rest.len());
        rest[..end].trim().parse::<f64>().ok()
    };
    Some((grab("norm_solo")?, grab("norm_fused")?))
}

fn main() {
    header(
        "Harness throughput: scheduled GWorks/sec on one core",
        "1 worker x 2 GPUs x 4 streams, 512 tiny works (16 f32) per \
         submit/drain round; wall-clock, not simulated time",
    );

    let baseline_mode = std::env::var("GFLINK_BENCH_BASELINE").is_ok_and(|v| v == "1");
    let calib = calibrate();
    let solo = run_path(BatchConfig::default(), 1.0, None);
    let fused = run_path(BatchConfig::enabled(), 1.0, None);
    assert_eq!(
        solo.digest_per_work.to_bits(),
        fused.digest_per_work.to_bits(),
        "fused path must be digest-identical to solo"
    );

    // The same two paths with the metrics plane live: counters, gauges and
    // histograms feed on every work, so the delta against the dark runs is
    // the plane's whole steady-state cost.
    let m_solo_reg = Metrics::new(Metrics::DEFAULT_CADENCE);
    let m_solo = run_path(BatchConfig::default(), 1.0, Some(&m_solo_reg));
    let m_fused_reg = Metrics::new(Metrics::DEFAULT_CADENCE);
    let m_fused = run_path(BatchConfig::enabled(), 1.0, Some(&m_fused_reg));
    assert_eq!(
        solo.digest_per_work.to_bits(),
        m_solo.digest_per_work.to_bits(),
        "the metrics plane must not change results"
    );
    assert!(
        m_solo_reg.export_prometheus().contains("gflink_"),
        "the enabled run must actually feed the registry"
    );
    let overhead_solo = 1.0 - m_solo.gworks_per_sec / solo.gworks_per_sec;
    let overhead_fused = 1.0 - m_fused.gworks_per_sec / fused.gworks_per_sec;

    let norm_solo = solo.gworks_per_sec / calib;
    let norm_fused = fused.gworks_per_sec / calib;
    let base_norm_solo = baseline::SOLO_GWORKS_PER_SEC / baseline::CALIB_OPS_PER_SEC;
    let base_norm_fused = baseline::FUSED_GWORKS_PER_SEC / baseline::CALIB_OPS_PER_SEC;
    let speedup_solo = if base_norm_solo > 0.0 {
        norm_solo / base_norm_solo
    } else {
        f64::NAN
    };
    let speedup_fused = if base_norm_fused > 0.0 {
        norm_fused / base_norm_fused
    } else {
        f64::NAN
    };

    row(&[
        "path".into(),
        "GWorks/s".into(),
        "works".into(),
        "rounds".into(),
        "allocs/work".into(),
        "normalized".into(),
        "vs baseline".into(),
    ]);
    row(&[
        "solo".into(),
        format!("{:.0}", solo.gworks_per_sec),
        format!("{}", solo.works),
        format!("{}", solo.rounds),
        format!("{:.2}", solo.allocs_per_work),
        format!("{norm_solo:.4}"),
        format!("{speedup_solo:.2}x"),
    ]);
    row(&[
        "fused".into(),
        format!("{:.0}", fused.gworks_per_sec),
        format!("{}", fused.works),
        format!("{}", fused.rounds),
        format!("{:.2}", fused.allocs_per_work),
        format!("{norm_fused:.4}"),
        format!("{speedup_fused:.2}x"),
    ]);
    row(&[
        "solo+metrics".into(),
        format!("{:.0}", m_solo.gworks_per_sec),
        format!("{}", m_solo.works),
        format!("{}", m_solo.rounds),
        format!("{:.2}", m_solo.allocs_per_work),
        format!("{:.4}", m_solo.gworks_per_sec / calib),
        format!("{:+.1}% cost", 100.0 * overhead_solo),
    ]);
    row(&[
        "fused+metrics".into(),
        format!("{:.0}", m_fused.gworks_per_sec),
        format!("{}", m_fused.works),
        format!("{}", m_fused.rounds),
        format!("{:.2}", m_fused.allocs_per_work),
        format!("{:.4}", m_fused.gworks_per_sec / calib),
        format!("{:+.1}% cost", 100.0 * overhead_fused),
    ]);
    println!("(calibration: {calib:.0} boxed-heap ops/s on this machine)");

    let entry = jobj! {
        "bench": "harness_throughput",
        "works_per_round": WORKS_PER_ROUND,
        "floats_per_work": N_FLOATS,
        "calib_ops_per_sec": calib,
        "solo_gworks_per_sec": solo.gworks_per_sec,
        "fused_gworks_per_sec": fused.gworks_per_sec,
        "solo_allocs_per_work": solo.allocs_per_work,
        "fused_allocs_per_work": fused.allocs_per_work,
        "norm_solo": norm_solo,
        "norm_fused": norm_fused,
        "baseline_solo_gworks_per_sec": baseline::SOLO_GWORKS_PER_SEC,
        "baseline_fused_gworks_per_sec": baseline::FUSED_GWORKS_PER_SEC,
        "baseline_calib_ops_per_sec": baseline::CALIB_OPS_PER_SEC,
        "speedup_solo": speedup_solo,
        "speedup_fused": speedup_fused,
        "metrics_solo_gworks_per_sec": m_solo.gworks_per_sec,
        "metrics_fused_gworks_per_sec": m_fused.gworks_per_sec,
        "metrics_solo_allocs_per_work": m_solo.allocs_per_work,
        "metrics_fused_allocs_per_work": m_fused.allocs_per_work,
        "metrics_overhead_solo": overhead_solo,
        "metrics_overhead_fused": overhead_fused,
    };
    write_results("harness_throughput", &entry);

    let root = concat!(env!("CARGO_MANIFEST_DIR"), "/../..");
    let trajectory_path = format!("{root}/BENCH_throughput.json");
    let committed = std::fs::read_to_string(&trajectory_path).unwrap_or_default();

    if baseline_mode {
        println!("(baseline mode: gates skipped)");
    } else {
        assert!(
            solo.allocs_per_work <= gates::MAX_SOLO_ALLOCS_PER_WORK,
            "allocation gate: solo path pays {:.2} allocs per scheduled \
             GWork (pre-refactor: {:.2}; gate: {:.1})",
            solo.allocs_per_work,
            baseline::SOLO_ALLOCS_PER_WORK,
            gates::MAX_SOLO_ALLOCS_PER_WORK
        );
        assert!(
            fused.allocs_per_work <= gates::MAX_FUSED_ALLOCS_PER_WORK,
            "allocation gate: fused path pays {:.2} allocs per scheduled \
             GWork (gate: {:.1})",
            fused.allocs_per_work,
            gates::MAX_FUSED_ALLOCS_PER_WORK
        );
        // The metrics plane must stay inside the same allocation budget —
        // its per-work feeds are interned atomic handles, not fresh heap —
        // and within the overhead ceiling of the dark runs.
        assert!(
            m_solo.allocs_per_work <= gates::MAX_SOLO_ALLOCS_PER_WORK,
            "metrics allocation gate: solo-with-metrics pays {:.2} allocs \
             per scheduled GWork (gate: {:.1})",
            m_solo.allocs_per_work,
            gates::MAX_SOLO_ALLOCS_PER_WORK
        );
        assert!(
            m_fused.allocs_per_work <= gates::MAX_FUSED_ALLOCS_PER_WORK,
            "metrics allocation gate: fused-with-metrics pays {:.2} allocs \
             per scheduled GWork (gate: {:.1})",
            m_fused.allocs_per_work,
            gates::MAX_FUSED_ALLOCS_PER_WORK
        );
        assert!(
            overhead_solo <= gates::MAX_METRICS_OVERHEAD,
            "metrics overhead gate: the enabled plane costs {:.1}% of solo \
             throughput (gate: {:.0}%)",
            100.0 * overhead_solo,
            100.0 * gates::MAX_METRICS_OVERHEAD
        );
        assert!(
            overhead_fused <= gates::MAX_METRICS_OVERHEAD,
            "metrics overhead gate: the enabled plane costs {:.1}% of fused \
             throughput (gate: {:.0}%)",
            100.0 * overhead_fused,
            100.0 * gates::MAX_METRICS_OVERHEAD
        );
        assert!(
            speedup_solo >= gates::MIN_SPEEDUP,
            "solo throughput regressed to {speedup_solo:.2}x the pre-refactor \
             baseline (normalized {norm_solo:.4} vs baseline {base_norm_solo:.4})"
        );
        assert!(
            speedup_fused >= gates::MIN_SPEEDUP,
            "fused throughput regressed to {speedup_fused:.2}x the pre-refactor \
             baseline (normalized {norm_fused:.4} vs baseline {base_norm_fused:.4})"
        );
        if let Some((solo_ref, fused_ref)) = committed_normalized(&committed) {
            assert!(
                norm_solo >= 0.8 * solo_ref,
                "regression gate: normalized solo throughput {norm_solo:.4} \
                 dropped >20% below committed {solo_ref:.4}"
            );
            assert!(
                norm_fused >= 0.8 * fused_ref,
                "regression gate: normalized fused throughput {norm_fused:.4} \
                 dropped >20% below committed {fused_ref:.4}"
            );
            println!(
                "(regression gate: solo {:.0}% / fused {:.0}% of committed trajectory)",
                100.0 * norm_solo / solo_ref,
                100.0 * norm_fused / fused_ref
            );
        } else {
            println!("(no committed BENCH_throughput.json entry; regression gate idle)");
        }
    }

    // Append this run to the trajectory file (one JSON object per line).
    let mut text = committed;
    if !text.is_empty() && !text.ends_with('\n') {
        text.push('\n');
    }
    text.push_str(&entry.render());
    text.push('\n');
    let _ = std::fs::write(&trajectory_path, text);
}

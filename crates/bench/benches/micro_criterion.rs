//! Criterion microbenchmarks of the engine primitives (real wall-clock
//! time, not simulated time): memory pool churn, layout conversion, the
//! baseline serializer, GPU cache operations, timeline reservations and the
//! event queue. These are the hot paths of the simulation itself.

use criterion::{criterion_group, Criterion};
use gflink_core::{CacheKey, CachePolicy, GpuCache};
use gflink_gpu::DeviceMemory;
use gflink_memory::{
    decode_records, encode_records, AlignClass, DataLayout, FieldDef, FieldValue, GStructDef,
    HBuffer, MemoryPool, PrimType, Record, RecordView,
};
use gflink_sim::{EventQueue, SimTime, Timeline};
use std::hint::black_box;

fn point_def() -> GStructDef {
    GStructDef::new(
        "Point",
        AlignClass::Align8,
        vec![
            FieldDef::scalar("x", PrimType::U32),
            FieldDef::scalar("y", PrimType::F64),
            FieldDef::scalar("z", PrimType::F32),
        ],
    )
}

fn bench_pool(c: &mut Criterion) {
    c.bench_function("pool_alloc_free", |b| {
        let mut pool = MemoryPool::with_page_size(64, 32 * 1024);
        b.iter(|| {
            let p = pool.alloc().unwrap();
            black_box(pool.page(&p).len());
            pool.free(p).unwrap();
        });
    });
}

fn bench_layout_convert(c: &mut Criterion) {
    let def = point_def();
    let n = 1024;
    let mut src_buf = HBuffer::zeroed(RecordView::required_bytes(&def, DataLayout::Aos, n));
    {
        let mut v = RecordView::new(&mut src_buf, &def, DataLayout::Aos, n);
        for i in 0..n {
            v.set_u64(i, 0, 0, i as u64);
            v.set_f64(i, 1, 0, i as f64);
            v.set_f64(i, 2, 0, -(i as f64));
        }
    }
    c.bench_function("layout_aos_to_soa_1k", |b| {
        let mut dst_buf = HBuffer::zeroed(RecordView::required_bytes(&def, DataLayout::Soa, n));
        b.iter(|| {
            let src = RecordView::new(&mut src_buf, &def, DataLayout::Aos, n);
            let mut dst = RecordView::new(&mut dst_buf, &def, DataLayout::Soa, n);
            src.convert_into(&mut dst);
            black_box(dst_buf.read_f64(16));
        });
    });
}

fn bench_serializer(c: &mut Criterion) {
    let recs: Vec<Record> = (0..256)
        .map(|i| {
            vec![
                FieldValue::U32(i as u32),
                FieldValue::F64(i as f64),
                FieldValue::F32(-(i as f32)),
            ]
        })
        .collect();
    c.bench_function("serializer_roundtrip_256", |b| {
        b.iter(|| {
            let bytes = encode_records(black_box(&recs));
            black_box(decode_records(&bytes).unwrap());
        });
    });
}

fn bench_cache(c: &mut Criterion) {
    c.bench_function("gpu_cache_lookup_insert", |b| {
        let mut dmem = DeviceMemory::new(1 << 30);
        let mut cache = GpuCache::new(1 << 20, CachePolicy::Fifo);
        let mut i = 0u32;
        b.iter(|| {
            let key = CacheKey {
                dataset: 1,
                partition: 0,
                block: i % 128,
            };
            if cache.lookup(key).is_none() {
                let (evicted, may_insert) = cache.make_room(8192);
                for d in evicted {
                    let _ = dmem.release(d);
                }
                if may_insert {
                    let dev = dmem.alloc(8192, 8).unwrap();
                    let _ = cache.insert(key, dev, 8192);
                }
            }
            i = i.wrapping_add(1);
        });
    });
}

fn bench_timeline(c: &mut Criterion) {
    c.bench_function("timeline_reserve", |b| {
        let mut tl = Timeline::new();
        b.iter(|| {
            black_box(tl.reserve(SimTime::ZERO, SimTime::from_nanos(10)));
        });
    });
}

fn bench_event_queue(c: &mut Criterion) {
    c.bench_function("event_queue_push_pop_64", |b| {
        b.iter(|| {
            let mut q = EventQueue::new();
            for i in 0..64u64 {
                q.schedule(SimTime::from_nanos((i * 7919) % 1000), i);
            }
            while let Some(e) = q.pop() {
                black_box(e);
            }
        });
    });
}

criterion_group!(
    benches,
    bench_pool,
    bench_layout_convert,
    bench_serializer,
    bench_cache,
    bench_timeline,
    bench_event_queue
);

// These are real wall-clock numbers (machine-dependent), so only the
// benchmark inventory is exported to `results/` — the measurements stay on
// stdout. The summary keeps the artifact set uniform across harnesses.
fn main() {
    // `cargo test` runs bench binaries with --test; nothing to do.
    if std::env::args().any(|a| a == "--test") {
        return;
    }
    benches();
    gflink_bench::write_results(
        "micro_criterion",
        &gflink_bench::Json::Obj(vec![(
            "benchmarks".to_string(),
            gflink_bench::Json::Arr(
                [
                    "pool_alloc_free",
                    "layout_aos_to_soa_1k",
                    "serializer_roundtrip_256",
                    "gpu_cache_lookup_insert",
                    "timeline_reserve",
                    "event_queue_push_pop_64",
                ]
                .iter()
                .map(|&n| gflink_bench::Json::from(n))
                .collect(),
            ),
        )]),
    );
}

//! Table 1: the benchmark suite and its input sizes.
//!
//! Regenerates the paper's Table 1 and validates each workload generator by
//! materializing a sample and printing its statistics.

use gflink_apps::{concomp, kmeans, linreg, pagerank, spmv, wordcount, Setup};
use gflink_bench::{header, jobj, row, write_results, Json};

fn main() {
    header("Table 1", "Benchmarks from HiBench (+ Flink examples)");
    row(&[
        "benchmark".into(),
        "data sizes (paper)".into(),
        "elem bytes".into(),
        "kind".into(),
    ]);
    row(&[
        "KMeans".into(),
        "150, 180, 210, 240, 270 (million points)".into(),
        format!("{}", kmeans::POINT_BYTES),
        "iterative".into(),
    ]);
    row(&[
        "PageRank".into(),
        "5, 10, 15, 20, 25 (million pages)".into(),
        format!("{}", pagerank::ADJ_PAIR_BYTES),
        "iterative".into(),
    ]);
    row(&[
        "WordCount".into(),
        "24, 32, 40, 48, 56 (GB)".into(),
        format!("{}", wordcount::WORD_BYTES),
        "batch".into(),
    ]);
    row(&[
        "ComponentConnect".into(),
        "5, 10, 15, 20, 25 (million pages)".into(),
        format!("{}", concomp::ADJ_PAIR_BYTES),
        "iterative".into(),
    ]);
    row(&[
        "LinearRegression".into(),
        "150, 180, 210, 240, 270 (million points)".into(),
        format!("{}", linreg::SAMPLE_BYTES),
        "iterative".into(),
    ]);
    row(&[
        "SpMV".into(),
        "2, 4, 8, 16, 32 (GB)".into(),
        format!("{} per row (NNZ={})", spmv::ROW_BYTES, spmv::NNZ),
        "iterative".into(),
    ]);

    header("Table 1b", "generator sanity (materialized samples)");
    let setup = Setup::standard(2);
    let km = kmeans::Params::paper(150, &setup);
    row(&[
        "kmeans".into(),
        format!("logical={} actual={}", km.n_logical, km.n_actual),
        format!(
            "input file = {:.1} GB logical",
            km.n_logical as f64 * kmeans::POINT_BYTES / 1e9
        ),
    ]);
    let pr = pagerank::Params::paper(5, &setup);
    row(&[
        "pagerank".into(),
        format!("logical={} actual={}", pr.n_logical, pr.n_actual),
        format!(
            "adjacency = {:.1} GB logical",
            pr.n_logical as f64 * pagerank::ADJ_PAIR_BYTES / 1e9
        ),
    ]);
    let wc = wordcount::Params::paper(24, &setup);
    row(&[
        "wordcount".into(),
        format!(
            "logical_words={} actual={}",
            wc.words_logical(),
            wc.words_actual
        ),
        format!("text = {:.0} GB logical", wc.bytes_logical as f64 / 1e9),
    ]);
    let sp = spmv::Params::paper(2, &setup);
    row(&[
        "spmv".into(),
        format!("rows_logical={} actual={}", sp.rows_logical, sp.rows_actual),
        format!(
            "matrix = {:.1} GB + vector {:.0} MB logical",
            sp.matrix_logical_bytes() as f64 / 1e9,
            sp.vector_logical_bytes() as f64 / 1e6
        ),
    ]);
    let cc = concomp::Params::paper(5, &setup);
    row(&[
        "concomp".into(),
        format!("logical={} actual={}", cc.n_logical, cc.n_actual),
        "same graph family as pagerank".into(),
    ]);
    let lr = linreg::Params::paper(150, &setup);
    row(&[
        "linreg".into(),
        format!("logical={} actual={}", lr.n_logical, lr.n_actual),
        format!("d = {}", linreg::D),
    ]);

    write_results(
        "table1_workloads",
        &Json::Arr(vec![
            jobj! { "app": "kmeans", "n_logical": km.n_logical, "n_actual": km.n_actual },
            jobj! { "app": "pagerank", "n_logical": pr.n_logical, "n_actual": pr.n_actual },
            jobj! {
                "app": "wordcount",
                "words_logical": wc.words_logical(),
                "words_actual": wc.words_actual,
                "bytes_logical": wc.bytes_logical,
            },
            jobj! { "app": "spmv", "rows_logical": sp.rows_logical, "rows_actual": sp.rows_actual },
            jobj! { "app": "concomp", "n_logical": cc.n_logical, "n_actual": cc.n_actual },
            jobj! { "app": "linreg", "n_logical": lr.n_logical, "n_actual": lr.n_actual },
        ]),
    );
}

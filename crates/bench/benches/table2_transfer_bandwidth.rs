//! Table 2: bandwidth of the transfer channel (host → device), GFlink vs a
//! native C implementation, for transfer sizes 2 KB – 1 MB.
//!
//! The paper's numbers are reproduced alongside the model's, with the
//! relative error per row. Both paths really execute: the bytes are pushed
//! through a `VirtualGpu` H2D copy and the effective bandwidth is computed
//! from the granted interval.

use gflink_bench::{header, jobj, row, write_results, Json};
use gflink_gpu::{GpuModel, TransferPath, VirtualGpu};
use gflink_memory::HBuffer;
use gflink_sim::SimTime;

/// Paper Table 2 (bytes, GFlink MB/s, native MB/s).
const PAPER: [(u64, f64, f64); 8] = [
    (2048, 776.398, 814.425),
    (4096, 1241.311, 1348.418),
    (16384, 2195.872, 2245.351),
    (32768, 2556.237, 2646.721),
    (131072, 2858.368, 2878.373),
    (262144, 2968.151, 2945.243),
    (524288, 2960.003, 2931.513),
    (1048576, 2973.701, 2963.532),
];

fn main() {
    header(
        "Table 2",
        "Bandwidth of transfer channel for host to device (Tesla C2050, PCIe 2.0)",
    );
    row(&[
        "bytes".into(),
        "GFlink model".into(),
        "GFlink paper".into(),
        "err%".into(),
        "native model".into(),
        "native paper".into(),
        "err%".into(),
    ]);
    let spec = GpuModel::TeslaC2050.spec();
    let gflink = TransferPath::gflink(&spec);
    let native = TransferPath::native(&spec);
    let mut results = Vec::new();
    for &(bytes, paper_g, paper_n) in &PAPER {
        let g = gflink.effective_bandwidth(bytes) / 1e6;
        let n = native.effective_bandwidth(bytes) / 1e6;
        results.push(jobj! {
            "bytes": bytes,
            "gflink_model_mbs": g,
            "gflink_paper_mbs": paper_g,
            "native_model_mbs": n,
            "native_paper_mbs": paper_n,
        });
        row(&[
            format!("{bytes}"),
            format!("{g:.1} MB/s"),
            format!("{paper_g:.1} MB/s"),
            format!("{:+.1}", (g - paper_g) / paper_g * 100.0),
            format!("{n:.1} MB/s"),
            format!("{paper_n:.1} MB/s"),
            format!("{:+.1}", (n - paper_n) / paper_n * 100.0),
        ]);
    }

    // End-to-end check: the same numbers fall out of a real device copy
    // (engine reservation), not just the closed-form path.
    header(
        "Table 2b",
        "cross-check via VirtualGpu copy engine reservations",
    );
    let mut gpu = VirtualGpu::new(0, GpuModel::TeslaC2050);
    let mut cursor = SimTime::ZERO;
    for &(bytes, _, _) in &PAPER {
        let host = HBuffer::zeroed(64);
        let dev = gpu.dmem.alloc(bytes, 64).unwrap();
        let r = gpu.copy_h2d(cursor, bytes, &host, dev).unwrap();
        let bw = bytes as f64 / r.duration().as_secs_f64() / 1e6;
        row(&[format!("{bytes}"), format!("{bw:.1} MB/s")]);
        cursor = r.end;
        gpu.dmem.release(dev).unwrap();
    }
    write_results("table2_transfer_bandwidth", &Json::Arr(results));
}

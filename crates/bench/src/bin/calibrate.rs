//! Calibration runner: prints the paper-shape summary for every workload at
//! representative sizes so the cost-model constants can be tuned against
//! the target bands (see DESIGN.md §5).
//!
//! Run with `cargo run --release -p gflink-bench --bin calibrate`.

use gflink_apps::{concomp, kmeans, linreg, pagerank, pointadd, spmv, wordcount, AppRun, Setup};
use gflink_sim::Phase;

fn report(app: &str, size: &str, cpu: &AppRun, gpu: &AppRun) {
    let sp = cpu.total_secs() / gpu.total_secs();
    println!(
        "{app:<14} {size:<10} flink {:>8.2}s  gflink {:>8.2}s  speedup {sp:>5.2}x   (cpu: map {:.0}% io {:.0}% shuf {:.0}% red {:.0}%)",
        cpu.total_secs(),
        gpu.total_secs(),
        cpu.report.acct.fraction(Phase::Map) * 100.0,
        cpu.report.acct.fraction(Phase::Io) * 100.0,
        cpu.report.acct.fraction(Phase::Shuffle) * 100.0,
        cpu.report.acct.fraction(Phase::Reduce) * 100.0,
    );
    let g = &gpu.report.acct;
    println!(
        "{:<25} gpu breakdown: map {:.1}s (k {:.1}s h2d {:.1}s d2h {:.1}s) io {:.1}s shuf {:.1}s red {:.1}s sched {:.1}s sub {:.1}s",
        "",
        g.get(Phase::Map).as_secs_f64(),
        g.get(Phase::Kernel).as_secs_f64(),
        g.get(Phase::TransferH2D).as_secs_f64(),
        g.get(Phase::TransferD2H).as_secs_f64(),
        g.get(Phase::Io).as_secs_f64(),
        g.get(Phase::Shuffle).as_secs_f64(),
        g.get(Phase::Reduce).as_secs_f64(),
        g.get(Phase::Schedule).as_secs_f64(),
        g.get(Phase::Submit).as_secs_f64(),
    );
}

fn main() {
    let workers = 10;
    println!("== calibration: {workers} workers, 4 slots + 2x C2050 each ==");
    println!("target bands: kmeans 5x | pagerank 3.5x | wordcount 1.1x | spmv 6.3x | linreg 9.2x | concomp 4.8x");

    for (label, millions) in [("150M", 150u64), ("270M", 270u64)] {
        let s1 = Setup::standard(workers);
        let p = kmeans::Params::paper(millions, &s1);
        let cpu = kmeans::run_cpu(&s1, &p);
        let s2 = Setup::standard(workers);
        let gpu = kmeans::run_gpu(&s2, &p);
        report("kmeans", label, &cpu, &gpu);
    }
    for (label, millions) in [("150M", 150u64), ("270M", 270u64)] {
        let s1 = Setup::standard(workers);
        let p = linreg::Params::paper(millions, &s1);
        let cpu = linreg::run_cpu(&s1, &p);
        let s2 = Setup::standard(workers);
        let gpu = linreg::run_gpu(&s2, &p);
        report("linreg", label, &cpu, &gpu);
    }
    for (label, gb) in [("2GB", 2u64), ("32GB", 32u64)] {
        let s1 = Setup::standard(workers);
        let p = spmv::Params::paper(gb, &s1);
        let cpu = spmv::run_cpu(&s1, &p);
        let s2 = Setup::standard(workers);
        let gpu = spmv::run_gpu(&s2, &p);
        report("spmv", label, &cpu, &gpu);
    }
    for (label, m) in [("5M", 5u64), ("25M", 25u64)] {
        let s1 = Setup::standard(workers);
        let p = pagerank::Params::paper(m, &s1);
        let cpu = pagerank::run_cpu(&s1, &p);
        let s2 = Setup::standard(workers);
        let gpu = pagerank::run_gpu(&s2, &p);
        report("pagerank", label, &cpu, &gpu);
    }
    for (label, m) in [("5M", 5u64), ("25M", 25u64)] {
        let s1 = Setup::standard(workers);
        let p = concomp::Params::paper(m, &s1);
        let cpu = concomp::run_cpu(&s1, &p);
        let s2 = Setup::standard(workers);
        let gpu = concomp::run_gpu(&s2, &p);
        report("concomp", label, &cpu, &gpu);
    }
    for (label, gb) in [("24GB", 24u64), ("56GB", 56u64)] {
        let s1 = Setup::standard(workers);
        let p = wordcount::Params::paper(gb, &s1);
        let cpu = wordcount::run_cpu(&s1, &p);
        let s2 = Setup::standard(workers);
        let gpu = wordcount::run_gpu(&s2, &p);
        report("wordcount", label, &cpu, &gpu);
    }
    {
        let s1 = Setup::standard(1);
        let p = pointadd::Params::standard(&s1);
        let cpu = pointadd::run_cpu(&s1, &p);
        let s2 = Setup::standard(1);
        let gpu = pointadd::run_gpu(&s2, &p);
        report("pointadd", "100M", &cpu, &gpu);
    }
}

//! # gflink-bench
//!
//! Harnesses that regenerate every table and figure of the paper's
//! evaluation (§6). Each `cargo bench` target prints the same rows/series
//! the paper reports; `EXPERIMENTS.md` records the paper-vs-measured
//! comparison. This library holds the shared reporting helpers.

use gflink_apps::AppRun;
use gflink_sim::SimTime;

/// Print a figure/table header.
pub fn header(id: &str, caption: &str) {
    println!();
    println!("=== {id}: {caption} ===");
}

/// Format seconds with 2 decimals.
pub fn secs(t: SimTime) -> String {
    format!("{:.2}", t.as_secs_f64())
}

/// Compute speedup (CPU/GPU), guarding zero.
pub fn speedup(cpu: &AppRun, gpu: &AppRun) -> f64 {
    let g = gpu.total_secs();
    if g == 0.0 {
        f64::INFINITY
    } else {
        cpu.total_secs() / g
    }
}

/// A TSV row printer: columns joined by tabs.
pub fn row(cols: &[String]) {
    println!("{}", cols.join("\t"));
}

/// Median wall time of the named map phases in a run's job graph — the
/// steady-state per-iteration mapper time (the first occurrence overlaps
/// the HDFS read and is not representative).
pub fn median_map_wall(run: &AppRun, name_contains: &str) -> SimTime {
    let mut walls: Vec<SimTime> = run
        .report
        .graph
        .phases()
        .iter()
        .filter(|p| {
            matches!(p.kind, gflink_flink::graph::PhaseKind::Map) && p.name.contains(name_contains)
        })
        .map(|p| p.wall)
        .collect();
    walls.sort();
    walls.get(walls.len() / 2).copied().unwrap_or(SimTime::ZERO)
}

/// Per-iteration times the way the paper's Fig. 7 plots them: the job
/// prologue (submit + HDFS read) is folded into the first iteration and the
/// epilogue (result write) into the last — §6.6.1 explains both effects.
pub fn per_iteration_with_io(run: &AppRun) -> Vec<SimTime> {
    let mut iters = run.per_iteration.clone();
    if iters.is_empty() {
        return vec![run.report.total];
    }
    let in_loop: SimTime = iters.iter().copied().sum();
    // Everything outside the loop is prologue (submit + HDFS read): the
    // apps issue their result writes inside or right at the end of the last
    // iteration, and trailing sink metadata is negligible.
    let prologue = run.report.total.saturating_sub(in_loop);
    iters[0] += prologue;
    iters
}

/// Convenience: stringify any Display list.
#[macro_export]
macro_rules! cols {
    ($($x:expr),* $(,)?) => {
        &[$(format!("{}", $x)),*]
    };
}

/// Minimal JSON value for machine-readable results export. The image ships
/// no serde, so rendering is hand-rolled; numbers print with enough digits
/// to round-trip and non-finite values degrade to `null`.
#[derive(Clone, Debug)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (integers are exact up to 2^53).
    Num(f64),
    /// A string (escaped on render).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Render to compact JSON text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => {
                if n.is_finite() {
                    if *n == n.trunc() && n.abs() < 9.0e15 {
                        out.push_str(&format!("{}", *n as i64));
                    } else {
                        out.push_str(&format!("{n}"));
                    }
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => {
                out.push('"');
                for c in s.chars() {
                    match c {
                        '"' => out.push_str("\\\""),
                        '\\' => out.push_str("\\\\"),
                        '\n' => out.push_str("\\n"),
                        '\r' => out.push_str("\\r"),
                        '\t' => out.push_str("\\t"),
                        c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                        c => out.push(c),
                    }
                }
                out.push('"');
            }
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_into(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    Json::Str(k.clone()).render_into(out);
                    out.push(':');
                    v.render_into(out);
                }
                out.push('}');
            }
        }
    }
}

impl From<bool> for Json {
    fn from(v: bool) -> Self {
        Json::Bool(v)
    }
}
impl From<f64> for Json {
    fn from(v: f64) -> Self {
        Json::Num(v)
    }
}
impl From<u64> for Json {
    fn from(v: u64) -> Self {
        Json::Num(v as f64)
    }
}
impl From<usize> for Json {
    fn from(v: usize) -> Self {
        Json::Num(v as f64)
    }
}
impl From<i64> for Json {
    fn from(v: i64) -> Self {
        Json::Num(v as f64)
    }
}
impl From<u32> for Json {
    fn from(v: u32) -> Self {
        Json::Num(v as f64)
    }
}
impl From<&str> for Json {
    fn from(v: &str) -> Self {
        Json::Str(v.to_string())
    }
}
impl From<String> for Json {
    fn from(v: String) -> Self {
        Json::Str(v)
    }
}
impl From<SimTime> for Json {
    fn from(v: SimTime) -> Self {
        Json::Num(v.as_secs_f64())
    }
}
impl From<Vec<Json>> for Json {
    fn from(v: Vec<Json>) -> Self {
        Json::Arr(v)
    }
}

/// Build a [`Json::Obj`] from `"key": value` pairs; values go through
/// `Json::from`.
#[macro_export]
macro_rules! jobj {
    ($($k:literal : $v:expr),* $(,)?) => {
        $crate::Json::Obj(vec![$(($k.to_string(), $crate::Json::from($v))),*])
    };
}

/// Write a harness's machine-readable results to `results/<name>.json` at
/// the workspace root. Best-effort and silent: the printed tables are the
/// benches' stdout contract, so IO failures are swallowed rather than
/// polluting the output CI diffs against.
pub fn write_results(name: &str, value: &Json) {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/../../results");
    if std::fs::create_dir_all(dir).is_err() {
        return;
    }
    let mut text = value.render();
    text.push('\n');
    let _ = std::fs::write(format!("{dir}/{name}.json"), text);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn secs_formats() {
        assert_eq!(secs(SimTime::from_millis(1500)), "1.50");
    }

    #[test]
    fn json_renders_compact() {
        let v = jobj! {
            "app": "wordcount",
            "secs": 1.5,
            "works": 12u64,
            "ok": true,
            "series": Json::Arr(vec![Json::from(1u64), Json::Null]),
        };
        assert_eq!(
            v.render(),
            r#"{"app":"wordcount","secs":1.5,"works":12,"ok":true,"series":[1,null]}"#
        );
    }

    #[test]
    fn json_escapes_strings_and_guards_nonfinite() {
        let v = Json::Arr(vec![
            Json::from("a\"b\\c\nd"),
            Json::Num(f64::NAN),
            Json::Num(f64::INFINITY),
        ]);
        assert_eq!(v.render(), r#"["a\"b\\c\nd",null,null]"#);
    }

    #[test]
    fn json_integers_render_without_fraction() {
        assert_eq!(Json::from(3.0f64).render(), "3");
        assert_eq!(Json::from(0.25f64).render(), "0.25");
    }
}

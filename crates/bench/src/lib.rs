//! # gflink-bench
//!
//! Harnesses that regenerate every table and figure of the paper's
//! evaluation (§6). Each `cargo bench` target prints the same rows/series
//! the paper reports; `EXPERIMENTS.md` records the paper-vs-measured
//! comparison. This library holds the shared reporting helpers.

use gflink_apps::AppRun;
use gflink_sim::SimTime;

/// Print a figure/table header.
pub fn header(id: &str, caption: &str) {
    println!();
    println!("=== {id}: {caption} ===");
}

/// Format seconds with 2 decimals.
pub fn secs(t: SimTime) -> String {
    format!("{:.2}", t.as_secs_f64())
}

/// Compute speedup (CPU/GPU), guarding zero.
pub fn speedup(cpu: &AppRun, gpu: &AppRun) -> f64 {
    let g = gpu.total_secs();
    if g == 0.0 {
        f64::INFINITY
    } else {
        cpu.total_secs() / g
    }
}

/// A TSV row printer: columns joined by tabs.
pub fn row(cols: &[String]) {
    println!("{}", cols.join("\t"));
}

/// Median wall time of the named map phases in a run's job graph — the
/// steady-state per-iteration mapper time (the first occurrence overlaps
/// the HDFS read and is not representative).
pub fn median_map_wall(run: &AppRun, name_contains: &str) -> SimTime {
    let mut walls: Vec<SimTime> = run
        .report
        .graph
        .phases()
        .iter()
        .filter(|p| {
            matches!(p.kind, gflink_flink::graph::PhaseKind::Map) && p.name.contains(name_contains)
        })
        .map(|p| p.wall)
        .collect();
    walls.sort();
    walls.get(walls.len() / 2).copied().unwrap_or(SimTime::ZERO)
}

/// Per-iteration times the way the paper's Fig. 7 plots them: the job
/// prologue (submit + HDFS read) is folded into the first iteration and the
/// epilogue (result write) into the last — §6.6.1 explains both effects.
pub fn per_iteration_with_io(run: &AppRun) -> Vec<SimTime> {
    let mut iters = run.per_iteration.clone();
    if iters.is_empty() {
        return vec![run.report.total];
    }
    let in_loop: SimTime = iters.iter().copied().sum();
    // Everything outside the loop is prologue (submit + HDFS read): the
    // apps issue their result writes inside or right at the end of the last
    // iteration, and trailing sink metadata is negligible.
    let prologue = run.report.total.saturating_sub(in_loop);
    iters[0] += prologue;
    iters
}

/// Convenience: stringify any Display list.
#[macro_export]
macro_rules! cols {
    ($($x:expr),* $(,)?) => {
        &[$(format!("{}", $x)),*]
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn secs_formats() {
        assert_eq!(secs(SimTime::from_millis(1500)), "1.50");
    }
}

//! The GPU cache scheme (§4.2.2).
//!
//! Each job gets a cache *region* on every GPU, allocated at job start. A
//! hash table maps (dataset, partition, block) keys to device buffers; a
//! FIFO list orders entries for eviction. The paper describes two policies:
//!
//! * **FIFO** — when a new block does not fit, evict entries from the front
//!   of the FIFO list until it does;
//! * **StopWhenFull** — once the region is full, simply stop caching (the
//!   paper recommends this when one iteration's working set exceeds the
//!   region, where FIFO would thrash).
//!
//! `Disabled` exists for the Fig. 8a cache-off comparison.
//!
//! The cache tracks *logical* bytes; the device buffers it pins live in the
//! GPU's `DeviceMemory`, so cached bytes count against device capacity.

use crate::gwork::CacheKey;
use gflink_gpu::DevBufId;
use std::collections::{HashMap, VecDeque};

/// Cache management policy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CachePolicy {
    /// Evict in first-in-first-out order when the region is full.
    Fifo,
    /// Stop caching new blocks once the region is full.
    StopWhenFull,
    /// Never cache (baseline for Fig. 8a).
    Disabled,
}

/// One GPU's cache region for the running job.
#[derive(Debug)]
pub struct GpuCache {
    policy: CachePolicy,
    capacity: u64,
    used: u64,
    map: HashMap<CacheKey, (DevBufId, u64)>,
    fifo: VecDeque<CacheKey>,
    /// Pin counts: entries referenced by in-flight GWork may not be evicted
    /// (their device buffers are live kernel arguments).
    pins: HashMap<CacheKey, u32>,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl GpuCache {
    /// A cache region of `capacity` logical bytes under `policy`.
    pub fn new(capacity: u64, policy: CachePolicy) -> Self {
        GpuCache {
            policy,
            capacity,
            used: 0,
            map: HashMap::new(),
            fifo: VecDeque::new(),
            pins: HashMap::new(),
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    /// The configured policy.
    pub fn policy(&self) -> CachePolicy {
        self.policy
    }

    /// Region capacity in logical bytes.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Logical bytes currently cached.
    pub fn used(&self) -> u64 {
        self.used
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// (hits, misses, evictions) counters.
    pub fn stats(&self) -> (u64, u64, u64) {
        (self.hits, self.misses, self.evictions)
    }

    /// Look up `key`, recording a hit or miss. Disabled caches always miss.
    pub fn lookup(&mut self, key: CacheKey) -> Option<DevBufId> {
        if self.policy == CachePolicy::Disabled {
            self.misses += 1;
            return None;
        }
        match self.map.get(&key) {
            Some(&(dev, _)) => {
                self.hits += 1;
                Some(dev)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Peek without touching the hit/miss counters (used by the Alg. 5.1
    /// locality query).
    pub fn contains(&self, key: CacheKey) -> bool {
        self.policy != CachePolicy::Disabled && self.map.contains_key(&key)
    }

    /// Every resident entry as `(key, logical_bytes)`, sorted by key — a
    /// deterministic cache *manifest*, snapshotted into checkpoints so a
    /// restore (or a post-mortem) can see exactly what each region held.
    pub fn manifest(&self) -> Vec<(CacheKey, u64)> {
        let mut out: Vec<(CacheKey, u64)> = self
            .map
            .iter()
            .map(|(&k, &(_, bytes))| (k, bytes))
            .collect();
        out.sort_unstable_by_key(|&(k, _)| (k.dataset, k.partition, k.block));
        out
    }

    /// Logical bytes of `keys` resident in this cache — the quantity the
    /// GMemoryManager sums per GPU to pick the locality winner (Alg. 5.1).
    pub fn resident_bytes(&self, keys: &[CacheKey]) -> u64 {
        if self.policy == CachePolicy::Disabled {
            return 0;
        }
        keys.iter()
            .filter_map(|k| self.map.get(k).map(|&(_, b)| b))
            .sum()
    }

    /// Pin `key`: it may not be evicted until unpinned (its device buffer
    /// is an argument of an in-flight kernel).
    pub fn pin(&mut self, key: CacheKey) {
        *self.pins.entry(key).or_insert(0) += 1;
    }

    /// Release one pin on `key`.
    pub fn unpin(&mut self, key: CacheKey) {
        match self.pins.get_mut(&key) {
            Some(1) => {
                self.pins.remove(&key);
            }
            Some(n) => *n -= 1,
            None => {}
        }
    }

    fn is_pinned(&self, key: &CacheKey) -> bool {
        self.pins.contains_key(key)
    }

    /// Pop the oldest *unpinned* FIFO victim, if any.
    fn pop_victim(&mut self) -> Option<(CacheKey, DevBufId, u64)> {
        for _ in 0..self.fifo.len() {
            let key = self.fifo.pop_front()?;
            if self.is_pinned(&key) {
                self.fifo.push_back(key);
                continue;
            }
            let (dev, sz) = self.map.remove(&key).expect("fifo/map out of sync");
            return Some((key, dev, sz));
        }
        None
    }

    /// Decide whether a block of `bytes` may be inserted, evicting under
    /// FIFO as needed. Returns the device buffers the caller must release
    /// plus whether the insert may proceed (`false` = do not cache: policy
    /// forbids it or everything evictable is pinned).
    pub fn make_room(&mut self, bytes: u64) -> (Vec<DevBufId>, bool) {
        match self.policy {
            CachePolicy::Disabled => (Vec::new(), false),
            _ if bytes > self.capacity => (Vec::new(), false),
            CachePolicy::StopWhenFull => (Vec::new(), self.used + bytes <= self.capacity),
            CachePolicy::Fifo => {
                let mut evicted = Vec::new();
                while self.used + bytes > self.capacity {
                    match self.pop_victim() {
                        Some((_, dev, sz)) => {
                            self.used -= sz;
                            self.evictions += 1;
                            evicted.push(dev);
                        }
                        // Everything left is pinned: the freed buffers must
                        // still be released, but the block cannot be cached.
                        None => return (evicted, false),
                    }
                }
                (evicted, true)
            }
        }
    }

    /// Insert an entry after a successful [`GpuCache::make_room`]. Panics if
    /// the entry does not fit (callers must respect `make_room`).
    ///
    /// Re-inserting a live key returns the replaced entry's device buffer —
    /// the caller must release it, or device memory leaks.
    #[must_use = "a replaced entry's device buffer must be released"]
    pub fn insert(&mut self, key: CacheKey, dev: DevBufId, bytes: u64) -> Option<DevBufId> {
        assert!(
            self.policy != CachePolicy::Disabled,
            "insert into disabled cache"
        );
        assert!(
            self.used + bytes <= self.capacity,
            "cache overflow: make_room not called"
        );
        let replaced = self.map.insert(key, (dev, bytes)).map(|(old_dev, old)| {
            // Re-inserting an existing key: keep accounting consistent.
            self.used -= old;
            self.fifo.retain(|k| *k != key);
            old_dev
        });
        self.used += bytes;
        self.fifo.push_back(key);
        replaced
    }

    /// Re-budget the region to `capacity` logical bytes (cross-job cache
    /// partitioning), evicting oldest unpinned entries until the contents
    /// fit. Returns the device buffers the caller must release. Pinned
    /// overflow is tolerated — `used` may exceed the new capacity until the
    /// in-flight works unpin; `make_room` handles that state safely.
    #[must_use = "evicted entries' device buffers must be released"]
    pub fn set_capacity(&mut self, capacity: u64) -> Vec<DevBufId> {
        self.capacity = capacity;
        let mut freed = Vec::new();
        while self.used > self.capacity {
            match self.pop_victim() {
                Some((_, dev, sz)) => {
                    self.used -= sz;
                    self.evictions += 1;
                    freed.push(dev);
                }
                None => break,
            }
        }
        freed
    }

    /// Evict the oldest *unpinned* entry regardless of policy
    /// (memory-pressure path: a transient allocation needs device memory
    /// more than the cache does). Returns the device buffer to release, or
    /// `None` when empty or fully pinned.
    pub fn evict_one(&mut self) -> Option<DevBufId> {
        let (_, dev, sz) = self.pop_victim()?;
        self.used -= sz;
        self.evictions += 1;
        Some(dev)
    }

    /// Drop every entry, returning the device buffers to release (job end:
    /// "the cache region of a specific job ... is released when the job
    /// finishes").
    pub fn clear(&mut self) -> Vec<DevBufId> {
        assert!(
            self.pins.is_empty(),
            "clearing a cache with pinned entries (in-flight work)"
        );
        let devs = self.map.drain().map(|(_, (d, _))| d).collect();
        self.fifo.clear();
        self.used = 0;
        devs
    }

    /// Forget every entry — pinned or not — without returning device
    /// buffers. This is the device-loss path: the backing memory is already
    /// wiped, so the handles are dead, and in-flight works pinning entries
    /// are themselves being recovered (their later `unpin` calls are
    /// harmless no-ops). Returns how many entries were invalidated.
    pub fn invalidate_all(&mut self) -> usize {
        let n = self.map.len();
        self.map.clear();
        self.fifo.clear();
        self.pins.clear();
        self.used = 0;
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gflink_gpu::DeviceMemory;

    fn key(b: u32) -> CacheKey {
        CacheKey {
            dataset: 7,
            partition: 1,
            block: b,
        }
    }

    /// Allocate a real device buffer to pair with cache entries.
    fn dev(mem: &mut DeviceMemory, bytes: u64) -> DevBufId {
        mem.alloc(bytes, 8).unwrap()
    }

    #[test]
    fn fifo_evicts_oldest_first() {
        let mut mem = DeviceMemory::new(10_000);
        let mut c = GpuCache::new(100, CachePolicy::Fifo);
        for b in 0..4 {
            let d = dev(&mut mem, 30);
            let (evicted, ok) = c.make_room(30);
            assert!(ok);
            assert_eq!(evicted.len(), if b < 3 { 0 } else { 1 });
            assert_eq!(c.insert(key(b), d, 30), None);
        }
        // Blocks 1,2,3 remain; block 0 was evicted.
        assert!(!c.contains(key(0)));
        assert!(c.contains(key(1)));
        assert_eq!(c.used(), 90);
        assert_eq!(c.stats().2, 1);
    }

    #[test]
    fn stop_when_full_refuses_but_keeps_existing() {
        let mut mem = DeviceMemory::new(10_000);
        let mut c = GpuCache::new(100, CachePolicy::StopWhenFull);
        let d0 = dev(&mut mem, 60);
        assert!(c.make_room(60).1);
        let _ = c.insert(key(0), d0, 60);
        // Next block doesn't fit: refused, nothing evicted.
        assert_eq!(c.make_room(60), (vec![], false));
        assert!(c.contains(key(0)));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn disabled_cache_never_hits() {
        let mut c = GpuCache::new(1000, CachePolicy::Disabled);
        assert_eq!(c.make_room(10), (vec![], false));
        assert_eq!(c.lookup(key(0)), None);
        assert_eq!(c.resident_bytes(&[key(0)]), 0);
        assert_eq!(c.stats(), (0, 1, 0));
    }

    #[test]
    fn hits_and_misses_counted() {
        let mut mem = DeviceMemory::new(10_000);
        let mut c = GpuCache::new(100, CachePolicy::Fifo);
        assert_eq!(c.lookup(key(0)), None); // miss
        let d = dev(&mut mem, 10);
        assert!(c.make_room(10).1);
        let _ = c.insert(key(0), d, 10);
        assert_eq!(c.lookup(key(0)), Some(d)); // hit
        assert_eq!(c.stats(), (1, 1, 0));
    }

    #[test]
    fn resident_bytes_sums_only_present_keys() {
        let mut mem = DeviceMemory::new(10_000);
        let mut c = GpuCache::new(100, CachePolicy::Fifo);
        let d = dev(&mut mem, 40);
        assert!(c.make_room(40).1);
        let _ = c.insert(key(1), d, 40);
        assert_eq!(c.resident_bytes(&[key(0), key(1)]), 40);
    }

    #[test]
    fn oversized_block_never_cached() {
        let mut c = GpuCache::new(100, CachePolicy::Fifo);
        assert_eq!(c.make_room(101), (vec![], false));
    }

    #[test]
    fn pinned_entries_survive_eviction_pressure() {
        let mut mem = DeviceMemory::new(10_000);
        let mut c = GpuCache::new(100, CachePolicy::Fifo);
        let d0 = dev(&mut mem, 60);
        assert!(c.make_room(60).1);
        let _ = c.insert(key(0), d0, 60);
        c.pin(key(0));
        // Wants 60 more: key(0) is the only victim but pinned -> refused.
        let (evicted, ok) = c.make_room(60);
        assert!(evicted.is_empty());
        assert!(!ok);
        assert!(c.contains(key(0)));
        assert_eq!(c.evict_one(), None);
        // Unpin and the same request succeeds.
        c.unpin(key(0));
        let (evicted, ok) = c.make_room(60);
        assert_eq!(evicted.len(), 1);
        assert!(ok);
    }

    #[test]
    fn clear_returns_all_buffers() {
        let mut mem = DeviceMemory::new(10_000);
        let mut c = GpuCache::new(100, CachePolicy::Fifo);
        for b in 0..3 {
            let d = dev(&mut mem, 20);
            assert!(c.make_room(20).1);
            assert_eq!(c.insert(key(b), d, 20), None);
        }
        let devs = c.clear();
        assert_eq!(devs.len(), 3);
        assert!(c.is_empty());
        assert_eq!(c.used(), 0);
    }

    #[test]
    fn reinsert_same_key_updates_in_place() {
        let mut mem = DeviceMemory::new(10_000);
        let mut c = GpuCache::new(100, CachePolicy::Fifo);
        let d1 = dev(&mut mem, 30);
        assert!(c.make_room(30).1);
        assert_eq!(c.insert(key(0), d1, 30), None);
        let d2 = dev(&mut mem, 50);
        assert!(c.make_room(50).1);
        // The replaced entry's buffer comes back for release.
        assert_eq!(c.insert(key(0), d2, 50), Some(d1));
        assert_eq!(c.used(), 50);
        assert_eq!(c.len(), 1);
        assert_eq!(c.lookup(key(0)), Some(d2));
    }
}

//! Checkpoint/restore of job progress (the second recovery mode).
//!
//! PR 1's recovery machinery replays lost work from the live host copy —
//! adequate for single device loss, but a job that loses its whole worker
//! restarts from zero. This module adds externalized state in the spirit
//! of the paper's in-memory architecture: each live job's progress
//! frontier, completed block outputs, and per-GPU cache manifests are
//! periodically encoded into a [`JobSnapshot`] and written durably to the
//! simulated HDFS via [`gflink_hdfs::Hdfs::snapshot_at`] (CRC-checked
//! manifests, charged I/O). On resubmission after a crash, the driver
//! restores the newest snapshot and replays only the delta since it:
//! covered blocks are satisfied from the snapshot (counted as
//! `works_restored` in the fault ledger), uncovered blocks execute as
//! usual, and the double-entry invariant
//! `works_restored + completions == works submitted` proves nothing is
//! lost or duplicated across the restore boundary.
//!
//! Snapshots are keyed `<prefix>/<job>/op<seq>`, where `seq` is a per-job
//! operator-invocation counter — iterative jobs reuse operator *names*
//! every superstep, so the sequence number, not the name, is the identity.

use crate::config::CheckpointConfig;
use crate::gwork::CacheKey;
use gflink_hdfs::{Hdfs, HdfsError};
use gflink_sim::SimTime;
use std::collections::BTreeMap;

/// Magic prefix of an encoded snapshot ("GFlink ChecKpoint").
const MAGIC: &[u8; 4] = b"GFCK";
/// Encoding version; bumped on any layout change.
const VERSION: u32 = 1;

/// One completed block captured in a snapshot: the work's stable tag,
/// the emitted-record count (for selective operators), when it finished,
/// and its output bytes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SnapshotBlock {
    /// The work's `(partition, block)` tag — stable across attempts.
    pub tag: (u32, u32),
    /// `Some(n)` when the operator emitted a subset of its rows.
    pub emitted: Option<usize>,
    /// Simulated instant the block completed in the original run.
    pub completed_at: SimTime,
    /// The block's output bytes, verbatim.
    pub payload: Vec<u8>,
}

/// One resident cache entry captured in a snapshot: which device held
/// which block, and at what logical size — the CrystalGPU-style reuse
/// manifest that lets a restore (or an audit) see what device state the
/// checkpoint epoch had built up.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CacheManifestEntry {
    /// Worker index within the fabric.
    pub worker: u32,
    /// Device index within the worker.
    pub gpu: u32,
    /// The cached block's identity.
    pub key: CacheKey,
    /// Logical bytes resident.
    pub bytes: u64,
}

/// A job's durable progress record for one operator invocation.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct JobSnapshot {
    /// Fabric-wide job id the snapshot belongs to.
    pub job: u64,
    /// Operator-invocation sequence number within the job.
    pub seq: u64,
    /// The job's progress frontier when the snapshot was cut.
    pub frontier: SimTime,
    /// Opaque keyed/operator state (the driver owns its meaning).
    pub state: Vec<u8>,
    /// Completed blocks, in completion order.
    pub blocks: Vec<SnapshotBlock>,
    /// Per-GPU resident-cache manifests at snapshot time.
    pub cache: Vec<CacheManifestEntry>,
}

impl JobSnapshot {
    /// Tags of every block the snapshot covers, sorted.
    pub fn covered_tags(&self) -> Vec<(u32, u32)> {
        let mut tags: Vec<(u32, u32)> = self.blocks.iter().map(|b| b.tag).collect();
        tags.sort_unstable();
        tags
    }

    /// Deterministic byte encoding (little-endian, length-prefixed).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(MAGIC);
        put_u32(&mut out, VERSION);
        put_u64(&mut out, self.job);
        put_u64(&mut out, self.seq);
        put_u64(&mut out, self.frontier.as_nanos());
        put_u64(&mut out, self.state.len() as u64);
        out.extend_from_slice(&self.state);
        put_u64(&mut out, self.blocks.len() as u64);
        for b in &self.blocks {
            put_u32(&mut out, b.tag.0);
            put_u32(&mut out, b.tag.1);
            match b.emitted {
                Some(n) => {
                    out.push(1);
                    put_u64(&mut out, n as u64);
                }
                None => {
                    out.push(0);
                    put_u64(&mut out, 0);
                }
            }
            put_u64(&mut out, b.completed_at.as_nanos());
            put_u64(&mut out, b.payload.len() as u64);
            out.extend_from_slice(&b.payload);
        }
        put_u64(&mut out, self.cache.len() as u64);
        for e in &self.cache {
            put_u32(&mut out, e.worker);
            put_u32(&mut out, e.gpu);
            put_u64(&mut out, e.key.dataset);
            put_u32(&mut out, e.key.partition);
            put_u32(&mut out, e.key.block);
            put_u64(&mut out, e.bytes);
        }
        out
    }

    /// Decode an encoded snapshot; `None` on any structural mismatch
    /// (truncation, bad magic, unknown version). Content integrity is the
    /// HDFS manifest CRC's job; this guards the layout.
    pub fn decode(data: &[u8]) -> Option<JobSnapshot> {
        let mut r = Reader { data, pos: 0 };
        if r.take(4)? != MAGIC.as_slice() || r.u32()? != VERSION {
            return None;
        }
        let job = r.u64()?;
        let seq = r.u64()?;
        let frontier = SimTime::from_nanos(r.u64()?);
        let state_len = r.u64()? as usize;
        let state = r.take(state_len)?.to_vec();
        let n_blocks = r.u64()? as usize;
        let mut blocks = Vec::with_capacity(n_blocks.min(1 << 20));
        for _ in 0..n_blocks {
            let tag = (r.u32()?, r.u32()?);
            let has_emitted = r.take(1)?[0] == 1;
            let emitted_raw = r.u64()?;
            let emitted = has_emitted.then_some(emitted_raw as usize);
            let completed_at = SimTime::from_nanos(r.u64()?);
            let payload_len = r.u64()? as usize;
            let payload = r.take(payload_len)?.to_vec();
            blocks.push(SnapshotBlock {
                tag,
                emitted,
                completed_at,
                payload,
            });
        }
        let n_cache = r.u64()? as usize;
        let mut cache = Vec::with_capacity(n_cache.min(1 << 20));
        for _ in 0..n_cache {
            cache.push(CacheManifestEntry {
                worker: r.u32()?,
                gpu: r.u32()?,
                key: CacheKey {
                    dataset: r.u64()?,
                    partition: r.u32()?,
                    block: r.u32()?,
                },
                bytes: r.u64()?,
            });
        }
        if r.pos != data.len() {
            return None; // trailing garbage
        }
        Some(JobSnapshot {
            job,
            seq,
            frontier,
            state,
            blocks,
            cache,
        })
    }
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

struct Reader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(n)?;
        if end > self.data.len() {
            return None;
        }
        let s = &self.data[self.pos..end];
        self.pos = end;
        Some(s)
    }

    fn u32(&mut self) -> Option<u32> {
        self.take(4)
            .map(|s| u32::from_le_bytes(s.try_into().unwrap()))
    }

    fn u64(&mut self) -> Option<u64> {
        self.take(8)
            .map(|s| u64::from_le_bytes(s.try_into().unwrap()))
    }
}

/// Receipt for one durable snapshot write. `#[must_use]`: a dropped token
/// means the write's cost and coverage never reached the job's rollup.
#[derive(Clone, Debug)]
#[must_use = "fold this token into the job's checkpoint counters"]
pub struct CheckpointToken {
    /// HDFS file the snapshot was written to.
    pub file: String,
    /// Write epoch of the file (1 for the first snapshot).
    pub epoch: u64,
    /// Simulated instant the write completed.
    pub taken_at: SimTime,
    /// Encoded payload size in bytes.
    pub bytes: u64,
    /// How many completed blocks the snapshot covers.
    pub covered: usize,
}

/// A snapshot read back from HDFS. `#[must_use]`: dropping it discards
/// the restored progress and silently degrades to replay-from-zero.
#[derive(Clone, Debug)]
#[must_use = "apply the restored snapshot or the job replays from zero"]
pub struct RestoredSnapshot {
    /// The decoded snapshot.
    pub snapshot: JobSnapshot,
    /// Simulated instant the restore read (and CRC check) completed.
    pub ready_at: SimTime,
    /// The snapshot file's write epoch.
    pub epoch: u64,
}

/// Fabric-side coordinator for periodic job snapshots.
///
/// Owns the per-job cadence state (when each job last snapshotted, which
/// operator invocation is next) and the encode/write + read/decode paths
/// against HDFS. It deliberately holds no job *data* — snapshots are cut
/// from the driver's completions at drain time, so the manager stays a
/// thin clock-and-codec layer.
#[derive(Debug)]
pub struct CheckpointManager {
    cfg: CheckpointConfig,
    next_seq: BTreeMap<u64, u64>,
    last_tick: BTreeMap<u64, SimTime>,
}

impl CheckpointManager {
    /// A manager for the given policy.
    pub fn new(cfg: CheckpointConfig) -> Self {
        CheckpointManager {
            cfg,
            next_seq: BTreeMap::new(),
            last_tick: BTreeMap::new(),
        }
    }

    /// Whether checkpointing is on at all.
    pub fn enabled(&self) -> bool {
        self.cfg.enabled
    }

    /// The policy in force.
    pub fn config(&self) -> &CheckpointConfig {
        &self.cfg
    }

    /// The next operator-invocation sequence number for `job`.
    pub fn next_seq(&mut self, job: u64) -> u64 {
        let seq = self.next_seq.entry(job).or_insert(0);
        let s = *seq;
        *seq += 1;
        s
    }

    /// The snapshot file name for `job_name`'s invocation `seq`.
    pub fn file_name(&self, job_name: &str, seq: u64) -> String {
        format!("{}/{}/op{}", self.cfg.prefix, job_name, seq)
    }

    /// Seed the snapshot cadence for `job` at its submission instant.
    /// Idempotent: a job already seeded keeps its cadence.
    pub fn seed(&mut self, job: u64, at: SimTime) {
        self.last_tick.entry(job).or_insert(at);
    }

    /// Periodic snapshot instants due in `(last, horizon]` for `job`,
    /// advancing the cadence cursor past them. Ticks are job-global, not
    /// per-operator: the cadence runs on the simulated clock across
    /// operator boundaries.
    pub fn due_ticks(&mut self, job: u64, horizon: SimTime) -> Vec<SimTime> {
        let last = self.last_tick.entry(job).or_insert(SimTime::ZERO);
        let mut ticks = Vec::new();
        while *last + self.cfg.interval <= horizon {
            *last += self.cfg.interval;
            ticks.push(*last);
        }
        ticks
    }

    /// The snapshot-cadence cursor for `job`: the last instant a periodic
    /// tick fired (or the seed instant if none has). `None` for jobs the
    /// manager has never seen. Health snapshots use this to report
    /// checkpoint lag.
    pub fn last_tick(&self, job: u64) -> Option<SimTime> {
        self.last_tick.get(&job).copied()
    }

    /// Forget a finished job's cadence state.
    pub fn retire_job(&mut self, job: u64) {
        self.next_seq.remove(&job);
        self.last_tick.remove(&job);
    }

    /// Encode `snap` and write it durably at `at` from datanode `node`,
    /// overwriting any earlier epoch of the same file.
    pub fn write(
        &self,
        hdfs: &mut Hdfs,
        node: usize,
        job_name: &str,
        snap: &JobSnapshot,
        at: SimTime,
    ) -> Result<CheckpointToken, HdfsError> {
        let file = self.file_name(job_name, snap.seq);
        let payload = snap.encode();
        let bytes = payload.len() as u64;
        let grant = hdfs.snapshot_at(node, &file, payload, at)?;
        let epoch = hdfs.manifest(&file).map_or(1, |m| m.epoch);
        Ok(CheckpointToken {
            file,
            epoch,
            taken_at: grant.end,
            bytes,
            covered: snap.blocks.len(),
        })
    }

    /// Read back the newest snapshot of `job_name`'s invocation `seq`, if
    /// one exists. `Ok(None)` when no snapshot was ever written (a fresh
    /// run); CRC failures and decode mismatches surface as errors — a
    /// corrupt checkpoint must never be silently replayed.
    pub fn read(
        &self,
        hdfs: &mut Hdfs,
        node: usize,
        job_name: &str,
        seq: u64,
        at: SimTime,
    ) -> Result<Option<RestoredSnapshot>, HdfsError> {
        let file = self.file_name(job_name, seq);
        if !hdfs.exists(&file) {
            return Ok(None);
        }
        let (data, grant) = hdfs.restore(node, &file, at)?;
        let snapshot =
            JobSnapshot::decode(&data).ok_or(HdfsError::Corrupt { file: file.clone() })?;
        let epoch = hdfs.manifest(&file).map_or(1, |m| m.epoch);
        Ok(Some(RestoredSnapshot {
            snapshot,
            ready_at: grant.end,
            epoch,
        }))
    }
}

/// Magic prefix of an encoded stream operator state ("GFlink Stream State").
const STREAM_MAGIC: &[u8; 4] = b"GFSS";
/// Stream-state encoding version; bumped on any layout change.
const STREAM_VERSION: u32 = 1;

/// One open keyed window pane captured in a stream-state snapshot.
#[derive(Clone, Debug, PartialEq)]
pub struct OpenPane {
    /// Inclusive event-time start of the pane's window.
    pub start: SimTime,
    /// Exclusive event-time end (for sessions: last event + gap).
    pub end: SimTime,
    /// The pane's key.
    pub key: u64,
    /// Accumulated logical weight (paper-scale record count).
    pub logical: f64,
    /// Buffered values, in insertion order.
    pub values: Vec<f64>,
}

/// The DataStream layer's keyed operator state at a snapshot tick — what
/// goes into [`JobSnapshot::state`] for windowed streaming jobs
/// (DESIGN.md §17). Ingestion is a pure function of the seed, so a restore
/// *replays* it and uses this record to **validate** that the replayed
/// state at the snapshot frontier matches what the crashed run had; a
/// mismatch refuses the snapshot rather than resuming from divergent state.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct StreamState {
    /// Micro-batches ingested (merged across sources, arrival order).
    pub batches: u64,
    /// The watermark, or `None` before the first batch.
    pub watermark: Option<SimTime>,
    /// Maximum event timestamp seen.
    pub max_event_ts: SimTime,
    /// Records routed to the late counter so far.
    pub late_records: u64,
    /// Windows fired so far (the fire-sequence frontier).
    pub fired: u64,
    /// Open panes, in `(start, end, key)` order.
    pub open: Vec<OpenPane>,
}

impl StreamState {
    /// Deterministic byte encoding (little-endian, length-prefixed).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(STREAM_MAGIC);
        put_u32(&mut out, STREAM_VERSION);
        put_u64(&mut out, self.batches);
        match self.watermark {
            Some(wm) => {
                out.push(1);
                put_u64(&mut out, wm.as_nanos());
            }
            None => {
                out.push(0);
                put_u64(&mut out, 0);
            }
        }
        put_u64(&mut out, self.max_event_ts.as_nanos());
        put_u64(&mut out, self.late_records);
        put_u64(&mut out, self.fired);
        put_u64(&mut out, self.open.len() as u64);
        for p in &self.open {
            put_u64(&mut out, p.start.as_nanos());
            put_u64(&mut out, p.end.as_nanos());
            put_u64(&mut out, p.key);
            put_u64(&mut out, p.logical.to_bits());
            put_u64(&mut out, p.values.len() as u64);
            for v in &p.values {
                put_u64(&mut out, v.to_bits());
            }
        }
        out
    }

    /// Decode an encoded stream state; `None` on any structural mismatch.
    pub fn decode(data: &[u8]) -> Option<StreamState> {
        let mut r = Reader { data, pos: 0 };
        if r.take(4)? != STREAM_MAGIC.as_slice() || r.u32()? != STREAM_VERSION {
            return None;
        }
        let batches = r.u64()?;
        let has_wm = r.take(1)?[0] == 1;
        let wm_raw = r.u64()?;
        let watermark = has_wm.then_some(SimTime::from_nanos(wm_raw));
        let max_event_ts = SimTime::from_nanos(r.u64()?);
        let late_records = r.u64()?;
        let fired = r.u64()?;
        let n_open = r.u64()? as usize;
        let mut open = Vec::with_capacity(n_open.min(1 << 20));
        for _ in 0..n_open {
            let start = SimTime::from_nanos(r.u64()?);
            let end = SimTime::from_nanos(r.u64()?);
            let key = r.u64()?;
            let logical = f64::from_bits(r.u64()?);
            let n_values = r.u64()? as usize;
            let mut values = Vec::with_capacity(n_values.min(1 << 20));
            for _ in 0..n_values {
                values.push(f64::from_bits(r.u64()?));
            }
            open.push(OpenPane {
                start,
                end,
                key,
                logical,
                values,
            });
        }
        if r.pos != data.len() {
            return None; // trailing garbage
        }
        Some(StreamState {
            batches,
            watermark,
            max_event_ts,
            late_records,
            fired,
            open,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gflink_hdfs::HdfsConfig;

    fn sample() -> JobSnapshot {
        JobSnapshot {
            job: 42,
            seq: 3,
            frontier: SimTime::from_millis(7),
            state: vec![1, 2, 3],
            blocks: vec![
                SnapshotBlock {
                    tag: (0, 1),
                    emitted: Some(5),
                    completed_at: SimTime::from_micros(10),
                    payload: vec![9; 16],
                },
                SnapshotBlock {
                    tag: (1, 0),
                    emitted: None,
                    completed_at: SimTime::from_micros(20),
                    payload: vec![],
                },
            ],
            cache: vec![CacheManifestEntry {
                worker: 0,
                gpu: 1,
                key: CacheKey {
                    dataset: 8,
                    partition: 0,
                    block: 1,
                },
                bytes: 4096,
            }],
        }
    }

    #[test]
    fn encode_decode_roundtrip() {
        let snap = sample();
        let bytes = snap.encode();
        assert_eq!(JobSnapshot::decode(&bytes), Some(snap.clone()));
        assert_eq!(snap.covered_tags(), vec![(0, 1), (1, 0)]);
        // Structural guards: truncation, bad magic, trailing garbage.
        assert_eq!(JobSnapshot::decode(&bytes[..bytes.len() - 1]), None);
        let mut bad = bytes.clone();
        bad[0] = b'X';
        assert_eq!(JobSnapshot::decode(&bad), None);
        let mut long = bytes;
        long.push(0);
        assert_eq!(JobSnapshot::decode(&long), None);
        assert_eq!(JobSnapshot::decode(&[]), None);
    }

    #[test]
    fn cadence_ticks_step_by_the_interval() {
        let mut cm = CheckpointManager::new(CheckpointConfig::every(SimTime::from_millis(10)));
        cm.seed(1, SimTime::from_millis(5));
        cm.seed(1, SimTime::from_millis(900)); // idempotent
        assert_eq!(
            cm.due_ticks(1, SimTime::from_millis(36)),
            vec![
                SimTime::from_millis(15),
                SimTime::from_millis(25),
                SimTime::from_millis(35)
            ]
        );
        // The cursor advanced: nothing more is due until 45 ms.
        assert!(cm.due_ticks(1, SimTime::from_millis(44)).is_empty());
        assert_eq!(
            cm.due_ticks(1, SimTime::from_millis(45)),
            vec![SimTime::from_millis(45)]
        );
        cm.retire_job(1);
    }

    #[test]
    fn seq_counts_operator_invocations_per_job() {
        let mut cm = CheckpointManager::new(CheckpointConfig::default());
        assert_eq!(cm.next_seq(1), 0);
        assert_eq!(cm.next_seq(1), 1);
        assert_eq!(cm.next_seq(2), 0);
        assert_eq!(cm.file_name("kmeans", 1), "ckpt/kmeans/op1");
    }

    #[test]
    fn stream_state_roundtrip() {
        let state = StreamState {
            batches: 12,
            watermark: Some(SimTime::from_millis(340)),
            max_event_ts: SimTime::from_millis(380),
            late_records: 2,
            fired: 5,
            open: vec![
                OpenPane {
                    start: SimTime::from_millis(300),
                    end: SimTime::from_millis(400),
                    key: 7,
                    logical: 1.5e6,
                    values: vec![1.0, 2.5, -3.25],
                },
                OpenPane {
                    start: SimTime::from_millis(300),
                    end: SimTime::from_millis(400),
                    key: 9,
                    logical: 0.5e6,
                    values: vec![],
                },
            ],
        };
        let bytes = state.encode();
        assert_eq!(StreamState::decode(&bytes), Some(state));
        // None watermark survives the roundtrip too.
        let fresh = StreamState::default();
        assert_eq!(StreamState::decode(&fresh.encode()), Some(fresh));
        // Structural guards.
        assert_eq!(StreamState::decode(&bytes[..bytes.len() - 1]), None);
        let mut bad = bytes.clone();
        bad[0] = b'X';
        assert_eq!(StreamState::decode(&bad), None);
        let mut long = bytes;
        long.push(0);
        assert_eq!(StreamState::decode(&long), None);
    }

    #[test]
    fn write_then_read_through_hdfs() {
        let mut hdfs = Hdfs::new(2, HdfsConfig::default());
        let cm = CheckpointManager::new(CheckpointConfig::every(SimTime::from_millis(1)));
        let snap = sample();
        let tok = cm.write(&mut hdfs, 0, "job", &snap, SimTime::ZERO).unwrap();
        assert_eq!(tok.file, "ckpt/job/op3");
        assert_eq!(tok.epoch, 1);
        assert_eq!(tok.covered, 2);
        assert!(tok.bytes > 0);
        let restored = cm
            .read(&mut hdfs, 1, "job", 3, tok.taken_at)
            .unwrap()
            .expect("snapshot exists");
        assert_eq!(restored.snapshot, snap);
        assert!(restored.ready_at > tok.taken_at);
        // Overwrites bump the epoch; absent files restore to None.
        let tok2 = cm.write(&mut hdfs, 0, "job", &snap, tok.taken_at).unwrap();
        assert_eq!(tok2.epoch, 2);
        assert!(cm
            .read(&mut hdfs, 0, "job", 9, SimTime::ZERO)
            .unwrap()
            .is_none());
        // Bit-rot is refused, not replayed.
        hdfs.rot("ckpt/job/op3").unwrap();
        assert!(matches!(
            cm.read(&mut hdfs, 0, "job", 3, SimTime::ZERO),
            Err(HdfsError::Corrupt { .. })
        ));
    }
}

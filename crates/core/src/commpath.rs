//! Communication-path comparison: GStruct zero-copy vs. object
//! serialization (§3.1, §4.1).
//!
//! Prior systems moving data from a managed runtime to the GPU pay up to
//! five steps: (1) encode objects into a heap buffer, (2) copy the heap
//! buffer to native memory, (3) DMA to the device, (4) DMA back, (5) decode
//! back into objects. GFlink's scheme — GStruct raw bytes living in
//! off-heap direct buffers whose layout matches the CUDA struct — keeps
//! only the two DMA steps.
//!
//! [`naive_path`] and [`gstruct_path`] *execute* both pipelines over real
//! records (the encode/decode work actually happens) and return modelled
//! times, so the `ablation_serialization` bench reports an honest contrast.

use gflink_flink::CpuSpec;
use gflink_gpu::{GpuSpec, TransferPath};
use gflink_memory::serialize::{gstruct_to_records, records_to_gstruct};
use gflink_memory::{GStructDef, HBuffer, Record};
use gflink_sim::SimTime;

/// Cost of one round trip (host → device → host) for `records`.
#[derive(Clone, Debug, PartialEq)]
pub struct PathCost {
    /// Time encoding objects to bytes (zero on the GStruct path).
    pub encode: SimTime,
    /// Time copying between heap and native buffers (zero on GStruct path).
    pub heap_copy: SimTime,
    /// H2D transfer time.
    pub h2d: SimTime,
    /// D2H transfer time.
    pub d2h: SimTime,
    /// Time decoding bytes back to objects (zero on the GStruct path).
    pub decode: SimTime,
}

impl PathCost {
    /// End-to-end time.
    pub fn total(&self) -> SimTime {
        self.encode + self.heap_copy + self.h2d + self.d2h + self.decode
    }
}

/// Per-element CPU cost of encoding/decoding one field (tag dispatch,
/// bounds checks, byte-order conversion) — conservative for a JVM
/// serializer.
const ENCODE_FLOPS_PER_FIELD: f64 = 12.0;

/// Memory bandwidth term for the heap→native copy: the bytes are touched
/// twice (read + write).
fn heap_copy_time(cpu: &CpuSpec, bytes: f64) -> SimTime {
    SimTime::from_secs_f64(2.0 * bytes / cpu.mem_bps)
}

/// The serialize/copy path of prior systems, executed for real.
///
/// `logical_records` scales the modelled cost while `records` is the
/// actual data (so the work really happens at reduced scale).
pub fn naive_path(
    records: &[Record],
    def: &GStructDef,
    logical_records: u64,
    cpu: &CpuSpec,
    gpu: &GpuSpec,
) -> (Vec<Record>, PathCost) {
    let fields = def.num_fields() as f64;
    let logical_bytes = logical_records as f64 * def.size() as f64;
    // (1) Encode objects into a heap buffer (really runs).
    let mut buf = records_to_gstruct(records, def);
    let encode = SimTime::from_secs_f64(
        logical_records as f64 * fields * ENCODE_FLOPS_PER_FIELD / cpu.scalar_flops,
    );
    // (2) Heap → native copy.
    let heap_copy = heap_copy_time(cpu, logical_bytes);
    // (3)/(4) PCIe round trip.
    let path = TransferPath::gflink(gpu);
    let h2d = path.time_for(logical_bytes as u64);
    let d2h = path.time_for(logical_bytes as u64);
    // (5) Decode back to objects (really runs).
    let out = gstruct_to_records(&mut buf, def, records.len());
    let decode = SimTime::from_secs_f64(
        logical_records as f64 * fields * ENCODE_FLOPS_PER_FIELD / cpu.scalar_flops,
    );
    (
        out,
        PathCost {
            encode,
            heap_copy,
            h2d,
            d2h,
            decode,
        },
    )
}

/// GFlink's zero-copy path: the off-heap GStruct bytes go straight to the
/// DMA engine.
pub fn gstruct_path(bytes: &HBuffer, logical_bytes: u64, gpu: &GpuSpec) -> (HBuffer, PathCost) {
    let path = TransferPath::gflink(gpu);
    let h2d = path.time_for(logical_bytes);
    let d2h = path.time_for(logical_bytes);
    (
        bytes.clone(),
        PathCost {
            encode: SimTime::ZERO,
            heap_copy: SimTime::ZERO,
            h2d,
            d2h,
            decode: SimTime::ZERO,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use gflink_gpu::GpuModel;
    use gflink_memory::{AlignClass, FieldDef, FieldValue, PrimType};

    fn point_def() -> GStructDef {
        GStructDef::new(
            "Point",
            AlignClass::Align8,
            vec![
                FieldDef::scalar("x", PrimType::F32),
                FieldDef::scalar("y", PrimType::F64),
            ],
        )
    }

    fn records(n: usize) -> Vec<Record> {
        (0..n)
            .map(|i| vec![FieldValue::F32(i as f32), FieldValue::F64(-(i as f64))])
            .collect()
    }

    #[test]
    fn naive_path_roundtrips_data() {
        let def = point_def();
        let recs = records(50);
        let cpu = CpuSpec::default();
        let gpu = GpuModel::TeslaC2050.spec();
        let (out, cost) = naive_path(&recs, &def, 50_000, &cpu, &gpu);
        assert_eq!(out, recs);
        assert!(cost.encode > SimTime::ZERO);
        assert!(cost.heap_copy > SimTime::ZERO);
        assert!(cost.decode > SimTime::ZERO);
    }

    #[test]
    fn gstruct_path_has_only_transfers() {
        let gpu = GpuModel::TeslaC2050.spec();
        let buf = HBuffer::zeroed(1024);
        let (_out, cost) = gstruct_path(&buf, 1 << 20, &gpu);
        assert_eq!(cost.encode, SimTime::ZERO);
        assert_eq!(cost.heap_copy, SimTime::ZERO);
        assert_eq!(cost.decode, SimTime::ZERO);
        assert!(cost.h2d > SimTime::ZERO);
    }

    #[test]
    fn zero_copy_beats_serialization() {
        let def = point_def();
        let recs = records(100);
        let cpu = CpuSpec::default();
        let gpu = GpuModel::TeslaC2050.spec();
        let logical = 10_000_000u64;
        let (_, naive) = naive_path(&recs, &def, logical, &cpu, &gpu);
        let buf = HBuffer::zeroed(64);
        let (_, zc) = gstruct_path(&buf, logical * def.size() as u64, &gpu);
        assert!(
            naive.total() > zc.total() * 2,
            "serialization path should be at least 2x slower: {} vs {}",
            naive.total(),
            zc.total()
        );
        // The transfer legs themselves are identical.
        assert_eq!(naive.h2d, zc.h2d);
    }
}

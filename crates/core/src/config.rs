//! Worker-level configuration: GPU complement, scheduling, fault policy,
//! and the transfer-channel knobs (§4.1.2 pinned staging + small-GWork
//! batching).

use crate::cache::CachePolicy;
use crate::recovery::CpuFallback;
use crate::scheduling::ArbitrationPolicy;
use gflink_gpu::{GpuModel, TransferMode};
use gflink_sim::{RetryPolicy, SimTime};

/// Transfer-channel configuration: host-side staging mode, the pinned
/// staging pool, and small-GWork transfer batching.
///
/// The defaults reproduce the pre-optimization timeline byte-for-byte:
/// `Pinned` mode with zero registration cost *is* the fitted Table 2 path
/// (the paper measures page-locked direct buffers, so registration is
/// already inside the fitted α), and batching is off.
#[derive(Clone, Debug)]
pub struct TransferConfig {
    /// Host-side staging behaviour. `Pageable` models the path GFlink's
    /// off-heap design avoids: an extra host memcpy per copy, synchronous.
    pub mode: TransferMode,
    /// Soft budget of registered (page-locked) staging bytes. Buffers
    /// acquired beyond it are unregistered on release instead of recycled.
    pub pinned_pool_bytes: u64,
    /// Page-locking (registration) throughput in bytes/second, charged once
    /// per freshly registered staging buffer (a pool miss). `0.0` means
    /// registration is free — the fitted α already covers it — which keeps
    /// default timelines identical.
    pub register_bytes_per_sec: f64,
    /// Small-GWork transfer batching.
    pub batch: BatchConfig,
}

impl Default for TransferConfig {
    fn default() -> Self {
        TransferConfig {
            mode: TransferMode::Pinned,
            pinned_pool_bytes: 64 << 20,
            register_bytes_per_sec: 0.0,
            batch: BatchConfig::default(),
        }
    }
}

/// Small-GWork transfer batching (CrystalGPU-style task batching): GWorks
/// bound for the same GPU that would otherwise *queue* are coalesced into
/// one fused H2D / kernel-sequence / fused D2H unit, paying a single
/// per-call α per direction for the whole group.
///
/// Batches only form under backlog — a work that finds an idle stream runs
/// immediately, unbatched — so enabling this never adds latency to an idle
/// fabric, and a freed stream always flushes the pending batch rather than
/// waiting out the window.
#[derive(Clone, Debug)]
pub struct BatchConfig {
    /// Master switch; off by default (byte-identical legacy behaviour).
    pub enabled: bool,
    /// Flush when a pending batch reaches this many works.
    pub max_works: usize,
    /// Flush when a pending batch's summed input bytes would exceed this.
    pub max_bytes: u64,
    /// Only works whose summed input logical bytes are at or below this
    /// cutoff are batched; bigger works already amortize α on their own.
    pub small_work_bytes: u64,
    /// Upper bound on how long a pending batch may accumulate before it is
    /// flushed to the queue regardless of fill.
    pub window: SimTime,
}

impl Default for BatchConfig {
    fn default() -> Self {
        BatchConfig {
            enabled: false,
            max_works: 8,
            max_bytes: 4 << 20,
            small_work_bytes: 256 << 10,
            window: SimTime::from_micros(50),
        }
    }
}

impl BatchConfig {
    /// Batching enabled with the default thresholds.
    pub fn enabled() -> Self {
        BatchConfig {
            enabled: true,
            ..BatchConfig::default()
        }
    }
}

/// Multi-job scheduler configuration: cross-job queue arbitration,
/// admission control, and cache-budget partitioning.
///
/// Follows the [`TransferConfig`] convention: the defaults reproduce the
/// single-tenant timeline byte-for-byte (FIFO arbitration, unbounded
/// admission, shared cache budget). Every knob is opt-in.
#[derive(Clone, Debug)]
pub struct SchedulerConfig {
    /// How queued works of different jobs share one GPU's queue.
    pub arbitration: ArbitrationPolicy,
    /// Admission cap: `GpuFabric::open_job` rejects a submission that would
    /// push the number of live jobs past this. `usize::MAX` = unbounded.
    pub max_live_jobs: usize,
    /// Backpressure: once a job has this many bytes parked in the GPU
    /// queues, its further submissions are *parked* in a per-job pen and
    /// re-injected as the backlog drains (they are delayed, never dropped).
    /// `u64::MAX` = no backpressure.
    pub max_queued_bytes: u64,
    /// Partition each GPU's cache-region budget across live jobs in
    /// proportion to their weights, re-balancing (with eviction of any
    /// overflow) when a job opens or closes. Off = every job gets the full
    /// region budget, as before.
    pub partition_cache: bool,
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        SchedulerConfig {
            arbitration: ArbitrationPolicy::Fifo,
            max_live_jobs: usize::MAX,
            max_queued_bytes: u64::MAX,
            partition_cache: false,
        }
    }
}

impl SchedulerConfig {
    /// Weighted-fair arbitration with the default 256 KiB quantum;
    /// admission and partitioning stay at their defaults.
    pub fn weighted_fair() -> Self {
        SchedulerConfig {
            arbitration: ArbitrationPolicy::WeightedFair {
                quantum_bytes: 256 << 10,
            },
            ..SchedulerConfig::default()
        }
    }
}

/// Checkpoint/restore configuration for the fabric's [`crate::checkpoint::CheckpointManager`].
///
/// Follows the [`TransferConfig`] convention: off by default, and when
/// off nothing is snapshotted, nothing is restored, and every timeline is
/// byte-identical to a fabric without the subsystem.
#[derive(Clone, Debug)]
pub struct CheckpointConfig {
    /// Master switch; off by default.
    pub enabled: bool,
    /// Simulated interval between periodic snapshots of a live job.
    pub interval: SimTime,
    /// HDFS path prefix under which snapshot files are written
    /// (`<prefix>/<job>/op<seq>`).
    pub prefix: String,
}

impl Default for CheckpointConfig {
    fn default() -> Self {
        CheckpointConfig {
            enabled: false,
            interval: SimTime::from_millis(10),
            prefix: "ckpt".to_string(),
        }
    }
}

impl CheckpointConfig {
    /// Checkpointing enabled at the given interval, default prefix.
    pub fn every(interval: SimTime) -> Self {
        CheckpointConfig {
            enabled: true,
            interval,
            ..CheckpointConfig::default()
        }
    }
}

/// Knobs for the hybrid CPU+GPU cost-model placement policy
/// ([`crate::scheduling::SchedulingPolicy::HybridCostModel`]).
///
/// There is no master switch here: selecting the policy *is* the opt-in.
/// Under every other policy these knobs are inert, so default timelines
/// stay byte-for-byte identical.
#[derive(Clone, Debug)]
pub struct HybridConfig {
    /// EWMA smoothing factor for the online estimators, in `(0, 1]`.
    /// Higher = adapt faster, forget priors sooner.
    pub ewma_alpha: f64,
    /// Safety margin the host prediction must beat every GPU route by
    /// before work leaves the GPUs (`predict_cpu * cpu_margin <
    /// best_gpu`). Guards against thrashing on near-ties.
    pub cpu_margin: f64,
    /// Adaptive sizing: never split a block into pieces smaller than this
    /// many elements (a block below `2 *` this is never split).
    pub min_split_elems: usize,
    /// Split only when the CPU/GPU predicted-time ratio is within this
    /// factor of parity in either direction — beyond it, one device is so
    /// dominant that splitting just adds launch overheads.
    pub split_balance: f64,
    /// Shrink the slower side's share of a split when the model's relative
    /// prediction error (EWMA) exceeds this threshold.
    pub split_error_threshold: f64,
}

impl Default for HybridConfig {
    fn default() -> Self {
        HybridConfig {
            ewma_alpha: 0.25,
            cpu_margin: 1.2,
            min_split_elems: 8_192,
            split_balance: 3.0,
            split_error_threshold: 0.25,
        }
    }
}

/// Configuration of one worker's GPU complement.
#[derive(Clone, Debug)]
pub struct GpuWorkerConfig {
    /// GPU models installed in the worker (the paper's standard worker has
    /// two Tesla C2050s).
    pub models: Vec<GpuModel>,
    /// CUDA streams per GPU (the stream bulk size).
    pub streams_per_gpu: usize,
    /// GPU cache region capacity per GPU, logical bytes (§4.2.2: a
    /// user-defined parameter).
    pub cache_capacity: u64,
    /// Cache policy.
    pub cache_policy: CachePolicy,
    /// GWork scheduling policy.
    pub scheduling: crate::scheduling::SchedulingPolicy,
    /// Injected per-launch kernel failure probability (fault-tolerance
    /// testing; §1 motivates building on Flink precisely because it
    /// "uses replication and error detection to schedule around
    /// failures"). A failed launch is detected at kernel completion, its
    /// buffers are reclaimed, and the GWork is resubmitted — on a
    /// *different* GPU when the worker has more than one.
    pub failure_rate: f64,
    /// Retry policy for faulted, hung, or resource-starved works:
    /// exponential backoff, a retry budget and an optional deadline.
    pub retry: RetryPolicy,
    /// Watchdog timeout: a kernel flagged as hung is recovered this long
    /// after its launch. Must be finite for hang faults to be recoverable.
    pub hang_timeout: SimTime,
    /// The CPU execution path used once every GPU is lost.
    pub cpu_fallback: CpuFallback,
    /// Transfer-channel behaviour: staging mode, pinned pool, batching.
    pub transfer: TransferConfig,
    /// Multi-job scheduling: cross-job arbitration, admission control, and
    /// cache-budget partitioning.
    pub scheduler: SchedulerConfig,
    /// Hybrid cost-model placement knobs (inert unless `scheduling` is
    /// [`crate::scheduling::SchedulingPolicy::HybridCostModel`]).
    pub hybrid: HybridConfig,
}

impl Default for GpuWorkerConfig {
    fn default() -> Self {
        GpuWorkerConfig {
            models: vec![GpuModel::TeslaC2050, GpuModel::TeslaC2050],
            streams_per_gpu: 4,
            cache_capacity: 2_000_000_000, // 2 GB of the C2050's 3 GB
            cache_policy: CachePolicy::Fifo,
            scheduling: crate::scheduling::SchedulingPolicy::LocalityAware,
            failure_rate: 0.0,
            retry: RetryPolicy::default(),
            hang_timeout: SimTime::from_secs(10),
            cpu_fallback: CpuFallback::default(),
            transfer: TransferConfig::default(),
            scheduler: SchedulerConfig::default(),
            hybrid: HybridConfig::default(),
        }
    }
}

//! Online per-(operator, device-class) cost model for hybrid placement
//! (ISSUE 9).
//!
//! For every execution target — each GPU, plus the host CPU pool — the
//! model keeps EWMA estimators of the quantities the paper's Eq. (1)
//! decomposition needs to predict a GWork's completion time:
//!
//! * per-kernel effective throughput (logical bytes / kernel second),
//!   seeded from the device's sustained-memory-bandwidth prior
//!   ([`gflink_gpu::ClassPriors`], the Eqs (1)–(4) terms) until the first
//!   observation of that operator on that device class arrives;
//! * H2D / D2H link bandwidth, seeded from the datasheet PCIe rate;
//! * per-kernel relative prediction error (drives adaptive block sizing).
//!
//! Placement compares `predict = queue + transfer + kernel` across targets;
//! cache-resident input bytes are discounted from the transfer term by the
//! caller (it owns the cache regions). All estimator state is plain `f64`
//! arithmetic over simulated durations — deterministic, no clocks.

use crate::config::{GpuWorkerConfig, HybridConfig};
use gflink_gpu::{ClassPriors, GpuModel, KernelId};
use gflink_sim::SimTime;

/// One device class's estimators.
#[derive(Clone, Debug)]
struct ClassEstimator {
    /// Fixed launch overhead (prior; not adapted — it is α-sized and the
    /// throughput terms dominate at block scale).
    launch: SimTime,
    /// Throughput prior for kernels never observed on this class:
    /// sustained memory bandwidth, the roofline's memory-bound roof.
    prior_bps: f64,
    /// Link bandwidth estimators (bytes/s); zero for the host class (its
    /// inputs are already host-resident, Eq. (1)'s transfer term vanishes).
    h2d_bps: f64,
    d2h_bps: f64,
    /// Per-kernel observed throughput EWMA, indexed by [`KernelId::index`];
    /// `0.0` = not yet observed (use `prior_bps`).
    kernel_bps: Vec<f64>,
}

impl ClassEstimator {
    fn from_priors(p: ClassPriors) -> Self {
        let link = p.link.map(|l| l.bytes_per_sec).unwrap_or(0.0);
        ClassEstimator {
            launch: p.kernel.launch_overhead,
            prior_bps: p.kernel.mem_bytes_per_sec,
            h2d_bps: link,
            d2h_bps: link,
            kernel_bps: Vec::new(),
        }
    }

    fn kernel_bps(&self, kernel: KernelId) -> f64 {
        kernel
            .index()
            .and_then(|i| self.kernel_bps.get(i).copied())
            .filter(|&b| b > 0.0)
            .unwrap_or(self.prior_bps)
    }

    fn kernel_time(&self, kernel: KernelId, bytes: u64) -> SimTime {
        self.launch + SimTime::from_secs_f64(bytes as f64 / self.kernel_bps(kernel))
    }
}

fn ewma(slot: &mut f64, obs: f64, alpha: f64) {
    if !obs.is_finite() || obs <= 0.0 {
        return;
    }
    *slot = if *slot > 0.0 {
        alpha * obs + (1.0 - alpha) * *slot
    } else {
        obs
    };
}

/// The worker's online cost model: one [`ClassEstimator`] per GPU plus one
/// for the host CPU pool, and a per-kernel prediction-error EWMA.
#[derive(Clone, Debug)]
pub(crate) struct CostModel {
    alpha: f64,
    gpus: Vec<ClassEstimator>,
    host: ClassEstimator,
    /// Per-kernel EWMA of `|predicted - observed| / observed` over the
    /// pipeline stages (queueing excluded); `0.0` = not yet observed.
    err: Vec<f64>,
}

impl CostModel {
    pub(crate) fn new(cfg: &GpuWorkerConfig) -> Self {
        CostModel {
            alpha: cfg.hybrid.ewma_alpha.clamp(0.01, 1.0),
            gpus: cfg
                .models
                .iter()
                .map(|&m| ClassEstimator::from_priors(ClassPriors::for_gpu(m)))
                .collect(),
            host: ClassEstimator::from_priors(ClassPriors::for_host(cfg.cpu_fallback.cost)),
            err: Vec::new(),
        }
    }

    /// Grow the estimator bank for a device that joined the complement.
    pub(crate) fn grow(&mut self, model: GpuModel) {
        self.gpus
            .push(ClassEstimator::from_priors(ClassPriors::for_gpu(model)));
    }

    /// Predicted kernel time for `bytes` of logical traffic on GPU `g`.
    pub(crate) fn gpu_kernel_time(&self, g: usize, kernel: KernelId, bytes: u64) -> SimTime {
        self.gpus[g].kernel_time(kernel, bytes)
    }

    /// Predicted kernel time on the host CPU pool.
    pub(crate) fn host_kernel_time(&self, kernel: KernelId, bytes: u64) -> SimTime {
        self.host.kernel_time(kernel, bytes)
    }

    /// Predicted H2D transfer time for `bytes` not resident on GPU `g`.
    pub(crate) fn h2d_time(&self, g: usize, bytes: u64) -> SimTime {
        SimTime::from_secs_f64(bytes as f64 / self.gpus[g].h2d_bps.max(1.0))
    }

    /// Predicted D2H transfer time for `bytes` coming back from GPU `g`.
    pub(crate) fn d2h_time(&self, g: usize, bytes: u64) -> SimTime {
        SimTime::from_secs_f64(bytes as f64 / self.gpus[g].d2h_bps.max(1.0))
    }

    /// Fold one observed kernel execution on GPU `g` into the estimators.
    pub(crate) fn observe_gpu_kernel(
        &mut self,
        g: usize,
        kernel: KernelId,
        bytes: u64,
        dur: SimTime,
    ) {
        let alpha = self.alpha;
        let net = dur.saturating_sub(self.gpus[g].launch);
        if let Some(slot) = slot_mut(&mut self.gpus[g].kernel_bps, kernel) {
            ewma(slot, bytes as f64 / net.as_secs_f64(), alpha);
        }
    }

    /// Fold one observed host execution into the estimators.
    pub(crate) fn observe_host_kernel(&mut self, kernel: KernelId, bytes: u64, dur: SimTime) {
        let alpha = self.alpha;
        let net = dur.saturating_sub(self.host.launch);
        if let Some(slot) = slot_mut(&mut self.host.kernel_bps, kernel) {
            ewma(slot, bytes as f64 / net.as_secs_f64(), alpha);
        }
    }

    /// Fold one observed H2D transfer on GPU `g` into the link estimator.
    pub(crate) fn observe_h2d(&mut self, g: usize, bytes: u64, dur: SimTime) {
        if bytes == 0 || dur.is_zero() {
            return;
        }
        let alpha = self.alpha;
        ewma(
            &mut self.gpus[g].h2d_bps,
            bytes as f64 / dur.as_secs_f64(),
            alpha,
        );
    }

    /// Fold one observed D2H transfer on GPU `g` into the link estimator.
    pub(crate) fn observe_d2h(&mut self, g: usize, bytes: u64, dur: SimTime) {
        if bytes == 0 || dur.is_zero() {
            return;
        }
        let alpha = self.alpha;
        ewma(
            &mut self.gpus[g].d2h_bps,
            bytes as f64 / dur.as_secs_f64(),
            alpha,
        );
    }

    /// Fold one relative prediction error for `kernel` into its EWMA.
    pub(crate) fn observe_error(&mut self, kernel: KernelId, rel_err: f64) {
        let alpha = self.alpha;
        if let Some(slot) = slot_mut(&mut self.err, kernel) {
            // rel_err == 0.0 is a perfect prediction and must still decay
            // the EWMA, so bypass the zero-is-unseeded convention.
            if *slot > 0.0 {
                *slot = alpha * rel_err.max(0.0) + (1.0 - alpha) * *slot;
            } else {
                *slot = rel_err.max(f64::MIN_POSITIVE);
            }
        }
    }

    /// Current relative prediction error EWMA for `kernel`.
    pub(crate) fn error(&self, kernel: KernelId) -> f64 {
        kernel
            .index()
            .and_then(|i| self.err.get(i).copied())
            .unwrap_or(0.0)
    }
}

fn slot_mut(v: &mut Vec<f64>, kernel: KernelId) -> Option<&mut f64> {
    let i = kernel.index()?;
    if v.len() <= i {
        v.resize(i + 1, 0.0);
    }
    Some(&mut v[i])
}

/// The hybrid placement verdict for one GWork.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum HybridRoute {
    /// Fall through to Alg. 5.1 GPU placement.
    Gpu,
    /// Run on the host CPU pool.
    Cpu,
    /// Split: the first `cpu_n` elements run on the host, the rest on GPU.
    Split {
        /// Elements of the block routed to the host.
        cpu_n: usize,
    },
}

/// Pure decision function over the predicted completion times: compare the
/// best GPU route against the host route under the [`HybridConfig`] margin
/// and split rules. `splittable_n` is `Some(n_actual)` when the work can be
/// split element-wise, `None` otherwise.
pub(crate) fn decide(
    cfg: &HybridConfig,
    gpu_pred: SimTime,
    cpu_pred: SimTime,
    model_err: f64,
    splittable_n: Option<usize>,
) -> HybridRoute {
    let tg = gpu_pred.as_secs_f64();
    let tc = cpu_pred.as_secs_f64();
    if tg <= 0.0 || tc <= 0.0 {
        return HybridRoute::Gpu;
    }
    // Adaptive split: devices close enough to parity that both finishing
    // together beats either alone. The CPU takes the share proportional to
    // its predicted speed; a noisy model (error EWMA over threshold)
    // halves the riskier host share.
    if let Some(n) = splittable_n {
        let ratio = (tc / tg).max(tg / tc);
        if n >= 2 * cfg.min_split_elems && ratio <= cfg.split_balance {
            let mut cpu_frac = tg / (tc + tg);
            if model_err > cfg.split_error_threshold {
                cpu_frac /= 2.0;
            }
            let cpu_n = ((n as f64 * cpu_frac) as usize)
                .clamp(cfg.min_split_elems, n - cfg.min_split_elems);
            return HybridRoute::Split { cpu_n };
        }
    }
    if tc * cfg.cpu_margin < tg {
        HybridRoute::Cpu
    } else {
        HybridRoute::Gpu
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gflink_gpu::KernelRegistry;

    fn cfg() -> GpuWorkerConfig {
        GpuWorkerConfig::default()
    }

    fn interned(names: &[&str]) -> Vec<KernelId> {
        let mut reg = KernelRegistry::new();
        for n in names {
            reg.register(n, |_| gflink_gpu::KernelProfile::new(1.0, 1.0));
        }
        names.iter().map(|n| reg.resolve(n).unwrap()).collect()
    }

    #[test]
    fn priors_seed_from_spec_and_fallback() {
        let cfg = cfg();
        let m = CostModel::new(&cfg);
        let k = interned(&["k"])[0];
        // C2050 sustained memory roof: 144 GB/s × 0.65.
        let spec = GpuModel::TeslaC2050.spec();
        let expect = spec.kernel_cost().time_for(0.0, 1e6, 1.0);
        assert_eq!(m.gpu_kernel_time(0, k, 1_000_000), expect);
        // Host prior: the CpuFallback roofline's memory roof (20 GB/s).
        let host = m.host_kernel_time(k, 2_000_000_000);
        assert_eq!(
            host,
            cfg.cpu_fallback.cost.launch_overhead + SimTime::from_millis(100)
        );
        // Transfer prior: datasheet PCIe, 3 GB/s → 3 MB in 1 ms.
        assert_eq!(m.h2d_time(0, 3_000_000), SimTime::from_millis(1));
        assert_eq!(m.d2h_time(0, 3_000_000), SimTime::from_millis(1));
    }

    #[test]
    fn observations_move_estimates_toward_measurements() {
        let mut m = CostModel::new(&cfg());
        let k = interned(&["k"])[0];
        let before = m.gpu_kernel_time(0, k, 1 << 20);
        // This operator sustains only 1 GB/s on GPU 0 (launch excluded).
        let launch = GpuModel::TeslaC2050.spec().launch_overhead;
        for _ in 0..32 {
            m.observe_gpu_kernel(0, k, 1 << 30, launch + SimTime::from_secs(1));
        }
        let after = m.gpu_kernel_time(0, k, 1 << 20);
        assert!(after > before, "estimate must track the slower observation");
        let expect = launch + SimTime::from_secs_f64((1u64 << 20) as f64 / (1u64 << 30) as f64);
        let rel = (after.as_secs_f64() - expect.as_secs_f64()).abs() / expect.as_secs_f64();
        assert!(rel < 0.05, "converged estimate within 5%, got {rel}");
        // Another kernel is untouched: it still predicts from the prior.
        let k2 = interned(&["a", "b"])[1];
        assert_eq!(m.gpu_kernel_time(0, k2, 1 << 20), before);
    }

    #[test]
    fn link_estimators_adapt_independently_per_direction() {
        let mut m = CostModel::new(&cfg());
        for _ in 0..32 {
            m.observe_h2d(0, 1_000_000_000, SimTime::from_secs(1)); // 1 GB/s
        }
        assert!(m.h2d_time(0, 1 << 20) > m.d2h_time(0, 1 << 20));
        // Zero-byte / zero-duration observations are ignored.
        m.observe_d2h(0, 0, SimTime::from_secs(1));
        m.observe_d2h(0, 1, SimTime::ZERO);
        assert_eq!(m.d2h_time(0, 3_000_000), SimTime::from_millis(1));
    }

    #[test]
    fn unresolved_kernel_uses_priors_and_ignores_observations() {
        let mut m = CostModel::new(&cfg());
        let prior = m.host_kernel_time(KernelId::UNRESOLVED, 1 << 20);
        m.observe_host_kernel(KernelId::UNRESOLVED, 1 << 30, SimTime::from_secs(1));
        assert_eq!(m.host_kernel_time(KernelId::UNRESOLVED, 1 << 20), prior);
        assert_eq!(m.error(KernelId::UNRESOLVED), 0.0);
    }

    #[test]
    fn error_ewma_tracks_and_decays() {
        let mut m = CostModel::new(&cfg());
        let k = interned(&["k"])[0];
        m.observe_error(k, 0.5);
        assert!(m.error(k) > 0.4);
        for _ in 0..64 {
            m.observe_error(k, 0.0);
        }
        assert!(m.error(k) < 0.01, "perfect predictions must decay the EWMA");
    }

    #[test]
    fn grow_appends_estimators_for_joined_devices() {
        let mut m = CostModel::new(&cfg());
        m.grow(GpuModel::TeslaP100);
        let k = interned(&["k"])[0];
        // The P100's memory roof is far higher than the C2050's.
        assert!(m.gpu_kernel_time(2, k, 1 << 30) < m.gpu_kernel_time(0, k, 1 << 30));
    }

    #[test]
    fn decision_routes_by_margin_and_splits_near_parity() {
        let h = HybridConfig::default();
        let ms = SimTime::from_millis;
        // GPU clearly wins.
        assert_eq!(decide(&h, ms(1), ms(100), 0.0, None), HybridRoute::Gpu);
        // CPU wins past the margin.
        assert_eq!(decide(&h, ms(100), ms(10), 0.0, None), HybridRoute::Cpu);
        // Near-tie within the margin stays on GPU (no thrashing).
        assert_eq!(decide(&h, ms(10), ms(9), 0.0, None), HybridRoute::Gpu);
        // Splittable near-parity work splits, CPU share ∝ its speed.
        let n = 4 * h.min_split_elems;
        match decide(&h, ms(10), ms(10), 0.0, Some(n)) {
            HybridRoute::Split { cpu_n } => {
                assert!((cpu_n as f64 / n as f64 - 0.5).abs() < 0.01)
            }
            other => panic!("expected split, got {other:?}"),
        }
        // High model error halves the host share.
        match decide(&h, ms(10), ms(10), 1.0, Some(n)) {
            HybridRoute::Split { cpu_n } => {
                assert!((cpu_n as f64 / n as f64 - 0.25).abs() < 0.01)
            }
            other => panic!("expected split, got {other:?}"),
        }
        // Too small to split: the margin rule applies instead.
        assert_eq!(
            decide(&h, ms(10), ms(10), 0.0, Some(h.min_split_elems)),
            HybridRoute::Gpu
        );
        // Dominance beyond split_balance: no split, route outright.
        assert_eq!(decide(&h, ms(100), ms(10), 0.0, Some(n)), HybridRoute::Cpu);
    }
}

//! Elastic membership and checkpoint/restore surface of the
//! [`GpuManager`] — the methods that grow or shrink a live worker's device
//! complement and that carry a job across a restore boundary. Kept out of
//! `manager.rs` so the coordinator stays the slim event-loop wiring the
//! paper's decomposition calls for.
//!
//! Membership changes arrive two ways, both funneled through
//! [`GStreamManager::on_membership`](crate::gstream::GStreamManager):
//!
//! * **Scripted**: a [`MembershipPlan`] installed via
//!   [`GpuManager::set_membership_plan`] delivers joins and leaves *inside*
//!   the drain event loop, deterministically interleaved with scripted
//!   faults and pipeline events — the chaos-test path.
//! * **Immediate**: [`GpuManager::join_device`] / `leave_device` apply a
//!   change between drains (the `GpuFabric::join_node`/`leave_node` path).
//!   Between drains the stream layer is quiescent — nothing queued, penned,
//!   or in flight — so applying the change through the same handler with a
//!   throwaway event queue is exact: a join's stream wake-ups are
//!   re-created by the next drain's wake-all pass, and a leave has no
//!   flights to evacuate.
//!
//! Restore installs the snapshot's covered tags on the session;
//! `GpuManager::submit_for` consumes one tag per matching submission so a
//! restored work is satisfied from the snapshot exactly once (ledger:
//! `works_restored`), and everything after the snapshot frontier replays
//! normally.

use crate::checkpoint::CacheManifestEntry;
use crate::gstream::{Engine, Ev};
use crate::manager::GpuManager;
use crate::session::JobId;
use gflink_sim::{EventQueue, MembershipKind, MembershipPlan, SimTime};

impl GpuManager {
    /// Script membership changes (joins/leaves) against this worker.
    /// Events at instants the simulation has already passed fire
    /// immediately at the next drain, interleaved with scripted faults.
    pub fn set_membership_plan(&mut self, plan: MembershipPlan) {
        self.recovery.set_membership_plan(plan);
    }

    /// Apply one membership event right now (between drains) through the
    /// same handler the scripted path uses. The stream layer is quiescent
    /// between drains, so the throwaway event queue can only hold a join's
    /// stream wake-ups — which the next drain's wake-all pass re-creates.
    fn apply_membership_now(&mut self, kind: MembershipKind, at: SimTime) {
        let mut q: EventQueue<Ev> = EventQueue::new();
        let mut eng = Engine {
            gmem: &mut self.gmem,
            recovery: &mut self.recovery,
            sessions: &mut self.sessions,
            registry: &self.registry,
            rng: &mut self.rng,
        };
        self.gstream
            .on_membership(&mut eng, kind, &self.cfg, at, &mut q);
    }

    /// A device joins the live worker at `at`: fresh stream bulk, fresh
    /// GWork queue, one new cache region per open session (partitioned per
    /// weights when cache partitioning is on). Returns the new device's
    /// index. The next drain's Alg. 5.2 wake-ups pull backlog onto it.
    pub fn join_device(&mut self, at: SimTime) -> usize {
        let g = self.gmem.gpu_count();
        self.apply_membership_now(MembershipKind::Join, at);
        g
    }

    /// Device `gpu` gracefully leaves the live worker at `at`: its cached
    /// blocks are invalidated and its budget returns to the survivors. Not
    /// a fault — the ledger records a membership change (`members_left`).
    pub fn leave_device(&mut self, gpu: usize, at: SimTime) {
        self.apply_membership_now(MembershipKind::Leave { gpu }, at);
    }

    /// Open `job` (weighted) as restored from a checkpoint: install the
    /// snapshot's covered tags on the session. Each subsequent
    /// [`submit_for`](GpuManager::submit_for) carrying a covered tag is
    /// satisfied from the snapshot instead of executing, consuming the tag
    /// — the exactly-once dedup across the restore boundary.
    pub fn restore_job(&mut self, job: JobId, weight: u32, tags: &[(u32, u32)]) {
        self.begin_job_weighted(job, weight);
        let session = self.sessions.get_mut(&job).expect("session just ensured");
        session.covered.extend(tags.iter().copied());
    }

    /// Deterministic manifest of `job`'s cached blocks across this
    /// worker's devices — what a checkpoint snapshots so a restored job
    /// knows which blocks were GPU-resident at the frontier.
    pub fn cache_manifest(&self, job: JobId) -> Vec<CacheManifestEntry> {
        let mut out = Vec::new();
        if let Some(s) = self.sessions.get(&job) {
            for (g, region) in s.regions.iter().enumerate() {
                for (key, bytes) in region.manifest() {
                    out.push(CacheManifestEntry {
                        worker: self.worker_id as u32,
                        gpu: g as u32,
                        key,
                        bytes,
                    });
                }
            }
        }
        out
    }

    /// Account works the closing `job` still had parked — in its
    /// backpressure pen or its pending queue — as abandoned in the fault
    /// ledger (`parked_abandoned`), so a `JobHandle` dropped mid-stream
    /// tears down without leaking unexecuted work unaccounted.
    pub(crate) fn abandon_leftovers(
        &mut self,
        job: JobId,
        session: &mut crate::session::JobSession,
    ) {
        let penned = self.gstream.sched.take_pen(job);
        let n = penned.len() as u64 + session.pending.len() as u64;
        session.pending.clear();
        if n > 0 {
            self.recovery.note_parked_abandoned(session, n);
        }
    }
}

#![warn(clippy::too_many_lines)]

//! Small-GWork transfer batching: fused flights and the batch-under-backlog
//! accumulator.
//!
//! Dispatching a tiny GWork pays the transfer channel's per-call overhead α
//! twice (H2D and D2H) for very little payload — at the Table 2 fit, a
//! 2 KiB copy is ~74% α. When the fabric is saturated, small works that
//! would *queue anyway* are instead coalesced into a [`PendingBatch`] and
//! later dispatched as one [`FusedFlight`]: a single fused H2D reservation
//! (one α for every member copy), the member kernels back-to-back on one
//! stream, and a single fused D2H. Results are split back per member, so a
//! batched work's output bytes — and therefore every digest downstream —
//! are identical to the unbatched run.
//!
//! Batches only form under backlog (the dispatch path consults the batcher
//! only after Algorithm 5.1 found no idle stream), and a freed stream
//! flushes its GPU's batcher before going idle, so enabling batching never
//! delays work an idle stream could have taken. A [window
//! event](crate::gstream::Ev::FlushBatch) bounds how long a partial batch
//! may wait; epochs guard against stale windows.

use crate::gmemory::pro_rata;
use crate::gstream::{Engine, Ev, GStreamManager, QueuedWork};
use crate::gwork::{CacheKey, CompletedWork, GWork, WorkTiming};
use crate::recovery::{FailReason, ManagerError};
use crate::session::JobId;
use gflink_gpu::DevBufId;
use gflink_memory::{ArenaBuf, HBuffer, PinnedLease};
use gflink_sim::trace::{gpu_pid, stream_tid, Cat, TraceEvent};
use gflink_sim::{EventQueue, SimTime};

/// One entry of a GPU's parked-work queue: a lone work or a fused batch.
pub(crate) enum Parked {
    /// An ordinary queued work (Algorithm 5.1 lines 11–18).
    Single(QueuedWork),
    /// A flushed batch awaiting a stream, dispatched as one fused flight.
    Fused(FusedBatch),
}

impl Parked {
    pub(crate) fn job(&self) -> JobId {
        match self {
            Parked::Single(qw) => qw.job,
            Parked::Fused(b) => b.job,
        }
    }

    pub(crate) fn op_label(&self) -> &str {
        match self {
            Parked::Single(qw) => &qw.work.name,
            Parked::Fused(_) => "fused-batch",
        }
    }

    /// Flatten into plain queued works (device-loss queue drain).
    pub(crate) fn into_members(self) -> Vec<QueuedWork> {
        match self {
            Parked::Single(qw) => vec![qw],
            Parked::Fused(b) => b.members,
        }
    }
}

/// A flushed, ready-to-dispatch transfer batch. All members belong to one
/// job (so one cache region and one ledger are in play).
pub(crate) struct FusedBatch {
    pub(crate) job: JobId,
    pub(crate) members: Vec<QueuedWork>,
}

/// A per-GPU accumulating batch: works land here from the dispatch park
/// path until a flush condition (fill, job change, window, or an idle
/// stream) moves it to the queue as a [`Parked::Fused`].
pub(crate) struct PendingBatch {
    pub(crate) job: JobId,
    pub(crate) members: Vec<QueuedWork>,
    pub(crate) bytes: u64,
    /// Identity guarding the window event against stale firings.
    pub(crate) epoch: u64,
}

/// One member of a fused flight, carrying the same per-work state as a solo
/// `InFlight`.
pub(crate) struct FusedMember {
    pub(crate) work: GWork,
    pub(crate) retries: u32,
    pub(crate) timing: WorkTiming,
    pub(crate) dev_inputs: Vec<DevBufId>,
    pub(crate) transient: Vec<DevBufId>,
    pub(crate) pinned: Vec<CacheKey>,
    pub(crate) out_dev: DevBufId,
    pub(crate) emitted: Option<usize>,
    /// When this member's kernel completes (kernels run back-to-back).
    pub(crate) kernel_end: SimTime,
}

/// A dispatched batch in flight: one fused H2D, sequential member kernels
/// on one stream, one fused D2H.
pub(crate) struct FusedFlight {
    /// Monotonic creation stamp; device-loss recovery re-submits flights in
    /// `seq` order (slot ids are reused, seqs are not).
    pub(crate) seq: u64,
    pub(crate) job: JobId,
    pub(crate) gpu: usize,
    pub(crate) stream: usize,
    pub(crate) members: Vec<FusedMember>,
    pub(crate) staging: Vec<PinnedLease>,
    /// An injected hang wedged a member kernel; only the watchdog recovers
    /// the flight.
    pub(crate) hung: bool,
}

fn work_bytes(work: &GWork) -> u64 {
    work.inputs.iter().map(|b| b.logical_bytes).sum()
}

impl GStreamManager {
    /// Whether a work that is about to be parked should accumulate into a
    /// transfer batch instead: batching on, first attempt (retried works
    /// always run solo so recovery stays simple), and small enough that α
    /// dominates its copies.
    pub(crate) fn batchable(&self, retries: u32, work: &GWork) -> bool {
        self.batch_cfg.enabled
            && retries == 0
            // Split children complete through the merge table, which the
            // fused completion path bypasses — they always run solo.
            && !crate::gstream::is_split_child(work.tag)
            && work_bytes(work) <= self.batch_cfg.small_work_bytes
    }

    /// Park a small work into GPU `gpu`'s accumulating batch, flushing on
    /// job change or when the batch reaches its fill thresholds. A fresh
    /// batch arms a window event so a lull cannot strand it.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn enqueue_batched(
        &mut self,
        job: JobId,
        work: GWork,
        submitted: SimTime,
        retries: u32,
        gpu: usize,
        t: SimTime,
        q: &mut EventQueue<Ev>,
    ) {
        // One job per batch: a different tenant's pending batch flushes.
        if self.batchers[gpu].as_ref().is_some_and(|b| b.job != job) {
            self.flush_batcher(gpu);
        }
        if self.batchers[gpu].is_none() {
            let epoch = self.batch_epoch;
            self.batch_epoch += 1;
            self.batchers[gpu] = Some(PendingBatch {
                job,
                members: Vec::new(),
                bytes: 0,
                epoch,
            });
            q.schedule(t + self.batch_cfg.window, Ev::FlushBatch { gpu, epoch });
        }
        let full = {
            let b = self.batchers[gpu].as_mut().expect("just ensured");
            b.bytes += work_bytes(&work);
            b.members.push(QueuedWork {
                job,
                submitted,
                retries,
                work,
            });
            b.members.len() >= self.batch_cfg.max_works || b.bytes >= self.batch_cfg.max_bytes
        };
        if full {
            self.flush_batcher(gpu);
        }
    }

    /// Move GPU `gpu`'s accumulating batch to its queue. A lone member goes
    /// back as an ordinary [`Parked::Single`] — fusing one work would pay
    /// batching's bookkeeping for no α savings.
    pub(crate) fn flush_batcher(&mut self, gpu: usize) {
        let Some(mut b) = self.batchers[gpu].take() else {
            return;
        };
        let parked = if b.members.len() == 1 {
            Parked::Single(b.members.pop().expect("len checked"))
        } else {
            Parked::Fused(FusedBatch {
                job: b.job,
                members: b.members,
            })
        };
        self.sched.park(gpu, parked);
    }

    /// The batching window expired: flush the pending batch (unless it was
    /// already flushed or superseded — the epoch tells) and wake an idle
    /// stream so a fully idle fabric cannot strand the flushed work.
    pub(crate) fn on_flush_batch(
        &mut self,
        gpu: usize,
        epoch: u64,
        t: SimTime,
        q: &mut EventQueue<Ev>,
    ) {
        if self.batchers[gpu].as_ref().is_none_or(|b| b.epoch != epoch) {
            return;
        }
        self.flush_batcher(gpu);
        if let Some(s) = self.first_idle_stream(gpu, t) {
            q.schedule(t, Ev::StreamFree { gpu, stream: s });
        } else if self.policy.steals() {
            if let Some((g, s)) = self.most_idle_bulk(t) {
                q.schedule(t, Ev::StreamFree { gpu: g, stream: s });
            }
        }
    }

    /// Emit one fused pipeline-stage span on the flight's stream thread.
    #[allow(clippy::too_many_arguments)]
    fn trace_fused_stage(
        &self,
        gpu: usize,
        stream: usize,
        job: JobId,
        stage: &'static str,
        start: SimTime,
        end: SimTime,
        works: usize,
    ) {
        if self.tracer.enabled() {
            self.tracer.record(
                TraceEvent::span(
                    gpu_pid(self.worker_id, gpu),
                    stream_tid(stream),
                    Cat::Stage,
                    stage,
                    start,
                    end,
                )
                .with_job(job.0)
                .with_arg("op", "fused-batch")
                .with_arg("works", works as u64),
            );
        }
    }

    /// Dispatch a fused batch onto (gpu, stream): one fused H2D staging
    /// pass, then the member kernels driven by the Fused* events. On any
    /// staging or allocation failure the whole batch unwinds and every
    /// member retries solo (retried works are never re-batched).
    pub(crate) fn execute_fused(
        &mut self,
        eng: &mut Engine<'_>,
        batch: FusedBatch,
        gpu: usize,
        stream: usize,
        t: SimTime,
        q: &mut EventQueue<Ev>,
    ) {
        let FusedBatch { job, members } = batch;
        let n = members.len();
        let mut timings: Vec<WorkTiming> = members
            .iter()
            .map(|m| WorkTiming {
                submitted: m.submitted,
                started: t,
                ..WorkTiming::default()
            })
            .collect();
        let (metas, works): (Vec<(SimTime, u32)>, Vec<GWork>) = members
            .into_iter()
            .map(|m| ((m.submitted, m.retries), m.work))
            .unzip();
        let session = eng.sessions.get_mut(&job).expect("session open");
        let staged = eng.gmem.stage_fused(
            &mut session.regions[gpu],
            gpu,
            job.0,
            &works,
            t,
            &mut timings,
        );
        let mut failure = staged.failure;
        let mut out_devs: Vec<DevBufId> = Vec::with_capacity(n);
        if failure.is_none() {
            for work in &works {
                match eng
                    .gmem
                    .alloc_output(&mut session.regions[gpu], gpu, work, t)
                {
                    Ok(dev) => out_devs.push(dev),
                    Err(e) => {
                        failure = Some(e);
                        break;
                    }
                }
            }
        }
        if let Some(err) = failure {
            // Unwind every member's partial placement; the stream was never
            // occupied. Each member retries on its own.
            eng.gmem.release_staging(staged.staging);
            let session = eng.sessions.get_mut(&job).expect("session open");
            for (i, sm) in staged.members.into_iter().enumerate() {
                let out = out_devs.get(i).copied();
                eng.gmem.reclaim(
                    &mut session.regions[gpu],
                    gpu,
                    sm.dev_inputs,
                    sm.transient,
                    sm.pinned,
                    out,
                );
            }
            for (work, &(submitted, retries)) in works.into_iter().zip(&metas) {
                eng.recovery.retry_or_fail(
                    session,
                    job,
                    work,
                    submitted,
                    retries,
                    t,
                    FailReason::Fatal(err.clone()),
                    q,
                );
            }
            return;
        }
        // Occupy the stream until the fused D2H completes.
        self.stream_busy_until[gpu][stream] = SimTime::MAX;
        let seq = self.next_flight;
        self.next_flight += 1;
        let saved = eng
            .gmem
            .gpu(gpu)
            .transfer_path()
            .alpha_saved(staged.upload_calls);
        self.fused_batches += 1;
        self.fused_works += n as u64;
        self.alpha_saved += saved;
        session.batches += 1;
        session.batched_works += n as u64;
        session.alpha_saved += saved;
        session.batch_sizes.add(n as f64);
        if let Some(start) = staged.h2d_start {
            self.trace_fused_stage(gpu, stream, job, "h2d", start, staged.kernel_earliest, n);
        }
        let fmembers: Vec<FusedMember> = works
            .into_iter()
            .zip(metas)
            .zip(staged.members)
            .zip(timings.into_iter().zip(out_devs))
            .map(
                |(((work, (_, retries)), sm), (timing, out_dev))| FusedMember {
                    work,
                    retries,
                    timing,
                    dev_inputs: sm.dev_inputs,
                    transient: sm.transient,
                    pinned: sm.pinned,
                    out_dev,
                    emitted: None,
                    kernel_end: SimTime::ZERO,
                },
            )
            .collect();
        let id = self.fused_in_flight.insert(FusedFlight {
            seq,
            job,
            gpu,
            stream,
            members: fmembers,
            staging: staged.staging,
            hung: false,
        });
        q.schedule(staged.kernel_earliest, Ev::FusedKernelStage(id));
    }

    /// Stage 2, fused: the member kernels launch back-to-back on the one
    /// stream once the fused copy lands. A missing kernel or a dead device
    /// unwinds the whole flight (every member then retries solo); injected
    /// transients recover only the afflicted members.
    pub(crate) fn on_fused_kernel_stage(
        &mut self,
        eng: &mut Engine<'_>,
        id: u64,
        t: SimTime,
        q: &mut EventQueue<Ev>,
    ) {
        let Some(mut fl) = self.fused_in_flight.remove(id) else {
            // The flight was recovered (device loss) before this fired.
            return;
        };
        // The fused H2D has landed: staging buffers go back to the pool.
        eng.gmem.release_staging(std::mem::take(&mut fl.staging));
        let mut cursor = t;
        for i in 0..fl.members.len() {
            let kernel = eng
                .registry
                .lock()
                .get_by_id(fl.members[i].work.kernel)
                .cloned();
            let Some(kernel) = kernel else {
                self.recover_fused_flight(eng, fl, t, t, FailReason::RetriesExhausted, q);
                return;
            };
            let mb = &mut fl.members[i];
            let launched = eng.gmem.gpu_mut(fl.gpu).launch(
                cursor,
                &kernel,
                &mb.dev_inputs,
                &[mb.out_dev],
                &mb.work.params,
                mb.work.n_actual,
                mb.work.n_logical,
                mb.work.coalescing,
            );
            let (kres, profile) = match launched {
                Ok(v) => v,
                Err(_) => {
                    self.recover_fused_flight(eng, fl, t, t, FailReason::RetriesExhausted, q);
                    return;
                }
            };
            mb.timing.kernel = kres.duration();
            mb.emitted = profile.emitted;
            mb.kernel_end = kres.end;
            cursor = kres.end;
            self.trace_fused_stage(fl.gpu, fl.stream, fl.job, "kernel", kres.start, kres.end, 1);
        }
        // A scripted hang wedges the whole flight (the members share one
        // stream); the watchdog recovers every member.
        if eng.recovery.take_hang(fl.gpu) {
            fl.hung = true;
            let deadline = SimTime::from_nanos(
                t.as_nanos()
                    .saturating_add(eng.recovery.hang_timeout().as_nanos()),
            );
            let id = self.fused_in_flight.insert(fl);
            q.schedule(deadline, Ev::FusedHangCheck(id));
            return;
        }
        // Transient faults hit members individually — each roll mirrors the
        // solo path — and the afflicted members retry solo while survivors
        // continue to the fused D2H.
        let mut survivors = Vec::with_capacity(fl.members.len());
        let mut last_end = cursor;
        for mb in fl.members.drain(..) {
            let scripted = eng.recovery.take_transient(fl.gpu);
            if scripted || eng.recovery.random_transient(&mut *eng.rng) {
                last_end = last_end.max(mb.kernel_end);
                let session = eng.sessions.get_mut(&fl.job).expect("session open");
                eng.recovery.note_transient_fault(session);
                eng.gmem.reclaim(
                    &mut session.regions[fl.gpu],
                    fl.gpu,
                    mb.dev_inputs,
                    mb.transient,
                    mb.pinned,
                    Some(mb.out_dev),
                );
                eng.recovery.retry_or_fail(
                    session,
                    fl.job,
                    mb.work,
                    mb.timing.submitted,
                    mb.retries,
                    mb.kernel_end.max(t),
                    FailReason::RetriesExhausted,
                    q,
                );
            } else {
                survivors.push(mb);
            }
        }
        fl.members = survivors;
        if fl.members.is_empty() {
            // Every member faulted; the stream frees at the wasted end.
            self.stream_busy_until[fl.gpu][fl.stream] = last_end;
            q.schedule(
                last_end,
                Ev::StreamFree {
                    gpu: fl.gpu,
                    stream: fl.stream,
                },
            );
            return;
        }
        let d2h_at = fl
            .members
            .iter()
            .map(|mb| mb.kernel_end)
            .max()
            .expect("non-empty");
        let id = self.fused_in_flight.insert(fl);
        q.schedule(d2h_at, Ev::FusedD2hStage(id));
    }

    /// Stage 3, fused: one fused D2H for every member's results (one α),
    /// split back per member — pro-rata engine time, exact per-member
    /// output bytes, so digests match the unbatched run bit for bit.
    pub(crate) fn on_fused_d2h_stage(
        &mut self,
        eng: &mut Engine<'_>,
        id: u64,
        t: SimTime,
        q: &mut EventQueue<Ev>,
    ) {
        let Some(fl) = self.fused_in_flight.remove(id) else {
            // The flight was recovered (device loss) before this fired.
            return;
        };
        let (job, gpu, stream) = (fl.job, fl.gpu, fl.stream);
        let n = fl.members.len();
        let logicals: Vec<u64> = fl
            .members
            .iter()
            .map(|mb| match mb.emitted {
                Some(e) => {
                    (mb.work.out_logical_bytes as u128 * e as u128
                        / mb.work.out_records.max(1) as u128) as u64
                }
                None => mb.work.out_logical_bytes,
            })
            .collect();
        // Result buffers are arena leases, recycled from earlier flights of
        // the same output size (zero-on-hit keeps the split bit-identical
        // to per-work fresh allocations).
        let mut outs: Vec<ArenaBuf> = fl
            .members
            .iter()
            .map(|mb| eng.gmem.lease_output(job.0, mb.work.out_actual_bytes))
            .collect();
        let mut items: Vec<(u64, DevBufId, &mut HBuffer)> = logicals
            .iter()
            .zip(&fl.members)
            .zip(outs.iter_mut())
            .map(|((&l, mb), h)| (l, mb.out_dev, &mut **h))
            .collect();
        let copied = eng.gmem.gpu_mut(gpu).copy_d2h_batch(t, &mut items);
        drop(items);
        let r = match copied {
            Ok(r) => r,
            Err(e) => {
                // Defensive: loss recovery removes flights before this can
                // fire, but a failed readback still routes through retry.
                self.recover_fused_flight(
                    eng,
                    fl,
                    t,
                    t,
                    FailReason::Fatal(ManagerError::Device(e)),
                    q,
                );
                return;
            }
        };
        let saved = eng.gmem.gpu(gpu).transfer_path().alpha_saved(n);
        self.alpha_saved += saved;
        self.trace_fused_stage(gpu, stream, job, "d2h", r.start, r.end, n);
        let total: u64 = logicals.iter().sum();
        let session = eng.sessions.get_mut(&job).expect("session open");
        session.alpha_saved += saved;
        for ((mut mb, logical), out_host) in fl.members.into_iter().zip(logicals).zip(outs) {
            mb.timing.d2h = pro_rata(r.duration(), logical, total);
            mb.timing.bytes_d2h = logical;
            mb.timing.completed = r.end;
            eng.gmem.reclaim(
                &mut session.regions[gpu],
                gpu,
                mb.dev_inputs,
                mb.transient,
                mb.pinned,
                Some(mb.out_dev),
            );
            self.executed_per_gpu[gpu] += 1;
            session.completed.push(CompletedWork {
                name: mb.work.name,
                tag: mb.work.tag,
                gpu,
                stream,
                output: out_host,
                emitted: mb.emitted,
                timing: mb.timing,
            });
        }
        self.stream_busy_until[gpu][stream] = r.end;
        q.schedule(r.end, Ev::StreamFree { gpu, stream });
    }

    /// The watchdog fires `hang_timeout` after a fused launch; a flight
    /// still wedged recovers every member.
    pub(crate) fn on_fused_hang_check(
        &mut self,
        eng: &mut Engine<'_>,
        id: u64,
        t: SimTime,
        q: &mut EventQueue<Ev>,
    ) {
        let hung = self
            .fused_in_flight
            .get(id)
            .map(|fl| fl.hung)
            .unwrap_or(false);
        if !hung {
            // Completed normally, or already recovered by device loss.
            return;
        }
        let fl = self.fused_in_flight.remove(id).expect("checked above");
        {
            let session = eng.sessions.get_mut(&fl.job).expect("session open");
            eng.recovery.note_hang_detected(session);
        }
        self.recover_fused_flight(eng, fl, t, t, FailReason::RetriesExhausted, q);
    }

    /// Common tail of every fused-flight recovery: reclaim every member's
    /// buffers and pins, free the stream, and route each member through
    /// retry-or-fail (retried works run solo).
    fn recover_fused_flight(
        &mut self,
        eng: &mut Engine<'_>,
        mut fl: FusedFlight,
        stream_free_at: SimTime,
        retry_at: SimTime,
        reason: FailReason,
        q: &mut EventQueue<Ev>,
    ) {
        eng.gmem.release_staging(std::mem::take(&mut fl.staging));
        let (job, gpu, stream) = (fl.job, fl.gpu, fl.stream);
        let session = eng.sessions.get_mut(&job).expect("session open");
        for mb in fl.members {
            eng.gmem.reclaim(
                &mut session.regions[gpu],
                gpu,
                mb.dev_inputs,
                mb.transient,
                mb.pinned,
                Some(mb.out_dev),
            );
            eng.recovery.retry_or_fail(
                session,
                job,
                mb.work,
                mb.timing.submitted,
                mb.retries,
                retry_at,
                reason.clone(),
                q,
            );
        }
        self.stream_busy_until[gpu][stream] = stream_free_at;
        q.schedule(stream_free_at, Ev::StreamFree { gpu, stream });
    }
}

//! The GFlink programming framework: GPU-based DataSets (§3.5).
//!
//! Users of GFlink (1) declare a GStruct-backed record type, (2) provide a
//! kernel, and (3) call GPU-based operators on a GPU-based DataSet. The
//! Rust analogues:
//!
//! 1. implement [`GRecord`] for the record type (the schema plus store/load
//!    into a `RecordView` — what the paper's annotation + reflection
//!    machinery derives);
//! 2. register a kernel closure in the fabric's registry under its
//!    `executeName`;
//! 3. wrap a `DataSet<T>` into a [`GDataSet<T>`] and call
//!    [`GDataSet::gpu_map_partition`] with a [`GpuMapSpec`].
//!
//! `gpu_map_partition` implements the block-processing model of §5.1: each
//! partition is split into blocks (a GStruct never straddles a block), the
//! owning task slot *produces* one [`GWork`] per block, and the worker's
//! [`GpuManager`] consumes them — three-stage pipelining, caching and
//! locality-aware scheduling all apply. Results are decoded back into
//! records and the partition's ready time advances to its last block's
//! completion.

use crate::checkpoint::{CheckpointManager, JobSnapshot, SnapshotBlock};
use crate::config::CheckpointConfig;
use crate::gwork::{CacheKey, GWork, WorkBuf};
use crate::jobsched::{AdmissionError, JobHandle};
use crate::manager::{GpuManager, GpuWorkerConfig, CPU_FALLBACK_GPU};
use crate::observe::Observer;
use crate::session::JobId;
use gflink_flink::dataset::RawPart;
use gflink_flink::graph::{PhaseKind, PhaseRecord};
use gflink_flink::{DataSet, FlinkEnv, GpuLane, GpuWorkSample, JobReport, SharedCluster};
use gflink_gpu::{KernelArgs, KernelId, KernelProfile, KernelRegistry};
use gflink_memory::{ArenaBuf, DataLayout, GStructDef, HBuffer, RecordReader, RecordView};
use gflink_sim::{
    FaultLedger, MembershipPlan, Metrics, Phase, RecEvent, RecKind, SimTime, SloPolicy, Tracer,
};
use parking_lot::Mutex;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A record type bindable to a GStruct layout.
///
/// This is the paper's `extends GStruct_8` + `@StructField` declaration:
/// [`GRecord::def`] is the reflected schema, and store/load move a record
/// between Rust and the raw off-heap bytes.
pub trait GRecord: Clone + Send + 'static {
    /// The GStruct schema of this record type.
    fn def() -> GStructDef;
    /// Write this record into slot `idx` of a layout view.
    fn store(&self, view: &mut RecordView<'_>, idx: usize);
    /// Read the record at slot `idx` of a layout view.
    fn load(reader: &RecordReader<'_>, idx: usize) -> Self;
}

/// Output shape of a GPU map.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OutMode {
    /// One output record per input record (classic map, e.g. PointAdd).
    PerRecord,
    /// A fixed number of output records per block (block-level aggregation,
    /// e.g. KMeans partial sums: k records per block).
    PerBlock(usize),
    /// Up to `per_record` output records per input record; the kernel
    /// declares the valid count via `KernelProfile::with_emitted` (used by
    /// block-level combining with data-dependent cardinality, e.g. the
    /// PageRank contribution aggregation).
    Bounded {
        /// Maximum output records per input record.
        per_record: usize,
    },
}

/// An extra input buffer shared by all blocks of a GPU map (broadcast
/// state like KMeans centers, or SpMV's dense vector).
#[derive(Clone)]
pub struct ExtraInput {
    /// The host bytes.
    pub data: Arc<HBuffer>,
    /// Paper-scale size for transfer timing.
    pub logical_bytes: u64,
    /// `Some(token)` caches the buffer on the GPU under that token (used by
    /// SpMV to keep the dense vector resident, Fig. 8a); `None` re-transfers
    /// it every map (used for per-iteration state like KMeans centers).
    pub cache_token: Option<u64>,
}

/// Specification of a GPU-based mapper (what the user assembles in their
/// `gpuMapBlock` implementation, Algorithm 3.1).
#[derive(Clone)]
pub struct GpuMapSpec {
    /// Kernel `executeName` in the fabric registry. Shared (`Arc`) so the
    /// per-block producer clones a pointer, not a string.
    pub kernel: Arc<str>,
    /// Interned dispatch id for `kernel`, set by [`GpuMapSpec::build`];
    /// `KernelId::UNRESOLVED` until then.
    pub kernel_id: KernelId,
    /// Cosmetic `.ptx` provenance.
    pub ptx_path: Arc<str>,
    /// Scalar kernel parameters, shared across blocks.
    pub params: Arc<[f64]>,
    /// Mark the input blocks `Cache` (§4.2.2) — essential for iterative
    /// workloads.
    pub cache_input: bool,
    /// Output shape.
    pub out_mode: OutMode,
    /// Logical elements per actual output element (`None` ⇒ inherit the
    /// input's scale for `PerRecord`, `1.0` for `PerBlock`).
    pub out_scale: Option<f64>,
    /// Optional extra input shared by all blocks — broadcast state such as
    /// the current KMeans centers or SpMV's dense vector.
    pub extra_input: Option<ExtraInput>,
    /// CUDA thread-block size (informational).
    pub block_size: u32,
}

impl GpuMapSpec {
    /// A spec with defaults: cached input, per-record output, 256 threads.
    pub fn new(kernel: &str) -> Self {
        GpuMapSpec {
            kernel: kernel.into(),
            kernel_id: KernelId::UNRESOLVED,
            ptx_path: format!("/{kernel}.ptx").into(),
            params: Arc::from([]),
            cache_input: true,
            out_mode: OutMode::PerRecord,
            out_scale: None,
            extra_input: None,
            block_size: 256,
        }
    }

    /// Set scalar parameters.
    pub fn with_params(mut self, params: Vec<f64>) -> Self {
        self.params = params.into();
        self
    }

    /// Set the output mode.
    pub fn with_out_mode(mut self, mode: OutMode) -> Self {
        self.out_mode = mode;
        self
    }

    /// Set the output scale.
    pub fn with_out_scale(mut self, scale: f64) -> Self {
        self.out_scale = Some(scale);
        self
    }

    /// Disable input caching.
    pub fn uncached(mut self) -> Self {
        self.cache_input = false;
        self
    }

    /// Attach a broadcast-style extra input, re-transferred on every map.
    pub fn with_extra_input(mut self, buf: Arc<HBuffer>, logical_bytes: u64) -> Self {
        self.extra_input = Some(ExtraInput {
            data: buf,
            logical_bytes,
            cache_token: None,
        });
        self
    }

    /// Attach an extra input cached on the GPU under `token` (obtain one
    /// from [`GpuFabric::new_cache_token`]).
    pub fn with_cached_extra_input(
        mut self,
        buf: Arc<HBuffer>,
        logical_bytes: u64,
        token: u64,
    ) -> Self {
        self.extra_input = Some(ExtraInput {
            data: buf,
            logical_bytes,
            cache_token: Some(token),
        });
        self
    }

    /// Validate the spec against `fabric` *before* any work is submitted:
    /// the kernel must be registered (otherwise every block would fail deep
    /// inside dispatch with `KernelMissing` and burn its whole retry
    /// budget), and an attached extra input must carry non-degenerate byte
    /// accounting (zero logical or actual bytes silently models an empty
    /// transfer). On success, returns the spec with the kernel name
    /// interned to its dispatch [`KernelId`] — blocks built from the spec
    /// never hash the `executeName` again.
    pub fn build(mut self, fabric: &GpuFabric) -> Result<GpuMapSpec, SpecError> {
        match fabric.registry.lock().resolve(&self.kernel) {
            Some(id) => self.kernel_id = id,
            None => {
                return Err(SpecError::UnregisteredKernel {
                    name: self.kernel.to_string(),
                })
            }
        }
        if let Some(extra) = &self.extra_input {
            if extra.data.is_empty() || extra.logical_bytes == 0 {
                return Err(SpecError::DegenerateExtraInput {
                    actual_bytes: extra.data.len(),
                    logical_bytes: extra.logical_bytes,
                });
            }
        }
        Ok(self)
    }
}

/// Why [`GpuMapSpec::build`] rejected a spec.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SpecError {
    /// The kernel name is not registered in the fabric's registry.
    UnregisteredKernel {
        /// The missing `executeName`.
        name: String,
    },
    /// The extra input's byte accounting is degenerate (empty host buffer
    /// or zero logical bytes).
    DegenerateExtraInput {
        /// Host bytes actually held.
        actual_bytes: usize,
        /// Logical bytes declared for transfer timing.
        logical_bytes: u64,
    },
}

impl std::fmt::Display for SpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SpecError::UnregisteredKernel { name } => {
                write!(f, "kernel {name:?} is not registered in the fabric")
            }
            SpecError::DegenerateExtraInput {
                actual_bytes,
                logical_bytes,
            } => write!(
                f,
                "extra input byte accounting is degenerate \
                 ({actual_bytes} actual / {logical_bytes} logical bytes)"
            ),
        }
    }
}

impl std::error::Error for SpecError {}

/// Fabric-wide GPU configuration.
#[derive(Clone, Debug)]
pub struct FabricConfig {
    /// Per-worker GPU complement and policies.
    pub worker: GpuWorkerConfig,
    /// Logical bytes per GPU block (§5.1's block size; larger than Flink's
    /// 32 KiB page to amortize per-call overheads — see DESIGN.md).
    pub block_bytes: u64,
    /// Producer-side task time to assemble and submit one GWork.
    pub producer_overhead: SimTime,
    /// Checkpoint/restore policy: when enabled, each GPU operator
    /// periodically snapshots its completed blocks to HDFS and resumes
    /// from the last durable snapshot on a re-run (see DESIGN.md §13).
    pub checkpoint: CheckpointConfig,
}

impl Default for FabricConfig {
    fn default() -> Self {
        FabricConfig {
            worker: GpuWorkerConfig::default(),
            block_bytes: 4 * 1024 * 1024,
            producer_overhead: SimTime::from_micros(30),
            checkpoint: CheckpointConfig::default(),
        }
    }
}

/// The cluster's GPU fabric: one [`GpuManager`] per worker plus the shared
/// kernel registry. Shared (like [`SharedCluster`]) so concurrent jobs
/// contend for the same devices.
#[derive(Clone)]
pub struct GpuFabric {
    pub(crate) managers: Arc<Mutex<Vec<GpuManager>>>,
    registry: Arc<Mutex<KernelRegistry>>,
    /// Shared, immutable after construction: per-operator and per-manager
    /// paths clone the `Arc`, not the config.
    cfg: Arc<FabricConfig>,
    next_dataset: Arc<AtomicU64>,
    next_job: Arc<AtomicU64>,
    pub(crate) live_jobs: Arc<Mutex<BTreeSet<JobId>>>,
    tracer: Arc<Mutex<Tracer>>,
    pub(crate) ckpt: Arc<Mutex<CheckpointManager>>,
    pub(crate) metrics: Arc<Mutex<Metrics>>,
    pub(crate) observer: Arc<Mutex<Observer>>,
}

impl GpuFabric {
    /// Build the fabric for `num_workers` workers.
    pub fn new(num_workers: usize, cfg: FabricConfig) -> Self {
        let registry = Arc::new(Mutex::new(KernelRegistry::new()));
        // One shared worker config for every manager (the old path cloned
        // the whole config per worker).
        let worker_cfg = Arc::new(cfg.worker.clone());
        let managers = (0..num_workers)
            .map(|w| GpuManager::new(w, Arc::clone(&worker_cfg), Arc::clone(&registry)))
            .collect();
        let ckpt = Arc::new(Mutex::new(CheckpointManager::new(cfg.checkpoint.clone())));
        let cfg = Arc::new(cfg);
        GpuFabric {
            managers: Arc::new(Mutex::new(managers)),
            registry,
            cfg,
            next_dataset: Arc::new(AtomicU64::new(1)),
            next_job: Arc::new(AtomicU64::new(1)),
            live_jobs: Arc::new(Mutex::new(BTreeSet::new())),
            tracer: Arc::new(Mutex::new(Tracer::disabled())),
            ckpt,
            metrics: Arc::new(Mutex::new(Metrics::disabled())),
            observer: Arc::new(Mutex::new(Observer::default())),
        }
    }

    /// Turn on tracing for every worker manager and return the shared
    /// tracer. All subsequent spans, instants and counters across the gpu,
    /// core and flink layers land in one buffer; export it with
    /// [`Tracer::export_chrome_json`]. Call before submitting work — spans
    /// are recorded as works execute, not retroactively.
    pub fn enable_tracing(&self) -> Tracer {
        let tracer = Tracer::new(Tracer::DEFAULT_CAPACITY);
        *self.tracer.lock() = tracer.clone();
        for m in self.managers.lock().iter_mut() {
            m.set_tracer(tracer.clone());
        }
        tracer
    }

    /// The fabric's tracer (disabled unless [`GpuFabric::enable_tracing`]
    /// was called).
    pub fn tracer(&self) -> Tracer {
        self.tracer.lock().clone()
    }

    /// Register a kernel under `name` (the analogue of deploying a `.ptx`).
    pub fn register_kernel<F>(&self, name: &str, f: F)
    where
        F: Fn(&mut KernelArgs<'_, '_>) -> KernelProfile + Send + Sync + 'static,
    {
        self.registry.lock().register(name, f);
    }

    /// Register an **element-wise** kernel under `name`: output record `i`
    /// depends only on element `i` of every input. The declaration makes
    /// this kernel's blocks eligible for hybrid CPU/GPU splitting
    /// ([`gflink_gpu::KernelRegistry::register_elementwise`]).
    pub fn register_elementwise_kernel<F>(&self, name: &str, f: F)
    where
        F: Fn(&mut KernelArgs<'_, '_>) -> KernelProfile + Send + Sync + 'static,
    {
        self.registry.lock().register_elementwise(name, f);
    }

    /// The fabric configuration.
    pub fn config(&self) -> &FabricConfig {
        &self.cfg
    }

    /// Run `f` with the worker managers locked (reporting, tests).
    pub fn with_managers<R>(&self, f: impl FnOnce(&mut [GpuManager]) -> R) -> R {
        f(&mut self.managers.lock())
    }

    /// Run `f` with the fabric's checkpoint manager locked (reporting,
    /// tests, cadence inspection).
    pub fn with_checkpoints<R>(&self, f: impl FnOnce(&mut CheckpointManager) -> R) -> R {
        f(&mut self.ckpt.lock())
    }

    /// A device joins worker `worker`'s live complement at simulated
    /// instant `at` and returns its index: fresh stream bulk, fresh GWork
    /// queue, one new cache region per open job (partitioned per weights
    /// when cache partitioning is on). Subsequent drains rebalance Alg.
    /// 5.1/5.2 dispatch onto it. The ledger records `members_joined`.
    pub fn join_node(&self, worker: usize, at: SimTime) -> usize {
        self.managers.lock()[worker].join_device(at)
    }

    /// Device `gpu` of worker `worker` gracefully leaves the live fabric
    /// at `at`: cached blocks are invalidated, queued and in-flight works
    /// are evacuated onto the survivors, and the ledger records a
    /// membership change (`members_left`) — not a fault.
    pub fn leave_node(&self, worker: usize, gpu: usize, at: SimTime) {
        self.managers.lock()[worker].leave_device(gpu, at);
    }

    /// Script membership changes (joins/leaves) against worker `worker`,
    /// delivered inside its drain event loop deterministically interleaved
    /// with scripted faults.
    pub fn set_membership_plan(&self, worker: usize, plan: MembershipPlan) {
        self.managers.lock()[worker].set_membership_plan(plan);
    }

    fn fresh_dataset_id(&self) -> u64 {
        self.next_dataset.fetch_add(1, Ordering::Relaxed)
    }

    /// A fresh token for caching an extra input
    /// ([`GpuMapSpec::with_cached_extra_input`]).
    pub fn new_cache_token(&self) -> u64 {
        self.fresh_dataset_id()
    }

    /// Release all job caches on every worker (job teardown).
    pub fn release_job_caches(&self) {
        for m in self.managers.lock().iter_mut() {
            m.release_job_caches();
        }
    }

    /// Open a job with the baseline fair-share weight of 1. See
    /// [`open_job_weighted`](Self::open_job_weighted).
    pub fn open_job(&self) -> Result<JobHandle, AdmissionError> {
        self.open_job_weighted(1)
    }

    /// Admit a new job onto the fabric: mint a fresh [`JobId`], open its
    /// per-worker sessions (§4.2.2: a cache region is created when a job
    /// starts), and return the RAII [`JobHandle`] that scopes submission,
    /// draining and teardown to that job. Admission control applies — when
    /// `SchedulerConfig::max_live_jobs` live jobs already run, the
    /// submission is rejected with [`AdmissionError::JobLimit`]. `weight`
    /// is the job's fair share under weighted-fair arbitration and cache
    /// partitioning (clamped to ≥ 1).
    pub fn open_job_weighted(&self, weight: u32) -> Result<JobHandle, AdmissionError> {
        let cap = self.cfg.worker.scheduler.max_live_jobs;
        let job = {
            let mut live = self.live_jobs.lock();
            if live.len() >= cap {
                return Err(AdmissionError::JobLimit {
                    live: live.len(),
                    cap,
                });
            }
            let job = JobId(self.next_job.fetch_add(1, Ordering::Relaxed));
            live.insert(job);
            job
        };
        let weight = weight.max(1);
        for m in self.managers.lock().iter_mut() {
            m.begin_job_weighted(job, weight);
        }
        Ok(JobHandle::new(self.clone(), job, weight))
    }

    /// Jobs currently live (admitted, not yet finished) on the fabric.
    pub fn live_jobs(&self) -> usize {
        self.live_jobs.lock().len()
    }

    /// Tear down `job`'s sessions on every worker, releasing exactly its
    /// cache regions, and free its admission slot. Called by
    /// [`JobHandle::finish`]/drop — never directly.
    pub(crate) fn close_job(&self, job: JobId) {
        for m in self.managers.lock().iter_mut() {
            m.end_job(job);
        }
        self.ckpt.lock().retire_job(job.0);
        self.live_jobs.lock().remove(&job);
    }
}

/// Driver handle for a GFlink job: the Flink environment plus GPU fabric.
#[derive(Clone)]
pub struct GflinkEnv {
    /// The underlying Flink environment (CPU operators remain available —
    /// GFlink is compatible with the original Flink API).
    pub flink: FlinkEnv,
    fabric: GpuFabric,
    handle: Arc<JobHandle>,
}

impl GflinkEnv {
    /// Submit a GFlink job at simulated instant `at`: admits the job on
    /// the fabric ([`GpuFabric::open_job`]), creating its cache regions on
    /// every worker. Panics if admission control rejects the job — use
    /// [`try_submit`](Self::try_submit) to handle rejection.
    pub fn submit(cluster: &SharedCluster, fabric: &GpuFabric, name: &str, at: SimTime) -> Self {
        Self::try_submit(cluster, fabric, name, at).expect("job admission refused")
    }

    /// Fallible [`submit`](Self::submit): admission control may refuse.
    pub fn try_submit(
        cluster: &SharedCluster,
        fabric: &GpuFabric,
        name: &str,
        at: SimTime,
    ) -> Result<Self, AdmissionError> {
        Self::try_submit_weighted(cluster, fabric, name, at, 1)
    }

    /// [`try_submit`](Self::try_submit) with a fair-share weight for
    /// weighted-fair arbitration and cache partitioning.
    pub fn try_submit_weighted(
        cluster: &SharedCluster,
        fabric: &GpuFabric,
        name: &str,
        at: SimTime,
        weight: u32,
    ) -> Result<Self, AdmissionError> {
        let handle = Arc::new(fabric.open_job_weighted(weight)?);
        Ok(GflinkEnv {
            flink: FlinkEnv::submit(cluster, name, at),
            fabric: fabric.clone(),
            handle,
        })
    }

    /// The GPU fabric.
    pub fn fabric(&self) -> &GpuFabric {
        &self.fabric
    }

    /// The RAII handle of this job on the fabric.
    pub fn job_handle(&self) -> &Arc<JobHandle> {
        &self.handle
    }

    /// This job's identity on the GPU fabric.
    pub fn job_id(&self) -> JobId {
        self.handle.id()
    }

    /// Wrap a CPU dataset into a GPU-based DataSet with the given input
    /// layout.
    pub fn to_gdst<T: GRecord>(&self, ds: DataSet<T>, layout: DataLayout) -> GDataSet<T> {
        GDataSet {
            ds,
            id: self.fabric.fresh_dataset_id(),
            layout,
            env: self.clone(),
        }
    }

    /// Finish the job: folds the teardown-time observability fields (the
    /// job's steal count, per-device activity lanes) into the rollup, tears
    /// down this job's sessions — releasing exactly its GPU cache regions
    /// (per §4.2.2 the cache region lives for the job) — and returns the
    /// report.
    pub fn finish(&self) -> JobReport {
        // Gather before end_job destroys the sessions. Lanes describe
        // device activity over the job's window; on a shared fabric that
        // window includes co-tenant works (which is what device
        // utilization means there).
        let window = self.flink.frontier();
        let job = self.handle.id();
        let trace_dropped = self.fabric.tracer().dropped();
        self.fabric.with_managers(|managers| {
            let mut steals = 0u64;
            let mut batches = 0u64;
            let mut batched_works = 0u64;
            let mut alpha_saved = SimTime::ZERO;
            let mut batch_size = gflink_sim::Summary::default();
            let mut pinned = gflink_memory::PinnedStats::default();
            let mut parked_works = 0u64;
            let mut park_delay = SimTime::ZERO;
            let mut pen_hist = gflink_sim::LogHistogram::new();
            let mut hybrid_gpu = 0u64;
            let mut hybrid_cpu = 0u64;
            let mut hybrid_splits = 0u64;
            let mut hybrid_err = gflink_sim::LogHistogram::new();
            for m in managers.iter() {
                if let Some(s) = m.session(job) {
                    steals += s.steals();
                    batches += s.batches();
                    batched_works += s.batched_works();
                    alpha_saved += s.alpha_saved();
                    batch_size.merge(s.batch_sizes());
                    parked_works += s.parked_works();
                    park_delay += s.park_delay();
                    pen_hist.merge(s.pen_histogram());
                    hybrid_gpu += s.hybrid_gpu();
                    hybrid_cpu += s.hybrid_cpu();
                    hybrid_splits += s.hybrid_splits();
                    hybrid_err.merge(s.hybrid_err());
                }
                let p = m.job_pinned_stats(job);
                pinned.hits += p.hits;
                pinned.misses += p.misses;
                pinned.bytes += p.bytes;
            }
            let mut lanes = Vec::new();
            for m in managers.iter() {
                for g in 0..m.gpu_count() {
                    let gpu = m.gpu(g);
                    lanes.push(GpuLane {
                        worker: m.worker_id(),
                        gpu: g,
                        works: m.executed_per_gpu()[g],
                        kernel_busy: gpu.kernel_busy(),
                        copy_busy: gpu.copy_busy(),
                        utilization: gpu.kernel_utilization(window),
                    });
                }
            }
            self.flink.with_gpu_rollup(|r| {
                r.steals += steals;
                r.pinned_hits += pinned.hits;
                r.pinned_misses += pinned.misses;
                r.pinned_bytes += pinned.bytes;
                r.batches += batches;
                r.batched_works += batched_works;
                r.alpha_saved += alpha_saved;
                r.batch_size.merge(&batch_size);
                r.weight = self.handle.weight();
                r.parked_works += parked_works;
                r.park_delay += park_delay;
                r.slo.pen.merge(&pen_hist);
                r.hybrid_gpu += hybrid_gpu;
                r.hybrid_cpu += hybrid_cpu;
                r.hybrid_splits += hybrid_splits;
                r.hybrid_err.merge(&hybrid_err);
                r.trace_dropped = trace_dropped;
                if r.lanes.is_empty() && !r.is_empty() {
                    r.lanes = lanes;
                }
            });
        });
        self.handle.finish();
        self.flink.finish()
    }
}

/// Costs of the CPU-side glue around a GPU keyed reduction
/// ([`GflinkEnv::gpu_reduce_by_key`]): receiving the shuffle into off-heap
/// pages, packing pair records, and the final boundary merge. All three are
/// tight raw-buffer loops, not per-object operator hops — which is the
/// point of the zero-copy design (§3.1).
#[derive(Clone, Copy, Debug)]
pub struct GpuReduceCosts {
    /// Per-record cost of the shuffle receive (raw byte append).
    pub receive: gflink_flink::OpCost,
    /// Per-record cost of packing pairs into GStruct blocks.
    pub pack: gflink_flink::OpCost,
    /// Per-record cost of the boundary merge after the kernel.
    pub merge: gflink_flink::OpCost,
    /// Wire bytes of one pair at paper scale.
    pub pair_logical_bytes: f64,
}

impl Default for GpuReduceCosts {
    fn default() -> Self {
        use gflink_flink::OpCost;
        GpuReduceCosts {
            receive: OpCost::new(2.0, 12.0).with_overhead_factor(0.1),
            pack: OpCost::new(1.0, 8.0).with_overhead_factor(0.2),
            merge: OpCost::new(2.0, 8.0).with_overhead_factor(0.2),
            pair_logical_bytes: 12.0,
        }
    }
}

impl GflinkEnv {
    /// The paper's **gpuReduce** (§3.5.2) as a first-class operator: a
    /// keyed reduction whose per-block aggregation runs on the GPU.
    ///
    /// Pipeline: hash-shuffle `pairs` by key (network volume identical to
    /// the CPU baseline) → pack the sorted buckets into GStruct blocks →
    /// run `kernel` (which must aggregate by key within its block and
    /// declare its output count via `KernelProfile::with_emitted`) → merge
    /// duplicate keys across block boundaries in one linear CPU pass.
    ///
    /// `pack` converts a pair to its GStruct record, `unpack` inverts it,
    /// and `fold` combines two values of one key (used only at block
    /// boundaries; the kernel does the bulk of the combining).
    #[allow(clippy::too_many_arguments)] // mirrors the operator's knobs
    pub fn gpu_reduce_by_key<K, V, R, P, U, F>(
        &self,
        name: &str,
        pairs: &DataSet<(K, V)>,
        kernel: &str,
        costs: GpuReduceCosts,
        pack: P,
        unpack: U,
        fold: F,
    ) -> DataSet<(K, V)>
    where
        K: Clone + Ord + std::hash::Hash + Send + 'static,
        V: Clone + Send + 'static,
        R: GRecord,
        P: Fn(&(K, V)) -> R,
        U: Fn(&R) -> (K, V),
        F: Fn(&V, &V) -> V,
    {
        let scale = pairs.scale();
        let shuffled = pairs.clone().partition_by_key(
            &format!("{name}/shuffle"),
            costs.pair_logical_bytes,
            scale,
            costs.receive,
        );
        let packed = shuffled.map(&format!("{name}/pack"), costs.pack, |kv| pack(kv));
        let gpairs: GDataSet<R> = self.to_gdst(packed, DataLayout::Aos);
        let spec = GpuMapSpec::new(kernel)
            .uncached()
            .with_out_mode(OutMode::Bounded { per_record: 1 })
            .with_out_scale(scale);
        let reduced: GDataSet<R> = gpairs.gpu_map_partition(&format!("{name}/gpu-reduce"), &spec);
        reduced.inner().map_partition(
            &format!("{name}/boundary-merge"),
            costs.merge,
            scale,
            |recs| {
                let mut sorted: Vec<(K, V)> = recs.iter().map(&unpack).collect();
                sorted.sort_by(|a, b| a.0.cmp(&b.0));
                let mut out: Vec<(K, V)> = Vec::with_capacity(sorted.len());
                for (k, v) in sorted {
                    match out.last_mut() {
                        Some((lk, lv)) if *lk == k => *lv = fold(lv, &v),
                        _ => out.push((k, v)),
                    }
                }
                out
            },
        )
    }
}

/// A GPU-based DataSet (the paper's GDST).
pub struct GDataSet<T: GRecord> {
    ds: DataSet<T>,
    id: u64,
    layout: DataLayout,
    env: GflinkEnv,
}

impl<T: GRecord> GDataSet<T> {
    /// The wrapped CPU dataset.
    pub fn inner(&self) -> &DataSet<T> {
        &self.ds
    }

    /// Unwrap into the CPU dataset.
    pub fn into_inner(self) -> DataSet<T> {
        self.ds
    }

    /// The dataset's stable identity (GPU cache key scope).
    pub fn dataset_id(&self) -> u64 {
        self.id
    }

    /// The input data layout.
    pub fn layout(&self) -> DataLayout {
        self.layout
    }

    /// Barrier helper for iterative drivers: no partition may be consumed
    /// before `t` (e.g. after a broadcast of fresh state).
    pub fn set_min_ready(&mut self, t: SimTime) {
        self.ds.set_min_ready(t);
    }

    /// The GPU-based `mapPartition` (§3.5.2): split each partition into
    /// blocks, run `spec.kernel` over every block on the worker's GPUs, and
    /// rebuild a dataset from the outputs.
    ///
    /// Takes `&self` — like a Flink DST, a GDST may be consumed by many
    /// operators (iterative drivers call this every superstep on the same
    /// cached input).
    pub fn gpu_map_partition<U: GRecord>(&self, name: &str, spec: &GpuMapSpec) -> GDataSet<U> {
        let def = T::def();
        let out_def = U::def();
        let flink = &self.env.flink;
        let fabric_cfg = Arc::clone(&self.env.fabric.cfg);
        let sched = flink.schedule_phase();
        let cluster = flink.cluster();
        let job = self.env.handle.id();
        let scale = self.ds.scale();
        let coalescing = self.layout.coalescing_all_fields(&def);

        let mut wall_start = SimTime::MAX;
        let mut last_submit = SimTime::ZERO;
        let mut elements = 0u64;

        // Checkpoint/restore (DESIGN.md §13). Each operator invocation of
        // this job owns one snapshot file, keyed by the *job name* and a
        // per-job invocation counter so a relaunched driver re-running the
        // same operator sequence finds its predecessor's snapshots. A
        // found snapshot installs its covered tags on every worker: the
        // producer below still submits all blocks, but covered ones are
        // satisfied from the snapshot (`works_restored`) instead of
        // executing — only the delta since the snapshot replays.
        let ckpt_on = self.env.fabric.ckpt.lock().enabled();
        let jname = flink.name();
        let seq = if ckpt_on {
            self.env.fabric.ckpt.lock().next_seq(job.0)
        } else {
            0
        };
        let restored = if ckpt_on {
            let now = flink.frontier();
            let mut cl = cluster.lock();
            // A corrupt snapshot (CRC or length mismatch) is refused here
            // — the run falls back to executing from zero, never silently
            // replaying bad bytes.
            self.env
                .fabric
                .ckpt
                .lock()
                .read(&mut cl.hdfs, 0, &jname, seq, now)
                .unwrap_or(None)
        } else {
            None
        };
        if let Some(rs) = &restored {
            let tags = rs.snapshot.covered_tags();
            let weight = self.env.handle.weight();
            self.env.fabric.with_managers(|managers| {
                for m in managers.iter_mut() {
                    m.restore_job(job, weight, &tags);
                }
            });
        }

        // Producer side: each partition's pinned slot assembles one GWork
        // per block and submits it to the worker's GpuManager. The
        // operator name is interned once; every block shares it.
        let op_name: Arc<str> = name.into();
        self.env.fabric.with_managers(|managers| {
            for (p, part) in self.ds.raw_parts().iter().enumerate() {
                let n_act = part.data.len();
                let n_log = n_act as f64 * scale;
                elements += n_log as u64;
                let logical_bytes = n_log * def.size() as f64;
                let n_blocks = ((logical_bytes / fabric_cfg.block_bytes as f64).ceil() as usize)
                    .clamp(1, n_act.max(1));
                let mut cursor = part.ready + sched;
                for b in 0..n_blocks {
                    let lo = n_act * b / n_blocks;
                    let hi = n_act * (b + 1) / n_blocks;
                    let rows = hi - lo;
                    // Build the block's off-heap bytes under the chosen
                    // layout (zero-copy path: these exact bytes go to the
                    // device).
                    let mut buf =
                        HBuffer::zeroed(RecordView::required_bytes(&def, self.layout, rows));
                    {
                        let mut view = RecordView::new(&mut buf, &def, self.layout, rows);
                        for (i, rec) in part.data[lo..hi].iter().enumerate() {
                            rec.store(&mut view, i);
                        }
                    }
                    let block_logical_elems =
                        (n_log * (hi - lo) as f64 / n_act.max(1) as f64).round() as u64;
                    let block_logical_bytes =
                        (block_logical_elems as f64 * def.size() as f64) as u64;
                    // Producer occupies its task slot briefly per block.
                    let r = {
                        let mut cl = cluster.lock();
                        cl.workers[part.worker].slots.reserve_on(
                            part.slot,
                            cursor,
                            fabric_cfg.producer_overhead,
                        )
                    };
                    cursor = r.end;
                    wall_start = wall_start.min(r.start);
                    let key = CacheKey {
                        dataset: self.id,
                        partition: p as u32,
                        block: b as u32,
                    };
                    let data = Arc::new(buf);
                    let mut inputs = vec![if spec.cache_input {
                        WorkBuf::cached(data, block_logical_bytes, key)
                    } else {
                        WorkBuf::transient(data, block_logical_bytes)
                    }];
                    if let Some(extra) = &spec.extra_input {
                        inputs.push(match extra.cache_token {
                            Some(token) => WorkBuf::cached(
                                Arc::clone(&extra.data),
                                extra.logical_bytes,
                                CacheKey {
                                    dataset: token,
                                    partition: u32::MAX,
                                    block: 0,
                                },
                            ),
                            None => {
                                WorkBuf::transient(Arc::clone(&extra.data), extra.logical_bytes)
                            }
                        });
                    }
                    let out_rows = match spec.out_mode {
                        OutMode::PerRecord => rows,
                        OutMode::PerBlock(n) => n,
                        OutMode::Bounded { per_record } => rows * per_record,
                    };
                    let out_actual_bytes =
                        RecordView::required_bytes(&out_def, DataLayout::Aos, out_rows);
                    let out_logical_bytes = match spec.out_mode {
                        OutMode::PerRecord => {
                            (block_logical_elems as f64 * out_def.size() as f64) as u64
                        }
                        OutMode::PerBlock(n) => (n * out_def.size()) as u64,
                        OutMode::Bounded { per_record } => {
                            (block_logical_elems as f64 * per_record as f64 * out_def.size() as f64)
                                as u64
                        }
                    };
                    let work = GWork {
                        name: Arc::clone(&op_name),
                        execute_name: Arc::clone(&spec.kernel),
                        kernel: spec.kernel_id,
                        ptx_path: Arc::clone(&spec.ptx_path),
                        block_size: spec.block_size,
                        grid_size: (block_logical_elems as u32).div_ceil(spec.block_size.max(1)),
                        inputs,
                        out_actual_bytes,
                        out_logical_bytes,
                        out_records: out_rows,
                        params: Arc::clone(&spec.params),
                        n_actual: rows,
                        n_logical: block_logical_elems,
                        coalescing,
                        tag: (p as u32, b as u32),
                    };
                    managers[part.worker].submit_for(job, work, r.end);
                    last_submit = last_submit.max(r.end);
                }
            }
        });

        // Concurrency barrier: under a job gate (concurrent tenants driven
        // by `run_concurrent`-style harnesses), wait here until every
        // co-tenant at or behind this frontier has also submitted, so the
        // shared drain event loop below sees all jobs' works and cross-job
        // arbitration has a real choice. A solo run passes straight
        // through. No locks are held across this wait.
        gflink_flink::gate::checkpoint(last_submit);

        // Observability pre-capture. Lock order: the fabric's bookkeeping
        // locks (metrics, observer policy, live jobs, checkpoint cursors)
        // are copied out *before* the managers are held, matching the
        // admission path's live-jobs-then-managers order.
        let metrics = self.env.fabric.metrics.lock().clone();
        let (slo, snap_live, snap_ticks) = if metrics.enabled() {
            let slo = self.env.fabric.observer.lock().slo;
            let live: Vec<u64> = self
                .env
                .fabric
                .live_jobs
                .lock()
                .iter()
                .map(|j| j.0)
                .collect();
            let ticks: BTreeMap<u64, SimTime> = {
                let ck = self.env.fabric.ckpt.lock();
                live.iter()
                    .filter_map(|&j| ck.last_tick(j).map(|t| (j, t)))
                    .collect()
            };
            (slo, live, ticks)
        } else {
            (SloPolicy::default(), Vec::new(), BTreeMap::new())
        };

        // Consumer side: drain every worker's GpuManager.
        #[allow(clippy::type_complexity)]
        let mut per_part_blocks: Vec<Vec<(u32, ArenaBuf, Option<usize>, SimTime)>> =
            (0..self.ds.num_partitions()).map(|_| Vec::new()).collect();
        let mut kernel_sum = SimTime::ZERO;
        let mut h2d_sum = SimTime::ZERO;
        let mut d2h_sum = SimTime::ZERO;
        let mut wall_end = SimTime::ZERO;
        // Earliest permanent failure this op suffered: the simulated crash
        // instant bounding how late the checkpointer could still run.
        let mut crashed_at: Option<SimTime> = None;
        let mut slo_breaches = 0u64;
        let mut fault_delta = FaultLedger::default();
        self.env.fabric.with_managers(|managers| {
            for m in managers.iter_mut() {
                for done in m.drain_job(job) {
                    kernel_sum += done.timing.kernel;
                    h2d_sum += done.timing.h2d;
                    d2h_sum += done.timing.d2h;
                    wall_end = wall_end.max(done.timing.completed);
                    // One observability sample per completed work: the
                    // job report's stage histograms, cache hit rate and
                    // per-channel byte counts aggregate these.
                    flink.record_gpu_work(GpuWorkSample {
                        worker: m.worker_id(),
                        gpu: (done.gpu != CPU_FALLBACK_GPU).then_some(done.gpu),
                        queued: done.timing.queued(),
                        h2d: done.timing.h2d,
                        kernel: done.timing.kernel,
                        d2h: done.timing.d2h,
                        total: done.timing.total(),
                        cache_hits: done.timing.cache_hits,
                        cache_misses: done.timing.cache_misses,
                        bytes_h2d: done.timing.bytes_h2d,
                        bytes_d2h: done.timing.bytes_d2h,
                    });
                    if metrics.enabled() && slo.breached(done.timing.total()) {
                        slo_breaches += 1;
                        let mut ev = RecEvent::new(
                            done.timing.completed,
                            RecKind::SloBreach,
                            m.worker_id() as u32,
                        )
                        .with_detail(done.timing.total().as_nanos());
                        if done.gpu != CPU_FALLBACK_GPU {
                            ev = ev.on_gpu(done.gpu);
                        }
                        m.record_job_event(job, ev);
                    }
                    per_part_blocks[done.tag.0 as usize].push((
                        done.tag.1,
                        done.output,
                        done.emitted,
                        done.timing.completed,
                    ));
                }
                // Failure accounting: this drain's fault/recovery delta for
                // THIS job (the session ledger window, not the cluster-wide
                // ledger) goes on the job report. Permanently failed works
                // (retry exhaustion) also count failure instants toward the
                // phase's wall clock so a faulted job's makespan stays
                // honest.
                let delta = m.take_job_fault_delta(job);
                fault_delta = fault_delta.merge(&delta);
                flink.record_faults(delta);
                for failed in m.take_job_failed(job) {
                    wall_end = wall_end.max(failed.failed_at);
                    crashed_at = Some(match crashed_at {
                        Some(c) => c.min(failed.failed_at),
                        None => failed.failed_at,
                    });
                }
            }
            // Flight-recorder postmortems: a non-quiet fault delta or an
            // SLO breach dumps the job's recent structured events plus a
            // health snapshot built over the managers already held (the
            // observer mutex is a leaf lock — it never takes another).
            if metrics.enabled() && (!fault_delta.is_quiet() || slo_breaches > 0) {
                let mut events: Vec<RecEvent> = Vec::new();
                for m in managers.iter() {
                    if let Some(s) = m.session(job) {
                        events.extend(s.flight_events());
                    }
                }
                events.sort_by_key(|e| (e.at, e.worker));
                let snap = crate::observe::build_cluster_snapshot(
                    wall_end,
                    &snap_live,
                    &snap_ticks,
                    ckpt_on,
                    managers,
                );
                let snap_json = snap.to_json();
                let mut obs = self.env.fabric.observer.lock();
                if !fault_delta.is_quiet() {
                    obs.dump(
                        job.0,
                        "fault-ledger",
                        wall_end,
                        fault_delta,
                        events.clone(),
                        snap_json.clone(),
                    );
                }
                if slo_breaches > 0 {
                    obs.dump(
                        job.0,
                        "slo-breach",
                        wall_end,
                        fault_delta,
                        events,
                        snap_json,
                    );
                }
            }
        });
        // Blocks covered by the restored snapshot re-enter the result set
        // here, ready when the restore read landed — they were never
        // (re)executed, which is the point.
        let mut restored_works = 0u64;
        if let Some(rs) = &restored {
            for blk in &rs.snapshot.blocks {
                restored_works += 1;
                wall_end = wall_end.max(rs.ready_at);
                per_part_blocks[blk.tag.0 as usize].push((
                    blk.tag.1,
                    ArenaBuf::detached(HBuffer::from_bytes(&blk.payload)),
                    blk.emitted,
                    rs.ready_at,
                ));
            }
        }
        // Periodic snapshots of this op's progress. Ticks run on the
        // job-global cadence; when the op lost works permanently, the
        // cadence is bounded by the crash instant (the checkpointer dies
        // with the node), so what survives for the next attempt is exactly
        // the work completed up to the last pre-crash tick. A failure-free
        // op writes one final full snapshot at its wall end.
        let mut checkpoints = 0u64;
        let mut checkpoint_bytes = 0u64;
        if ckpt_on {
            let mut done: Vec<SnapshotBlock> = Vec::new();
            for (p, blocks) in per_part_blocks.iter().enumerate() {
                for (b, buf, emitted, completed) in blocks.iter() {
                    done.push(SnapshotBlock {
                        tag: (p as u32, *b),
                        emitted: *emitted,
                        completed_at: *completed,
                        payload: buf.as_slice().to_vec(),
                    });
                }
            }
            done.sort_by_key(|blk| (blk.completed_at, blk.tag));
            let cache = self.env.fabric.with_managers(|managers| {
                let mut c = Vec::new();
                for m in managers.iter() {
                    c.extend(m.cache_manifest(job));
                }
                c
            });
            let mut cl = cluster.lock();
            let mut ck = self.env.fabric.ckpt.lock();
            ck.seed(job.0, wall_start.min(wall_end));
            let horizon = crashed_at.unwrap_or(wall_end);
            let mut ticks = ck.due_ticks(job.0, horizon);
            if crashed_at.is_none() {
                ticks.push(wall_end);
            }
            for tick in ticks {
                let upto = done.partition_point(|blk| blk.completed_at <= tick);
                let snap = JobSnapshot {
                    job: job.0,
                    seq,
                    frontier: tick,
                    state: Vec::new(),
                    blocks: done[..upto].to_vec(),
                    cache: cache.clone(),
                };
                if let Ok(tok) = ck.write(&mut cl.hdfs, 0, &jname, &snap, tick) {
                    checkpoints += 1;
                    checkpoint_bytes += tok.bytes;
                }
            }
        }
        if ckpt_on {
            flink.with_gpu_rollup(|r| {
                r.checkpoints += checkpoints;
                r.checkpoint_bytes += checkpoint_bytes;
                if let Some(rs) = &restored {
                    r.restores += 1;
                    r.works_restored += restored_works;
                    r.recovery_delta
                        .add_time(wall_end.saturating_sub(rs.ready_at));
                }
            });
        }
        // Checkpoint/restore on the metrics plane: lifetime counters plus
        // flight-recorder entries on every worker's ring (a restore or a
        // snapshot write is job-scoped, not device-scoped).
        if metrics.enabled() && ckpt_on {
            metrics
                .counter("gflink_checkpoints_total", "Durable job snapshots written")
                .add(checkpoints);
            metrics
                .counter(
                    "gflink_checkpoint_bytes_total",
                    "Bytes written to durable snapshots",
                )
                .add(checkpoint_bytes);
            if restored.is_some() {
                metrics
                    .counter(
                        "gflink_restores_total",
                        "Jobs restored from a durable snapshot",
                    )
                    .inc();
            }
            self.env.fabric.with_managers(|managers| {
                for m in managers.iter_mut() {
                    let w = m.worker_id() as u32;
                    if checkpoints > 0 {
                        m.record_job_event(
                            job,
                            RecEvent::new(wall_end, RecKind::CheckpointWritten, w)
                                .with_detail(checkpoints),
                        );
                    }
                    if let Some(rs) = &restored {
                        m.record_job_event(
                            job,
                            RecEvent::new(rs.ready_at, RecKind::SnapshotRestored, w)
                                .with_detail(restored_works),
                        );
                    }
                }
            });
        }
        // Rebuild partitions from block outputs, in block order.
        let mut new_parts: Vec<RawPart<U>> = Vec::with_capacity(self.ds.num_partitions());
        for (p, part) in self.ds.raw_parts().iter().enumerate() {
            let blocks = &mut per_part_blocks[p];
            blocks.sort_by_key(|(b, _, _, _)| *b);
            let mut data: Vec<U> = Vec::new();
            let mut ready = part.ready;
            for (_, out_buf, emitted, completed) in blocks.iter() {
                let capacity = out_buf.len() / out_def.size().max(1);
                let out_rows = match spec.out_mode {
                    OutMode::PerRecord => emitted.unwrap_or(capacity),
                    OutMode::PerBlock(n) => n,
                    OutMode::Bounded { .. } => {
                        emitted.expect("Bounded output mode requires with_emitted")
                    }
                };
                let reader = RecordReader::new(out_buf, &out_def, DataLayout::Aos, capacity);
                for i in 0..out_rows {
                    data.push(U::load(&reader, i));
                }
                ready = ready.max(*completed);
            }
            new_parts.push(RawPart {
                worker: part.worker,
                slot: part.slot,
                data,
                ready,
            });
        }

        // Accounting: the GPU map is the job's Map phase; kernel/transfer
        // components are tracked as Eq. (4) sub-phases.
        let wall = wall_end.saturating_sub(wall_start.min(wall_end));
        flink.charge(Phase::Map, wall);
        flink.charge(Phase::Kernel, kernel_sum);
        flink.charge(Phase::TransferH2D, h2d_sum);
        flink.charge(Phase::TransferD2H, d2h_sum);
        flink.bump_frontier(wall_end);
        flink.record_phase(PhaseRecord {
            name: format!("gpuMapPartition({name})"),
            kind: PhaseKind::Map,
            parallelism: self.ds.num_partitions(),
            wall,
            elements,
        });

        let out_scale = match (spec.out_mode, spec.out_scale) {
            (_, Some(s)) => s,
            (OutMode::PerRecord, None) | (OutMode::Bounded { .. }, None) => scale,
            (OutMode::PerBlock(_), None) => 1.0,
        };
        GDataSet {
            ds: DataSet::from_raw(flink.clone(), new_parts, out_scale),
            id: self.env.fabric.fresh_dataset_id(),
            layout: DataLayout::Aos,
            env: self.env.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::CachePolicy;

    use gflink_flink::ClusterConfig;
    use gflink_memory::{AlignClass, FieldDef, PrimType};

    /// The paper's §3.5.1 example record.
    #[derive(Clone, Debug, PartialEq)]
    struct Point {
        x: f32,
        y: f32,
    }

    impl GRecord for Point {
        fn def() -> GStructDef {
            GStructDef::new(
                "Point",
                AlignClass::Align8,
                vec![
                    FieldDef::scalar("x", PrimType::F32),
                    FieldDef::scalar("y", PrimType::F32),
                ],
            )
        }
        fn store(&self, view: &mut RecordView<'_>, idx: usize) {
            view.set_f64(idx, 0, 0, self.x as f64);
            view.set_f64(idx, 1, 0, self.y as f64);
        }
        fn load(reader: &RecordReader<'_>, idx: usize) -> Self {
            Point {
                x: reader.get_f64(idx, 0, 0) as f32,
                y: reader.get_f64(idx, 1, 0) as f32,
            }
        }
    }

    fn add_point_kernel(args: &mut KernelArgs<'_, '_>) -> KernelProfile {
        // The paper's addPoint: out.x = in.x + dx, out.y = in.y + dy.
        let def = Point::def();
        let n = args.n_actual;
        let (dx, dy) = (args.params[0], args.params[1]);
        let reader = RecordReader::new(args.inputs[0], &def, DataLayout::Aos, n);
        let out = &mut args.outputs[0];
        let mut view = RecordView::new(out, &def, DataLayout::Aos, n);
        for i in 0..n {
            view.set_f64(i, 0, 0, reader.get_f64(i, 0, 0) + dx);
            view.set_f64(i, 1, 0, reader.get_f64(i, 1, 0) + dy);
        }
        KernelProfile::new(
            args.n_logical as f64 * 2.0,
            args.n_logical as f64 * 2.0 * def.size() as f64,
        )
    }

    fn setup(workers: usize) -> (SharedCluster, GpuFabric) {
        let cluster = SharedCluster::new(ClusterConfig::standard(workers));
        let fabric = GpuFabric::new(workers, FabricConfig::default());
        fabric.register_kernel("cudaAddPoint", add_point_kernel);
        (cluster, fabric)
    }

    #[test]
    fn gpu_map_partition_computes_real_results() {
        let (cluster, fabric) = setup(2);
        let env = GflinkEnv::submit(&cluster, &fabric, "addpoint", SimTime::ZERO);
        let pts: Vec<Point> = (0..100)
            .map(|i| Point {
                x: i as f32,
                y: -(i as f32),
            })
            .collect();
        let ds = env.flink.parallelize("pts", pts, 4, 1000.0);
        let gdst = env.to_gdst(ds, DataLayout::Aos);
        let spec = GpuMapSpec::new("cudaAddPoint").with_params(vec![1.0, 2.0]);
        let out = gdst.gpu_map_partition::<Point>("addPoint", &spec);
        let got = out.inner().collect("get", 8.0);
        assert_eq!(got.len(), 100);
        // Partition-ordered collection: verify value correctness setwise.
        let mut xs: Vec<i64> = got.iter().map(|p| p.x as i64).collect();
        xs.sort_unstable();
        assert_eq!(xs, (1..=100).collect::<Vec<i64>>());
        for p in &got {
            // out.x = i + 1, out.y = -i + 2 → both recover the same i.
            assert_eq!(p.x - 1.0, -(p.y - 2.0));
        }
        let report = env.finish();
        assert!(report.acct.get(Phase::Kernel) > SimTime::ZERO);
        assert!(report.acct.get(Phase::TransferH2D) > SimTime::ZERO);
        assert!(report.acct.get(Phase::TransferD2H) > SimTime::ZERO);
    }

    #[test]
    fn device_loss_mid_job_reaches_the_job_report() {
        use gflink_sim::{FaultKind, FaultPlan};
        let (cluster, fabric) = setup(1);
        // Kill GPU 0 of the single worker shortly into the map phase; the
        // survivor (GPU 1) must absorb the job.
        fabric.with_managers(|ms| {
            ms[0].set_fault_plan(
                FaultPlan::new().with(SimTime::from_millis(1), FaultKind::GpuLost { gpu: 0 }),
            );
        });
        let env = GflinkEnv::submit(&cluster, &fabric, "chaos", SimTime::ZERO);
        let pts: Vec<Point> = (0..100)
            .map(|i| Point {
                x: i as f32,
                y: -(i as f32),
            })
            .collect();
        let ds = env.flink.parallelize("pts", pts, 4, 1000.0);
        let gdst = env.to_gdst(ds, DataLayout::Aos);
        let spec = GpuMapSpec::new("cudaAddPoint").with_params(vec![1.0, 2.0]);
        let out = gdst.gpu_map_partition::<Point>("addPoint", &spec);
        let got = out.inner().collect("get", 8.0);
        assert_eq!(got.len(), 100, "the loss must not drop records");
        for p in &got {
            assert_eq!(p.x - 1.0, -(p.y - 2.0));
        }
        fabric.with_managers(|ms| {
            assert!(ms[0].gpu(0).health().is_lost());
            assert!(ms[0].gpu(1).health().is_usable());
            // Checked before finish() tears the session down: nothing was
            // permanently abandoned.
            assert!(ms[0].session(env.job_id()).unwrap().failed().is_empty());
        });
        let report = env.finish();
        assert_eq!(report.faults.gpus_lost, 1);
        assert!(report.faults.faults_injected >= 1);
    }

    #[test]
    fn second_iteration_hits_gpu_cache() {
        let (cluster, fabric) = setup(1);
        let env = GflinkEnv::submit(&cluster, &fabric, "iter", SimTime::ZERO);
        let pts: Vec<Point> = (0..64)
            .map(|i| Point {
                x: i as f32,
                y: 0.0,
            })
            .collect();
        let ds = env.flink.parallelize("pts", pts, 2, 1.0e6);
        let gdst = env.to_gdst(ds, DataLayout::Aos);
        let spec = GpuMapSpec::new("cudaAddPoint").with_params(vec![0.0, 0.0]);
        let t0 = env.flink.frontier();
        let _o1 = gdst.gpu_map_partition::<Point>("it1", &spec);
        let t1 = env.flink.frontier();
        let _o2 = gdst.gpu_map_partition::<Point>("it2", &spec);
        let t2 = env.flink.frontier();
        let first = t1 - t0;
        let second = t2 - t1;
        assert!(
            second < first,
            "cached iteration ({second}) should beat cold ({first})"
        );
        // And the caches saw hits.
        let hits = fabric.with_managers(|ms| {
            ms.iter()
                .map(|m| (0..m.gpu_count()).map(|g| m.cache_stats(g).0).sum::<u64>())
                .sum::<u64>()
        });
        assert!(hits > 0);
    }

    #[test]
    fn disabled_cache_transfers_every_iteration() {
        let cluster = SharedCluster::new(ClusterConfig::standard(1));
        let mut cfg = FabricConfig::default();
        cfg.worker.cache_policy = CachePolicy::Disabled;
        let fabric = GpuFabric::new(1, cfg);
        fabric.register_kernel("cudaAddPoint", add_point_kernel);
        let env = GflinkEnv::submit(&cluster, &fabric, "nocache", SimTime::ZERO);
        let pts: Vec<Point> = (0..64)
            .map(|i| Point {
                x: i as f32,
                y: 0.0,
            })
            .collect();
        let ds = env.flink.parallelize("pts", pts, 2, 1.0e6);
        let gdst = env.to_gdst(ds, DataLayout::Aos);
        let spec = GpuMapSpec::new("cudaAddPoint").with_params(vec![0.0, 0.0]);
        let t0 = env.flink.frontier();
        let _o1 = gdst.gpu_map_partition::<Point>("it1", &spec);
        let t1 = env.flink.frontier();
        let _o2 = gdst.gpu_map_partition::<Point>("it2", &spec);
        let t2 = env.flink.frontier();
        // Without the cache, iteration 2 pays the H2D again: roughly equal.
        let first = (t1 - t0).as_secs_f64();
        let second = (t2 - t1).as_secs_f64();
        assert!(second > first * 0.7, "no-cache iterations stay expensive");
    }

    #[test]
    fn per_block_output_mode_aggregates() {
        let (cluster, fabric) = setup(1);
        // A kernel producing one summary Point per block.
        fabric.register_kernel("blocksum", |args: &mut KernelArgs<'_, '_>| {
            let def = Point::def();
            let n = args.n_actual;
            let reader = RecordReader::new(args.inputs[0], &def, DataLayout::Aos, n);
            let (mut sx, mut sy) = (0.0, 0.0);
            for i in 0..n {
                sx += reader.get_f64(i, 0, 0);
                sy += reader.get_f64(i, 1, 0);
            }
            let out = &mut args.outputs[0];
            let mut view = RecordView::new(out, &def, DataLayout::Aos, 1);
            view.set_f64(0, 0, 0, sx);
            view.set_f64(0, 1, 0, sy);
            KernelProfile::new(args.n_logical as f64 * 2.0, args.n_logical as f64 * 8.0)
        });
        let env = GflinkEnv::submit(&cluster, &fabric, "agg", SimTime::ZERO);
        let pts: Vec<Point> = (0..10).map(|_| Point { x: 1.0, y: 2.0 }).collect();
        let ds = env.flink.parallelize("pts", pts, 2, 1.0);
        let gdst = env.to_gdst(ds, DataLayout::Aos);
        let spec = GpuMapSpec::new("blocksum")
            .with_out_mode(OutMode::PerBlock(1))
            .with_out_scale(1.0);
        let out = gdst.gpu_map_partition::<Point>("sum", &spec);
        let got = out.inner().collect("get", 8.0);
        // 2 partitions × 1 block each (tiny data) = 2 partials.
        assert_eq!(got.len(), 2);
        let total: f32 = got.iter().map(|p| p.x).sum();
        assert_eq!(total, 10.0);
    }

    #[test]
    fn soa_layout_roundtrips_through_gpu() {
        let (cluster, fabric) = setup(1);
        fabric.register_kernel("soaAdd", |args: &mut KernelArgs<'_, '_>| {
            let def = Point::def();
            let n = args.n_actual;
            let reader = RecordReader::new(args.inputs[0], &def, DataLayout::Soa, n);
            let out = &mut args.outputs[0];
            let mut view = RecordView::new(out, &def, DataLayout::Aos, n);
            for i in 0..n {
                view.set_f64(i, 0, 0, reader.get_f64(i, 0, 0) * 2.0);
                view.set_f64(i, 1, 0, reader.get_f64(i, 1, 0) * 2.0);
            }
            KernelProfile::new(args.n_logical as f64 * 2.0, args.n_logical as f64 * 16.0)
        });
        let env = GflinkEnv::submit(&cluster, &fabric, "soa", SimTime::ZERO);
        let pts: Vec<Point> = (0..16)
            .map(|i| Point {
                x: i as f32,
                y: 1.0,
            })
            .collect();
        let ds = env.flink.parallelize("pts", pts, 1, 1.0);
        let gdst = env.to_gdst(ds, DataLayout::Soa);
        let out = gdst.gpu_map_partition::<Point>("soaAdd", &GpuMapSpec::new("soaAdd"));
        let got = out.inner().collect("get", 8.0);
        assert_eq!(got[3].x, 6.0);
        assert_eq!(got[3].y, 2.0);
    }

    #[test]
    fn gdst_reusable_across_supersteps() {
        let (cluster, fabric) = setup(1);
        let env = GflinkEnv::submit(&cluster, &fabric, "loop", SimTime::ZERO);
        let pts: Vec<Point> = (0..8).map(|_| Point { x: 0.0, y: 0.0 }).collect();
        let ds = env.flink.parallelize("pts", pts, 1, 1.0);
        let mut gdst = env.to_gdst(ds, DataLayout::Aos);
        for it in 0..3 {
            let spec = GpuMapSpec::new("cudaAddPoint").with_params(vec![it as f64, 0.0]);
            let out = gdst.gpu_map_partition::<Point>("step", &spec);
            gdst.set_min_ready(env.flink.frontier());
            drop(out);
        }
        // Three supersteps on the same GDST, no panics, frontier advanced.
        assert!(env.flink.frontier() > SimTime::ZERO);
    }
}

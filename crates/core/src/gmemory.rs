#![warn(clippy::too_many_lines)]

//! GMemoryManager (§4.2): the device-memory half of the GPUManager.
//!
//! Owns the worker's [`VirtualGpu`]s and everything that touches device
//! memory: buffer allocation with cache-eviction pressure, the H2D staging
//! of a work's inputs (including the §4.2.2 cache insert/pin protocol), and
//! the reclamation of a finished or recovered work's buffers. Device memory
//! is driven exclusively through the narrow [`DeviceMemoryOps`] trait — the
//! explicit surface the memory layer needs from a device.
//!
//! Cache *regions* are per job (owned by each
//! [`JobSession`](crate::session::JobSession)); this type mints them at job
//! start, frees their device buffers at job end, and preserves the
//! hit/miss/eviction statistics of retired regions so whole-worker cache
//! accounting survives session teardown.

use crate::cache::{CachePolicy, GpuCache};
use crate::config::TransferConfig;
use crate::gwork::{CacheKey, GWork, WorkTiming};
use crate::recovery::ManagerError;
use gflink_gpu::{
    DevBufId, DeviceError, DeviceMemoryOps, DmemError, GpuModel, TransferMode, VirtualGpu,
};
use gflink_memory::{ArenaBuf, BufferArena, HBuffer, PinnedLease, PinnedPool, PinnedStats};
use gflink_sim::trace::{gpu_pid, Cat, TraceEvent, TID_DEVICE};
use gflink_sim::{Counter, Metrics, SimTime, Tracer};

/// Result of staging one work's inputs onto a device (stage 1, H2D).
pub(crate) struct StagedInputs {
    /// Device buffers, one per work input, in input order.
    pub dev_inputs: Vec<DevBufId>,
    /// Buffers to free once the work leaves the device.
    pub transient: Vec<DevBufId>,
    /// Cache keys pinned for the duration of the work.
    pub pinned: Vec<CacheKey>,
    /// Pinned-pool leases backing the H2D copies; held until the copies
    /// land (the kernel stage), then released for recycling.
    pub staging: Vec<PinnedLease>,
    /// When the first H2D copy engine reservation starts; `None` when every
    /// input was a cache hit (no copy issued).
    pub h2d_start: Option<SimTime>,
    /// When the last H2D copy lands (the kernel's earliest launch instant).
    pub kernel_earliest: SimTime,
    /// Set when staging failed; partial placement is in the fields above
    /// and must be reclaimed by the caller.
    pub failure: Option<ManagerError>,
}

/// Per-member placement of one fused (batched) staging pass.
pub(crate) struct StagedMember {
    /// Device buffers, one per work input, in input order.
    pub dev_inputs: Vec<DevBufId>,
    /// Buffers to free once the member leaves the device.
    pub transient: Vec<DevBufId>,
    /// Cache keys pinned for the duration of the member.
    pub pinned: Vec<CacheKey>,
}

/// Result of staging a whole batch of works through one fused H2D call
/// (single per-call α for every member copy).
pub(crate) struct FusedStaged {
    /// Per-member placement, in member order (may be shorter than the batch
    /// on failure — reclaim what is here).
    pub members: Vec<StagedMember>,
    /// Pinned-pool leases backing the fused copy; release after the copy
    /// lands.
    pub staging: Vec<PinnedLease>,
    /// Fused copy reservation start; `None` when every input hit the cache.
    pub h2d_start: Option<SimTime>,
    /// When the fused copy lands (earliest launch of the first kernel).
    pub kernel_earliest: SimTime,
    /// Member copies folded into the one call (α is paid once instead of
    /// this many times).
    pub upload_calls: usize,
    /// Set when staging failed; the caller reclaims `members` and releases
    /// `staging`.
    pub failure: Option<ManagerError>,
}

/// `logical/total` of `dur`, in integer nanoseconds (a member's share of a
/// fused copy's engine time).
pub(crate) fn pro_rata(dur: SimTime, logical: u64, total: u64) -> SimTime {
    if total == 0 {
        return SimTime::ZERO;
    }
    SimTime::from_nanos((dur.as_nanos() as u128 * logical as u128 / total as u128) as u64)
}

/// Soft budget of pooled idle result bytes. Output blocks are a few KiB at
/// harness scale; the budget only matters as a leak backstop.
const RESULT_ARENA_SOFT_BYTES: u64 = 256 << 20;

/// The device-memory half of the per-worker GPU manager.
pub struct GMemoryManager {
    gpus: Vec<VirtualGpu>,
    cache_capacity: u64,
    cache_policy: CachePolicy,
    /// (hits, misses, evictions) carried over from retired job regions,
    /// per GPU, so worker-level cache stats survive session teardown.
    retired_stats: Vec<(u64, u64, u64)>,
    /// Reusable page-locked host staging buffers (§4.1.2: registration is
    /// paid once, recycled for the life of the worker).
    pinned_pool: PinnedPool,
    /// Reusable host *result* buffers: every flight's D2H lands in an
    /// arena lease instead of a fresh allocation (ISSUE 7). Recycling is
    /// exact-size and zero-on-hit, so digests cannot observe it.
    arena: BufferArena,
    /// Recycled flight-bookkeeping `Vec` allocations (ISSUE 7): the
    /// device-input, transient, pin, and staging lists of every flight
    /// cycle through these pools instead of the host allocator.
    dev_vecs: Vec<Vec<DevBufId>>,
    key_vecs: Vec<Vec<CacheKey>>,
    lease_vecs: Vec<Vec<PinnedLease>>,
    /// Host-side staging behaviour of the transfer channel.
    mode: TransferMode,
    /// Page-locking throughput (bytes/s) charged on a pool miss; `0.0`
    /// means registration is free (the fitted α already covers it).
    register_bps: f64,
    tracer: Tracer,
    worker_id: usize,
    /// Cumulative (hits, misses) per GPU, sampled into trace counters.
    trace_cache: Vec<(u64, u64)>,
    /// The live-metrics plane (disabled by default); kept so devices that
    /// join later inherit it like they inherit the tracer.
    metrics: Metrics,
    /// Per-GPU live cache counters: (hits, misses, evictions).
    m_cache: Vec<(Counter, Counter, Counter)>,
}

impl GMemoryManager {
    /// Build the memory manager over `models`, with per-GPU cache regions
    /// of `cache_capacity` logical bytes (clamped to 3/4 of device memory)
    /// under `cache_policy`, staging transfers per `transfer`.
    pub fn new(
        models: &[GpuModel],
        cache_capacity: u64,
        cache_policy: CachePolicy,
        transfer: &TransferConfig,
    ) -> Self {
        let mut gpus: Vec<VirtualGpu> = models
            .iter()
            .enumerate()
            .map(|(i, &m)| VirtualGpu::new(i, m))
            .collect();
        if transfer.mode != TransferMode::Pinned {
            for g in &mut gpus {
                g.set_transfer_mode(transfer.mode);
            }
        }
        let n = gpus.len();
        GMemoryManager {
            gpus,
            cache_capacity,
            cache_policy,
            retired_stats: vec![(0, 0, 0); n],
            pinned_pool: PinnedPool::new(transfer.pinned_pool_bytes),
            arena: BufferArena::new(RESULT_ARENA_SOFT_BYTES),
            dev_vecs: Vec::new(),
            key_vecs: Vec::new(),
            lease_vecs: Vec::new(),
            mode: transfer.mode,
            register_bps: transfer.register_bytes_per_sec,
            tracer: Tracer::disabled(),
            worker_id: 0,
            trace_cache: vec![(0, 0); n],
            metrics: Metrics::disabled(),
            m_cache: vec![Default::default(); n],
        }
    }

    /// Attach the live-metrics plane: registers per-device cache and
    /// engine counter series and hands each [`VirtualGpu`] its handles.
    pub(crate) fn set_metrics(&mut self, metrics: &Metrics, worker_id: usize) {
        self.metrics = metrics.clone();
        self.worker_id = worker_id;
        for i in 0..self.gpus.len() {
            self.register_device_metrics(i);
        }
    }

    /// Register the live-metrics series for device `gpu` (no-op handles
    /// when the plane is disabled).
    fn register_device_metrics(&mut self, gpu: usize) {
        let w = self.worker_id;
        let m = &self.metrics;
        let labels = format!("{{worker=\"{w}\",gpu=\"{gpu}\"}}");
        self.m_cache[gpu] = (
            m.counter(
                &format!("gflink_cache_hits_total{labels}"),
                "GPU cache region hits",
            ),
            m.counter(
                &format!("gflink_cache_misses_total{labels}"),
                "GPU cache region misses",
            ),
            m.counter(
                &format!("gflink_cache_evictions_total{labels}"),
                "GPU cache region evictions",
            ),
        );
        self.gpus[gpu].set_metrics(
            m.counter(
                &format!("gflink_kernel_launches_total{labels}"),
                "Kernels launched on the device",
            ),
            m.counter(
                &format!("gflink_bytes_h2d_total{labels}"),
                "Bytes copied host-to-device",
            ),
            m.counter(
                &format!("gflink_bytes_d2h_total{labels}"),
                "Bytes copied device-to-host",
            ),
        );
    }

    /// Attach a tracer: names one trace process per device and hands each
    /// [`VirtualGpu`] its engine-span emitter.
    pub(crate) fn set_tracer(&mut self, tracer: Tracer, worker_id: usize) {
        for (i, gpu) in self.gpus.iter_mut().enumerate() {
            let pid = gpu_pid(worker_id, i);
            if tracer.enabled() {
                tracer.name_process(
                    pid,
                    &format!("worker{worker_id}/gpu{i} ({})", gpu.spec().model.name()),
                );
            }
            gpu.set_tracer(tracer.clone(), pid);
        }
        self.tracer = tracer;
        self.worker_id = worker_id;
    }

    /// Emit a cache hit/miss instant plus the GPU's cumulative counters.
    fn trace_cache_event(&mut self, gpu: usize, hit: bool, key: CacheKey, t: SimTime) {
        if hit {
            self.m_cache[gpu].0.inc();
        } else {
            self.m_cache[gpu].1.inc();
        }
        if !self.tracer.enabled() {
            return;
        }
        let (h, m) = &mut self.trace_cache[gpu];
        if hit {
            *h += 1;
        } else {
            *m += 1;
        }
        let (h, m) = (*h, *m);
        let pid = gpu_pid(self.worker_id, gpu);
        self.tracer.record(
            TraceEvent::instant(
                pid,
                TID_DEVICE,
                Cat::Cache,
                if hit { "hit" } else { "miss" },
                t,
            )
            .with_arg("partition", key.partition)
            .with_arg("block", key.block),
        );
        self.tracer.record(TraceEvent::counter(
            pid,
            TID_DEVICE,
            Cat::Cache,
            "cache_hits",
            t,
            h as i64,
        ));
        self.tracer.record(TraceEvent::counter(
            pid,
            TID_DEVICE,
            Cat::Cache,
            "cache_misses",
            t,
            m as i64,
        ));
    }

    /// Emit a cache-eviction instant.
    fn trace_eviction(&self, gpu: usize, t: SimTime) {
        self.m_cache[gpu].2.inc();
        if self.tracer.enabled() {
            self.tracer.record(TraceEvent::instant(
                gpu_pid(self.worker_id, gpu),
                TID_DEVICE,
                Cat::Cache,
                "evict",
                t,
            ));
        }
    }

    /// Grow the complement: a fresh device of `model` joins as the next
    /// index. It inherits the worker's transfer mode and tracer (its trace
    /// process appears the moment it joins). Returns the new device index.
    pub(crate) fn join_device(&mut self, model: GpuModel) -> usize {
        let i = self.gpus.len();
        let mut gpu = VirtualGpu::new(i, model);
        if self.mode != TransferMode::Pinned {
            gpu.set_transfer_mode(self.mode);
        }
        let pid = gpu_pid(self.worker_id, i);
        if self.tracer.enabled() {
            self.tracer.name_process(
                pid,
                &format!(
                    "worker{}/gpu{i} ({})",
                    self.worker_id,
                    gpu.spec().model.name()
                ),
            );
        }
        gpu.set_tracer(self.tracer.clone(), pid);
        self.gpus.push(gpu);
        self.retired_stats.push((0, 0, 0));
        self.trace_cache.push((0, 0));
        self.m_cache.push(Default::default());
        if self.metrics.enabled() {
            self.register_device_metrics(i);
        }
        i
    }

    /// Retire device `gpu` gracefully (elastic leave): no further
    /// launches, device memory released, traced as an administrative
    /// departure. Returns how many allocations were released.
    pub(crate) fn retire_device(&mut self, gpu: usize, at: SimTime) -> usize {
        self.gpus[gpu].retire(at)
    }

    /// A fresh cache region for a single device (a joining member's slice
    /// of an already-open job).
    pub(crate) fn new_region_for(&self, gpu: usize) -> GpuCache {
        GpuCache::new(self.region_capacity(gpu), self.cache_policy)
    }

    /// Number of GPUs managed.
    pub fn gpu_count(&self) -> usize {
        self.gpus.len()
    }

    /// Immutable access to a GPU.
    pub fn gpu(&self, i: usize) -> &VirtualGpu {
        &self.gpus[i]
    }

    pub(crate) fn gpu_mut(&mut self, i: usize) -> &mut VirtualGpu {
        &mut self.gpus[i]
    }

    /// Whether device `gpu` is still usable (healthy or degraded).
    pub fn usable(&self, gpu: usize) -> bool {
        self.gpus[gpu].health().is_usable()
    }

    /// Number of devices still usable.
    pub fn usable_gpus(&self) -> usize {
        (0..self.gpus.len()).filter(|&g| self.usable(g)).count()
    }

    /// The device-memory surface of GPU `gpu`, as the explicit trait the
    /// memory layer is written against.
    fn dmem(&mut self, gpu: usize) -> &mut dyn DeviceMemoryOps {
        &mut self.gpus[gpu].dmem
    }

    /// Mint a fresh set of per-GPU cache regions for a starting job
    /// (§4.2.2: "a cache region is created when a job starts").
    pub(crate) fn new_regions(&self) -> Vec<GpuCache> {
        self.gpus
            .iter()
            .map(|g| {
                let cap = self.cache_capacity.min(g.spec().dev_mem_bytes * 3 / 4);
                GpuCache::new(cap, self.cache_policy)
            })
            .collect()
    }

    /// The full cache-region byte budget on GPU `gpu` — what
    /// [`new_regions`](Self::new_regions) grants a region before any
    /// cross-job partitioning shrinks it.
    pub(crate) fn region_capacity(&self, gpu: usize) -> u64 {
        self.cache_capacity
            .min(self.gpus[gpu].spec().dev_mem_bytes * 3 / 4)
    }

    /// Free specific device buffers on GPU `gpu` — the overflow evicted by
    /// a cache-partition rebalance shrinking a live region.
    pub(crate) fn release_buffers(&mut self, gpu: usize, devs: Vec<DevBufId>) {
        for dev in devs {
            let _ = self.dmem(gpu).release(dev);
        }
    }

    /// Re-divide each GPU's cache-region budget across live sessions in
    /// proportion to their weights (opt-in via
    /// `SchedulerConfig::partition_cache`), evicting overflow from regions
    /// that shrank. Off = every region keeps the full budget. Runs on job
    /// open/close and on every membership change, so a joining device's
    /// regions are born partitioned and a leaver's budget returns to the
    /// survivors.
    pub(crate) fn rebalance_regions(
        &mut self,
        sessions: &mut std::collections::BTreeMap<
            crate::session::JobId,
            crate::session::JobSession,
        >,
        partition: bool,
    ) {
        if !partition {
            return;
        }
        let total: u64 = sessions.values().map(|s| u64::from(s.weight)).sum();
        if total == 0 {
            return;
        }
        for g in 0..self.gpu_count() {
            if !self.usable(g) {
                continue;
            }
            let base = self.region_capacity(g);
            let mut freed = Vec::new();
            for s in sessions.values_mut() {
                let cap = base * u64::from(s.weight) / total;
                freed.extend(s.regions[g].set_capacity(cap));
            }
            self.release_buffers(g, freed);
        }
    }

    /// Free the device buffers behind a job's cache regions (job end,
    /// §4.2.2). The regions stay alive (emptied); statistics are preserved
    /// in them, not retired.
    pub(crate) fn release_regions(&mut self, regions: &mut [GpuCache]) {
        for (g, region) in regions.iter_mut().enumerate() {
            for dev in region.clear() {
                let _ = self.dmem(g).release(dev);
            }
        }
    }

    /// Fold a departing job's per-region cache statistics into the
    /// worker-level retired totals. Call once, just before dropping the
    /// regions — never on regions that stay alive, or stats double-count.
    pub(crate) fn retire_regions(&mut self, regions: &[GpuCache]) {
        for (g, region) in regions.iter().enumerate() {
            let (h, m, e) = region.stats();
            let acc = &mut self.retired_stats[g];
            acc.0 += h;
            acc.1 += m;
            acc.2 += e;
        }
    }

    /// (hits, misses, evictions) carried over from retired job regions on
    /// GPU `gpu`.
    pub(crate) fn retired_stats(&self, gpu: usize) -> (u64, u64, u64) {
        self.retired_stats[gpu]
    }

    /// Allocate device memory, evicting entries of the job's own cache
    /// region under pressure. Exhausting both free memory and the evictable
    /// region is a typed error, not a panic: the caller sends the work
    /// through the retry path (a later attempt may find memory released by
    /// finished works). Eviction pressure never touches another job's
    /// region.
    pub(crate) fn alloc_with_pressure(
        &mut self,
        region: &mut GpuCache,
        gpu: usize,
        logical: u64,
        actual: usize,
        t: SimTime,
    ) -> Result<DevBufId, ManagerError> {
        loop {
            match self.dmem(gpu).alloc(logical, actual) {
                Ok(id) => return Ok(id),
                Err(DmemError::OutOfMemory { .. }) => match region.evict_one() {
                    Some(dev) => {
                        let _ = self.dmem(gpu).release(dev);
                        self.trace_eviction(gpu, t);
                    }
                    None => {
                        return Err(ManagerError::OutOfMemory {
                            gpu,
                            requested: logical,
                            free: self.dmem(gpu).free_bytes(),
                        })
                    }
                },
                Err(e) => return Err(ManagerError::Device(DeviceError::Mem(e))),
            }
        }
    }

    /// In pinned mode, route `data` through a page-locked pool buffer:
    /// lease one (recycled when possible), memcpy into it, and return the
    /// lease plus the registration cost (zero on a pool hit, or always when
    /// registration is modelled as free).
    fn lease_staging(&mut self, owner: u64, data: &HBuffer) -> (Option<PinnedLease>, SimTime) {
        if self.mode != TransferMode::Pinned || data.is_empty() {
            return (None, SimTime::ZERO);
        }
        let lease = self.pinned_pool.acquire(owner, data.len());
        self.pinned_pool
            .buffer_mut(&lease)
            .copy_from(0, data, 0, data.len());
        let reg = if lease.registered_bytes > 0 && self.register_bps > 0.0 {
            SimTime::from_secs_f64(lease.registered_bytes as f64 / self.register_bps)
        } else {
            SimTime::ZERO
        };
        (Some(lease), reg)
    }

    /// Return staging leases to the pinned pool for recycling (the copies
    /// they backed have landed). The list's own allocation is recycled too.
    pub(crate) fn release_staging(&mut self, mut leases: Vec<PinnedLease>) {
        for lease in leases.drain(..) {
            self.pinned_pool.release(lease);
        }
        self.lease_vecs.push(leases);
    }

    fn take_dev_vec(&mut self) -> Vec<DevBufId> {
        self.dev_vecs.pop().unwrap_or_default()
    }

    fn take_key_vec(&mut self) -> Vec<CacheKey> {
        self.key_vecs.pop().unwrap_or_default()
    }

    fn take_lease_vec(&mut self) -> Vec<PinnedLease> {
        self.lease_vecs.pop().unwrap_or_default()
    }

    fn put_dev_vec(&mut self, mut v: Vec<DevBufId>) {
        v.clear();
        self.dev_vecs.push(v);
    }

    fn put_key_vec(&mut self, mut v: Vec<CacheKey>) {
        v.clear();
        self.key_vecs.push(v);
    }

    /// Drop a departing job's pinned-pool accounting.
    pub(crate) fn retire_pool_owner(&mut self, owner: u64) {
        self.pinned_pool.retire_owner(owner);
        self.arena.retire_owner(owner);
    }

    /// Lease a zeroed host result buffer for `owner` (a job id) from the
    /// shared arena — the hot-path replacement for a per-flight
    /// `HBuffer::zeroed`; in steady state the buffer is recycled from an
    /// earlier flight of the same output size.
    pub(crate) fn lease_output(&self, owner: u64, len: usize) -> ArenaBuf {
        self.arena.acquire(owner, len)
    }

    /// The shared result-buffer arena (hit-rate and exact-bytes teardown
    /// diagnostics).
    pub fn result_arena(&self) -> &BufferArena {
        &self.arena
    }

    /// Whole-worker pinned staging-pool accounting.
    pub fn pinned_stats(&self) -> PinnedStats {
        self.pinned_pool.stats()
    }

    /// One job's pinned staging-pool accounting.
    pub fn pinned_owner_stats(&self, owner: u64) -> PinnedStats {
        self.pinned_pool.owner_stats(owner)
    }

    /// (registered, peak registered, peak concurrently leased) bytes of the
    /// pinned staging pool.
    pub fn pinned_pool_bytes(&self) -> (u64, u64, u64) {
        (
            self.pinned_pool.registered_bytes(),
            self.pinned_pool.peak_registered_bytes(),
            self.pinned_pool.peak_in_use_bytes(),
        )
    }

    /// Stage 1: bring a work's inputs onto device `gpu` (H2D copies,
    /// skipped per-buffer on cache hits against the job's region). Every
    /// cached buffer the work references is pinned until its D2H completes
    /// so concurrent works cannot evict a live kernel argument. In pinned
    /// mode each copy is fed from a pool staging buffer (leases ride in the
    /// result until the copies land).
    pub(crate) fn stage_inputs(
        &mut self,
        region: &mut GpuCache,
        gpu: usize,
        owner: u64,
        work: &GWork,
        t: SimTime,
        timing: &mut WorkTiming,
    ) -> StagedInputs {
        let mut staged = StagedInputs {
            dev_inputs: self.take_dev_vec(),
            transient: self.take_dev_vec(),
            pinned: self.take_key_vec(),
            staging: self.take_lease_vec(),
            h2d_start: None,
            kernel_earliest: t,
            failure: None,
        };
        for inbuf in &work.inputs {
            let cached_dev = inbuf.cache_key.and_then(|key| region.lookup(key));
            match cached_dev {
                Some(dev) => {
                    timing.cache_hits += 1;
                    let key = inbuf.cache_key.unwrap();
                    region.pin(key);
                    staged.pinned.push(key);
                    staged.dev_inputs.push(dev);
                    self.trace_cache_event(gpu, true, key, t);
                }
                None => {
                    let dev = match self.alloc_with_pressure(
                        region,
                        gpu,
                        inbuf.logical_bytes,
                        inbuf.data.len(),
                        t,
                    ) {
                        Ok(dev) => dev,
                        Err(e) => {
                            staged.failure = Some(e);
                            break;
                        }
                    };
                    let (lease, reg) = self.lease_staging(owner, &inbuf.data);
                    let src: &HBuffer = match &lease {
                        Some(l) => self.pinned_pool.buffer(l),
                        None => &inbuf.data,
                    };
                    let r = match self.gpus[gpu].copy_h2d(t + reg, inbuf.logical_bytes, src, dev) {
                        Ok(r) => r,
                        Err(e) => {
                            if let Some(l) = lease {
                                self.pinned_pool.release(l);
                            }
                            staged.transient.push(dev);
                            staged.failure = Some(ManagerError::Device(e));
                            break;
                        }
                    };
                    if let Some(l) = lease {
                        staged.staging.push(l);
                    }
                    timing.h2d += r.duration();
                    timing.bytes_h2d += inbuf.logical_bytes;
                    staged.h2d_start = Some(match staged.h2d_start {
                        Some(s) => s.min(r.start),
                        None => r.start,
                    });
                    staged.kernel_earliest = staged.kernel_earliest.max(r.end);
                    let mut keep = false;
                    if let Some(key) = inbuf.cache_key {
                        timing.cache_misses += 1;
                        self.trace_cache_event(gpu, false, key, t);
                        let (evicted, may_insert) = region.make_room(inbuf.logical_bytes);
                        for d in evicted {
                            let _ = self.dmem(gpu).release(d);
                            self.trace_eviction(gpu, t);
                        }
                        if may_insert {
                            if let Some(old) = region.insert(key, dev, inbuf.logical_bytes) {
                                let _ = self.dmem(gpu).release(old);
                            }
                            region.pin(key);
                            staged.pinned.push(key);
                            keep = true;
                        }
                    }
                    if !keep {
                        staged.transient.push(dev);
                    }
                    staged.dev_inputs.push(dev);
                }
            }
        }
        staged
    }

    /// Stage a whole batch of same-job works onto device `gpu` through one
    /// fused H2D call: every member's cache-miss copy is folded into a
    /// single engine reservation paying one per-call α. Cache semantics are
    /// identical to [`GMemoryManager::stage_inputs`], applied member by
    /// member (a later member can hit a key an earlier member just
    /// inserted). Per-member `h2d` time is the member's pro-rata share of
    /// the fused reservation by bytes.
    pub(crate) fn stage_fused(
        &mut self,
        region: &mut GpuCache,
        gpu: usize,
        owner: u64,
        works: &[GWork],
        t: SimTime,
        timings: &mut [WorkTiming],
    ) -> FusedStaged {
        let mut staged = FusedStaged {
            members: Vec::with_capacity(works.len()),
            staging: self.take_lease_vec(),
            h2d_start: None,
            kernel_earliest: t,
            upload_calls: 0,
            failure: None,
        };
        // Copies deferred into the fused call: (logical bytes, source,
        // device buffer, member index). Sources are leases (pinned mode) or
        // the works' own host buffers.
        enum Src {
            Lease(usize),
            Direct(usize, usize),
        }
        let mut pending: Vec<(u64, Src, DevBufId, usize)> = Vec::new();
        let mut reg_total = SimTime::ZERO;
        'members: for (m, work) in works.iter().enumerate() {
            let mut member = StagedMember {
                dev_inputs: self.take_dev_vec(),
                transient: self.take_dev_vec(),
                pinned: self.take_key_vec(),
            };
            for (j, inbuf) in work.inputs.iter().enumerate() {
                if let Some(dev) = inbuf.cache_key.and_then(|key| region.lookup(key)) {
                    timings[m].cache_hits += 1;
                    let key = inbuf.cache_key.unwrap();
                    region.pin(key);
                    member.pinned.push(key);
                    member.dev_inputs.push(dev);
                    self.trace_cache_event(gpu, true, key, t);
                    continue;
                }
                let alloc =
                    self.alloc_with_pressure(region, gpu, inbuf.logical_bytes, inbuf.data.len(), t);
                let dev = match alloc {
                    Ok(dev) => dev,
                    Err(e) => {
                        staged.failure = Some(e);
                        staged.members.push(member);
                        break 'members;
                    }
                };
                let (lease, reg) = self.lease_staging(owner, &inbuf.data);
                reg_total += reg;
                let src = match lease {
                    Some(l) => {
                        staged.staging.push(l);
                        Src::Lease(staged.staging.len() - 1)
                    }
                    None => Src::Direct(m, j),
                };
                pending.push((inbuf.logical_bytes, src, dev, m));
                let mut keep = false;
                if let Some(key) = inbuf.cache_key {
                    timings[m].cache_misses += 1;
                    self.trace_cache_event(gpu, false, key, t);
                    let (evicted, may_insert) = region.make_room(inbuf.logical_bytes);
                    for d in evicted {
                        let _ = self.dmem(gpu).release(d);
                        self.trace_eviction(gpu, t);
                    }
                    if may_insert {
                        if let Some(old) = region.insert(key, dev, inbuf.logical_bytes) {
                            let _ = self.dmem(gpu).release(old);
                        }
                        region.pin(key);
                        member.pinned.push(key);
                        keep = true;
                    }
                }
                if !keep {
                    member.transient.push(dev);
                }
                member.dev_inputs.push(dev);
            }
            staged.members.push(member);
        }
        if staged.failure.is_some() || pending.is_empty() {
            return staged;
        }
        let items: Vec<(u64, &HBuffer, DevBufId)> = pending
            .iter()
            .map(|&(logical, ref src, dev, _)| {
                let buf: &HBuffer = match src {
                    Src::Lease(i) => self.pinned_pool.buffer(&staged.staging[*i]),
                    Src::Direct(m, j) => &works[*m].inputs[*j].data,
                };
                (logical, buf, dev)
            })
            .collect();
        let r = match self.gpus[gpu].copy_h2d_batch(t + reg_total, &items) {
            Ok(r) => r,
            Err(e) => {
                staged.failure = Some(ManagerError::Device(e));
                return staged;
            }
        };
        drop(items);
        let total: u64 = pending.iter().map(|p| p.0).sum();
        for &(logical, _, _, m) in &pending {
            timings[m].h2d += pro_rata(r.duration(), logical, total);
            timings[m].bytes_h2d += logical;
        }
        staged.h2d_start = Some(r.start);
        staged.kernel_earliest = r.end;
        staged.upload_calls = pending.len();
        staged
    }

    /// Allocate a work's output buffer under cache pressure.
    pub(crate) fn alloc_output(
        &mut self,
        region: &mut GpuCache,
        gpu: usize,
        work: &GWork,
        t: SimTime,
    ) -> Result<DevBufId, ManagerError> {
        self.alloc_with_pressure(
            region,
            gpu,
            work.out_logical_bytes,
            work.out_actual_bytes,
            t,
        )
    }

    /// Release a recovered or finished flight's device buffers and cache
    /// pins (automatic deallocation, §4.2.1). A `None` `out_dev` means the
    /// output was never allocated. No-ops harmlessly after device loss
    /// (handles are dead, pins were cleared). The flight's bookkeeping
    /// `Vec`s — including the input-handle list, whose buffers are either
    /// transient or cache-owned — go back to the pools for the next flight.
    pub(crate) fn reclaim(
        &mut self,
        region: &mut GpuCache,
        gpu: usize,
        dev_inputs: Vec<DevBufId>,
        mut transient: Vec<DevBufId>,
        mut pinned: Vec<CacheKey>,
        out_dev: Option<DevBufId>,
    ) {
        for d in transient.drain(..) {
            let _ = self.dmem(gpu).release(d);
        }
        for key in pinned.drain(..) {
            region.unpin(key);
        }
        if let Some(dev) = out_dev {
            let _ = self.dmem(gpu).release(dev);
        }
        self.put_dev_vec(dev_inputs);
        self.put_dev_vec(transient);
        self.put_key_vec(pinned);
    }
}

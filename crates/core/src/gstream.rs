#![warn(clippy::too_many_lines)]

//! GStreamManager (§5): the stream-scheduling half of the GPUManager.
//!
//! Owns the stream bulks (`stream_busy_until`), the per-GPU FIFO GWork
//! queues (the GWork Pool), and the in-flight table, and drives the
//! three-stage H2D → Kernel → D2H pipeline through the event loop:
//!
//! * [`GWork` scheduling](crate::scheduling::SchedulingPolicy) follows
//!   Algorithm 5.1: prefer the GPU whose cache region already holds the
//!   most of this job's input bytes; fall back to the bulk with the most
//!   idle streams; if no stream is idle, park the work in a per-GPU queue.
//! * When a stream frees, it **steals** per Algorithm 5.2: its own GPU's
//!   queue first, then the longest queue.
//! * Memory work (staging, allocation, reclaim) is delegated to the
//!   [`GMemoryManager`]; fault bookkeeping and retry routing to the
//!   [`RecoveryManager`].
//!
//! Handlers act on an [`Engine`] — the borrow-split view of the
//! coordinator's other halves — so each event can touch the memory
//! manager, the recovery manager, and the owning job's session at once.

use crate::config::{BatchConfig, GpuWorkerConfig, HybridConfig};
use crate::costmodel::{decide, CostModel, HybridRoute};
use crate::fused::{FusedFlight, Parked, PendingBatch};
use crate::gmemory::{GMemoryManager, StagedInputs};
use crate::gwork::{CacheKey, CompletedWork, GWork, WorkBuf, WorkTiming};
use crate::jobsched::{JobScheduler, PennedWork};
use crate::recovery::{FailReason, ManagerError, RecoveryManager, CPU_FALLBACK_GPU};
use crate::scheduling::SchedulingPolicy;
use crate::session::{JobId, JobSession};
use gflink_gpu::{DevBufId, GpuModel, KernelRegistry};
use gflink_memory::{ArenaBuf, HBuffer, PinnedLease};
use gflink_sim::trace::{cpu_pid, gpu_pid, stream_tid, Cat, TraceEvent, TID_DEVICE};
use gflink_sim::{
    Counter, EventQueue, FaultKind, Gauge, Histogram, MembershipKind, Metrics, RecEvent, RecKind,
    SimRng, SimTime, Tracer,
};
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::Arc;

/// The event vocabulary of one drain.
pub(crate) enum Ev {
    /// A work enters Alg. 5.1 placement. Stored inline: the slab-backed
    /// [`EventQueue`] keeps payloads out of its heap, so boxing here would
    /// only add a pointer chase per submission.
    Submit {
        /// Owning job.
        job: JobId,
        /// Original submit instant (queueing-delay reporting).
        submitted: SimTime,
        /// Retry count so far.
        retries: u32,
        /// The work itself.
        work: GWork,
    },
    /// A stream came free; run Alg. 5.2.
    StreamFree {
        /// Device index.
        gpu: usize,
        /// Stream index within the device's bulk.
        stream: usize,
    },
    /// A work's H2D stage finished; launch its kernel.
    KernelStage(u64),
    /// A work's kernel finished; start its D2H transfer.
    D2hStage(u64),
    /// A scripted fault fires.
    Fault(FaultKind),
    /// Watchdog: check whether flight `id` is still wedged in its kernel.
    HangCheck(u64),
    /// A pending transfer batch's accumulation window expired; flush it to
    /// the queue unless epoch `epoch` was already flushed or superseded.
    FlushBatch {
        /// Device whose batcher the window belongs to.
        gpu: usize,
        /// Identity of the pending batch the window was armed for.
        epoch: u64,
    },
    /// A fused flight's H2D landed; launch its members' kernels.
    FusedKernelStage(u64),
    /// A fused flight's kernels all finished; start the fused D2H.
    FusedD2hStage(u64),
    /// Watchdog for a fused flight wedged in a member kernel.
    FusedHangCheck(u64),
    /// A scripted membership event fires: a device joins the live fabric
    /// or gracefully leaves it.
    Membership(MembershipKind),
}

impl Ev {
    /// Build a [`Ev::Submit`] — every (re-)submission path funnels through
    /// here so call sites stay one line.
    pub(crate) fn submit(job: JobId, submitted: SimTime, retries: u32, work: GWork) -> Ev {
        Ev::Submit {
            job,
            submitted,
            retries,
            work,
        }
    }
}

/// A parked work in a GPU's FIFO queue, with its owning job, original
/// submit instant (for queueing-delay reporting) and retry count.
pub(crate) struct QueuedWork {
    pub(crate) job: JobId,
    pub(crate) submitted: SimTime,
    pub(crate) retries: u32,
    pub(crate) work: GWork,
}

/// Generation-tagged slab of flights keyed by the packed ids that ride in
/// pipeline-stage events: `(gen << 32) | slot`. A stage event that fires
/// after its flight was recovered (device loss) carries a stale generation
/// and misses cleanly — exactly the semantics the old `HashMap<u64, _>`
/// gave via never-reused keys, but lookups are now an array index with no
/// hashing on the per-work hot path (ISSUE 7).
pub(crate) struct FlightTable<T> {
    slots: Vec<(u32, Option<T>)>,
    free: Vec<u32>,
    live: usize,
}

impl<T> FlightTable<T> {
    pub(crate) fn new() -> Self {
        FlightTable {
            slots: Vec::new(),
            free: Vec::new(),
            live: 0,
        }
    }

    /// Park a flight, minting its event id. Re-inserting after a `remove`
    /// mints a *new* id (the slot's generation advanced), so events armed
    /// against the old id stay dead.
    pub(crate) fn insert(&mut self, v: T) -> u64 {
        self.live += 1;
        match self.free.pop() {
            Some(slot) => {
                let e = &mut self.slots[slot as usize];
                e.1 = Some(v);
                ((e.0 as u64) << 32) | slot as u64
            }
            None => {
                let slot = u32::try_from(self.slots.len()).expect("flight table overflow");
                self.slots.push((0, Some(v)));
                slot as u64
            }
        }
    }

    /// Take a flight out; `None` when the id's generation is stale (the
    /// flight was already recovered) — callers treat that as "event no
    /// longer applies".
    pub(crate) fn remove(&mut self, id: u64) -> Option<T> {
        let (slot, gen) = ((id & u32::MAX as u64) as usize, (id >> 32) as u32);
        let e = self.slots.get_mut(slot)?;
        if e.0 != gen {
            return None;
        }
        let v = e.1.take()?;
        e.0 = e.0.wrapping_add(1);
        self.free.push(slot as u32);
        self.live -= 1;
        Some(v)
    }

    /// Peek at a live flight (stale ids miss).
    pub(crate) fn get(&self, id: u64) -> Option<&T> {
        let (slot, gen) = ((id & u32::MAX as u64) as usize, (id >> 32) as u32);
        let e = self.slots.get(slot)?;
        if e.0 != gen {
            return None;
        }
        e.1.as_ref()
    }

    /// Mutable peek at a live flight (stale ids miss).
    pub(crate) fn get_mut(&mut self, id: u64) -> Option<&mut T> {
        let (slot, gen) = ((id & u32::MAX as u64) as usize, (id >> 32) as u32);
        let e = self.slots.get_mut(slot)?;
        if e.0 != gen {
            return None;
        }
        e.1.as_mut()
    }

    pub(crate) fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Live flights with their current ids, in slot order. Callers that
    /// need a deterministic *creation* order (device-loss recovery) sort by
    /// the flights' own monotonic `seq`, not by id — slots are reused.
    pub(crate) fn iter(&self) -> impl Iterator<Item = (u64, &T)> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, (g, v))| v.as_ref().map(|v| (((*g as u64) << 32) | i as u64, v)))
    }
}

/// Per-work state carried between pipeline-stage events.
struct InFlight {
    /// Monotonic creation stamp: device-loss recovery re-submits flights in
    /// `seq` order so the recovered event sequence is bit-identical to the
    /// pre-slab (never-reused-id) behaviour.
    seq: u64,
    job: JobId,
    work: GWork,
    retries: u32,
    timing: WorkTiming,
    gpu: usize,
    stream: usize,
    dev_inputs: Vec<DevBufId>,
    transient: Vec<DevBufId>,
    /// Cache keys pinned for the duration of this work.
    pinned: Vec<CacheKey>,
    /// Pinned-pool staging leases backing the H2D; released once the copy
    /// has landed (kernel-stage entry) or the flight is recovered.
    staging: Vec<PinnedLease>,
    out_dev: DevBufId,
    emitted: Option<usize>,
    /// An injected hang wedged this flight's kernel; only the watchdog
    /// recovers it.
    hung: bool,
}

/// Synthetic block-index floor for split children: adaptive block sizing
/// mints child tags descending from `u32::MAX`, so any tag at or above this
/// is a child. A real fabric would need ~4 billion blocks in one partition
/// to collide with the reserved range.
pub(crate) const SPLIT_TAG_MIN: u32 = u32::MAX - (1 << 20);

/// Whether a tag names a synthetic split child rather than a caller block.
pub(crate) fn is_split_child(tag: (u32, u32)) -> bool {
    tag.1 >= SPLIT_TAG_MIN
}

/// Reassembly state for one split block: children write their output
/// slices here; when the last lands, a single parent [`CompletedWork`] is
/// emitted so consumers never see the split.
struct MergeEntry {
    name: std::sync::Arc<str>,
    tag: (u32, u32),
    out: Vec<u8>,
    remaining: usize,
    /// Accumulated parent timing: stage times/bytes sum, `started` is the
    /// earliest child start, `completed` the latest child landing (or
    /// failure instant).
    timing: WorkTiming,
    /// Device attribution: the GPU child's placement when one ran there,
    /// else [`CPU_FALLBACK_GPU`].
    gpu: usize,
    stream: usize,
    emitted: Option<usize>,
    /// First terminal child failure: the parent block fails as a unit
    /// (under its own tag) once the sibling also lands; any completed
    /// sibling output is discarded.
    failed: Option<FailReason>,
    /// Highest retry count either child reached (parent failure
    /// attribution).
    retries: u32,
    /// The two reserved child block indices, returned to the free list
    /// when the merge closes.
    child_tags: [u32; 2],
}

/// Where a split child's completion folds back in.
struct ChildRoute {
    merge: u64,
    /// Byte offset of the child's output slice in the parent output.
    offset: usize,
}

/// Borrow-split view of the coordinator handed to every event handler:
/// the two sibling managers, the open sessions, the kernel registry and
/// the worker's RNG — everything an event may need besides the stream
/// state the [`GStreamManager`] itself owns.
pub(crate) struct Engine<'a> {
    pub gmem: &'a mut GMemoryManager,
    pub recovery: &'a mut RecoveryManager,
    pub sessions: &'a mut BTreeMap<JobId, JobSession>,
    pub registry: &'a Arc<Mutex<KernelRegistry>>,
    pub rng: &'a mut SimRng,
}

/// The stream-scheduling half of the per-worker GPU manager.
pub struct GStreamManager {
    pub(crate) streams_per_gpu: usize,
    pub(crate) policy: SchedulingPolicy,
    /// `stream_busy_until[g][s]`
    pub(crate) stream_busy_until: Vec<Vec<SimTime>>,
    /// The multi-job scheduler: per-GPU GWork queues (the GWork Pool) under
    /// the configured cross-job arbitration, plus backpressure pens.
    pub(crate) sched: JobScheduler,
    rr_counter: usize,
    steals: u64,
    pub(crate) executed_per_gpu: Vec<u64>,
    in_flight: FlightTable<InFlight>,
    pub(crate) next_flight: u64,
    /// Small-GWork transfer batching policy.
    pub(crate) batch_cfg: BatchConfig,
    /// One accumulating batch per GPU; works that would otherwise queue
    /// land here until a flush condition fires.
    pub(crate) batchers: Vec<Option<PendingBatch>>,
    /// Monotonic identity for pending batches (guards stale FlushBatch
    /// window events).
    pub(crate) batch_epoch: u64,
    /// Fused flights, keyed like `in_flight` but driven by the Fused*
    /// events.
    pub(crate) fused_in_flight: FlightTable<FusedFlight>,
    /// Fused batches dispatched.
    pub(crate) fused_batches: u64,
    /// Works that travelled inside fused batches.
    pub(crate) fused_works: u64,
    /// Per-call transfer overhead (α) saved by fusing copies.
    pub(crate) alpha_saved: SimTime,
    pub(crate) tracer: Tracer,
    pub(crate) worker_id: usize,
    /// The live-metrics plane (gates flight-recorder pushes and drives
    /// time-series sampling from the dispatch/completion hot path).
    pub(crate) metrics: Metrics,
    m_dispatched: Counter,
    m_completed: Counter,
    m_steals: Counter,
    m_penned: Counter,
    m_pen_depth: Gauge,
    m_pen_delay: Histogram,
    /// The online cost model; `Some` only under
    /// [`SchedulingPolicy::HybridCostModel`], so every other policy pays
    /// nothing on the hot path.
    cost_model: Option<CostModel>,
    hybrid_cfg: HybridConfig,
    /// Split blocks awaiting child completions.
    merges: FlightTable<MergeEntry>,
    /// `(job, child tag)` → merge routing.
    split_children: BTreeMap<(JobId, (u32, u32)), ChildRoute>,
    /// Next synthetic child block index, descending from `u32::MAX`.
    next_child_tag: u32,
    /// Child block indices reclaimed from closed merges, reused before
    /// `next_child_tag` descends further — a long-lived worker cycles a
    /// handful of indices instead of exhausting the reserved range.
    free_child_tags: Vec<u32>,
    m_hybrid_gpu: Counter,
    m_hybrid_cpu: Counter,
    m_hybrid_splits: Counter,
    m_model_err: Gauge,
}

impl GStreamManager {
    pub(crate) fn new(cfg: &GpuWorkerConfig) -> Self {
        let n_gpus = cfg.models.len();
        let streams_per_gpu = cfg.streams_per_gpu;
        let policy = cfg.scheduling;
        GStreamManager {
            streams_per_gpu,
            policy,
            stream_busy_until: vec![vec![SimTime::ZERO; streams_per_gpu]; n_gpus],
            sched: JobScheduler::new(n_gpus, cfg.scheduler.clone()),
            rr_counter: 0,
            steals: 0,
            executed_per_gpu: vec![0; n_gpus],
            in_flight: FlightTable::new(),
            next_flight: 1,
            batch_cfg: cfg.transfer.batch.clone(),
            batchers: (0..n_gpus).map(|_| None).collect(),
            batch_epoch: 0,
            fused_in_flight: FlightTable::new(),
            fused_batches: 0,
            fused_works: 0,
            alpha_saved: SimTime::ZERO,
            tracer: Tracer::disabled(),
            worker_id: 0,
            metrics: Metrics::disabled(),
            m_dispatched: Counter::disabled(),
            m_completed: Counter::disabled(),
            m_steals: Counter::disabled(),
            m_penned: Counter::disabled(),
            m_pen_depth: Gauge::disabled(),
            m_pen_delay: Histogram::disabled(),
            cost_model: (policy == SchedulingPolicy::HybridCostModel).then(|| CostModel::new(cfg)),
            hybrid_cfg: cfg.hybrid.clone(),
            merges: FlightTable::new(),
            split_children: BTreeMap::new(),
            next_child_tag: u32::MAX,
            free_child_tags: Vec::new(),
            m_hybrid_gpu: Counter::disabled(),
            m_hybrid_cpu: Counter::disabled(),
            m_hybrid_splits: Counter::disabled(),
            m_model_err: Gauge::disabled(),
        }
    }

    /// Attach the live-metrics plane: registers this worker's scheduling
    /// series (dispatch/completion counters, steal and pen counters, the
    /// pen-depth gauge and the pen-delay histogram).
    pub(crate) fn set_metrics(&mut self, metrics: &Metrics, worker_id: usize) {
        self.metrics = metrics.clone();
        self.worker_id = worker_id;
        let l = format!("{{worker=\"{worker_id}\"}}");
        self.m_dispatched = metrics.counter(
            &format!("gflink_works_dispatched_total{l}"),
            "Works entering Alg. 5.1 placement (including retries)",
        );
        self.m_completed = metrics.counter(
            &format!("gflink_works_completed_total{l}"),
            "Works whose D2H landed",
        );
        self.m_steals = metrics.counter(
            &format!("gflink_steals_total{l}"),
            "Alg. 5.2 steals from foreign queues",
        );
        self.m_penned = metrics.counter(
            &format!("gflink_works_penned_total{l}"),
            "Submissions parked in the backpressure pen",
        );
        self.m_pen_depth = metrics.gauge(
            &format!("gflink_pen_depth{l}"),
            "Works currently parked in backpressure pens",
        );
        self.m_pen_delay = metrics.histogram(
            &format!("gflink_pen_delay{l}"),
            "Pen residency before release",
        );
        self.m_hybrid_gpu = metrics.counter(
            &format!("gflink_hybrid_gpu_total{l}"),
            "Works the hybrid cost model placed on a GPU",
        );
        self.m_hybrid_cpu = metrics.counter(
            &format!("gflink_hybrid_cpu_total{l}"),
            "Works the hybrid cost model placed on the host CPU",
        );
        self.m_hybrid_splits = metrics.counter(
            &format!("gflink_hybrid_splits_total{l}"),
            "Blocks the hybrid cost model split across CPU and GPU",
        );
        self.m_model_err = metrics.gauge(
            &format!("gflink_hybrid_model_error_permille{l}"),
            "Relative prediction error of the last hybrid completion (permille)",
        );
    }

    /// Attach a tracer and name one trace thread per CUDA stream. Stage
    /// spans land on these threads; overlapping spans across streams of one
    /// GPU are the §5 pipelining made visible.
    pub(crate) fn set_tracer(&mut self, tracer: Tracer, worker_id: usize) {
        if tracer.enabled() {
            for g in 0..self.stream_busy_until.len() {
                for s in 0..self.streams_per_gpu {
                    tracer.name_thread(
                        gpu_pid(worker_id, g),
                        stream_tid(s),
                        &format!("stream {s}"),
                    );
                }
            }
        }
        self.tracer = tracer;
        self.worker_id = worker_id;
    }

    /// Emit one pipeline-stage span for a flight on its stream's thread,
    /// tagged with the owning job and operator name.
    fn trace_stage(&self, fl: &InFlight, stage: &'static str, start: SimTime, end: SimTime) {
        if self.tracer.enabled() {
            self.tracer.record(
                TraceEvent::span(
                    gpu_pid(self.worker_id, fl.gpu),
                    stream_tid(fl.stream),
                    Cat::Stage,
                    stage,
                    start,
                    end,
                )
                .with_job(fl.job.0)
                .with_arg("op", &fl.work.name),
            );
        }
    }

    /// Streams per GPU (the stream bulk size).
    pub fn streams_per_gpu(&self) -> usize {
        self.streams_per_gpu
    }

    /// Number of Alg. 5.2 steals from foreign queues.
    pub fn steals(&self) -> u64 {
        self.steals
    }

    /// Fused transfer batches dispatched.
    pub fn fused_batches(&self) -> u64 {
        self.fused_batches
    }

    /// Works that travelled inside fused batches.
    pub fn fused_works(&self) -> u64 {
        self.fused_works
    }

    /// Per-call transfer overhead (α) saved by fusing copies.
    pub fn alpha_saved(&self) -> SimTime {
        self.alpha_saved
    }

    /// Works executed per GPU (load-balance reporting). CPU-fallback works
    /// are not attributed to any GPU.
    pub fn executed_per_gpu(&self) -> &[u64] {
        &self.executed_per_gpu
    }

    pub(crate) fn busy_until(&self, gpu: usize, stream: usize) -> SimTime {
        self.stream_busy_until[gpu][stream]
    }

    /// True when no work is queued, penned, accumulating in a batcher, or
    /// in flight (end-of-drain invariant).
    pub(crate) fn is_idle(&self) -> bool {
        self.sched.is_idle()
            && self.in_flight.is_empty()
            && self.fused_in_flight.is_empty()
            && self.merges.is_empty()
            && self.batchers.iter().all(Option::is_none)
    }

    /// Alg. 5.1, step 1: the GPU whose cache region holds the most of this
    /// work's cached input bytes (`GID`), or `None` when nothing is
    /// resident. Only the owning job's regions are consulted — another
    /// tenant caching the same key must not attract this job's work. Lost
    /// devices never win: their regions were invalidated at loss.
    fn locality_gpu(gmem: &GMemoryManager, session: &JobSession, work: &GWork) -> Option<usize> {
        let keys: Vec<_> = work.inputs.iter().filter_map(|b| b.cache_key).collect();
        if keys.is_empty() {
            return None;
        }
        let mut best: Option<(usize, u64)> = None;
        for (g, region) in session.regions.iter().enumerate() {
            if !gmem.usable(g) {
                continue;
            }
            let bytes = region.resident_bytes(&keys);
            if bytes > 0 && best.map(|(_, b)| bytes > b).unwrap_or(true) {
                best = Some((g, bytes));
            }
        }
        best.map(|(g, _)| g)
    }

    fn idle_streams(&self, gpu: usize, t: SimTime) -> usize {
        self.stream_busy_until[gpu]
            .iter()
            .filter(|&&b| b <= t)
            .count()
    }

    pub(crate) fn first_idle_stream(&self, gpu: usize, t: SimTime) -> Option<usize> {
        self.stream_busy_until[gpu].iter().position(|&b| b <= t)
    }

    /// The bulk with the most idle streams (ties → lowest GPU index). A
    /// lost device's streams are pinned busy forever, so it never appears.
    pub(crate) fn most_idle_bulk(&self, t: SimTime) -> Option<(usize, usize)> {
        let (mut best_g, mut best_idle) = (0usize, 0usize);
        for g in 0..self.stream_busy_until.len() {
            let idle = self.idle_streams(g, t);
            if idle > best_idle {
                best_g = g;
                best_idle = idle;
            }
        }
        if best_idle == 0 {
            None
        } else {
            Some((best_g, self.first_idle_stream(best_g, t).unwrap()))
        }
    }

    #[allow(clippy::too_many_arguments)]
    pub(crate) fn dispatch(
        &mut self,
        eng: &mut Engine<'_>,
        job: JobId,
        mut work: GWork,
        submitted: SimTime,
        retries: u32,
        t: SimTime,
        q: &mut EventQueue<Ev>,
    ) {
        self.m_dispatched.inc();
        self.metrics.maybe_sample(t);
        // Intern the kernel name once at submission: spec-built works
        // arrive pre-resolved; hand-built ones resolve here. Every later
        // stage dispatches by id (an array index, no string hashing).
        if !work.kernel.is_resolved() {
            if let Some(id) = eng.registry.lock().resolve(&work.execute_name) {
                work.kernel = id;
            }
        }
        if eng.gmem.usable_gpus() == 0 {
            let session = eng.sessions.get_mut(&job).expect("session open");
            let run = eng
                .recovery
                .run_on_cpu(session, job, eng.registry, work, submitted, t);
            match run {
                Ok(done) => self.deliver(eng, job, done),
                Err((work, reason)) => {
                    self.fail_terminal(eng, job, work, submitted, retries, t, reason)
                }
            }
            return;
        }
        // Backpressure: a job already holding its queued-bytes cap parks
        // its further first-attempt submissions in the pen; they re-enter
        // as the job's backlog drains (see `on_stream_free`) or at drain
        // quiescence (`flush_parked`). Retries bypass the pen: they were
        // admitted once and recovery must not deadlock behind admission.
        // Split children bypass it too: their parent block was already
        // admitted, and penning half a split would leave its merge entry
        // hostage to admission.
        if retries == 0 && !is_split_child(work.tag) && self.sched.should_pen(job) {
            if let Some(session) = eng.sessions.get_mut(&job) {
                session.parked_works += 1;
                if self.metrics.enabled() {
                    session.recorder.push(RecEvent::new(
                        t,
                        RecKind::WorkPenned,
                        self.worker_id as u32,
                    ));
                }
            }
            self.sched.pen_work(
                job,
                PennedWork {
                    arrived: t,
                    submitted,
                    retries,
                    work,
                },
            );
            self.m_penned.inc();
            self.m_pen_depth.set(self.sched.pen_depth_total() as u64);
            return;
        }
        // Hybrid placement (ISSUE 9): the cost model compares the best GPU
        // route against the host CPU pool. GPU wins fall straight through
        // into Alg. 5.1 below — code-identical placement, so when the GPUs
        // win every prediction the timeline matches `LocalityAware` bit for
        // bit. Retries and split children always stay on the GPU path.
        if self.cost_model.is_some()
            && retries == 0
            && !is_split_child(work.tag)
            && eng.recovery.host_enabled()
        {
            match self.hybrid_route(eng, job, &work, t) {
                HybridRoute::Gpu => {
                    self.m_hybrid_gpu.inc();
                    if let Some(session) = eng.sessions.get_mut(&job) {
                        session.hybrid_gpu += 1;
                    }
                }
                HybridRoute::Cpu => {
                    self.run_hybrid_cpu(eng, job, work, submitted, retries, t, q);
                    return;
                }
                HybridRoute::Split { cpu_n } => {
                    self.split_and_dispatch(eng, job, work, submitted, cpu_n, t, q);
                    return;
                }
            }
        }
        match self.policy {
            SchedulingPolicy::LocalityAware
            | SchedulingPolicy::LocalityNoSteal
            | SchedulingPolicy::HybridCostModel => {
                let gid = {
                    let session = eng.sessions.get(&job).expect("session open");
                    Self::locality_gpu(eng.gmem, session, &work)
                };
                // Algorithm 5.1.
                let placed = match gid {
                    Some(g) => match self.first_idle_stream(g, t) {
                        Some(s) => Some((g, s)),
                        None => self.most_idle_bulk(t),
                    },
                    None => self.most_idle_bulk(t),
                };
                match placed {
                    Some((g, s)) => self.execute(eng, job, work, submitted, retries, g, s, t, q),
                    None => {
                        // Lines 11–18: park in GID's queue, or the least
                        // loaded usable queue when GID is null.
                        let qi = match gid.filter(|&g| eng.gmem.usable(g)) {
                            Some(g) => g,
                            None => (0..self.sched.num_queues())
                                .filter(|&i| eng.gmem.usable(i))
                                .min_by_key(|&i| self.sched.queue_len(i))
                                .unwrap(),
                        };
                        // Small works that would queue anyway accumulate
                        // into a fused transfer batch instead — batching
                        // only ever engages under backlog, so an idle
                        // fabric sees zero added latency.
                        if self.batchable(retries, &work) {
                            self.enqueue_batched(job, work, submitted, retries, qi, t, q);
                        } else {
                            self.sched.park(
                                qi,
                                Parked::Single(QueuedWork {
                                    job,
                                    submitted,
                                    retries,
                                    work,
                                }),
                            );
                        }
                    }
                }
            }
            SchedulingPolicy::RoundRobin => {
                let n = self.sched.num_queues();
                let mut g = self.rr_counter % n;
                self.rr_counter += 1;
                while !eng.gmem.usable(g) {
                    g = (g + 1) % n;
                }
                match self.first_idle_stream(g, t) {
                    Some(s) => self.execute(eng, job, work, submitted, retries, g, s, t, q),
                    None => self.sched.park(
                        g,
                        Parked::Single(QueuedWork {
                            job,
                            submitted,
                            retries,
                            work,
                        }),
                    ),
                }
            }
            SchedulingPolicy::Random { .. } => {
                let usable: Vec<usize> = (0..self.sched.num_queues())
                    .filter(|&g| eng.gmem.usable(g))
                    .collect();
                let g = usable[eng.rng.gen_index(usable.len())];
                match self.first_idle_stream(g, t) {
                    Some(s) => self.execute(eng, job, work, submitted, retries, g, s, t, q),
                    None => self.sched.park(
                        g,
                        Parked::Single(QueuedWork {
                            job,
                            submitted,
                            retries,
                            work,
                        }),
                    ),
                }
            }
        }
    }

    /// Algorithm 5.2: a freed stream pulls from its own GPU's queue first,
    /// then from the fullest queue.
    pub(crate) fn on_stream_free(
        &mut self,
        eng: &mut Engine<'_>,
        gpu: usize,
        stream: usize,
        t: SimTime,
        q: &mut EventQueue<Ev>,
    ) {
        if !eng.gmem.usable(gpu) || self.stream_busy_until[gpu][stream] > t {
            // Lost device, or a superseded wake-up: the stream picked up new
            // work since this event was scheduled.
            return;
        }
        // An idle stream never waits out a batching window: if its queue is
        // dry but its batcher holds works, flush them now.
        if self.sched.queue_is_empty(gpu) && self.batchers[gpu].is_some() {
            self.flush_batcher(gpu);
        }
        let mut stolen = false;
        let work = {
            let weight_of = |j: JobId| {
                eng.sessions
                    .get(&j)
                    .map(|s| u64::from(s.weight))
                    .unwrap_or(1)
            };
            if let Some(w) = self.sched.pop(gpu, &weight_of) {
                Some(w)
            } else if self.policy.steals() {
                let victim = (0..self.sched.num_queues())
                    .max_by_key(|&i| self.sched.queue_len(i))
                    .filter(|&i| !self.sched.queue_is_empty(i));
                victim.map(|i| {
                    self.steals += 1;
                    stolen = true;
                    self.sched.pop(i, &weight_of).expect("victim non-empty")
                })
            } else {
                None
            }
        };
        if let Some(parked) = work {
            // One dequeue of a job's work may free room under its
            // queued-bytes cap: release one penned work back into the loop.
            if let Some(penned) = self.sched.try_release(parked.job()) {
                let delay = t.saturating_sub(penned.arrived);
                if let Some(session) = eng.sessions.get_mut(&parked.job()) {
                    session.park_delay += delay;
                    session.pen_hist.record(delay);
                }
                self.m_pen_delay.record(delay);
                self.m_pen_depth.set(self.sched.pen_depth_total() as u64);
                q.schedule(
                    t,
                    Ev::submit(parked.job(), penned.submitted, penned.retries, penned.work),
                );
            }
            if stolen {
                self.m_steals.inc();
                if let Some(session) = eng.sessions.get_mut(&parked.job()) {
                    session.steals += 1;
                }
                if self.tracer.enabled() {
                    self.tracer.record(
                        TraceEvent::instant(
                            gpu_pid(self.worker_id, gpu),
                            stream_tid(stream),
                            Cat::Queue,
                            "steal",
                            t,
                        )
                        .with_job(parked.job().0)
                        .with_arg("op", parked.op_label()),
                    );
                }
            }
            match parked {
                Parked::Single(qw) => self.execute(
                    eng,
                    qw.job,
                    qw.work,
                    qw.submitted,
                    qw.retries,
                    gpu,
                    stream,
                    t,
                    q,
                ),
                Parked::Fused(batch) => self.execute_fused(eng, batch, gpu, stream, t, q),
            }
        }
    }

    /// Dispatch one GWork onto (gpu, stream): the stream is occupied until
    /// the work's D2H completes. Pipeline stages are driven by events so a
    /// stage's engine reservation is made only when its stream dependency
    /// resolves — exactly how CUDA feeds its copy/compute engines. Eagerly
    /// reserving all three stages here would block later H2Ds behind
    /// not-yet-runnable D2H slots on single-copy-engine devices.
    #[allow(clippy::too_many_arguments)]
    fn execute(
        &mut self,
        eng: &mut Engine<'_>,
        job: JobId,
        work: GWork,
        submitted: SimTime,
        retries: u32,
        gpu: usize,
        stream: usize,
        t: SimTime,
        q: &mut EventQueue<Ev>,
    ) {
        let mut timing = WorkTiming {
            submitted,
            started: t,
            ..WorkTiming::default()
        };
        let session = eng.sessions.get_mut(&job).expect("session open");
        // Stage 1: H2D (GMemoryManager; skipped per-buffer on cache hits).
        let StagedInputs {
            dev_inputs,
            transient,
            pinned,
            staging,
            h2d_start,
            kernel_earliest,
            mut failure,
        } = eng
            .gmem
            .stage_inputs(&mut session.regions[gpu], gpu, job.0, &work, t, &mut timing);
        // Output allocation (GMemoryManager, automatic).
        let out_dev = if failure.is_none() {
            match eng
                .gmem
                .alloc_output(&mut session.regions[gpu], gpu, &work, t)
            {
                Ok(dev) => Some(dev),
                Err(e) => {
                    failure = Some(e);
                    None
                }
            }
        } else {
            None
        };
        if let Some(err) = failure {
            // Unwind the partial placement; the stream was never occupied.
            eng.gmem.release_staging(staging);
            let session = eng.sessions.get_mut(&job).expect("session open");
            eng.gmem.reclaim(
                &mut session.regions[gpu],
                gpu,
                dev_inputs,
                transient,
                pinned,
                None,
            );
            self.route_retry_or_fail(
                eng,
                job,
                work,
                submitted,
                retries,
                t,
                FailReason::Fatal(err),
                q,
            );
            return;
        }
        let out_dev = out_dev.expect("checked by failure branch");
        // Occupy the stream until the final stage completes.
        self.stream_busy_until[gpu][stream] = SimTime::MAX;
        let seq = self.next_flight;
        self.next_flight += 1;
        let fl = InFlight {
            seq,
            job,
            work,
            retries,
            timing,
            gpu,
            stream,
            dev_inputs,
            transient,
            pinned,
            staging,
            out_dev,
            emitted: None,
            hung: false,
        };
        // Stage-1 span: from the first copy's engine start to the last
        // copy's landing. A full cache hit issues no copies — no span.
        if let Some(start) = h2d_start {
            self.trace_stage(&fl, "h2d", start, kernel_earliest);
        }
        let id = self.in_flight.insert(fl);
        q.schedule(kernel_earliest, Ev::KernelStage(id));
    }

    /// Stage 2: the kernel launches once its inputs are device-resident.
    pub(crate) fn on_kernel_stage(
        &mut self,
        eng: &mut Engine<'_>,
        id: u64,
        t: SimTime,
        q: &mut EventQueue<Ev>,
    ) {
        let Some(mut fl) = self.in_flight.remove(id) else {
            // The flight was recovered (device loss) before this fired.
            return;
        };
        // The H2D has landed: the staging buffers go back to the pool.
        eng.gmem.release_staging(std::mem::take(&mut fl.staging));
        let kernel = eng.registry.lock().get_by_id(fl.work.kernel).cloned();
        let kernel = match kernel {
            Some(k) => k,
            None => {
                let err = ManagerError::KernelMissing {
                    name: fl.work.execute_name.to_string(),
                };
                self.recover_flight(eng, fl, t, t, FailReason::Fatal(err), q);
                return;
            }
        };
        let launched = eng.gmem.gpu_mut(fl.gpu).launch(
            t,
            &kernel,
            &fl.dev_inputs,
            &[fl.out_dev],
            &fl.work.params,
            fl.work.n_actual,
            fl.work.n_logical,
            fl.work.coalescing,
        );
        let (kres, profile) = match launched {
            Ok(v) => v,
            Err(e) => {
                // The device failed underneath the flight (defensive: loss
                // recovery normally removes flights first).
                self.recover_flight(eng, fl, t, t, FailReason::Fatal(ManagerError::Device(e)), q);
                return;
            }
        };
        fl.timing.kernel = kres.duration();
        fl.emitted = profile.emitted;
        let end = kres.end;
        self.trace_stage(&fl, "kernel", kres.start, kres.end);
        // Scripted hang: the kernel never completes; the stream stays
        // occupied until the watchdog recovers the work.
        if eng.recovery.take_hang(fl.gpu) {
            fl.hung = true;
            if self.tracer.enabled() {
                self.tracer.record(
                    TraceEvent::instant(
                        gpu_pid(self.worker_id, fl.gpu),
                        stream_tid(fl.stream),
                        Cat::Recovery,
                        "hang",
                        t,
                    )
                    .with_job(fl.job.0),
                );
            }
            let deadline = SimTime::from_nanos(
                t.as_nanos()
                    .saturating_add(eng.recovery.hang_timeout().as_nanos()),
            );
            let id = self.in_flight.insert(fl);
            q.schedule(deadline, Ev::HangCheck(id));
            return;
        }
        // Transient fault injection: scripted, or random at `failure_rate`
        // (ECC error, lost context, a preempted device). Failure is
        // detected at kernel completion; the GPUManager reclaims the
        // buffers and reschedules the work after backoff.
        let scripted = eng.recovery.take_transient(fl.gpu);
        if scripted || eng.recovery.random_transient(&mut *eng.rng) {
            {
                let session = eng.sessions.get_mut(&fl.job).expect("session open");
                eng.recovery.note_transient_fault(session);
                if self.metrics.enabled() {
                    session.recorder.push(
                        RecEvent::new(t, RecKind::TransientFault, self.worker_id as u32)
                            .on_gpu(fl.gpu),
                    );
                }
            }
            if self.tracer.enabled() {
                self.tracer.record(
                    TraceEvent::instant(
                        gpu_pid(self.worker_id, fl.gpu),
                        stream_tid(fl.stream),
                        Cat::Recovery,
                        "transient",
                        t,
                    )
                    .with_job(fl.job.0),
                );
            }
            // The stream frees at the (wasted) kernel end; the work goes
            // back through Alg. 5.1 for a fresh placement after backoff.
            self.recover_flight(eng, fl, end, end.max(t), FailReason::RetriesExhausted, q);
            return;
        }
        let id = self.in_flight.insert(fl);
        q.schedule(end, Ev::D2hStage(id));
    }

    /// Stage 3: results travel back; the stream frees at the copy's end.
    pub(crate) fn on_d2h_stage(
        &mut self,
        eng: &mut Engine<'_>,
        id: u64,
        t: SimTime,
        q: &mut EventQueue<Ev>,
    ) {
        let Some(mut fl) = self.in_flight.remove(id) else {
            // The flight was recovered (device loss) before this fired.
            return;
        };
        // Variable-output kernels transfer only the emitted fraction of the
        // declared capacity.
        let d2h_logical = match fl.emitted {
            Some(e) => {
                (fl.work.out_logical_bytes as u128 * e as u128 / fl.work.out_records.max(1) as u128)
                    as u64
            }
            None => fl.work.out_logical_bytes,
        };
        let mut out_host = eng.gmem.lease_output(fl.job.0, fl.work.out_actual_bytes);
        let rd2h =
            match eng
                .gmem
                .gpu_mut(fl.gpu)
                .copy_d2h(t, d2h_logical, fl.out_dev, &mut out_host)
            {
                Ok(r) => r,
                Err(e) => {
                    // Defensive: loss recovery removes flights before this can
                    // fire, but a failed readback still routes through retry.
                    self.recover_flight(
                        eng,
                        fl,
                        t,
                        t,
                        FailReason::Fatal(ManagerError::Device(e)),
                        q,
                    );
                    return;
                }
            };
        fl.timing.d2h = rd2h.duration();
        fl.timing.bytes_d2h = d2h_logical;
        fl.timing.completed = rd2h.end;
        self.trace_stage(&fl, "d2h", rd2h.start, rd2h.end);
        // Automatic deallocation of transient buffers (§4.2.1) and
        // unpinning of the cached inputs.
        let session = eng.sessions.get_mut(&fl.job).expect("session open");
        eng.gmem.reclaim(
            &mut session.regions[fl.gpu],
            fl.gpu,
            fl.dev_inputs,
            fl.transient,
            fl.pinned,
            Some(fl.out_dev),
        );
        self.stream_busy_until[fl.gpu][fl.stream] = rd2h.end;
        self.executed_per_gpu[fl.gpu] += 1;
        self.m_completed.inc();
        self.metrics.maybe_sample(rd2h.end);
        q.schedule(
            rd2h.end,
            Ev::StreamFree {
                gpu: fl.gpu,
                stream: fl.stream,
            },
        );
        if let Some(cm) = self.cost_model.as_mut() {
            // Score the prediction against this completion first (the error
            // gauges the model as it stood), then fold the observation in.
            let kbytes = fl.work.input_logical_bytes() + fl.work.out_logical_bytes;
            let pred = cm.h2d_time(fl.gpu, fl.timing.bytes_h2d)
                + cm.gpu_kernel_time(fl.gpu, fl.work.kernel, kbytes)
                + cm.d2h_time(fl.gpu, fl.timing.bytes_d2h);
            let obs = fl.timing.h2d + fl.timing.kernel + fl.timing.d2h;
            if !obs.is_zero() {
                let rel = crate::model::prediction_error(pred, obs);
                cm.observe_error(fl.work.kernel, rel);
                session.hybrid_err.record_nanos((rel * 10_000.0) as u64);
                self.m_model_err.set((rel * 1_000.0) as u64);
            }
            cm.observe_gpu_kernel(fl.gpu, fl.work.kernel, kbytes, fl.timing.kernel);
            cm.observe_h2d(fl.gpu, fl.timing.bytes_h2d, fl.timing.h2d);
            cm.observe_d2h(fl.gpu, fl.timing.bytes_d2h, fl.timing.d2h);
        }
        let job = fl.job;
        let done = CompletedWork {
            name: fl.work.name,
            tag: fl.work.tag,
            gpu: fl.gpu,
            stream: fl.stream,
            output: out_host,
            emitted: fl.emitted,
            timing: fl.timing,
        };
        self.deliver(eng, job, done);
    }

    /// Push a device-scoped flight-recorder event into every open session
    /// (a dead device is every tenant's problem). No-op when the metrics
    /// plane is off.
    fn record_all(&self, eng: &mut Engine<'_>, t: SimTime, kind: RecKind, gpu: usize) {
        if !self.metrics.enabled() {
            return;
        }
        let w = self.worker_id as u32;
        for session in eng.sessions.values_mut() {
            session.recorder.push(RecEvent::new(t, kind, w).on_gpu(gpu));
        }
    }

    /// A scripted fault fires.
    pub(crate) fn on_fault(
        &mut self,
        eng: &mut Engine<'_>,
        kind: FaultKind,
        t: SimTime,
        q: &mut EventQueue<Ev>,
    ) {
        eng.recovery.note_fault_injected(&mut *eng.sessions);
        let gpu = kind.gpu();
        assert!(
            gpu < eng.gmem.gpu_count(),
            "fault targets unknown device {gpu}"
        );
        self.record_all(eng, t, RecKind::FaultInjected, gpu);
        if self.tracer.enabled() {
            self.tracer.record(
                TraceEvent::instant(
                    gpu_pid(self.worker_id, gpu),
                    TID_DEVICE,
                    Cat::Recovery,
                    "fault-injected",
                    t,
                )
                .with_arg("kind", format!("{kind:?}")),
            );
        }
        match kind {
            FaultKind::GpuLost { .. } => {
                if eng.gmem.gpu(gpu).health().is_lost() {
                    return; // already gone; nothing more to lose
                }
                eng.recovery.note_gpu_lost(&mut *eng.sessions);
                self.record_all(eng, t, RecKind::DeviceLost, gpu);
                eng.gmem.gpu_mut(gpu).mark_lost(t);
                // Every open session loses its region on the dead device;
                // each tenant's ledger records its own invalidations.
                for session in eng.sessions.values_mut() {
                    let n = session.regions[gpu].invalidate_all() as u64;
                    eng.recovery.note_invalidations(session, n);
                }
                self.drain_device(eng, gpu, t, q);
            }
            FaultKind::GpuDegraded { throughput, .. } => {
                if eng.gmem.gpu(gpu).health().is_lost() {
                    return;
                }
                eng.recovery.note_gpu_degraded(&mut *eng.sessions);
                self.record_all(eng, t, RecKind::DeviceDegraded, gpu);
                eng.gmem.gpu_mut(gpu).degrade(t, throughput);
            }
            FaultKind::KernelTransient { .. } => {
                eng.recovery.arm_transient(gpu);
            }
            FaultKind::KernelHang { .. } => {
                eng.recovery.arm_hang(gpu);
            }
        }
    }

    /// Evacuate a device that just left the live fabric (lost to a fault
    /// or gracefully retired): blacklist its streams, recover its in-flight
    /// works and fused flights onto the event loop, and drain its queue —
    /// and any accumulating batch — onto the survivors.
    fn drain_device(
        &mut self,
        eng: &mut Engine<'_>,
        gpu: usize,
        t: SimTime,
        q: &mut EventQueue<Ev>,
    ) {
        // Blacklist: the device's streams never come free again.
        for s in 0..self.streams_per_gpu {
            self.stream_busy_until[gpu][s] = SimTime::MAX;
        }
        // Recover in-flight works in creation (`seq`) order so the
        // re-submit event sequence — and thus the timeline — matches the
        // pre-slab behaviour exactly (slot ids are reused; seqs are not).
        let mut ids: Vec<(u64, u64)> = self
            .in_flight
            .iter()
            .filter(|(_, fl)| fl.gpu == gpu)
            .map(|(id, fl)| (fl.seq, id))
            .collect();
        ids.sort_unstable();
        for (_, id) in ids {
            let mut fl = self.in_flight.remove(id).expect("id collected above");
            // Device buffers died with the device; nothing to
            // reclaim. Host-side staging leases survive and go back
            // to the pool. Loss is not the work's fault: it
            // re-enters scheduling immediately and keeps its retry
            // budget.
            eng.gmem.release_staging(std::mem::take(&mut fl.staging));
            let session = eng.sessions.get_mut(&fl.job).expect("session open");
            eng.recovery.note_retry(session);
            q.schedule(
                t,
                Ev::submit(fl.job, fl.timing.submitted, fl.retries, fl.work),
            );
        }
        // Fused flights on the dead device recover the same way,
        // member by member.
        let mut fids: Vec<(u64, u64)> = self
            .fused_in_flight
            .iter()
            .filter(|(_, fl)| fl.gpu == gpu)
            .map(|(id, fl)| (fl.seq, id))
            .collect();
        fids.sort_unstable();
        for (_, id) in fids {
            let mut fl = self.fused_in_flight.remove(id).expect("id collected above");
            eng.gmem.release_staging(std::mem::take(&mut fl.staging));
            let job = fl.job;
            for mb in fl.members {
                let session = eng.sessions.get_mut(&job).expect("session open");
                eng.recovery.note_retry(session);
                q.schedule(t, Ev::submit(job, mb.timing.submitted, mb.retries, mb.work));
            }
        }
        // Drain the dead device's queue — and its accumulating
        // batch — onto the survivors.
        if self.batchers[gpu].is_some() {
            self.flush_batcher(gpu);
        }
        let queued: Vec<Parked> = self.sched.drain_queue(gpu);
        for parked in queued {
            for qw in parked.into_members() {
                let session = eng.sessions.get_mut(&qw.job).expect("session open");
                eng.recovery.note_steal_on_drain(session);
                if self.metrics.enabled() {
                    session.recorder.push(
                        RecEvent::new(t, RecKind::StealOnDrain, self.worker_id as u32).on_gpu(gpu),
                    );
                }
                q.schedule(t, Ev::submit(qw.job, qw.submitted, qw.retries, qw.work));
            }
        }
    }

    /// A scripted membership event fires. A **join** appends a fresh device
    /// to the worker's complement — new stream bulk, new GWork queue, one
    /// new cache region per open session — and wakes its streams so Alg.
    /// 5.2 immediately rebalances queued backlog onto it. A **leave**
    /// gracefully retires the device: its cached blocks are invalidated,
    /// its in-flight and queued works are evacuated onto the survivors, and
    /// no fault is charged — the ledger records a membership change, not a
    /// failure.
    pub(crate) fn on_membership(
        &mut self,
        eng: &mut Engine<'_>,
        kind: MembershipKind,
        cfg: &GpuWorkerConfig,
        t: SimTime,
        q: &mut EventQueue<Ev>,
    ) {
        match kind {
            MembershipKind::Join => {
                // Joining devices cycle through the worker's model list,
                // exactly like initial construction.
                let model: GpuModel = cfg.models[eng.gmem.gpu_count() % cfg.models.len()];
                let g = eng.gmem.join_device(model);
                eng.recovery.grow_device();
                if let Some(cm) = self.cost_model.as_mut() {
                    cm.grow(model);
                }
                eng.recovery.note_member_joined(&mut *eng.sessions);
                self.record_all(eng, t, RecKind::MemberJoined, g);
                self.stream_busy_until
                    .push(vec![SimTime::ZERO; self.streams_per_gpu]);
                self.executed_per_gpu.push(0);
                self.batchers.push(None);
                self.sched.push_queue();
                for session in eng.sessions.values_mut() {
                    session.regions.push(eng.gmem.new_region_for(g));
                }
                if self.tracer.enabled() {
                    for s in 0..self.streams_per_gpu {
                        self.tracer.name_thread(
                            gpu_pid(self.worker_id, g),
                            stream_tid(s),
                            &format!("stream {s}"),
                        );
                    }
                    self.tracer.record(TraceEvent::instant(
                        gpu_pid(self.worker_id, g),
                        TID_DEVICE,
                        Cat::Recovery,
                        "join",
                        t,
                    ));
                }
                // Wake the new bulk: each fresh stream runs Alg. 5.2 and
                // pulls queued backlog onto the joined device.
                for s in 0..self.streams_per_gpu {
                    q.schedule(t, Ev::StreamFree { gpu: g, stream: s });
                }
                eng.gmem
                    .rebalance_regions(eng.sessions, cfg.scheduler.partition_cache);
            }
            MembershipKind::Leave { gpu } => {
                if gpu >= eng.gmem.gpu_count() || !eng.gmem.usable(gpu) {
                    return; // never joined, already lost, or already retired
                }
                eng.recovery.note_member_left(&mut *eng.sessions);
                self.record_all(eng, t, RecKind::MemberLeft, gpu);
                eng.gmem.retire_device(gpu, t);
                // Every open session loses its region on the retiring
                // device; graceful or not, the blocks are gone.
                for session in eng.sessions.values_mut() {
                    let n = session.regions[gpu].invalidate_all() as u64;
                    eng.recovery.note_invalidations(session, n);
                }
                self.drain_device(eng, gpu, t, q);
                eng.gmem
                    .rebalance_regions(eng.sessions, cfg.scheduler.partition_cache);
            }
        }
    }

    /// Drain-quiescence safety net for the backpressure pens: the event
    /// queue ran dry while works sat penned (their job's whole backlog
    /// executed straight off idle streams, so no dequeue ever released
    /// them). Re-inject every penned work at `t` and report whether the
    /// event loop must keep running. Penned works are therefore delayed —
    /// never dropped — even in degenerate schedules.
    pub(crate) fn flush_parked(
        &mut self,
        eng: &mut Engine<'_>,
        t: SimTime,
        q: &mut EventQueue<Ev>,
    ) -> bool {
        let flushed = self.sched.flush_pens();
        if flushed.is_empty() {
            return false;
        }
        for (job, p) in flushed {
            let delay = t.saturating_sub(p.arrived);
            if let Some(session) = eng.sessions.get_mut(&job) {
                session.park_delay += delay;
                session.pen_hist.record(delay);
            }
            self.m_pen_delay.record(delay);
            q.schedule(t, Ev::submit(job, p.submitted, p.retries, p.work));
        }
        self.m_pen_depth.set(self.sched.pen_depth_total() as u64);
        true
    }

    /// The watchdog fires `hang_timeout` after a launch; a flight still
    /// wedged in its kernel is recovered and retried.
    pub(crate) fn on_hang_check(
        &mut self,
        eng: &mut Engine<'_>,
        id: u64,
        t: SimTime,
        q: &mut EventQueue<Ev>,
    ) {
        let hung = self.in_flight.get(id).map(|fl| fl.hung).unwrap_or(false);
        if !hung {
            // Completed normally, or already recovered by device loss.
            return;
        }
        let fl = self.in_flight.remove(id).expect("checked above");
        {
            let session = eng.sessions.get_mut(&fl.job).expect("session open");
            eng.recovery.note_hang_detected(session);
            if self.metrics.enabled() {
                session.recorder.push(
                    RecEvent::new(t, RecKind::HangDetected, self.worker_id as u32).on_gpu(fl.gpu),
                );
            }
        }
        self.recover_flight(eng, fl, t, t, FailReason::RetriesExhausted, q);
    }

    /// Common tail of every in-place flight recovery: reclaim the flight's
    /// buffers and pins, free its stream at `stream_free_at`, and route the
    /// work through retry-or-fail at `retry_at`.
    fn recover_flight(
        &mut self,
        eng: &mut Engine<'_>,
        mut fl: InFlight,
        stream_free_at: SimTime,
        retry_at: SimTime,
        reason: FailReason,
        q: &mut EventQueue<Ev>,
    ) {
        eng.gmem.release_staging(std::mem::take(&mut fl.staging));
        {
            let session = eng.sessions.get_mut(&fl.job).expect("session open");
            eng.gmem.reclaim(
                &mut session.regions[fl.gpu],
                fl.gpu,
                std::mem::take(&mut fl.dev_inputs),
                std::mem::take(&mut fl.transient),
                std::mem::take(&mut fl.pinned),
                Some(fl.out_dev),
            );
        }
        self.stream_busy_until[fl.gpu][fl.stream] = stream_free_at;
        q.schedule(
            stream_free_at,
            Ev::StreamFree {
                gpu: fl.gpu,
                stream: fl.stream,
            },
        );
        self.route_retry_or_fail(
            eng,
            fl.job,
            fl.work,
            fl.timing.submitted,
            fl.retries,
            retry_at,
            reason,
            q,
        );
    }
}

/// Hybrid CPU+GPU placement (ISSUE 9): the cost-model routing, the host
/// execution path, and split-block reassembly.
impl GStreamManager {
    /// Decide where the cost model sends `work`: the best GPU route (Alg.
    /// 5.1 then picks the concrete device), the host CPU pool, or a split
    /// across both.
    fn hybrid_route(&self, eng: &Engine<'_>, job: JobId, work: &GWork, t: SimTime) -> HybridRoute {
        let cm = self.cost_model.as_ref().expect("hybrid policy active");
        let session = eng.sessions.get(&job).expect("session open");
        let kbytes = work.input_logical_bytes() + work.out_logical_bytes;
        let keys: Vec<CacheKey> = work.inputs.iter().filter_map(|b| b.cache_key).collect();
        let mut best: Option<SimTime> = None;
        for g in 0..self.stream_busy_until.len() {
            if !eng.gmem.usable(g) {
                continue;
            }
            // Cache-hit discount: resident input bytes skip the H2D.
            let resident = if keys.is_empty() {
                0
            } else {
                session.regions[g].resident_bytes(&keys)
            };
            let miss = work.input_logical_bytes().saturating_sub(resident);
            let kest = cm.gpu_kernel_time(g, work.kernel, kbytes);
            // Queue term of Eq. (1): an idle stream starts now; otherwise
            // the queued backlog shares the bulk's streams.
            let queue_wait = if self.first_idle_stream(g, t).is_some() {
                SimTime::ZERO
            } else {
                let depth = self.sched.queue_len(g) as u64 + 1;
                SimTime::from_nanos(
                    kest.as_nanos().saturating_mul(depth) / self.streams_per_gpu.max(1) as u64,
                )
            };
            let pred =
                queue_wait + cm.h2d_time(g, miss) + kest + cm.d2h_time(g, work.out_logical_bytes);
            if best.map(|b| pred < b).unwrap_or(true) {
                best = Some(pred);
            }
        }
        let Some(gpu_pred) = best else {
            return HybridRoute::Gpu; // no usable GPU: handled upstream
        };
        let cpu_pred = eng.recovery.host().backlog(t) + cm.host_kernel_time(work.kernel, kbytes);
        let splittable = self.split_eligible(eng, work).then_some(work.n_actual);
        decide(
            &self.hybrid_cfg,
            gpu_pred,
            cpu_pred,
            cm.error(work.kernel),
            splittable,
        )
    }

    /// Whether a block can be split element-wise: a kernel *declared*
    /// element-wise at registration, one output record per element, every
    /// input and the output dividing evenly by the element count, and both
    /// halves clearing the minimum split size. The registry declaration is
    /// load-bearing: shape divisibility alone cannot tell a true map from
    /// an operator whose shared side input (k-means centroids, SpMV row
    /// pointers) is coincidentally divisible — slicing those per-element
    /// would silently compute wrong results.
    fn split_eligible(&self, eng: &Engine<'_>, work: &GWork) -> bool {
        let n = work.n_actual;
        work.kernel.is_resolved()
            && n >= 2 * self.hybrid_cfg.min_split_elems.max(1)
            && work.out_records == n
            && work.out_actual_bytes.is_multiple_of(n)
            && work.out_logical_bytes.is_multiple_of(n as u64)
            && work.n_logical.is_multiple_of(n as u64)
            && work
                .inputs
                .iter()
                .all(|b| b.data.len().is_multiple_of(n) && b.logical_bytes.is_multiple_of(n as u64))
            && eng.registry.lock().is_elementwise(work.kernel)
    }

    /// Mint a synthetic child tag under `parent`'s partition: indices
    /// reclaimed from closed merges are reused first, then fresh ones
    /// descend from `u32::MAX` (see [`SPLIT_TAG_MIN`]).
    fn alloc_child_tag(&mut self, parent: (u32, u32)) -> (u32, u32) {
        let idx = match self.free_child_tags.pop() {
            Some(idx) => idx,
            None => {
                assert!(
                    self.next_child_tag >= SPLIT_TAG_MIN,
                    "split child tag space exhausted"
                );
                let idx = self.next_child_tag;
                self.next_child_tag -= 1;
                idx
            }
        };
        (parent.0, idx)
    }

    /// Build the child `GWork` covering elements `[start, start + count)`
    /// of `parent`. Child inputs are transient copies of the parent's
    /// slices — a child must not alias the parent's cache identity, or the
    /// partial block would poison later full-block cache hits.
    fn slice_work(parent: &GWork, start: usize, count: usize, tag: (u32, u32)) -> GWork {
        let n = parent.n_actual;
        let inputs = parent
            .inputs
            .iter()
            .map(|b| {
                let bpe = b.data.len() / n;
                let slice = &b.data.as_slice()[start * bpe..(start + count) * bpe];
                WorkBuf::transient(
                    Arc::new(HBuffer::from_bytes(slice)),
                    b.logical_bytes / n as u64 * count as u64,
                )
            })
            .collect();
        GWork {
            name: parent.name.clone(),
            execute_name: parent.execute_name.clone(),
            kernel: parent.kernel,
            ptx_path: parent.ptx_path.clone(),
            block_size: parent.block_size,
            grid_size: parent.grid_size,
            inputs,
            out_actual_bytes: parent.out_actual_bytes / n * count,
            out_logical_bytes: parent.out_logical_bytes / n as u64 * count as u64,
            out_records: count,
            params: parent.params.clone(),
            n_actual: count,
            n_logical: parent.n_logical / n as u64 * count as u64,
            coalescing: parent.coalescing,
            tag,
        }
    }

    /// Split `work` into a host child and a GPU child, register the merge
    /// entry, and dispatch both. Consumers only ever see the reassembled
    /// parent completion.
    #[allow(clippy::too_many_arguments)]
    fn split_and_dispatch(
        &mut self,
        eng: &mut Engine<'_>,
        job: JobId,
        work: GWork,
        submitted: SimTime,
        cpu_n: usize,
        t: SimTime,
        q: &mut EventQueue<Ev>,
    ) {
        self.m_hybrid_splits.inc();
        if let Some(session) = eng.sessions.get_mut(&job) {
            session.hybrid_splits += 1;
        }
        let n = work.n_actual;
        let out_per_elem = work.out_actual_bytes / n;
        let cpu_tag = self.alloc_child_tag(work.tag);
        let gpu_tag = self.alloc_child_tag(work.tag);
        let cpu_work = Self::slice_work(&work, 0, cpu_n, cpu_tag);
        let gpu_work = Self::slice_work(&work, cpu_n, n - cpu_n, gpu_tag);
        let merge = self.merges.insert(MergeEntry {
            name: work.name.clone(),
            tag: work.tag,
            out: vec![0u8; work.out_actual_bytes],
            remaining: 2,
            timing: WorkTiming {
                submitted,
                started: SimTime::MAX,
                ..WorkTiming::default()
            },
            gpu: CPU_FALLBACK_GPU,
            stream: 0,
            emitted: None,
            failed: None,
            retries: 0,
            child_tags: [cpu_tag.1, gpu_tag.1],
        });
        self.split_children
            .insert((job, cpu_tag), ChildRoute { merge, offset: 0 });
        self.split_children.insert(
            (job, gpu_tag),
            ChildRoute {
                merge,
                offset: cpu_n * out_per_elem,
            },
        );
        self.run_hybrid_cpu(eng, job, cpu_work, submitted, 0, t, q);
        self.dispatch(eng, job, gpu_work, submitted, 0, t, q);
    }

    /// Execute one work on the host CPU pool by cost-model choice: the same
    /// engine (and slot timelines) as the recovery fallback, but ledgered
    /// as a hybrid placement, not a fault.
    #[allow(clippy::too_many_arguments)]
    fn run_hybrid_cpu(
        &mut self,
        eng: &mut Engine<'_>,
        job: JobId,
        work: GWork,
        submitted: SimTime,
        retries: u32,
        t: SimTime,
        q: &mut EventQueue<Ev>,
    ) {
        // Predict before reserving the slot (the reservation moves the
        // backlog): execution-only, matching the GPU completion path where
        // queueing is excluded from both sides of the error.
        let kbytes = work.input_logical_bytes() + work.out_logical_bytes;
        let pred = self
            .cost_model
            .as_ref()
            .map(|cm| cm.host_kernel_time(work.kernel, kbytes));
        match eng.recovery.exec_on_host(eng.registry, &work, t) {
            Ok(he) => {
                self.m_hybrid_cpu.inc();
                let session = eng.sessions.get_mut(&job).expect("session open");
                session.hybrid_cpu += 1;
                if self.metrics.enabled() {
                    session.recorder.push(RecEvent::new(
                        t,
                        RecKind::HybridCpu,
                        self.worker_id as u32,
                    ));
                }
                if self.tracer.enabled() {
                    self.tracer.record(
                        TraceEvent::span(
                            cpu_pid(self.worker_id),
                            1 + he.slot as u32,
                            Cat::Cpu,
                            &*work.name,
                            he.start,
                            he.end,
                        )
                        .with_job(job.0)
                        .with_arg("placement", "hybrid"),
                    );
                }
                if let Some(cm) = self.cost_model.as_mut() {
                    // Score the prediction against this execution first
                    // (the error gauges the model as it stood), then fold
                    // the observation in — the same discipline as the GPU
                    // completion path, so CPU-dominated workloads feed the
                    // error EWMA that shrinks risky split shares too.
                    let obs = he.end.saturating_sub(he.start);
                    if let Some(pred) = pred {
                        if !obs.is_zero() {
                            let rel = crate::model::prediction_error(pred, obs);
                            cm.observe_error(work.kernel, rel);
                            session.hybrid_err.record_nanos((rel * 10_000.0) as u64);
                            self.m_model_err.set((rel * 1_000.0) as u64);
                        }
                    }
                    cm.observe_host_kernel(work.kernel, kbytes, obs);
                }
                let done = he.into_completed(work, submitted);
                self.deliver(eng, job, done);
            }
            Err(err) => {
                self.route_retry_or_fail(
                    eng,
                    job,
                    work,
                    submitted,
                    retries,
                    t,
                    FailReason::Fatal(err),
                    q,
                );
            }
        }
    }

    /// Route a completion to its consumer: ordinary works land in the
    /// session; split children fold into their merge entry, which emits the
    /// reassembled parent completion (or a single parent failure, if a
    /// sibling failed terminally) when the last child lands.
    fn deliver(&mut self, eng: &mut Engine<'_>, job: JobId, done: CompletedWork) {
        let Some(route) = self.split_children.remove(&(job, done.tag)) else {
            let session = eng.sessions.get_mut(&job).expect("session open");
            session.completed.push(done);
            return;
        };
        let entry = self.merges.get_mut(route.merge).expect("merge entry live");
        let bytes = done.output.as_slice();
        entry.out[route.offset..route.offset + bytes.len()].copy_from_slice(bytes);
        let mt = &mut entry.timing;
        mt.started = mt.started.min(done.timing.started);
        mt.completed = mt.completed.max(done.timing.completed);
        mt.h2d += done.timing.h2d;
        mt.kernel += done.timing.kernel;
        mt.d2h += done.timing.d2h;
        mt.cache_hits += done.timing.cache_hits;
        mt.cache_misses += done.timing.cache_misses;
        mt.bytes_h2d += done.timing.bytes_h2d;
        mt.bytes_d2h += done.timing.bytes_d2h;
        if let Some(e) = done.emitted {
            entry.emitted = Some(entry.emitted.unwrap_or(0) + e);
        }
        if done.gpu != CPU_FALLBACK_GPU {
            entry.gpu = done.gpu;
            entry.stream = done.stream;
        }
        entry.remaining -= 1;
        if entry.remaining == 0 {
            self.finish_merge(eng, job, route.merge);
        }
    }

    /// Close a merge entry once both children have landed: emit the
    /// reassembled parent completion, or — when any child failed terminally
    /// — one parent failure under the parent's original tag (the block is
    /// lost as a unit, exactly like an unsplit failure; any completed
    /// sibling output is discarded). Either way the children's reserved
    /// tag indices return to the free list.
    fn finish_merge(&mut self, eng: &mut Engine<'_>, job: JobId, merge: u64) {
        let entry = self.merges.remove(merge).expect("merge entry live");
        self.free_child_tags.extend(entry.child_tags);
        let session = eng.sessions.get_mut(&job).expect("session open");
        match entry.failed {
            Some(reason) => eng.recovery.fail_named(
                session,
                &entry.name,
                entry.tag,
                entry.retries,
                entry.timing.submitted,
                entry.timing.completed,
                reason,
            ),
            None => session.completed.push(CompletedWork {
                name: entry.name,
                tag: entry.tag,
                gpu: entry.gpu,
                stream: entry.stream,
                output: ArenaBuf::detached(HBuffer::from_bytes(&entry.out)),
                emitted: entry.emitted,
                timing: entry.timing,
            }),
        }
    }

    /// A split child failed terminally: fold the failure into its merge
    /// entry instead of surfacing the synthetic tag. The parent fails once
    /// the sibling also lands (see [`GStreamManager::finish_merge`]).
    fn fail_split_child(
        &mut self,
        eng: &mut Engine<'_>,
        job: JobId,
        tag: (u32, u32),
        retries: u32,
        now: SimTime,
        reason: FailReason,
    ) {
        let route = self
            .split_children
            .remove(&(job, tag))
            .expect("split child routed");
        let entry = self.merges.get_mut(route.merge).expect("merge entry live");
        entry.retries = entry.retries.max(retries);
        entry.timing.completed = entry.timing.completed.max(now);
        if entry.failed.is_none() {
            entry.failed = Some(reason);
        }
        entry.remaining -= 1;
        if entry.remaining == 0 {
            self.finish_merge(eng, job, route.merge);
        }
    }

    /// Record a terminal failure: split children fold into their parent's
    /// merge entry; everything else fails directly.
    #[allow(clippy::too_many_arguments)]
    fn fail_terminal(
        &mut self,
        eng: &mut Engine<'_>,
        job: JobId,
        work: GWork,
        submitted: SimTime,
        retries: u32,
        now: SimTime,
        reason: FailReason,
    ) {
        if is_split_child(work.tag) {
            self.fail_split_child(eng, job, work.tag, retries, now, reason);
        } else {
            let session = eng.sessions.get_mut(&job).expect("session open");
            eng.recovery
                .fail_work(session, work, submitted, retries, now, reason);
        }
    }

    /// [`RecoveryManager::retry_or_fail`] with split-child awareness: a
    /// child whose failure is terminal under the retry policy must fail its
    /// *parent* block — removing its route and releasing the merge entry —
    /// never strand the merge by recording a failure under a synthetic tag
    /// the consumer never submitted.
    #[allow(clippy::too_many_arguments)]
    fn route_retry_or_fail(
        &mut self,
        eng: &mut Engine<'_>,
        job: JobId,
        work: GWork,
        submitted: SimTime,
        retries: u32,
        now: SimTime,
        reason: FailReason,
        q: &mut EventQueue<Ev>,
    ) {
        if is_split_child(work.tag) {
            let spent = now.saturating_sub(submitted);
            if let Some(terminal) = eng.recovery.terminal_reason(&reason, retries, spent) {
                self.fail_split_child(eng, job, work.tag, retries, now, terminal);
                return;
            }
        }
        let session = eng.sessions.get_mut(&job).expect("session open");
        eng.recovery
            .retry_or_fail(session, job, work, submitted, retries, now, reason, q);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::GpuWorkerConfig;

    #[test]
    fn child_tags_recycle_through_free_list() {
        let mut g = GStreamManager::new(&GpuWorkerConfig::default());
        let a = g.alloc_child_tag((7, 0));
        let b = g.alloc_child_tag((7, 0));
        assert_eq!(a, (7, u32::MAX));
        assert_eq!(b, (7, u32::MAX - 1));
        assert!(is_split_child(a) && is_split_child(b));
        // finish_merge returns both indices through the free list…
        g.free_child_tags.extend([a.1, b.1]);
        // …and later splits drain it LIFO before minting fresh indices,
        // so cumulative split count never exhausts the reserved range.
        assert_eq!(g.alloc_child_tag((3, 9)), (3, b.1));
        assert_eq!(g.alloc_child_tag((3, 9)), (3, a.1));
        assert_eq!(g.next_child_tag, u32::MAX - 2);
        assert_eq!(g.alloc_child_tag((3, 9)), (3, u32::MAX - 2));
    }
}

//! `GWork`: the unit of GPU work.
//!
//! Algorithm 3.1 of the paper shows the user assembling a `GWork` inside a
//! GPU-based mapper: set the PTX path and `executeName`, the input/output
//! buffers, launch geometry (`blockSize`/`gridSize`), and cache flags, then
//! submit it to the GStreamManager. [`GWork`] is that descriptor; the
//! GStreamManager consumes it and returns a [`CompletedWork`] carrying the
//! output buffer and the per-stage [`WorkTiming`].

use gflink_gpu::KernelId;
use gflink_memory::{ArenaBuf, HBuffer};
use gflink_sim::SimTime;
use std::sync::Arc;

/// Identity of a cacheable block: the paper keys the GPU cache hash table
/// by partition ID and block ID (§4.2.2); the dataset id scopes keys across
/// datasets sharing the fabric.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CacheKey {
    /// Identity of the (G)DataSet the block belongs to.
    pub dataset: u64,
    /// Partition index.
    pub partition: u32,
    /// Block index within the partition.
    pub block: u32,
}

/// One input buffer of a `GWork`.
#[derive(Clone)]
pub struct WorkBuf {
    /// Host-side bytes (off-heap direct buffer).
    pub data: Arc<HBuffer>,
    /// Size at paper scale, used for transfer timing and cache accounting.
    pub logical_bytes: u64,
    /// `Some` ⇒ the buffer is marked `Cache` (§4.2.2) under this key.
    pub cache_key: Option<CacheKey>,
}

impl WorkBuf {
    /// A transient (uncached) input.
    pub fn transient(data: Arc<HBuffer>, logical_bytes: u64) -> Self {
        WorkBuf {
            data,
            logical_bytes,
            cache_key: None,
        }
    }

    /// A cacheable input under `key`.
    pub fn cached(data: Arc<HBuffer>, logical_bytes: u64, key: CacheKey) -> Self {
        WorkBuf {
            data,
            logical_bytes,
            cache_key: Some(key),
        }
    }
}

/// A unit of GPU work (the paper's `GWork`).
///
/// The per-block producer clones one of these per block, so every field a
/// spec shares across blocks is reference-counted (`Arc<str>` names,
/// `Arc<[f64]>` params, an interned [`KernelId`]) — cloning a `GWork` in
/// steady state allocates only the `inputs` vector.
#[derive(Clone)]
pub struct GWork {
    /// Human-readable name for reports (e.g. `"kmeans-assign"`). Shared
    /// across the blocks of an operator.
    pub name: Arc<str>,
    /// Kernel name resolved against the registry (the paper's
    /// `executeName`, e.g. `"cudaAddPoint"`).
    pub execute_name: Arc<str>,
    /// Interned dispatch id for `execute_name`. `KernelId::UNRESOLVED`
    /// works are interned once at submission; spec-built works arrive
    /// pre-resolved.
    pub kernel: KernelId,
    /// Cosmetic provenance, mirroring `sWork.ptxPath` in Algorithm 3.1.
    pub ptx_path: Arc<str>,
    /// CUDA launch geometry (informational; the cost model works from the
    /// kernel's reported profile).
    pub block_size: u32,
    /// CUDA grid size.
    pub grid_size: u32,
    /// Input buffers, in the order the kernel expects.
    pub inputs: Vec<WorkBuf>,
    /// Actual byte size of the output buffer.
    pub out_actual_bytes: usize,
    /// Logical byte size of the output at full capacity (D2H timing; scaled
    /// down when the kernel emits fewer records).
    pub out_logical_bytes: u64,
    /// Output capacity in records (denominator for `emitted` scaling).
    pub out_records: usize,
    /// Scalar kernel parameters. Shared across the blocks of an operator.
    pub params: Arc<[f64]>,
    /// Actual elements in the input block.
    pub n_actual: usize,
    /// Logical elements the block represents.
    pub n_logical: u64,
    /// Memory-coalescing factor from the block's data layout (§2.1).
    pub coalescing: f64,
    /// Caller tag: (partition, block) for reassembly.
    pub tag: (u32, u32),
}

impl GWork {
    /// Total logical input bytes (what must be resident on the device).
    pub fn input_logical_bytes(&self) -> u64 {
        self.inputs.iter().map(|b| b.logical_bytes).sum()
    }

    /// Logical bytes of inputs annotated `Cache`.
    pub fn cached_input_bytes(&self) -> u64 {
        self.inputs
            .iter()
            .filter(|b| b.cache_key.is_some())
            .map(|b| b.logical_bytes)
            .sum()
    }
}

impl std::fmt::Debug for GWork {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "GWork({} -> {}, tag {:?}, {} inputs, {} logical elems)",
            self.name,
            self.execute_name,
            self.tag,
            self.inputs.len(),
            self.n_logical
        )
    }
}

/// Per-stage timing of one executed `GWork`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WorkTiming {
    /// When the work was submitted to the GStreamManager.
    pub submitted: SimTime,
    /// When a stream picked it up.
    pub started: SimTime,
    /// Host-to-device transfer time (zero on a full cache hit).
    pub h2d: SimTime,
    /// Kernel execution time.
    pub kernel: SimTime,
    /// Device-to-host transfer time.
    pub d2h: SimTime,
    /// Completion instant.
    pub completed: SimTime,
    /// Cache hits among the inputs.
    pub cache_hits: u32,
    /// Cache misses among cacheable inputs.
    pub cache_misses: u32,
    /// Logical bytes actually copied host→device (zero on full cache hit).
    pub bytes_h2d: u64,
    /// Logical bytes copied device→host.
    pub bytes_d2h: u64,
}

impl WorkTiming {
    /// Total time on the GPU fabric (queueing included).
    pub fn total(&self) -> SimTime {
        self.completed - self.submitted
    }

    /// Time spent queued before a stream picked the work up.
    pub fn queued(&self) -> SimTime {
        self.started - self.submitted
    }
}

/// A finished `GWork`: the output buffer plus where/when it ran.
pub struct CompletedWork {
    /// The originating work's name (shared, not cloned per completion).
    pub name: Arc<str>,
    /// The originating work's tag (partition, block).
    pub tag: (u32, u32),
    /// GPU index (within the worker) that executed it.
    pub gpu: usize,
    /// Stream index (within the GPU bulk) that carried it.
    pub stream: usize,
    /// Output buffer with real results, leased from the fabric's
    /// [`gflink_memory::BufferArena`] — dropping the completion returns
    /// the buffer for the next flight to reuse.
    pub output: ArenaBuf,
    /// Valid output records when the kernel declared a data-dependent
    /// count; `None` means full capacity.
    pub emitted: Option<usize>,
    /// Per-stage timing.
    pub timing: WorkTiming,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(b: u32) -> CacheKey {
        CacheKey {
            dataset: 1,
            partition: 0,
            block: b,
        }
    }

    fn buf(_bytes: u64) -> Arc<HBuffer> {
        Arc::new(HBuffer::zeroed(16))
    }

    fn work(inputs: Vec<WorkBuf>) -> GWork {
        GWork {
            name: "w".into(),
            execute_name: "k".into(),
            kernel: KernelId::UNRESOLVED,
            ptx_path: "/k.ptx".into(),
            block_size: 256,
            grid_size: 1,
            inputs,
            out_actual_bytes: 16,
            out_logical_bytes: 1024,
            out_records: 4,
            params: Arc::from([]),
            n_actual: 4,
            n_logical: 4000,
            coalescing: 1.0,
            tag: (0, 0),
        }
    }

    #[test]
    fn byte_accounting() {
        let w = work(vec![
            WorkBuf::cached(buf(0), 1000, key(0)),
            WorkBuf::transient(buf(0), 500),
        ]);
        assert_eq!(w.input_logical_bytes(), 1500);
        assert_eq!(w.cached_input_bytes(), 1000);
    }

    #[test]
    fn timing_derived_quantities() {
        let t = WorkTiming {
            submitted: SimTime::from_micros(10),
            started: SimTime::from_micros(25),
            completed: SimTime::from_micros(100),
            ..WorkTiming::default()
        };
        assert_eq!(t.queued(), SimTime::from_micros(15));
        assert_eq!(t.total(), SimTime::from_micros(90));
    }
}

#![warn(clippy::too_many_lines)]

//! The JobScheduler layer: multi-tenant arbitration between the
//! [`GpuFabric`](crate::gdst::GpuFabric) and the
//! [`GStreamManager`](crate::gstream::GStreamManager).
//!
//! Three concerns live here, all configured by
//! [`SchedulerConfig`](crate::config::SchedulerConfig) and all off by
//! default (single-tenant behaviour stays byte-identical):
//!
//! * **Cross-job queue arbitration** — [`WorkQueue`] replaces the plain
//!   per-GPU FIFO `VecDeque` with a policy-switched queue: `Fifo` *is* the
//!   old deque, while `Wfq` runs deficit round-robin over per-job lanes so
//!   a tenant with a deep backlog cannot starve a light one (the deficit
//!   counter is denominated in input+output logical bytes, the simulator's
//!   kernel-time proxy; each rotation visit credits `quantum × weight`).
//! * **Backpressure** — once a job holds more than
//!   `max_queued_bytes` in the queues, further first-attempt submissions
//!   are parked in a per-job pen and re-injected one-per-dequeue as that
//!   job's backlog drains; the drain loop flushes any stragglers when the
//!   event queue runs dry, so parked works are delayed, never lost.
//! * **The job-handle surface** — [`JobHandle`] is the RAII face of a live
//!   job on the fabric: minted by `GpuFabric::open_job` (which enforces the
//!   `max_live_jobs` admission cap), carrying the job's fair-share weight,
//!   and releasing the job's cache regions and ledgers on `finish` or drop.
//!
//! Determinism: lanes and pens are `BTreeMap`-keyed and rotation state is
//! explicit, so arbitration depends only on (submit order, JobId), never on
//! hash iteration order.

use crate::config::SchedulerConfig;
use crate::fused::Parked;
use crate::gdst::GpuFabric;
use crate::gwork::{CompletedWork, GWork};
use crate::recovery::FailedWork;
use crate::scheduling::ArbitrationPolicy;
use crate::session::JobId;
use gflink_sim::{FaultLedger, SimTime};
use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicBool, Ordering};

/// Why `GpuFabric::open_job` refused a job.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AdmissionError {
    /// The fabric already runs its configured maximum of live jobs.
    JobLimit {
        /// Jobs currently live on the fabric.
        live: usize,
        /// The configured `max_live_jobs` cap.
        cap: usize,
    },
}

impl std::fmt::Display for AdmissionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AdmissionError::JobLimit { live, cap } => {
                write!(f, "admission refused: {live} live jobs at cap {cap}")
            }
        }
    }
}

impl std::error::Error for AdmissionError {}

/// Byte cost of a parked entry: summed input + output logical bytes over
/// its members — the same quantity the transfer/kernel models scale with,
/// so it serves as the WFQ kernel-time estimate.
pub(crate) fn parked_cost(p: &Parked) -> u64 {
    fn one(w: &GWork) -> u64 {
        let ins: u64 = w.inputs.iter().map(|b| b.logical_bytes).sum();
        ins + w.out_logical_bytes
    }
    match p {
        Parked::Single(qw) => one(&qw.work),
        Parked::Fused(b) => b.members.iter().map(|m| one(&m.work)).sum(),
    }
}

/// One GPU's parked-work queue, switched on the arbitration policy.
pub(crate) enum WorkQueue {
    /// Strict arrival order — the legacy single-tenant deque, bit for bit.
    Fifo(VecDeque<Parked>),
    /// Deficit round-robin over per-job lanes.
    Wfq(WfqQueue),
}

/// Deficit-round-robin state: per-job FIFO lanes, a rotation order, and a
/// byte deficit per lane. A lane's deficit resets when it empties (classic
/// DRR), so idle jobs cannot bank credit.
pub(crate) struct WfqQueue {
    quantum: u64,
    lanes: BTreeMap<JobId, VecDeque<Parked>>,
    deficits: BTreeMap<JobId, u64>,
    rotation: VecDeque<JobId>,
    len: usize,
}

impl WorkQueue {
    pub(crate) fn new(policy: ArbitrationPolicy) -> Self {
        match policy {
            ArbitrationPolicy::Fifo => WorkQueue::Fifo(VecDeque::new()),
            ArbitrationPolicy::WeightedFair { quantum_bytes } => WorkQueue::Wfq(WfqQueue {
                quantum: quantum_bytes.max(1),
                lanes: BTreeMap::new(),
                deficits: BTreeMap::new(),
                rotation: VecDeque::new(),
                len: 0,
            }),
        }
    }

    pub(crate) fn len(&self) -> usize {
        match self {
            WorkQueue::Fifo(q) => q.len(),
            WorkQueue::Wfq(w) => w.len,
        }
    }

    pub(crate) fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub(crate) fn push_back(&mut self, parked: Parked) {
        match self {
            WorkQueue::Fifo(q) => q.push_back(parked),
            WorkQueue::Wfq(w) => {
                let job = parked.job();
                let lane = w.lanes.entry(job).or_default();
                if lane.is_empty() && !w.rotation.contains(&job) {
                    w.rotation.push_back(job);
                }
                lane.push_back(parked);
                w.len += 1;
            }
        }
    }

    /// Pop the next entry under the arbitration policy. `weight_of` maps a
    /// job to its fair-share weight (consulted only by WFQ).
    pub(crate) fn pop_front(&mut self, weight_of: &dyn Fn(JobId) -> u64) -> Option<Parked> {
        match self {
            WorkQueue::Fifo(q) => q.pop_front(),
            WorkQueue::Wfq(w) => w.pop(weight_of),
        }
    }

    /// Drain everything (device-loss requeue). FIFO order for `Fifo`; for
    /// WFQ, lanes concatenate in JobId order — deterministic either way.
    pub(crate) fn drain_all(&mut self) -> Vec<Parked> {
        match self {
            WorkQueue::Fifo(q) => q.drain(..).collect(),
            WorkQueue::Wfq(w) => {
                let mut out = Vec::with_capacity(w.len);
                for (_, lane) in std::mem::take(&mut w.lanes) {
                    out.extend(lane);
                }
                w.deficits.clear();
                w.rotation.clear();
                w.len = 0;
                out
            }
        }
    }
}

impl WfqQueue {
    fn pop(&mut self, weight_of: &dyn Fn(JobId) -> u64) -> Option<Parked> {
        if self.len == 0 {
            return None;
        }
        // Each full rotation strictly grows every non-empty lane's deficit
        // by quantum × weight ≥ 1, so this terminates.
        loop {
            let job = *self.rotation.front().expect("len > 0 ⇒ rotation non-empty");
            let lane = self.lanes.get_mut(&job).expect("rotation lane exists");
            let head_cost = parked_cost(lane.front().expect("lanes hold no empty queues"));
            let deficit = self.deficits.entry(job).or_insert(0);
            if *deficit >= head_cost {
                *deficit -= head_cost;
                let parked = lane.pop_front().expect("head just costed");
                self.len -= 1;
                if lane.is_empty() {
                    self.lanes.remove(&job);
                    self.deficits.remove(&job);
                    self.rotation.pop_front();
                }
                return Some(parked);
            }
            *deficit = deficit.saturating_add(self.quantum.saturating_mul(weight_of(job).max(1)));
            self.rotation.rotate_left(1);
        }
    }
}

/// A first-attempt submission held back by backpressure, waiting for its
/// job's queue backlog to drain below the cap.
pub(crate) struct PennedWork {
    /// When the pen swallowed it (for park-delay accounting).
    pub(crate) arrived: SimTime,
    /// Original submit instant (preserved for queue-delay reporting).
    pub(crate) submitted: SimTime,
    pub(crate) retries: u32,
    pub(crate) work: GWork,
}

/// Per-worker multi-job scheduler state: the per-GPU [`WorkQueue`]s, the
/// per-job queued-byte accounting, and the backpressure pens.
pub(crate) struct JobScheduler {
    cfg: SchedulerConfig,
    queues: Vec<WorkQueue>,
    queued_bytes: BTreeMap<JobId, u64>,
    pens: BTreeMap<JobId, VecDeque<PennedWork>>,
}

impl JobScheduler {
    pub(crate) fn new(n_gpus: usize, cfg: SchedulerConfig) -> Self {
        JobScheduler {
            queues: (0..n_gpus)
                .map(|_| WorkQueue::new(cfg.arbitration))
                .collect(),
            queued_bytes: BTreeMap::new(),
            pens: BTreeMap::new(),
            cfg,
        }
    }

    pub(crate) fn num_queues(&self) -> usize {
        self.queues.len()
    }

    pub(crate) fn queue_len(&self, gpu: usize) -> usize {
        self.queues[gpu].len()
    }

    pub(crate) fn queue_is_empty(&self, gpu: usize) -> bool {
        self.queues[gpu].is_empty()
    }

    /// True when nothing is queued anywhere and no pen holds work.
    pub(crate) fn is_idle(&self) -> bool {
        self.queues.iter().all(WorkQueue::is_empty) && self.pens.values().all(VecDeque::is_empty)
    }

    /// Park an entry in GPU `gpu`'s queue, charging its bytes to the job.
    pub(crate) fn park(&mut self, gpu: usize, parked: Parked) {
        *self.queued_bytes.entry(parked.job()).or_insert(0) += parked_cost(&parked);
        self.queues[gpu].push_back(parked);
    }

    /// Pop from GPU `gpu`'s queue under the arbitration policy, releasing
    /// the entry's byte charge.
    pub(crate) fn pop(&mut self, gpu: usize, weight_of: &dyn Fn(JobId) -> u64) -> Option<Parked> {
        let parked = self.queues[gpu].pop_front(weight_of)?;
        self.uncharge(&parked);
        Some(parked)
    }

    /// Drain GPU `gpu`'s whole queue (device loss), releasing every charge.
    pub(crate) fn drain_queue(&mut self, gpu: usize) -> Vec<Parked> {
        let drained = self.queues[gpu].drain_all();
        for parked in &drained {
            self.uncharge(parked);
        }
        drained
    }

    fn uncharge(&mut self, parked: &Parked) {
        let cost = parked_cost(parked);
        if let Some(b) = self.queued_bytes.get_mut(&parked.job()) {
            *b = b.saturating_sub(cost);
        }
    }

    /// Whether a fresh submission of `job` should be penned instead of
    /// dispatched: backpressure is on and the job's queued bytes already
    /// meet the cap.
    pub(crate) fn should_pen(&self, job: JobId) -> bool {
        self.cfg.max_queued_bytes != u64::MAX
            && self.queued_bytes.get(&job).copied().unwrap_or(0) >= self.cfg.max_queued_bytes
    }

    pub(crate) fn pen_work(&mut self, job: JobId, penned: PennedWork) {
        self.pens.entry(job).or_default().push_back(penned);
    }

    /// Release one penned work of `job` if its backlog dropped under the
    /// cap (called per dequeue of one of the job's queued works).
    pub(crate) fn try_release(&mut self, job: JobId) -> Option<PennedWork> {
        if self.queued_bytes.get(&job).copied().unwrap_or(0) >= self.cfg.max_queued_bytes {
            return None;
        }
        let pen = self.pens.get_mut(&job)?;
        let released = pen.pop_front();
        if pen.is_empty() {
            self.pens.remove(&job);
        }
        released
    }

    /// Take every penned work (drain-loop safety net: the event queue ran
    /// dry with works still penned — e.g. the backlog executed without ever
    /// re-queueing). Jobs in id order, each pen front-to-back.
    pub(crate) fn flush_pens(&mut self) -> Vec<(JobId, PennedWork)> {
        let pens = std::mem::take(&mut self.pens);
        let mut out = Vec::new();
        for (job, pen) in pens {
            out.extend(pen.into_iter().map(|p| (job, p)));
        }
        out
    }

    /// Tear down one job's pen (its `JobHandle` dropped): whatever is
    /// still parked there is taken — and must be *accounted* by the
    /// caller, not silently leaked — along with its byte charge.
    pub(crate) fn take_pen(&mut self, job: JobId) -> Vec<PennedWork> {
        self.queued_bytes.remove(&job);
        self.pens
            .remove(&job)
            .map(|p| p.into_iter().collect())
            .unwrap_or_default()
    }

    /// Grow the scheduler for a device that joined the complement: one
    /// fresh queue under the same arbitration policy.
    pub(crate) fn push_queue(&mut self) {
        self.queues.push(WorkQueue::new(self.cfg.arbitration));
    }

    /// Works currently penned for `job` (health-snapshot accessor).
    pub(crate) fn pen_depth(&self, job: JobId) -> usize {
        self.pens.get(&job).map_or(0, VecDeque::len)
    }

    /// Works currently penned across all jobs (health-snapshot accessor).
    pub(crate) fn pen_depth_total(&self) -> usize {
        self.pens.values().map(VecDeque::len).sum()
    }

    /// Bytes `job` holds in the queues right now — its WFQ virtual-queue
    /// level against the backpressure cap (health-snapshot accessor).
    pub(crate) fn queued_bytes_of(&self, job: JobId) -> u64 {
        self.queued_bytes.get(&job).copied().unwrap_or(0)
    }
}

/// RAII handle to one live job on the fabric — the redesigned face of the
/// old `begin_job`/`end_job` + `submit_for`/`drain_job` surface.
///
/// Minted by `GpuFabric::open_job` (which enforces admission control);
/// submission and draining are scoped to the handle, and `finish` — or the
/// handle's drop, whichever comes first — tears down the job's sessions on
/// every worker, releasing exactly its cache regions and ledgers.
#[must_use = "dropping a JobHandle closes the job immediately; bind it for the job's lifetime"]
pub struct JobHandle {
    fabric: GpuFabric,
    job: JobId,
    weight: u32,
    closed: AtomicBool,
}

impl JobHandle {
    pub(crate) fn new(fabric: GpuFabric, job: JobId, weight: u32) -> Self {
        JobHandle {
            fabric,
            job,
            weight,
            closed: AtomicBool::new(false),
        }
    }

    /// The job's identity on the fabric.
    pub fn id(&self) -> JobId {
        self.job
    }

    /// The job's fair-share weight.
    pub fn weight(&self) -> u32 {
        self.weight
    }

    /// Enqueue `work` on worker `worker` as submitted at instant `at`.
    pub fn submit_to(&self, worker: usize, work: GWork, at: SimTime) {
        self.fabric
            .with_managers(|ms| ms[worker].submit_for(self.job, work, at));
    }

    /// Drain worker `worker`: runs the shared event loop until every
    /// pending work (of every live job — the hardware is shared) completed
    /// or failed, returning this job's completions.
    pub fn drain_worker(&self, worker: usize) -> Vec<CompletedWork> {
        self.fabric
            .with_managers(|ms| ms[worker].drain_job(self.job))
    }

    /// Take this job's accumulated permanent failures across all workers.
    pub fn take_failed(&self) -> Vec<FailedWork> {
        self.fabric.with_managers(|ms| {
            ms.iter_mut()
                .flat_map(|m| m.take_job_failed(self.job))
                .collect()
        })
    }

    /// A point-in-time view of this job's backpressure backlog across
    /// every worker: how many submissions sit parked in admission pens and
    /// how many bytes it has queued toward the per-job cap. Streaming
    /// drivers poll this between submissions to observe pen pressure.
    pub fn backlog(&self) -> JobBacklog {
        self.fabric.with_managers(|ms| {
            let mut b = JobBacklog::default();
            for m in ms.iter() {
                b.penned += m.gstream.sched.pen_depth(self.job);
                b.queued_bytes += m.gstream.sched.queued_bytes_of(self.job);
            }
            b
        })
    }

    /// This job's cumulative fault/recovery counters across all workers.
    pub fn faults(&self) -> FaultLedger {
        self.fabric.with_managers(|ms| {
            ms.iter().fold(FaultLedger::default(), |acc, m| {
                acc.merge(&m.job_faults(self.job))
            })
        })
    }

    /// Close the job: release its cache regions, retire its statistics and
    /// ledgers on every worker, and free its admission slot. Idempotent —
    /// the drop impl calls this too.
    pub fn finish(&self) {
        if !self.closed.swap(true, Ordering::SeqCst) {
            self.fabric.close_job(self.job);
        }
    }
}

/// A job's fabric-wide backpressure backlog at one instant (see
/// [`JobHandle::backlog`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct JobBacklog {
    /// Submissions parked in backpressure pens across all workers.
    pub penned: usize,
    /// Bytes queued toward the per-job admission cap across all workers.
    pub queued_bytes: u64,
}

impl Drop for JobHandle {
    fn drop(&mut self) {
        self.finish();
    }
}

impl std::fmt::Debug for JobHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "JobHandle({}, weight {}, closed {})",
            self.job,
            self.weight,
            self.closed.load(Ordering::SeqCst)
        )
    }
}

#![warn(missing_docs)]

//! # gflink-core
//!
//! GFlink itself: the in-memory computing architecture on heterogeneous
//! CPU–GPU clusters from the paper. This crate layers the GPU side onto the
//! baseline engine in `gflink-flink`:
//!
//! * [`GWork`] — the unit of GPU work the paper's programmers build in
//!   GPU-based mappers/reducers (§3.5.3): named kernel, input/output
//!   buffers, launch geometry, cache annotations.
//! * [`GpuManager`] — the per-worker GPUManager (§3.4): a slim coordinator
//!   over the [`gmemory::GMemoryManager`] (automatic device allocation +
//!   the GPU cache scheme of §4.2), the [`gstream::GStreamManager`] (§5:
//!   producer/consumer decoupling, stream bulks, per-GPU FIFO GWork
//!   queues, three-stage H2D/K/D2H pipelining, and the adaptive
//!   locality-aware scheduling of Algorithms 5.1/5.2), and the
//!   [`recovery::RecoveryManager`] (fault plans, retry/backoff, CPU
//!   fallback, ledgers) — with one [`JobSession`] of per-job state (cache
//!   regions, completions, failures, ledger deltas) per open [`JobId`].
//! * [`GflinkEnv`] / [`GDataSet`] — the programming framework (§3.5): a
//!   GPU-based DataSet built on [`GRecord`] (the GStruct binding), with
//!   `gpu_map_partition`-style operators that split partitions into blocks
//!   and drive them through the GPU fabric.
//! * [`commpath`] — the JVM→GPU communication-strategy comparison: GStruct
//!   zero-copy vs. the serialize/copy path of prior systems (§4.1).
//! * [`model`] — the analytical model of §6.3/6.4 (Eqs. 1–4).

pub mod cache;
pub mod checkpoint;
pub mod commpath;
pub mod config;
pub(crate) mod costmodel;
mod elastic;
pub mod fused;
pub mod gdst;
pub mod gmemory;
pub mod gstream;
pub mod gwork;
pub mod jobsched;
pub mod manager;
pub mod model;
mod observe;
pub mod recovery;
pub mod scheduling;
pub mod session;
pub mod stream;

pub use cache::{CachePolicy, GpuCache};
pub use checkpoint::{
    CacheManifestEntry, CheckpointManager, CheckpointToken, JobSnapshot, OpenPane,
    RestoredSnapshot, SnapshotBlock, StreamState,
};
pub use config::{BatchConfig, CheckpointConfig, HybridConfig, SchedulerConfig, TransferConfig};
pub use gdst::{
    ExtraInput, FabricConfig, GDataSet, GRecord, GflinkEnv, GpuFabric, GpuMapSpec, GpuReduceCosts,
    OutMode, SpecError,
};
pub use gwork::{CacheKey, CompletedWork, GWork, WorkBuf, WorkTiming};
pub use jobsched::{AdmissionError, JobBacklog, JobHandle};
pub use manager::{
    CpuFallback, FailReason, FailedWork, GpuManager, GpuWorkerConfig, ManagerError,
    CPU_FALLBACK_GPU,
};
pub use scheduling::{ArbitrationPolicy, SchedulingPolicy};
pub use session::{JobId, JobSession};
pub use stream::{
    output_digest, watermark_digest, AggOp, AggResult, AggSpec, CpuMapPipeline, DataStream,
    KeyedStream, LostBatch, MapPipeline, Session, Sliding, StreamEnv, StreamError, StreamReport,
    StreamSource, Tumbling, WatermarkStamp, WatermarkStrategy, WindowAssigner, WindowOutput,
    WindowPipeline, WindowSpan, WindowedRun, WindowedStream,
};
#[allow(deprecated)]
pub use stream::{run_cpu_stream, run_gpu_stream};

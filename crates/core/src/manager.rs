//! The per-worker GPUManager: GMemoryManager + GStreamManager.
//!
//! This is the execution model of §5 implemented as an event-driven loop
//! over simulated time:
//!
//! * Flink tasks are **producers**: they submit [`GWork`] with a timestamp.
//! * CUDA streams are **consumers**: each GPU contributes a *bulk* of
//!   streams; a stream carries one GWork at a time through the three-stage
//!   H2D → Kernel → D2H pipeline. Overlap is physical: stages reserve the
//!   device's copy/kernel engine timelines, so concurrent streams pipeline
//!   exactly as far as the hardware allows (one copy engine = half duplex).
//! * [`GWork` scheduling][SchedulingPolicy] follows Algorithm 5.1: prefer
//!   the GPU whose cache already holds the most input bytes; fall back to
//!   the bulk with the most idle streams; if no stream is idle, park the
//!   work in a per-GPU FIFO queue (GWork Pool).
//! * When a stream finishes, it **steals** per Algorithm 5.2: its own GPU's
//!   queue first, then the longest queue.
//! * The GMemoryManager half allocates/frees device buffers automatically
//!   and runs the GPU cache of §4.2.2.

use crate::cache::{CachePolicy, GpuCache};
use crate::gwork::{CompletedWork, GWork, WorkTiming};
use crate::scheduling::SchedulingPolicy;
use gflink_gpu::{DevBufId, GpuModel, KernelRegistry, VirtualGpu};
use gflink_memory::HBuffer;
use gflink_sim::{EventQueue, SimRng, SimTime};
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::sync::Arc;

/// Configuration of one worker's GPU complement.
#[derive(Clone, Debug)]
pub struct GpuWorkerConfig {
    /// GPU models installed in the worker (the paper's standard worker has
    /// two Tesla C2050s).
    pub models: Vec<GpuModel>,
    /// CUDA streams per GPU (the stream bulk size).
    pub streams_per_gpu: usize,
    /// GPU cache region capacity per GPU, logical bytes (§4.2.2: a
    /// user-defined parameter).
    pub cache_capacity: u64,
    /// Cache policy.
    pub cache_policy: CachePolicy,
    /// GWork scheduling policy.
    pub scheduling: SchedulingPolicy,
    /// Injected per-launch kernel failure probability (fault-tolerance
    /// testing; §1 motivates building on Flink precisely because it
    /// "uses replication and error detection to schedule around
    /// failures"). A failed launch is detected at kernel completion, its
    /// buffers are reclaimed, and the GWork is resubmitted — on a
    /// *different* GPU when the worker has more than one.
    pub failure_rate: f64,
    /// Maximum resubmissions per GWork before the job is declared failed.
    pub max_retries: u32,
}

impl Default for GpuWorkerConfig {
    fn default() -> Self {
        GpuWorkerConfig {
            models: vec![GpuModel::TeslaC2050, GpuModel::TeslaC2050],
            streams_per_gpu: 4,
            cache_capacity: 2_000_000_000, // 2 GB of the C2050's 3 GB
            cache_policy: CachePolicy::Fifo,
            scheduling: SchedulingPolicy::LocalityAware,
            failure_rate: 0.0,
            max_retries: 3,
        }
    }
}

enum Ev {
    Submit(Box<(SimTime, GWork)>),
    StreamFree { gpu: usize, stream: usize },
    /// A work's H2D stage finished; launch its kernel.
    KernelStage(u64),
    /// A work's kernel finished; start its D2H transfer.
    D2hStage(u64),
}

/// Per-work state carried between pipeline-stage events.
struct InFlight {
    work: GWork,
    retries: u32,
    timing: WorkTiming,
    gpu: usize,
    stream: usize,
    dev_inputs: Vec<DevBufId>,
    transient: Vec<DevBufId>,
    /// Cache keys pinned for the duration of this work.
    pinned: Vec<crate::gwork::CacheKey>,
    out_dev: DevBufId,
    emitted: Option<usize>,
}

/// The per-worker GPU manager.
pub struct GpuManager {
    worker_id: usize,
    cfg: GpuWorkerConfig,
    gpus: Vec<VirtualGpu>,
    caches: Vec<GpuCache>,
    /// `stream_busy_until[g][s]`
    stream_busy_until: Vec<Vec<SimTime>>,
    /// Per-GPU FIFO GWork queues (the GWork Pool), with original submit
    /// instants (for queueing-delay reporting) and retry counts.
    queues: Vec<VecDeque<(SimTime, u32, GWork)>>,
    registry: Arc<Mutex<KernelRegistry>>,
    pending: Vec<(SimTime, GWork)>,
    completed: Vec<CompletedWork>,
    rr_counter: usize,
    rng: SimRng,
    steals: u64,
    failures: u64,
    executed_per_gpu: Vec<u64>,
    in_flight: std::collections::HashMap<u64, InFlight>,
    next_flight: u64,
}

impl GpuManager {
    /// Build the manager for worker `worker_id`.
    pub fn new(
        worker_id: usize,
        cfg: GpuWorkerConfig,
        registry: Arc<Mutex<KernelRegistry>>,
    ) -> Self {
        assert!(!cfg.models.is_empty(), "worker needs at least one GPU");
        assert!(cfg.streams_per_gpu >= 1);
        let gpus: Vec<VirtualGpu> = cfg
            .models
            .iter()
            .enumerate()
            .map(|(i, &m)| VirtualGpu::new(i, m))
            .collect();
        let caches = gpus
            .iter()
            .map(|g| {
                let cap = cfg.cache_capacity.min(g.spec().dev_mem_bytes * 3 / 4);
                GpuCache::new(cap, cfg.cache_policy)
            })
            .collect();
        let n = gpus.len();
        GpuManager {
            worker_id,
            stream_busy_until: vec![vec![SimTime::ZERO; cfg.streams_per_gpu]; n],
            queues: (0..n).map(|_| VecDeque::new()).collect(),
            caches,
            gpus,
            registry,
            pending: Vec::new(),
            completed: Vec::new(),
            rr_counter: 0,
            rng: SimRng::new(0x5EED_0000 + worker_id as u64),
            steals: 0,
            failures: 0,
            executed_per_gpu: vec![0; n],
            in_flight: std::collections::HashMap::new(),
            next_flight: 1,
            cfg,
        }
    }

    /// Worker index this manager belongs to.
    pub fn worker_id(&self) -> usize {
        self.worker_id
    }

    /// Number of GPUs managed.
    pub fn gpu_count(&self) -> usize {
        self.gpus.len()
    }

    /// Immutable access to a GPU (tests, reporting).
    pub fn gpu(&self, i: usize) -> &VirtualGpu {
        &self.gpus[i]
    }

    /// Immutable access to a GPU's cache.
    pub fn cache(&self, i: usize) -> &GpuCache {
        &self.caches[i]
    }

    /// Works executed per GPU (load-balance reporting).
    pub fn executed_per_gpu(&self) -> &[u64] {
        &self.executed_per_gpu
    }

    /// Number of Alg. 5.2 steals from foreign queues.
    pub fn steals(&self) -> u64 {
        self.steals
    }

    /// Number of injected kernel failures recovered from.
    pub fn failures(&self) -> u64 {
        self.failures
    }

    /// Enqueue `work` as submitted at simulated instant `at`. The work runs
    /// when [`GpuManager::drain`] is called.
    pub fn submit(&mut self, work: GWork, at: SimTime) {
        self.pending.push((at, work));
    }

    /// Release every cached device buffer (job end, §4.2.2) and reset cache
    /// state. Engine timelines are preserved.
    pub fn release_job_caches(&mut self) {
        for (g, cache) in self.caches.iter_mut().enumerate() {
            for dev in cache.clear() {
                let _ = self.gpus[g].dmem.release(dev);
            }
        }
    }

    /// Run the event loop until all submitted work has completed; returns
    /// the completions (unordered across GPUs, deterministic overall).
    pub fn drain(&mut self) -> Vec<CompletedWork> {
        let mut q: EventQueue<Ev> = EventQueue::new();
        // Wake every stream at its current busy-until so queued work left
        // from interleaved submissions is always picked up.
        for g in 0..self.gpus.len() {
            for s in 0..self.cfg.streams_per_gpu {
                q.schedule(self.stream_busy_until[g][s], Ev::StreamFree { gpu: g, stream: s });
            }
        }
        let mut pending = std::mem::take(&mut self.pending);
        pending.sort_by_key(|(t, _)| *t);
        for (t, w) in pending {
            q.schedule(t, Ev::Submit(Box::new((t, w))));
        }
        while let Some((t, ev)) = q.pop() {
            match ev {
                Ev::Submit(b) => {
                    let (submitted, w) = *b;
                    self.on_submit(w, submitted, t, &mut q);
                }
                Ev::StreamFree { gpu, stream } => self.on_stream_free(gpu, stream, t, &mut q),
                Ev::KernelStage(id) => self.on_kernel_stage(id, t, &mut q),
                Ev::D2hStage(id) => self.on_d2h_stage(id, t, &mut q),
            }
        }
        debug_assert!(self.queues.iter().all(VecDeque::is_empty), "work left queued");
        debug_assert!(self.in_flight.is_empty(), "work stuck in flight");
        std::mem::take(&mut self.completed)
    }

    /// Alg. 5.1, step 1: the GPU whose cache holds the most of this work's
    /// cached input bytes (`GID`), or `None` when nothing is resident.
    fn locality_gpu(&self, work: &GWork) -> Option<usize> {
        let keys: Vec<_> = work.inputs.iter().filter_map(|b| b.cache_key).collect();
        if keys.is_empty() {
            return None;
        }
        let mut best: Option<(usize, u64)> = None;
        for (g, cache) in self.caches.iter().enumerate() {
            let bytes = cache.resident_bytes(&keys);
            if bytes > 0 && best.map(|(_, b)| bytes > b).unwrap_or(true) {
                best = Some((g, bytes));
            }
        }
        best.map(|(g, _)| g)
    }

    fn idle_streams(&self, gpu: usize, t: SimTime) -> usize {
        self.stream_busy_until[gpu]
            .iter()
            .filter(|&&b| b <= t)
            .count()
    }

    fn first_idle_stream(&self, gpu: usize, t: SimTime) -> Option<usize> {
        self.stream_busy_until[gpu].iter().position(|&b| b <= t)
    }

    /// The bulk with the most idle streams (ties → lowest GPU index).
    fn most_idle_bulk(&self, t: SimTime) -> Option<(usize, usize)> {
        let (mut best_g, mut best_idle) = (0usize, 0usize);
        for g in 0..self.gpus.len() {
            let idle = self.idle_streams(g, t);
            if idle > best_idle {
                best_g = g;
                best_idle = idle;
            }
        }
        if best_idle == 0 {
            None
        } else {
            Some((best_g, self.first_idle_stream(best_g, t).unwrap()))
        }
    }

    fn on_submit(&mut self, work: GWork, submitted: SimTime, t: SimTime, q: &mut EventQueue<Ev>) {
        self.dispatch(work, submitted, 0, t, q)
    }

    fn dispatch(
        &mut self,
        work: GWork,
        submitted: SimTime,
        retries: u32,
        t: SimTime,
        q: &mut EventQueue<Ev>,
    ) {
        match self.cfg.scheduling {
            SchedulingPolicy::LocalityAware | SchedulingPolicy::LocalityNoSteal => {
                let gid = self.locality_gpu(&work);
                // Algorithm 5.1.
                let placed = match gid {
                    Some(g) => match self.first_idle_stream(g, t) {
                        Some(s) => Some((g, s)),
                        None => self.most_idle_bulk(t),
                    },
                    None => self.most_idle_bulk(t),
                };
                match placed {
                    Some((g, s)) => self.execute(work, submitted, retries, g, s, t, q),
                    None => {
                        // Lines 11–18: park in GID's queue, or the least
                        // loaded queue when GID is null.
                        let qi = match gid {
                            Some(g) => g,
                            None => self
                                .queues
                                .iter()
                                .enumerate()
                                .min_by_key(|(_, queue)| queue.len())
                                .map(|(i, _)| i)
                                .unwrap(),
                        };
                        self.queues[qi].push_back((submitted, retries, work));
                    }
                }
            }
            SchedulingPolicy::RoundRobin => {
                let g = self.rr_counter % self.gpus.len();
                self.rr_counter += 1;
                match self.first_idle_stream(g, t) {
                    Some(s) => self.execute(work, submitted, retries, g, s, t, q),
                    None => self.queues[g].push_back((submitted, retries, work)),
                }
            }
            SchedulingPolicy::Random { .. } => {
                let g = self.rng.gen_index(self.gpus.len());
                match self.first_idle_stream(g, t) {
                    Some(s) => self.execute(work, submitted, retries, g, s, t, q),
                    None => self.queues[g].push_back((submitted, retries, work)),
                }
            }
        }
    }

    /// Algorithm 5.2: a freed stream pulls from its own GPU's queue first,
    /// then from the fullest queue.
    fn on_stream_free(&mut self, gpu: usize, stream: usize, t: SimTime, q: &mut EventQueue<Ev>) {
        if self.stream_busy_until[gpu][stream] > t {
            // Superseded wake-up: the stream picked up new work since this
            // event was scheduled.
            return;
        }
        let work = if let Some(w) = self.queues[gpu].pop_front() {
            Some(w)
        } else if self.cfg.scheduling.steals() {
            let victim = self
                .queues
                .iter()
                .enumerate()
                .max_by_key(|(_, queue)| queue.len())
                .map(|(i, _)| i)
                .filter(|&i| !self.queues[i].is_empty());
            victim.map(|i| {
                self.steals += 1;
                self.queues[i].pop_front().unwrap()
            })
        } else {
            None
        };
        if let Some((submitted, retries, w)) = work {
            self.execute(w, submitted, retries, gpu, stream, t, q);
        }
    }

    /// Allocate device memory, evicting cache entries under pressure.
    fn alloc_with_pressure(&mut self, gpu: usize, logical: u64, actual: usize) -> DevBufId {
        loop {
            match self.gpus[gpu].dmem.alloc(logical, actual) {
                Ok(id) => return id,
                Err(_) => match self.caches[gpu].evict_one() {
                    Some(dev) => {
                        let _ = self.gpus[gpu].dmem.release(dev);
                    }
                    None => panic!(
                        "device {gpu} out of memory: requested {logical} logical bytes \
                         with {} free and an empty cache",
                        self.gpus[gpu].dmem.free_bytes()
                    ),
                },
            }
        }
    }

    /// Run one GWork on (gpu, stream) starting no earlier than `t`:
    /// the three-stage pipeline of §5 over the device's engine timelines.
    #[allow(clippy::too_many_arguments)]
    /// Dispatch one GWork onto (gpu, stream): the stream is occupied until
    /// the work's D2H completes. Pipeline stages are driven by events so a
    /// stage's engine reservation is made only when its stream dependency
    /// resolves — exactly how CUDA feeds its copy/compute engines. Eagerly
    /// reserving all three stages here would block later H2Ds behind
    /// not-yet-runnable D2H slots on single-copy-engine devices.
    #[allow(clippy::too_many_arguments)]
    fn execute(
        &mut self,
        work: GWork,
        submitted: SimTime,
        retries: u32,
        gpu: usize,
        stream: usize,
        t: SimTime,
        q: &mut EventQueue<Ev>,
    ) {
        let mut timing = WorkTiming {
            submitted,
            started: t,
            ..WorkTiming::default()
        };
        let mut dev_inputs = Vec::with_capacity(work.inputs.len());
        let mut transient: Vec<DevBufId> = Vec::new();
        let mut pinned: Vec<crate::gwork::CacheKey> = Vec::new();
        let mut kernel_earliest = t;
        // Stage 1: H2D (skipped per-buffer on cache hits). Every cached
        // buffer this work references is pinned until its D2H completes so
        // concurrent works cannot evict a live kernel argument.
        for inbuf in &work.inputs {
            let cached_dev = inbuf.cache_key.and_then(|key| self.caches[gpu].lookup(key));
            match cached_dev {
                Some(dev) => {
                    timing.cache_hits += 1;
                    self.caches[gpu].pin(inbuf.cache_key.unwrap());
                    pinned.push(inbuf.cache_key.unwrap());
                    dev_inputs.push(dev);
                }
                None => {
                    let dev =
                        self.alloc_with_pressure(gpu, inbuf.logical_bytes, inbuf.data.len());
                    let r = self.gpus[gpu]
                        .copy_h2d(t, inbuf.logical_bytes, &inbuf.data, dev)
                        .expect("h2d failed");
                    timing.h2d += r.duration();
                    kernel_earliest = kernel_earliest.max(r.end);
                    let mut keep = false;
                    if let Some(key) = inbuf.cache_key {
                        timing.cache_misses += 1;
                        let (evicted, may_insert) =
                            self.caches[gpu].make_room(inbuf.logical_bytes);
                        for d in evicted {
                            let _ = self.gpus[gpu].dmem.release(d);
                        }
                        if may_insert {
                            if let Some(old) =
                                self.caches[gpu].insert(key, dev, inbuf.logical_bytes)
                            {
                                let _ = self.gpus[gpu].dmem.release(old);
                            }
                            self.caches[gpu].pin(key);
                            pinned.push(key);
                            keep = true;
                        }
                    }
                    if !keep {
                        transient.push(dev);
                    }
                    dev_inputs.push(dev);
                }
            }
        }
        // Output allocation (GMemoryManager, automatic).
        let out_dev = self.alloc_with_pressure(gpu, work.out_logical_bytes, work.out_actual_bytes);
        // Occupy the stream until the final stage completes.
        self.stream_busy_until[gpu][stream] = SimTime::MAX;
        let id = self.next_flight;
        self.next_flight += 1;
        self.in_flight.insert(
            id,
            InFlight {
                work,
                retries,
                timing,
                gpu,
                stream,
                dev_inputs,
                transient,
                pinned,
                out_dev,
                emitted: None,
            },
        );
        q.schedule(kernel_earliest, Ev::KernelStage(id));
    }

    /// Stage 2: the kernel launches once its inputs are device-resident.
    fn on_kernel_stage(&mut self, id: u64, t: SimTime, q: &mut EventQueue<Ev>) {
        let mut fl = self.in_flight.remove(&id).expect("unknown in-flight work");
        let kernel = self
            .registry
            .lock()
            .get(&fl.work.execute_name)
            .unwrap_or_else(|| panic!("kernel {:?} not registered", fl.work.execute_name));
        let (kres, profile) = self.gpus[fl.gpu]
            .launch(
                t,
                &kernel,
                &fl.dev_inputs,
                &[fl.out_dev],
                &fl.work.params,
                fl.work.n_actual,
                fl.work.n_logical,
                fl.work.coalescing,
            )
            .expect("kernel launch failed");
        fl.timing.kernel = kres.duration();
        fl.emitted = profile.emitted;
        let end = kres.end;
        // Fault injection: the launch may fail (ECC error, lost context, a
        // preempted device). Failure is detected at kernel completion; the
        // GPUManager reclaims the buffers and reschedules the work.
        if self.cfg.failure_rate > 0.0 && self.rng.next_f64() < self.cfg.failure_rate {
            assert!(
                fl.retries < self.cfg.max_retries,
                "GWork {:?} exceeded {} retries",
                fl.work.tag,
                self.cfg.max_retries
            );
            self.failures += 1;
            for d in fl.transient {
                let _ = self.gpus[fl.gpu].dmem.release(d);
            }
            for key in fl.pinned {
                self.caches[fl.gpu].unpin(key);
            }
            let _ = self.gpus[fl.gpu].dmem.release(fl.out_dev);
            // The stream frees at the (wasted) kernel end; the work goes
            // back through Alg. 5.1 for a fresh placement.
            self.stream_busy_until[fl.gpu][fl.stream] = end;
            q.schedule(
                end,
                Ev::StreamFree {
                    gpu: fl.gpu,
                    stream: fl.stream,
                },
            );
            let (work, submitted, retries) = (fl.work, fl.timing.submitted, fl.retries + 1);
            self.dispatch(work, submitted, retries, end.max(t), q);
            return;
        }
        self.in_flight.insert(id, fl);
        q.schedule(end, Ev::D2hStage(id));
    }

    /// Stage 3: results travel back; the stream frees at the copy's end.
    fn on_d2h_stage(&mut self, id: u64, t: SimTime, q: &mut EventQueue<Ev>) {
        let mut fl = self.in_flight.remove(&id).expect("unknown in-flight work");
        // Variable-output kernels transfer only the emitted fraction of the
        // declared capacity.
        let d2h_logical = match fl.emitted {
            Some(e) => {
                (fl.work.out_logical_bytes as u128 * e as u128
                    / fl.work.out_records.max(1) as u128) as u64
            }
            None => fl.work.out_logical_bytes,
        };
        let mut out_host = HBuffer::zeroed(fl.work.out_actual_bytes);
        let rd2h = self.gpus[fl.gpu]
            .copy_d2h(t, d2h_logical, fl.out_dev, &mut out_host)
            .expect("d2h failed");
        fl.timing.d2h = rd2h.duration();
        fl.timing.completed = rd2h.end;
        // Automatic deallocation of transient buffers (§4.2.1) and
        // unpinning of the cached inputs.
        for d in fl.transient {
            let _ = self.gpus[fl.gpu].dmem.release(d);
        }
        for key in fl.pinned {
            self.caches[fl.gpu].unpin(key);
        }
        let _ = self.gpus[fl.gpu].dmem.release(fl.out_dev);
        self.stream_busy_until[fl.gpu][fl.stream] = rd2h.end;
        self.executed_per_gpu[fl.gpu] += 1;
        q.schedule(
            rd2h.end,
            Ev::StreamFree {
                gpu: fl.gpu,
                stream: fl.stream,
            },
        );
        self.completed.push(CompletedWork {
            name: fl.work.name,
            tag: fl.work.tag,
            gpu: fl.gpu,
            stream: fl.stream,
            output: out_host,
            emitted: fl.emitted,
            timing: fl.timing,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gwork::{CacheKey, WorkBuf};
    use gflink_gpu::{KernelArgs, KernelProfile};

    fn registry_with_scale2() -> Arc<Mutex<KernelRegistry>> {
        let mut reg = KernelRegistry::new();
        reg.register("scale2", |args: &mut KernelArgs<'_>| {
            let n = args.n_actual;
            let input = args.inputs[0];
            let out = &mut args.outputs[0];
            for i in 0..n {
                out.write_f32(i * 4, input.read_f32(i * 4) * 2.0);
            }
            KernelProfile::new(args.n_logical as f64, args.n_logical as f64 * 8.0)
        });
        Arc::new(Mutex::new(reg))
    }

    fn mk_work(tag: (u32, u32), logical: u64, cache: bool) -> GWork {
        let data = Arc::new(HBuffer::from_f32s(&[1.0, 2.0, 3.0, 4.0]));
        let key = CacheKey {
            dataset: 1,
            partition: tag.0,
            block: tag.1,
        };
        GWork {
            name: format!("w{}-{}", tag.0, tag.1),
            execute_name: "scale2".into(),
            ptx_path: "/scale2.ptx".into(),
            block_size: 256,
            grid_size: 1,
            inputs: vec![if cache {
                WorkBuf::cached(data, logical, key)
            } else {
                WorkBuf::transient(data, logical)
            }],
            out_actual_bytes: 16,
            out_logical_bytes: logical,
            out_records: 4,
            params: vec![],
            n_actual: 4,
            n_logical: logical / 4,
            coalescing: 1.0,
            tag,
        }
    }

    fn manager(models: Vec<GpuModel>, policy: SchedulingPolicy) -> GpuManager {
        GpuManager::new(
            0,
            GpuWorkerConfig {
                models,
                scheduling: policy,
                ..GpuWorkerConfig::default()
            },
            registry_with_scale2(),
        )
    }

    #[test]
    fn executes_work_and_returns_real_results() {
        let mut m = manager(vec![GpuModel::TeslaC2050], SchedulingPolicy::LocalityAware);
        m.submit(mk_work((0, 0), 1 << 20, false), SimTime::ZERO);
        let done = m.drain();
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].output.to_f32_vec(), vec![2.0, 4.0, 6.0, 8.0]);
        assert!(done[0].timing.h2d > SimTime::ZERO);
        assert!(done[0].timing.kernel > SimTime::ZERO);
        assert!(done[0].timing.d2h > SimTime::ZERO);
        assert!(done[0].timing.completed > SimTime::ZERO);
    }

    #[test]
    fn cache_hit_skips_h2d_on_second_round() {
        let mut m = manager(vec![GpuModel::TeslaC2050], SchedulingPolicy::LocalityAware);
        m.submit(mk_work((0, 0), 1 << 24, true), SimTime::ZERO);
        let first = m.drain().pop().unwrap();
        assert_eq!(first.timing.cache_misses, 1);
        assert!(first.timing.h2d > SimTime::ZERO);
        // Same block again (next iteration).
        m.submit(mk_work((0, 0), 1 << 24, true), first.timing.completed);
        let second = m.drain().pop().unwrap();
        assert_eq!(second.timing.cache_hits, 1);
        assert_eq!(second.timing.h2d, SimTime::ZERO);
        assert!(second.timing.total() < first.timing.total());
    }

    #[test]
    fn locality_routes_to_caching_gpu() {
        let mut m = manager(
            vec![GpuModel::TeslaC2050, GpuModel::TeslaC2050],
            SchedulingPolicy::LocalityAware,
        );
        // Warm block (0,0) somewhere.
        m.submit(mk_work((0, 0), 1 << 20, true), SimTime::ZERO);
        let first = m.drain().pop().unwrap();
        let warm_gpu = first.gpu;
        // Resubmit 8 times; all should land on the warm GPU.
        for i in 0..8 {
            m.submit(
                mk_work((0, 0), 1 << 20, true),
                first.timing.completed + SimTime::from_millis(i * 10),
            );
        }
        for done in m.drain() {
            assert_eq!(done.gpu, warm_gpu, "locality-aware must follow the cache");
            assert_eq!(done.timing.cache_hits, 1);
        }
    }

    #[test]
    fn round_robin_alternates_gpus() {
        let mut m = manager(
            vec![GpuModel::TeslaC2050, GpuModel::TeslaC2050],
            SchedulingPolicy::RoundRobin,
        );
        for i in 0..6 {
            m.submit(mk_work((0, i), 1 << 20, false), SimTime::ZERO);
        }
        m.drain();
        assert_eq!(m.executed_per_gpu(), &[3, 3]);
    }

    #[test]
    fn heterogeneous_bulk_load_balances_by_stealing() {
        // One slow C2050 and one fast P100; with far more works than
        // streams, the P100 must end up executing more of them.
        let mut m = manager(
            vec![GpuModel::TeslaC2050, GpuModel::TeslaP100],
            SchedulingPolicy::LocalityAware,
        );
        for i in 0..64 {
            m.submit(mk_work((0, i), 1 << 26, false), SimTime::ZERO);
        }
        let done = m.drain();
        assert_eq!(done.len(), 64);
        let per = m.executed_per_gpu();
        assert!(
            per[1] > per[0],
            "P100 should execute more work than C2050, got {per:?}"
        );
    }

    #[test]
    fn queue_drains_even_when_all_streams_start_busy() {
        let mut m = manager(vec![GpuModel::TeslaC2050], SchedulingPolicy::LocalityAware);
        // 4 streams; 12 works at the same instant: 8 must queue and still run.
        for i in 0..12 {
            m.submit(mk_work((0, i), 1 << 24, false), SimTime::ZERO);
        }
        let done = m.drain();
        assert_eq!(done.len(), 12);
        // Works queue, so some have nonzero queueing delay.
        assert!(done.iter().any(|d| d.timing.queued() > SimTime::ZERO));
    }

    #[test]
    fn no_steal_policy_keeps_foreign_queues() {
        let mut with = manager(
            vec![GpuModel::TeslaC2050, GpuModel::TeslaP100],
            SchedulingPolicy::LocalityAware,
        );
        let mut without = manager(
            vec![GpuModel::TeslaC2050, GpuModel::TeslaP100],
            SchedulingPolicy::LocalityNoSteal,
        );
        for m in [&mut with, &mut without] {
            for i in 0..64 {
                m.submit(mk_work((0, i), 1 << 26, false), SimTime::ZERO);
            }
            m.drain();
        }
        assert!(with.steals() > 0);
        assert_eq!(without.steals(), 0);
    }

    #[test]
    fn release_job_caches_frees_device_memory() {
        let mut m = manager(vec![GpuModel::TeslaC2050], SchedulingPolicy::LocalityAware);
        m.submit(mk_work((0, 0), 1 << 24, true), SimTime::ZERO);
        m.drain();
        assert!(m.cache(0).used() > 0);
        let used_before = m.gpu(0).dmem.used();
        assert!(used_before > 0);
        m.release_job_caches();
        assert_eq!(m.cache(0).used(), 0);
        assert_eq!(m.gpu(0).dmem.used(), 0);
    }

    #[test]
    fn injected_failures_recover_with_correct_results() {
        let mut m = GpuManager::new(
            0,
            GpuWorkerConfig {
                models: vec![GpuModel::TeslaC2050, GpuModel::TeslaC2050],
                failure_rate: 0.3,
                max_retries: 20,
                ..GpuWorkerConfig::default()
            },
            registry_with_scale2(),
        );
        for i in 0..32 {
            m.submit(mk_work((0, i), 1 << 20, false), SimTime::ZERO);
        }
        let done = m.drain();
        assert_eq!(done.len(), 32, "every work must complete despite failures");
        assert!(m.failures() > 0, "failure injection should have fired");
        for d in &done {
            assert_eq!(d.output.to_f32_vec(), vec![2.0, 4.0, 6.0, 8.0]);
        }
        // No leaked device memory or pinned cache entries.
        for g in 0..m.gpu_count() {
            assert_eq!(m.gpu(g).dmem.used(), 0);
        }
    }

    #[test]
    fn failures_cost_time_but_not_correctness() {
        let run = |rate: f64| {
            let mut m = GpuManager::new(
                0,
                GpuWorkerConfig {
                    models: vec![GpuModel::TeslaC2050],
                    failure_rate: rate,
                    max_retries: 50,
                    ..GpuWorkerConfig::default()
                },
                registry_with_scale2(),
            );
            for i in 0..16 {
                m.submit(mk_work((0, i), 1 << 24, false), SimTime::ZERO);
            }
            m.drain()
                .iter()
                .map(|d| d.timing.completed)
                .max()
                .unwrap()
        };
        assert!(run(0.4) > run(0.0), "failures must lengthen the makespan");
    }

    #[test]
    fn drain_is_deterministic() {
        let run = || {
            let mut m = manager(
                vec![GpuModel::TeslaC2050, GpuModel::TeslaK20],
                SchedulingPolicy::LocalityAware,
            );
            for i in 0..32 {
                m.submit(mk_work((i % 4, i), 1 << 22, i % 2 == 0), SimTime::ZERO);
            }
            let mut done = m.drain();
            done.sort_by_key(|d| d.tag);
            done.iter()
                .map(|d| (d.tag, d.gpu, d.timing.completed))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }
}

#![warn(clippy::too_many_lines)]

//! The per-worker GPUManager: a slim coordinator over the paper's two
//! halves plus the recovery layer.
//!
//! * [`GMemoryManager`](crate::gmemory::GMemoryManager) (§4.2) owns the
//!   devices and everything that touches device memory: allocation with
//!   cache-eviction pressure, H2D staging, reclaim, and per-job cache
//!   regions.
//! * [`GStreamManager`](crate::gstream::GStreamManager) (§5) owns the
//!   stream bulks, the per-GPU GWork queues, and the in-flight table, and
//!   drives Algorithm 5.1/5.2 scheduling plus the three-stage
//!   H2D → Kernel → D2H pipeline.
//! * [`RecoveryManager`](crate::recovery::RecoveryManager) owns the fault
//!   plan, retry/backoff routing, the CPU fallback path, and the
//!   double-entry fault ledgers (see DESIGN.md, "Fault model & recovery").
//!
//! This type wires them together around a [`JobSession`] per job: all
//! mutable per-job state — cache regions, pending submissions,
//! completions, failures, ledger deltas — lives in the session, created at
//! [`GpuManager::begin_job`] and torn down at [`GpuManager::end_job`], so
//! concurrent tenants on the same devices cannot perturb each other's
//! digests or ledgers. Callers normally reach this surface through the
//! RAII [`JobHandle`](crate::jobsched::JobHandle) minted by
//! `GpuFabric::open_job`, which scopes submit/drain/teardown to one job.
//!
//! Determinism: the drain event loop is shared across sessions (the
//! hardware is shared), pending works enter it stably sorted by submit
//! instant, and the worker's single RNG is only consulted in the exact
//! places the monolithic manager consulted it — a single job's timeline is
//! byte-identical to the pre-decomposition implementation.

use crate::gmemory::GMemoryManager;
use crate::gstream::{Engine, Ev, GStreamManager};
use crate::gwork::{CompletedWork, GWork};
use crate::recovery::RecoveryManager;
use crate::session::{JobId, JobSession};
use gflink_gpu::{KernelRegistry, VirtualGpu};
use gflink_memory::{BufferArena, PinnedStats};
use gflink_sim::{EventQueue, FaultLedger, FaultPlan, SimRng, SimTime, Tracer};
use parking_lot::Mutex;
use std::{collections::BTreeMap, sync::Arc};

pub use crate::config::{BatchConfig, GpuWorkerConfig, TransferConfig};
pub use crate::recovery::{CpuFallback, FailReason, FailedWork, ManagerError, CPU_FALLBACK_GPU};

/// The per-worker GPU manager: coordinator over the memory, stream, and
/// recovery layers, with one [`JobSession`] per open job.
pub struct GpuManager {
    pub(crate) worker_id: usize,
    pub(crate) cfg: Arc<GpuWorkerConfig>,
    pub(crate) gmem: GMemoryManager,
    pub(crate) gstream: GStreamManager,
    pub(crate) recovery: RecoveryManager,
    pub(crate) sessions: BTreeMap<JobId, JobSession>,
    pub(crate) registry: Arc<Mutex<KernelRegistry>>,
    pub(crate) rng: SimRng,
}

impl GpuManager {
    /// Build the manager for worker `worker_id`.
    pub fn new(
        worker_id: usize,
        cfg: impl Into<Arc<GpuWorkerConfig>>,
        registry: Arc<Mutex<KernelRegistry>>,
    ) -> Self {
        let cfg = cfg.into();
        assert!(!cfg.models.is_empty(), "worker needs at least one GPU");
        assert!(cfg.streams_per_gpu >= 1);
        let gmem = GMemoryManager::new(
            &cfg.models,
            cfg.cache_capacity,
            cfg.cache_policy,
            &cfg.transfer,
        );
        let gstream = GStreamManager::new(&cfg);
        let recovery = RecoveryManager::new(&cfg);
        GpuManager {
            worker_id,
            gmem,
            gstream,
            recovery,
            sessions: BTreeMap::new(),
            registry,
            rng: SimRng::new(0x5EED_0000 + worker_id as u64),
            cfg,
        }
    }

    /// Worker index this manager belongs to.
    pub fn worker_id(&self) -> usize {
        self.worker_id
    }

    /// This worker's configuration.
    pub fn config(&self) -> &GpuWorkerConfig {
        &self.cfg
    }

    /// Number of GPUs managed.
    pub fn gpu_count(&self) -> usize {
        self.gmem.gpu_count()
    }

    /// Immutable access to a GPU (tests, reporting).
    pub fn gpu(&self, i: usize) -> &VirtualGpu {
        self.gmem.gpu(i)
    }

    /// Whole-worker (hits, misses, evictions) on GPU `gpu`: the sum over
    /// every open session's region plus regions retired by finished jobs.
    pub fn cache_stats(&self, gpu: usize) -> (u64, u64, u64) {
        let seed = self.gmem.retired_stats(gpu);
        self.sessions.values().fold(seed, |(h, m, e), s| {
            let (sh, sm, se) = s.regions[gpu].stats();
            (h + sh, m + sm, e + se)
        })
    }

    /// The shared host result-buffer arena (hit-rate and teardown stats).
    pub fn result_arena(&self) -> &BufferArena {
        self.gmem.result_arena()
    }

    /// Works executed per GPU (load-balance reporting). CPU-fallback works
    /// are not attributed to any GPU.
    pub fn executed_per_gpu(&self) -> &[u64] {
        self.gstream.executed_per_gpu()
    }

    /// Number of Alg. 5.2 steals from foreign queues.
    pub fn steals(&self) -> u64 {
        self.gstream.steals()
    }

    /// Whole-worker pinned staging-pool accounting (hits, misses, bytes).
    pub fn pinned_stats(&self) -> PinnedStats {
        self.gmem.pinned_stats()
    }

    /// One job's pinned staging-pool accounting.
    pub fn job_pinned_stats(&self, job: JobId) -> PinnedStats {
        self.gmem.pinned_owner_stats(job.0)
    }

    /// (registered, peak registered, peak concurrently leased) bytes of the
    /// pinned staging pool.
    pub fn pinned_pool_bytes(&self) -> (u64, u64, u64) {
        self.gmem.pinned_pool_bytes()
    }

    /// Fused transfer batches dispatched.
    pub fn fused_batches(&self) -> u64 {
        self.gstream.fused_batches()
    }

    /// Works that travelled inside fused transfer batches.
    pub fn fused_works(&self) -> u64 {
        self.gstream.fused_works()
    }

    /// Per-call transfer overhead (α) saved by fusing copies.
    pub fn alpha_saved(&self) -> SimTime {
        self.gstream.alpha_saved()
    }

    /// Number of injected kernel failures recovered from (random
    /// `failure_rate` plus scripted transients).
    pub fn failures(&self) -> u64 {
        self.recovery.failures()
    }

    /// Script faults against this manager's devices. Events at instants the
    /// simulation has already passed fire immediately at the next drain.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.recovery.set_fault_plan(plan);
    }

    /// Attach a tracer to all three layers: one trace process per GPU (and
    /// one for the CPU-fallback pool), one thread per stream/engine.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.gmem.set_tracer(tracer.clone(), self.worker_id);
        self.gstream.set_tracer(tracer.clone(), self.worker_id);
        self.recovery.set_tracer(tracer, self.worker_id);
    }

    /// Worker-global cumulative fault/recovery counters.
    pub fn fault_ledger(&self) -> FaultLedger {
        self.recovery.ledger()
    }

    /// Number of devices still usable (healthy or degraded).
    pub fn usable_gpus(&self) -> usize {
        self.gmem.usable_gpus()
    }

    // --- sessions -------------------------------------------------------

    /// Open a session for `job` (§4.2.2: fresh cache regions); idempotent.
    pub fn begin_job(&mut self, job: JobId) {
        self.begin_job_weighted(job, 1);
    }

    /// [`begin_job`](Self::begin_job) with a weight; a live session keeps
    /// its original weight (re-opens are no-ops).
    pub fn begin_job_weighted(&mut self, job: JobId, weight: u32) {
        if !self.sessions.contains_key(&job) {
            let session = JobSession::new(self.gmem.new_regions(), weight);
            self.sessions.insert(job, session);
            self.rebalance_regions();
        }
    }

    /// Close `job`'s session: account works still parked in its pen or
    /// pending queue (abandoned, not leaked — see the fault ledger's
    /// `parked_abandoned`), release its cached device buffers, retire its
    /// cache statistics into the worker totals, and (under cache
    /// partitioning) return its budget share to the survivors.
    pub fn end_job(&mut self, job: JobId) {
        if let Some(mut session) = self.sessions.remove(&job) {
            self.abandon_leftovers(job, &mut session);
            self.gmem.release_regions(&mut session.regions);
            self.gmem.retire_regions(&session.regions);
            self.gmem.retire_pool_owner(job.0);
            self.rebalance_regions();
        }
    }

    /// Delegate to the memory layer's weight-proportional region rebalance
    /// ([`GMemoryManager::rebalance_regions`]).
    fn rebalance_regions(&mut self) {
        self.gmem
            .rebalance_regions(&mut self.sessions, self.cfg.scheduler.partition_cache);
    }

    /// The open session for `job`, if any.
    pub fn session(&self, job: JobId) -> Option<&JobSession> {
        self.sessions.get(&job)
    }

    /// `job`'s cumulative fault/recovery counters (zero if unknown).
    pub fn job_faults(&self, job: JobId) -> FaultLedger {
        self.sessions
            .get(&job)
            .map(JobSession::faults)
            .unwrap_or_default()
    }

    /// `job`'s fault/recovery counters accrued since this was last called
    /// (zero if unknown). This is the per-drain delta the job report sums.
    pub fn take_job_fault_delta(&mut self, job: JobId) -> FaultLedger {
        self.sessions
            .get_mut(&job)
            .map(|s| s.ledger.take_delta())
            .unwrap_or_default()
    }

    /// Take ownership of `job`'s accumulated failures (clears the list).
    pub fn take_job_failed(&mut self, job: JobId) -> Vec<FailedWork> {
        self.sessions
            .get_mut(&job)
            .map(|s| std::mem::take(&mut s.failed))
            .unwrap_or_default()
    }

    // --- submission & draining ------------------------------------------

    /// Enqueue `work` for `job` as submitted at simulated instant `at`,
    /// opening the session if needed. A work whose tag is covered by a
    /// restored checkpoint ([`GpuManager::restore_job`]) is satisfied from
    /// the snapshot instead of executing: it is counted as restored, and
    /// the tag is consumed so it can cover at most one submission — the
    /// exactly-once dedup across the restore boundary. Otherwise the work
    /// runs at the next drain.
    pub fn submit_for(&mut self, job: JobId, work: GWork, at: SimTime) {
        self.begin_job(job);
        let session = self.sessions.get_mut(&job).expect("session just ensured");
        if session.covered.remove(&work.tag) {
            self.recovery.note_work_restored(session);
            return;
        }
        session.pending.push((at, work));
    }

    /// Release every session's cached device buffers (sessions stay open).
    /// Engine timelines are preserved.
    pub fn release_job_caches(&mut self) {
        for session in self.sessions.values_mut() {
            self.gmem.release_regions(&mut session.regions);
        }
    }

    /// Run the shared event loop until all submitted work — from *every*
    /// session; the hardware is shared — has completed or failed; returns
    /// `job`'s completions (unordered across GPUs, deterministic overall).
    /// Completions of other sessions are stored and returned by their own
    /// drains. Works abandoned after retry exhaustion are recorded on
    /// their session ([`GpuManager::take_job_failed`]), not returned here.
    pub fn drain_job(&mut self, job: JobId) -> Vec<CompletedWork> {
        assert!(self.sessions.contains_key(&job), "unknown {job}");
        let mut q: EventQueue<Ev> = EventQueue::new();
        // Wake every live stream at its current busy-until so queued work
        // left from interleaved submissions is always picked up.
        for g in 0..self.gmem.gpu_count() {
            if !self.gmem.usable(g) {
                continue;
            }
            for s in 0..self.gstream.streams_per_gpu() {
                q.schedule(
                    self.gstream.busy_until(g, s),
                    Ev::StreamFree { gpu: g, stream: s },
                );
            }
        }
        // Scripted faults and membership events enter the queue once each.
        for e in self.recovery.take_unscheduled_faults() {
            q.schedule(e.at, Ev::Fault(e.kind));
        }
        for e in self.recovery.take_unscheduled_membership() {
            q.schedule(e.at, Ev::Membership(e.kind));
        }
        // Every session's pending works enter the loop, stably ordered by
        // submit instant (ties: session id, then submission order).
        let mut pending: Vec<(JobId, SimTime, GWork)> = Vec::new();
        for (&j, s) in self.sessions.iter_mut() {
            pending.extend(s.pending.drain(..).map(|(t, w)| (j, t, w)));
        }
        pending.sort_by_key(|&(_, t, _)| t);
        for (job, t, work) in pending {
            q.schedule(t, Ev::submit(job, t, 0, work));
        }
        let mut eng = Engine {
            gmem: &mut self.gmem,
            recovery: &mut self.recovery,
            sessions: &mut self.sessions,
            registry: &self.registry,
            rng: &mut self.rng,
        };
        // Outer loop: works still penned when the queue runs dry (the
        // backpressure safety net) are re-injected and drained again.
        let mut last_t = SimTime::ZERO;
        loop {
            while let Some((t, ev)) = q.pop() {
                last_t = t;
                match ev {
                    Ev::Submit {
                        job,
                        submitted,
                        retries,
                        work,
                    } => {
                        self.gstream
                            .dispatch(&mut eng, job, work, submitted, retries, t, &mut q);
                    }
                    Ev::StreamFree { gpu, stream } => self
                        .gstream
                        .on_stream_free(&mut eng, gpu, stream, t, &mut q),
                    Ev::KernelStage(id) => self.gstream.on_kernel_stage(&mut eng, id, t, &mut q),
                    Ev::D2hStage(id) => self.gstream.on_d2h_stage(&mut eng, id, t, &mut q),
                    Ev::Fault(kind) => self.gstream.on_fault(&mut eng, kind, t, &mut q),
                    Ev::HangCheck(id) => self.gstream.on_hang_check(&mut eng, id, t, &mut q),
                    Ev::FlushBatch { gpu, epoch } => {
                        self.gstream.on_flush_batch(gpu, epoch, t, &mut q)
                    }
                    Ev::FusedKernelStage(id) => {
                        self.gstream.on_fused_kernel_stage(&mut eng, id, t, &mut q)
                    }
                    Ev::FusedD2hStage(id) => {
                        self.gstream.on_fused_d2h_stage(&mut eng, id, t, &mut q)
                    }
                    Ev::FusedHangCheck(id) => {
                        self.gstream.on_fused_hang_check(&mut eng, id, t, &mut q)
                    }
                    Ev::Membership(kind) => self
                        .gstream
                        .on_membership(&mut eng, kind, &self.cfg, t, &mut q),
                }
            }
            if !self.gstream.flush_parked(&mut eng, last_t, &mut q) {
                break;
            }
        }
        debug_assert!(self.gstream.is_idle(), "work left queued or in flight");
        let session = self.sessions.get_mut(&job).expect("checked above");
        std::mem::take(&mut session.completed)
    }
}

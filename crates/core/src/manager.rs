//! The per-worker GPUManager: GMemoryManager + GStreamManager.
//!
//! This is the execution model of §5 implemented as an event-driven loop
//! over simulated time:
//!
//! * Flink tasks are **producers**: they submit [`GWork`] with a timestamp.
//! * CUDA streams are **consumers**: each GPU contributes a *bulk* of
//!   streams; a stream carries one GWork at a time through the three-stage
//!   H2D → Kernel → D2H pipeline. Overlap is physical: stages reserve the
//!   device's copy/kernel engine timelines, so concurrent streams pipeline
//!   exactly as far as the hardware allows (one copy engine = half duplex).
//! * [`GWork` scheduling][SchedulingPolicy] follows Algorithm 5.1: prefer
//!   the GPU whose cache already holds the most input bytes; fall back to
//!   the bulk with the most idle streams; if no stream is idle, park the
//!   work in a per-GPU FIFO queue (GWork Pool).
//! * When a stream finishes, it **steals** per Algorithm 5.2: its own GPU's
//!   queue first, then the longest queue.
//! * The GMemoryManager half allocates/frees device buffers automatically
//!   and runs the GPU cache of §4.2.2.
//!
//! # Fault model & recovery
//!
//! A [`FaultPlan`] (see `gflink_sim::faults`) scripts device loss,
//! degradation, transient kernel faults and kernel hangs against the
//! simulated clock. The manager reacts (see DESIGN.md, "Fault model &
//! recovery"):
//!
//! * **Device loss** blacklists the GPU (its streams go permanently busy,
//!   all scheduling paths skip it), invalidates its cache, and re-dispatches
//!   its queued and in-flight works onto the survivors.
//! * **Transient faults** and **hangs** send the work back through
//!   Algorithm 5.1 after an exponential [`RetryPolicy`] backoff; hangs are
//!   detected by a per-GWork watchdog event at `hang_timeout` after launch.
//! * **Retry exhaustion** produces a structured [`FailedWork`] instead of a
//!   panic; completions and failures partition the submitted works exactly.
//! * With **every GPU lost**, works degrade to a modeled CPU execution path
//!   (kernels really run on the host; a roofline [`ComputeCost`] plus a
//!   slot pool models the time) rather than aborting the job.
//!
//! Every fault and recovery action is tallied in a [`FaultLedger`] that the
//! `gflink-flink` layer surfaces on the job report.

use crate::cache::{CachePolicy, GpuCache};
use crate::gwork::{CompletedWork, GWork, WorkTiming};
use crate::scheduling::SchedulingPolicy;
use gflink_gpu::{
    DevBufId, DeviceError, DmemError, GpuModel, KernelArgs, KernelRegistry, VirtualGpu,
};
use gflink_memory::HBuffer;
use gflink_sim::{
    ComputeCost, EventQueue, FaultKind, FaultLedger, FaultPlan, MultiTimeline, RetryPolicy, SimRng,
    SimTime,
};
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::sync::Arc;

/// `CompletedWork::gpu` marker for works executed on the host CPU because
/// no usable GPU remained.
pub const CPU_FALLBACK_GPU: usize = usize::MAX;

/// An error inside the GPU manager's execution paths.
#[derive(Clone, Debug, PartialEq)]
pub enum ManagerError {
    /// A work's buffers cannot fit on the device even after evicting the
    /// entire (unpinned) cache.
    OutOfMemory {
        /// Device that ran out.
        gpu: usize,
        /// Logical bytes the allocation wanted.
        requested: u64,
        /// Logical bytes that were free.
        free: u64,
    },
    /// The work names a kernel the registry does not know.
    KernelMissing {
        /// The unresolved `executeName`.
        name: String,
    },
    /// A device operation failed underneath the manager.
    Device(DeviceError),
}

impl std::fmt::Display for ManagerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ManagerError::OutOfMemory {
                gpu,
                requested,
                free,
            } => write!(
                f,
                "device {gpu} out of memory: requested {requested} logical bytes with {free} free \
                 and an empty cache"
            ),
            ManagerError::KernelMissing { name } => write!(f, "kernel {name:?} not registered"),
            ManagerError::Device(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ManagerError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ManagerError::Device(e) => Some(e),
            _ => None,
        }
    }
}

impl From<DeviceError> for ManagerError {
    fn from(e: DeviceError) -> Self {
        ManagerError::Device(e)
    }
}

/// Why a [`FailedWork`] was abandoned.
#[derive(Clone, Debug, PartialEq)]
pub enum FailReason {
    /// The retry budget ([`RetryPolicy::max_retries`]) ran out.
    RetriesExhausted,
    /// The retry deadline ([`RetryPolicy::deadline`]) passed.
    DeadlineExceeded,
    /// Every GPU is lost and CPU fallback is disabled.
    NoUsableDevice,
    /// A non-retryable error (e.g. an unregistered kernel).
    Fatal(ManagerError),
}

/// A `GWork` the manager gave up on: the structured counterpart of
/// [`CompletedWork`]. Completions and failures partition the submitted
/// works exactly — nothing is silently dropped.
#[derive(Clone, Debug)]
pub struct FailedWork {
    /// The originating work's name.
    pub name: String,
    /// The originating work's tag (partition, block).
    pub tag: (u32, u32),
    /// How many times the work was retried before being abandoned.
    pub retries: u32,
    /// Why it was abandoned.
    pub reason: FailReason,
    /// When the work was first submitted.
    pub submitted: SimTime,
    /// When the manager gave up. Failure instants participate in makespan
    /// accounting the same way completion instants do.
    pub failed_at: SimTime,
}

/// CPU execution path used when no usable GPU remains.
#[derive(Clone, Debug)]
pub struct CpuFallback {
    /// Whether the fallback is allowed. When `false`, losing every GPU
    /// fails the remaining works with [`FailReason::NoUsableDevice`].
    pub enabled: bool,
    /// Concurrent host execution slots (task-slot pool).
    pub slots: usize,
    /// Roofline cost model for host kernel execution.
    pub cost: ComputeCost,
}

impl Default for CpuFallback {
    fn default() -> Self {
        CpuFallback {
            enabled: true,
            slots: 8,
            // A conservative host: ~50 GFLOP/s, ~20 GB/s sustained — roughly
            // 20× slower than the C2050 the paper's workers carry.
            cost: ComputeCost::new(SimTime::from_micros(5), 50e9, 20e9),
        }
    }
}

/// Configuration of one worker's GPU complement.
#[derive(Clone, Debug)]
pub struct GpuWorkerConfig {
    /// GPU models installed in the worker (the paper's standard worker has
    /// two Tesla C2050s).
    pub models: Vec<GpuModel>,
    /// CUDA streams per GPU (the stream bulk size).
    pub streams_per_gpu: usize,
    /// GPU cache region capacity per GPU, logical bytes (§4.2.2: a
    /// user-defined parameter).
    pub cache_capacity: u64,
    /// Cache policy.
    pub cache_policy: CachePolicy,
    /// GWork scheduling policy.
    pub scheduling: SchedulingPolicy,
    /// Injected per-launch kernel failure probability (fault-tolerance
    /// testing; §1 motivates building on Flink precisely because it
    /// "uses replication and error detection to schedule around
    /// failures"). A failed launch is detected at kernel completion, its
    /// buffers are reclaimed, and the GWork is resubmitted — on a
    /// *different* GPU when the worker has more than one.
    pub failure_rate: f64,
    /// Retry policy for faulted, hung, or resource-starved works:
    /// exponential backoff, a retry budget and an optional deadline.
    pub retry: RetryPolicy,
    /// Watchdog timeout: a kernel flagged as hung is recovered this long
    /// after its launch. Must be finite for hang faults to be recoverable.
    pub hang_timeout: SimTime,
    /// The CPU execution path used once every GPU is lost.
    pub cpu_fallback: CpuFallback,
}

impl Default for GpuWorkerConfig {
    fn default() -> Self {
        GpuWorkerConfig {
            models: vec![GpuModel::TeslaC2050, GpuModel::TeslaC2050],
            streams_per_gpu: 4,
            cache_capacity: 2_000_000_000, // 2 GB of the C2050's 3 GB
            cache_policy: CachePolicy::Fifo,
            scheduling: SchedulingPolicy::LocalityAware,
            failure_rate: 0.0,
            retry: RetryPolicy::default(),
            hang_timeout: SimTime::from_secs(10),
            cpu_fallback: CpuFallback::default(),
        }
    }
}

enum Ev {
    /// (original submit instant, retry count, work).
    Submit(Box<(SimTime, u32, GWork)>),
    StreamFree {
        gpu: usize,
        stream: usize,
    },
    /// A work's H2D stage finished; launch its kernel.
    KernelStage(u64),
    /// A work's kernel finished; start its D2H transfer.
    D2hStage(u64),
    /// A scripted fault fires.
    Fault(FaultKind),
    /// Watchdog: check whether flight `id` is still wedged in its kernel.
    HangCheck(u64),
}

/// Per-work state carried between pipeline-stage events.
struct InFlight {
    work: GWork,
    retries: u32,
    timing: WorkTiming,
    gpu: usize,
    stream: usize,
    dev_inputs: Vec<DevBufId>,
    transient: Vec<DevBufId>,
    /// Cache keys pinned for the duration of this work.
    pinned: Vec<crate::gwork::CacheKey>,
    out_dev: DevBufId,
    emitted: Option<usize>,
    /// An injected hang wedged this flight's kernel; only the watchdog
    /// recovers it.
    hung: bool,
}

/// The per-worker GPU manager.
pub struct GpuManager {
    worker_id: usize,
    cfg: GpuWorkerConfig,
    gpus: Vec<VirtualGpu>,
    caches: Vec<GpuCache>,
    /// `stream_busy_until[g][s]`
    stream_busy_until: Vec<Vec<SimTime>>,
    /// Per-GPU FIFO GWork queues (the GWork Pool), with original submit
    /// instants (for queueing-delay reporting) and retry counts.
    queues: Vec<VecDeque<(SimTime, u32, GWork)>>,
    registry: Arc<Mutex<KernelRegistry>>,
    pending: Vec<(SimTime, GWork)>,
    completed: Vec<CompletedWork>,
    failed: Vec<FailedWork>,
    rr_counter: usize,
    rng: SimRng,
    steals: u64,
    failures: u64,
    executed_per_gpu: Vec<u64>,
    in_flight: std::collections::HashMap<u64, InFlight>,
    next_flight: u64,
    fault_plan: FaultPlan,
    /// Index of the first `fault_plan` event not yet scheduled into a drain.
    fault_cursor: usize,
    /// Scripted transient faults armed per GPU (consumed by next launches).
    pending_transient: Vec<u32>,
    /// Scripted hangs armed per GPU (consumed by next launches).
    pending_hang: Vec<u32>,
    ledger: FaultLedger,
    cpu_slots: MultiTimeline,
}

impl GpuManager {
    /// Build the manager for worker `worker_id`.
    pub fn new(
        worker_id: usize,
        cfg: GpuWorkerConfig,
        registry: Arc<Mutex<KernelRegistry>>,
    ) -> Self {
        assert!(!cfg.models.is_empty(), "worker needs at least one GPU");
        assert!(cfg.streams_per_gpu >= 1);
        let gpus: Vec<VirtualGpu> = cfg
            .models
            .iter()
            .enumerate()
            .map(|(i, &m)| VirtualGpu::new(i, m))
            .collect();
        let caches = gpus
            .iter()
            .map(|g| {
                let cap = cfg.cache_capacity.min(g.spec().dev_mem_bytes * 3 / 4);
                GpuCache::new(cap, cfg.cache_policy)
            })
            .collect();
        let n = gpus.len();
        GpuManager {
            worker_id,
            stream_busy_until: vec![vec![SimTime::ZERO; cfg.streams_per_gpu]; n],
            queues: (0..n).map(|_| VecDeque::new()).collect(),
            caches,
            gpus,
            registry,
            pending: Vec::new(),
            completed: Vec::new(),
            failed: Vec::new(),
            rr_counter: 0,
            rng: SimRng::new(0x5EED_0000 + worker_id as u64),
            steals: 0,
            failures: 0,
            executed_per_gpu: vec![0; n],
            in_flight: std::collections::HashMap::new(),
            next_flight: 1,
            fault_plan: FaultPlan::new(),
            fault_cursor: 0,
            pending_transient: vec![0; n],
            pending_hang: vec![0; n],
            ledger: FaultLedger::default(),
            cpu_slots: MultiTimeline::new(cfg.cpu_fallback.slots.max(1)),
            cfg,
        }
    }

    /// Worker index this manager belongs to.
    pub fn worker_id(&self) -> usize {
        self.worker_id
    }

    /// Number of GPUs managed.
    pub fn gpu_count(&self) -> usize {
        self.gpus.len()
    }

    /// Immutable access to a GPU (tests, reporting).
    pub fn gpu(&self, i: usize) -> &VirtualGpu {
        &self.gpus[i]
    }

    /// Immutable access to a GPU's cache.
    pub fn cache(&self, i: usize) -> &GpuCache {
        &self.caches[i]
    }

    /// Works executed per GPU (load-balance reporting). CPU-fallback works
    /// are not attributed to any GPU.
    pub fn executed_per_gpu(&self) -> &[u64] {
        &self.executed_per_gpu
    }

    /// Number of Alg. 5.2 steals from foreign queues.
    pub fn steals(&self) -> u64 {
        self.steals
    }

    /// Number of injected kernel failures recovered from (random
    /// `failure_rate` plus scripted transients).
    pub fn failures(&self) -> u64 {
        self.failures
    }

    /// Script faults against this manager's devices. Events at instants the
    /// simulation has already passed fire immediately at the next drain.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.fault_plan = plan;
        self.fault_cursor = 0;
    }

    /// Cumulative fault/recovery counters.
    pub fn fault_ledger(&self) -> FaultLedger {
        self.ledger
    }

    /// Works the manager gave up on, in failure order.
    pub fn failed(&self) -> &[FailedWork] {
        &self.failed
    }

    /// Take ownership of the accumulated failures (clears the list).
    pub fn take_failed(&mut self) -> Vec<FailedWork> {
        std::mem::take(&mut self.failed)
    }

    /// Number of devices still usable (healthy or degraded).
    pub fn usable_gpus(&self) -> usize {
        (0..self.gpus.len()).filter(|&g| self.usable(g)).count()
    }

    fn usable(&self, gpu: usize) -> bool {
        self.gpus[gpu].health().is_usable()
    }

    /// Enqueue `work` as submitted at simulated instant `at`. The work runs
    /// when [`GpuManager::drain`] is called.
    pub fn submit(&mut self, work: GWork, at: SimTime) {
        self.pending.push((at, work));
    }

    /// Release every cached device buffer (job end, §4.2.2) and reset cache
    /// state. Engine timelines are preserved.
    pub fn release_job_caches(&mut self) {
        for (g, cache) in self.caches.iter_mut().enumerate() {
            for dev in cache.clear() {
                let _ = self.gpus[g].dmem.release(dev);
            }
        }
    }

    /// Run the event loop until all submitted work has completed or failed;
    /// returns the completions (unordered across GPUs, deterministic
    /// overall). Works abandoned after retry exhaustion are recorded in
    /// [`GpuManager::failed`], not returned here.
    pub fn drain(&mut self) -> Vec<CompletedWork> {
        let mut q: EventQueue<Ev> = EventQueue::new();
        // Wake every live stream at its current busy-until so queued work
        // left from interleaved submissions is always picked up.
        for g in 0..self.gpus.len() {
            if !self.usable(g) {
                continue;
            }
            for s in 0..self.cfg.streams_per_gpu {
                q.schedule(
                    self.stream_busy_until[g][s],
                    Ev::StreamFree { gpu: g, stream: s },
                );
            }
        }
        // Scripted faults not yet delivered enter the queue once.
        for e in &self.fault_plan.events()[self.fault_cursor..] {
            q.schedule(e.at, Ev::Fault(e.kind));
        }
        self.fault_cursor = self.fault_plan.events().len();
        let mut pending = std::mem::take(&mut self.pending);
        pending.sort_by_key(|(t, _)| *t);
        for (t, w) in pending {
            q.schedule(t, Ev::Submit(Box::new((t, 0, w))));
        }
        while let Some((t, ev)) = q.pop() {
            match ev {
                Ev::Submit(b) => {
                    let (submitted, retries, w) = *b;
                    self.dispatch(w, submitted, retries, t, &mut q);
                }
                Ev::StreamFree { gpu, stream } => self.on_stream_free(gpu, stream, t, &mut q),
                Ev::KernelStage(id) => self.on_kernel_stage(id, t, &mut q),
                Ev::D2hStage(id) => self.on_d2h_stage(id, t, &mut q),
                Ev::Fault(kind) => self.on_fault(kind, t, &mut q),
                Ev::HangCheck(id) => self.on_hang_check(id, t, &mut q),
            }
        }
        debug_assert!(
            self.queues.iter().all(VecDeque::is_empty),
            "work left queued"
        );
        debug_assert!(self.in_flight.is_empty(), "work stuck in flight");
        std::mem::take(&mut self.completed)
    }

    /// Alg. 5.1, step 1: the GPU whose cache holds the most of this work's
    /// cached input bytes (`GID`), or `None` when nothing is resident.
    /// Lost devices never win: their caches were invalidated at loss.
    fn locality_gpu(&self, work: &GWork) -> Option<usize> {
        let keys: Vec<_> = work.inputs.iter().filter_map(|b| b.cache_key).collect();
        if keys.is_empty() {
            return None;
        }
        let mut best: Option<(usize, u64)> = None;
        for (g, cache) in self.caches.iter().enumerate() {
            if !self.usable(g) {
                continue;
            }
            let bytes = cache.resident_bytes(&keys);
            if bytes > 0 && best.map(|(_, b)| bytes > b).unwrap_or(true) {
                best = Some((g, bytes));
            }
        }
        best.map(|(g, _)| g)
    }

    fn idle_streams(&self, gpu: usize, t: SimTime) -> usize {
        self.stream_busy_until[gpu]
            .iter()
            .filter(|&&b| b <= t)
            .count()
    }

    fn first_idle_stream(&self, gpu: usize, t: SimTime) -> Option<usize> {
        self.stream_busy_until[gpu].iter().position(|&b| b <= t)
    }

    /// The bulk with the most idle streams (ties → lowest GPU index). A
    /// lost device's streams are pinned busy forever, so it never appears.
    fn most_idle_bulk(&self, t: SimTime) -> Option<(usize, usize)> {
        let (mut best_g, mut best_idle) = (0usize, 0usize);
        for g in 0..self.gpus.len() {
            let idle = self.idle_streams(g, t);
            if idle > best_idle {
                best_g = g;
                best_idle = idle;
            }
        }
        if best_idle == 0 {
            None
        } else {
            Some((best_g, self.first_idle_stream(best_g, t).unwrap()))
        }
    }

    fn dispatch(
        &mut self,
        work: GWork,
        submitted: SimTime,
        retries: u32,
        t: SimTime,
        q: &mut EventQueue<Ev>,
    ) {
        if self.usable_gpus() == 0 {
            self.run_on_cpu_or_fail(work, submitted, retries, t);
            return;
        }
        match self.cfg.scheduling {
            SchedulingPolicy::LocalityAware | SchedulingPolicy::LocalityNoSteal => {
                let gid = self.locality_gpu(&work);
                // Algorithm 5.1.
                let placed = match gid {
                    Some(g) => match self.first_idle_stream(g, t) {
                        Some(s) => Some((g, s)),
                        None => self.most_idle_bulk(t),
                    },
                    None => self.most_idle_bulk(t),
                };
                match placed {
                    Some((g, s)) => self.execute(work, submitted, retries, g, s, t, q),
                    None => {
                        // Lines 11–18: park in GID's queue, or the least
                        // loaded usable queue when GID is null.
                        let qi = match gid.filter(|&g| self.usable(g)) {
                            Some(g) => g,
                            None => self
                                .queues
                                .iter()
                                .enumerate()
                                .filter(|&(i, _)| self.usable(i))
                                .min_by_key(|(_, queue)| queue.len())
                                .map(|(i, _)| i)
                                .unwrap(),
                        };
                        self.queues[qi].push_back((submitted, retries, work));
                    }
                }
            }
            SchedulingPolicy::RoundRobin => {
                let n = self.gpus.len();
                let mut g = self.rr_counter % n;
                self.rr_counter += 1;
                while !self.usable(g) {
                    g = (g + 1) % n;
                }
                match self.first_idle_stream(g, t) {
                    Some(s) => self.execute(work, submitted, retries, g, s, t, q),
                    None => self.queues[g].push_back((submitted, retries, work)),
                }
            }
            SchedulingPolicy::Random { .. } => {
                let usable: Vec<usize> = (0..self.gpus.len()).filter(|&g| self.usable(g)).collect();
                let g = usable[self.rng.gen_index(usable.len())];
                match self.first_idle_stream(g, t) {
                    Some(s) => self.execute(work, submitted, retries, g, s, t, q),
                    None => self.queues[g].push_back((submitted, retries, work)),
                }
            }
        }
    }

    /// Algorithm 5.2: a freed stream pulls from its own GPU's queue first,
    /// then from the fullest queue.
    fn on_stream_free(&mut self, gpu: usize, stream: usize, t: SimTime, q: &mut EventQueue<Ev>) {
        if !self.usable(gpu) || self.stream_busy_until[gpu][stream] > t {
            // Lost device, or a superseded wake-up: the stream picked up new
            // work since this event was scheduled.
            return;
        }
        let work = if let Some(w) = self.queues[gpu].pop_front() {
            Some(w)
        } else if self.cfg.scheduling.steals() {
            let victim = self
                .queues
                .iter()
                .enumerate()
                .max_by_key(|(_, queue)| queue.len())
                .map(|(i, _)| i)
                .filter(|&i| !self.queues[i].is_empty());
            victim.map(|i| {
                self.steals += 1;
                self.queues[i].pop_front().unwrap()
            })
        } else {
            None
        };
        if let Some((submitted, retries, w)) = work {
            self.execute(w, submitted, retries, gpu, stream, t, q);
        }
    }

    /// Allocate device memory, evicting cache entries under pressure.
    /// Exhausting both free memory and the evictable cache is a typed
    /// error, not a panic: the caller sends the work through the retry
    /// path (a later attempt may find memory released by finished works).
    fn alloc_with_pressure(
        &mut self,
        gpu: usize,
        logical: u64,
        actual: usize,
    ) -> Result<DevBufId, ManagerError> {
        loop {
            match self.gpus[gpu].dmem.alloc(logical, actual) {
                Ok(id) => return Ok(id),
                Err(DmemError::OutOfMemory { .. }) => match self.caches[gpu].evict_one() {
                    Some(dev) => {
                        let _ = self.gpus[gpu].dmem.release(dev);
                    }
                    None => {
                        return Err(ManagerError::OutOfMemory {
                            gpu,
                            requested: logical,
                            free: self.gpus[gpu].dmem.free_bytes(),
                        })
                    }
                },
                Err(e) => return Err(ManagerError::Device(DeviceError::Mem(e))),
            }
        }
    }

    /// Dispatch one GWork onto (gpu, stream): the stream is occupied until
    /// the work's D2H completes. Pipeline stages are driven by events so a
    /// stage's engine reservation is made only when its stream dependency
    /// resolves — exactly how CUDA feeds its copy/compute engines. Eagerly
    /// reserving all three stages here would block later H2Ds behind
    /// not-yet-runnable D2H slots on single-copy-engine devices.
    #[allow(clippy::too_many_arguments)]
    fn execute(
        &mut self,
        work: GWork,
        submitted: SimTime,
        retries: u32,
        gpu: usize,
        stream: usize,
        t: SimTime,
        q: &mut EventQueue<Ev>,
    ) {
        let mut timing = WorkTiming {
            submitted,
            started: t,
            ..WorkTiming::default()
        };
        let mut dev_inputs = Vec::with_capacity(work.inputs.len());
        let mut transient: Vec<DevBufId> = Vec::new();
        let mut pinned: Vec<crate::gwork::CacheKey> = Vec::new();
        let mut kernel_earliest = t;
        let mut failure: Option<ManagerError> = None;
        // Stage 1: H2D (skipped per-buffer on cache hits). Every cached
        // buffer this work references is pinned until its D2H completes so
        // concurrent works cannot evict a live kernel argument.
        for inbuf in &work.inputs {
            let cached_dev = inbuf.cache_key.and_then(|key| self.caches[gpu].lookup(key));
            match cached_dev {
                Some(dev) => {
                    timing.cache_hits += 1;
                    self.caches[gpu].pin(inbuf.cache_key.unwrap());
                    pinned.push(inbuf.cache_key.unwrap());
                    dev_inputs.push(dev);
                }
                None => {
                    let dev = match self.alloc_with_pressure(
                        gpu,
                        inbuf.logical_bytes,
                        inbuf.data.len(),
                    ) {
                        Ok(dev) => dev,
                        Err(e) => {
                            failure = Some(e);
                            break;
                        }
                    };
                    let r = match self.gpus[gpu].copy_h2d(t, inbuf.logical_bytes, &inbuf.data, dev)
                    {
                        Ok(r) => r,
                        Err(e) => {
                            transient.push(dev);
                            failure = Some(ManagerError::Device(e));
                            break;
                        }
                    };
                    timing.h2d += r.duration();
                    kernel_earliest = kernel_earliest.max(r.end);
                    let mut keep = false;
                    if let Some(key) = inbuf.cache_key {
                        timing.cache_misses += 1;
                        let (evicted, may_insert) = self.caches[gpu].make_room(inbuf.logical_bytes);
                        for d in evicted {
                            let _ = self.gpus[gpu].dmem.release(d);
                        }
                        if may_insert {
                            if let Some(old) =
                                self.caches[gpu].insert(key, dev, inbuf.logical_bytes)
                            {
                                let _ = self.gpus[gpu].dmem.release(old);
                            }
                            self.caches[gpu].pin(key);
                            pinned.push(key);
                            keep = true;
                        }
                    }
                    if !keep {
                        transient.push(dev);
                    }
                    dev_inputs.push(dev);
                }
            }
        }
        // Output allocation (GMemoryManager, automatic).
        let out_dev = if failure.is_none() {
            match self.alloc_with_pressure(gpu, work.out_logical_bytes, work.out_actual_bytes) {
                Ok(dev) => Some(dev),
                Err(e) => {
                    failure = Some(e);
                    None
                }
            }
        } else {
            None
        };
        if let Some(err) = failure {
            // Unwind the partial placement; the stream was never occupied.
            self.reclaim(gpu, transient, pinned, None);
            self.retry_or_fail(work, submitted, retries, t, FailReason::Fatal(err), q);
            return;
        }
        let out_dev = out_dev.expect("checked by failure branch");
        // Occupy the stream until the final stage completes.
        self.stream_busy_until[gpu][stream] = SimTime::MAX;
        let id = self.next_flight;
        self.next_flight += 1;
        self.in_flight.insert(
            id,
            InFlight {
                work,
                retries,
                timing,
                gpu,
                stream,
                dev_inputs,
                transient,
                pinned,
                out_dev,
                emitted: None,
                hung: false,
            },
        );
        q.schedule(kernel_earliest, Ev::KernelStage(id));
    }

    /// Release a recovered flight's device buffers and cache pins. A `None`
    /// `out_dev` means the output was never allocated. No-ops harmlessly
    /// after device loss (handles are dead, pins were cleared).
    fn reclaim(
        &mut self,
        gpu: usize,
        transient: Vec<DevBufId>,
        pinned: Vec<crate::gwork::CacheKey>,
        out_dev: Option<DevBufId>,
    ) {
        for d in transient {
            let _ = self.gpus[gpu].dmem.release(d);
        }
        for key in pinned {
            self.caches[gpu].unpin(key);
        }
        if let Some(dev) = out_dev {
            let _ = self.gpus[gpu].dmem.release(dev);
        }
    }

    /// Route a recovered work back through Alg. 5.1 after its policy
    /// backoff, or give up with a structured [`FailedWork`]. `reason` is
    /// recorded when the work cannot be retried; a [`FailReason::Fatal`]
    /// wrapping [`ManagerError::KernelMissing`] is never retried (no later
    /// attempt can succeed).
    fn retry_or_fail(
        &mut self,
        work: GWork,
        submitted: SimTime,
        retries: u32,
        now: SimTime,
        reason: FailReason,
        q: &mut EventQueue<Ev>,
    ) {
        if let FailReason::Fatal(ManagerError::KernelMissing { .. }) = reason {
            self.fail_work(work, submitted, retries, now, reason);
            return;
        }
        let spent = now.saturating_sub(submitted);
        if self.cfg.retry.allows(retries, spent) {
            self.ledger.retries += 1;
            let delay = self.cfg.retry.backoff(retries);
            let at = SimTime::from_nanos(now.as_nanos().saturating_add(delay.as_nanos()));
            q.schedule(at, Ev::Submit(Box::new((submitted, retries + 1, work))));
        } else {
            let exhausted = if retries >= self.cfg.retry.max_retries {
                FailReason::RetriesExhausted
            } else {
                FailReason::DeadlineExceeded
            };
            self.fail_work(work, submitted, retries, now, exhausted);
        }
    }

    fn fail_work(
        &mut self,
        work: GWork,
        submitted: SimTime,
        retries: u32,
        now: SimTime,
        reason: FailReason,
    ) {
        self.ledger.works_failed += 1;
        self.failed.push(FailedWork {
            name: work.name,
            tag: work.tag,
            retries,
            reason,
            submitted,
            failed_at: now,
        });
    }

    /// Stage 2: the kernel launches once its inputs are device-resident.
    fn on_kernel_stage(&mut self, id: u64, t: SimTime, q: &mut EventQueue<Ev>) {
        let Some(mut fl) = self.in_flight.remove(&id) else {
            // The flight was recovered (device loss) before this fired.
            return;
        };
        let kernel = self.registry.lock().get(&fl.work.execute_name);
        let kernel = match kernel {
            Some(k) => k,
            None => {
                let err = ManagerError::KernelMissing {
                    name: fl.work.execute_name.clone(),
                };
                self.reclaim(fl.gpu, fl.transient, fl.pinned, Some(fl.out_dev));
                self.stream_busy_until[fl.gpu][fl.stream] = t;
                q.schedule(
                    t,
                    Ev::StreamFree {
                        gpu: fl.gpu,
                        stream: fl.stream,
                    },
                );
                self.retry_or_fail(
                    fl.work,
                    fl.timing.submitted,
                    fl.retries,
                    t,
                    FailReason::Fatal(err),
                    q,
                );
                return;
            }
        };
        let launched = self.gpus[fl.gpu].launch(
            t,
            &kernel,
            &fl.dev_inputs,
            &[fl.out_dev],
            &fl.work.params,
            fl.work.n_actual,
            fl.work.n_logical,
            fl.work.coalescing,
        );
        let (kres, profile) = match launched {
            Ok(v) => v,
            Err(e) => {
                // The device failed underneath the flight (defensive: loss
                // recovery normally removes flights first).
                self.reclaim(fl.gpu, fl.transient, fl.pinned, Some(fl.out_dev));
                self.stream_busy_until[fl.gpu][fl.stream] = t;
                q.schedule(
                    t,
                    Ev::StreamFree {
                        gpu: fl.gpu,
                        stream: fl.stream,
                    },
                );
                self.retry_or_fail(
                    fl.work,
                    fl.timing.submitted,
                    fl.retries,
                    t,
                    FailReason::Fatal(ManagerError::Device(e)),
                    q,
                );
                return;
            }
        };
        fl.timing.kernel = kres.duration();
        fl.emitted = profile.emitted;
        let end = kres.end;
        // Scripted hang: the kernel never completes; the stream stays
        // occupied until the watchdog recovers the work.
        if self.pending_hang[fl.gpu] > 0 {
            self.pending_hang[fl.gpu] -= 1;
            fl.hung = true;
            let deadline = SimTime::from_nanos(
                t.as_nanos()
                    .saturating_add(self.cfg.hang_timeout.as_nanos()),
            );
            self.in_flight.insert(id, fl);
            q.schedule(deadline, Ev::HangCheck(id));
            return;
        }
        // Transient fault injection: scripted, or random at `failure_rate`
        // (ECC error, lost context, a preempted device). Failure is
        // detected at kernel completion; the GPUManager reclaims the
        // buffers and reschedules the work after backoff.
        let scripted = if self.pending_transient[fl.gpu] > 0 {
            self.pending_transient[fl.gpu] -= 1;
            true
        } else {
            false
        };
        if scripted || (self.cfg.failure_rate > 0.0 && self.rng.next_f64() < self.cfg.failure_rate)
        {
            self.failures += 1;
            self.ledger.transient_faults += 1;
            self.reclaim(fl.gpu, fl.transient, fl.pinned, Some(fl.out_dev));
            // The stream frees at the (wasted) kernel end; the work goes
            // back through Alg. 5.1 for a fresh placement after backoff.
            self.stream_busy_until[fl.gpu][fl.stream] = end;
            q.schedule(
                end,
                Ev::StreamFree {
                    gpu: fl.gpu,
                    stream: fl.stream,
                },
            );
            self.retry_or_fail(
                fl.work,
                fl.timing.submitted,
                fl.retries,
                end.max(t),
                FailReason::RetriesExhausted,
                q,
            );
            return;
        }
        self.in_flight.insert(id, fl);
        q.schedule(end, Ev::D2hStage(id));
    }

    /// Stage 3: results travel back; the stream frees at the copy's end.
    fn on_d2h_stage(&mut self, id: u64, t: SimTime, q: &mut EventQueue<Ev>) {
        let Some(mut fl) = self.in_flight.remove(&id) else {
            // The flight was recovered (device loss) before this fired.
            return;
        };
        // Variable-output kernels transfer only the emitted fraction of the
        // declared capacity.
        let d2h_logical = match fl.emitted {
            Some(e) => {
                (fl.work.out_logical_bytes as u128 * e as u128 / fl.work.out_records.max(1) as u128)
                    as u64
            }
            None => fl.work.out_logical_bytes,
        };
        let mut out_host = HBuffer::zeroed(fl.work.out_actual_bytes);
        let rd2h = match self.gpus[fl.gpu].copy_d2h(t, d2h_logical, fl.out_dev, &mut out_host) {
            Ok(r) => r,
            Err(e) => {
                // Defensive: loss recovery removes flights before this can
                // fire, but a failed readback still routes through retry.
                self.reclaim(fl.gpu, fl.transient, fl.pinned, Some(fl.out_dev));
                self.stream_busy_until[fl.gpu][fl.stream] = t;
                q.schedule(
                    t,
                    Ev::StreamFree {
                        gpu: fl.gpu,
                        stream: fl.stream,
                    },
                );
                self.retry_or_fail(
                    fl.work,
                    fl.timing.submitted,
                    fl.retries,
                    t,
                    FailReason::Fatal(ManagerError::Device(e)),
                    q,
                );
                return;
            }
        };
        fl.timing.d2h = rd2h.duration();
        fl.timing.completed = rd2h.end;
        // Automatic deallocation of transient buffers (§4.2.1) and
        // unpinning of the cached inputs.
        self.reclaim(fl.gpu, fl.transient, fl.pinned, Some(fl.out_dev));
        self.stream_busy_until[fl.gpu][fl.stream] = rd2h.end;
        self.executed_per_gpu[fl.gpu] += 1;
        q.schedule(
            rd2h.end,
            Ev::StreamFree {
                gpu: fl.gpu,
                stream: fl.stream,
            },
        );
        self.completed.push(CompletedWork {
            name: fl.work.name,
            tag: fl.work.tag,
            gpu: fl.gpu,
            stream: fl.stream,
            output: out_host,
            emitted: fl.emitted,
            timing: fl.timing,
        });
    }

    /// A scripted fault fires.
    fn on_fault(&mut self, kind: FaultKind, t: SimTime, q: &mut EventQueue<Ev>) {
        self.ledger.faults_injected += 1;
        let gpu = kind.gpu();
        assert!(gpu < self.gpus.len(), "fault targets unknown device {gpu}");
        match kind {
            FaultKind::GpuLost { .. } => {
                if self.gpus[gpu].health().is_lost() {
                    return; // already gone; nothing more to lose
                }
                self.ledger.gpus_lost += 1;
                self.gpus[gpu].mark_lost();
                self.ledger.cache_invalidations += self.caches[gpu].invalidate_all() as u64;
                // Blacklist: the device's streams never come free again.
                for s in 0..self.cfg.streams_per_gpu {
                    self.stream_busy_until[gpu][s] = SimTime::MAX;
                }
                // Recover in-flight works. Sorted ids keep event order (and
                // thus the timeline) independent of HashMap iteration order.
                let mut ids: Vec<u64> = self
                    .in_flight
                    .iter()
                    .filter(|(_, fl)| fl.gpu == gpu)
                    .map(|(&id, _)| id)
                    .collect();
                ids.sort_unstable();
                for id in ids {
                    let fl = self.in_flight.remove(&id).expect("id collected above");
                    // Device buffers died with the device; nothing to
                    // reclaim. Loss is not the work's fault: it re-enters
                    // scheduling immediately and keeps its retry budget.
                    self.ledger.retries += 1;
                    q.schedule(
                        t,
                        Ev::Submit(Box::new((fl.timing.submitted, fl.retries, fl.work))),
                    );
                }
                // Drain the dead device's queue onto the survivors.
                let queued: Vec<_> = self.queues[gpu].drain(..).collect();
                self.ledger.steals_on_drain += queued.len() as u64;
                for (submitted, retries, w) in queued {
                    q.schedule(t, Ev::Submit(Box::new((submitted, retries, w))));
                }
            }
            FaultKind::GpuDegraded { throughput, .. } => {
                if self.gpus[gpu].health().is_lost() {
                    return;
                }
                self.ledger.gpus_degraded += 1;
                self.gpus[gpu].degrade(throughput);
            }
            FaultKind::KernelTransient { .. } => {
                self.pending_transient[gpu] += 1;
            }
            FaultKind::KernelHang { .. } => {
                self.pending_hang[gpu] += 1;
            }
        }
    }

    /// The watchdog fires `hang_timeout` after a launch; a flight still
    /// wedged in its kernel is recovered and retried.
    fn on_hang_check(&mut self, id: u64, t: SimTime, q: &mut EventQueue<Ev>) {
        let hung = self.in_flight.get(&id).map(|fl| fl.hung).unwrap_or(false);
        if !hung {
            // Completed normally, or already recovered by device loss.
            return;
        }
        let fl = self.in_flight.remove(&id).expect("checked above");
        self.ledger.hangs_detected += 1;
        self.reclaim(fl.gpu, fl.transient, fl.pinned, Some(fl.out_dev));
        self.stream_busy_until[fl.gpu][fl.stream] = t;
        q.schedule(
            t,
            Ev::StreamFree {
                gpu: fl.gpu,
                stream: fl.stream,
            },
        );
        self.retry_or_fail(
            fl.work,
            fl.timing.submitted,
            fl.retries,
            t,
            FailReason::RetriesExhausted,
            q,
        );
    }

    /// Last-resort execution on the host CPU: every GPU is lost. The kernel
    /// really runs over the host buffers; time comes from the CPU roofline
    /// model over a bounded slot pool. No H2D/D2H is charged — the data
    /// never leaves host memory.
    fn run_on_cpu_or_fail(&mut self, work: GWork, submitted: SimTime, retries: u32, t: SimTime) {
        if !self.cfg.cpu_fallback.enabled {
            self.fail_work(work, submitted, retries, t, FailReason::NoUsableDevice);
            return;
        }
        let kernel = self.registry.lock().get(&work.execute_name);
        let Some(kernel) = kernel else {
            let err = ManagerError::KernelMissing {
                name: work.execute_name.clone(),
            };
            self.fail_work(work, submitted, retries, t, FailReason::Fatal(err));
            return;
        };
        let mut out_host = HBuffer::zeroed(work.out_actual_bytes);
        let profile = {
            let inputs: Vec<&HBuffer> = work.inputs.iter().map(|b| b.data.as_ref()).collect();
            let mut args = KernelArgs {
                inputs,
                outputs: vec![&mut out_host],
                params: &work.params,
                n_actual: work.n_actual,
                n_logical: work.n_logical,
            };
            kernel(&mut args)
        };
        let dur = self
            .cfg
            .cpu_fallback
            .cost
            .time_for(profile.flops, profile.bytes, 1.0);
        let (slot, r) = self.cpu_slots.reserve(t, dur);
        self.ledger.cpu_fallbacks += 1;
        self.completed.push(CompletedWork {
            name: work.name,
            tag: work.tag,
            gpu: CPU_FALLBACK_GPU,
            stream: slot,
            output: out_host,
            emitted: profile.emitted,
            timing: WorkTiming {
                submitted,
                started: r.start,
                h2d: SimTime::ZERO,
                kernel: r.duration(),
                d2h: SimTime::ZERO,
                completed: r.end,
                cache_hits: 0,
                cache_misses: 0,
            },
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gwork::{CacheKey, WorkBuf};
    use gflink_gpu::KernelProfile;

    fn registry_with_scale2() -> Arc<Mutex<KernelRegistry>> {
        let mut reg = KernelRegistry::new();
        reg.register("scale2", |args: &mut KernelArgs<'_>| {
            let n = args.n_actual;
            let input = args.inputs[0];
            let out = &mut args.outputs[0];
            for i in 0..n {
                out.write_f32(i * 4, input.read_f32(i * 4) * 2.0);
            }
            KernelProfile::new(args.n_logical as f64, args.n_logical as f64 * 8.0)
        });
        Arc::new(Mutex::new(reg))
    }

    fn mk_work(tag: (u32, u32), logical: u64, cache: bool) -> GWork {
        let data = Arc::new(HBuffer::from_f32s(&[1.0, 2.0, 3.0, 4.0]));
        let key = CacheKey {
            dataset: 1,
            partition: tag.0,
            block: tag.1,
        };
        GWork {
            name: format!("w{}-{}", tag.0, tag.1),
            execute_name: "scale2".into(),
            ptx_path: "/scale2.ptx".into(),
            block_size: 256,
            grid_size: 1,
            inputs: vec![if cache {
                WorkBuf::cached(data, logical, key)
            } else {
                WorkBuf::transient(data, logical)
            }],
            out_actual_bytes: 16,
            out_logical_bytes: logical,
            out_records: 4,
            params: vec![],
            n_actual: 4,
            n_logical: logical / 4,
            coalescing: 1.0,
            tag,
        }
    }

    fn manager(models: Vec<GpuModel>, policy: SchedulingPolicy) -> GpuManager {
        GpuManager::new(
            0,
            GpuWorkerConfig {
                models,
                scheduling: policy,
                ..GpuWorkerConfig::default()
            },
            registry_with_scale2(),
        )
    }

    #[test]
    fn executes_work_and_returns_real_results() {
        let mut m = manager(vec![GpuModel::TeslaC2050], SchedulingPolicy::LocalityAware);
        m.submit(mk_work((0, 0), 1 << 20, false), SimTime::ZERO);
        let done = m.drain();
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].output.to_f32_vec(), vec![2.0, 4.0, 6.0, 8.0]);
        assert!(done[0].timing.h2d > SimTime::ZERO);
        assert!(done[0].timing.kernel > SimTime::ZERO);
        assert!(done[0].timing.d2h > SimTime::ZERO);
        assert!(done[0].timing.completed > SimTime::ZERO);
    }

    #[test]
    fn cache_hit_skips_h2d_on_second_round() {
        let mut m = manager(vec![GpuModel::TeslaC2050], SchedulingPolicy::LocalityAware);
        m.submit(mk_work((0, 0), 1 << 24, true), SimTime::ZERO);
        let first = m.drain().pop().unwrap();
        assert_eq!(first.timing.cache_misses, 1);
        assert!(first.timing.h2d > SimTime::ZERO);
        // Same block again (next iteration).
        m.submit(mk_work((0, 0), 1 << 24, true), first.timing.completed);
        let second = m.drain().pop().unwrap();
        assert_eq!(second.timing.cache_hits, 1);
        assert_eq!(second.timing.h2d, SimTime::ZERO);
        assert!(second.timing.total() < first.timing.total());
    }

    #[test]
    fn locality_routes_to_caching_gpu() {
        let mut m = manager(
            vec![GpuModel::TeslaC2050, GpuModel::TeslaC2050],
            SchedulingPolicy::LocalityAware,
        );
        // Warm block (0,0) somewhere.
        m.submit(mk_work((0, 0), 1 << 20, true), SimTime::ZERO);
        let first = m.drain().pop().unwrap();
        let warm_gpu = first.gpu;
        // Resubmit 8 times; all should land on the warm GPU.
        for i in 0..8 {
            m.submit(
                mk_work((0, 0), 1 << 20, true),
                first.timing.completed + SimTime::from_millis(i * 10),
            );
        }
        for done in m.drain() {
            assert_eq!(done.gpu, warm_gpu, "locality-aware must follow the cache");
            assert_eq!(done.timing.cache_hits, 1);
        }
    }

    #[test]
    fn round_robin_alternates_gpus() {
        let mut m = manager(
            vec![GpuModel::TeslaC2050, GpuModel::TeslaC2050],
            SchedulingPolicy::RoundRobin,
        );
        for i in 0..6 {
            m.submit(mk_work((0, i), 1 << 20, false), SimTime::ZERO);
        }
        m.drain();
        assert_eq!(m.executed_per_gpu(), &[3, 3]);
    }

    #[test]
    fn heterogeneous_bulk_load_balances_by_stealing() {
        // One slow C2050 and one fast P100; with far more works than
        // streams, the P100 must end up executing more of them.
        let mut m = manager(
            vec![GpuModel::TeslaC2050, GpuModel::TeslaP100],
            SchedulingPolicy::LocalityAware,
        );
        for i in 0..64 {
            m.submit(mk_work((0, i), 1 << 26, false), SimTime::ZERO);
        }
        let done = m.drain();
        assert_eq!(done.len(), 64);
        let per = m.executed_per_gpu();
        assert!(
            per[1] > per[0],
            "P100 should execute more work than C2050, got {per:?}"
        );
    }

    #[test]
    fn queue_drains_even_when_all_streams_start_busy() {
        let mut m = manager(vec![GpuModel::TeslaC2050], SchedulingPolicy::LocalityAware);
        // 4 streams; 12 works at the same instant: 8 must queue and still run.
        for i in 0..12 {
            m.submit(mk_work((0, i), 1 << 24, false), SimTime::ZERO);
        }
        let done = m.drain();
        assert_eq!(done.len(), 12);
        // Works queue, so some have nonzero queueing delay.
        assert!(done.iter().any(|d| d.timing.queued() > SimTime::ZERO));
    }

    #[test]
    fn no_steal_policy_keeps_foreign_queues() {
        let mut with = manager(
            vec![GpuModel::TeslaC2050, GpuModel::TeslaP100],
            SchedulingPolicy::LocalityAware,
        );
        let mut without = manager(
            vec![GpuModel::TeslaC2050, GpuModel::TeslaP100],
            SchedulingPolicy::LocalityNoSteal,
        );
        for m in [&mut with, &mut without] {
            for i in 0..64 {
                m.submit(mk_work((0, i), 1 << 26, false), SimTime::ZERO);
            }
            m.drain();
        }
        assert!(with.steals() > 0);
        assert_eq!(without.steals(), 0);
    }

    #[test]
    fn release_job_caches_frees_device_memory() {
        let mut m = manager(vec![GpuModel::TeslaC2050], SchedulingPolicy::LocalityAware);
        m.submit(mk_work((0, 0), 1 << 24, true), SimTime::ZERO);
        m.drain();
        assert!(m.cache(0).used() > 0);
        let used_before = m.gpu(0).dmem.used();
        assert!(used_before > 0);
        m.release_job_caches();
        assert_eq!(m.cache(0).used(), 0);
        assert_eq!(m.gpu(0).dmem.used(), 0);
    }

    #[test]
    fn injected_failures_recover_with_correct_results() {
        let mut m = GpuManager::new(
            0,
            GpuWorkerConfig {
                models: vec![GpuModel::TeslaC2050, GpuModel::TeslaC2050],
                failure_rate: 0.3,
                retry: RetryPolicy {
                    max_retries: 20,
                    ..RetryPolicy::default()
                },
                ..GpuWorkerConfig::default()
            },
            registry_with_scale2(),
        );
        for i in 0..32 {
            m.submit(mk_work((0, i), 1 << 20, false), SimTime::ZERO);
        }
        let done = m.drain();
        assert_eq!(done.len(), 32, "every work must complete despite failures");
        assert!(m.failures() > 0, "failure injection should have fired");
        assert_eq!(m.fault_ledger().transient_faults, m.failures());
        assert!(m.fault_ledger().retries >= m.failures());
        for d in &done {
            assert_eq!(d.output.to_f32_vec(), vec![2.0, 4.0, 6.0, 8.0]);
        }
        // No leaked device memory or pinned cache entries.
        for g in 0..m.gpu_count() {
            assert_eq!(m.gpu(g).dmem.used(), 0);
        }
    }

    #[test]
    fn failures_cost_time_but_not_correctness() {
        let run = |rate: f64| {
            let mut m = GpuManager::new(
                0,
                GpuWorkerConfig {
                    models: vec![GpuModel::TeslaC2050],
                    failure_rate: rate,
                    retry: RetryPolicy {
                        max_retries: 50,
                        ..RetryPolicy::default()
                    },
                    ..GpuWorkerConfig::default()
                },
                registry_with_scale2(),
            );
            for i in 0..16 {
                m.submit(mk_work((0, i), 1 << 24, false), SimTime::ZERO);
            }
            m.drain().iter().map(|d| d.timing.completed).max().unwrap()
        };
        assert!(run(0.4) > run(0.0), "failures must lengthen the makespan");
    }

    #[test]
    fn drain_is_deterministic() {
        let run = || {
            let mut m = manager(
                vec![GpuModel::TeslaC2050, GpuModel::TeslaK20],
                SchedulingPolicy::LocalityAware,
            );
            for i in 0..32 {
                m.submit(mk_work((i % 4, i), 1 << 22, i % 2 == 0), SimTime::ZERO);
            }
            let mut done = m.drain();
            done.sort_by_key(|d| d.tag);
            done.iter()
                .map(|d| (d.tag, d.gpu, d.timing.completed))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    // ------------------------------------------------------------------
    // Fault-injection & recovery
    // ------------------------------------------------------------------

    #[test]
    fn device_loss_drains_to_survivor_with_correct_results() {
        let fault_free = {
            let mut m = manager(
                vec![GpuModel::TeslaC2050, GpuModel::TeslaC2050],
                SchedulingPolicy::LocalityAware,
            );
            for i in 0..24 {
                m.submit(mk_work((0, i), 1 << 24, true), SimTime::ZERO);
            }
            let mut done = m.drain();
            done.sort_by_key(|d| d.tag);
            done
        };
        let mut m = manager(
            vec![GpuModel::TeslaC2050, GpuModel::TeslaC2050],
            SchedulingPolicy::LocalityAware,
        );
        // Kill GPU 0 mid-job: some works are in flight, some queued.
        m.set_fault_plan(
            FaultPlan::new().with(SimTime::from_millis(5), FaultKind::GpuLost { gpu: 0 }),
        );
        for i in 0..24 {
            m.submit(mk_work((0, i), 1 << 24, true), SimTime::ZERO);
        }
        let mut done = m.drain();
        done.sort_by_key(|d| d.tag);
        assert_eq!(done.len(), 24, "every work must complete despite the loss");
        for (a, b) in done.iter().zip(&fault_free) {
            assert_eq!(a.tag, b.tag);
            assert_eq!(
                a.output.as_slice(),
                b.output.as_slice(),
                "results must be byte-identical to the fault-free run"
            );
            assert_eq!(a.gpu, 1, "all completions must come from the survivor");
        }
        let ledger = m.fault_ledger();
        assert_eq!(ledger.gpus_lost, 1);
        assert!(m.gpu(0).health().is_lost());
        assert!(
            m.cache(0).is_empty(),
            "lost GPU's cache must be invalidated"
        );
        assert!(m.failed().is_empty());
        assert_eq!(m.gpu(0).dmem.used(), 0, "lost device memory is wiped");
    }

    #[test]
    fn losing_every_gpu_falls_back_to_cpu() {
        let mut m = manager(
            vec![GpuModel::TeslaC2050, GpuModel::TeslaC2050],
            SchedulingPolicy::LocalityAware,
        );
        m.set_fault_plan(
            FaultPlan::new()
                .with(SimTime::ZERO, FaultKind::GpuLost { gpu: 0 })
                .with(SimTime::ZERO, FaultKind::GpuLost { gpu: 1 }),
        );
        for i in 0..8 {
            m.submit(mk_work((0, i), 1 << 20, false), SimTime::ZERO);
        }
        let done = m.drain();
        assert_eq!(done.len(), 8, "CPU fallback must complete the job");
        for d in &done {
            assert_eq!(d.gpu, CPU_FALLBACK_GPU);
            assert_eq!(d.output.to_f32_vec(), vec![2.0, 4.0, 6.0, 8.0]);
            assert_eq!(d.timing.h2d, SimTime::ZERO);
            assert_eq!(d.timing.d2h, SimTime::ZERO);
            assert!(d.timing.kernel > SimTime::ZERO);
        }
        let ledger = m.fault_ledger();
        assert_eq!(ledger.gpus_lost, 2);
        assert_eq!(ledger.cpu_fallbacks, 8);
        assert!(m.failed().is_empty());
    }

    #[test]
    fn losing_every_gpu_without_fallback_fails_structurally() {
        let mut m = GpuManager::new(
            0,
            GpuWorkerConfig {
                models: vec![GpuModel::TeslaC2050],
                cpu_fallback: CpuFallback {
                    enabled: false,
                    ..CpuFallback::default()
                },
                ..GpuWorkerConfig::default()
            },
            registry_with_scale2(),
        );
        m.set_fault_plan(FaultPlan::new().with(SimTime::ZERO, FaultKind::GpuLost { gpu: 0 }));
        for i in 0..4 {
            m.submit(mk_work((0, i), 1 << 20, false), SimTime::from_millis(1));
        }
        let done = m.drain();
        assert!(done.is_empty());
        assert_eq!(m.failed().len(), 4);
        for f in m.failed() {
            assert_eq!(f.reason, FailReason::NoUsableDevice);
            assert!(f.failed_at >= f.submitted);
        }
        assert_eq!(m.fault_ledger().works_failed, 4);
    }

    #[test]
    fn degradation_slows_the_job_down() {
        let run = |plan: FaultPlan| {
            let mut m = manager(vec![GpuModel::TeslaC2050], SchedulingPolicy::LocalityAware);
            m.set_fault_plan(plan);
            for i in 0..16 {
                m.submit(mk_work((0, i), 1 << 24, false), SimTime::ZERO);
            }
            let done = m.drain();
            assert_eq!(done.len(), 16);
            done.iter().map(|d| d.timing.completed).max().unwrap()
        };
        let nominal = run(FaultPlan::new());
        let degraded = run(FaultPlan::new().with(
            SimTime::ZERO,
            FaultKind::GpuDegraded {
                gpu: 0,
                throughput: 0.25,
            },
        ));
        assert!(degraded > nominal, "a throttled device must take longer");
    }

    #[test]
    fn hang_is_detected_and_work_retried() {
        let mut m = GpuManager::new(
            0,
            GpuWorkerConfig {
                models: vec![GpuModel::TeslaC2050],
                hang_timeout: SimTime::from_millis(50),
                ..GpuWorkerConfig::default()
            },
            registry_with_scale2(),
        );
        m.set_fault_plan(FaultPlan::new().with(SimTime::ZERO, FaultKind::KernelHang { gpu: 0 }));
        m.submit(mk_work((0, 0), 1 << 20, false), SimTime::ZERO);
        let done = m.drain();
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].output.to_f32_vec(), vec![2.0, 4.0, 6.0, 8.0]);
        // The retry could only start after the watchdog fired.
        assert!(done[0].timing.completed > SimTime::from_millis(50));
        let ledger = m.fault_ledger();
        assert_eq!(ledger.hangs_detected, 1);
        assert!(ledger.retries >= 1);
        assert_eq!(m.gpu(0).dmem.used(), 0);
    }

    #[test]
    fn scripted_transient_fault_is_recovered() {
        let mut m = manager(vec![GpuModel::TeslaC2050], SchedulingPolicy::LocalityAware);
        m.set_fault_plan(
            FaultPlan::new().with(SimTime::ZERO, FaultKind::KernelTransient { gpu: 0 }),
        );
        m.submit(mk_work((0, 0), 1 << 20, false), SimTime::ZERO);
        let done = m.drain();
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].output.to_f32_vec(), vec![2.0, 4.0, 6.0, 8.0]);
        assert_eq!(m.fault_ledger().transient_faults, 1);
        assert_eq!(m.failures(), 1);
    }

    #[test]
    fn retry_exhaustion_produces_structured_failure() {
        // failure_rate 1.0: every launch fails; the retry budget must run
        // out and yield FailedWork rather than a panic.
        let mut m = GpuManager::new(
            0,
            GpuWorkerConfig {
                models: vec![GpuModel::TeslaC2050],
                failure_rate: 1.0,
                retry: RetryPolicy {
                    base: SimTime::from_micros(10),
                    factor: 2,
                    max_retries: 3,
                    deadline: SimTime::MAX,
                },
                ..GpuWorkerConfig::default()
            },
            registry_with_scale2(),
        );
        m.submit(mk_work((0, 0), 1 << 20, false), SimTime::ZERO);
        let done = m.drain();
        assert!(done.is_empty());
        assert_eq!(m.failed().len(), 1);
        let f = &m.failed()[0];
        assert_eq!(f.reason, FailReason::RetriesExhausted);
        assert_eq!(f.retries, 3);
        assert!(
            f.failed_at > f.submitted,
            "failure instants participate in makespan"
        );
        assert_eq!(m.fault_ledger().works_failed, 1);
        assert_eq!(m.fault_ledger().retries, 3);
        // Nothing leaked on the way out.
        assert_eq!(m.gpu(0).dmem.used(), 0);
    }

    #[test]
    fn completions_and_failures_partition_submissions() {
        // Half the works name a kernel that exists, half one that doesn't:
        // completed + failed must account for every submission exactly.
        let mut m = manager(vec![GpuModel::TeslaC2050], SchedulingPolicy::LocalityAware);
        for i in 0..10 {
            let mut w = mk_work((0, i), 1 << 20, false);
            if i % 2 == 1 {
                w.execute_name = "no-such-kernel".into();
            }
            m.submit(w, SimTime::ZERO);
        }
        let done = m.drain();
        assert_eq!(done.len(), 5);
        assert_eq!(m.failed().len(), 5);
        for f in m.failed() {
            assert!(matches!(
                f.reason,
                FailReason::Fatal(ManagerError::KernelMissing { .. })
            ));
            assert_eq!(f.retries, 0, "a missing kernel is never retried");
        }
        assert_eq!(m.gpu(0).dmem.used(), 0);
        assert_eq!(m.take_failed().len(), 5);
        assert!(m.failed().is_empty());
    }

    #[test]
    fn retry_backoff_defers_resubmission() {
        // One scripted transient with a long backoff: the completion must
        // land at least `base` after the faulted kernel finished.
        let base = SimTime::from_millis(20);
        let mut m = GpuManager::new(
            0,
            GpuWorkerConfig {
                models: vec![GpuModel::TeslaC2050],
                retry: RetryPolicy {
                    base,
                    factor: 2,
                    max_retries: 4,
                    deadline: SimTime::MAX,
                },
                ..GpuWorkerConfig::default()
            },
            registry_with_scale2(),
        );
        m.set_fault_plan(
            FaultPlan::new().with(SimTime::ZERO, FaultKind::KernelTransient { gpu: 0 }),
        );
        m.submit(mk_work((0, 0), 1 << 20, false), SimTime::ZERO);
        let done = m.drain();
        assert_eq!(done.len(), 1);
        assert!(
            done[0].timing.completed >= base,
            "retry must wait out the backoff, completed at {}",
            done[0].timing.completed
        );
    }

    #[test]
    fn chaos_drain_is_deterministic_per_seed() {
        let run = |seed: u64| {
            let mut m = GpuManager::new(
                0,
                GpuWorkerConfig {
                    models: vec![GpuModel::TeslaC2050, GpuModel::TeslaC2050],
                    hang_timeout: SimTime::from_millis(50),
                    ..GpuWorkerConfig::default()
                },
                registry_with_scale2(),
            );
            m.set_fault_plan(FaultPlan::random(seed, 2, SimTime::from_millis(100), 8));
            for i in 0..24 {
                m.submit(mk_work((0, i), 1 << 22, i % 2 == 0), SimTime::ZERO);
            }
            let mut done = m.drain();
            done.sort_by_key(|d| d.tag);
            (
                done.iter()
                    .map(|d| (d.tag, d.gpu, d.timing.completed))
                    .collect::<Vec<_>>(),
                m.fault_ledger(),
            )
        };
        assert_eq!(run(11), run(11), "same seed, same timeline and ledger");
    }
}

//! The analytical model of §6.3/6.4 (Eqs. 1–4) and Observations 1–3.
//!
//! The runtime's [`gflink_sim::Accounting`] ledgers record measured phase
//! times; this module turns pairs of ledgers (baseline vs. GFlink) into the
//! paper's derived quantities so benches and tests can assert the
//! observations hold.

use gflink_sim::{Accounting, Phase, SimTime};

/// Eq. (2): overall speedup of GFlink over the baseline.
pub fn speedup_total(flink: &Accounting, gflink: &Accounting) -> f64 {
    ratio(flink.total(), gflink.total())
}

/// Eq. (3): speedup of the map phases alone.
pub fn speedup_map(flink: &Accounting, gflink: &Accounting) -> f64 {
    ratio(flink.get(Phase::Map), gflink.get(Phase::Map))
}

/// Eq. (4) decomposition of GFlink's GPU map time: transfer in, kernel,
/// transfer out (as fractions of their sum).
pub fn map_gpu_breakdown(gflink: &Accounting) -> (f64, f64, f64) {
    let h2d = gflink.get(Phase::TransferH2D).as_secs_f64();
    let k = gflink.get(Phase::Kernel).as_secs_f64();
    let d2h = gflink.get(Phase::TransferD2H).as_secs_f64();
    let sum = h2d + k + d2h;
    if sum == 0.0 {
        return (0.0, 0.0, 0.0);
    }
    (h2d / sum, k / sum, d2h / sum)
}

/// Observation 1: with other parameters fixed, a larger shuffle share
/// implies a smaller achievable overall speedup. This helper returns the
/// *upper bound* on speedup implied by Amdahl's law when only map+reduce
/// accelerate: `1 / (1 - accelerable_fraction)`.
pub fn amdahl_bound(flink: &Accounting) -> f64 {
    let accelerable = flink.fraction(Phase::Map) + flink.fraction(Phase::Reduce);
    if accelerable >= 1.0 {
        f64::INFINITY
    } else {
        1.0 / (1.0 - accelerable)
    }
}

/// Observation 3's fixed-cost share: the fraction of total time spent in
/// submit + IO + schedule (dominates for small inputs).
pub fn fixed_cost_share(acct: &Accounting) -> f64 {
    acct.fraction(Phase::Submit) + acct.fraction(Phase::Io) + acct.fraction(Phase::Schedule)
}

/// Hybrid placement's predicted speedup of one device over another: how
/// much faster the cost model expects `candidate` to finish than
/// `incumbent` (`> 1.0` favors the candidate). Infinite when the candidate
/// is predicted free; 0.0 when the incumbent is and the candidate is not.
pub fn predicted_speedup(incumbent: SimTime, candidate: SimTime) -> f64 {
    ratio(incumbent, candidate)
}

/// Relative error of a completion-time prediction against the observed
/// stage time: `|predicted − observed| / observed`. Returns 0.0 when
/// nothing was observed (a zero-length work tells us nothing about the
/// model). This is the quantity the hybrid scheduler feeds its error EWMA
/// and the rollup's basis-point histogram.
pub fn prediction_error(predicted: SimTime, observed: SimTime) -> f64 {
    if observed.is_zero() {
        return 0.0;
    }
    let p = predicted.as_secs_f64();
    let o = observed.as_secs_f64();
    (p - o).abs() / o
}

fn ratio(num: SimTime, den: SimTime) -> f64 {
    if den.is_zero() {
        return f64::INFINITY;
    }
    num.as_secs_f64() / den.as_secs_f64()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn acct(map_ms: u64, reduce_ms: u64, shuffle_ms: u64, fixed_ms: u64) -> Accounting {
        let mut a = Accounting::new();
        a.add(Phase::Map, SimTime::from_millis(map_ms));
        a.add(Phase::Reduce, SimTime::from_millis(reduce_ms));
        a.add(Phase::Shuffle, SimTime::from_millis(shuffle_ms));
        a.add(Phase::Io, SimTime::from_millis(fixed_ms));
        a
    }

    #[test]
    fn speedups_from_ledgers() {
        let flink = acct(900, 50, 30, 20);
        let gflink = acct(100, 50, 30, 20);
        assert!((speedup_total(&flink, &gflink) - 5.0).abs() < 1e-9);
        assert!((speedup_map(&flink, &gflink) - 9.0).abs() < 1e-9);
    }

    #[test]
    fn amdahl_bound_shrinks_with_shuffle_share() {
        // Observation 1: more shuffle ⇒ lower bound.
        let low_shuffle = acct(800, 100, 50, 50);
        let high_shuffle = acct(500, 100, 350, 50);
        assert!(amdahl_bound(&low_shuffle) > amdahl_bound(&high_shuffle));
    }

    #[test]
    fn bound_is_respected_by_any_real_speedup() {
        let flink = acct(600, 200, 150, 50);
        // Even an infinitely fast GPU cannot beat the Amdahl bound.
        let gflink = acct(0, 0, 150, 50);
        assert!(speedup_total(&flink, &gflink) <= amdahl_bound(&flink) + 1e-9);
    }

    #[test]
    fn fixed_cost_share_for_small_inputs() {
        // Observation 3: for tiny inputs, submit/IO/schedule dominate.
        let mut small = Accounting::new();
        small.add(Phase::Map, SimTime::from_millis(10));
        small.add(Phase::Submit, SimTime::from_millis(1200));
        small.add(Phase::Io, SimTime::from_millis(300));
        assert!(fixed_cost_share(&small) > 0.9);
        let mut large = acct(10_000, 1000, 500, 300);
        large.add(Phase::Submit, SimTime::from_millis(1200));
        assert!(fixed_cost_share(&large) < 0.2);
    }

    #[test]
    fn gpu_breakdown_fractions_sum_to_one() {
        let mut a = Accounting::new();
        a.add(Phase::TransferH2D, SimTime::from_millis(20));
        a.add(Phase::Kernel, SimTime::from_millis(70));
        a.add(Phase::TransferD2H, SimTime::from_millis(10));
        let (h, k, d) = map_gpu_breakdown(&a);
        assert!((h + k + d - 1.0).abs() < 1e-12);
        assert!((k - 0.7).abs() < 1e-12);
    }

    #[test]
    fn predicted_speedup_compares_completion_times() {
        // GPU predicted at 2 ms vs CPU at 500 µs: CPU is 4x faster.
        let gpu = SimTime::from_millis(2);
        let cpu = SimTime::from_micros(500);
        assert!((predicted_speedup(gpu, cpu) - 4.0).abs() < 1e-12);
        // The inverse direction is the reciprocal.
        assert!((predicted_speedup(cpu, gpu) - 0.25).abs() < 1e-12);
        // A free candidate is infinitely preferable.
        assert!(predicted_speedup(gpu, SimTime::ZERO).is_infinite());
    }

    #[test]
    fn prediction_error_is_relative_and_symmetric_in_sign() {
        let obs = SimTime::from_millis(10);
        // 12 ms predicted vs 10 ms observed: 20% over.
        assert!((prediction_error(SimTime::from_millis(12), obs) - 0.2).abs() < 1e-12);
        // 8 ms predicted: 20% under — same magnitude.
        assert!((prediction_error(SimTime::from_millis(8), obs) - 0.2).abs() < 1e-12);
        // Perfect prediction.
        assert_eq!(prediction_error(obs, obs), 0.0);
        // Nothing observed ⇒ no evidence of error.
        assert_eq!(
            prediction_error(SimTime::from_millis(5), SimTime::ZERO),
            0.0
        );
    }

    #[test]
    fn empty_ledgers_are_benign() {
        let a = Accounting::new();
        assert_eq!(map_gpu_breakdown(&a), (0.0, 0.0, 0.0));
        assert_eq!(fixed_cost_share(&a), 0.0);
        assert!(speedup_total(&a, &a).is_infinite());
    }
}

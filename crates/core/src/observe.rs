//! The live metrics plane of the GPU fabric: per-layer metric wiring,
//! cluster health snapshots, and the postmortem flight-recorder dumps.
//! Kept out of `manager.rs`/`gdst.rs` so the coordinator and the operator
//! driver stay the slim wiring the paper's decomposition calls for (the
//! `elastic.rs` precedent).
//!
//! Three surfaces live here:
//!
//! * [`GpuManager::set_metrics`] — mirrors `set_tracer`: hands every layer
//!   (GMemory, GStream, Recovery, and through them each device) its
//!   pre-registered counter/gauge/histogram handles, so the per-work hot
//!   path stays allocation-free and a disabled plane costs one branch.
//! * [`GpuFabric::cluster_snapshot`] — a point-in-time
//!   [`ClusterSnapshot`] health view (device health and utilization,
//!   stream queue depths, cache occupancy against budget, pen depth,
//!   checkpoint lag, live membership), exportable as a text dashboard,
//!   Prometheus exposition, or JSON.
//! * [`Observer`] — the fabric's postmortem policy: when a drain's fault
//!   ledger delta is non-quiet or a work breaches the [`SloPolicy`], the
//!   offending job's flight-recorder ring is bundled with the ledger delta
//!   and a health snapshot and written to `target/postmortem/*.json`.

use crate::gdst::GpuFabric;
use crate::manager::GpuManager;
use crate::session::JobId;
use gflink_flink::{ClusterSnapshot, DeviceSnapshot, DeviceState, JobHealth, WorkerSnapshot};
use gflink_gpu::DeviceHealth;
use gflink_sim::{
    write_postmortem, FaultLedger, Metrics, PostmortemBundle, RecEvent, SimTime, SloPolicy,
};
use std::collections::BTreeMap;
use std::path::PathBuf;

impl GpuManager {
    /// Attach the shared metrics plane to every layer of this worker,
    /// mirroring [`set_tracer`](GpuManager::set_tracer): each layer
    /// registers its own labelled series once, here, so the per-work hot
    /// path only touches pre-minted handles.
    pub fn set_metrics(&mut self, metrics: &Metrics) {
        self.gmem.set_metrics(metrics, self.worker_id);
        self.gstream.set_metrics(metrics, self.worker_id);
        self.recovery.set_metrics(metrics, self.worker_id);
    }

    /// Push one structured event onto `job`'s flight-recorder ring (no-op
    /// for unknown jobs — the session may already be torn down).
    pub(crate) fn record_job_event(&mut self, job: JobId, ev: RecEvent) {
        if let Some(s) = self.sessions.get_mut(&job) {
            s.recorder.push(ev);
        }
    }
}

/// Map a device's health regime into the snapshot's transport enum (the
/// flink crate does not see `gflink-gpu`).
fn device_state(h: DeviceHealth) -> DeviceState {
    match h {
        DeviceHealth::Healthy => DeviceState::Healthy,
        DeviceHealth::Degraded { throughput } => DeviceState::Degraded(throughput),
        DeviceHealth::Lost => DeviceState::Lost,
    }
}

/// Build the health view over already-locked managers. Free function so
/// both [`GpuFabric::cluster_snapshot`] and the in-drain postmortem path
/// (which already holds the manager lock) share one builder. Checkpoint
/// lag is precomputed by the caller (`last_ticks`) so no checkpoint lock
/// is taken while the managers are held.
pub(crate) fn build_cluster_snapshot(
    at: SimTime,
    live_jobs: &[u64],
    last_ticks: &BTreeMap<u64, SimTime>,
    ckpt_on: bool,
    managers: &[GpuManager],
) -> ClusterSnapshot {
    let mut workers = Vec::with_capacity(managers.len());
    for m in managers {
        let mut devices = Vec::with_capacity(m.gpu_count());
        for g in 0..m.gpu_count() {
            let gpu = m.gpu(g);
            let (mut used, mut budget) = (0u64, 0u64);
            for &job in live_jobs {
                if let Some(s) = m.session(JobId(job)) {
                    if let Some(region) = s.regions.get(g) {
                        used += region.used();
                        budget += region.capacity();
                    }
                }
            }
            devices.push(DeviceSnapshot {
                worker: m.worker_id(),
                gpu: g,
                model: gpu.spec().model.name().to_string(),
                state: device_state(gpu.health()),
                utilization: gpu.kernel_utilization(at),
                kernel_busy: gpu.kernel_busy(),
                copy_busy: gpu.copy_busy(),
                queue_depth: m.gstream.sched.queue_len(g),
                cache_used: used,
                cache_budget: budget,
                works_executed: m.executed_per_gpu()[g],
            });
        }
        let mut jobs = Vec::new();
        for &job in live_jobs {
            if let Some(s) = m.session(JobId(job)) {
                jobs.push(JobHealth {
                    job,
                    weight: s.weight(),
                    pen_depth: m.gstream.sched.pen_depth(JobId(job)),
                    queued_bytes: m.gstream.sched.queued_bytes_of(JobId(job)),
                    checkpoint_lag: if ckpt_on {
                        last_ticks.get(&job).map(|&t| at.saturating_sub(t))
                    } else {
                        None
                    },
                });
            }
        }
        workers.push(WorkerSnapshot {
            worker: m.worker_id(),
            usable_gpus: m.usable_gpus(),
            total_gpus: m.gpu_count(),
            devices,
            jobs,
            ledger: m.fault_ledger(),
        });
    }
    ClusterSnapshot {
        at,
        live_jobs: live_jobs.to_vec(),
        workers,
    }
}

/// The fabric's postmortem policy and dump archive: the SLO threshold,
/// where bundles are written, and the bundles themselves (kept in memory
/// for tests and reporting alongside the on-disk JSON).
pub(crate) struct Observer {
    /// The SLO the flight recorder watches.
    pub(crate) slo: SloPolicy,
    /// Directory postmortem bundles are written to.
    pub(crate) dir: PathBuf,
    /// All bundles dumped so far, in emission order.
    pub(crate) bundles: Vec<PostmortemBundle>,
    /// Per-job dump counter (bounds the archive and names the files).
    pub(crate) per_job: BTreeMap<u64, u64>,
}

/// Postmortem dumps retained per job; later triggers on the same job are
/// counted but not dumped, so a flapping device cannot flood the archive.
pub(crate) const MAX_POSTMORTEMS_PER_JOB: u64 = 8;

impl Default for Observer {
    fn default() -> Self {
        Observer {
            slo: SloPolicy::default(),
            dir: PathBuf::from("target/postmortem"),
            bundles: Vec::new(),
            per_job: BTreeMap::new(),
        }
    }
}

impl Observer {
    /// Record one trigger for `job`: archive the bundle and write it to
    /// disk unless the job already used up its dump budget. Disk errors
    /// are swallowed (observability must never fail the job).
    pub(crate) fn dump(
        &mut self,
        job: u64,
        reason: &str,
        at: SimTime,
        delta: FaultLedger,
        events: Vec<RecEvent>,
        snapshot_json: String,
    ) {
        let seq = self.per_job.entry(job).or_insert(0);
        if *seq >= MAX_POSTMORTEMS_PER_JOB {
            return;
        }
        let bundle = PostmortemBundle {
            job,
            seq: *seq,
            reason: reason.to_string(),
            at,
            ledger_delta: delta,
            events,
            snapshot_json,
        };
        *seq += 1;
        let _ = write_postmortem(&self.dir, &bundle);
        self.bundles.push(bundle);
    }
}

impl GpuFabric {
    /// Turn on the live metrics plane at the default sampling cadence and
    /// return the shared [`Metrics`] handle. Every worker layer registers
    /// its labelled series and keeps the minted handles; flight-recorder
    /// rings and postmortem dumps arm at the same time. Call before
    /// submitting work — counters accrue as works execute.
    pub fn enable_metrics(&self) -> Metrics {
        self.enable_metrics_with(Metrics::new(Metrics::DEFAULT_CADENCE))
    }

    /// [`enable_metrics`](Self::enable_metrics) with a caller-built plane
    /// (custom cadence).
    pub fn enable_metrics_with(&self, metrics: Metrics) -> Metrics {
        *self.metrics.lock() = metrics.clone();
        for m in self.managers.lock().iter_mut() {
            m.set_metrics(&metrics);
        }
        metrics
    }

    /// The fabric's metrics plane (disabled unless
    /// [`enable_metrics`](Self::enable_metrics) was called).
    pub fn metrics(&self) -> Metrics {
        self.metrics.lock().clone()
    }

    /// Set the SLO the flight recorder watches: any work whose end-to-end
    /// latency exceeds the policy triggers a postmortem dump (when the
    /// metrics plane is enabled).
    pub fn set_slo(&self, slo: SloPolicy) {
        self.observer.lock().slo = slo;
    }

    /// Redirect postmortem bundles to `dir` (default `target/postmortem`).
    pub fn set_postmortem_dir(&self, dir: impl Into<PathBuf>) {
        self.observer.lock().dir = dir.into();
    }

    /// All postmortem bundles dumped so far, in emission order.
    pub fn postmortems(&self) -> Vec<PostmortemBundle> {
        self.observer.lock().bundles.clone()
    }

    /// A point-in-time health view of the whole fabric at simulated
    /// instant `at`. Lock order matters: live jobs and checkpoint cursors
    /// are copied out first, then the managers are locked once.
    pub fn cluster_snapshot(&self, at: SimTime) -> ClusterSnapshot {
        let live: Vec<u64> = self.live_jobs.lock().iter().map(|j| j.0).collect();
        let (ckpt_on, last_ticks) = {
            let ck = self.ckpt.lock();
            let ticks = live
                .iter()
                .filter_map(|&j| ck.last_tick(j).map(|t| (j, t)))
                .collect();
            (ck.enabled(), ticks)
        };
        self.with_managers(|ms| build_cluster_snapshot(at, &live, &last_ticks, ckpt_on, ms))
    }
}

#![warn(clippy::too_many_lines)]

//! The recovery half of the GPUManager: typed failure taxonomy, the fault
//! plan/arming machinery, retry-with-backoff routing, the CPU fallback
//! path, and the fault ledgers.
//!
//! Fault/recovery counters are **double-entry**: every event is tallied on
//! the owning job's session ledger *and* mirrored into the worker-global
//! ledger. Work-scoped events (retries, transients, hangs, failures, CPU
//! fallbacks) charge the job that owned the work; device-scoped events
//! (injections, loss, degradation) charge every open session — a dead
//! device is every tenant's problem.

use crate::config::GpuWorkerConfig;
use crate::gwork::{CompletedWork, GWork, WorkTiming};
use crate::session::{JobId, JobSession};
use gflink_gpu::{DeviceError, KernelArgs, KernelRegistry};
use gflink_memory::{ArenaBuf, HBuffer};
use gflink_sim::trace::{cpu_pid, Cat, TraceEvent, TID_DEVICE};
use gflink_sim::{
    ComputeCost, Counter, EventQueue, FaultEvent, FaultLedger, FaultPlan, HostEngine,
    MembershipEvent, MembershipPlan, Metrics, RecEvent, RecKind, RetryPolicy, SimTime, Tracer,
};
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::Arc;

use crate::gstream::Ev;

/// `CompletedWork::gpu` marker for works executed on the host CPU because
/// no usable GPU remained.
pub const CPU_FALLBACK_GPU: usize = usize::MAX;

/// An error inside the GPU manager's execution paths.
#[derive(Clone, Debug, PartialEq)]
pub enum ManagerError {
    /// A work's buffers cannot fit on the device even after evicting the
    /// entire (unpinned) cache region.
    OutOfMemory {
        /// Device that ran out.
        gpu: usize,
        /// Logical bytes the allocation wanted.
        requested: u64,
        /// Logical bytes that were free.
        free: u64,
    },
    /// The work names a kernel the registry does not know.
    KernelMissing {
        /// The unresolved `executeName`.
        name: String,
    },
    /// A device operation failed underneath the manager.
    Device(DeviceError),
}

impl std::fmt::Display for ManagerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ManagerError::OutOfMemory {
                gpu,
                requested,
                free,
            } => write!(
                f,
                "device {gpu} out of memory: requested {requested} logical bytes with {free} free \
                 and an empty cache"
            ),
            ManagerError::KernelMissing { name } => write!(f, "kernel {name:?} not registered"),
            ManagerError::Device(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ManagerError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ManagerError::Device(e) => Some(e),
            _ => None,
        }
    }
}

impl From<DeviceError> for ManagerError {
    fn from(e: DeviceError) -> Self {
        ManagerError::Device(e)
    }
}

/// Why a [`FailedWork`] was abandoned.
#[derive(Clone, Debug, PartialEq)]
pub enum FailReason {
    /// The retry budget ([`RetryPolicy::max_retries`]) ran out.
    RetriesExhausted,
    /// The retry deadline ([`RetryPolicy::deadline`]) passed.
    DeadlineExceeded,
    /// Every GPU is lost and CPU fallback is disabled.
    NoUsableDevice,
    /// A non-retryable error (e.g. an unregistered kernel).
    Fatal(ManagerError),
}

/// A `GWork` the manager gave up on: the structured counterpart of
/// [`CompletedWork`]. Completions and failures partition the submitted
/// works exactly — nothing is silently dropped.
#[derive(Clone, Debug)]
pub struct FailedWork {
    /// The originating work's name.
    pub name: String,
    /// The originating work's tag (partition, block).
    pub tag: (u32, u32),
    /// How many times the work was retried before being abandoned.
    pub retries: u32,
    /// Why it was abandoned.
    pub reason: FailReason,
    /// When the work was first submitted.
    pub submitted: SimTime,
    /// When the manager gave up. Failure instants participate in makespan
    /// accounting the same way completion instants do.
    pub failed_at: SimTime,
}

/// CPU execution path used when no usable GPU remains.
#[derive(Clone, Debug)]
pub struct CpuFallback {
    /// Whether the fallback is allowed. When `false`, losing every GPU
    /// fails the remaining works with [`FailReason::NoUsableDevice`].
    pub enabled: bool,
    /// Concurrent host execution slots (task-slot pool).
    pub slots: usize,
    /// Roofline cost model for host kernel execution.
    pub cost: ComputeCost,
}

impl Default for CpuFallback {
    fn default() -> Self {
        CpuFallback {
            enabled: true,
            slots: 8,
            // A conservative host: ~50 GFLOP/s, ~20 GB/s sustained — roughly
            // 20× slower than the C2050 the paper's workers carry.
            cost: ComputeCost::new(SimTime::from_micros(5), 50e9, 20e9),
        }
    }
}

/// Live-metrics counter handles mirroring the fault ledger, all disabled
/// (free) until the metrics plane is attached.
#[derive(Clone, Default)]
struct RecCounters {
    retries: Counter,
    transients: Counter,
    hangs: Counter,
    steals_on_drain: Counter,
    invalidations: Counter,
    faults_injected: Counter,
    gpus_lost: Counter,
    gpus_degraded: Counter,
    members_joined: Counter,
    members_left: Counter,
    works_restored: Counter,
    works_failed: Counter,
    cpu_fallbacks: Counter,
    parked_abandoned: Counter,
}

/// The recovery half of the per-worker GPU manager.
pub struct RecoveryManager {
    retry: RetryPolicy,
    hang_timeout: SimTime,
    failure_rate: f64,
    cpu_fallback: CpuFallback,
    fault_plan: FaultPlan,
    /// Index of the first `fault_plan` event not yet scheduled into a drain.
    fault_cursor: usize,
    /// Scripted elastic-membership changes (joins/leaves), delivered into
    /// drains exactly once via `membership_cursor` — the fault plan's
    /// administrative twin.
    membership_plan: MembershipPlan,
    membership_cursor: usize,
    /// Scripted transient faults armed per GPU (consumed by next launches).
    pending_transient: Vec<u32>,
    /// Scripted hangs armed per GPU (consumed by next launches).
    pending_hang: Vec<u32>,
    /// Worker-global ledger: the sum over every session's ledger for
    /// work-scoped counters, single-entry for device-scoped ones.
    ledger: FaultLedger,
    failures: u64,
    /// The host CPU execution engine — shared by the last-resort fallback
    /// and the hybrid cost-model placement, so both account against the
    /// same slot timelines.
    host: HostEngine,
    tracer: Tracer,
    worker_id: usize,
    /// The live-metrics plane (gates flight-recorder pushes).
    metrics: Metrics,
    m: RecCounters,
}

impl RecoveryManager {
    pub(crate) fn new(cfg: &GpuWorkerConfig) -> Self {
        let cpu_fallback = cfg.cpu_fallback.clone();
        let host = HostEngine::new(cpu_fallback.cost, cpu_fallback.slots);
        RecoveryManager {
            retry: cfg.retry,
            hang_timeout: cfg.hang_timeout,
            failure_rate: cfg.failure_rate,
            cpu_fallback,
            fault_plan: FaultPlan::new(),
            fault_cursor: 0,
            membership_plan: MembershipPlan::new(),
            membership_cursor: 0,
            pending_transient: vec![0; cfg.models.len()],
            pending_hang: vec![0; cfg.models.len()],
            ledger: FaultLedger::default(),
            failures: 0,
            host,
            tracer: Tracer::disabled(),
            worker_id: 0,
            metrics: Metrics::disabled(),
            m: RecCounters::default(),
        }
    }

    /// Attach the live-metrics plane: registers this worker's
    /// fault/recovery counter series (the live mirror of the ledger).
    pub(crate) fn set_metrics(&mut self, metrics: &Metrics, worker_id: usize) {
        self.metrics = metrics.clone();
        self.worker_id = worker_id;
        let l = format!("{{worker=\"{worker_id}\"}}");
        let c = |name: &str, help: &str| metrics.counter(&format!("{name}{l}"), help);
        self.m = RecCounters {
            retries: c("gflink_retries_total", "Work retries scheduled"),
            transients: c(
                "gflink_transient_faults_total",
                "Transient kernel faults recovered",
            ),
            hangs: c("gflink_hangs_detected_total", "Hung kernels detected"),
            steals_on_drain: c(
                "gflink_steals_on_drain_total",
                "Works stolen off a dying device",
            ),
            invalidations: c(
                "gflink_cache_invalidations_total",
                "Cache entries invalidated by device loss",
            ),
            faults_injected: c("gflink_faults_injected_total", "Faults injected"),
            gpus_lost: c("gflink_gpus_lost_total", "Devices lost"),
            gpus_degraded: c("gflink_gpus_degraded_total", "Devices degraded"),
            members_joined: c("gflink_members_joined_total", "Elastic joins applied"),
            members_left: c("gflink_members_left_total", "Elastic leaves applied"),
            works_restored: c(
                "gflink_works_restored_total",
                "Works satisfied from a restored checkpoint",
            ),
            works_failed: c("gflink_works_failed_total", "Works abandoned"),
            cpu_fallbacks: c(
                "gflink_cpu_fallbacks_total",
                "Works executed on the host CPU",
            ),
            parked_abandoned: c(
                "gflink_parked_abandoned_total",
                "Parked works abandoned at job teardown",
            ),
        };
    }

    /// Attach a tracer: the worker's CPU-fallback pool gets its own trace
    /// process (thread 0 carries retry/failure instants, threads 1..=slots
    /// the fallback execution spans).
    pub(crate) fn set_tracer(&mut self, tracer: Tracer, worker_id: usize) {
        if tracer.enabled() {
            let pid = cpu_pid(worker_id);
            tracer.name_process(pid, &format!("worker{worker_id}/cpu"));
            tracer.name_thread(pid, TID_DEVICE, "recovery");
            for s in 0..self.host.slots() {
                tracer.name_thread(pid, 1 + s as u32, &format!("cpu slot {s}"));
            }
        }
        self.tracer = tracer;
        self.worker_id = worker_id;
    }

    pub(crate) fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.fault_plan = plan;
        self.fault_cursor = 0;
    }

    /// Scripted faults not yet delivered into any drain; advances the
    /// cursor so each fault enters an event queue exactly once.
    pub(crate) fn take_unscheduled_faults(&mut self) -> Vec<FaultEvent> {
        let evs = self.fault_plan.events()[self.fault_cursor..].to_vec();
        self.fault_cursor = self.fault_plan.events().len();
        evs
    }

    pub(crate) fn set_membership_plan(&mut self, plan: MembershipPlan) {
        self.membership_plan = plan;
        self.membership_cursor = 0;
    }

    /// Scripted membership changes not yet delivered into any drain;
    /// advances the cursor so each change applies exactly once.
    pub(crate) fn take_unscheduled_membership(&mut self) -> Vec<MembershipEvent> {
        let evs = self.membership_plan.events()[self.membership_cursor..].to_vec();
        self.membership_cursor = self.membership_plan.events().len();
        evs
    }

    /// Grow the armed-fault state for a device that joined the complement.
    pub(crate) fn grow_device(&mut self) {
        self.pending_transient.push(0);
        self.pending_hang.push(0);
    }

    /// Worker-global cumulative fault/recovery counters.
    pub fn ledger(&self) -> FaultLedger {
        self.ledger
    }

    /// Injected kernel failures recovered from (random `failure_rate` plus
    /// scripted transients).
    pub fn failures(&self) -> u64 {
        self.failures
    }

    /// Watchdog timeout for hung kernels.
    pub fn hang_timeout(&self) -> SimTime {
        self.hang_timeout
    }

    /// Arm one scripted transient kernel fault on `gpu`.
    pub(crate) fn arm_transient(&mut self, gpu: usize) {
        self.pending_transient[gpu] += 1;
    }

    /// Arm one scripted kernel hang on `gpu`.
    pub(crate) fn arm_hang(&mut self, gpu: usize) {
        self.pending_hang[gpu] += 1;
    }

    /// Consume one armed transient fault on `gpu`, if any.
    pub(crate) fn take_transient(&mut self, gpu: usize) -> bool {
        if self.pending_transient[gpu] > 0 {
            self.pending_transient[gpu] -= 1;
            true
        } else {
            false
        }
    }

    /// Consume one armed hang on `gpu`, if any.
    pub(crate) fn take_hang(&mut self, gpu: usize) -> bool {
        if self.pending_hang[gpu] > 0 {
            self.pending_hang[gpu] -= 1;
            true
        } else {
            false
        }
    }

    /// Random transient injection at `failure_rate`. Callers must evaluate
    /// this *after* (and short-circuited by) the scripted check so the RNG
    /// draw order — and with it every seeded timeline — is preserved.
    pub(crate) fn random_transient(&mut self, rng: &mut gflink_sim::SimRng) -> bool {
        self.failure_rate > 0.0 && rng.next_f64() < self.failure_rate
    }

    // --- double-entry ledger notes -------------------------------------

    pub(crate) fn note_retry(&mut self, session: &mut JobSession) {
        self.ledger.retries += 1;
        session.ledger_mut().retries += 1;
        self.m.retries.inc();
    }

    pub(crate) fn note_transient_fault(&mut self, session: &mut JobSession) {
        self.failures += 1;
        self.ledger.transient_faults += 1;
        session.ledger_mut().transient_faults += 1;
        self.m.transients.inc();
    }

    pub(crate) fn note_hang_detected(&mut self, session: &mut JobSession) {
        self.ledger.hangs_detected += 1;
        session.ledger_mut().hangs_detected += 1;
        self.m.hangs.inc();
    }

    pub(crate) fn note_steal_on_drain(&mut self, session: &mut JobSession) {
        self.ledger.steals_on_drain += 1;
        session.ledger_mut().steals_on_drain += 1;
        self.m.steals_on_drain.inc();
    }

    pub(crate) fn note_invalidations(&mut self, session: &mut JobSession, n: u64) {
        self.ledger.cache_invalidations += n;
        session.ledger_mut().cache_invalidations += n;
        self.m.invalidations.add(n);
    }

    /// Device-scoped: a fault was injected. Charged to every open session.
    pub(crate) fn note_fault_injected(&mut self, sessions: &mut BTreeMap<JobId, JobSession>) {
        self.ledger.faults_injected += 1;
        for s in sessions.values_mut() {
            s.ledger_mut().faults_injected += 1;
        }
        self.m.faults_injected.inc();
    }

    /// Device-scoped: a GPU was lost. Charged to every open session.
    pub(crate) fn note_gpu_lost(&mut self, sessions: &mut BTreeMap<JobId, JobSession>) {
        self.ledger.gpus_lost += 1;
        for s in sessions.values_mut() {
            s.ledger_mut().gpus_lost += 1;
        }
        self.m.gpus_lost.inc();
    }

    /// Device-scoped: a GPU was degraded. Charged to every open session.
    pub(crate) fn note_gpu_degraded(&mut self, sessions: &mut BTreeMap<JobId, JobSession>) {
        self.ledger.gpus_degraded += 1;
        for s in sessions.values_mut() {
            s.ledger_mut().gpus_degraded += 1;
        }
        self.m.gpus_degraded.inc();
    }

    /// Device-scoped: a node joined the complement. Charged to every open
    /// session — each tenant's dispatch targets just changed.
    pub(crate) fn note_member_joined(&mut self, sessions: &mut BTreeMap<JobId, JobSession>) {
        self.ledger.members_joined += 1;
        for s in sessions.values_mut() {
            s.ledger_mut().members_joined += 1;
        }
        self.m.members_joined.inc();
    }

    /// Device-scoped: a node left the complement gracefully.
    pub(crate) fn note_member_left(&mut self, sessions: &mut BTreeMap<JobId, JobSession>) {
        self.ledger.members_left += 1;
        for s in sessions.values_mut() {
            s.ledger_mut().members_left += 1;
        }
        self.m.members_left.inc();
    }

    /// Work-scoped: a submission was satisfied from a restored checkpoint
    /// instead of executing.
    pub(crate) fn note_work_restored(&mut self, session: &mut JobSession) {
        self.ledger.works_restored += 1;
        session.ledger_mut().works_restored += 1;
        self.m.works_restored.inc();
    }

    /// Work-scoped: `n` of the job's works were still parked (penned or
    /// pending) when the job was torn down.
    pub(crate) fn note_parked_abandoned(&mut self, session: &mut JobSession, n: u64) {
        self.ledger.parked_abandoned += n;
        session.ledger_mut().parked_abandoned += n;
        self.m.parked_abandoned.add(n);
    }

    // --- retry / fail / CPU fallback -----------------------------------

    /// The terminal [`FailReason`] `retry_or_fail` would record for a work
    /// in this state, or `None` while the policy still allows a retry. A
    /// [`FailReason::Fatal`] wrapping [`ManagerError::KernelMissing`] is
    /// always terminal (no later attempt can succeed). Callers that must
    /// intercept a permanent failure (split children fail their *parent*
    /// block, never their synthetic tag) consult this before handing the
    /// work to [`RecoveryManager::retry_or_fail`].
    pub(crate) fn terminal_reason(
        &self,
        reason: &FailReason,
        retries: u32,
        spent: SimTime,
    ) -> Option<FailReason> {
        if let FailReason::Fatal(ManagerError::KernelMissing { .. }) = reason {
            return Some(reason.clone());
        }
        if self.retry.allows(retries, spent) {
            None
        } else if retries >= self.retry.max_retries {
            Some(FailReason::RetriesExhausted)
        } else {
            Some(FailReason::DeadlineExceeded)
        }
    }

    /// Route a recovered work back through Alg. 5.1 after its policy
    /// backoff, or give up with a structured [`FailedWork`] carrying the
    /// terminal reason from [`RecoveryManager::terminal_reason`].
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn retry_or_fail(
        &mut self,
        session: &mut JobSession,
        job: JobId,
        work: GWork,
        submitted: SimTime,
        retries: u32,
        now: SimTime,
        reason: FailReason,
        q: &mut EventQueue<Ev>,
    ) {
        let spent = now.saturating_sub(submitted);
        if let Some(terminal) = self.terminal_reason(&reason, retries, spent) {
            self.fail_work(session, work, submitted, retries, now, terminal);
            return;
        }
        self.note_retry(session);
        if self.metrics.enabled() {
            session.recorder.push(
                RecEvent::new(now, RecKind::Retry, self.worker_id as u32)
                    .with_detail(u64::from(retries + 1)),
            );
        }
        let delay = self.retry.backoff(retries);
        let at = SimTime::from_nanos(now.as_nanos().saturating_add(delay.as_nanos()));
        if self.tracer.enabled() {
            self.tracer.record(
                TraceEvent::instant(
                    cpu_pid(self.worker_id),
                    TID_DEVICE,
                    Cat::Recovery,
                    "retry",
                    now,
                )
                .with_job(job.0)
                .with_arg("op", &work.name)
                .with_arg("attempt", retries + 1),
            );
        }
        q.schedule(at, Ev::submit(job, submitted, retries + 1, work));
    }

    pub(crate) fn fail_work(
        &mut self,
        session: &mut JobSession,
        work: GWork,
        submitted: SimTime,
        retries: u32,
        now: SimTime,
        reason: FailReason,
    ) {
        self.fail_named(
            session, &work.name, work.tag, retries, submitted, now, reason,
        );
    }

    /// [`RecoveryManager::fail_work`] by identity rather than by `GWork`:
    /// lets split-block reassembly fail a *parent* whose `GWork` no longer
    /// exists (only its sliced children do).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn fail_named(
        &mut self,
        session: &mut JobSession,
        name: &str,
        tag: (u32, u32),
        retries: u32,
        submitted: SimTime,
        now: SimTime,
        reason: FailReason,
    ) {
        self.ledger.works_failed += 1;
        session.ledger_mut().works_failed += 1;
        self.m.works_failed.inc();
        if self.metrics.enabled() {
            session.recorder.push(
                RecEvent::new(now, RecKind::WorkFailed, self.worker_id as u32)
                    .with_detail(u64::from(retries)),
            );
        }
        if self.tracer.enabled() {
            self.tracer.record(
                TraceEvent::instant(
                    cpu_pid(self.worker_id),
                    TID_DEVICE,
                    Cat::Recovery,
                    "work-failed",
                    now,
                )
                .with_arg("op", name)
                .with_arg("reason", format!("{reason:?}")),
            );
        }
        session.failed.push(FailedWork {
            name: name.to_string(),
            tag,
            retries,
            reason,
            submitted,
            failed_at: now,
        });
    }

    /// The host CPU engine (slot pool + roofline), shared by the fallback
    /// path and the hybrid cost-model placement.
    pub(crate) fn host(&self) -> &HostEngine {
        &self.host
    }

    /// Whether the host CPU execution path may be used at all.
    pub(crate) fn host_enabled(&self) -> bool {
        self.cpu_fallback.enabled
    }

    /// Really execute `work`'s kernel over its host buffers and reserve a
    /// host slot for the modelled duration. No H2D/D2H is charged — the
    /// data never leaves host memory. Pure execution + accounting: the
    /// caller owns ledgers, traces, and completion routing.
    pub(crate) fn exec_on_host(
        &mut self,
        registry: &Arc<Mutex<KernelRegistry>>,
        work: &GWork,
        t: SimTime,
    ) -> Result<HostExec, ManagerError> {
        let kernel = {
            let reg = registry.lock();
            // Works normally arrive interned; hand-built ones that never
            // passed through a submission fall back to the name lookup.
            reg.get_by_id(work.kernel)
                .cloned()
                .or_else(|| reg.get(&work.execute_name))
        };
        let Some(kernel) = kernel else {
            return Err(ManagerError::KernelMissing {
                name: work.execute_name.to_string(),
            });
        };
        let mut out_host = HBuffer::zeroed(work.out_actual_bytes);
        let profile = {
            let inputs: Vec<&HBuffer> = work.inputs.iter().map(|b| b.data.as_ref()).collect();
            let mut args = KernelArgs {
                inputs: &inputs,
                outputs: &mut [&mut out_host],
                params: &work.params,
                n_actual: work.n_actual,
                n_logical: work.n_logical,
            };
            kernel(&mut args)
        };
        let (slot, r) = self.host.run(t, profile.flops, profile.bytes);
        Ok(HostExec {
            slot,
            start: r.start,
            end: r.end,
            out: out_host,
            emitted: profile.emitted,
        })
    }

    /// Last-resort execution on the host CPU: every GPU is lost. Returns
    /// the completion for the caller to route (split children merge rather
    /// than complete directly). `Err` hands the work back with its terminal
    /// failure reason — the caller owns failure routing too, because a
    /// split child must fail its *parent* block, not its synthetic tag.
    /// (`Err` carries the `GWork` back by value on purpose — the caller
    /// re-routes it — so the variant is as large as a work descriptor.)
    #[allow(clippy::result_large_err)]
    pub(crate) fn run_on_cpu(
        &mut self,
        session: &mut JobSession,
        job: JobId,
        registry: &Arc<Mutex<KernelRegistry>>,
        work: GWork,
        submitted: SimTime,
        t: SimTime,
    ) -> Result<CompletedWork, (GWork, FailReason)> {
        if !self.cpu_fallback.enabled {
            return Err((work, FailReason::NoUsableDevice));
        }
        let he = match self.exec_on_host(registry, &work, t) {
            Ok(he) => he,
            Err(err) => return Err((work, FailReason::Fatal(err))),
        };
        self.ledger.cpu_fallbacks += 1;
        session.ledger_mut().cpu_fallbacks += 1;
        self.m.cpu_fallbacks.inc();
        if self.metrics.enabled() {
            session.recorder.push(RecEvent::new(
                t,
                RecKind::CpuFallback,
                self.worker_id as u32,
            ));
        }
        if self.tracer.enabled() {
            self.tracer.record(
                TraceEvent::span(
                    cpu_pid(self.worker_id),
                    1 + he.slot as u32,
                    Cat::Cpu,
                    &*work.name,
                    he.start,
                    he.end,
                )
                .with_job(job.0)
                .with_arg("fallback", "all GPUs lost"),
            );
        }
        Ok(he.into_completed(work, submitted))
    }
}

/// One kernel execution on the host slot pool, before it is accounted:
/// where it ran, when, and what it produced.
pub(crate) struct HostExec {
    /// Host slot index the reservation landed on.
    pub(crate) slot: usize,
    /// Reservation start (queueing behind busy slots included).
    pub(crate) start: SimTime,
    /// Reservation end.
    pub(crate) end: SimTime,
    /// The real output buffer the kernel wrote.
    pub(crate) out: HBuffer,
    /// Records emitted, when the kernel reported them.
    pub(crate) emitted: Option<usize>,
}

impl HostExec {
    /// Package the execution as a [`CompletedWork`] (host executions charge
    /// no transfer time: the data never left host memory).
    pub(crate) fn into_completed(self, work: GWork, submitted: SimTime) -> CompletedWork {
        CompletedWork {
            name: work.name,
            tag: work.tag,
            gpu: CPU_FALLBACK_GPU,
            stream: self.slot,
            output: ArenaBuf::detached(self.out),
            emitted: self.emitted,
            timing: WorkTiming {
                submitted,
                started: self.start,
                h2d: SimTime::ZERO,
                kernel: self.end.saturating_sub(self.start),
                d2h: SimTime::ZERO,
                completed: self.end,
                cache_hits: 0,
                cache_misses: 0,
                bytes_h2d: 0,
                bytes_d2h: 0,
            },
        }
    }
}

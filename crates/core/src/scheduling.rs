//! Scheduling policies for the GStreamManager.
//!
//! The paper's contribution is the **adaptive locality-aware** scheme
//! (Algorithms 5.1 and 5.2). The alternative policies exist for the
//! ablation benchmark: round-robin (classic GPU sharing without locality)
//! and random (the degenerate baseline).

/// How the GWork scheduler picks a GPU/stream for submitted work.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SchedulingPolicy {
    /// Algorithms 5.1 + 5.2: prefer the GPU caching the most input bytes,
    /// balance across stream bulks by idle-stream count, queue per GPU and
    /// steal from the fullest queue.
    LocalityAware,
    /// Ignore locality: GPUs taken in rotation.
    RoundRobin,
    /// Ignore locality: GPUs drawn from a seeded PRNG.
    Random {
        /// PRNG seed (determinism).
        seed: u64,
    },
    /// LocalityAware placement but stealing disabled (Alg. 5.2 off) — for
    /// the work-stealing ablation.
    LocalityNoSteal,
    /// Hybrid CPU+GPU placement (ISSUE 9): an online cost model predicts
    /// completion time per device class (queue + transfer + kernel) and
    /// routes each GWork to the winner — the host CPU pool included — and
    /// may split large blocks across both. GPU-side placement is
    /// Alg. 5.1 with Alg. 5.2 stealing, so when the GPUs win every
    /// prediction this degenerates to `LocalityAware` exactly.
    HybridCostModel,
}

impl SchedulingPolicy {
    /// Short label for reports.
    pub fn label(self) -> &'static str {
        match self {
            SchedulingPolicy::LocalityAware => "locality-aware",
            SchedulingPolicy::RoundRobin => "round-robin",
            SchedulingPolicy::Random { .. } => "random",
            SchedulingPolicy::LocalityNoSteal => "locality-no-steal",
            SchedulingPolicy::HybridCostModel => "hybrid-cost-model",
        }
    }

    /// Whether Alg. 5.2 stealing is active.
    pub fn steals(self) -> bool {
        !matches!(self, SchedulingPolicy::LocalityNoSteal)
    }

    /// Whether cache locality informs placement.
    pub fn locality_aware(self) -> bool {
        matches!(
            self,
            SchedulingPolicy::LocalityAware
                | SchedulingPolicy::LocalityNoSteal
                | SchedulingPolicy::HybridCostModel
        )
    }
}

/// How queued GWorks are arbitrated *across jobs* within one GPU's queue
/// (the multi-tenant axis, orthogonal to [`SchedulingPolicy`]'s choice of
/// device).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ArbitrationPolicy {
    /// Strict arrival order, jobs interleaved exactly as they queued. The
    /// default: byte-identical to the single-tenant queues.
    #[default]
    Fifo,
    /// Deficit round-robin over per-job lanes: each visit credits a lane
    /// `quantum_bytes × weight` and the lane dispatches while its deficit
    /// covers the head work's byte cost (input + output logical bytes, the
    /// kernel-time proxy). A saturating tenant can then delay a light
    /// tenant by at most one quantum per rotation, never by its whole
    /// backlog.
    WeightedFair {
        /// Byte credit granted per rotation visit per unit weight.
        quantum_bytes: u64,
    },
}

impl ArbitrationPolicy {
    /// Short label for reports.
    pub fn label(self) -> &'static str {
        match self {
            ArbitrationPolicy::Fifo => "fifo",
            ArbitrationPolicy::WeightedFair { .. } => "weighted-fair",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arbitration_labels() {
        assert_eq!(ArbitrationPolicy::Fifo.label(), "fifo");
        assert_eq!(
            ArbitrationPolicy::WeightedFair {
                quantum_bytes: 1 << 18
            }
            .label(),
            "weighted-fair"
        );
        assert_eq!(ArbitrationPolicy::default(), ArbitrationPolicy::Fifo);
    }

    #[test]
    fn labels_and_flags() {
        assert_eq!(SchedulingPolicy::LocalityAware.label(), "locality-aware");
        assert!(SchedulingPolicy::LocalityAware.steals());
        assert!(SchedulingPolicy::LocalityAware.locality_aware());
        assert!(!SchedulingPolicy::RoundRobin.locality_aware());
        assert!(SchedulingPolicy::RoundRobin.steals());
        assert!(!SchedulingPolicy::LocalityNoSteal.steals());
        assert!(SchedulingPolicy::LocalityNoSteal.locality_aware());
        assert_eq!(SchedulingPolicy::Random { seed: 1 }.label(), "random");
        assert_eq!(
            SchedulingPolicy::HybridCostModel.label(),
            "hybrid-cost-model"
        );
        assert!(SchedulingPolicy::HybridCostModel.steals());
        assert!(SchedulingPolicy::HybridCostModel.locality_aware());
    }
}

//! Per-job sessions: the unit of tenant isolation on a shared fabric.
//!
//! The paper gives every job its own GPU cache region (§4.2.2: "a cache
//! region is created when a job starts and released when it finishes").
//! [`JobSession`] generalizes that rule to *all* mutable per-job state the
//! GPUManager holds: the cache regions, the not-yet-drained submissions,
//! the completions and structured failures, and the job's fault/recovery
//! ledger. A session is created by `GpuManager::begin_job` and destroyed by
//! `GpuManager::end_job`, so when a job finishes nothing of it can leak
//! into the next tenant on the same devices.

use crate::cache::GpuCache;
use crate::gwork::{CompletedWork, GWork};
use crate::recovery::FailedWork;
use gflink_sim::{
    FaultLedger, FlightRecorder, LedgerWindow, LogHistogram, RecEvent, SimTime, Summary,
};
use std::collections::BTreeSet;

/// Identity of one submitted job on a worker's GPU manager.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct JobId(pub u64);

impl std::fmt::Display for JobId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "job#{}", self.0)
    }
}

/// All mutable per-job state on one worker's GPU manager.
pub struct JobSession {
    /// One GPU cache region per device (§4.2.2) — eviction pressure from
    /// this job can only evict this job's blocks.
    pub(crate) regions: Vec<GpuCache>,
    /// Works submitted but not yet picked up by a drain.
    pub(crate) pending: Vec<(SimTime, GWork)>,
    /// Completions waiting to be taken by this job's drain.
    pub(crate) completed: Vec<CompletedWork>,
    /// Works the manager gave up on, in failure order.
    pub(crate) failed: Vec<FailedWork>,
    /// The job's fault/recovery counters, with a delta mark for reporting.
    pub(crate) ledger: LedgerWindow,
    /// Alg. 5.2 steals that served this job's works.
    pub(crate) steals: u64,
    /// Fused transfer batches that carried this job's works.
    pub(crate) batches: u64,
    /// Works that travelled inside fused batches.
    pub(crate) batched_works: u64,
    /// Per-call transfer overhead (α) saved by fusing this job's copies.
    pub(crate) alpha_saved: SimTime,
    /// Distribution of fused batch sizes (works per batch).
    pub(crate) batch_sizes: Summary,
    /// Fair-share weight under weighted-fair arbitration and cache
    /// partitioning (1 = baseline tenant).
    pub(crate) weight: u32,
    /// Submissions parked in the backpressure pen (queued-bytes cap).
    pub(crate) parked_works: u64,
    /// Total simulated time this job's works sat penned before release.
    pub(crate) park_delay: SimTime,
    /// Tags covered by a restored checkpoint: a submission carrying one
    /// of these is satisfied from the snapshot (counted as
    /// `works_restored`) instead of executing — the exactly-once dedup
    /// across the restore boundary.
    pub(crate) covered: BTreeSet<(u32, u32)>,
    /// The job's flight recorder: a bounded ring of recent structured
    /// fault/recovery events. Only fed while the metrics plane is
    /// enabled, so the default path allocates and pays nothing.
    pub(crate) recorder: FlightRecorder,
    /// Pen-delay histogram (per release, not the cumulative `park_delay`),
    /// merged into the job's SLO rollup at teardown.
    pub(crate) pen_hist: LogHistogram,
    /// Works the hybrid cost model routed to a GPU (it would have chosen
    /// the host otherwise; Alg. 5.1 picked the device).
    pub(crate) hybrid_gpu: u64,
    /// Works the hybrid cost model routed to the host CPU pool by choice
    /// (distinct from `cpu_fallbacks`, the no-GPU-left path).
    pub(crate) hybrid_cpu: u64,
    /// Blocks the hybrid cost model split across CPU and GPU.
    pub(crate) hybrid_splits: u64,
    /// Relative prediction error per hybrid-placed completion, in basis
    /// points (1/100 of a percent) — the observed-vs-predicted gauge.
    pub(crate) hybrid_err: LogHistogram,
}

impl JobSession {
    pub(crate) fn new(regions: Vec<GpuCache>, weight: u32) -> Self {
        JobSession {
            regions,
            pending: Vec::new(),
            completed: Vec::new(),
            failed: Vec::new(),
            ledger: LedgerWindow::default(),
            steals: 0,
            batches: 0,
            batched_works: 0,
            alpha_saved: SimTime::ZERO,
            batch_sizes: Summary::new(),
            weight: weight.max(1),
            parked_works: 0,
            park_delay: SimTime::ZERO,
            covered: BTreeSet::new(),
            recorder: FlightRecorder::default(),
            pen_hist: LogHistogram::new(),
            hybrid_gpu: 0,
            hybrid_cpu: 0,
            hybrid_splits: 0,
            hybrid_err: LogHistogram::new(),
        }
    }

    /// The job's recent flight-recorder events, oldest first (empty when
    /// the metrics plane is off).
    pub fn flight_events(&self) -> Vec<RecEvent> {
        self.recorder.events()
    }

    /// Pen-delay histogram over this job's released penned works.
    pub fn pen_histogram(&self) -> &LogHistogram {
        &self.pen_hist
    }

    /// Works the hybrid cost model placed on a GPU.
    pub fn hybrid_gpu(&self) -> u64 {
        self.hybrid_gpu
    }

    /// Works the hybrid cost model placed on the host CPU pool by choice.
    pub fn hybrid_cpu(&self) -> u64 {
        self.hybrid_cpu
    }

    /// Blocks the hybrid cost model split across CPU and GPU.
    pub fn hybrid_splits(&self) -> u64 {
        self.hybrid_splits
    }

    /// Relative prediction-error histogram (basis points) over this job's
    /// hybrid-placed completions.
    pub fn hybrid_err(&self) -> &LogHistogram {
        &self.hybrid_err
    }

    /// Tags this session will satisfy from a restored checkpoint.
    pub fn covered_tags(&self) -> &BTreeSet<(u32, u32)> {
        &self.covered
    }

    /// Fair-share weight under weighted-fair arbitration (1 = baseline).
    pub fn weight(&self) -> u32 {
        self.weight
    }

    /// Submissions parked in the backpressure pen (queued-bytes cap).
    pub fn parked_works(&self) -> u64 {
        self.parked_works
    }

    /// Total simulated time this job's works sat penned before release.
    pub fn park_delay(&self) -> SimTime {
        self.park_delay
    }

    /// Alg. 5.2 steals that served this job's works.
    pub fn steals(&self) -> u64 {
        self.steals
    }

    /// Fused transfer batches that carried this job's works.
    pub fn batches(&self) -> u64 {
        self.batches
    }

    /// Works that travelled inside fused batches.
    pub fn batched_works(&self) -> u64 {
        self.batched_works
    }

    /// Per-call transfer overhead (α) saved by fusing this job's copies.
    pub fn alpha_saved(&self) -> SimTime {
        self.alpha_saved
    }

    /// Distribution of fused batch sizes (works per batch).
    pub fn batch_sizes(&self) -> &Summary {
        &self.batch_sizes
    }

    /// The job's cache region on device `gpu`.
    pub fn region(&self, gpu: usize) -> &GpuCache {
        &self.regions[gpu]
    }

    /// Works this job gave up on, in failure order.
    pub fn failed(&self) -> &[FailedWork] {
        &self.failed
    }

    /// The job's cumulative fault/recovery ledger.
    pub fn faults(&self) -> FaultLedger {
        self.ledger.total()
    }

    pub(crate) fn ledger_mut(&mut self) -> &mut FaultLedger {
        self.ledger.total_mut()
    }
}

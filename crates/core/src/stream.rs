//! Streaming execution over the GPU fabric — the paper's declared future
//! direction.
//!
//! §1 justifies building on Flink (rather than Spark) by "the needs of
//! future expansion for a better streaming processing implementation":
//! Flink treats batch as a special case of streaming. This module supplies
//! that expansion: records arrive continuously at a configured rate, are
//! grouped into micro-batches (the natural GPU block granularity of §5.1),
//! and each batch flows through a registered kernel on the worker's
//! [`GpuManager`] — producer/consumer decoupling, pipelining and
//! scheduling all apply unchanged. Per-batch latency (completion −
//! arrival) is the quantity of interest: a stable latency profile means
//! the operator sustains the offered rate; a diverging one means
//! backpressure.

use crate::gdst::{GRecord, GpuFabric, GpuMapSpec, OutMode};
use crate::gwork::{GWork, WorkBuf};
use gflink_flink::{ClusterConfig, CpuSpec, OpCost};
use gflink_memory::{DataLayout, HBuffer, RecordReader, RecordView};
use gflink_sim::{SimTime, Summary};
use std::sync::Arc;

/// A continuous source: `rate` logical records per second for `duration`,
/// chopped into micro-batches of `batch_logical` records.
#[derive(Clone, Debug)]
pub struct StreamSource {
    /// Offered load, logical records per second.
    pub rate: f64,
    /// How long the stream runs.
    pub duration: SimTime,
    /// Logical records per micro-batch.
    pub batch_logical: u64,
    /// Actual records materialized per micro-batch.
    pub batch_actual: usize,
}

impl StreamSource {
    /// Number of micro-batches the source emits.
    pub fn num_batches(&self) -> usize {
        ((self.rate * self.duration.as_secs_f64()) / self.batch_logical as f64).floor() as usize
    }

    /// Arrival instant of batch `i` (the time its last record arrives).
    pub fn arrival(&self, i: usize) -> SimTime {
        let per_batch = self.batch_logical as f64 / self.rate;
        SimTime::from_secs_f64(per_batch * (i + 1) as f64)
    }
}

/// Latency/throughput report for one streaming run.
#[derive(Clone, Debug)]
pub struct StreamReport {
    /// Micro-batches processed.
    pub batches: usize,
    /// Per-batch latency summary (seconds).
    pub latency: Summary,
    /// Latency of the final batch — diverges under backpressure.
    pub last_latency: SimTime,
    /// When the last batch completed.
    pub finished_at: SimTime,
}

impl StreamReport {
    /// Whether the operator kept up: the last batch's latency is within
    /// `factor` of the mean (no queue growth).
    pub fn sustained(&self, factor: f64) -> bool {
        self.last_latency.as_secs_f64() <= self.latency.mean() * factor
    }

    /// Effective throughput, logical records per second.
    pub fn throughput(&self, source: &StreamSource) -> f64 {
        source.batch_logical as f64 * self.batches as f64 / self.finished_at.as_secs_f64()
    }
}

/// Run a streaming map on the **CPU**: each batch occupies one task slot of
/// a round-robin worker/slot from its arrival instant.
pub fn run_cpu_stream<T, U>(
    cluster_cfg: &ClusterConfig,
    source: &StreamSource,
    cost: OpCost,
    gen: impl Fn(u64) -> T,
    op: impl Fn(&T) -> U,
) -> StreamReport {
    let cpu: CpuSpec = cluster_cfg.cpu;
    let slots = cluster_cfg.num_workers * cluster_cfg.slots_per_worker;
    let mut slot_free = vec![SimTime::ZERO; slots];
    let mut latency = Summary::new();
    let mut last_latency = SimTime::ZERO;
    let mut finished = SimTime::ZERO;
    let n = source.num_batches();
    for i in 0..n {
        let arrival = source.arrival(i);
        // Execute the operator for real on the batch's actual records.
        for j in 0..source.batch_actual {
            let _ = op(&gen((i * source.batch_actual + j) as u64));
        }
        let dur = cpu.time_for(&cost, source.batch_logical as f64);
        let slot = &mut slot_free[i % slots];
        let start = arrival.max(*slot);
        let end = start + dur;
        *slot = end;
        let lat = end - arrival;
        latency.add_time(lat);
        last_latency = lat;
        finished = finished.max(end);
    }
    StreamReport {
        batches: n,
        latency,
        last_latency,
        finished_at: finished,
    }
}

/// Run a streaming map on **GFlink's GPU fabric**: each micro-batch becomes
/// one [`GWork`] submitted at its arrival instant; the GStreamManager's
/// pipeline and scheduling absorb the stream.
#[allow(clippy::too_many_arguments)]
pub fn run_gpu_stream<T: GRecord, U: GRecord>(
    fabric: &GpuFabric,
    num_workers: usize,
    source: &StreamSource,
    kernel: &str,
    params: Vec<f64>,
    gen: impl Fn(u64) -> T,
    check: impl Fn(&[U]),
) -> StreamReport {
    let def = T::def();
    let out_def = U::def();
    let spec = GpuMapSpec::new(kernel)
        .uncached() // streaming batches are seen once
        .with_params(params)
        .with_out_mode(OutMode::PerRecord);
    let n = source.num_batches();
    let job = fabric.open_job().expect("stream job admitted");
    // Submit every batch to its (round-robin) worker's manager.
    {
        for i in 0..n {
            let arrival = source.arrival(i);
            let rows = source.batch_actual;
            let mut buf = HBuffer::zeroed(RecordView::required_bytes(&def, DataLayout::Aos, rows));
            {
                let mut view = RecordView::new(&mut buf, &def, DataLayout::Aos, rows);
                for j in 0..rows {
                    gen((i * rows + j) as u64).store(&mut view, j);
                }
            }
            let logical_bytes = source.batch_logical * def.size() as u64;
            let out_rows = rows;
            let work = GWork {
                name: format!("stream-batch-{i}").into(),
                execute_name: Arc::clone(&spec.kernel),
                kernel: spec.kernel_id,
                ptx_path: Arc::clone(&spec.ptx_path),
                block_size: spec.block_size,
                grid_size: (source.batch_logical as u32).div_ceil(spec.block_size.max(1)),
                inputs: vec![WorkBuf::transient(Arc::new(buf), logical_bytes)],
                out_actual_bytes: RecordView::required_bytes(&out_def, DataLayout::Aos, out_rows),
                out_logical_bytes: source.batch_logical * out_def.size() as u64,
                out_records: out_rows,
                params: Arc::clone(&spec.params),
                n_actual: rows,
                n_logical: source.batch_logical,
                coalescing: 1.0,
                tag: ((i % num_workers) as u32, i as u32),
            };
            job.submit_to(i % num_workers, work, arrival);
        }
    }
    // Drain and collect per-batch latencies.
    let mut latency = Summary::new();
    let mut per_batch: Vec<Option<SimTime>> = vec![None; n];
    let mut finished = SimTime::ZERO;
    for w in 0..num_workers {
        for done in job.drain_worker(w) {
            let i = done.tag.1 as usize;
            let rows = done.output.len() / out_def.size().max(1);
            let reader = RecordReader::new(&done.output, &out_def, DataLayout::Aos, rows);
            let records: Vec<U> = (0..rows).map(|j| U::load(&reader, j)).collect();
            check(&records);
            per_batch[i] = Some(done.timing.completed);
            finished = finished.max(done.timing.completed);
        }
    }
    job.finish();
    let mut last_latency = SimTime::ZERO;
    for (i, completed) in per_batch.iter().enumerate() {
        let completed = completed.expect("batch lost in the stream");
        let lat = completed.saturating_sub(source.arrival(i));
        latency.add_time(lat);
        last_latency = lat;
    }
    StreamReport {
        batches: n,
        latency,
        last_latency,
        finished_at: finished,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gdst::FabricConfig;
    use gflink_gpu::{KernelArgs, KernelProfile};
    use gflink_memory::{AlignClass, FieldDef, GStructDef, PrimType};

    #[derive(Clone, Debug, PartialEq)]
    struct Sample {
        v: f32,
    }
    impl GRecord for Sample {
        fn def() -> GStructDef {
            GStructDef::new(
                "Sample",
                AlignClass::Align4,
                vec![FieldDef::scalar("v", PrimType::F32)],
            )
        }
        fn store(&self, view: &mut RecordView<'_>, idx: usize) {
            view.set_f64(idx, 0, 0, self.v as f64);
        }
        fn load(reader: &RecordReader<'_>, idx: usize) -> Self {
            Sample {
                v: reader.get_f64(idx, 0, 0) as f32,
            }
        }
    }

    fn fabric(workers: usize) -> GpuFabric {
        let f = GpuFabric::new(workers, FabricConfig::default());
        f.register_kernel("streamDouble", |args: &mut KernelArgs<'_, '_>| {
            let def = Sample::def();
            let n = args.n_actual;
            let input = RecordReader::new(args.inputs[0], &def, DataLayout::Aos, n);
            let mut out = RecordView::new(args.outputs[0], &def, DataLayout::Aos, n);
            for i in 0..n {
                out.set_f64(i, 0, 0, input.get_f64(i, 0, 0) * 2.0);
            }
            // Streaming analytics kernels do a few hundred ops per record.
            KernelProfile::new(args.n_logical as f64 * 200.0, args.n_logical as f64 * 8.0)
        });
        f
    }

    fn source(rate: f64) -> StreamSource {
        StreamSource {
            rate,
            duration: SimTime::from_secs(5),
            batch_logical: 1_000_000,
            batch_actual: 64,
        }
    }

    #[test]
    fn source_batch_arithmetic() {
        let s = source(10_000_000.0);
        assert_eq!(s.num_batches(), 50);
        assert_eq!(s.arrival(0), SimTime::from_millis(100));
        assert_eq!(s.arrival(9), SimTime::from_secs(1));
    }

    #[test]
    fn gpu_stream_processes_every_batch_correctly() {
        let f = fabric(2);
        let s = source(20_000_000.0);
        let report = run_gpu_stream::<Sample, Sample>(
            &f,
            2,
            &s,
            "streamDouble",
            vec![],
            |i| Sample { v: i as f32 },
            |records| {
                // Kernel doubled every value.
                for (j, r) in records.iter().enumerate() {
                    assert_eq!(r.v % 2.0, 0.0, "record {j} not doubled: {}", r.v);
                }
            },
        );
        assert_eq!(report.batches, s.num_batches());
        assert!(report.latency.mean() > 0.0);
        assert!(report.sustained(10.0));
    }

    #[test]
    fn gpu_sustains_higher_rates_than_cpu() {
        // Find the divergence point: at a rate the CPU cannot sustain, its
        // last-batch latency balloons while the GPU stays flat.
        let rate = 200_000_000.0; // 200M records/s offered
        let cluster = ClusterConfig::standard(2);
        let cost = OpCost::new(200.0, 8.0);
        let cpu = run_cpu_stream(
            &cluster,
            &source(rate),
            cost,
            |i| Sample { v: i as f32 },
            |s| Sample { v: s.v * 2.0 },
        );
        let f = fabric(2);
        let gpu = run_gpu_stream::<Sample, Sample>(
            &f,
            2,
            &source(rate),
            "streamDouble",
            vec![],
            |i| Sample { v: i as f32 },
            |_| {},
        );
        // Under linearly growing backlog the last batch's latency is about
        // twice the mean; under a sustained rate it equals the mean.
        assert!(
            !cpu.sustained(1.5),
            "CPU should be backpressured at {rate}: last {} vs mean {}",
            cpu.last_latency,
            cpu.latency.mean()
        );
        assert!(
            gpu.sustained(1.5),
            "GPU should sustain {rate}: last {} vs mean {}",
            gpu.last_latency,
            gpu.latency.mean()
        );
        assert!(gpu.latency.mean() < cpu.latency.mean());
    }

    #[test]
    fn under_capacity_both_engines_are_stable() {
        let rate = 2_000_000.0;
        let cluster = ClusterConfig::standard(2);
        let cpu = run_cpu_stream(
            &cluster,
            &source(rate),
            OpCost::new(200.0, 8.0),
            |i| Sample { v: i as f32 },
            |s| Sample { v: s.v * 2.0 },
        );
        let f = fabric(2);
        let gpu = run_gpu_stream::<Sample, Sample>(
            &f,
            2,
            &source(rate),
            "streamDouble",
            vec![],
            |i| Sample { v: i as f32 },
            |_| {},
        );
        assert!(cpu.sustained(2.0));
        assert!(gpu.sustained(2.0));
        // Throughput matches the offered rate (both keep up).
        assert!((cpu.throughput(&source(rate)) - rate).abs() / rate < 0.25);
        assert!((gpu.throughput(&source(rate)) - rate).abs() / rate < 0.25);
    }
}

//! The DataStream builder and its engine lowerings.
//!
//! [`StreamEnv`] is the single streaming entry point: parameterized by
//! engine (baseline CPU slots or the GPU fabric), it builds typed
//! pipelines —
//!
//! ```text
//! StreamEnv::gpu(&fabric)
//!     .source(StreamSource::at_rate(2e7), gen)
//!     .timestamps(|r| r.ts, WatermarkStrategy::bounded(lag))
//!     .key_by(|r| r.seller)
//!     .window(Tumbling::of(SimTime::from_secs(1)))
//!     .aggregate(AggSpec::avg(), |r| r.price)
//!     .run()
//! ```
//!
//! — that lower onto the existing [`JobHandle`]/[`GpuMapSpec`] machinery:
//! every micro-batch (map pipelines) or fired window (window pipelines)
//! becomes one `GWork` submitted at its arrival/fire instant, flowing
//! through admission, backpressure pens, WFQ arbitration and whatever
//! scheduling policy the fabric is configured with. Windowed keyed state
//! checkpoints through the [`CheckpointManager`](crate::CheckpointManager)
//! (see DESIGN.md §17); ingestion is a pure function of the seed, so a
//! restore replays it and validates the replayed state against the
//! snapshot instead of trusting opaque bytes.

use super::source::StreamSource;
use super::time::{watermark_digest, WatermarkStamp, WatermarkStrategy};
use super::window::{
    output_digest, AggResult, AggSpec, FiredWindow, KeyedWindows, WindowAssigner, WindowOutput,
};
use super::{LostBatch, StreamError, StreamReport};
use crate::checkpoint::{JobSnapshot, OpenPane, SnapshotBlock, StreamState};
use crate::gdst::{GRecord, GpuFabric, GpuMapSpec, OutMode};
use crate::gwork::{GWork, WorkBuf};
use gflink_flink::{ClusterConfig, OpCost, SharedCluster};
use gflink_gpu::{KernelArgs, KernelProfile};
use gflink_memory::{
    AlignClass, DataLayout, FieldDef, GStructDef, HBuffer, PrimType, RecordReader, RecordView,
};
use gflink_sim::{LogHistogram, SimTime, Summary};
use std::collections::BTreeMap;
use std::marker::PhantomData;
use std::sync::Arc;

/// The built-in GPU windowed-aggregation kernel, registered by
/// [`StreamEnv::gpu`]. Input: key/value pairs grouped by key; output: one
/// `(key, count, sum, min, max)` row per distinct key.
pub(crate) const WINDOW_KERNEL: &str = "gfWindowedAgg";

fn pair_def() -> GStructDef {
    GStructDef::new(
        "GfPair",
        AlignClass::Align8,
        vec![
            FieldDef::scalar("key", PrimType::F64),
            FieldDef::scalar("value", PrimType::F64),
        ],
    )
}

fn keyagg_def() -> GStructDef {
    GStructDef::new(
        "GfKeyAgg",
        AlignClass::Align8,
        vec![
            FieldDef::scalar("key", PrimType::F64),
            FieldDef::scalar("count", PrimType::F64),
            FieldDef::scalar("sum", PrimType::F64),
            FieldDef::scalar("min", PrimType::F64),
            FieldDef::scalar("max", PrimType::F64),
        ],
    )
}

/// The windowed-aggregation kernel body: folds consecutive same-key runs
/// with [`AggResult::fold`] — the exact fold the CPU engine uses, so the
/// two engines are bit-identical. `params[0]`/`params[1]` carry the
/// aggregation's flops/bytes per logical record.
fn window_agg_kernel(args: &mut KernelArgs<'_, '_>) -> KernelProfile {
    let pair = pair_def();
    let out_def = keyagg_def();
    let n = args.n_actual;
    let input = RecordReader::new(args.inputs[0], &pair, DataLayout::Aos, n);
    let capacity = args.outputs[0].len() / out_def.size().max(1);
    let out_buf = &mut args.outputs[0];
    let mut out = RecordView::new(out_buf, &out_def, DataLayout::Aos, capacity);
    let mut emitted = 0usize;
    let mut i = 0usize;
    let mut values = Vec::new();
    while i < n {
        let key = input.get_f64(i, 0, 0);
        values.clear();
        while i < n && input.get_f64(i, 0, 0) == key {
            values.push(input.get_f64(i, 1, 0));
            i += 1;
        }
        let r = AggResult::fold(&values);
        out.set_f64(emitted, 0, 0, key);
        out.set_f64(emitted, 1, 0, r.count as f64);
        out.set_f64(emitted, 2, 0, r.sum);
        out.set_f64(emitted, 3, 0, r.min);
        out.set_f64(emitted, 4, 0, r.max);
        emitted += 1;
    }
    let flops = args.params.first().copied().unwrap_or(200.0);
    let bytes = args.params.get(1).copied().unwrap_or(16.0);
    KernelProfile::new(args.n_logical as f64 * flops, args.n_logical as f64 * bytes)
        .with_emitted(emitted)
}

#[derive(Clone)]
enum Engine {
    Cpu(ClusterConfig),
    Gpu {
        fabric: GpuFabric,
        cluster: Option<SharedCluster>,
    },
}

/// The engine-parameterized streaming environment — the one non-deprecated
/// entry point into the streaming layer.
#[derive(Clone)]
pub struct StreamEnv {
    engine: Engine,
    name: String,
    weight: u32,
}

impl StreamEnv {
    /// A streaming environment over the baseline CPU engine: each unit of
    /// work occupies one round-robin task slot from its release instant.
    pub fn cpu(cfg: &ClusterConfig) -> StreamEnv {
        StreamEnv {
            engine: Engine::Cpu(cfg.clone()),
            name: "stream".to_string(),
            weight: 1,
        }
    }

    /// A streaming environment over the GPU fabric: each unit of work
    /// becomes one `GWork` flowing through admission, pens, arbitration
    /// and the configured scheduling policy. Registers the built-in
    /// windowed-aggregation kernel.
    pub fn gpu(fabric: &GpuFabric) -> StreamEnv {
        fabric.register_kernel(WINDOW_KERNEL, window_agg_kernel);
        StreamEnv {
            engine: Engine::Gpu {
                fabric: fabric.clone(),
                cluster: None,
            },
            name: "stream".to_string(),
            weight: 1,
        }
    }

    /// Attach the shared cluster, enabling durable window-state
    /// checkpoints through the fabric's `CheckpointManager` (snapshots are
    /// written to — and restored from — the cluster's HDFS). A no-op on
    /// the CPU engine, which has no checkpoint coordinator.
    pub fn with_cluster(mut self, cluster: &SharedCluster) -> StreamEnv {
        if let Engine::Gpu { cluster: c, .. } = &mut self.engine {
            *c = Some(cluster.clone());
        }
        self
    }

    /// Name the job — the checkpoint snapshot key, so a relaunched driver
    /// using the same name finds its predecessor's snapshots.
    pub fn named(mut self, name: &str) -> StreamEnv {
        self.name = name.to_string();
        self
    }

    /// The job's fair-share weight under WFQ arbitration.
    pub fn weighted(mut self, weight: u32) -> StreamEnv {
        self.weight = weight;
        self
    }

    /// Whether this environment lowers onto the GPU fabric (as opposed to
    /// the baseline CPU engine) — lets engine-generic workloads pick the
    /// matching map flavor.
    pub fn is_gpu(&self) -> bool {
        matches!(self.engine, Engine::Gpu { .. })
    }

    /// Open a rate-controlled source: `gen(i)` materializes the source's
    /// `i`-th record, deterministically.
    pub fn source<'a, T>(
        &self,
        source: StreamSource,
        gen: impl Fn(u64) -> T + 'a,
    ) -> DataStream<'a, T> {
        DataStream {
            env: self.clone(),
            sources: vec![(source, Box::new(gen))],
            ts: None,
        }
    }

    fn gpu_parts(&self) -> Result<(&GpuFabric, Option<&SharedCluster>), StreamError> {
        match &self.engine {
            Engine::Gpu { fabric, cluster } => Ok((fabric, cluster.as_ref())),
            Engine::Cpu(_) => Err(StreamError::WrongEngine { needed: "gpu" }),
        }
    }

    fn cpu_parts(&self) -> Result<&ClusterConfig, StreamError> {
        match &self.engine {
            Engine::Cpu(cfg) => Ok(cfg),
            Engine::Gpu { .. } => Err(StreamError::WrongEngine { needed: "cpu" }),
        }
    }
}

/// A rate-controlled source paired with its boxed record generator:
/// `gen(i)` materializes the source's `i`-th record.
type SourceGen<'a, T> = (StreamSource, Box<dyn Fn(u64) -> T + 'a>);

/// A boxed event-timestamp extractor plus its watermark strategy.
type TsAssigner<'a, T> = (Box<dyn Fn(&T) -> SimTime + 'a>, WatermarkStrategy);

/// One merged-batch reference: which source, which batch, when it lands.
#[derive(Clone, Copy, Debug)]
struct BatchRef {
    arrival: SimTime,
    source: usize,
    index: usize,
}

fn merged_batches<T>(sources: &[SourceGen<'_, T>]) -> Vec<BatchRef> {
    let mut out = Vec::new();
    for (s, (src, _)) in sources.iter().enumerate() {
        for i in 0..src.num_batches() {
            out.push(BatchRef {
                arrival: src.arrival(i),
                source: s,
                index: i,
            });
        }
    }
    out.sort_by_key(|b| (b.arrival, b.source, b.index));
    out
}

/// An unbounded stream of `T` records: one or more rate-controlled
/// sources, merged in arrival order.
pub struct DataStream<'a, T> {
    env: StreamEnv,
    sources: Vec<SourceGen<'a, T>>,
    ts: Option<TsAssigner<'a, T>>,
}

impl<'a, T> DataStream<'a, T> {
    /// Merge another source into the stream (batches interleave in
    /// arrival order; ties break by source registration order).
    pub fn and_source(
        mut self,
        source: StreamSource,
        gen: impl Fn(u64) -> T + 'a,
    ) -> DataStream<'a, T> {
        self.sources.push((source, Box::new(gen)));
        self
    }

    /// Assign event timestamps and a watermark strategy — required before
    /// any event-time operation (`key_by`/`window`).
    pub fn timestamps(
        mut self,
        ts: impl Fn(&T) -> SimTime + 'a,
        strategy: WatermarkStrategy,
    ) -> DataStream<'a, T> {
        self.ts = Some((Box::new(ts), strategy));
        self
    }

    /// Partition the stream by key for windowed aggregation.
    pub fn key_by(self, key: impl Fn(&T) -> u64 + 'a) -> KeyedStream<'a, T> {
        KeyedStream {
            stream: self,
            key: Box::new(key),
        }
    }

    /// Map every micro-batch through a registered GPU kernel (GPU engine
    /// only — the CPU engine reports a typed `WrongEngine` error at run).
    pub fn map_kernel<U: GRecord>(self, spec: GpuMapSpec) -> MapPipeline<'a, T, U>
    where
        T: GRecord,
    {
        MapPipeline {
            stream: self,
            spec,
            _out: PhantomData,
        }
    }

    /// Map every record on the CPU engine at the given per-element cost
    /// (CPU engine only — the GPU engine reports `WrongEngine` at run).
    pub fn map_fn<U>(self, cost: OpCost, op: impl Fn(&T) -> U + 'a) -> CpuMapPipeline<'a, T, U> {
        CpuMapPipeline {
            stream: self,
            cost,
            op: Box::new(op),
        }
    }

    /// `EmptySource` for any source that would emit zero batches — a
    /// config error surfaced at build time, not a silent empty run.
    fn validate(&self) -> Result<(), StreamError> {
        for (i, (src, _)) in self.sources.iter().enumerate() {
            if src.num_batches() == 0 {
                return Err(StreamError::EmptySource { source: i });
            }
        }
        Ok(())
    }
}

/// A keyed stream, ready for window assignment.
pub struct KeyedStream<'a, T> {
    stream: DataStream<'a, T>,
    key: Box<dyn Fn(&T) -> u64 + 'a>,
}

impl<'a, T> KeyedStream<'a, T> {
    /// Assign records to event-time windows.
    pub fn window(self, assigner: WindowAssigner) -> WindowedStream<'a, T> {
        WindowedStream {
            keyed: self,
            assigner,
            lateness: SimTime::ZERO,
        }
    }
}

/// A keyed, windowed stream awaiting its aggregation.
pub struct WindowedStream<'a, T> {
    keyed: KeyedStream<'a, T>,
    assigner: WindowAssigner,
    lateness: SimTime,
}

impl<'a, T> WindowedStream<'a, T> {
    /// Keep windows open `lateness` past the watermark before firing.
    pub fn allow_lateness(mut self, lateness: SimTime) -> WindowedStream<'a, T> {
        self.lateness = lateness;
        self
    }

    /// Aggregate each pane's `value(record)` under `spec`, producing the
    /// runnable window pipeline.
    pub fn aggregate(self, spec: AggSpec, value: impl Fn(&T) -> f64 + 'a) -> WindowPipeline<'a, T> {
        WindowPipeline {
            env: self.keyed.stream.env.clone(),
            stream: self.keyed.stream,
            key: self.keyed.key,
            assigner: self.assigner,
            lateness: self.lateness,
            agg: spec,
            value: Box::new(value),
            crash_at: None,
        }
    }
}

/// A fully specified windowed aggregation, ready to run on either engine.
pub struct WindowPipeline<'a, T> {
    env: StreamEnv,
    stream: DataStream<'a, T>,
    key: Box<dyn Fn(&T) -> u64 + 'a>,
    assigner: WindowAssigner,
    lateness: SimTime,
    agg: AggSpec,
    value: Box<dyn Fn(&T) -> f64 + 'a>,
    crash_at: Option<SimTime>,
}

/// Everything a windowed run produced: the report, every window output
/// (canonically sorted), the watermark timeline, and checkpoint counters.
#[derive(Clone, Debug)]
pub struct WindowedRun {
    /// Latency/loss report (one unit = one fired window).
    pub report: StreamReport,
    /// Window outputs, sorted by `(span, key)`.
    pub windows: Vec<WindowOutput>,
    /// The watermark timeline, one stamp per absorbed micro-batch.
    pub watermarks: Vec<WatermarkStamp>,
    /// Windows satisfied from a durable snapshot instead of executing.
    pub windows_restored: u64,
    /// Durable snapshots written during the run.
    pub checkpoints: u64,
}

impl WindowedRun {
    /// Value-only digest of the window outputs — invariant across engine,
    /// placement policy, fault plan and checkpoint/restore boundaries.
    pub fn digest(&self) -> u64 {
        output_digest(&self.windows)
    }

    /// Digest of the watermark timeline.
    pub fn watermark_digest(&self) -> u64 {
        watermark_digest(&self.watermarks)
    }
}

/// The pure driver-side ingestion result: what fired, when, and the keyed
/// state left open. A pure function of the pipeline definition and the
/// cutoff, which is what makes checkpoint validation-by-replay possible.
struct Ingested {
    fired: Vec<FiredWindow>,
    stamps: Vec<WatermarkStamp>,
    late: u64,
    state: StreamState,
}

impl<'a, T> WindowPipeline<'a, T> {
    /// Simulate a driver crash at `at`: ingestion stops, open windows
    /// never flush, and (with checkpointing on) the snapshot cadence is
    /// bounded by the crash instant. Re-running the same named pipeline
    /// afterwards restores from the last pre-crash snapshot.
    pub fn crash_at(mut self, at: SimTime) -> WindowPipeline<'a, T> {
        self.crash_at = Some(at);
        self
    }

    /// Execute on the environment's engine.
    pub fn run(&self) -> Result<WindowedRun, StreamError> {
        self.stream.validate()?;
        if self.stream.ts.is_none() {
            return Err(StreamError::NoTimestamps);
        }
        match &self.env.engine {
            Engine::Cpu(cfg) => self.run_cpu(&cfg.clone()),
            Engine::Gpu { .. } => self.run_gpu(),
        }
    }

    /// Drive the keyed window state machine over every merged batch with
    /// arrival ≤ `cutoff`, flushing remaining windows iff `flush`.
    fn ingest(&self, cutoff: Option<SimTime>, flush: bool) -> Ingested {
        let (ts_fn, strategy) = self.stream.ts.as_ref().expect("validated: timestamps set");
        let mut kw = KeyedWindows::new(self.assigner, self.lateness, strategy.bound());
        let mut fired = Vec::new();
        let mut batches = 0u64;
        let mut last_arrival = SimTime::ZERO;
        for b in merged_batches(&self.stream.sources) {
            if cutoff.is_some_and(|c| b.arrival > c) {
                break;
            }
            let (src, gen) = &self.stream.sources[b.source];
            let scale = src.record_scale();
            let actual = src.batch_actual();
            for j in 0..actual {
                let rec = gen((b.index * actual + j) as u64);
                kw.insert(ts_fn(&rec), (self.key)(&rec), (self.value)(&rec), scale);
            }
            fired.extend(kw.advance(b.arrival));
            batches += 1;
            last_arrival = b.arrival;
        }
        if flush {
            fired.extend(kw.flush(last_arrival));
        }
        let state = StreamState {
            batches,
            watermark: kw.watermark,
            max_event_ts: kw.max_ts.unwrap_or(SimTime::ZERO),
            late_records: kw.late_records,
            fired: kw.fire_seq as u64,
            open: kw
                .open
                .values()
                .map(|p| OpenPane {
                    start: p.span.start,
                    end: p.span.end,
                    key: p.key,
                    logical: p.logical,
                    values: p.values.clone(),
                })
                .collect(),
        };
        Ingested {
            fired,
            stamps: kw.stamps,
            late: kw.late_records,
            state,
        }
    }

    fn run_cpu(&self, cfg: &ClusterConfig) -> Result<WindowedRun, StreamError> {
        let ing = self.ingest(self.crash_at, self.crash_at.is_none());
        let cpu = cfg.cpu;
        let slots = (cfg.num_workers * cfg.slots_per_worker).max(1);
        let mut slot_free = vec![SimTime::ZERO; slots];
        let cost = OpCost::new(self.agg.flops_per_record, self.agg.bytes_per_record);
        let mut outputs = Vec::new();
        let mut latency = Summary::new();
        let mut hist = LogHistogram::new();
        let mut last_latency = SimTime::ZERO;
        let mut finished = SimTime::ZERO;
        for fw in &ing.fired {
            let dur = cpu.time_for(&cost, fw.logical() as f64);
            let slot = &mut slot_free[fw.seq as usize % slots];
            let start = fw.fire_at.max(*slot);
            let end = start + dur;
            *slot = end;
            let lat = end.saturating_sub(fw.fire_at);
            latency.add_time(lat);
            hist.record(lat);
            last_latency = lat;
            finished = finished.max(end);
            for pane in &fw.panes {
                outputs.push(WindowOutput {
                    span: fw.span,
                    key: pane.key,
                    agg: AggResult::fold(&pane.values),
                    fired_at: end,
                    latency: lat,
                    restored: false,
                });
            }
        }
        outputs.sort_by_key(|o| (o.span, o.key));
        Ok(WindowedRun {
            report: StreamReport {
                batches: ing.fired.len(),
                latency,
                latency_hist: hist,
                last_latency,
                finished_at: finished,
                lost: Vec::new(),
                late_records: ing.late,
                parked_works: 0,
                park_delay: SimTime::ZERO,
            },
            windows: outputs,
            watermarks: ing.stamps,
            windows_restored: 0,
            checkpoints: 0,
        })
    }

    /// Build the `GWork` for one fired window: panes packed key-ascending,
    /// values in insertion order — the order the kernel folds in.
    fn window_work(fw: &FiredWindow, spec: &GpuMapSpec, workers: usize) -> GWork {
        let pair = pair_def();
        let out_def = keyagg_def();
        let rows = fw.rows();
        let mut buf = HBuffer::zeroed(RecordView::required_bytes(&pair, DataLayout::Aos, rows));
        {
            let mut view = RecordView::new(&mut buf, &pair, DataLayout::Aos, rows);
            let mut i = 0;
            for pane in &fw.panes {
                for &v in &pane.values {
                    view.set_f64(i, 0, 0, pane.key as f64);
                    view.set_f64(i, 1, 0, v);
                    i += 1;
                }
            }
        }
        let logical = fw.logical().max(1);
        let out_rows = fw.panes.len();
        GWork {
            name: format!("stream-window-{}", fw.seq).into(),
            execute_name: Arc::clone(&spec.kernel),
            kernel: spec.kernel_id,
            ptx_path: Arc::clone(&spec.ptx_path),
            block_size: spec.block_size,
            grid_size: u32::try_from(logical)
                .unwrap_or(u32::MAX)
                .div_ceil(spec.block_size.max(1)),
            inputs: vec![WorkBuf::transient(
                Arc::new(buf),
                logical * pair.size() as u64,
            )],
            out_actual_bytes: RecordView::required_bytes(&out_def, DataLayout::Aos, out_rows),
            out_logical_bytes: (out_rows * out_def.size()) as u64,
            out_records: out_rows,
            params: Arc::clone(&spec.params),
            n_actual: rows,
            n_logical: logical,
            coalescing: 1.0,
            tag: ((fw.seq as usize % workers) as u32, fw.seq),
        }
    }

    fn run_gpu(&self) -> Result<WindowedRun, StreamError> {
        let (fabric, cluster) = self.env.gpu_parts()?;
        let ing = self.ingest(self.crash_at, self.crash_at.is_none());
        let spec = GpuMapSpec::new(WINDOW_KERNEL)
            .uncached()
            .with_params(vec![self.agg.flops_per_record, self.agg.bytes_per_record])
            .with_out_mode(OutMode::Bounded { per_record: 1 })
            .build(fabric)?;
        let workers = fabric.with_managers(|ms| ms.len()).max(1);
        let job = fabric.open_job_weighted(self.env.weight)?;
        let jid = job.id();

        // --- restore: replay-validated snapshot coverage -----------------
        let ckpt_on = cluster.is_some() && fabric.with_checkpoints(|c| c.enabled());
        let seq = if ckpt_on {
            fabric.with_checkpoints(|c| c.next_seq(jid.0))
        } else {
            0
        };
        let restored = if let (true, Some(cl)) = (ckpt_on, cluster) {
            let rs = {
                let mut cl = cl.lock();
                fabric
                    .with_checkpoints(|c| {
                        c.read(&mut cl.hdfs, 0, &self.env.name, seq, SimTime::ZERO)
                    })
                    .unwrap_or(None)
            };
            // The snapshot's keyed state must equal the state replay
            // reconstructs at its frontier; divergence refuses the
            // snapshot (replay-from-zero) rather than resuming wrong.
            rs.filter(|rs| {
                StreamState::decode(&rs.snapshot.state)
                    .is_some_and(|st| self.ingest(Some(rs.snapshot.frontier), false).state == st)
            })
        } else {
            None
        };
        if let Some(rs) = &restored {
            let tags = rs.snapshot.covered_tags();
            fabric.with_managers(|ms| {
                for m in ms.iter_mut() {
                    m.restore_job(jid, job.weight(), &tags);
                }
            });
        }

        // --- submit every fired window at its fire instant ---------------
        let mut last_submit = SimTime::ZERO;
        let mut first_fire = SimTime::MAX;
        for fw in &ing.fired {
            let work = Self::window_work(fw, &spec, workers);
            job.submit_to(fw.seq as usize % workers, work, fw.fire_at);
            last_submit = last_submit.max(fw.fire_at);
            first_fire = first_fire.min(fw.fire_at);
        }
        gflink_flink::gate::checkpoint(last_submit);

        // --- drain ------------------------------------------------------
        struct Exec {
            worker: u32,
            seq: u32,
            completed: SimTime,
            emitted: usize,
            rows: Vec<(u64, AggResult)>,
            payload: Vec<u8>,
        }
        let out_def = keyagg_def();
        let mut executed: Vec<Exec> = Vec::new();
        let mut wall_end = SimTime::ZERO;
        for w in 0..workers {
            for done in job.drain_worker(w) {
                let capacity = done.output.len() / out_def.size().max(1);
                let emitted = done.emitted.unwrap_or(capacity).min(capacity);
                let reader = RecordReader::new(&done.output, &out_def, DataLayout::Aos, capacity);
                wall_end = wall_end.max(done.timing.completed);
                executed.push(Exec {
                    worker: done.tag.0,
                    seq: done.tag.1,
                    completed: done.timing.completed,
                    emitted,
                    rows: read_keyagg(&reader, emitted),
                    payload: done.output.as_slice().to_vec(),
                });
            }
        }
        let mut lost = Vec::new();
        let mut crashed_at = self.crash_at;
        for f in job.take_failed() {
            wall_end = wall_end.max(f.failed_at);
            crashed_at = Some(crashed_at.map_or(f.failed_at, |c| c.min(f.failed_at)));
            lost.push(LostBatch {
                index: f.tag.1 as usize,
                worker: f.tag.0 as usize,
                reason: f.reason,
            });
        }
        executed.sort_by_key(|e| e.seq);

        // --- assemble outputs (executed + snapshot-restored) --------------
        let fired_by_seq: BTreeMap<u32, &FiredWindow> =
            ing.fired.iter().map(|f| (f.seq, f)).collect();
        let mut outputs = Vec::new();
        let mut latency = Summary::new();
        let mut hist = LogHistogram::new();
        let mut last_latency = SimTime::ZERO;
        for e in &executed {
            let fw = fired_by_seq[&e.seq];
            let lat = e.completed.saturating_sub(fw.fire_at);
            latency.add_time(lat);
            hist.record(lat);
            last_latency = lat;
            for &(key, agg) in &e.rows {
                outputs.push(WindowOutput {
                    span: fw.span,
                    key,
                    agg,
                    fired_at: e.completed,
                    latency: lat,
                    restored: false,
                });
            }
        }
        let mut windows_restored = 0u64;
        if let Some(rs) = &restored {
            for blk in &rs.snapshot.blocks {
                let Some(fw) = fired_by_seq.get(&blk.tag.1) else {
                    continue;
                };
                windows_restored += 1;
                wall_end = wall_end.max(rs.ready_at);
                let buf = HBuffer::from_bytes(&blk.payload);
                let capacity = blk.payload.len() / out_def.size().max(1);
                let emitted = blk.emitted.unwrap_or(capacity).min(capacity);
                let reader = RecordReader::new(&buf, &out_def, DataLayout::Aos, capacity);
                for (key, agg) in read_keyagg(&reader, emitted) {
                    outputs.push(WindowOutput {
                        span: fw.span,
                        key,
                        agg,
                        fired_at: rs.ready_at,
                        latency: SimTime::ZERO,
                        restored: true,
                    });
                }
            }
        }

        // --- backpressure accounting --------------------------------------
        let (parked_works, park_delay) = fabric.with_managers(|ms| {
            let mut p = 0u64;
            let mut d = SimTime::ZERO;
            for m in ms.iter() {
                if let Some(s) = m.session(jid) {
                    p += s.parked_works();
                    d += s.park_delay();
                }
            }
            (p, d)
        });

        // --- periodic snapshots (gdst cadence, stream state attached) -----
        let mut checkpoints = 0u64;
        if ckpt_on && !ing.fired.is_empty() {
            let mut done_blocks: Vec<SnapshotBlock> = executed
                .iter()
                .map(|e| SnapshotBlock {
                    tag: (e.worker, e.seq),
                    emitted: Some(e.emitted),
                    completed_at: e.completed,
                    payload: e.payload.clone(),
                })
                .collect();
            if let Some(rs) = &restored {
                for blk in &rs.snapshot.blocks {
                    done_blocks.push(SnapshotBlock {
                        completed_at: rs.ready_at,
                        ..blk.clone()
                    });
                }
            }
            done_blocks.sort_by_key(|b| (b.completed_at, b.tag));
            let cl = cluster.expect("ckpt_on implies cluster");
            let mut cl = cl.lock();
            checkpoints = fabric.with_checkpoints(|ck| {
                let mut written = 0u64;
                ck.seed(jid.0, first_fire.min(wall_end));
                let horizon = crashed_at.unwrap_or(wall_end);
                let mut ticks = ck.due_ticks(jid.0, horizon);
                if crashed_at.is_none() {
                    ticks.push(wall_end);
                }
                for tick in ticks {
                    let upto = done_blocks.partition_point(|b| b.completed_at <= tick);
                    let snap = JobSnapshot {
                        job: jid.0,
                        seq,
                        frontier: tick,
                        state: self.ingest(Some(tick), false).state.encode(),
                        blocks: done_blocks[..upto].to_vec(),
                        cache: Vec::new(),
                    };
                    if ck
                        .write(&mut cl.hdfs, 0, &self.env.name, &snap, tick)
                        .is_ok()
                    {
                        written += 1;
                    }
                }
                written
            });
        }
        job.finish();

        outputs.sort_by_key(|o| (o.span, o.key));
        Ok(WindowedRun {
            report: StreamReport {
                batches: executed.len(),
                latency,
                latency_hist: hist,
                last_latency,
                finished_at: wall_end,
                lost,
                late_records: ing.late,
                parked_works,
                park_delay,
            },
            windows: outputs,
            watermarks: ing.stamps,
            windows_restored,
            checkpoints,
        })
    }
}

fn read_keyagg(reader: &RecordReader<'_>, emitted: usize) -> Vec<(u64, AggResult)> {
    (0..emitted)
        .map(|i| {
            (
                reader.get_f64(i, 0, 0) as u64,
                AggResult {
                    count: reader.get_f64(i, 1, 0) as u64,
                    sum: reader.get_f64(i, 2, 0),
                    min: reader.get_f64(i, 3, 0),
                    max: reader.get_f64(i, 4, 0),
                },
            )
        })
        .collect()
}

/// A per-batch GPU kernel map over the stream (GPU engine).
pub struct MapPipeline<'a, T: GRecord, U: GRecord> {
    stream: DataStream<'a, T>,
    spec: GpuMapSpec,
    _out: PhantomData<U>,
}

impl<T: GRecord, U: GRecord> MapPipeline<'_, T, U> {
    /// Run, discarding per-batch outputs.
    pub fn run(self) -> Result<StreamReport, StreamError> {
        self.run_each(|_, _| {})
    }

    /// Run, invoking `check(batch, records)` for every completed batch in
    /// merged arrival order. Lost batches appear in the report, not here.
    pub fn run_each(self, mut check: impl FnMut(usize, &[U])) -> Result<StreamReport, StreamError> {
        let (fabric, _) = self.stream.env.gpu_parts()?;
        self.stream.validate()?;
        let spec = self.spec.clone().build(fabric)?;
        let def = T::def();
        let out_def = U::def();
        let workers = fabric.with_managers(|ms| ms.len()).max(1);
        let job = fabric.open_job_weighted(self.stream.env.weight)?;
        let batches = merged_batches(&self.stream.sources);
        let mut last_submit = SimTime::ZERO;
        for (g, b) in batches.iter().enumerate() {
            let (src, gen) = &self.stream.sources[b.source];
            let rows = src.batch_actual();
            let mut buf = HBuffer::zeroed(RecordView::required_bytes(&def, DataLayout::Aos, rows));
            {
                let mut view = RecordView::new(&mut buf, &def, DataLayout::Aos, rows);
                for j in 0..rows {
                    gen((b.index * rows + j) as u64).store(&mut view, j);
                }
            }
            let n_logical = src.batch_logical();
            let out_rows = match spec.out_mode {
                OutMode::PerRecord => rows,
                OutMode::PerBlock(n) => n,
                OutMode::Bounded { per_record } => rows * per_record,
            };
            let out_logical_bytes = match spec.out_mode {
                OutMode::PerRecord => n_logical * out_def.size() as u64,
                OutMode::PerBlock(n) => (n * out_def.size()) as u64,
                OutMode::Bounded { per_record } => {
                    n_logical * per_record as u64 * out_def.size() as u64
                }
            };
            let mut inputs = vec![WorkBuf::transient(
                Arc::new(buf),
                n_logical * def.size() as u64,
            )];
            if let Some(extra) = &spec.extra_input {
                inputs.push(match extra.cache_token {
                    Some(token) => WorkBuf::cached(
                        Arc::clone(&extra.data),
                        extra.logical_bytes,
                        crate::gwork::CacheKey {
                            dataset: token,
                            partition: u32::MAX,
                            block: 0,
                        },
                    ),
                    None => WorkBuf::transient(Arc::clone(&extra.data), extra.logical_bytes),
                });
            }
            let work = GWork {
                name: format!("stream-batch-{g}").into(),
                execute_name: Arc::clone(&spec.kernel),
                kernel: spec.kernel_id,
                ptx_path: Arc::clone(&spec.ptx_path),
                block_size: spec.block_size,
                grid_size: u32::try_from(n_logical)
                    .unwrap_or(u32::MAX)
                    .div_ceil(spec.block_size.max(1)),
                inputs,
                out_actual_bytes: RecordView::required_bytes(&out_def, DataLayout::Aos, out_rows),
                out_logical_bytes,
                out_records: out_rows,
                params: Arc::clone(&spec.params),
                n_actual: rows,
                n_logical,
                coalescing: 1.0,
                tag: ((g % workers) as u32, g as u32),
            };
            job.submit_to(g % workers, work, b.arrival);
            last_submit = last_submit.max(b.arrival);
        }
        gflink_flink::gate::checkpoint(last_submit);

        let mut completions: Vec<Option<(SimTime, Vec<U>)>> =
            (0..batches.len()).map(|_| None).collect();
        let mut finished = SimTime::ZERO;
        for w in 0..workers {
            for done in job.drain_worker(w) {
                let g = done.tag.1 as usize;
                let capacity = done.output.len() / out_def.size().max(1);
                let out_rows = match spec.out_mode {
                    OutMode::PerRecord => done.emitted.unwrap_or(capacity).min(capacity),
                    OutMode::PerBlock(n) => n.min(capacity),
                    OutMode::Bounded { .. } => done.emitted.unwrap_or(0).min(capacity),
                };
                let reader = RecordReader::new(&done.output, &out_def, DataLayout::Aos, capacity);
                let records: Vec<U> = (0..out_rows).map(|j| U::load(&reader, j)).collect();
                finished = finished.max(done.timing.completed);
                completions[g] = Some((done.timing.completed, records));
            }
        }
        let mut lost = Vec::new();
        for f in job.take_failed() {
            finished = finished.max(f.failed_at);
            lost.push(LostBatch {
                index: f.tag.1 as usize,
                worker: f.tag.0 as usize,
                reason: f.reason,
            });
        }
        let (parked_works, park_delay) = fabric.with_managers(|ms| {
            let mut p = 0u64;
            let mut d = SimTime::ZERO;
            for m in ms.iter() {
                if let Some(s) = m.session(job.id()) {
                    p += s.parked_works();
                    d += s.park_delay();
                }
            }
            (p, d)
        });
        job.finish();

        let mut latency = Summary::new();
        let mut hist = LogHistogram::new();
        let mut last_latency = SimTime::ZERO;
        let mut processed = 0usize;
        for (g, c) in completions.iter().enumerate() {
            let Some((completed, records)) = c else {
                continue;
            };
            check(g, records);
            let lat = completed.saturating_sub(batches[g].arrival);
            latency.add_time(lat);
            hist.record(lat);
            last_latency = lat;
            processed += 1;
        }
        Ok(StreamReport {
            batches: processed,
            latency,
            latency_hist: hist,
            last_latency,
            finished_at: finished,
            lost,
            late_records: 0,
            parked_works,
            park_delay,
        })
    }
}

/// A per-record CPU map over the stream (CPU engine).
pub struct CpuMapPipeline<'a, T, U> {
    stream: DataStream<'a, T>,
    cost: OpCost,
    op: Box<dyn Fn(&T) -> U + 'a>,
}

impl<T, U> CpuMapPipeline<'_, T, U> {
    /// Run: each batch occupies one round-robin task slot from its
    /// arrival, charged the per-element cost over its logical records.
    pub fn run(self) -> Result<StreamReport, StreamError> {
        let cfg = self.stream.env.cpu_parts()?;
        self.stream.validate()?;
        let cpu = cfg.cpu;
        let slots = (cfg.num_workers * cfg.slots_per_worker).max(1);
        let mut slot_free = vec![SimTime::ZERO; slots];
        let mut latency = Summary::new();
        let mut hist = LogHistogram::new();
        let mut last_latency = SimTime::ZERO;
        let mut finished = SimTime::ZERO;
        let batches = merged_batches(&self.stream.sources);
        for (g, b) in batches.iter().enumerate() {
            let (src, gen) = &self.stream.sources[b.source];
            // Execute the operator for real on the batch's actual records.
            for j in 0..src.batch_actual() {
                let _ = (self.op)(&gen((b.index * src.batch_actual() + j) as u64));
            }
            let dur = cpu.time_for(&self.cost, src.batch_logical() as f64);
            let slot = &mut slot_free[g % slots];
            let start = b.arrival.max(*slot);
            let end = start + dur;
            *slot = end;
            let lat = end.saturating_sub(b.arrival);
            latency.add_time(lat);
            hist.record(lat);
            last_latency = lat;
            finished = finished.max(end);
        }
        Ok(StreamReport {
            batches: batches.len(),
            latency,
            latency_hist: hist,
            last_latency,
            finished_at: finished,
            lost: Vec::new(),
            late_records: 0,
            parked_works: 0,
            park_delay: SimTime::ZERO,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CheckpointConfig;
    use crate::gdst::FabricConfig;
    use crate::recovery::CpuFallback;
    use crate::stream::window::Tumbling;
    use crate::stream::StreamError;
    use gflink_sim::{FaultKind, FaultPlan};

    #[derive(Clone, Debug, PartialEq)]
    struct Sample {
        v: f32,
    }
    impl GRecord for Sample {
        fn def() -> GStructDef {
            GStructDef::new(
                "Sample",
                AlignClass::Align4,
                vec![FieldDef::scalar("v", PrimType::F32)],
            )
        }
        fn store(&self, view: &mut RecordView<'_>, idx: usize) {
            view.set_f64(idx, 0, 0, self.v as f64);
        }
        fn load(reader: &RecordReader<'_>, idx: usize) -> Self {
            Sample {
                v: reader.get_f64(idx, 0, 0) as f32,
            }
        }
    }

    fn fabric_with(workers: usize, cfg: FabricConfig) -> GpuFabric {
        let f = GpuFabric::new(workers, cfg);
        f.register_kernel("streamDouble", |args: &mut KernelArgs<'_, '_>| {
            let def = Sample::def();
            let n = args.n_actual;
            let input = RecordReader::new(args.inputs[0], &def, DataLayout::Aos, n);
            let out_buf = &mut args.outputs[0];
            let mut out = RecordView::new(out_buf, &def, DataLayout::Aos, n);
            for i in 0..n {
                out.set_f64(i, 0, 0, input.get_f64(i, 0, 0) * 2.0);
            }
            KernelProfile::new(args.n_logical as f64 * 200.0, args.n_logical as f64 * 8.0)
        });
        f
    }

    fn source(rate: f64) -> StreamSource {
        StreamSource::at_rate(rate).for_duration(SimTime::from_secs(5))
    }

    /// An event whose timestamp roughly tracks its arrival (record `i` of
    /// a 20M rec/s source lands in batch `i/64`), with a deterministic
    /// jitter so some records are out of order.
    #[derive(Clone)]
    struct Event {
        ts: SimTime,
        key: u64,
        value: f64,
    }

    fn event(i: u64) -> Event {
        let base = i * 50_000_000 / 64; // batch spread: 50 ms per 64 records
        let jitter = (i.wrapping_mul(2_654_435_761)) % 30_000_000; // < 30 ms
        Event {
            ts: SimTime::from_nanos(base.saturating_sub(jitter)),
            key: i % 8,
            value: (i % 97) as f64 * 0.5,
        }
    }

    fn windowed(env: &StreamEnv, src: &StreamSource) -> WindowPipeline<'static, Event> {
        env.source(src.clone(), event)
            .timestamps(
                |e: &Event| e.ts,
                WatermarkStrategy::bounded(SimTime::from_millis(40)),
            )
            .key_by(|e: &Event| e.key)
            .window(Tumbling::of(SimTime::from_millis(100)))
            .aggregate(AggSpec::avg(), |e: &Event| e.value)
    }

    #[test]
    fn builder_map_processes_every_batch_correctly() {
        let f = fabric_with(2, FabricConfig::default());
        let s = source(20_000_000.0);
        let mut seen = 0usize;
        let report = StreamEnv::gpu(&f)
            .source(s.clone(), |i| Sample { v: i as f32 })
            .map_kernel::<Sample>(GpuMapSpec::new("streamDouble").uncached())
            .run_each(|_, records| {
                for (j, r) in records.iter().enumerate() {
                    assert_eq!(r.v % 2.0, 0.0, "record {j} not doubled: {}", r.v);
                }
                seen += 1;
            })
            .expect("gpu stream runs");
        assert_eq!(report.batches, s.num_batches());
        assert_eq!(seen, s.num_batches());
        assert!(report.lost.is_empty());
        assert!(report.latency.mean() > 0.0);
        assert!(report.sustained(10.0));
    }

    #[test]
    fn gpu_sustains_higher_rates_than_cpu() {
        // Find the divergence point: at a rate the CPU cannot sustain, its
        // last-batch latency balloons while the GPU stays flat.
        let rate = 200_000_000.0;
        let cluster = ClusterConfig::standard(2);
        let cpu = StreamEnv::cpu(&cluster)
            .source(source(rate), |i| Sample { v: i as f32 })
            .map_fn(OpCost::new(200.0, 8.0), |s| Sample { v: s.v * 2.0 })
            .run()
            .expect("cpu stream runs");
        let f = fabric_with(2, FabricConfig::default());
        let gpu = StreamEnv::gpu(&f)
            .source(source(rate), |i| Sample { v: i as f32 })
            .map_kernel::<Sample>(GpuMapSpec::new("streamDouble").uncached())
            .run()
            .expect("gpu stream runs");
        assert!(
            !cpu.sustained(1.5),
            "CPU should be backpressured at {rate}: last {} vs mean {}",
            cpu.last_latency,
            cpu.latency.mean()
        );
        assert!(
            gpu.sustained(1.5),
            "GPU should sustain {rate}: last {} vs mean {}",
            gpu.last_latency,
            gpu.latency.mean()
        );
        assert!(gpu.latency.mean() < cpu.latency.mean());
    }

    #[test]
    fn under_capacity_both_engines_are_stable() {
        let rate = 2_000_000.0;
        let cluster = ClusterConfig::standard(2);
        let cpu = StreamEnv::cpu(&cluster)
            .source(source(rate), |i| Sample { v: i as f32 })
            .map_fn(OpCost::new(200.0, 8.0), |s| Sample { v: s.v * 2.0 })
            .run()
            .expect("cpu stream runs");
        let f = fabric_with(2, FabricConfig::default());
        let gpu = StreamEnv::gpu(&f)
            .source(source(rate), |i| Sample { v: i as f32 })
            .map_kernel::<Sample>(GpuMapSpec::new("streamDouble").uncached())
            .run()
            .expect("gpu stream runs");
        assert!(cpu.sustained(2.0));
        assert!(gpu.sustained(2.0));
        assert!((cpu.throughput(&source(rate)) - rate).abs() / rate < 0.25);
        assert!((gpu.throughput(&source(rate)) - rate).abs() / rate < 0.25);
    }

    #[test]
    fn config_errors_are_typed() {
        let cluster = ClusterConfig::standard(1);
        // Zero batches is a build-time error, not a silent empty run.
        let err = StreamEnv::cpu(&cluster)
            .source(StreamSource::at_rate(1_000.0), |i| Sample { v: i as f32 })
            .map_fn(OpCost::new(1.0, 1.0), |s| s.clone())
            .run()
            .unwrap_err();
        assert_eq!(err, StreamError::EmptySource { source: 0 });
        // Windowing without timestamps.
        let err = StreamEnv::cpu(&cluster)
            .source(source(2_000_000.0), event)
            .key_by(|e: &Event| e.key)
            .window(Tumbling::of(SimTime::from_millis(100)))
            .aggregate(AggSpec::avg(), |e: &Event| e.value)
            .run()
            .unwrap_err();
        assert_eq!(err, StreamError::NoTimestamps);
        // A GPU kernel map cannot run on the CPU engine.
        let err = StreamEnv::cpu(&cluster)
            .source(source(2_000_000.0), |i| Sample { v: i as f32 })
            .map_kernel::<Sample>(GpuMapSpec::new("streamDouble"))
            .run()
            .unwrap_err();
        assert_eq!(err, StreamError::WrongEngine { needed: "gpu" });
    }

    #[test]
    fn windowed_aggregation_is_bit_identical_across_engines() {
        let src = StreamSource::at_rate(20_000_000.0).for_duration(SimTime::from_secs(2));
        let cluster = ClusterConfig::standard(2);
        let cpu_env = StreamEnv::cpu(&cluster);
        let cpu = windowed(&cpu_env, &src).run().expect("cpu windows run");
        let f = fabric_with(2, FabricConfig::default());
        let gpu_env = StreamEnv::gpu(&f);
        let gpu = windowed(&gpu_env, &src).run().expect("gpu windows run");
        assert!(!cpu.windows.is_empty());
        assert_eq!(cpu.windows.len(), gpu.windows.len());
        assert_eq!(
            cpu.digest(),
            gpu.digest(),
            "same fold order ⇒ bit-identical aggregates"
        );
        assert_eq!(cpu.watermark_digest(), gpu.watermark_digest());
        assert_eq!(cpu.report.late_records, gpu.report.late_records);
        // Window latency percentiles are populated and ordered.
        assert!(gpu.report.latency_hist.p50() > SimTime::ZERO);
        assert!(gpu.report.latency_hist.p99() >= gpu.report.latency_hist.p50());
        // Determinism: running the exact same pipeline again is identical.
        let f2 = fabric_with(2, FabricConfig::default());
        let gpu2_env = StreamEnv::gpu(&f2);
        let gpu2 = windowed(&gpu2_env, &src).run().expect("gpu windows rerun");
        assert_eq!(gpu.digest(), gpu2.digest());
        assert_eq!(gpu.watermark_digest(), gpu2.watermark_digest());
    }

    #[test]
    fn multi_source_merge_is_deterministic() {
        let a = StreamSource::at_rate(10_000_000.0).for_duration(SimTime::from_secs(1));
        let b = StreamSource::at_rate(5_000_000.0)
            .for_duration(SimTime::from_secs(1))
            .with_batch(500_000, 32);
        let cluster = ClusterConfig::standard(2);
        let run = |_: u32| {
            StreamEnv::cpu(&cluster)
                .source(a.clone(), event)
                .and_source(b.clone(), |i| event(i * 3 + 1))
                .timestamps(
                    |e: &Event| e.ts,
                    WatermarkStrategy::bounded(SimTime::from_millis(40)),
                )
                .key_by(|e: &Event| e.key)
                .window(Tumbling::of(SimTime::from_millis(100)))
                .aggregate(AggSpec::avg(), |e: &Event| e.value)
                .run()
                .expect("merged stream runs")
        };
        let (r1, r2) = (run(0), run(1));
        assert!(!r1.windows.is_empty());
        assert_eq!(r1.digest(), r2.digest());
        assert_eq!(r1.watermark_digest(), r2.watermark_digest());
    }

    #[test]
    fn device_loss_mid_stream_leaves_window_digest_unchanged() {
        let src = StreamSource::at_rate(20_000_000.0).for_duration(SimTime::from_secs(2));
        let clean_f = fabric_with(2, FabricConfig::default());
        let clean_env = StreamEnv::gpu(&clean_f);
        let clean = windowed(&clean_env, &src).run().expect("clean run");
        // Kill one of worker 0's two GPUs mid-stream: the survivor absorbs
        // its work; values (and thus the digest) must not change.
        let hurt_f = fabric_with(2, FabricConfig::default());
        hurt_f.with_managers(|ms| {
            ms[0].set_fault_plan(
                FaultPlan::new().with(SimTime::from_millis(700), FaultKind::GpuLost { gpu: 0 }),
            );
        });
        let hurt_env = StreamEnv::gpu(&hurt_f);
        let hurt = windowed(&hurt_env, &src).run().expect("degraded run");
        assert!(hurt.report.lost.is_empty(), "survivor GPU absorbs the work");
        assert_eq!(clean.digest(), hurt.digest());
        assert_eq!(clean.watermark_digest(), hurt.watermark_digest());
    }

    #[test]
    fn total_device_loss_surfaces_lost_windows() {
        let src = StreamSource::at_rate(20_000_000.0).for_duration(SimTime::from_secs(2));
        let mut cfg = FabricConfig::default();
        cfg.worker.cpu_fallback = CpuFallback {
            enabled: false,
            ..CpuFallback::default()
        };
        let f = fabric_with(1, cfg);
        f.with_managers(|ms| {
            ms[0].set_fault_plan(
                FaultPlan::new()
                    .with(SimTime::from_millis(600), FaultKind::GpuLost { gpu: 0 })
                    .with(SimTime::from_millis(600), FaultKind::GpuLost { gpu: 1 }),
            );
        });
        let env = StreamEnv::gpu(&f);
        let run = windowed(&env, &src).run().expect("run completes, degraded");
        assert!(
            !run.report.lost.is_empty(),
            "windows after the loss are lost"
        );
        assert!(
            run.report.batches > 0,
            "windows before the loss still completed"
        );
    }

    #[test]
    fn crash_then_resume_restores_windows_from_checkpoint() {
        let src = StreamSource::at_rate(20_000_000.0).for_duration(SimTime::from_secs(2));
        let cluster = SharedCluster::new(ClusterConfig::standard(2));
        let cfg = FabricConfig {
            checkpoint: CheckpointConfig::every(SimTime::from_millis(200)),
            ..FabricConfig::default()
        };
        let fabric = fabric_with(2, cfg);
        let env = StreamEnv::gpu(&fabric)
            .with_cluster(&cluster)
            .named("ckpt-windows");
        // Run 1 crashes at 900 ms: snapshots up to the crash are durable.
        let crashed = windowed(&env, &src)
            .crash_at(SimTime::from_millis(900))
            .run()
            .expect("crashed run completes its prefix");
        assert!(crashed.checkpoints > 0, "periodic snapshots were written");
        // Run 2 (same name, same fabric+cluster) restores and finishes.
        let resumed = windowed(&env, &src).run().expect("resumed run completes");
        assert!(
            resumed.windows_restored > 0,
            "windows covered by the snapshot are satisfied without executing"
        );
        // The resumed run's outputs are bit-identical to a never-crashed run.
        let clean_f = fabric_with(2, FabricConfig::default());
        let clean_env = StreamEnv::gpu(&clean_f);
        let clean = windowed(&clean_env, &src).run().expect("clean run");
        assert_eq!(clean.digest(), resumed.digest());
        assert_eq!(clean.watermark_digest(), resumed.watermark_digest());
        assert_eq!(
            clean.windows.len(),
            resumed.windows.len(),
            "restored + executed covers exactly the clean window set"
        );
    }
}

//! The DataStream layer: streaming execution over the GPU fabric — the
//! paper's declared future direction.
//!
//! §1 justifies building on Flink (rather than Spark) by "the needs of
//! future expansion for a better streaming processing implementation":
//! Flink treats batch as a special case of streaming. This module supplies
//! that expansion as a real DataStream API:
//!
//! * [`StreamSource`] — rate-controlled deterministic sources, chopped
//!   into micro-batches (the natural GPU block granularity of §5.1).
//! * [`StreamEnv`] — the single engine-parameterized entry point: a typed
//!   builder (`source → timestamps → key_by → window → aggregate → run`)
//!   lowering onto the existing `JobHandle`/`GpuMapSpec` machinery, so
//!   admission, backpressure pens, WFQ arbitration and the hybrid cost
//!   model all apply to streams unchanged.
//! * Event time ([`WatermarkStrategy`], [`WatermarkStamp`]): per-record
//!   timestamps, bounded-out-of-orderness watermarks advanced per
//!   micro-batch, and late-record routing.
//! * Keyed windows ([`Tumbling`], [`Sliding`], [`Session`]) whose operator
//!   state checkpoints through the fabric's
//!   [`CheckpointManager`](crate::CheckpointManager) (DESIGN.md §17).
//!
//! Per-batch (or per-window) latency — completion minus arrival (or fire
//! instant) — is the quantity of interest: a stable latency profile means
//! the operator sustains the offered rate; a diverging one means
//! backpressure. Everything is deterministic: a run is a pure function of
//! `(seed, FaultPlan)`, and [`WindowedRun::digest`] is bit-identical
//! across engines, placement policies, fault plans, concurrency and
//! crash→restore boundaries.
//!
//! The free functions [`run_cpu_stream`]/[`run_gpu_stream`] are the
//! pre-DataStream entry points, kept as thin deprecated shims over the
//! builder.

mod env;
mod source;
mod time;
mod window;

pub use env::{
    CpuMapPipeline, DataStream, KeyedStream, MapPipeline, StreamEnv, WindowPipeline, WindowedRun,
    WindowedStream,
};
pub use source::StreamSource;
pub use time::{watermark_digest, WatermarkStamp, WatermarkStrategy};
pub use window::{
    output_digest, AggOp, AggResult, AggSpec, Session, Sliding, Tumbling, WindowAssigner,
    WindowOutput, WindowSpan,
};

use crate::gdst::{GRecord, GpuFabric, GpuMapSpec, OutMode, SpecError};
use crate::jobsched::AdmissionError;
use crate::recovery::FailReason;
use gflink_flink::{ClusterConfig, OpCost};
use gflink_sim::{LogHistogram, SimTime, Summary};

/// Why a stream pipeline refused to run — configuration errors surfaced
/// as typed values at build time instead of panics mid-stream.
#[derive(Clone, Debug, PartialEq)]
pub enum StreamError {
    /// A source would emit zero micro-batches (rate × duration rounds
    /// down to nothing at the configured batch size).
    EmptySource {
        /// Index of the offending source, in registration order.
        source: usize,
    },
    /// An event-time operation (windowing) was requested but the stream
    /// has no timestamp assigner.
    NoTimestamps,
    /// The pipeline stage requires the other engine.
    WrongEngine {
        /// The engine the stage needs (`"cpu"` or `"gpu"`).
        needed: &'static str,
    },
    /// The GPU kernel spec failed validation.
    Spec(SpecError),
    /// The fabric refused the job at admission.
    Admission(AdmissionError),
}

impl std::fmt::Display for StreamError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StreamError::EmptySource { source } => {
                write!(f, "source {source} emits zero micro-batches")
            }
            StreamError::NoTimestamps => {
                write!(f, "windowing requires timestamps(..) on the stream")
            }
            StreamError::WrongEngine { needed } => {
                write!(f, "pipeline stage requires the {needed} engine")
            }
            StreamError::Spec(e) => write!(f, "kernel spec rejected: {e:?}"),
            StreamError::Admission(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for StreamError {}

impl From<SpecError> for StreamError {
    fn from(e: SpecError) -> Self {
        StreamError::Spec(e)
    }
}

impl From<AdmissionError> for StreamError {
    fn from(e: AdmissionError) -> Self {
        StreamError::Admission(e)
    }
}

/// A micro-batch (or fired window) that terminally failed — retries and
/// CPU fallback both exhausted. Surfaced in the report instead of
/// panicking the driver.
#[derive(Clone, Debug)]
pub struct LostBatch {
    /// The batch index (map pipelines) or window fire sequence (window
    /// pipelines).
    pub index: usize,
    /// Worker whose manager abandoned it.
    pub worker: usize,
    /// Why it was abandoned.
    pub reason: FailReason,
}

/// Latency/throughput report for one streaming run.
#[derive(Clone, Debug)]
pub struct StreamReport {
    /// Micro-batches (map) or windows (windowed) processed to completion.
    pub batches: usize,
    /// Per-unit latency summary (seconds).
    pub latency: Summary,
    /// Per-unit latency histogram — `p50()`/`p95()`/`p99()` for SLO-style
    /// reporting.
    pub latency_hist: LogHistogram,
    /// Latency of the final unit — diverges under backpressure.
    pub last_latency: SimTime,
    /// When the last unit completed (or terminally failed).
    pub finished_at: SimTime,
    /// Units lost to terminal failures (device loss past every retry and
    /// fallback). Empty on a healthy run.
    pub lost: Vec<LostBatch>,
    /// Event-time records routed late (windowed pipelines only).
    pub late_records: u64,
    /// Submissions parked in the backpressure pen (GPU engine only).
    pub parked_works: u64,
    /// Total simulated time submissions sat penned before release.
    pub park_delay: SimTime,
}

impl StreamReport {
    fn empty() -> StreamReport {
        StreamReport {
            batches: 0,
            latency: Summary::new(),
            latency_hist: LogHistogram::new(),
            last_latency: SimTime::ZERO,
            finished_at: SimTime::ZERO,
            lost: Vec::new(),
            late_records: 0,
            parked_works: 0,
            park_delay: SimTime::ZERO,
        }
    }

    /// Whether the operator kept up: the last unit's latency is within
    /// `factor` of the mean (no queue growth). A run whose mean latency is
    /// zero (nothing completed, or all-zero latencies) is sustained iff
    /// the last latency is also zero — no division by zero.
    pub fn sustained(&self, factor: f64) -> bool {
        let mean = self.latency.mean();
        if mean <= 0.0 {
            return self.last_latency.is_zero();
        }
        self.last_latency.as_secs_f64() <= mean * factor
    }

    /// Effective throughput, logical records per second.
    pub fn throughput(&self, source: &StreamSource) -> f64 {
        let secs = self.finished_at.as_secs_f64();
        if secs <= 0.0 {
            return 0.0;
        }
        source.batch_logical() as f64 * self.batches as f64 / secs
    }
}

/// Run a streaming map on the **CPU**: each batch occupies one task slot of
/// a round-robin worker/slot from its arrival instant.
#[deprecated(note = "use `StreamEnv::cpu(cfg).source(..).map_fn(..)` instead")]
pub fn run_cpu_stream<T, U>(
    cluster_cfg: &ClusterConfig,
    source: &StreamSource,
    cost: OpCost,
    gen: impl Fn(u64) -> T,
    op: impl Fn(&T) -> U,
) -> StreamReport {
    if source.num_batches() == 0 {
        return StreamReport::empty();
    }
    StreamEnv::cpu(cluster_cfg)
        .source(source.clone(), gen)
        .map_fn(cost, op)
        .run()
        .expect("validated: source is non-empty")
}

/// Run a streaming map on **GFlink's GPU fabric**: each micro-batch becomes
/// one [`GWork`](crate::GWork) submitted at its arrival instant; the
/// GStreamManager's pipeline and scheduling absorb the stream. A batch that
/// terminally fails (device loss past every retry and fallback) lands in
/// [`StreamReport::lost`] — it no longer panics the driver.
#[deprecated(note = "use `StreamEnv::gpu(fabric).source(..).map_kernel(..)` instead")]
#[allow(clippy::too_many_arguments)]
pub fn run_gpu_stream<T: GRecord, U: GRecord>(
    fabric: &GpuFabric,
    _num_workers: usize,
    source: &StreamSource,
    kernel: &str,
    params: Vec<f64>,
    gen: impl Fn(u64) -> T,
    check: impl Fn(&[U]),
) -> StreamReport {
    if source.num_batches() == 0 {
        return StreamReport::empty();
    }
    let spec = GpuMapSpec::new(kernel)
        .uncached() // streaming batches are seen once
        .with_params(params)
        .with_out_mode(OutMode::PerRecord);
    StreamEnv::gpu(fabric)
        .source(source.clone(), gen)
        .map_kernel::<U>(spec)
        .run_each(|_, records| check(records))
        .expect("stream job admitted")
}

#[cfg(test)]
#[allow(deprecated)]
mod tests {
    use super::*;
    use crate::gdst::FabricConfig;
    use crate::recovery::CpuFallback;
    use gflink_gpu::{KernelArgs, KernelProfile};
    use gflink_memory::{
        AlignClass, DataLayout, FieldDef, GStructDef, PrimType, RecordReader, RecordView,
    };
    use gflink_sim::{FaultKind, FaultPlan};

    #[derive(Clone, Debug, PartialEq)]
    struct Sample {
        v: f32,
    }
    impl GRecord for Sample {
        fn def() -> GStructDef {
            GStructDef::new(
                "Sample",
                AlignClass::Align4,
                vec![FieldDef::scalar("v", PrimType::F32)],
            )
        }
        fn store(&self, view: &mut RecordView<'_>, idx: usize) {
            view.set_f64(idx, 0, 0, self.v as f64);
        }
        fn load(reader: &RecordReader<'_>, idx: usize) -> Self {
            Sample {
                v: reader.get_f64(idx, 0, 0) as f32,
            }
        }
    }

    fn fabric_with(workers: usize, cfg: FabricConfig) -> GpuFabric {
        let f = GpuFabric::new(workers, cfg);
        f.register_kernel("streamDouble", |args: &mut KernelArgs<'_, '_>| {
            let def = Sample::def();
            let n = args.n_actual;
            let input = RecordReader::new(args.inputs[0], &def, DataLayout::Aos, n);
            let out_buf = &mut args.outputs[0];
            let mut out = RecordView::new(out_buf, &def, DataLayout::Aos, n);
            for i in 0..n {
                out.set_f64(i, 0, 0, input.get_f64(i, 0, 0) * 2.0);
            }
            KernelProfile::new(args.n_logical as f64 * 200.0, args.n_logical as f64 * 8.0)
        });
        f
    }

    fn source(rate: f64) -> StreamSource {
        StreamSource::at_rate(rate).for_duration(SimTime::from_secs(5))
    }

    #[test]
    fn deprecated_shims_still_run() {
        let rate = 2_000_000.0;
        let cluster = ClusterConfig::standard(2);
        let cpu = run_cpu_stream(
            &cluster,
            &source(rate),
            OpCost::new(200.0, 8.0),
            |i| Sample { v: i as f32 },
            |s| Sample { v: s.v * 2.0 },
        );
        let f = fabric_with(2, FabricConfig::default());
        let gpu = run_gpu_stream::<Sample, Sample>(
            &f,
            2,
            &source(rate),
            "streamDouble",
            vec![],
            |i| Sample { v: i as f32 },
            |records| {
                for r in records {
                    assert_eq!(r.v % 2.0, 0.0);
                }
            },
        );
        assert!(cpu.sustained(2.0));
        assert!(gpu.sustained(2.0));
        assert!(gpu.lost.is_empty());
        // Throughput matches the offered rate (both keep up).
        assert!((cpu.throughput(&source(rate)) - rate).abs() / rate < 0.25);
        assert!((gpu.throughput(&source(rate)) - rate).abs() / rate < 0.25);
    }

    #[test]
    fn shim_on_empty_source_returns_empty_report() {
        // rate × duration below one batch: the legacy arithmetic yields 0
        // batches; the shim short-circuits instead of erroring.
        let s = StreamSource::at_rate(1_000.0);
        let cluster = ClusterConfig::standard(1);
        let r = run_cpu_stream(
            &cluster,
            &s,
            OpCost::new(1.0, 1.0),
            |i| Sample { v: i as f32 },
            |s| s.clone(),
        );
        assert_eq!(r.batches, 0);
        assert!(r.sustained(1.5), "zero-mean latency must not divide");
    }

    #[test]
    fn shim_surfaces_lost_batches_instead_of_panicking() {
        // Kill every GPU on worker 0 mid-stream with CPU fallback disabled:
        // the legacy code panicked at `expect("batch lost in the stream")`;
        // the shim must complete and report the losses.
        let mut cfg = FabricConfig::default();
        cfg.worker.cpu_fallback = CpuFallback {
            enabled: false,
            ..CpuFallback::default()
        };
        let f = fabric_with(2, cfg);
        f.with_managers(|ms| {
            ms[0].set_fault_plan(
                FaultPlan::new()
                    .with(SimTime::from_millis(400), FaultKind::GpuLost { gpu: 0 })
                    .with(SimTime::from_millis(400), FaultKind::GpuLost { gpu: 1 }),
            );
        });
        let report = run_gpu_stream::<Sample, Sample>(
            &f,
            2,
            &source(20_000_000.0),
            "streamDouble",
            vec![],
            |i| Sample { v: i as f32 },
            |_| {},
        );
        assert!(
            !report.lost.is_empty(),
            "batches on the dead worker must surface as lost"
        );
        assert!(report.batches + report.lost.len() == source(20_000_000.0).num_batches());
        for l in &report.lost {
            assert_eq!(l.worker, 0, "only the killed worker loses batches");
        }
    }

    #[test]
    fn sustained_guard_handles_zero_mean() {
        let mut r = StreamReport::empty();
        assert!(r.sustained(1.5));
        r.last_latency = SimTime::from_millis(5);
        assert!(!r.sustained(1.5), "nonzero last over zero mean diverges");
    }
}

//! Stream sources: rate-controlled, deterministic micro-batch emitters.

use gflink_sim::SimTime;

/// A continuous source: `rate` logical records per second for `duration`,
/// chopped into micro-batches of `batch_logical` records.
///
/// Build one with the fluent constructors —
/// `StreamSource::at_rate(2e7).for_duration(SimTime::from_secs(5))` — the
/// public fields only remain for the deprecated field-struct literal form.
#[derive(Clone, Debug)]
pub struct StreamSource {
    /// Offered load, logical records per second.
    #[deprecated(note = "construct with `StreamSource::at_rate(..)` instead")]
    pub rate: f64,
    /// How long the stream runs.
    #[deprecated(note = "set with `.for_duration(..)` instead")]
    pub duration: SimTime,
    /// Logical records per micro-batch.
    #[deprecated(note = "set with `.with_batch(logical, actual)` instead")]
    pub batch_logical: u64,
    /// Actual records materialized per micro-batch.
    #[deprecated(note = "set with `.with_batch(logical, actual)` instead")]
    pub batch_actual: usize,
}

#[allow(deprecated)]
impl StreamSource {
    /// A source offering `rate` logical records per second. Defaults: 1 s
    /// duration, 1 M-logical-record micro-batches materializing 64 rows.
    pub fn at_rate(rate: f64) -> StreamSource {
        StreamSource {
            rate,
            duration: SimTime::from_secs(1),
            batch_logical: 1_000_000,
            batch_actual: 64,
        }
    }

    /// How long the source keeps emitting.
    pub fn for_duration(mut self, duration: SimTime) -> StreamSource {
        self.duration = duration;
        self
    }

    /// Micro-batch shape: `logical` records at paper scale (drives timing)
    /// materialized as `actual` rows (drive the real computation).
    pub fn with_batch(mut self, logical: u64, actual: usize) -> StreamSource {
        self.batch_logical = logical;
        self.batch_actual = actual;
        self
    }

    /// Number of micro-batches the source emits.
    pub fn num_batches(&self) -> usize {
        ((self.rate * self.duration.as_secs_f64()) / self.batch_logical as f64).floor() as usize
    }

    /// Arrival instant of batch `i` (the time its last record arrives).
    pub fn arrival(&self, i: usize) -> SimTime {
        let per_batch = self.batch_logical as f64 / self.rate;
        SimTime::from_secs_f64(per_batch * (i + 1) as f64)
    }

    pub(crate) fn batch_logical(&self) -> u64 {
        self.batch_logical
    }

    pub(crate) fn batch_actual(&self) -> usize {
        self.batch_actual
    }

    /// Logical weight of one materialized record.
    pub(crate) fn record_scale(&self) -> f64 {
        self.batch_logical as f64 / self.batch_actual.max(1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn source_batch_arithmetic() {
        let s = StreamSource::at_rate(10_000_000.0).for_duration(SimTime::from_secs(5));
        assert_eq!(s.num_batches(), 50);
        assert_eq!(s.arrival(0), SimTime::from_millis(100));
        assert_eq!(s.arrival(9), SimTime::from_secs(1));
    }

    #[test]
    fn builder_defaults_and_overrides() {
        let s = StreamSource::at_rate(1_000_000.0);
        assert_eq!(s.num_batches(), 1);
        let s = StreamSource::at_rate(1_000_000.0)
            .for_duration(SimTime::from_secs(4))
            .with_batch(500_000, 32);
        assert_eq!(s.num_batches(), 8);
        assert_eq!(s.batch_actual(), 32);
        assert_eq!(s.record_scale(), 500_000.0 / 32.0);
    }

    #[test]
    #[allow(deprecated)]
    fn field_literal_still_works() {
        // The deprecated field-struct form must stay semantically identical
        // to the builder while downstreams migrate.
        let lit = StreamSource {
            rate: 2e6,
            duration: SimTime::from_secs(2),
            batch_logical: 1_000_000,
            batch_actual: 64,
        };
        let built = StreamSource::at_rate(2e6).for_duration(SimTime::from_secs(2));
        assert_eq!(lit.num_batches(), built.num_batches());
        assert_eq!(lit.arrival(3), built.arrival(3));
    }
}

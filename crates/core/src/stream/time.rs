//! Event time: per-record timestamps and watermark generation.
//!
//! Processing time is when a batch *arrives* at the fabric; event time is
//! when each record *happened* at the source. The two drift apart under
//! out-of-order delivery, so window semantics are anchored to a
//! **watermark**: a monotone lower bound on future event timestamps. This
//! module implements the classic bounded-out-of-orderness generator —
//! `watermark = max(event time seen) − bound` — advanced once per
//! micro-batch, which is the granularity records enter the engine at.

use gflink_sim::SimTime;

/// How watermarks are generated for an event-time stream.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WatermarkStrategy {
    bound: SimTime,
}

impl WatermarkStrategy {
    /// Bounded out-of-orderness: the watermark trails the maximum event
    /// timestamp seen by `max_lag`. Records more than `max_lag` behind the
    /// stream's head are late.
    pub fn bounded(max_lag: SimTime) -> WatermarkStrategy {
        WatermarkStrategy { bound: max_lag }
    }

    /// Timestamps are monotonically ascending: the watermark rides the
    /// maximum event timestamp directly (a zero bound).
    pub fn ascending() -> WatermarkStrategy {
        WatermarkStrategy {
            bound: SimTime::ZERO,
        }
    }

    /// The configured out-of-orderness bound.
    pub fn bound(&self) -> SimTime {
        self.bound
    }
}

/// One point of the watermark timeline: at processing instant `at` the
/// watermark stood at `watermark`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WatermarkStamp {
    /// Processing instant (the micro-batch arrival that advanced it).
    pub at: SimTime,
    /// The watermark after that batch was absorbed.
    pub watermark: SimTime,
}

/// Fold `bytes` into a running FNV-1a hash — the digest primitive for
/// window outputs and watermark timelines (value-only, timing-free, so it
/// is invariant across placement policies and fault plans).
pub(crate) fn fnv1a(hash: &mut u64, bytes: &[u8]) {
    const PRIME: u64 = 0x100_0000_01b3;
    for &b in bytes {
        *hash ^= b as u64;
        *hash = hash.wrapping_mul(PRIME);
    }
}

/// FNV-1a offset basis — the digest seed.
pub(crate) const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

/// Digest of a watermark timeline: folds every `(at, watermark)` pair in
/// order. Byte-identical timelines ⇔ equal digests.
pub fn watermark_digest(stamps: &[WatermarkStamp]) -> u64 {
    let mut h = FNV_OFFSET;
    for s in stamps {
        fnv1a(&mut h, &s.at.as_nanos().to_le_bytes());
        fnv1a(&mut h, &s.watermark.as_nanos().to_le_bytes());
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strategies_expose_their_bound() {
        assert_eq!(
            WatermarkStrategy::bounded(SimTime::from_millis(40)).bound(),
            SimTime::from_millis(40)
        );
        assert_eq!(WatermarkStrategy::ascending().bound(), SimTime::ZERO);
    }

    #[test]
    fn timeline_digest_is_order_sensitive() {
        let a = WatermarkStamp {
            at: SimTime::from_millis(1),
            watermark: SimTime::from_millis(1),
        };
        let b = WatermarkStamp {
            at: SimTime::from_millis(2),
            watermark: SimTime::from_millis(2),
        };
        assert_eq!(watermark_digest(&[a, b]), watermark_digest(&[a, b]));
        assert_ne!(watermark_digest(&[a, b]), watermark_digest(&[b, a]));
        assert_ne!(watermark_digest(&[a]), watermark_digest(&[a, b]));
    }
}

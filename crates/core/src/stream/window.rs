//! Keyed windows over event time: assigners, merge logic, aggregation.
//!
//! A window assigner maps a record's event timestamp to one or more
//! [`WindowSpan`]s; per `(span, key)` the engine keeps a **pane** of
//! buffered values. Panes fire when the watermark passes the span's end
//! plus any allowed lateness; records whose every window already fired are
//! **late** and are routed to the late counter instead of silently
//! reopening state. Session windows have no static spans — panes merge as
//! records bridge the inactivity gap, exactly once, keyed deterministically.
//!
//! Everything here is `BTreeMap`-ordered and folds values in insertion
//! order, so the CPU aggregation path and the GPU windowed-aggregation
//! kernel produce bit-identical floating-point results: the GPU work packs
//! panes in this module's iteration order and the kernel folds them with
//! the same [`AggResult::fold`].

use super::time::{fnv1a, WatermarkStamp, FNV_OFFSET};
use gflink_sim::SimTime;
use std::collections::BTreeMap;

/// One window's event-time extent: `[start, end)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct WindowSpan {
    /// Inclusive event-time start.
    pub start: SimTime,
    /// Exclusive event-time end (for sessions: last event + gap).
    pub end: SimTime,
}

/// How records map to windows.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WindowAssigner {
    /// Fixed, non-overlapping windows of `size`.
    Tumbling {
        /// Window length.
        size: SimTime,
    },
    /// Overlapping windows of `size` starting every `slide`.
    Sliding {
        /// Window length.
        size: SimTime,
        /// Start-to-start distance between consecutive windows.
        slide: SimTime,
    },
    /// Per-key activity sessions separated by at least `gap` of silence.
    Session {
        /// Inactivity gap that closes a session.
        gap: SimTime,
    },
}

/// Fluent constructor for tumbling windows: `Tumbling::of(size)`.
pub struct Tumbling;

impl Tumbling {
    /// Fixed windows of `size`, aligned to the epoch.
    pub fn of(size: SimTime) -> WindowAssigner {
        WindowAssigner::Tumbling { size }
    }
}

/// Fluent constructor for sliding windows: `Sliding::of(size, slide)`.
pub struct Sliding;

impl Sliding {
    /// Windows of `size` starting every `slide`.
    pub fn of(size: SimTime, slide: SimTime) -> WindowAssigner {
        WindowAssigner::Sliding { size, slide }
    }
}

/// Fluent constructor for session windows: `Session::with_gap(gap)`.
pub struct Session;

impl Session {
    /// Per-key sessions closed by `gap` of inactivity.
    pub fn with_gap(gap: SimTime) -> WindowAssigner {
        WindowAssigner::Session { gap }
    }
}

impl WindowAssigner {
    /// Static spans containing event time `ts` (tumbling/sliding only;
    /// session spans are dynamic and grow by merging).
    pub fn assign(&self, ts: SimTime) -> Vec<WindowSpan> {
        match *self {
            WindowAssigner::Tumbling { size } => {
                let size_n = size.as_nanos().max(1);
                let start = ts.as_nanos() / size_n * size_n;
                vec![WindowSpan {
                    start: SimTime::from_nanos(start),
                    end: SimTime::from_nanos(start + size_n),
                }]
            }
            WindowAssigner::Sliding { size, slide } => {
                let size_n = size.as_nanos().max(1);
                let slide_n = slide.as_nanos().max(1);
                let ts_n = ts.as_nanos();
                let mut starts = Vec::new();
                let mut s = ts_n / slide_n * slide_n;
                loop {
                    if s + size_n > ts_n {
                        starts.push(s);
                    } else {
                        break;
                    }
                    if s < slide_n {
                        break;
                    }
                    s -= slide_n;
                }
                starts.reverse(); // ascending start order
                starts
                    .into_iter()
                    .map(|start| WindowSpan {
                        start: SimTime::from_nanos(start),
                        end: SimTime::from_nanos(start + size_n),
                    })
                    .collect()
            }
            WindowAssigner::Session { .. } => Vec::new(),
        }
    }
}

/// The aggregation applied to each fired pane's values.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AggOp {
    /// Number of records.
    Count,
    /// Sum of the extracted values.
    Sum,
    /// Minimum value.
    Min,
    /// Maximum value.
    Max,
    /// Arithmetic mean (`sum / count`).
    Avg,
}

/// A windowed aggregation: the operation plus its per-logical-record cost
/// profile (what the CPU slots and the GPU kernel charge per element).
#[derive(Clone, Copy, Debug)]
pub struct AggSpec {
    /// The aggregation operator.
    pub op: AggOp,
    /// Floating-point operations per logical record.
    pub flops_per_record: f64,
    /// Bytes touched per logical record.
    pub bytes_per_record: f64,
}

impl AggSpec {
    /// An aggregation with the default streaming-analytics cost profile
    /// (a few hundred ops per record, one 16-byte key/value pair).
    pub fn of(op: AggOp) -> AggSpec {
        AggSpec {
            op,
            flops_per_record: 200.0,
            bytes_per_record: 16.0,
        }
    }

    /// Windowed average — the Nexmark q6 shape.
    pub fn avg() -> AggSpec {
        AggSpec::of(AggOp::Avg)
    }

    /// Override the per-logical-record cost profile.
    pub fn with_cost(mut self, flops_per_record: f64, bytes_per_record: f64) -> AggSpec {
        self.flops_per_record = flops_per_record;
        self.bytes_per_record = bytes_per_record;
        self
    }
}

/// The full fold of one pane: every downstream value (`count`, `sum`,
/// `min`, `max`, `avg`) derives from it.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AggResult {
    /// Records folded.
    pub count: u64,
    /// Sequential sum in insertion order.
    pub sum: f64,
    /// Minimum value.
    pub min: f64,
    /// Maximum value.
    pub max: f64,
}

impl AggResult {
    /// Fold `values` sequentially, in slice order. Both the CPU path and
    /// the GPU kernel call exactly this, so results are bit-identical.
    pub fn fold(values: &[f64]) -> AggResult {
        let mut count = 0u64;
        let mut sum = 0.0f64;
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        for &v in values {
            count += 1;
            sum += v;
            min = min.min(v);
            max = max.max(v);
        }
        AggResult {
            count,
            sum,
            min,
            max,
        }
    }

    /// The scalar the configured [`AggOp`] extracts.
    pub fn value(&self, op: AggOp) -> f64 {
        match op {
            AggOp::Count => self.count as f64,
            AggOp::Sum => self.sum,
            AggOp::Min => self.min,
            AggOp::Max => self.max,
            AggOp::Avg => {
                if self.count == 0 {
                    0.0
                } else {
                    self.sum / self.count as f64
                }
            }
        }
    }
}

/// One emitted window result: a `(span, key)` pane's aggregate plus when
/// and how fast the engine produced it.
#[derive(Clone, Debug)]
pub struct WindowOutput {
    /// The window's event-time extent.
    pub span: WindowSpan,
    /// The pane's key.
    pub key: u64,
    /// The fold over the pane's values.
    pub agg: AggResult,
    /// Engine completion instant (processing time).
    pub fired_at: SimTime,
    /// Completion minus fire eligibility (the watermark passing the span).
    pub latency: SimTime,
    /// Satisfied from a durable checkpoint instead of executing.
    pub restored: bool,
}

/// Digest of window outputs: folds `(span, key, count, sum, min, max)` in
/// slice order — value-only, so it is invariant across engines, placement
/// policies and fault plans. Sort by `(span, key)` before calling for a
/// canonical digest.
pub fn output_digest(outputs: &[WindowOutput]) -> u64 {
    let mut h = FNV_OFFSET;
    for o in outputs {
        fnv1a(&mut h, &o.span.start.as_nanos().to_le_bytes());
        fnv1a(&mut h, &o.span.end.as_nanos().to_le_bytes());
        fnv1a(&mut h, &o.key.to_le_bytes());
        fnv1a(&mut h, &o.agg.count.to_le_bytes());
        fnv1a(&mut h, &o.agg.sum.to_bits().to_le_bytes());
        fnv1a(&mut h, &o.agg.min.to_bits().to_le_bytes());
        fnv1a(&mut h, &o.agg.max.to_bits().to_le_bytes());
    }
    h
}

/// One open `(span, key)` pane: buffered values in insertion order plus
/// the accumulated logical weight (paper-scale record count).
#[derive(Clone, Debug, PartialEq)]
pub(crate) struct Pane {
    pub(crate) span: WindowSpan,
    pub(crate) key: u64,
    pub(crate) values: Vec<f64>,
    pub(crate) logical: f64,
}

/// A window the watermark released: every pane of one span, keys
/// ascending, ready to execute as one unit of work.
#[derive(Clone, Debug)]
pub(crate) struct FiredWindow {
    /// Fire order — the GPU work tag and checkpoint block identity.
    pub(crate) seq: u32,
    pub(crate) span: WindowSpan,
    /// The arrival instant whose watermark advance released the window.
    pub(crate) fire_at: SimTime,
    pub(crate) panes: Vec<Pane>,
}

impl FiredWindow {
    pub(crate) fn rows(&self) -> usize {
        self.panes.iter().map(|p| p.values.len()).sum()
    }

    pub(crate) fn logical(&self) -> u64 {
        (self.panes.iter().map(|p| p.logical).sum::<f64>()).round() as u64
    }
}

/// The keyed event-time state machine: open panes, the watermark, the
/// late-record counter, and the fire sequence. Driven batch-by-batch by
/// the engines; identical inputs produce identical fire sequences on
/// every engine.
pub(crate) struct KeyedWindows {
    assigner: WindowAssigner,
    lateness: SimTime,
    bound: SimTime,
    pub(crate) max_ts: Option<SimTime>,
    pub(crate) watermark: Option<SimTime>,
    /// Keyed `(start ns, end ns, key)` for deterministic iteration.
    pub(crate) open: BTreeMap<(u64, u64, u64), Pane>,
    pub(crate) late_records: u64,
    pub(crate) fire_seq: u32,
    pub(crate) stamps: Vec<WatermarkStamp>,
}

impl KeyedWindows {
    pub(crate) fn new(assigner: WindowAssigner, lateness: SimTime, bound: SimTime) -> KeyedWindows {
        KeyedWindows {
            assigner,
            lateness,
            bound,
            max_ts: None,
            watermark: None,
            open: BTreeMap::new(),
            late_records: 0,
            fire_seq: 0,
            stamps: Vec::new(),
        }
    }

    /// Whether a span has already been released by the watermark (its end
    /// plus allowed lateness is at or behind it).
    fn closed(&self, end: SimTime) -> bool {
        match self.watermark {
            Some(wm) => end + self.lateness <= wm,
            None => false,
        }
    }

    /// Route one record into its pane(s); counts it late when every
    /// assigned window already fired.
    pub(crate) fn insert(&mut self, ts: SimTime, key: u64, value: f64, logical: f64) {
        self.max_ts = Some(self.max_ts.map_or(ts, |m| m.max(ts)));
        match self.assigner {
            WindowAssigner::Session { gap } => self.insert_session(ts, key, value, logical, gap),
            _ => {
                let spans = self.assigner.assign(ts);
                let mut landed = false;
                for span in spans {
                    if self.closed(span.end) {
                        continue;
                    }
                    landed = true;
                    let k = (span.start.as_nanos(), span.end.as_nanos(), key);
                    let pane = self.open.entry(k).or_insert_with(|| Pane {
                        span,
                        key,
                        values: Vec::new(),
                        logical: 0.0,
                    });
                    pane.values.push(value);
                    pane.logical += logical;
                }
                if !landed {
                    self.late_records += 1;
                }
            }
        }
    }

    /// Session insertion: merge every same-key pane whose gap-extended
    /// interval touches the record's, earliest-first, then absorb the
    /// record. A record whose own session would fire instantly is late.
    fn insert_session(&mut self, ts: SimTime, key: u64, value: f64, logical: f64, gap: SimTime) {
        if self.closed(ts + gap) {
            self.late_records += 1;
            return;
        }
        let touching: Vec<(u64, u64, u64)> = self
            .open
            .iter()
            .filter(|((_, _, k), pane)| {
                *k == key && ts <= pane.span.end && pane.span.start <= ts + gap
            })
            .map(|(k, _)| *k)
            .collect();
        let mut span = WindowSpan {
            start: ts,
            end: ts + gap,
        };
        let mut values = Vec::new();
        let mut weight = 0.0;
        for k in touching {
            let pane = self.open.remove(&k).expect("touching pane exists");
            span.start = span.start.min(pane.span.start);
            span.end = span.end.max(pane.span.end);
            values.extend(pane.values);
            weight += pane.logical;
        }
        values.push(value);
        weight += logical;
        self.open.insert(
            (span.start.as_nanos(), span.end.as_nanos(), key),
            Pane {
                span,
                key,
                values,
                logical: weight,
            },
        );
    }

    /// Advance the watermark after a batch arriving at `arrival` was
    /// absorbed, record the timeline stamp, and fire released windows.
    pub(crate) fn advance(&mut self, arrival: SimTime) -> Vec<FiredWindow> {
        let head = match self.max_ts {
            Some(m) => m,
            None => return Vec::new(),
        };
        let wm = head.saturating_sub(self.bound);
        let wm = self.watermark.map_or(wm, |old| old.max(wm));
        self.watermark = Some(wm);
        self.stamps.push(WatermarkStamp {
            at: arrival,
            watermark: wm,
        });
        self.fire(arrival, false)
    }

    /// End of stream: fire everything still open at `at` and stamp the
    /// terminal watermark (the bound collapses — no more data can come).
    pub(crate) fn flush(&mut self, at: SimTime) -> Vec<FiredWindow> {
        if let Some(head) = self.max_ts {
            self.watermark = Some(self.watermark.map_or(head, |old| old.max(head)));
            self.stamps.push(WatermarkStamp {
                at,
                watermark: head.max(self.watermark.unwrap_or(head)),
            });
        }
        self.fire(at, true)
    }

    /// Release eligible panes grouped per span, in `(end, start, key)`
    /// order — the deterministic fire sequence.
    fn fire(&mut self, at: SimTime, all: bool) -> Vec<FiredWindow> {
        let mut eligible: Vec<(u64, u64, u64)> = self
            .open
            .iter()
            .filter(|(_, pane)| all || self.closed(pane.span.end))
            .map(|(k, _)| *k)
            .collect();
        eligible.sort_by_key(|&(start, end, key)| (end, start, key));
        let mut fired: Vec<FiredWindow> = Vec::new();
        for k in eligible {
            let pane = self.open.remove(&k).expect("eligible pane exists");
            match fired.last_mut() {
                Some(fw) if fw.span == pane.span => fw.panes.push(pane),
                _ => {
                    let seq = self.fire_seq;
                    self.fire_seq += 1;
                    fired.push(FiredWindow {
                        seq,
                        span: pane.span,
                        fire_at: at,
                        panes: vec![pane],
                    });
                }
            }
        }
        fired
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> SimTime {
        SimTime::from_millis(v)
    }

    #[test]
    fn tumbling_assignment_aligns_to_epoch() {
        let w = Tumbling::of(ms(100));
        assert_eq!(
            w.assign(ms(250)),
            vec![WindowSpan {
                start: ms(200),
                end: ms(300)
            }]
        );
        assert_eq!(w.assign(ms(200))[0].start, ms(200));
        assert_eq!(w.assign(SimTime::ZERO)[0].start, SimTime::ZERO);
    }

    #[test]
    fn sliding_assignment_covers_every_overlapping_window() {
        let w = Sliding::of(ms(100), ms(25));
        let spans = w.assign(ms(130));
        assert_eq!(spans.len(), 4);
        assert_eq!(spans[0].start, ms(50));
        assert_eq!(spans[3].start, ms(125));
        for s in &spans {
            assert!(s.start <= ms(130) && ms(130) < s.end);
        }
        // Near the epoch only the in-range windows exist.
        assert_eq!(w.assign(ms(10)).len(), 1);
    }

    #[test]
    fn watermark_fires_tumbling_windows_and_routes_late_records() {
        let mut kw = KeyedWindows::new(Tumbling::of(ms(100)), SimTime::ZERO, ms(20));
        kw.insert(ms(50), 1, 1.0, 10.0);
        kw.insert(ms(90), 1, 2.0, 10.0);
        assert!(kw.advance(ms(100)).is_empty(), "watermark 70 < end 100");
        kw.insert(ms(130), 2, 5.0, 10.0);
        let fired = kw.advance(ms(200));
        assert_eq!(fired.len(), 1, "watermark 110 releases [0,100)");
        assert_eq!(fired[0].span.start, SimTime::ZERO);
        assert_eq!(fired[0].panes.len(), 1);
        assert_eq!(AggResult::fold(&fired[0].panes[0].values).sum, 3.0);
        assert_eq!(fired[0].logical(), 20);
        // A record for the fired window is late, not silently reopened.
        kw.insert(ms(60), 1, 9.0, 10.0);
        assert_eq!(kw.late_records, 1);
        // Flush releases the rest and the fire sequence advances.
        let rest = kw.flush(ms(300));
        assert_eq!(rest.len(), 1);
        assert_eq!(rest[0].seq, 1);
        assert_eq!(rest[0].panes[0].key, 2);
    }

    #[test]
    fn allowed_lateness_keeps_windows_open_longer() {
        let mut kw = KeyedWindows::new(Tumbling::of(ms(100)), ms(50), SimTime::ZERO);
        kw.insert(ms(10), 1, 1.0, 1.0);
        kw.insert(ms(120), 1, 2.0, 1.0);
        assert!(
            kw.advance(ms(120)).is_empty(),
            "end 100 + lateness 50 > watermark 120"
        );
        kw.insert(ms(20), 1, 3.0, 1.0); // within lateness: not late
        assert_eq!(kw.late_records, 0);
        kw.insert(ms(160), 1, 4.0, 1.0);
        let fired = kw.advance(ms(160));
        assert_eq!(fired.len(), 1);
        assert_eq!(AggResult::fold(&fired[0].panes[0].values).count, 2);
    }

    #[test]
    fn sessions_merge_on_bridging_records() {
        let mut kw = KeyedWindows::new(Session::with_gap(ms(50)), SimTime::ZERO, SimTime::ZERO);
        kw.insert(ms(0), 7, 1.0, 1.0);
        kw.insert(ms(100), 7, 2.0, 1.0);
        assert_eq!(kw.open.len(), 2, "two separate sessions");
        kw.insert(ms(25), 7, 3.0, 1.0); // touches the first session only
        assert_eq!(kw.open.len(), 2);
        kw.insert(ms(60), 7, 4.0, 1.0); // bridges [0,75) and [100,150)
        assert_eq!(kw.open.len(), 1, "bridging record merges the sessions");
        let pane = kw.open.values().next().unwrap();
        assert_eq!(pane.span.start, SimTime::ZERO);
        assert_eq!(pane.span.end, ms(150));
        assert_eq!(pane.values, vec![1.0, 3.0, 2.0, 4.0]);
        // A different key never merges.
        kw.insert(ms(60), 8, 9.0, 1.0);
        assert_eq!(kw.open.len(), 2);
    }

    #[test]
    fn agg_results_cover_every_op() {
        let r = AggResult::fold(&[3.0, 1.0, 2.0]);
        assert_eq!(r.value(AggOp::Count), 3.0);
        assert_eq!(r.value(AggOp::Sum), 6.0);
        assert_eq!(r.value(AggOp::Min), 1.0);
        assert_eq!(r.value(AggOp::Max), 3.0);
        assert_eq!(r.value(AggOp::Avg), 2.0);
        assert_eq!(AggResult::fold(&[]).value(AggOp::Avg), 0.0);
    }
}

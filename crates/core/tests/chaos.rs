//! Chaos properties: for any seeded `FaultPlan` that leaves at least one
//! GPU alive, every submitted GWork completes with byte-identical results
//! to a fault-free run — and the whole recovery is deterministic: two runs
//! from the same seed produce identical timelines and ledgers.

use gflink_core::{CacheKey, CompletedWork, GWork, GpuManager, GpuWorkerConfig, JobId, WorkBuf};
use gflink_gpu::{GpuModel, KernelArgs, KernelId, KernelProfile, KernelRegistry};
use gflink_memory::HBuffer;
use gflink_sim::{FaultPlan, MembershipPlan, RetryPolicy, SimTime};
use parking_lot::Mutex;
use proptest::prelude::*;
use std::sync::Arc;

fn registry() -> Arc<Mutex<KernelRegistry>> {
    let mut reg = KernelRegistry::new();
    reg.register("scale2", |args: &mut KernelArgs<'_, '_>| {
        let n = args.n_actual;
        for i in 0..n {
            let v = args.inputs[0].read_f32(i * 4);
            args.outputs[0].write_f32(i * 4, v * 2.0);
        }
        KernelProfile::new(args.n_logical as f64, args.n_logical as f64 * 8.0)
    });
    Arc::new(Mutex::new(reg))
}

/// Work `i` carries input data derived from its index, so byte-identity of
/// outputs across runs is a meaningful per-work check.
fn mk_work(i: u32, cached: bool) -> GWork {
    let base = i as f32;
    let data = Arc::new(HBuffer::from_f32s(&[base, base + 0.5, -base, base * 3.0]));
    let key = CacheKey {
        dataset: 9,
        partition: i % 4,
        block: i,
    };
    let logical = 1u64 << 22;
    GWork {
        name: format!("w{i}").into(),
        execute_name: "scale2".into(),
        kernel: KernelId::UNRESOLVED,
        ptx_path: "/scale2.ptx".into(),
        block_size: 256,
        grid_size: 1,
        inputs: vec![if cached {
            WorkBuf::cached(data, logical, key)
        } else {
            WorkBuf::transient(data, logical)
        }],
        out_actual_bytes: 16,
        out_logical_bytes: logical,
        out_records: 4,
        params: Arc::from([]),
        n_actual: 4,
        n_logical: logical / 4,
        coalescing: 1.0,
        tag: (0, i),
    }
}

/// The single job every chaos scenario runs as.
const JOB: JobId = JobId(1);

fn run_plan(plan: FaultPlan, gpus: usize, n_works: u32) -> (Vec<CompletedWork>, GpuManager) {
    run_elastic(plan, MembershipPlan::new(), &[], gpus, n_works)
}

/// Full elastic harness: scripted faults AND membership changes against
/// one worker, with `covered` tags pre-installed as restored from a
/// checkpoint (those submissions are satisfied from the snapshot, not
/// executed).
fn run_elastic(
    faults: FaultPlan,
    membership: MembershipPlan,
    covered: &[(u32, u32)],
    gpus: usize,
    n_works: u32,
) -> (Vec<CompletedWork>, GpuManager) {
    let mut m = GpuManager::new(
        0,
        GpuWorkerConfig {
            models: vec![GpuModel::TeslaC2050; gpus],
            hang_timeout: SimTime::from_millis(50),
            retry: RetryPolicy {
                max_retries: 100,
                ..RetryPolicy::default()
            },
            ..GpuWorkerConfig::default()
        },
        registry(),
    );
    m.set_fault_plan(faults);
    m.set_membership_plan(membership);
    m.restore_job(JOB, 1, covered);
    for i in 0..n_works {
        m.submit_for(
            JOB,
            mk_work(i, i % 2 == 0),
            SimTime::from_micros(i as u64 * 40),
        );
    }
    let mut done = m.drain_job(JOB);
    done.sort_by_key(|d| d.tag);
    (done, m)
}

/// Teardown with work still pending is accounted, not leaked: every
/// submitted-but-undrained work lands in the ledger as `parked_abandoned`.
#[test]
fn end_job_accounts_undrained_work_as_abandoned() {
    let mut m = GpuManager::new(0, GpuWorkerConfig::default(), registry());
    m.begin_job(JOB);
    for i in 0..5 {
        m.submit_for(JOB, mk_work(i, false), SimTime::from_micros(i as u64));
    }
    m.end_job(JOB);
    assert_eq!(m.fault_ledger().parked_abandoned, 5);
    // Idempotent: a second close of the gone session adds nothing.
    m.end_job(JOB);
    assert_eq!(m.fault_ledger().parked_abandoned, 5);
}

/// The fabric-level version: a `JobHandle` dropped with submitted works
/// never drained tears its session down with the pen and pending queue
/// accounted in the worker's fault ledger.
#[test]
fn dropped_job_handle_accounts_parked_work() {
    use gflink_core::{FabricConfig, GpuFabric};
    let fabric = GpuFabric::new(1, FabricConfig::default());
    fabric.register_kernel("scale2", |args: &mut KernelArgs<'_, '_>| {
        KernelProfile::new(args.n_logical as f64, args.n_logical as f64 * 8.0)
    });
    {
        let handle = fabric.open_job().expect("admission");
        for i in 0..4 {
            handle.submit_to(0, mk_work(i, false), SimTime::from_micros(i as u64));
        }
        // Dropped here with all four works still pending.
    }
    let ledger = fabric.with_managers(|ms| ms[0].fault_ledger());
    assert_eq!(ledger.parked_abandoned, 4);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// With ≥1 surviving GPU (which `FaultPlan::random` guarantees), every
    /// work completes and its output bytes equal the fault-free run's.
    #[test]
    fn chaos_completes_byte_identical_to_fault_free(
        seed in any::<u64>(),
        gpus in 2usize..4,
        n_events in 1usize..7,
        n_works in 8u32..28,
    ) {
        let plan = FaultPlan::random(seed, gpus, SimTime::from_millis(40), n_events);
        prop_assert!((plan.gpus_lost() as usize) < gpus, "plan must leave a survivor");
        let (clean, _) = run_plan(FaultPlan::new(), gpus, n_works);
        let (chaotic, m) = run_plan(plan, gpus, n_works);
        prop_assert_eq!(chaotic.len(), n_works as usize);
        prop_assert_eq!(clean.len(), chaotic.len());
        for (a, b) in chaotic.iter().zip(&clean) {
            prop_assert_eq!(a.tag, b.tag);
            prop_assert_eq!(a.output.as_slice(), b.output.as_slice());
        }
        let session = m.session(JOB).unwrap();
        prop_assert!(session.failed().is_empty());
        // Recovery leaks nothing: only cache-resident bytes stay allocated.
        for g in 0..m.gpu_count() {
            prop_assert_eq!(m.gpu(g).dmem.used(), session.region(g).used());
        }
    }

    /// Determinism under chaos: the same seed yields the same placements,
    /// the same completion instants and the same ledger, twice.
    #[test]
    fn chaos_is_deterministic_per_seed(
        seed in any::<u64>(),
        n_events in 1usize..7,
        n_works in 8u32..24,
    ) {
        let timeline = |_| {
            let plan = FaultPlan::random(seed, 2, SimTime::from_millis(40), n_events);
            let (done, m) = run_plan(plan, 2, n_works);
            (
                done.iter()
                    .map(|d| (d.tag, d.gpu, d.stream, d.timing.completed))
                    .collect::<Vec<_>>(),
                m.fault_ledger(),
            )
        };
        prop_assert_eq!(timeline(0), timeline(1));
    }

    /// Elastic chaos: joins, leaves and kills interleaved under one clock.
    /// Every work still completes with output bytes identical to the
    /// fixed-membership fault-free run, every applied change is ledgered,
    /// and devices joined mid-run are real dispatch targets.
    #[test]
    fn elastic_chaos_byte_identical_and_ledgered(
        seed in any::<u64>(),
        gpus in 2usize..4,
        n_faults in 0usize..5,
        n_changes in 1usize..6,
        n_works in 8u32..28,
    ) {
        let h = SimTime::from_millis(40);
        let faults = FaultPlan::random(seed, gpus, h, n_faults);
        let membership = MembershipPlan::random(seed, gpus, h, n_changes);
        let (clean, _) = run_plan(FaultPlan::new(), gpus, n_works);
        let (done, m) = run_elastic(faults, membership.clone(), &[], gpus, n_works);
        prop_assert_eq!(done.len(), n_works as usize);
        for (a, b) in done.iter().zip(&clean) {
            prop_assert_eq!(a.tag, b.tag);
            prop_assert_eq!(a.output.as_slice(), b.output.as_slice());
        }
        let joins = membership.events().iter()
            .filter(|e| matches!(e.kind, gflink_sim::MembershipKind::Join))
            .count() as u64;
        let leaves = membership.events().len() as u64 - joins;
        let ledger = m.fault_ledger();
        prop_assert_eq!(ledger.members_joined, joins);
        // A leave targeting a device the fault plan already killed is a
        // no-op, so the ledger may undercount the script — never over.
        prop_assert!(ledger.members_left <= leaves);
        prop_assert_eq!(m.gpu_count(), gpus + joins as usize);
        // Recovery and rebalancing leak nothing on any device, joined,
        // retired or original.
        let session = m.session(JOB).unwrap();
        prop_assert!(session.failed().is_empty());
        for g in 0..m.gpu_count() {
            prop_assert_eq!(m.gpu(g).dmem.used(), session.region(g).used());
        }
    }

    /// Elastic chaos is deterministic: the same seed replays the same
    /// placements, instants and ledger — joins and leaves included.
    #[test]
    fn elastic_chaos_is_deterministic_per_seed(
        seed in any::<u64>(),
        n_faults in 0usize..5,
        n_changes in 1usize..6,
        n_works in 8u32..24,
    ) {
        let h = SimTime::from_millis(40);
        let timeline = |_| {
            let (done, m) = run_elastic(
                FaultPlan::random(seed, 2, h, n_faults),
                MembershipPlan::random(seed, 2, h, n_changes),
                &[],
                2,
                n_works,
            );
            (
                done.iter()
                    .map(|d| (d.tag, d.gpu, d.stream, d.timing.completed))
                    .collect::<Vec<_>>(),
                m.fault_ledger(),
            )
        };
        prop_assert_eq!(timeline(0), timeline(1));
    }

    /// Exactly-once across a restore boundary, under chaos: submissions
    /// whose tags a snapshot covers are satisfied from it (never executed),
    /// everything else executes once, and the double entry
    /// `works_restored + completions == works submitted` balances.
    #[test]
    fn restore_covers_each_tag_exactly_once(
        seed in any::<u64>(),
        n_faults in 0usize..5,
        n_works in 8u32..24,
        covered_stride in 2u32..5,
    ) {
        let covered: Vec<(u32, u32)> =
            (0..n_works).filter(|i| i % covered_stride == 0).map(|i| (0, i)).collect();
        let (done, m) = run_elastic(
            FaultPlan::random(seed, 2, SimTime::from_millis(40), n_faults),
            MembershipPlan::new(),
            &covered,
            2,
            n_works,
        );
        let ledger = m.fault_ledger();
        prop_assert_eq!(ledger.works_restored, covered.len() as u64);
        prop_assert_eq!(done.len() as u64 + ledger.works_restored, n_works as u64);
        for d in &done {
            prop_assert!(!covered.contains(&d.tag), "covered tag {:?} executed", d.tag);
        }
        let session = m.session(JOB).unwrap();
        prop_assert!(session.failed().is_empty());
        prop_assert!(session.covered_tags().is_empty(), "every covered tag consumed");
    }

    /// A fault-free chaos harness run is also identical to a run with no
    /// plan at all: fault machinery must cost nothing when quiet.
    #[test]
    fn empty_plan_changes_nothing(n_works in 4u32..20) {
        let (a, ma) = run_plan(FaultPlan::new(), 2, n_works);
        let (b, mb) = run_plan(FaultPlan::random(1, 2, SimTime::from_millis(40), 0), 2, n_works);
        let key = |d: &CompletedWork| (d.tag, d.gpu, d.stream, d.timing.completed);
        prop_assert_eq!(a.iter().map(key).collect::<Vec<_>>(), b.iter().map(key).collect::<Vec<_>>());
        prop_assert!(ma.fault_ledger().is_quiet());
        prop_assert!(mb.fault_ledger().is_quiet());
    }
}

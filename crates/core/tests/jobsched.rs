//! Multi-job scheduling (ISSUE 5): admission control, weighted-fair
//! arbitration, backpressure pens, cache-budget partitioning, and the RAII
//! `JobHandle` lifecycle — plus the contract that none of it ever changes
//! *what* a job computes, only *when*.

use gflink_core::{
    AdmissionError, CacheKey, FabricConfig, GWork, GpuFabric, GpuManager, GpuMapSpec,
    GpuWorkerConfig, JobId, SchedulerConfig, SchedulingPolicy, SpecError, WorkBuf,
};
use gflink_gpu::{GpuModel, KernelArgs, KernelId, KernelProfile, KernelRegistry};
use gflink_memory::HBuffer;
use gflink_sim::{FaultKind, FaultPlan, SimTime};
use parking_lot::Mutex;
use std::sync::Arc;

const MIB: u64 = 1 << 20;
const JOB_A: JobId = JobId(1);
const JOB_B: JobId = JobId(2);

fn scale2(args: &mut KernelArgs<'_, '_>) -> KernelProfile {
    let n = args.n_actual;
    let input = args.inputs[0];
    let out = &mut args.outputs[0];
    for i in 0..n {
        out.write_f32(i * 4, input.read_f32(i * 4) * 2.0);
    }
    KernelProfile::new(args.n_logical as f64, args.n_logical as f64 * 8.0)
}

fn registry_with_scale2() -> Arc<Mutex<KernelRegistry>> {
    let mut reg = KernelRegistry::new();
    reg.register("scale2", scale2);
    Arc::new(Mutex::new(reg))
}

fn mk_work(tag: (u32, u32), logical: u64, cache: bool) -> GWork {
    let data = Arc::new(HBuffer::from_f32s(&[1.0, 2.0, 3.0, 4.0]));
    let key = CacheKey {
        dataset: u64::from(tag.0),
        partition: tag.0,
        block: tag.1,
    };
    GWork {
        name: format!("w{}-{}", tag.0, tag.1).into(),
        execute_name: "scale2".into(),
        kernel: KernelId::UNRESOLVED,
        ptx_path: "/scale2.ptx".into(),
        block_size: 256,
        grid_size: 1,
        inputs: vec![if cache {
            WorkBuf::cached(data, logical, key)
        } else {
            WorkBuf::transient(data, logical)
        }],
        out_actual_bytes: 16,
        out_logical_bytes: logical,
        out_records: 4,
        params: Arc::from([]),
        n_actual: 4,
        n_logical: logical / 4,
        coalescing: 1.0,
        tag,
    }
}

fn manager_with(
    cfg_scheduler: SchedulerConfig,
    models: Vec<GpuModel>,
    streams: usize,
) -> GpuManager {
    GpuManager::new(
        0,
        GpuWorkerConfig {
            models,
            streams_per_gpu: streams,
            scheduling: SchedulingPolicy::LocalityAware,
            scheduler: cfg_scheduler,
            ..GpuWorkerConfig::default()
        },
        registry_with_scale2(),
    )
}

// ------------------------------------------------------------------
// Admission control + the RAII JobHandle surface
// ------------------------------------------------------------------

fn fabric_with_cap(cap: usize) -> GpuFabric {
    let mut cfg = FabricConfig::default();
    cfg.worker.scheduler.max_live_jobs = cap;
    let fabric = GpuFabric::new(1, cfg);
    fabric.register_kernel("scale2", scale2);
    fabric
}

#[test]
fn admission_cap_rejects_then_admits_after_finish() {
    let fabric = fabric_with_cap(2);
    let j1 = fabric.open_job().expect("first admits");
    let _j2 = fabric.open_job().expect("second admits");
    assert_eq!(fabric.live_jobs(), 2);
    match fabric.open_job() {
        Err(AdmissionError::JobLimit { live, cap }) => {
            assert_eq!((live, cap), (2, 2));
        }
        Ok(_) => panic!("third job must be refused at cap 2"),
    }
    // Finishing a job frees its admission slot.
    j1.finish();
    assert_eq!(fabric.live_jobs(), 1);
    let j3 = fabric.open_job().expect("slot freed by finish");
    assert_eq!(fabric.live_jobs(), 2);
    drop(j3);
}

#[test]
fn job_handle_is_idempotent_and_drop_releases_the_session() {
    let fabric = fabric_with_cap(usize::MAX);
    let handle = fabric.open_job().expect("admit");
    let job = handle.id();
    handle.submit_to(0, mk_work((0, 0), MIB, true), SimTime::ZERO);
    let done = handle.drain_worker(0);
    assert_eq!(done.len(), 1);
    assert_eq!(done[0].output.to_f32_vec(), vec![2.0, 4.0, 6.0, 8.0]);
    fabric.with_managers(|ms| {
        assert!(ms[0].session(job).is_some(), "session live while handle is");
        assert!(ms[0].gpu(0).dmem.used() > 0, "cached block resident");
    });
    assert!(handle.faults().is_quiet());
    handle.finish();
    handle.finish(); // idempotent
    drop(handle); // drop after finish must not double-release
    fabric.with_managers(|ms| {
        assert!(
            ms[0].session(job).is_none(),
            "finish tears the session down"
        );
        assert_eq!(ms[0].gpu(0).dmem.used(), 0, "regions released exactly");
    });
    assert_eq!(fabric.live_jobs(), 0);

    // Pure RAII: a dropped (never finished) handle releases too.
    let job = {
        let h = fabric.open_job().expect("admit");
        h.submit_to(0, mk_work((1, 0), MIB, true), SimTime::ZERO);
        h.drain_worker(0);
        h.id()
    };
    fabric.with_managers(|ms| assert!(ms[0].session(job).is_none()));
    assert_eq!(fabric.live_jobs(), 0);
}

#[test]
fn spec_build_validates_up_front() {
    let fabric = fabric_with_cap(usize::MAX);
    assert!(GpuMapSpec::new("scale2").build(&fabric).is_ok());
    match GpuMapSpec::new("no-such-kernel").build(&fabric) {
        Err(SpecError::UnregisteredKernel { name }) => assert_eq!(name, "no-such-kernel"),
        other => panic!("expected UnregisteredKernel, got {:?}", other.err()),
    }
    let degenerate = GpuMapSpec::new("scale2")
        .with_extra_input(Arc::new(HBuffer::zeroed(16)), 0)
        .build(&fabric);
    match degenerate {
        Err(SpecError::DegenerateExtraInput {
            actual_bytes,
            logical_bytes,
        }) => assert_eq!((actual_bytes, logical_bytes), (16, 0)),
        other => panic!("expected DegenerateExtraInput, got {:?}", other.err()),
    }
    let ok = GpuMapSpec::new("scale2")
        .with_extra_input(Arc::new(HBuffer::zeroed(16)), 16)
        .build(&fabric);
    assert!(ok.is_ok());
}

// ------------------------------------------------------------------
// Weighted fair queuing
// ------------------------------------------------------------------

/// Heavy tenant floods one single-stream GPU; light tenant submits a
/// handful of small works at the same instant (but after the heavy job in
/// arrival order). Returns (light tenant's last completion, tag-sorted
/// output bytes of every completion).
type TaggedOutputs = Vec<((u32, u32), Vec<u8>)>;

fn contended_run(cfg: SchedulerConfig) -> (SimTime, TaggedOutputs) {
    let mut m = manager_with(cfg, vec![GpuModel::TeslaC2050], 1);
    m.begin_job(JOB_A);
    m.begin_job(JOB_B);
    for i in 0..32 {
        m.submit_for(JOB_A, mk_work((0, i), 4 * MIB, false), SimTime::ZERO);
    }
    for i in 0..4 {
        m.submit_for(JOB_B, mk_work((1, i), MIB / 4, false), SimTime::ZERO);
    }
    let heavy = m.drain_job(JOB_A);
    let light = m.drain_job(JOB_B);
    assert_eq!(heavy.len(), 32);
    assert_eq!(light.len(), 4);
    let light_done = light.iter().map(|d| d.timing.completed).max().unwrap();
    let mut all: Vec<_> = heavy
        .iter()
        .chain(light.iter())
        .map(|d| (d.tag, d.output.as_slice().to_vec()))
        .collect();
    all.sort_by_key(|&(tag, _)| tag);
    (light_done, all)
}

#[test]
fn wfq_unstarves_the_light_tenant_without_changing_results() {
    let (fifo_done, fifo_out) = contended_run(SchedulerConfig::default());
    let (wfq_done, wfq_out) = contended_run(SchedulerConfig::weighted_fair());
    assert!(
        wfq_done < fifo_done,
        "WFQ must finish the light tenant earlier than FIFO \
         (wfq {wfq_done}, fifo {fifo_done})"
    );
    assert_eq!(fifo_out, wfq_out, "arbitration must never change outputs");
}

#[test]
fn wfq_weights_shift_service_toward_the_heavier_job() {
    // Two equal backlogs; the job with weight 4 must drain first.
    let run = |wa: u32, wb: u32| {
        let mut m = manager_with(
            SchedulerConfig::weighted_fair(),
            vec![GpuModel::TeslaC2050],
            1,
        );
        m.begin_job_weighted(JOB_A, wa);
        m.begin_job_weighted(JOB_B, wb);
        for i in 0..16 {
            m.submit_for(JOB_A, mk_work((0, i), 4 * MIB, false), SimTime::ZERO);
            m.submit_for(JOB_B, mk_work((1, i), 4 * MIB, false), SimTime::ZERO);
        }
        let a = m.drain_job(JOB_A);
        let b = m.drain_job(JOB_B);
        let last =
            |v: &[gflink_core::CompletedWork]| v.iter().map(|d| d.timing.completed).max().unwrap();
        (last(&a), last(&b))
    };
    let (a_fast, b_slow) = run(4, 1);
    assert!(
        a_fast < b_slow,
        "weight-4 job must finish before the weight-1 job ({a_fast} vs {b_slow})"
    );
    let (a_slow, b_fast) = run(1, 4);
    assert!(
        b_fast < a_slow,
        "flipping the weights must flip the finish order ({b_fast} vs {a_slow})"
    );
}

#[test]
fn wfq_drain_is_deterministic() {
    let run = || {
        let (done, out) = contended_run(SchedulerConfig::weighted_fair());
        (done, out)
    };
    assert_eq!(run(), run());
}

// ------------------------------------------------------------------
// Backpressure
// ------------------------------------------------------------------

#[test]
fn backpressure_pens_submissions_but_loses_none() {
    let uncapped = {
        let (_, out) = contended_run(SchedulerConfig::default());
        out
    };
    let cfg = SchedulerConfig {
        max_queued_bytes: 32 * MIB,
        ..SchedulerConfig::default()
    };
    let mut m = manager_with(cfg, vec![GpuModel::TeslaC2050], 1);
    m.begin_job(JOB_A);
    m.begin_job(JOB_B);
    for i in 0..32 {
        m.submit_for(JOB_A, mk_work((0, i), 4 * MIB, false), SimTime::ZERO);
    }
    for i in 0..4 {
        m.submit_for(JOB_B, mk_work((1, i), MIB / 4, false), SimTime::ZERO);
    }
    let heavy = m.drain_job(JOB_A);
    let light = m.drain_job(JOB_B);
    assert_eq!(heavy.len(), 32, "parked works are delayed, never dropped");
    assert_eq!(light.len(), 4);
    let session = m.session(JOB_A).expect("session open");
    assert!(
        session.parked_works() > 0,
        "the heavy job must have hit the pen"
    );
    assert!(session.park_delay() > SimTime::ZERO);
    let b = m.session(JOB_B).expect("session open");
    assert_eq!(b.parked_works(), 0, "the light job never exceeds the cap");
    let mut all: Vec<_> = heavy
        .iter()
        .chain(light.iter())
        .map(|d| (d.tag, d.output.as_slice().to_vec()))
        .collect();
    all.sort_by_key(|&(tag, _)| tag);
    assert_eq!(all, uncapped, "backpressure must never change outputs");
}

// ------------------------------------------------------------------
// Cache-budget partitioning
// ------------------------------------------------------------------

#[test]
fn cache_partition_splits_by_weight_and_reclaims_on_close() {
    let cfg = SchedulerConfig {
        partition_cache: true,
        ..SchedulerConfig::default()
    };
    let mut m = GpuManager::new(
        0,
        GpuWorkerConfig {
            models: vec![GpuModel::TeslaC2050],
            cache_capacity: 4 * MIB,
            scheduler: cfg,
            ..GpuWorkerConfig::default()
        },
        registry_with_scale2(),
    );
    m.begin_job_weighted(JOB_A, 1);
    assert_eq!(
        m.session(JOB_A).unwrap().region(0).capacity(),
        4 * MIB,
        "a lone job gets the whole region budget"
    );
    m.begin_job_weighted(JOB_B, 3);
    assert_eq!(m.session(JOB_A).unwrap().region(0).capacity(), MIB);
    assert_eq!(m.session(JOB_B).unwrap().region(0).capacity(), 3 * MIB);

    // A's 1 MiB share holds one block: the second insert must evict the
    // first from A's own region (B is untouched).
    m.submit_for(JOB_A, mk_work((0, 0), MIB, true), SimTime::ZERO);
    let first = m.drain_job(JOB_A).pop().unwrap();
    m.submit_for(JOB_A, mk_work((0, 1), MIB, true), first.timing.completed);
    m.drain_job(JOB_A);
    let region_a = m.session(JOB_A).unwrap().region(0);
    assert!(region_a.stats().2 >= 1, "A must evict within its share");
    assert!(region_a.used() <= MIB);

    // Closing B re-balances: A inherits the full budget again.
    m.end_job(JOB_B);
    assert_eq!(m.session(JOB_A).unwrap().region(0).capacity(), 4 * MIB);
}

#[test]
fn concurrent_jobs_never_hit_each_others_cache() {
    // Both jobs reference the SAME CacheKey and interleave in one shared
    // drain under WFQ: each must take its own cold miss and then hit only
    // its own region (sessions.rs proves this for sequential drains; this
    // is the concurrent-scheduler case).
    let mut m = manager_with(
        SchedulerConfig::weighted_fair(),
        vec![GpuModel::TeslaC2050],
        1,
    );
    m.begin_job(JOB_A);
    m.begin_job(JOB_B);
    for _ in 0..2 {
        m.submit_for(JOB_A, mk_work((0, 0), MIB, true), SimTime::ZERO);
        m.submit_for(JOB_B, mk_work((0, 0), MIB, true), SimTime::ZERO);
    }
    let a = m.drain_job(JOB_A);
    let b = m.drain_job(JOB_B);
    let tally = |v: &[gflink_core::CompletedWork]| {
        v.iter().fold((0u32, 0u32), |(h, mi), d| {
            (h + d.timing.cache_hits, mi + d.timing.cache_misses)
        })
    };
    assert_eq!(tally(&a), (1, 1), "A: own cold miss, then own hit");
    assert_eq!(
        tally(&b),
        (1, 1),
        "B must cold-miss the key A already cached — regions are private"
    );
}

// ------------------------------------------------------------------
// Device loss with several live jobs
// ------------------------------------------------------------------

#[test]
fn device_loss_requeues_in_flight_works_of_every_live_job() {
    let mut m = manager_with(
        SchedulerConfig::weighted_fair(),
        vec![GpuModel::TeslaC2050, GpuModel::TeslaC2050],
        4,
    );
    m.set_fault_plan(FaultPlan::new().with(SimTime::from_millis(5), FaultKind::GpuLost { gpu: 0 }));
    m.begin_job(JOB_A);
    m.begin_job(JOB_B);
    for i in 0..12 {
        m.submit_for(JOB_A, mk_work((0, i), 16 * MIB, true), SimTime::ZERO);
        m.submit_for(JOB_B, mk_work((1, i), 16 * MIB, true), SimTime::ZERO);
    }
    let a = m.drain_job(JOB_A);
    let b = m.drain_job(JOB_B);
    assert_eq!(a.len(), 12, "every work of job A survives the loss");
    assert_eq!(b.len(), 12, "every work of job B survives the loss");
    for d in a.iter().chain(b.iter()) {
        assert_eq!(d.gpu, 1, "completions must come from the survivor");
        assert_eq!(d.output.to_f32_vec(), vec![2.0, 4.0, 6.0, 8.0]);
    }
    assert!(m.session(JOB_A).unwrap().failed().is_empty());
    assert!(m.session(JOB_B).unwrap().failed().is_empty());
    // The loss is device-scoped: both sessions observe it.
    assert_eq!(m.job_faults(JOB_A).gpus_lost, 1);
    assert_eq!(m.job_faults(JOB_B).gpus_lost, 1);
}

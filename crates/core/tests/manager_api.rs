//! Behavioural tests for the public `GpuManager` surface.
//!
//! These predate the GMemoryManager/GStreamManager decomposition and pin
//! the single-job semantics (scheduling, caching, pipelining, fault
//! recovery, determinism) every later refactor must preserve
//! byte-for-byte. They run as one tenant of the session-scoped API via the
//! [`SoloJob`] shim below.

use gflink_core::{
    CacheKey, CompletedWork, CpuFallback, FailReason, FailedWork, GWork, GpuCache, GpuManager,
    GpuWorkerConfig, JobId, ManagerError, SchedulingPolicy, WorkBuf, CPU_FALLBACK_GPU,
};
use gflink_gpu::{GpuModel, KernelArgs, KernelId, KernelProfile, KernelRegistry};
use gflink_memory::HBuffer;
use gflink_sim::{FaultKind, FaultPlan, RetryPolicy, SimTime};
use parking_lot::Mutex;
use std::sync::Arc;

/// The one job all these single-tenant scenarios run as.
const JOB: JobId = JobId(1);

/// Single-tenant convenience over the session-scoped manager API: open the
/// one session lazily (begin_job is idempotent) and scope every
/// submit/drain/inspect call to it.
trait SoloJob {
    fn submit(&mut self, work: GWork, at: SimTime);
    fn drain(&mut self) -> Vec<CompletedWork>;
    fn cache(&self, gpu: usize) -> &GpuCache;
    fn failed(&self) -> &[FailedWork];
    fn take_failed(&mut self) -> Vec<FailedWork>;
}

impl SoloJob for GpuManager {
    fn submit(&mut self, work: GWork, at: SimTime) {
        self.begin_job(JOB);
        self.submit_for(JOB, work, at);
    }
    fn drain(&mut self) -> Vec<CompletedWork> {
        self.begin_job(JOB);
        self.drain_job(JOB)
    }
    fn cache(&self, gpu: usize) -> &GpuCache {
        self.session(JOB).expect("solo session open").region(gpu)
    }
    fn failed(&self) -> &[FailedWork] {
        self.session(JOB).expect("solo session open").failed()
    }
    fn take_failed(&mut self) -> Vec<FailedWork> {
        self.take_job_failed(JOB)
    }
}

fn registry_with_scale2() -> Arc<Mutex<KernelRegistry>> {
    let mut reg = KernelRegistry::new();
    reg.register("scale2", |args: &mut KernelArgs<'_, '_>| {
        let n = args.n_actual;
        let input = args.inputs[0];
        let out = &mut args.outputs[0];
        for i in 0..n {
            out.write_f32(i * 4, input.read_f32(i * 4) * 2.0);
        }
        KernelProfile::new(args.n_logical as f64, args.n_logical as f64 * 8.0)
    });
    Arc::new(Mutex::new(reg))
}

fn mk_work(tag: (u32, u32), logical: u64, cache: bool) -> GWork {
    let data = Arc::new(HBuffer::from_f32s(&[1.0, 2.0, 3.0, 4.0]));
    let key = CacheKey {
        dataset: 1,
        partition: tag.0,
        block: tag.1,
    };
    GWork {
        name: format!("w{}-{}", tag.0, tag.1).into(),
        execute_name: "scale2".into(),
        kernel: KernelId::UNRESOLVED,
        ptx_path: "/scale2.ptx".into(),
        block_size: 256,
        grid_size: 1,
        inputs: vec![if cache {
            WorkBuf::cached(data, logical, key)
        } else {
            WorkBuf::transient(data, logical)
        }],
        out_actual_bytes: 16,
        out_logical_bytes: logical,
        out_records: 4,
        params: Arc::from([]),
        n_actual: 4,
        n_logical: logical / 4,
        coalescing: 1.0,
        tag,
    }
}

fn manager(models: Vec<GpuModel>, policy: SchedulingPolicy) -> GpuManager {
    GpuManager::new(
        0,
        GpuWorkerConfig {
            models,
            scheduling: policy,
            ..GpuWorkerConfig::default()
        },
        registry_with_scale2(),
    )
}

#[test]
fn executes_work_and_returns_real_results() {
    let mut m = manager(vec![GpuModel::TeslaC2050], SchedulingPolicy::LocalityAware);
    m.submit(mk_work((0, 0), 1 << 20, false), SimTime::ZERO);
    let done = m.drain();
    assert_eq!(done.len(), 1);
    assert_eq!(done[0].output.to_f32_vec(), vec![2.0, 4.0, 6.0, 8.0]);
    assert!(done[0].timing.h2d > SimTime::ZERO);
    assert!(done[0].timing.kernel > SimTime::ZERO);
    assert!(done[0].timing.d2h > SimTime::ZERO);
    assert!(done[0].timing.completed > SimTime::ZERO);
}

#[test]
fn cache_hit_skips_h2d_on_second_round() {
    let mut m = manager(vec![GpuModel::TeslaC2050], SchedulingPolicy::LocalityAware);
    m.submit(mk_work((0, 0), 1 << 24, true), SimTime::ZERO);
    let first = m.drain().pop().unwrap();
    assert_eq!(first.timing.cache_misses, 1);
    assert!(first.timing.h2d > SimTime::ZERO);
    // Same block again (next iteration).
    m.submit(mk_work((0, 0), 1 << 24, true), first.timing.completed);
    let second = m.drain().pop().unwrap();
    assert_eq!(second.timing.cache_hits, 1);
    assert_eq!(second.timing.h2d, SimTime::ZERO);
    assert!(second.timing.total() < first.timing.total());
}

#[test]
fn locality_routes_to_caching_gpu() {
    let mut m = manager(
        vec![GpuModel::TeslaC2050, GpuModel::TeslaC2050],
        SchedulingPolicy::LocalityAware,
    );
    // Warm block (0,0) somewhere.
    m.submit(mk_work((0, 0), 1 << 20, true), SimTime::ZERO);
    let first = m.drain().pop().unwrap();
    let warm_gpu = first.gpu;
    // Resubmit 8 times; all should land on the warm GPU.
    for i in 0..8 {
        m.submit(
            mk_work((0, 0), 1 << 20, true),
            first.timing.completed + SimTime::from_millis(i * 10),
        );
    }
    for done in m.drain() {
        assert_eq!(done.gpu, warm_gpu, "locality-aware must follow the cache");
        assert_eq!(done.timing.cache_hits, 1);
    }
}

#[test]
fn round_robin_alternates_gpus() {
    let mut m = manager(
        vec![GpuModel::TeslaC2050, GpuModel::TeslaC2050],
        SchedulingPolicy::RoundRobin,
    );
    for i in 0..6 {
        m.submit(mk_work((0, i), 1 << 20, false), SimTime::ZERO);
    }
    m.drain();
    assert_eq!(m.executed_per_gpu(), &[3, 3]);
}

#[test]
fn heterogeneous_bulk_load_balances_by_stealing() {
    // One slow C2050 and one fast P100; with far more works than
    // streams, the P100 must end up executing more of them.
    let mut m = manager(
        vec![GpuModel::TeslaC2050, GpuModel::TeslaP100],
        SchedulingPolicy::LocalityAware,
    );
    for i in 0..64 {
        m.submit(mk_work((0, i), 1 << 26, false), SimTime::ZERO);
    }
    let done = m.drain();
    assert_eq!(done.len(), 64);
    let per = m.executed_per_gpu();
    assert!(
        per[1] > per[0],
        "P100 should execute more work than C2050, got {per:?}"
    );
}

#[test]
fn queue_drains_even_when_all_streams_start_busy() {
    let mut m = manager(vec![GpuModel::TeslaC2050], SchedulingPolicy::LocalityAware);
    // 4 streams; 12 works at the same instant: 8 must queue and still run.
    for i in 0..12 {
        m.submit(mk_work((0, i), 1 << 24, false), SimTime::ZERO);
    }
    let done = m.drain();
    assert_eq!(done.len(), 12);
    // Works queue, so some have nonzero queueing delay.
    assert!(done.iter().any(|d| d.timing.queued() > SimTime::ZERO));
}

#[test]
fn no_steal_policy_keeps_foreign_queues() {
    let mut with = manager(
        vec![GpuModel::TeslaC2050, GpuModel::TeslaP100],
        SchedulingPolicy::LocalityAware,
    );
    let mut without = manager(
        vec![GpuModel::TeslaC2050, GpuModel::TeslaP100],
        SchedulingPolicy::LocalityNoSteal,
    );
    for m in [&mut with, &mut without] {
        for i in 0..64 {
            m.submit(mk_work((0, i), 1 << 26, false), SimTime::ZERO);
        }
        m.drain();
    }
    assert!(with.steals() > 0);
    assert_eq!(without.steals(), 0);
}

#[test]
fn release_job_caches_frees_device_memory() {
    let mut m = manager(vec![GpuModel::TeslaC2050], SchedulingPolicy::LocalityAware);
    m.submit(mk_work((0, 0), 1 << 24, true), SimTime::ZERO);
    m.drain();
    assert!(m.cache(0).used() > 0);
    let used_before = m.gpu(0).dmem.used();
    assert!(used_before > 0);
    m.release_job_caches();
    assert_eq!(m.cache(0).used(), 0);
    assert_eq!(m.gpu(0).dmem.used(), 0);
}

#[test]
fn injected_failures_recover_with_correct_results() {
    let mut m = GpuManager::new(
        0,
        GpuWorkerConfig {
            models: vec![GpuModel::TeslaC2050, GpuModel::TeslaC2050],
            failure_rate: 0.3,
            retry: RetryPolicy {
                max_retries: 20,
                ..RetryPolicy::default()
            },
            ..GpuWorkerConfig::default()
        },
        registry_with_scale2(),
    );
    for i in 0..32 {
        m.submit(mk_work((0, i), 1 << 20, false), SimTime::ZERO);
    }
    let done = m.drain();
    assert_eq!(done.len(), 32, "every work must complete despite failures");
    assert!(m.failures() > 0, "failure injection should have fired");
    assert_eq!(m.fault_ledger().transient_faults, m.failures());
    assert!(m.fault_ledger().retries >= m.failures());
    for d in &done {
        assert_eq!(d.output.to_f32_vec(), vec![2.0, 4.0, 6.0, 8.0]);
    }
    // No leaked device memory or pinned cache entries.
    for g in 0..m.gpu_count() {
        assert_eq!(m.gpu(g).dmem.used(), 0);
    }
}

#[test]
fn failures_cost_time_but_not_correctness() {
    let run = |rate: f64| {
        let mut m = GpuManager::new(
            0,
            GpuWorkerConfig {
                models: vec![GpuModel::TeslaC2050],
                failure_rate: rate,
                retry: RetryPolicy {
                    max_retries: 50,
                    ..RetryPolicy::default()
                },
                ..GpuWorkerConfig::default()
            },
            registry_with_scale2(),
        );
        for i in 0..16 {
            m.submit(mk_work((0, i), 1 << 24, false), SimTime::ZERO);
        }
        m.drain().iter().map(|d| d.timing.completed).max().unwrap()
    };
    assert!(run(0.4) > run(0.0), "failures must lengthen the makespan");
}

#[test]
fn drain_is_deterministic() {
    let run = || {
        let mut m = manager(
            vec![GpuModel::TeslaC2050, GpuModel::TeslaK20],
            SchedulingPolicy::LocalityAware,
        );
        for i in 0..32 {
            m.submit(mk_work((i % 4, i), 1 << 22, i % 2 == 0), SimTime::ZERO);
        }
        let mut done = m.drain();
        done.sort_by_key(|d| d.tag);
        done.iter()
            .map(|d| (d.tag, d.gpu, d.timing.completed))
            .collect::<Vec<_>>()
    };
    assert_eq!(run(), run());
}

// ------------------------------------------------------------------
// Fault-injection & recovery
// ------------------------------------------------------------------

#[test]
fn device_loss_drains_to_survivor_with_correct_results() {
    let fault_free = {
        let mut m = manager(
            vec![GpuModel::TeslaC2050, GpuModel::TeslaC2050],
            SchedulingPolicy::LocalityAware,
        );
        for i in 0..24 {
            m.submit(mk_work((0, i), 1 << 24, true), SimTime::ZERO);
        }
        let mut done = m.drain();
        done.sort_by_key(|d| d.tag);
        done
    };
    let mut m = manager(
        vec![GpuModel::TeslaC2050, GpuModel::TeslaC2050],
        SchedulingPolicy::LocalityAware,
    );
    // Kill GPU 0 mid-job: some works are in flight, some queued.
    m.set_fault_plan(FaultPlan::new().with(SimTime::from_millis(5), FaultKind::GpuLost { gpu: 0 }));
    for i in 0..24 {
        m.submit(mk_work((0, i), 1 << 24, true), SimTime::ZERO);
    }
    let mut done = m.drain();
    done.sort_by_key(|d| d.tag);
    assert_eq!(done.len(), 24, "every work must complete despite the loss");
    for (a, b) in done.iter().zip(&fault_free) {
        assert_eq!(a.tag, b.tag);
        assert_eq!(
            a.output.as_slice(),
            b.output.as_slice(),
            "results must be byte-identical to the fault-free run"
        );
        assert_eq!(a.gpu, 1, "all completions must come from the survivor");
    }
    let ledger = m.fault_ledger();
    assert_eq!(ledger.gpus_lost, 1);
    assert!(m.gpu(0).health().is_lost());
    assert!(
        m.cache(0).is_empty(),
        "lost GPU's cache must be invalidated"
    );
    assert!(m.failed().is_empty());
    assert_eq!(m.gpu(0).dmem.used(), 0, "lost device memory is wiped");
}

#[test]
fn losing_every_gpu_falls_back_to_cpu() {
    let mut m = manager(
        vec![GpuModel::TeslaC2050, GpuModel::TeslaC2050],
        SchedulingPolicy::LocalityAware,
    );
    m.set_fault_plan(
        FaultPlan::new()
            .with(SimTime::ZERO, FaultKind::GpuLost { gpu: 0 })
            .with(SimTime::ZERO, FaultKind::GpuLost { gpu: 1 }),
    );
    for i in 0..8 {
        m.submit(mk_work((0, i), 1 << 20, false), SimTime::ZERO);
    }
    let done = m.drain();
    assert_eq!(done.len(), 8, "CPU fallback must complete the job");
    for d in &done {
        assert_eq!(d.gpu, CPU_FALLBACK_GPU);
        assert_eq!(d.output.to_f32_vec(), vec![2.0, 4.0, 6.0, 8.0]);
        assert_eq!(d.timing.h2d, SimTime::ZERO);
        assert_eq!(d.timing.d2h, SimTime::ZERO);
        assert!(d.timing.kernel > SimTime::ZERO);
    }
    let ledger = m.fault_ledger();
    assert_eq!(ledger.gpus_lost, 2);
    assert_eq!(ledger.cpu_fallbacks, 8);
    assert!(m.failed().is_empty());
}

#[test]
fn losing_every_gpu_without_fallback_fails_structurally() {
    let mut m = GpuManager::new(
        0,
        GpuWorkerConfig {
            models: vec![GpuModel::TeslaC2050],
            cpu_fallback: CpuFallback {
                enabled: false,
                ..CpuFallback::default()
            },
            ..GpuWorkerConfig::default()
        },
        registry_with_scale2(),
    );
    m.set_fault_plan(FaultPlan::new().with(SimTime::ZERO, FaultKind::GpuLost { gpu: 0 }));
    for i in 0..4 {
        m.submit(mk_work((0, i), 1 << 20, false), SimTime::from_millis(1));
    }
    let done = m.drain();
    assert!(done.is_empty());
    assert_eq!(m.failed().len(), 4);
    for f in m.failed() {
        assert_eq!(f.reason, FailReason::NoUsableDevice);
        assert!(f.failed_at >= f.submitted);
    }
    assert_eq!(m.fault_ledger().works_failed, 4);
}

#[test]
fn degradation_slows_the_job_down() {
    let run = |plan: FaultPlan| {
        let mut m = manager(vec![GpuModel::TeslaC2050], SchedulingPolicy::LocalityAware);
        m.set_fault_plan(plan);
        for i in 0..16 {
            m.submit(mk_work((0, i), 1 << 24, false), SimTime::ZERO);
        }
        let done = m.drain();
        assert_eq!(done.len(), 16);
        done.iter().map(|d| d.timing.completed).max().unwrap()
    };
    let nominal = run(FaultPlan::new());
    let degraded = run(FaultPlan::new().with(
        SimTime::ZERO,
        FaultKind::GpuDegraded {
            gpu: 0,
            throughput: 0.25,
        },
    ));
    assert!(degraded > nominal, "a throttled device must take longer");
}

#[test]
fn hang_is_detected_and_work_retried() {
    let mut m = GpuManager::new(
        0,
        GpuWorkerConfig {
            models: vec![GpuModel::TeslaC2050],
            hang_timeout: SimTime::from_millis(50),
            ..GpuWorkerConfig::default()
        },
        registry_with_scale2(),
    );
    m.set_fault_plan(FaultPlan::new().with(SimTime::ZERO, FaultKind::KernelHang { gpu: 0 }));
    m.submit(mk_work((0, 0), 1 << 20, false), SimTime::ZERO);
    let done = m.drain();
    assert_eq!(done.len(), 1);
    assert_eq!(done[0].output.to_f32_vec(), vec![2.0, 4.0, 6.0, 8.0]);
    // The retry could only start after the watchdog fired.
    assert!(done[0].timing.completed > SimTime::from_millis(50));
    let ledger = m.fault_ledger();
    assert_eq!(ledger.hangs_detected, 1);
    assert!(ledger.retries >= 1);
    assert_eq!(m.gpu(0).dmem.used(), 0);
}

#[test]
fn scripted_transient_fault_is_recovered() {
    let mut m = manager(vec![GpuModel::TeslaC2050], SchedulingPolicy::LocalityAware);
    m.set_fault_plan(FaultPlan::new().with(SimTime::ZERO, FaultKind::KernelTransient { gpu: 0 }));
    m.submit(mk_work((0, 0), 1 << 20, false), SimTime::ZERO);
    let done = m.drain();
    assert_eq!(done.len(), 1);
    assert_eq!(done[0].output.to_f32_vec(), vec![2.0, 4.0, 6.0, 8.0]);
    assert_eq!(m.fault_ledger().transient_faults, 1);
    assert_eq!(m.failures(), 1);
}

#[test]
fn retry_exhaustion_produces_structured_failure() {
    // failure_rate 1.0: every launch fails; the retry budget must run
    // out and yield FailedWork rather than a panic.
    let mut m = GpuManager::new(
        0,
        GpuWorkerConfig {
            models: vec![GpuModel::TeslaC2050],
            failure_rate: 1.0,
            retry: RetryPolicy {
                base: SimTime::from_micros(10),
                factor: 2,
                max_retries: 3,
                deadline: SimTime::MAX,
            },
            ..GpuWorkerConfig::default()
        },
        registry_with_scale2(),
    );
    m.submit(mk_work((0, 0), 1 << 20, false), SimTime::ZERO);
    let done = m.drain();
    assert!(done.is_empty());
    assert_eq!(m.failed().len(), 1);
    let f = &m.failed()[0];
    assert_eq!(f.reason, FailReason::RetriesExhausted);
    assert_eq!(f.retries, 3);
    assert!(
        f.failed_at > f.submitted,
        "failure instants participate in makespan"
    );
    assert_eq!(m.fault_ledger().works_failed, 1);
    assert_eq!(m.fault_ledger().retries, 3);
    // Nothing leaked on the way out.
    assert_eq!(m.gpu(0).dmem.used(), 0);
}

#[test]
fn completions_and_failures_partition_submissions() {
    // Half the works name a kernel that exists, half one that doesn't:
    // completed + failed must account for every submission exactly.
    let mut m = manager(vec![GpuModel::TeslaC2050], SchedulingPolicy::LocalityAware);
    for i in 0..10 {
        let mut w = mk_work((0, i), 1 << 20, false);
        if i % 2 == 1 {
            w.execute_name = "no-such-kernel".into();
        }
        m.submit(w, SimTime::ZERO);
    }
    let done = m.drain();
    assert_eq!(done.len(), 5);
    assert_eq!(m.failed().len(), 5);
    for f in m.failed() {
        assert!(matches!(
            f.reason,
            FailReason::Fatal(ManagerError::KernelMissing { .. })
        ));
        assert_eq!(f.retries, 0, "a missing kernel is never retried");
    }
    assert_eq!(m.gpu(0).dmem.used(), 0);
    assert_eq!(m.take_failed().len(), 5);
    assert!(m.failed().is_empty());
}

#[test]
fn retry_backoff_defers_resubmission() {
    // One scripted transient with a long backoff: the completion must
    // land at least `base` after the faulted kernel finished.
    let base = SimTime::from_millis(20);
    let mut m = GpuManager::new(
        0,
        GpuWorkerConfig {
            models: vec![GpuModel::TeslaC2050],
            retry: RetryPolicy {
                base,
                factor: 2,
                max_retries: 4,
                deadline: SimTime::MAX,
            },
            ..GpuWorkerConfig::default()
        },
        registry_with_scale2(),
    );
    m.set_fault_plan(FaultPlan::new().with(SimTime::ZERO, FaultKind::KernelTransient { gpu: 0 }));
    m.submit(mk_work((0, 0), 1 << 20, false), SimTime::ZERO);
    let done = m.drain();
    assert_eq!(done.len(), 1);
    assert!(
        done[0].timing.completed >= base,
        "retry must wait out the backoff, completed at {}",
        done[0].timing.completed
    );
}

// ------------------------------------------------------------------
// Hybrid split-block failure routing & host-side model feedback
// ------------------------------------------------------------------

/// Like [`registry_with_scale2`], but with the kernel *declared*
/// element-wise — the opt-in that makes its blocks eligible for hybrid
/// splitting.
fn registry_with_elementwise_scale2() -> Arc<Mutex<KernelRegistry>> {
    let mut reg = KernelRegistry::new();
    reg.register_elementwise("scale2", |args: &mut KernelArgs<'_, '_>| {
        let n = args.n_actual;
        let input = args.inputs[0];
        let out = &mut args.outputs[0];
        for i in 0..n {
            out.write_f32(i * 4, input.read_f32(i * 4) * 2.0);
        }
        KernelProfile::new(args.n_logical as f64, args.n_logical as f64 * 8.0)
    });
    Arc::new(Mutex::new(reg))
}

/// Hybrid policy tuned so every 4-element `mk_work` block splits: the
/// minimum piece is one element and the balance window accepts any
/// CPU/GPU prediction ratio.
fn hybrid_split_config() -> GpuWorkerConfig {
    GpuWorkerConfig {
        models: vec![GpuModel::TeslaC2050],
        scheduling: SchedulingPolicy::HybridCostModel,
        hybrid: gflink_core::HybridConfig {
            min_split_elems: 1,
            split_balance: 1e12,
            ..gflink_core::HybridConfig::default()
        },
        ..GpuWorkerConfig::default()
    }
}

#[test]
fn split_child_terminal_failure_fails_parent_under_original_tag() {
    // Every GPU launch fails and the retry budget is zero, so the split's
    // GPU child fails terminally on its first attempt while the CPU child
    // (the host path injects no faults) completes. The *parent* block must
    // fail exactly once under the tag the consumer submitted — never under
    // a synthetic child tag — and the drain must reach quiescence (the
    // merge entry and child routes are released, `is_idle` holds).
    let mut m = GpuManager::new(
        0,
        GpuWorkerConfig {
            failure_rate: 1.0,
            retry: RetryPolicy {
                base: SimTime::from_micros(10),
                factor: 2,
                max_retries: 0,
                deadline: SimTime::MAX,
            },
            ..hybrid_split_config()
        },
        registry_with_elementwise_scale2(),
    );
    m.submit(mk_work((0, 0), 1 << 20, false), SimTime::ZERO);
    let done = m.drain();
    assert!(done.is_empty(), "a half-failed split must not complete");
    let session = m.session(JOB).expect("solo session open");
    assert_eq!(session.hybrid_splits(), 1, "the block must have split");
    assert_eq!(m.failed().len(), 1, "one parent failure, no child failures");
    let f = &m.failed()[0];
    assert_eq!(f.tag, (0, 0), "failure carries the submitted tag");
    assert_eq!(f.name, "w0-0");
    assert_eq!(f.reason, FailReason::RetriesExhausted);
    assert!(f.failed_at >= f.submitted);
    assert_eq!(m.fault_ledger().works_failed, 1);
    assert_eq!(m.gpu(0).dmem.used(), 0);
}

#[test]
fn split_child_transient_failure_retries_and_merges() {
    // A scripted transient hits the split's GPU child; the retry stays a
    // split child (bypassing admission), re-executes, and the merge still
    // reassembles the byte-exact parent block.
    let mut m = GpuManager::new(0, hybrid_split_config(), registry_with_elementwise_scale2());
    m.set_fault_plan(FaultPlan::new().with(SimTime::ZERO, FaultKind::KernelTransient { gpu: 0 }));
    m.submit(mk_work((0, 0), 1 << 20, false), SimTime::ZERO);
    let done = m.drain();
    assert_eq!(done.len(), 1);
    assert_eq!(done[0].tag, (0, 0));
    assert_eq!(done[0].output.to_f32_vec(), vec![2.0, 4.0, 6.0, 8.0]);
    assert!(m.failed().is_empty());
    let session = m.session(JOB).expect("solo session open");
    assert_eq!(session.hybrid_splits(), 1);
    assert_eq!(m.fault_ledger().transient_faults, 1);
    assert!(m.fault_ledger().retries >= 1);
}

#[test]
fn repeated_splits_recycle_tags_and_stay_correct() {
    // Sequential rounds of splits exercise child-tag reclamation: closed
    // merges return their synthetic indices to the free list, so long-lived
    // workers never walk off the reserved tag range.
    let mut m = GpuManager::new(0, hybrid_split_config(), registry_with_elementwise_scale2());
    let mut at = SimTime::ZERO;
    for round in 0..8 {
        m.submit(mk_work((0, round), 1 << 20, false), at);
        let done = m.drain();
        assert_eq!(done.len(), 1, "round {round}");
        assert_eq!(done[0].tag, (0, round));
        assert_eq!(done[0].output.to_f32_vec(), vec![2.0, 4.0, 6.0, 8.0]);
        at = done[0].timing.completed;
    }
    let session = m.session(JOB).expect("solo session open");
    assert_eq!(session.hybrid_splits(), 8);
    assert!(m.failed().is_empty());
}

#[test]
fn undeclared_kernel_never_splits() {
    // Same shapes, same policy — but the kernel was registered without the
    // element-wise declaration, so divisibility alone must not trigger a
    // split (a coincidentally divisible side input would be sliced wrong).
    let mut m = GpuManager::new(0, hybrid_split_config(), registry_with_scale2());
    m.submit(mk_work((0, 0), 1 << 20, false), SimTime::ZERO);
    let done = m.drain();
    assert_eq!(done.len(), 1);
    assert_eq!(done[0].output.to_f32_vec(), vec![2.0, 4.0, 6.0, 8.0]);
    let session = m.session(JOB).expect("solo session open");
    assert_eq!(session.hybrid_splits(), 0);
}

#[test]
fn host_routed_work_feeds_prediction_error() {
    // Transfer-heavy blocks route to the host outright (no GPU completions
    // at all for them), and every host execution must still score the
    // model: the prediction-error histogram cannot stay empty.
    let mut m = GpuManager::new(
        0,
        GpuWorkerConfig {
            models: vec![GpuModel::TeslaC2050],
            scheduling: SchedulingPolicy::HybridCostModel,
            ..GpuWorkerConfig::default()
        },
        registry_with_scale2(),
    );
    for i in 0..8 {
        m.submit(mk_work((0, i), 1 << 24, false), SimTime::ZERO);
    }
    let done = m.drain();
    assert_eq!(done.len(), 8);
    let session = m.session(JOB).expect("solo session open");
    assert!(
        session.hybrid_cpu() > 0,
        "PCIe-bound blocks must win the host route"
    );
    assert!(
        session.hybrid_err().count() >= session.hybrid_cpu(),
        "each host execution scores the model: {} errors for {} host runs",
        session.hybrid_err().count(),
        session.hybrid_cpu()
    );
    assert!(done
        .iter()
        .any(|d| d.gpu == CPU_FALLBACK_GPU && d.output.to_f32_vec() == vec![2.0, 4.0, 6.0, 8.0]));
}

#[test]
fn chaos_drain_is_deterministic_per_seed() {
    let run = |seed: u64| {
        let mut m = GpuManager::new(
            0,
            GpuWorkerConfig {
                models: vec![GpuModel::TeslaC2050, GpuModel::TeslaC2050],
                hang_timeout: SimTime::from_millis(50),
                ..GpuWorkerConfig::default()
            },
            registry_with_scale2(),
        );
        m.set_fault_plan(FaultPlan::random(seed, 2, SimTime::from_millis(100), 8));
        for i in 0..24 {
            m.submit(mk_work((0, i), 1 << 22, i % 2 == 0), SimTime::ZERO);
        }
        let mut done = m.drain();
        done.sort_by_key(|d| d.tag);
        (
            done.iter()
                .map(|d| (d.tag, d.gpu, d.timing.completed))
                .collect::<Vec<_>>(),
            m.fault_ledger(),
        )
    };
    assert_eq!(run(11), run(11), "same seed, same timeline and ledger");
}

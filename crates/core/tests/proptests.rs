//! Property tests for the GPUManager: completion, conservation,
//! determinism and fault-tolerance invariants under randomized workloads.

use gflink_core::{CacheKey, GWork, GpuManager, GpuWorkerConfig, JobId, SchedulingPolicy, WorkBuf};
use gflink_gpu::{GpuModel, KernelArgs, KernelProfile, KernelRegistry};
use gflink_memory::HBuffer;
use gflink_sim::SimTime;
use parking_lot::Mutex;
use proptest::prelude::*;
use std::sync::Arc;

fn registry() -> Arc<Mutex<KernelRegistry>> {
    let mut reg = KernelRegistry::new();
    reg.register("negate", |args: &mut KernelArgs<'_>| {
        let n = args.n_actual;
        for i in 0..n {
            let v = args.inputs[0].read_f32(i * 4);
            args.outputs[0].write_f32(i * 4, -v);
        }
        KernelProfile::new(args.n_logical as f64, args.n_logical as f64 * 8.0)
    });
    Arc::new(Mutex::new(reg))
}

/// A randomized GWork description.
#[derive(Clone, Debug)]
struct WorkSpec {
    logical: u64,
    submit_us: u64,
    cached: bool,
    partition: u32,
}

fn arb_work() -> impl Strategy<Value = WorkSpec> {
    (1u64..50_000_000, 0u64..10_000, any::<bool>(), 0u32..4).prop_map(
        |(logical, submit_us, cached, partition)| WorkSpec {
            logical,
            submit_us,
            cached,
            partition,
        },
    )
}

fn arb_policy() -> impl Strategy<Value = SchedulingPolicy> {
    prop_oneof![
        Just(SchedulingPolicy::LocalityAware),
        Just(SchedulingPolicy::LocalityNoSteal),
        Just(SchedulingPolicy::RoundRobin),
        Just(SchedulingPolicy::Random { seed: 99 }),
    ]
}

fn mk_work(i: u32, spec: &WorkSpec) -> GWork {
    let data = Arc::new(HBuffer::from_f32s(&[1.0, -2.0, 3.0, -4.0]));
    let key = CacheKey {
        dataset: 7,
        partition: spec.partition,
        block: i,
    };
    GWork {
        name: format!("w{i}"),
        execute_name: "negate".into(),
        ptx_path: "/negate.ptx".into(),
        block_size: 256,
        grid_size: 1,
        inputs: vec![if spec.cached {
            WorkBuf::cached(data, spec.logical, key)
        } else {
            WorkBuf::transient(data, spec.logical)
        }],
        out_actual_bytes: 16,
        out_logical_bytes: spec.logical,
        out_records: 4,
        params: vec![],
        n_actual: 4,
        n_logical: spec.logical / 8,
        coalescing: 1.0,
        tag: (spec.partition, i),
    }
}

fn run(
    specs: &[WorkSpec],
    policy: SchedulingPolicy,
    models: Vec<GpuModel>,
    failure_rate: f64,
) -> (GpuManager, Vec<gflink_core::CompletedWork>) {
    let mut mgr = GpuManager::new(
        0,
        GpuWorkerConfig {
            models,
            scheduling: policy,
            failure_rate,
            retry: gflink_sim::RetryPolicy {
                max_retries: 100,
                ..gflink_sim::RetryPolicy::default()
            },
            ..GpuWorkerConfig::default()
        },
        registry(),
    );
    mgr.begin_job(JOB);
    for (i, s) in specs.iter().enumerate() {
        mgr.submit_for(JOB, mk_work(i as u32, s), SimTime::from_micros(s.submit_us));
    }
    let done = mgr.drain_job(JOB);
    (mgr, done)
}

/// The single job all these randomized workloads run as.
const JOB: JobId = JobId(1);

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every submitted work completes exactly once with correct output, for
    /// every scheduling policy and GPU mix.
    #[test]
    fn all_work_completes_exactly_once(
        specs in prop::collection::vec(arb_work(), 1..40),
        policy in arb_policy(),
        dual in any::<bool>(),
    ) {
        let models = if dual {
            vec![GpuModel::TeslaC2050, GpuModel::TeslaK20]
        } else {
            vec![GpuModel::TeslaC2050]
        };
        let (_, done) = run(&specs, policy, models, 0.0);
        prop_assert_eq!(done.len(), specs.len());
        let mut tags: Vec<_> = done.iter().map(|d| d.tag).collect();
        tags.sort_unstable();
        tags.dedup();
        prop_assert_eq!(tags.len(), specs.len(), "duplicate completions");
        for d in &done {
            prop_assert_eq!(d.output.to_f32_vec(), vec![-1.0, 2.0, -3.0, 4.0]);
        }
    }

    /// Timing invariants: started >= submitted, completed >= started, and
    /// the stage service times fit inside the occupancy window.
    #[test]
    fn timing_invariants(specs in prop::collection::vec(arb_work(), 1..32)) {
        let (_, done) = run(&specs, SchedulingPolicy::LocalityAware,
                            vec![GpuModel::TeslaC2050, GpuModel::TeslaC2050], 0.0);
        for d in &done {
            let t = &d.timing;
            prop_assert!(t.started >= t.submitted);
            prop_assert!(t.completed >= t.started);
            let services = t.h2d + t.kernel + t.d2h;
            prop_assert!(
                t.started + services <= t.completed,
                "stages exceed the occupancy window"
            );
        }
    }

    /// No device memory leaks: after drain + cache release, every byte is
    /// reclaimed on every GPU.
    #[test]
    fn device_memory_conserved(
        specs in prop::collection::vec(arb_work(), 1..40),
        policy in arb_policy(),
    ) {
        let (mut mgr, _) = run(&specs, policy,
                               vec![GpuModel::TeslaC2050, GpuModel::TeslaC2050], 0.0);
        for g in 0..mgr.gpu_count() {
            // Only cached entries may remain resident...
            let region = mgr.session(JOB).unwrap().region(g);
            prop_assert_eq!(mgr.gpu(g).dmem.used(), region.used());
            prop_assert!(region.used() <= region.capacity());
        }
        // ...and releasing the job caches reclaims those too.
        mgr.release_job_caches();
        for g in 0..mgr.gpu_count() {
            prop_assert_eq!(mgr.gpu(g).dmem.used(), 0);
        }
    }

    /// The drain is deterministic: identical submissions produce identical
    /// placements and completion times.
    #[test]
    fn drain_determinism(
        specs in prop::collection::vec(arb_work(), 1..32),
        policy in arb_policy(),
    ) {
        let digest = |(_, done): (GpuManager, Vec<gflink_core::CompletedWork>)| {
            let mut v: Vec<_> = done
                .iter()
                .map(|d| (d.tag, d.gpu, d.stream, d.timing.completed))
                .collect();
            v.sort_unstable();
            v
        };
        let a = digest(run(&specs, policy, vec![GpuModel::TeslaC2050, GpuModel::TeslaP100], 0.0));
        let b = digest(run(&specs, policy, vec![GpuModel::TeslaC2050, GpuModel::TeslaP100], 0.0));
        prop_assert_eq!(a, b);
    }

    /// Fault tolerance: with injected kernel failures, everything still
    /// completes exactly once with correct results, and no memory leaks.
    #[test]
    fn failures_never_lose_or_corrupt_work(
        specs in prop::collection::vec(arb_work(), 1..24),
        rate in 0.05f64..0.5,
    ) {
        let (mut mgr, done) = run(&specs, SchedulingPolicy::LocalityAware,
                                  vec![GpuModel::TeslaC2050, GpuModel::TeslaC2050], rate);
        prop_assert_eq!(done.len(), specs.len());
        for d in &done {
            prop_assert_eq!(d.output.to_f32_vec(), vec![-1.0, 2.0, -3.0, 4.0]);
        }
        mgr.release_job_caches();
        for g in 0..mgr.gpu_count() {
            prop_assert_eq!(mgr.gpu(g).dmem.used(), 0);
        }
    }
}

//! Property tests for the GPUManager: completion, conservation,
//! determinism and fault-tolerance invariants under randomized workloads.

use gflink_core::{CacheKey, GWork, GpuManager, GpuWorkerConfig, JobId, SchedulingPolicy, WorkBuf};
use gflink_gpu::{GpuModel, KernelArgs, KernelId, KernelProfile, KernelRegistry};
use gflink_memory::HBuffer;
use gflink_sim::{FaultKind, FaultPlan, SimTime};
use parking_lot::Mutex;
use proptest::prelude::*;
use std::sync::Arc;

fn registry() -> Arc<Mutex<KernelRegistry>> {
    let mut reg = KernelRegistry::new();
    reg.register("negate", |args: &mut KernelArgs<'_, '_>| {
        let n = args.n_actual;
        for i in 0..n {
            let v = args.inputs[0].read_f32(i * 4);
            args.outputs[0].write_f32(i * 4, -v);
        }
        KernelProfile::new(args.n_logical as f64, args.n_logical as f64 * 8.0)
    });
    Arc::new(Mutex::new(reg))
}

/// A randomized GWork description.
#[derive(Clone, Debug)]
struct WorkSpec {
    logical: u64,
    submit_us: u64,
    cached: bool,
    partition: u32,
}

fn arb_work() -> impl Strategy<Value = WorkSpec> {
    (1u64..50_000_000, 0u64..10_000, any::<bool>(), 0u32..4).prop_map(
        |(logical, submit_us, cached, partition)| WorkSpec {
            logical,
            submit_us,
            cached,
            partition,
        },
    )
}

fn arb_policy() -> impl Strategy<Value = SchedulingPolicy> {
    prop_oneof![
        Just(SchedulingPolicy::LocalityAware),
        Just(SchedulingPolicy::LocalityNoSteal),
        Just(SchedulingPolicy::RoundRobin),
        Just(SchedulingPolicy::Random { seed: 99 }),
    ]
}

fn mk_work(i: u32, spec: &WorkSpec) -> GWork {
    let data = Arc::new(HBuffer::from_f32s(&[1.0, -2.0, 3.0, -4.0]));
    let key = CacheKey {
        dataset: 7,
        partition: spec.partition,
        block: i,
    };
    GWork {
        name: format!("w{i}").into(),
        execute_name: "negate".into(),
        kernel: KernelId::UNRESOLVED,
        ptx_path: "/negate.ptx".into(),
        block_size: 256,
        grid_size: 1,
        inputs: vec![if spec.cached {
            WorkBuf::cached(data, spec.logical, key)
        } else {
            WorkBuf::transient(data, spec.logical)
        }],
        out_actual_bytes: 16,
        out_logical_bytes: spec.logical,
        out_records: 4,
        params: Arc::from([]),
        n_actual: 4,
        n_logical: spec.logical / 8,
        coalescing: 1.0,
        tag: (spec.partition, i),
    }
}

fn run(
    specs: &[WorkSpec],
    policy: SchedulingPolicy,
    models: Vec<GpuModel>,
    failure_rate: f64,
) -> (GpuManager, Vec<gflink_core::CompletedWork>) {
    let mut mgr = GpuManager::new(
        0,
        GpuWorkerConfig {
            models,
            scheduling: policy,
            failure_rate,
            retry: gflink_sim::RetryPolicy {
                max_retries: 100,
                ..gflink_sim::RetryPolicy::default()
            },
            ..GpuWorkerConfig::default()
        },
        registry(),
    );
    mgr.begin_job(JOB);
    for (i, s) in specs.iter().enumerate() {
        mgr.submit_for(JOB, mk_work(i as u32, s), SimTime::from_micros(s.submit_us));
    }
    let done = mgr.drain_job(JOB);
    (mgr, done)
}

/// The single job all these randomized workloads run as.
const JOB: JobId = JobId(1);

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every submitted work completes exactly once with correct output, for
    /// every scheduling policy and GPU mix.
    #[test]
    fn all_work_completes_exactly_once(
        specs in prop::collection::vec(arb_work(), 1..40),
        policy in arb_policy(),
        dual in any::<bool>(),
    ) {
        let models = if dual {
            vec![GpuModel::TeslaC2050, GpuModel::TeslaK20]
        } else {
            vec![GpuModel::TeslaC2050]
        };
        let (_, done) = run(&specs, policy, models, 0.0);
        prop_assert_eq!(done.len(), specs.len());
        let mut tags: Vec<_> = done.iter().map(|d| d.tag).collect();
        tags.sort_unstable();
        tags.dedup();
        prop_assert_eq!(tags.len(), specs.len(), "duplicate completions");
        for d in &done {
            prop_assert_eq!(d.output.to_f32_vec(), vec![-1.0, 2.0, -3.0, 4.0]);
        }
    }

    /// Timing invariants: started >= submitted, completed >= started, and
    /// the stage service times fit inside the occupancy window.
    #[test]
    fn timing_invariants(specs in prop::collection::vec(arb_work(), 1..32)) {
        let (_, done) = run(&specs, SchedulingPolicy::LocalityAware,
                            vec![GpuModel::TeslaC2050, GpuModel::TeslaC2050], 0.0);
        for d in &done {
            let t = &d.timing;
            prop_assert!(t.started >= t.submitted);
            prop_assert!(t.completed >= t.started);
            let services = t.h2d + t.kernel + t.d2h;
            prop_assert!(
                t.started + services <= t.completed,
                "stages exceed the occupancy window"
            );
        }
    }

    /// No device memory leaks: after drain + cache release, every byte is
    /// reclaimed on every GPU.
    #[test]
    fn device_memory_conserved(
        specs in prop::collection::vec(arb_work(), 1..40),
        policy in arb_policy(),
    ) {
        let (mut mgr, _) = run(&specs, policy,
                               vec![GpuModel::TeslaC2050, GpuModel::TeslaC2050], 0.0);
        for g in 0..mgr.gpu_count() {
            // Only cached entries may remain resident...
            let region = mgr.session(JOB).unwrap().region(g);
            prop_assert_eq!(mgr.gpu(g).dmem.used(), region.used());
            prop_assert!(region.used() <= region.capacity());
        }
        // ...and releasing the job caches reclaims those too.
        mgr.release_job_caches();
        for g in 0..mgr.gpu_count() {
            prop_assert_eq!(mgr.gpu(g).dmem.used(), 0);
        }
    }

    /// The drain is deterministic: identical submissions produce identical
    /// placements and completion times.
    #[test]
    fn drain_determinism(
        specs in prop::collection::vec(arb_work(), 1..32),
        policy in arb_policy(),
    ) {
        let digest = |(_, done): (GpuManager, Vec<gflink_core::CompletedWork>)| {
            let mut v: Vec<_> = done
                .iter()
                .map(|d| (d.tag, d.gpu, d.stream, d.timing.completed))
                .collect();
            v.sort_unstable();
            v
        };
        let a = digest(run(&specs, policy, vec![GpuModel::TeslaC2050, GpuModel::TeslaP100], 0.0));
        let b = digest(run(&specs, policy, vec![GpuModel::TeslaC2050, GpuModel::TeslaP100], 0.0));
        prop_assert_eq!(a, b);
    }

    /// Fault tolerance: with injected kernel failures, everything still
    /// completes exactly once with correct results, and no memory leaks.
    #[test]
    fn failures_never_lose_or_corrupt_work(
        specs in prop::collection::vec(arb_work(), 1..24),
        rate in 0.05f64..0.5,
    ) {
        let (mut mgr, done) = run(&specs, SchedulingPolicy::LocalityAware,
                                  vec![GpuModel::TeslaC2050, GpuModel::TeslaC2050], rate);
        prop_assert_eq!(done.len(), specs.len());
        for d in &done {
            prop_assert_eq!(d.output.to_f32_vec(), vec![-1.0, 2.0, -3.0, 4.0]);
        }
        mgr.release_job_caches();
        for g in 0..mgr.gpu_count() {
            prop_assert_eq!(mgr.gpu(g).dmem.used(), 0);
        }
    }

    /// The arena-reused hot path is invisible to results (ISSUE 7): a
    /// second round of identical works — served from recycled flight
    /// slots, pooled bookkeeping Vecs and arena result buffers — produces
    /// bit-identical outputs, every result acquisition hits the arena, and
    /// teardown returns every arena byte.
    #[test]
    fn arena_reuse_is_digest_invariant(
        specs in prop::collection::vec(arb_work(), 1..32),
        policy in arb_policy(),
    ) {
        let mut mgr = GpuManager::new(
            0,
            GpuWorkerConfig {
                models: vec![GpuModel::TeslaC2050, GpuModel::TeslaC2050],
                scheduling: policy,
                ..GpuWorkerConfig::default()
            },
            registry(),
        );
        mgr.begin_job(JOB);
        let round = |mgr: &mut GpuManager| {
            for (i, s) in specs.iter().enumerate() {
                mgr.submit_for(JOB, mk_work(i as u32, s), SimTime::from_micros(s.submit_us));
            }
            mgr.drain_job(JOB)
        };
        // Placement (stream picks) legitimately differs between rounds —
        // round two inherits round one's busy-until state. The *results*
        // may not drift by a bit.
        let digest = |done: &[gflink_core::CompletedWork]| {
            let mut v: Vec<_> = done
                .iter()
                .map(|d| (d.tag, d.output.as_slice().to_vec()))
                .collect();
            v.sort_unstable_by_key(|d| d.0);
            v
        };
        let first = round(&mut mgr);
        let first_digest = digest(&first);
        drop(first); // results return to the arena before round two
        let warm = mgr.result_arena().stats();
        let second = round(&mut mgr);
        prop_assert_eq!(digest(&second), first_digest, "reused flights drifted");
        let hot = mgr.result_arena().stats();
        prop_assert_eq!(hot.misses, warm.misses, "arena missed after warmup");
        prop_assert_eq!(hot.hits - warm.hits, specs.len() as u64);
        drop(second);
        mgr.end_job(JOB);
        prop_assert_eq!(mgr.result_arena().in_use_bytes(), 0, "arena bytes leaked");
    }

    /// Teardown is exact-bytes under churn (ISSUE 7): whatever mix of
    /// device loss and checkpoint restore a run goes through, dropping the
    /// results and ending the job leaves zero arena bytes in use and zero
    /// device bytes allocated on every GPU — including the dead one.
    #[test]
    fn teardown_is_exact_bytes_under_churn(
        specs in prop::collection::vec(arb_work(), 1..24),
        lose_at_us in 1u64..8_000,
        restore in any::<bool>(),
    ) {
        let mut mgr = GpuManager::new(
            0,
            GpuWorkerConfig {
                models: vec![GpuModel::TeslaC2050, GpuModel::TeslaC2050],
                retry: gflink_sim::RetryPolicy {
                    max_retries: 100,
                    ..gflink_sim::RetryPolicy::default()
                },
                ..GpuWorkerConfig::default()
            },
            registry(),
        );
        mgr.set_fault_plan(
            FaultPlan::new().with(SimTime::from_micros(lose_at_us), FaultKind::GpuLost { gpu: 1 }),
        );
        mgr.begin_job(JOB);
        // A restored checkpoint covers every third tag: those submissions
        // are satisfied from the snapshot instead of executing.
        let covered: Vec<(u32, u32)> = if restore {
            specs
                .iter()
                .enumerate()
                .filter(|(i, _)| i % 3 == 0)
                .map(|(i, s)| (s.partition, i as u32))
                .collect()
        } else {
            Vec::new()
        };
        mgr.restore_job(JOB, 1, &covered);
        for (i, s) in specs.iter().enumerate() {
            mgr.submit_for(JOB, mk_work(i as u32, s), SimTime::from_micros(s.submit_us));
        }
        let done = mgr.drain_job(JOB);
        prop_assert_eq!(done.len(), specs.len() - covered.len());
        drop(done);
        mgr.end_job(JOB);
        prop_assert_eq!(mgr.result_arena().in_use_bytes(), 0, "arena bytes leaked");
        for g in 0..mgr.gpu_count() {
            prop_assert_eq!(mgr.gpu(g).dmem.used(), 0, "device bytes leaked");
        }
    }
}

//! Per-job session semantics (§4.2.2): cache regions are created when a
//! job starts and released when it finishes, and no session's cache,
//! completions, failures, or ledger deltas can bleed into another's.

use gflink_core::{CacheKey, GWork, GpuManager, GpuWorkerConfig, JobId, SchedulingPolicy, WorkBuf};
use gflink_gpu::{GpuModel, KernelArgs, KernelId, KernelProfile, KernelRegistry};
use gflink_memory::HBuffer;
use gflink_sim::{FaultKind, FaultPlan, SimTime};
use parking_lot::Mutex;
use std::sync::Arc;

const MIB: u64 = 1 << 20;

fn registry_with_scale2() -> Arc<Mutex<KernelRegistry>> {
    let mut reg = KernelRegistry::new();
    reg.register("scale2", |args: &mut KernelArgs<'_, '_>| {
        let n = args.n_actual;
        let input = args.inputs[0];
        let out = &mut args.outputs[0];
        for i in 0..n {
            out.write_f32(i * 4, input.read_f32(i * 4) * 2.0);
        }
        KernelProfile::new(args.n_logical as f64, args.n_logical as f64 * 8.0)
    });
    Arc::new(Mutex::new(reg))
}

fn key(tag: (u32, u32)) -> CacheKey {
    CacheKey {
        dataset: 1,
        partition: tag.0,
        block: tag.1,
    }
}

fn mk_work(tag: (u32, u32), logical: u64) -> GWork {
    let data = Arc::new(HBuffer::from_f32s(&[1.0, 2.0, 3.0, 4.0]));
    GWork {
        name: format!("w{}-{}", tag.0, tag.1).into(),
        execute_name: "scale2".into(),
        kernel: KernelId::UNRESOLVED,
        ptx_path: "/scale2.ptx".into(),
        block_size: 256,
        grid_size: 1,
        inputs: vec![WorkBuf::cached(data, logical, key(tag))],
        out_actual_bytes: 16,
        out_logical_bytes: logical,
        out_records: 4,
        params: Arc::from([]),
        n_actual: 4,
        n_logical: logical / 4,
        coalescing: 1.0,
        tag,
    }
}

/// A single-GPU manager with a cache region capacity of `cap` logical
/// bytes per job.
fn manager_with_capacity(cap: u64) -> GpuManager {
    GpuManager::new(
        0,
        GpuWorkerConfig {
            models: vec![GpuModel::TeslaC2050],
            cache_capacity: cap,
            scheduling: SchedulingPolicy::LocalityAware,
            ..GpuWorkerConfig::default()
        },
        registry_with_scale2(),
    )
}

const JOB_A: JobId = JobId(1);
const JOB_B: JobId = JobId(2);

#[test]
fn eviction_pressure_in_one_job_never_evicts_another() {
    // Region capacity: two 1 MiB blocks per job.
    let mut m = manager_with_capacity(2 * MIB);
    m.begin_job(JOB_A);
    m.begin_job(JOB_B);
    m.submit_for(JOB_A, mk_work((0, 0), MIB), SimTime::ZERO);
    m.drain_job(JOB_A);
    assert!(m.session(JOB_A).unwrap().region(0).contains(key((0, 0))));

    // Push three distinct blocks through job B: its two-block region must
    // evict, sequentially so nothing is pinned during make_room.
    let mut t = SimTime::ZERO;
    for b in 0..3 {
        m.submit_for(JOB_B, mk_work((1, b), MIB), t);
        t = m.drain_job(JOB_B).pop().unwrap().timing.completed;
    }
    let b_region = m.session(JOB_B).unwrap().region(0);
    assert!(b_region.stats().2 > 0, "job B must have evicted");
    // Job A's region is untouched: its block is resident, zero evictions.
    let a_region = m.session(JOB_A).unwrap().region(0);
    assert!(a_region.contains(key((0, 0))));
    assert_eq!(a_region.stats().2, 0, "job A must not absorb B's pressure");
}

#[test]
fn cache_regions_are_private_per_job() {
    // The same CacheKey cached by job A is a MISS for job B: per §4.2.2 a
    // region belongs to one job, so tenants can never read each other's
    // device-resident blocks.
    let mut m = manager_with_capacity(64 * MIB);
    m.submit_for(JOB_A, mk_work((0, 0), MIB), SimTime::ZERO);
    let a = m.drain_job(JOB_A).pop().unwrap();
    assert_eq!(a.timing.cache_misses, 1);
    m.submit_for(JOB_B, mk_work((0, 0), MIB), a.timing.completed);
    let b = m.drain_job(JOB_B).pop().unwrap();
    assert_eq!(b.timing.cache_hits, 0, "B must not hit A's region");
    assert_eq!(b.timing.cache_misses, 1);
}

#[test]
fn end_job_releases_exactly_its_bytes() {
    let mut m = manager_with_capacity(64 * MIB);
    m.submit_for(JOB_A, mk_work((0, 0), MIB), SimTime::ZERO);
    m.submit_for(JOB_B, mk_work((1, 0), 3 * MIB), SimTime::ZERO);
    m.drain_job(JOB_A);
    m.drain_job(JOB_B);
    let both = m.gpu(0).dmem.used();
    assert_eq!(both, 4 * MIB, "both jobs' blocks resident");
    m.end_job(JOB_A);
    assert_eq!(m.gpu(0).dmem.used(), 3 * MIB, "only A's bytes released");
    assert!(m.session(JOB_A).is_none());
    assert!(m.session(JOB_B).unwrap().region(0).contains(key((1, 0))));
    m.end_job(JOB_B);
    assert_eq!(m.gpu(0).dmem.used(), 0);
}

#[test]
fn drain_job_returns_only_own_completions() {
    let mut m = manager_with_capacity(64 * MIB);
    m.submit_for(JOB_A, mk_work((0, 0), MIB), SimTime::ZERO);
    m.submit_for(JOB_A, mk_work((0, 1), MIB), SimTime::ZERO);
    m.submit_for(JOB_B, mk_work((1, 0), MIB), SimTime::ZERO);
    m.submit_for(JOB_B, mk_work((1, 1), MIB), SimTime::ZERO);
    m.submit_for(JOB_B, mk_work((1, 2), MIB), SimTime::ZERO);
    // The drain runs the shared event loop (the hardware is shared), but
    // hands back only A's completions; B's are stored for B's drain.
    let a = m.drain_job(JOB_A);
    assert_eq!(a.len(), 2);
    assert!(a.iter().all(|c| c.tag.0 == 0));
    let b = m.drain_job(JOB_B);
    assert_eq!(b.len(), 3);
    assert!(b.iter().all(|c| c.tag.0 == 1));
}

#[test]
fn retired_stats_survive_end_job() {
    let mut m = manager_with_capacity(64 * MIB);
    m.submit_for(JOB_A, mk_work((0, 0), MIB), SimTime::ZERO);
    let first = m.drain_job(JOB_A).pop().unwrap();
    m.submit_for(JOB_A, mk_work((0, 0), MIB), first.timing.completed);
    let second = m.drain_job(JOB_A).pop().unwrap();
    assert_eq!(second.timing.cache_hits, 1);
    let (hits_live, misses_live, _) = m.cache_stats(0);
    m.end_job(JOB_A);
    // The worker totals keep the finished job's history.
    assert_eq!(m.cache_stats(0), (hits_live, misses_live, 0));
    assert_eq!(m.cache_stats(0).0, 1);
}

#[test]
fn fault_attribution_is_work_scoped_to_the_owning_job() {
    let mut m = manager_with_capacity(64 * MIB);
    m.set_fault_plan(FaultPlan::new().with(SimTime::ZERO, FaultKind::KernelTransient { gpu: 0 }));
    m.begin_job(JOB_B); // open, but never submits anything
    m.submit_for(JOB_A, mk_work((0, 0), MIB), SimTime::ZERO);
    let done = m.drain_job(JOB_A);
    assert_eq!(done.len(), 1, "transient must be retried to completion");
    // Work-scoped counters land only on the owning job; device-scoped
    // injection counts are mirrored to every open session.
    let a = m.job_faults(JOB_A);
    assert_eq!(a.transient_faults, 1);
    assert_eq!(a.retries, 1);
    let b = m.job_faults(JOB_B);
    assert_eq!(b.faults_injected, 1);
    assert_eq!(b.transient_faults, 0, "B never ran the faulted work");
    assert_eq!(b.retries, 0);
    // The worker-global ledger mirrors the union.
    assert_eq!(m.fault_ledger().transient_faults, 1);
}

#[test]
fn fault_deltas_are_windowed_per_job() {
    let mut m = manager_with_capacity(64 * MIB);
    m.set_fault_plan(FaultPlan::new().with(SimTime::ZERO, FaultKind::KernelTransient { gpu: 0 }));
    m.submit_for(JOB_A, mk_work((0, 0), MIB), SimTime::ZERO);
    m.drain_job(JOB_A);
    let first = m.take_job_fault_delta(JOB_A);
    assert_eq!(first.transient_faults, 1);
    assert!(
        m.take_job_fault_delta(JOB_A).is_quiet(),
        "delta was consumed"
    );
    // A quiet follow-up drain accrues nothing.
    m.submit_for(JOB_A, mk_work((0, 1), MIB), SimTime::ZERO);
    m.drain_job(JOB_A);
    assert!(m.take_job_fault_delta(JOB_A).is_quiet());
}

#[test]
fn ended_job_id_can_be_reopened_with_a_cold_session() {
    let mut m = manager_with_capacity(64 * MIB);
    m.begin_job(JOB_A);
    m.submit_for(JOB_A, mk_work((0, 0), MIB), SimTime::ZERO);
    m.drain_job(JOB_A);
    assert!(m.session(JOB_A).unwrap().region(0).contains(key((0, 0))));
    m.end_job(JOB_A);
    // Removed outright — no legacy default session survives an end_job.
    assert!(m.session(JOB_A).is_none());
    // The id can come back, but as a fresh tenant with a cold cache.
    m.begin_job(JOB_A);
    m.submit_for(JOB_A, mk_work((0, 0), MIB), SimTime::ZERO);
    let done = m.drain_job(JOB_A);
    assert_eq!(done.len(), 1);
    assert_eq!(done[0].timing.cache_misses, 1, "region did not survive");
}

//! Trace and metrics determinism: the exported Chrome trace, the metrics
//! plane's Prometheus/JSON exports, and the flight recorder's postmortem
//! bundles are each a pure function of the (seed, FaultPlan) pair. Two
//! runs from the same seed and plan produce byte-identical bytes — so an
//! export attached to a bug report *is* the run, not a run like it —
//! while a different seed produces different bytes.

use gflink_core::{
    CacheKey, FabricConfig, GRecord, GWork, GflinkEnv, GpuFabric, GpuManager, GpuMapSpec,
    GpuWorkerConfig, JobId, WorkBuf,
};
use gflink_flink::{ClusterConfig, SharedCluster};
use gflink_gpu::{GpuModel, KernelArgs, KernelId, KernelProfile, KernelRegistry};
use gflink_memory::{
    AlignClass, DataLayout, FieldDef, GStructDef, HBuffer, PrimType, RecordReader, RecordView,
};
use gflink_sim::{
    FaultKind, FaultPlan, Metrics, RecKind, RetryPolicy, SimRng, SimTime, SloPolicy, Tracer,
};
use parking_lot::Mutex;
use std::sync::Arc;

fn registry() -> Arc<Mutex<KernelRegistry>> {
    let mut reg = KernelRegistry::new();
    reg.register("scale2", |args: &mut KernelArgs<'_, '_>| {
        let n = args.n_actual;
        for i in 0..n {
            let v = args.inputs[0].read_f32(i * 4);
            args.outputs[0].write_f32(i * 4, v * 2.0);
        }
        KernelProfile::new(args.n_logical as f64, args.n_logical as f64 * 8.0)
    });
    Arc::new(Mutex::new(reg))
}

/// A seeded workload: block sizes and submit instants drawn from the seed,
/// so different seeds yield genuinely different timelines.
fn mk_work(i: u32, rng: &mut SimRng) -> GWork {
    let base = i as f32;
    let data = Arc::new(HBuffer::from_f32s(&[base, base + 0.5, -base, base * 3.0]));
    let logical = (1u64 << 21) + rng.gen_range(1 << 22);
    GWork {
        name: format!("w{i}").into(),
        execute_name: "scale2".into(),
        kernel: KernelId::UNRESOLVED,
        ptx_path: "/scale2.ptx".into(),
        block_size: 256,
        grid_size: 1,
        inputs: vec![if i.is_multiple_of(2) {
            WorkBuf::cached(
                data,
                logical,
                CacheKey {
                    dataset: 9,
                    partition: i % 4,
                    block: i,
                },
            )
        } else {
            WorkBuf::transient(data, logical)
        }],
        out_actual_bytes: 16,
        out_logical_bytes: logical,
        out_records: 4,
        params: Arc::from([]),
        n_actual: 4,
        n_logical: logical / 4,
        coalescing: 1.0,
        tag: (0, i),
    }
}

/// The shared fault plan: a transient kernel fault early, one GPU lost
/// mid-run — exercising the Recovery and Health event paths too.
fn plan() -> FaultPlan {
    FaultPlan::new()
        .with(
            SimTime::from_micros(200),
            FaultKind::KernelTransient { gpu: 0 },
        )
        .with(SimTime::from_millis(2), FaultKind::GpuLost { gpu: 1 })
}

fn run_once(seed: u64) -> String {
    let mut m = GpuManager::new(
        0,
        GpuWorkerConfig {
            models: vec![GpuModel::TeslaC2050; 2],
            hang_timeout: SimTime::from_millis(50),
            retry: RetryPolicy {
                max_retries: 100,
                ..RetryPolicy::default()
            },
            ..GpuWorkerConfig::default()
        },
        registry(),
    );
    let tracer = Tracer::new(Tracer::DEFAULT_CAPACITY);
    m.set_tracer(tracer.clone());
    m.set_fault_plan(plan());
    let job = JobId(1);
    m.begin_job(job);
    let mut rng = SimRng::new(seed);
    let mut at = SimTime::ZERO;
    for i in 0..32 {
        at += SimTime::from_micros(10 + rng.gen_range(80));
        m.submit_for(job, mk_work(i, &mut rng), at);
    }
    let done = m.drain_job(job);
    assert_eq!(done.len(), 32, "all works must complete");
    tracer.export_chrome_json()
}

#[test]
fn same_seed_same_plan_is_byte_identical() {
    let a = run_once(42);
    let b = run_once(42);
    assert!(!a.is_empty());
    assert_eq!(a, b, "same (seed, FaultPlan) must export identical traces");
}

#[test]
fn different_seed_differs() {
    let a = run_once(42);
    let c = run_once(43);
    assert_ne!(a, c, "a different seed must change the trace");
}

#[test]
fn trace_records_fault_and_recovery_events() {
    let json = run_once(42);
    // The plan's injected faults surface as Recovery instants and the lost
    // device as a Health transition.
    assert!(json.contains("\"cat\":\"recovery\""));
    assert!(json.contains("\"fault-injected\""));
    assert!(json.contains("\"cat\":\"health\""));
    assert!(json.contains("\"lost\""));
}

/// `run_once` with the metrics plane attached instead of the tracer:
/// returns the lifetime-registry exports.
fn run_metrics_once(seed: u64) -> (String, String) {
    let mut m = GpuManager::new(
        0,
        GpuWorkerConfig {
            models: vec![GpuModel::TeslaC2050; 2],
            hang_timeout: SimTime::from_millis(50),
            retry: RetryPolicy {
                max_retries: 100,
                ..RetryPolicy::default()
            },
            ..GpuWorkerConfig::default()
        },
        registry(),
    );
    let metrics = Metrics::new(SimTime::from_micros(100));
    m.set_metrics(&metrics);
    m.set_fault_plan(plan());
    let job = JobId(1);
    m.begin_job(job);
    let mut rng = SimRng::new(seed);
    let mut at = SimTime::ZERO;
    for i in 0..32 {
        at += SimTime::from_micros(10 + rng.gen_range(80));
        m.submit_for(job, mk_work(i, &mut rng), at);
    }
    let done = m.drain_job(job);
    assert_eq!(done.len(), 32, "all works must complete");
    (metrics.export_prometheus(), metrics.export_json())
}

#[test]
fn metrics_exports_replay_byte_identically() {
    let (prom_a, json_a) = run_metrics_once(42);
    let (prom_b, json_b) = run_metrics_once(42);
    assert!(prom_a.contains("gflink_works_completed_total{worker=\"0\"} 32"));
    assert!(prom_a.contains("gflink_kernel_launches_total{worker=\"0\",gpu=\"0\"}"));
    assert!(json_a.contains("\"ticks\""));
    assert_eq!(
        prom_a, prom_b,
        "same (seed, FaultPlan) must export identically"
    );
    assert_eq!(json_a, json_b);
}

#[test]
fn metrics_exports_differ_across_seeds() {
    let (prom_a, json_a) = run_metrics_once(42);
    let (prom_c, json_c) = run_metrics_once(43);
    // Seed-drawn logical sizes move the histograms and the time series.
    assert_ne!(prom_a, prom_c, "a different seed must change the export");
    assert_ne!(json_a, json_c);
}

// --- Flight-recorder postmortems through the full GDST stack -----------

#[derive(Clone)]
struct P(f32);

impl GRecord for P {
    fn def() -> GStructDef {
        GStructDef::new(
            "P",
            AlignClass::Align8,
            vec![FieldDef::scalar("v", PrimType::F32)],
        )
    }
    fn store(&self, view: &mut RecordView<'_>, idx: usize) {
        view.set_f64(idx, 0, 0, self.0 as f64);
    }
    fn load(reader: &RecordReader<'_>, idx: usize) -> Self {
        P(reader.get_f64(idx, 0, 0) as f32)
    }
}

/// A scripted device-loss run through `gpu_map_partition` with the metrics
/// plane and a tight SLO armed; returns the postmortem bundles' JSON.
fn run_postmortem_once(dir: &str) -> Vec<String> {
    let cluster = SharedCluster::new(ClusterConfig::standard(1));
    let fabric = GpuFabric::new(1, FabricConfig::default());
    fabric.register_kernel("double", |args: &mut KernelArgs<'_, '_>| {
        let def = P::def();
        let n = args.n_actual;
        let input = RecordReader::new(args.inputs[0], &def, DataLayout::Aos, n);
        let mut out = RecordView::new(args.outputs[0], &def, DataLayout::Aos, n);
        for i in 0..n {
            out.set_f64(i, 0, 0, input.get_f64(i, 0, 0) * 2.0);
        }
        KernelProfile::new(args.n_logical as f64, args.n_logical as f64 * 8.0)
    });
    fabric.enable_metrics();
    fabric.set_slo(SloPolicy::max_latency(SimTime::from_micros(100)));
    fabric.set_postmortem_dir(dir);
    fabric.with_managers(|ms| {
        ms[0].set_fault_plan(
            FaultPlan::new().with(SimTime::from_millis(1), FaultKind::GpuLost { gpu: 0 }),
        );
    });
    let env = GflinkEnv::submit(&cluster, &fabric, "pm", SimTime::ZERO);
    let pts: Vec<P> = (0..200).map(|i| P(i as f32)).collect();
    let ds = env.flink.parallelize("pts", pts, 4, 1000.0);
    let gdst = env.to_gdst(ds, DataLayout::Aos);
    let out = gdst.gpu_map_partition::<P>("double", &GpuMapSpec::new("double"));
    assert_eq!(out.inner().collect("get", 8.0).len(), 200);
    let report = env.finish();
    assert_eq!(report.faults.gpus_lost, 1);
    fabric.postmortems().iter().map(|b| b.to_json()).collect()
}

#[test]
fn scripted_device_loss_dumps_a_deterministic_postmortem() {
    let a = run_postmortem_once("target/postmortem-test/a");
    let b = run_postmortem_once("target/postmortem-test/b");
    assert!(!a.is_empty(), "the device loss must dump a postmortem");
    assert_eq!(a, b, "postmortem bundles must replay byte-identically");
    // Golden shape: the fault-ledger bundle carries the device-loss event
    // stream, the offending drain's ledger delta, and a health snapshot
    // showing the lost lane.
    let fault = a
        .iter()
        .find(|j| j.contains("\"reason\":\"fault-ledger\""))
        .expect("a fault-ledger bundle");
    assert!(fault.contains(&format!("\"kind\":\"{}\"", RecKind::DeviceLost.as_str())));
    assert!(fault.contains(&format!("\"kind\":\"{}\"", RecKind::FaultInjected.as_str())));
    assert!(fault.contains("\"gpus_lost\":1"));
    assert!(fault.contains("\"state\":\"lost\""));
    // The bundle also landed on disk under its deterministic name.
    let on_disk = std::fs::read_to_string("target/postmortem-test/a/job1-pm000.json")
        .expect("postmortem file written");
    assert_eq!(&on_disk, &a[0]);
}

#[test]
fn disabled_metrics_plane_dumps_nothing() {
    let cluster = SharedCluster::new(ClusterConfig::standard(1));
    let fabric = GpuFabric::new(1, FabricConfig::default());
    fabric.register_kernel("noop", |args: &mut KernelArgs<'_, '_>| {
        KernelProfile::new(args.n_logical as f64, args.n_logical as f64)
    });
    fabric.with_managers(|ms| {
        ms[0].set_fault_plan(
            FaultPlan::new().with(SimTime::from_millis(1), FaultKind::GpuLost { gpu: 0 }),
        );
    });
    let env = GflinkEnv::submit(&cluster, &fabric, "quiet", SimTime::ZERO);
    let pts: Vec<P> = (0..50).map(|i| P(i as f32)).collect();
    let ds = env.flink.parallelize("pts", pts, 2, 1000.0);
    let gdst = env.to_gdst(ds, DataLayout::Aos);
    let out = gdst.gpu_map_partition::<P>("noop", &GpuMapSpec::new("noop"));
    assert_eq!(out.inner().collect("get", 8.0).len(), 50);
    let report = env.finish();
    assert_eq!(report.faults.gpus_lost, 1);
    assert!(
        fabric.postmortems().is_empty(),
        "without enable_metrics the flight recorder must stay dark"
    );
    assert!(!fabric.metrics().enabled());
}

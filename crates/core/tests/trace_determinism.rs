//! Trace determinism: the exported Chrome trace is a pure function of the
//! (seed, FaultPlan) pair. Two runs from the same seed and plan produce
//! byte-identical JSON — so a trace attached to a bug report *is* the run,
//! not a run like it — while a different seed produces a different trace.

use gflink_core::{CacheKey, GWork, GpuManager, GpuWorkerConfig, JobId, WorkBuf};
use gflink_gpu::{GpuModel, KernelArgs, KernelId, KernelProfile, KernelRegistry};
use gflink_memory::HBuffer;
use gflink_sim::{FaultKind, FaultPlan, RetryPolicy, SimRng, SimTime, Tracer};
use parking_lot::Mutex;
use std::sync::Arc;

fn registry() -> Arc<Mutex<KernelRegistry>> {
    let mut reg = KernelRegistry::new();
    reg.register("scale2", |args: &mut KernelArgs<'_, '_>| {
        let n = args.n_actual;
        for i in 0..n {
            let v = args.inputs[0].read_f32(i * 4);
            args.outputs[0].write_f32(i * 4, v * 2.0);
        }
        KernelProfile::new(args.n_logical as f64, args.n_logical as f64 * 8.0)
    });
    Arc::new(Mutex::new(reg))
}

/// A seeded workload: block sizes and submit instants drawn from the seed,
/// so different seeds yield genuinely different timelines.
fn mk_work(i: u32, rng: &mut SimRng) -> GWork {
    let base = i as f32;
    let data = Arc::new(HBuffer::from_f32s(&[base, base + 0.5, -base, base * 3.0]));
    let logical = (1u64 << 21) + rng.gen_range(1 << 22);
    GWork {
        name: format!("w{i}").into(),
        execute_name: "scale2".into(),
        kernel: KernelId::UNRESOLVED,
        ptx_path: "/scale2.ptx".into(),
        block_size: 256,
        grid_size: 1,
        inputs: vec![if i.is_multiple_of(2) {
            WorkBuf::cached(
                data,
                logical,
                CacheKey {
                    dataset: 9,
                    partition: i % 4,
                    block: i,
                },
            )
        } else {
            WorkBuf::transient(data, logical)
        }],
        out_actual_bytes: 16,
        out_logical_bytes: logical,
        out_records: 4,
        params: Arc::from([]),
        n_actual: 4,
        n_logical: logical / 4,
        coalescing: 1.0,
        tag: (0, i),
    }
}

/// The shared fault plan: a transient kernel fault early, one GPU lost
/// mid-run — exercising the Recovery and Health event paths too.
fn plan() -> FaultPlan {
    FaultPlan::new()
        .with(
            SimTime::from_micros(200),
            FaultKind::KernelTransient { gpu: 0 },
        )
        .with(SimTime::from_millis(2), FaultKind::GpuLost { gpu: 1 })
}

fn run_once(seed: u64) -> String {
    let mut m = GpuManager::new(
        0,
        GpuWorkerConfig {
            models: vec![GpuModel::TeslaC2050; 2],
            hang_timeout: SimTime::from_millis(50),
            retry: RetryPolicy {
                max_retries: 100,
                ..RetryPolicy::default()
            },
            ..GpuWorkerConfig::default()
        },
        registry(),
    );
    let tracer = Tracer::new(Tracer::DEFAULT_CAPACITY);
    m.set_tracer(tracer.clone());
    m.set_fault_plan(plan());
    let job = JobId(1);
    m.begin_job(job);
    let mut rng = SimRng::new(seed);
    let mut at = SimTime::ZERO;
    for i in 0..32 {
        at += SimTime::from_micros(10 + rng.gen_range(80));
        m.submit_for(job, mk_work(i, &mut rng), at);
    }
    let done = m.drain_job(job);
    assert_eq!(done.len(), 32, "all works must complete");
    tracer.export_chrome_json()
}

#[test]
fn same_seed_same_plan_is_byte_identical() {
    let a = run_once(42);
    let b = run_once(42);
    assert!(!a.is_empty());
    assert_eq!(a, b, "same (seed, FaultPlan) must export identical traces");
}

#[test]
fn different_seed_differs() {
    let a = run_once(42);
    let c = run_once(43);
    assert_ne!(a, c, "a different seed must change the trace");
}

#[test]
fn trace_records_fault_and_recovery_events() {
    let json = run_once(42);
    // The plan's injected faults surface as Recovery instants and the lost
    // device as a Health transition.
    assert!(json.contains("\"cat\":\"recovery\""));
    assert!(json.contains("\"fault-injected\""));
    assert!(json.contains("\"cat\":\"health\""));
    assert!(json.contains("\"lost\""));
}

//! CPU cost model.
//!
//! The testbed CPU is an Intel Core i5-4590 (4 cores, 3.3 GHz; §6.1). The
//! baseline executes user functions inside the JVM through Flink's iterator
//! model, so the per-element cost has three parts: a fixed dispatch overhead
//! (iterator `next()` + virtual call + boxing), an arithmetic term and a
//! memory term. These constants were calibrated so the end-to-end figures
//! land in the paper's reported bands (see EXPERIMENTS.md).

use gflink_sim::SimTime;

/// Per-core CPU throughput model for JVM-hosted operators.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CpuSpec {
    /// Sustained scalar arithmetic throughput per core, FLOP/s.
    ///
    /// Well below the 3.3 GHz × SIMD peak: JIT-compiled, object-traversing
    /// dataflow code does not vectorize.
    pub scalar_flops: f64,
    /// Sustained memory bandwidth per core, bytes/s.
    pub mem_bps: f64,
    /// Fixed cost per element through the iterator model, nanoseconds.
    ///
    /// This is the dominant term for cheap operators and deliberately large:
    /// 2016-era Flink deserializes each record out of managed memory,
    /// dispatches through generic `MapFunction`/`Collector` interfaces and
    /// re-serializes the output — several hundred nanoseconds per record,
    /// which is exactly the overhead GFlink's raw off-heap GStruct path
    /// (§3.1/§4.1) avoids.
    pub per_elem_overhead_ns: f64,
}

impl Default for CpuSpec {
    fn default() -> Self {
        CpuSpec {
            scalar_flops: 1.0e9,
            mem_bps: 4.0e9,
            per_elem_overhead_ns: 250.0,
        }
    }
}

impl CpuSpec {
    /// Time for one core to process `n_logical` elements of an operator
    /// with per-element cost `cost`.
    pub fn time_for(&self, cost: &OpCost, n_logical: f64) -> SimTime {
        let per_elem_s = self.per_elem_overhead_ns * 1e-9 * cost.overhead_factor
            + cost.flops_per_elem / self.scalar_flops
            + cost.bytes_per_elem / self.mem_bps;
        SimTime::from_secs_f64(per_elem_s * n_logical)
    }
}

/// Per-element cost declaration for an operator.
///
/// The engine executes the operator's closure for real on the scale-reduced
/// data; `OpCost` tells the *cost model* what one element costs at paper
/// scale, in hardware-independent units (flops and bytes). Apps derive these
/// from their kernels' arithmetic (e.g. KMeans: `3·k·d` flops/point).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct OpCost {
    /// Arithmetic operations per element.
    pub flops_per_elem: f64,
    /// Memory traffic per element, bytes.
    pub bytes_per_elem: f64,
    /// Multiplier on the fixed per-element dispatch overhead (use >1 for
    /// operators that allocate per element, e.g. string tokenization).
    pub overhead_factor: f64,
}

impl OpCost {
    /// An operator doing `flops` arithmetic over `bytes` of data per
    /// element.
    pub const fn new(flops: f64, bytes: f64) -> Self {
        OpCost {
            flops_per_elem: flops,
            bytes_per_elem: bytes,
            overhead_factor: 1.0,
        }
    }

    /// A (nearly) free operator — bookkeeping only.
    pub const fn trivial() -> Self {
        OpCost::new(1.0, 8.0)
    }

    /// Override the dispatch-overhead multiplier.
    pub const fn with_overhead_factor(mut self, f: f64) -> Self {
        self.overhead_factor = f;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_scales_linearly_with_elements() {
        let cpu = CpuSpec::default();
        let cost = OpCost::new(100.0, 32.0);
        let t1 = cpu.time_for(&cost, 1e6);
        let t2 = cpu.time_for(&cost, 2e6);
        // Within one rounding ulp of exactly double.
        assert!((t2.as_nanos() as i64 - t1.as_nanos() as i64 * 2).abs() <= 1);
    }

    #[test]
    fn overhead_floor_applies_to_cheap_ops() {
        let cpu = CpuSpec::default();
        // Even a zero-flop op pays the iterator/serialization overhead.
        let t = cpu.time_for(&OpCost::new(0.0, 0.0), 1e9);
        assert!(t >= SimTime::from_secs_f64(1e9 * 250.0e-9 * 0.99));
    }

    #[test]
    fn overhead_factor_multiplies() {
        let cpu = CpuSpec::default();
        let base = cpu.time_for(&OpCost::new(0.0, 0.0), 1e6);
        let heavy = cpu.time_for(&OpCost::new(0.0, 0.0).with_overhead_factor(3.0), 1e6);
        assert_eq!(heavy.as_nanos(), base.as_nanos() * 3);
    }

    #[test]
    fn flops_term_dominates_compute_heavy_ops() {
        let cpu = CpuSpec::default();
        let t = cpu.time_for(&OpCost::new(10_000.0, 0.0), 1e6);
        // 10k flops at 1 GFLOP/s = 10 us/elem >> overhead.
        assert!((t.as_secs_f64() - 1e6 * 1e-5).abs() / t.as_secs_f64() < 0.05);
    }
}
